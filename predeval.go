// Package predeval is the public face of the library: an embeddable
// approximate-query engine for selection queries with expensive UDF
// predicates, implementing "Exploiting Correlations for Expensive
// Predicate Evaluation" (Joglekar, Garcia-Molina, Parameswaran, Ré).
//
// Load a table, register the expensive predicate, and query with accuracy
// bounds:
//
//	db := predeval.Open(42)
//	db.LoadCSV("loans", csvReader)
//	db.RegisterUDF("good_credit", func(v any) bool { return creditCheck(v) }, 3.0)
//	res, err := db.Query(`SELECT * FROM loans WHERE good_credit(id) = 1
//	                      WITH PRECISION 0.9 RECALL 0.9 PROBABILITY 0.9`)
//
// The engine estimates how each column correlates with the UDF, samples a
// few tuples to learn per-group selectivities, and then skips or
// trusts whole groups of tuples so the result meets the requested
// precision and recall with the requested probability — at a fraction of
// the UDF invocations an exact evaluation would need. Omit the WITH
// clause to run exactly. See DESIGN.md for the algorithm map and
// EXPERIMENTS.md for the reproduction results.
//
// UDF invocations — the dominant cost — fan out across a worker pool
// (SetParallelism; default runtime.GOMAXPROCS(0)). Execution is split into
// a sequential plan phase that draws all random coins and a parallel
// evaluate phase, so for a given seed the results are bit-for-bit
// identical at every parallelism level; SetParallelism(1) reproduces fully
// sequential execution. When parallelism exceeds 1, registered UDF bodies
// must be safe for concurrent invocation. Outcomes are also memoized per
// (table, UDF, column) across queries, so production traffic repeating
// predicates over the same rows never re-pays the evaluation cost; see
// DESIGN.md for the determinism contract and cache semantics.
//
// QueryContext adds per-query deadlines and cancellation: workers check
// the context between UDF calls, so a cancel returns ctx.Err() within one
// in-flight call per worker and the database stays reusable. cmd/predsqld
// serves the engine over HTTP with per-request timeouts built on it.
package predeval

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/resilience"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// DB is an in-memory database of tables and registered UDFs.
type DB struct {
	eng *engine.Engine
}

// Open creates an empty database. The seed makes sampling and
// probabilistic execution reproducible.
func Open(seed uint64) *DB {
	return &DB{eng: engine.New(seed)}
}

// SetCosts overrides the per-tuple retrieval cost o_r and the default UDF
// evaluation cost o_e (individual UDFs can override o_e at registration).
func (db *DB) SetCosts(retrieve, evaluate float64) error {
	if retrieve < 0 || evaluate < 0 {
		return fmt.Errorf("predeval: negative cost")
	}
	db.eng.Cost.Retrieve = retrieve
	db.eng.Cost.Evaluate = evaluate
	return nil
}

// SetParallelism caps the number of workers UDF evaluation fans out
// across. n = 1 runs fully sequentially; n ≤ 0 resets to
// runtime.GOMAXPROCS(0), the default. Results for a given seed are
// identical at every setting. Values above GOMAXPROCS are honored — for
// I/O-bound UDFs (remote scoring services, disk) oversubscription is
// usually the right call. UDF bodies must tolerate concurrent invocation
// when n > 1.
//
// Like SetCosts and SetUDFCache, configure before serving queries:
// calling it concurrently with in-flight Query calls is a data race.
func (db *DB) SetParallelism(n int) {
	db.eng.Parallelism = n
}

// SetBatchSize sets the number of rows per execution batch (n ≤ 0 resets
// to the engine default of 1024). Batch size is a performance knob, not a
// semantic one: for a given seed, results and Stats are bit-for-bit
// identical at every setting (the sole exception is workloads whose
// circuit breakers trip mid-query — trip timing follows batch
// boundaries). Smaller batches lower streamed first-row latency; larger
// batches amortize per-batch overhead. Configure before serving queries
// (see SetParallelism).
func (db *DB) SetBatchSize(n int) {
	db.eng.BatchSize = n
}

// SetUDFCache toggles the cross-query UDF outcome cache (on by default):
// when enabled, a row evaluated by one query is never re-paid by a later
// query over the same (table, UDF, column) — the "= 0/1" comparison is
// folded at lookup, so complementary queries share too. Disabling also
// drops any cached outcomes. Configure before serving queries (see
// SetParallelism).
func (db *DB) SetUDFCache(enabled bool) {
	db.eng.CacheUDFResults = enabled
	if !enabled {
		db.eng.InvalidateUDFCache()
	}
}

// OpenCatalog attaches a durable statistics & outcome catalog stored in
// dir (created if needed): UDF verdicts, sampling evidence and learned
// correlated-column choices persist across process restarts, so repeated
// workloads warm-start instead of re-paying the UDF cost. Call after
// registering tables and UDFs, before serving queries. New facts become
// durable on FlushCatalog (or a server's periodic flush) — see DESIGN.md,
// "Durable catalog".
//
// A catalog left behind by a crash is recovered on open: a damaged log
// tail is detected by checksum and cut off (losing at most the facts
// since the last flush), never replayed into wrong verdicts. Inspect
// Catalog().Recovery() to see what was repaired.
func (db *DB) OpenCatalog(dir string) error {
	c, err := catalog.Open(dir)
	if err != nil {
		return err
	}
	db.eng.SetCatalog(c)
	return nil
}

// SetCatalog attaches an already-open catalog (nil detaches). Configure
// before serving queries, like SetParallelism.
func (db *DB) SetCatalog(c *catalog.Catalog) { db.eng.SetCatalog(c) }

// Catalog returns the attached catalog, or nil.
func (db *DB) Catalog() *catalog.Catalog { return db.eng.Catalog() }

// FlushCatalog persists every outcome and statistic learned since the
// last flush. No-op without an attached catalog.
func (db *DB) FlushCatalog() error { return db.eng.FlushCatalog() }

// CloseCatalog flushes, compacts and closes the attached catalog, then
// detaches it. The DB remains usable (without durability). No-op without
// an attached catalog.
func (db *DB) CloseCatalog() error { return db.eng.CloseCatalog() }

// CacheCounters aggregates cross-query cache and catalog warm-start
// activity over the DB's lifetime.
type CacheCounters struct {
	// Hits / Misses count cross-query outcome-cache lookups summed over
	// completed queries (a hit serves a row without invoking the UDF).
	Hits   int64
	Misses int64
	// ColumnMemoHits counts queries that skipped the correlated-column
	// discovery pass thanks to a catalog memo.
	ColumnMemoHits int64
	// SeededRows counts sampler rows warm-started from persisted evidence.
	SeededRows int64
}

// CacheCounters reports DB-lifetime cache and warm-start counters.
func (db *DB) CacheCounters() CacheCounters {
	hits, misses := db.eng.CacheCounters()
	cc := db.eng.CatalogCounters()
	return CacheCounters{
		Hits:           hits,
		Misses:         misses,
		ColumnMemoHits: cc.ColumnMemoHits,
		SeededRows:     cc.SeededRows,
	}
}

// LoadCSV reads a CSV (header row required, column types inferred) into a
// new table.
func (db *DB) LoadCSV(name string, r io.Reader) error {
	tbl, err := table.ReadCSV(name, r)
	if err != nil {
		return err
	}
	return db.eng.RegisterTable(tbl)
}

// LoadCSVFile is LoadCSV reading from a file path.
func (db *DB) LoadCSVFile(name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("predeval: %w", err)
	}
	defer f.Close()
	return db.LoadCSV(name, f)
}

// RegisterUDF registers an expensive boolean predicate over a single
// column value. cost is the per-invocation cost o_e (0 uses the engine
// default of 3).
func (db *DB) RegisterUDF(name string, fn func(value any) bool, cost float64) error {
	if fn == nil {
		return fmt.Errorf("predeval: nil UDF %q", name)
	}
	return db.eng.RegisterUDF(engine.UDF{
		Name: name,
		Body: func(v table.Value) bool { return fn(v) },
		Cost: cost,
	})
}

// RegisterUDFErr registers a fallible expensive predicate: one that may
// return an error (remote service failure, timeout) instead of panicking.
// Invocations run under the DB's retry policy (SetRetryPolicy) behind a
// per-(table, UDF) circuit breaker; what a row whose invocation ultimately
// fails means is decided by the failure policy (SetFailurePolicy, or
// per-query options). Plain returned errors are treated as transient and
// retried; wrap them in *resilience.Error to control classification. The
// context carries the per-call deadline — bodies that honor it return
// promptly on cancellation.
func (db *DB) RegisterUDFErr(name string, fn func(ctx context.Context, value any) (bool, error), cost float64) error {
	if fn == nil {
		return fmt.Errorf("predeval: nil UDF %q", name)
	}
	return db.eng.RegisterUDF(engine.UDF{
		Name:    name,
		BodyErr: func(ctx context.Context, v table.Value) (bool, error) { return fn(ctx, v) },
		Cost:    cost,
	})
}

// SetRetryPolicy tunes retry/backoff and the per-call deadline for UDF
// invocations (the zero value means 3 attempts, 1ms..50ms capped
// exponential backoff, no deadline). Backoff jitter is a pure hash seeded
// from the DB seed, so retry schedules are deterministic. Configure before
// serving queries (see SetParallelism).
func (db *DB) SetRetryPolicy(p resilience.Policy) { db.eng.Retry = p }

// SetBreakerConfig tunes the per-(table, UDF) circuit breakers (the zero
// value uses the documented defaults). Configure before serving queries;
// breakers already created keep their config.
func (db *DB) SetBreakerConfig(c resilience.BreakerConfig) { db.eng.Breaker = c }

// SetFailurePolicy sets the default failure policy for queries that do not
// carry their own: "fail" (default — a failed row fails the query once
// execution finishes), "skip" (failed rows are silently excluded) or
// "degrade" (excluded and the result is marked Degraded). Configure before
// serving queries.
func (db *DB) SetFailurePolicy(policy string) error {
	p, err := engine.ParseFailurePolicy(policy)
	if err != nil {
		return err
	}
	db.eng.OnFailure = p
	return nil
}

// BreakerStatus is one circuit breaker's observable state.
type BreakerStatus = engine.BreakerStatus

// BreakerStatuses reports every circuit breaker the DB has created, in
// (table, UDF) order.
func (db *DB) BreakerStatuses() []BreakerStatus { return db.eng.BreakerStatuses() }

// Stats summarizes how a query spent its cost budget.
type Stats struct {
	// Evaluations is the number of UDF invocations made.
	Evaluations int
	// Retrievals is the number of tuples fetched.
	Retrievals int
	// Cost is o_r·Retrievals + o_e·Evaluations.
	Cost float64
	// ChosenColumn is the correlated (possibly virtual) column used.
	ChosenColumn string
	// Sampled is the number of tuples examined while estimating
	// selectivities (labeling + sampling). Zero for exact queries. On a
	// cold UDF cache every sampled tuple is also an Evaluation; when the
	// cross-query cache is warm, sampled tuples served from cache are not
	// charged, so Sampled may exceed Evaluations.
	Sampled int
	// Exact reports whether the query ran without approximation.
	Exact bool
	// AchievedRecallBound is set for BUDGET queries.
	AchievedRecallBound float64
	// CacheHits counts rows served from the cross-query outcome cache
	// (no UDF invocation charged). Zero when the cache is disabled.
	CacheHits int
	// CacheMisses counts cache lookups that fell through to a paid UDF
	// invocation. Zero when the cache is disabled.
	CacheMisses int
	// FailedRows counts rows excluded because their UDF invocation
	// ultimately failed (after retries, or denied by an open breaker),
	// summed per predicate.
	FailedRows int
	// Retries counts extra UDF invocation attempts beyond each row's first.
	Retries int
	// BreakerTrips counts circuit-breaker trips this query caused.
	BreakerTrips int
	// Degraded marks a partial result under the "degrade" failure policy.
	Degraded bool
}

// Rows is a materialized query result.
type Rows struct {
	cols  []string
	cells [][]string
	ids   []int
	stats Stats
	plan  []string
}

// Columns returns the projected column names.
func (r *Rows) Columns() []string { return r.cols }

// Len returns the number of result rows.
func (r *Rows) Len() int { return len(r.cells) }

// Row returns the rendered cells of result row i.
func (r *Rows) Row(i int) []string { return r.cells[i] }

// RowIDs returns the base-table row ids of the result (useful for joining
// results back to ground truth in evaluations).
func (r *Rows) RowIDs() []int { return r.ids }

// Stats returns the execution statistics.
func (r *Rows) Stats() Stats { return r.stats }

// Plan returns the annotated EXPLAIN ANALYZE plan (one operator per
// line), when the query ran with analysis on — via the EXPLAIN ANALYZE
// keyword or QueryOptions.Analyze. Nil otherwise.
func (r *Rows) Plan() []string { return r.plan }

// Explain parses a statement and returns its physical operator tree as
// EXPLAIN text (one operator per line, with estimated costs and the chosen
// correlated column where known) without executing anything. The EXPLAIN
// keyword is optional — Explain("SELECT ...") and Explain("EXPLAIN
// SELECT ...") render the same plan. An EXPLAIN ANALYZE statement is the
// exception: it EXECUTES the query (UDFs run, caches fill) and returns the
// plan annotated with measured per-operator counts.
//
//predlint:allow ctxflow — pre-context compatibility wrapper; cancellable callers use ExplainContext
func (db *DB) Explain(sql string) (string, error) {
	return db.ExplainContext(context.Background(), sql)
}

// ExplainContext is Explain honoring a context (which matters for EXPLAIN
// ANALYZE, where the query actually executes).
func (db *DB) ExplainContext(ctx context.Context, sql string) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	if stmt.Analyze {
		_, text, err := db.executeStatement(ctx, stmt, true)
		return text, err
	}
	return db.explainStatement(stmt)
}

// Query parses and executes one statement of the SQL dialect (see the
// package documentation and internal/sqlparse). It returns the
// materialized result. An EXPLAIN-prefixed statement is planned instead of
// executed: the result has a single "plan" column with one row per
// operator line and zero-valued Stats.
//
//predlint:allow ctxflow — pre-context compatibility wrapper; cancellable callers use QueryContext
func (db *DB) Query(sql string) (*Rows, error) {
	return db.QueryContext(context.Background(), sql)
}

// QueryContext is Query honoring a context: cancel it (or attach a
// deadline) and the engine stops evaluating UDFs promptly — within at most
// one in-flight UDF call per worker — returning ctx.Err(). A cancelled
// query leaves the database fully reusable, and every UDF outcome computed
// before the cancel stays in the cross-query cache, so re-running the query
// resumes from paid-for work. See DESIGN.md, "Cancellation contract".
func (db *DB) QueryContext(ctx context.Context, sql string) (*Rows, error) {
	return db.QueryContextOptions(ctx, sql, QueryOptions{})
}

// QueryOptions carries per-query execution options that have no SQL
// surface.
type QueryOptions struct {
	// OnFailure overrides the DB's failure policy for this query: "fail",
	// "skip" or "degrade" ("" keeps the DB default). See SetFailurePolicy.
	OnFailure string
	// Analyze turns on EXPLAIN ANALYZE instrumentation without changing
	// what the query returns: the result rows come back as usual, and the
	// annotated plan is available from Rows.Plan(). (An EXPLAIN ANALYZE
	// statement instead returns the plan as the result set, like EXPLAIN.)
	Analyze bool
}

// QueryContextOptions is QueryContext with per-query options.
func (db *DB) QueryContextOptions(ctx context.Context, sql string, opts QueryOptions) (*Rows, error) {
	tr := obs.FromContext(ctx)
	sp := tr.Start("parse")
	stmt, err := sqlparse.Parse(sql)
	sp.End()
	if err != nil {
		return nil, err
	}
	if opts.OnFailure != "" {
		policy, err := engine.ParseFailurePolicy(opts.OnFailure)
		if err != nil {
			return nil, err
		}
		stmt.Query.OnFailure = policy
	}
	if stmt.Explain && !stmt.Analyze {
		text, err := db.explainStatement(stmt)
		if err != nil {
			return nil, err
		}
		return planRows(text), nil
	}
	analyze := stmt.Analyze || opts.Analyze
	res, planText, err := db.executeStatement(ctx, stmt, analyze)
	if err != nil {
		return nil, err
	}
	stats := Stats{
		Evaluations:         res.Stats.Evaluations,
		Retrievals:          res.Stats.Retrievals,
		Cost:                res.Stats.Cost,
		ChosenColumn:        res.Stats.ChosenColumn,
		Sampled:             res.Stats.Sampled,
		Exact:               res.Stats.Exact,
		AchievedRecallBound: res.Stats.AchievedRecallBound,
		CacheHits:           res.Stats.CacheHits,
		CacheMisses:         res.Stats.CacheMisses,
		FailedRows:          res.Stats.FailedRows,
		Retries:             res.Stats.Retries,
		BreakerTrips:        res.Stats.BreakerTrips,
		Degraded:            res.Stats.Degraded,
	}
	var planLines []string
	if analyze {
		planLines = strings.Split(strings.TrimRight(planText, "\n"), "\n")
	}
	if stmt.Analyze {
		// EXPLAIN ANALYZE returns the annotated plan as the result set
		// (like EXPLAIN — and like Postgres, the query's own output is
		// discarded); Stats still reflect the real execution.
		rows := planRows(planText)
		rows.stats = stats
		rows.plan = planLines
		return rows, nil
	}
	sp = tr.Start("materialize")
	out, err := db.eng.Materialize(stmt.Query, res)
	sp.End()
	if err != nil {
		return nil, err
	}
	rows := &Rows{
		cols:  out.Schema().Names(),
		ids:   res.Rows,
		stats: stats,
		plan:  planLines,
	}
	rows.cells = make([][]string, out.NumRows())
	for i := 0; i < out.NumRows(); i++ {
		cells := make([]string, out.Schema().Len())
		for j := range cells {
			cells[j] = out.CellString(i, j)
		}
		rows.cells[i] = cells
	}
	return rows, nil
}

// executeStatement runs an already-parsed statement; with analyze set the
// executed plan comes back rendered with per-operator measured counts.
func (db *DB) executeStatement(ctx context.Context, stmt *sqlparse.Statement, analyze bool) (*engine.Result, string, error) {
	if stmt.Join != nil {
		sj, err := stmt.SelectJoin()
		if err != nil {
			return nil, "", err
		}
		if analyze {
			root, res, err := db.eng.ExplainAnalyzeSelectJoinContext(ctx, sj)
			if err != nil {
				return nil, "", err
			}
			return res, plan.Format(root), nil
		}
		res, err := db.eng.ExecuteSelectJoinContext(ctx, sj)
		return res, "", err
	}
	if analyze {
		root, res, err := db.eng.ExplainAnalyzeContext(ctx, stmt.Query)
		if err != nil {
			return nil, "", err
		}
		return res, plan.Format(root), nil
	}
	res, err := db.eng.ExecuteContext(ctx, stmt.Query)
	return res, "", err
}

// explainStatement renders the plan for an already-parsed statement.
func (db *DB) explainStatement(stmt *sqlparse.Statement) (string, error) {
	if stmt.Join != nil {
		sj, err := stmt.SelectJoin()
		if err != nil {
			return "", err
		}
		return db.eng.ExplainSelectJoin(sj)
	}
	return db.eng.Explain(stmt.Query)
}

// planRows wraps EXPLAIN text as a one-column result set (one row per
// operator line), so EXPLAIN statements flow through Query like any other.
func planRows(text string) *Rows {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	r := &Rows{cols: []string{"plan"}}
	for _, line := range lines {
		r.cells = append(r.cells, []string{line})
	}
	return r
}

// ErrStopStream can be returned by a QueryStream emit callback to stop
// the stream early: production halts (upstream evaluation is cancelled),
// and QueryStream returns successfully with the rows delivered so far.
var ErrStopStream = engine.ErrStopStream

// StreamOptions carries per-stream execution options.
type StreamOptions struct {
	// OnFailure overrides the DB's failure policy for this query: "fail",
	// "skip" or "degrade" ("" keeps the DB default). See SetFailurePolicy.
	OnFailure string
	// Limit, when > 0, stops the stream after that many rows: production
	// is cancelled upstream (unevaluated rows are never paid for), the
	// result is marked Truncated, and Stats cover only the work performed.
	Limit int
}

// StreamResult summarizes a completed (or early-stopped) stream.
type StreamResult struct {
	// Columns holds the projected column names (also passed to every emit
	// call's cells implicitly — cells[i] is the value of Columns[i]).
	Columns []string
	// Stats covers the evaluation actually performed. After an early stop
	// (Limit reached or emit returned ErrStopStream) they reflect only the
	// batches pulled before the stop.
	Stats Stats
	// RowCount is the number of rows delivered to emit.
	RowCount int
	// Truncated reports that Limit stopped the stream before exhaustion.
	Truncated bool
}

// QueryStream executes a statement and delivers result rows incrementally:
// emit is called with each deterministic batch's base-table row ids and
// rendered cells as execution produces them, instead of materializing the
// full result. For streaming plan shapes (exact selections and conjunction
// waves) the first batch arrives while later rows are still unevaluated;
// blocking shapes (sampling pipelines, the §5 two-predicate plan, joins)
// finish evaluating first and then stream the finished result out in
// batches. Rows arrive in base-table order, rendered identically to
// Query's materialized cells. emit returning ErrStopStream stops the
// stream early (successfully); any other error aborts the query with that
// error. EXPLAIN / EXPLAIN ANALYZE statements are not streamable.
//
// The determinism contract is unchanged: for a given seed, the
// concatenation of all emitted batches — and the final Stats — are
// bit-for-bit identical at every parallelism level and batch size (see
// SetBatchSize for the circuit-breaker caveat).
func (db *DB) QueryStream(ctx context.Context, sql string, opts StreamOptions, emit func(ids []int, cells [][]string) error) (*StreamResult, error) {
	if emit == nil {
		return nil, fmt.Errorf("predeval: QueryStream requires an emit callback")
	}
	tr := obs.FromContext(ctx)
	sp := tr.Start("parse")
	stmt, err := sqlparse.Parse(sql)
	sp.End()
	if err != nil {
		return nil, err
	}
	if stmt.Explain || stmt.Analyze {
		return nil, fmt.Errorf("predeval: EXPLAIN statements cannot be streamed")
	}
	if opts.OnFailure != "" {
		policy, err := engine.ParseFailurePolicy(opts.OnFailure)
		if err != nil {
			return nil, err
		}
		stmt.Query.OnFailure = policy
	}
	if opts.Limit < 0 {
		return nil, fmt.Errorf("predeval: negative stream limit %d", opts.Limit)
	}
	cols, render, err := db.eng.Renderer(stmt.Query)
	if err != nil {
		return nil, err
	}
	res := &StreamResult{Columns: cols}
	sink := func(rows []int) error {
		if opts.Limit > 0 && res.RowCount+len(rows) >= opts.Limit {
			rows = rows[:opts.Limit-res.RowCount]
			res.Truncated = true
		}
		if len(rows) > 0 {
			cells := make([][]string, len(rows))
			for i, row := range rows {
				cells[i] = render(row)
			}
			err := emit(rows, cells)
			res.RowCount += len(rows)
			if err != nil {
				return err
			}
		}
		if res.Truncated {
			return ErrStopStream
		}
		return nil
	}
	var stats engine.Stats
	if stmt.Join != nil {
		sj, err := stmt.SelectJoin()
		if err != nil {
			return nil, err
		}
		stats, err = db.eng.ExecuteStreamSelectJoinContext(ctx, sj, sink)
		if err != nil {
			return nil, err
		}
	} else {
		stats, err = db.eng.ExecuteStreamContext(ctx, stmt.Query, sink)
		if err != nil {
			return nil, err
		}
	}
	res.Stats = Stats{
		Evaluations:         stats.Evaluations,
		Retrievals:          stats.Retrievals,
		Cost:                stats.Cost,
		ChosenColumn:        stats.ChosenColumn,
		Sampled:             stats.Sampled,
		Exact:               stats.Exact,
		AchievedRecallBound: stats.AchievedRecallBound,
		CacheHits:           stats.CacheHits,
		CacheMisses:         stats.CacheMisses,
		FailedRows:          stats.FailedRows,
		Retries:             stats.Retries,
		BreakerTrips:        stats.BreakerTrips,
		Degraded:            stats.Degraded,
	}
	return res, nil
}

// TableNames lists the registered tables in sorted order.
func (db *DB) TableNames() []string { return db.eng.TableNames() }

// ColumnInfo describes one column of a registered table.
type ColumnInfo struct {
	Name string
	Type string
}

// TableInfo describes a registered table: its name, row count and schema.
type TableInfo struct {
	Name    string
	Rows    int
	Columns []ColumnInfo
}

// TableInfo reports the schema and row count of a registered table.
func (db *DB) TableInfo(name string) (TableInfo, error) {
	tbl, err := db.eng.Table(name)
	if err != nil {
		return TableInfo{}, err
	}
	info := TableInfo{Name: name, Rows: tbl.NumRows()}
	schema := tbl.Schema()
	for i := 0; i < schema.Len(); i++ {
		def := schema.Col(i)
		info.Columns = append(info.Columns, ColumnInfo{Name: def.Name, Type: def.Type.String()})
	}
	return info, nil
}

// NumRows reports the row count of a registered table... exposed for
// tooling.
func (db *DB) NumRows(tableName string) (int, error) {
	tbl, err := db.eng.Table(tableName)
	if err != nil {
		return 0, err
	}
	return tbl.NumRows(), nil
}

// Engine exposes the underlying engine for advanced, non-SQL use (the
// examples use it to pin columns and run budget queries directly).
func (db *DB) Engine() *engine.Engine { return db.eng }
