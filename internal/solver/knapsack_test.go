package solver

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func bruteForceKnapsack(weights []float64, values []int, threshold int) float64 {
	n := len(weights)
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		w, v := 0.0, 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				w += weights[i]
				v += values[i]
			}
		}
		if v >= threshold && w < best {
			best = w
		}
	}
	return best
}

func TestMinKnapsackKnownInstance(t *testing.T) {
	weights := []float64{5, 4, 3, 2}
	values := []int{4, 3, 2, 1}
	items, w, err := MinKnapsack(weights, values, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Best: items 1 and 2 (values 3+2=5, weight 7).
	if math.Abs(w-7) > 1e-9 {
		t.Fatalf("weight %v want 7 (items %v)", w, items)
	}
	gotV := 0
	for _, i := range items {
		gotV += values[i]
	}
	if gotV < 5 {
		t.Fatalf("selected value %d below threshold", gotV)
	}
}

func TestMinKnapsackMatchesBruteForce(t *testing.T) {
	r := stats.NewRNG(103)
	for trial := 0; trial < 80; trial++ {
		n := 1 + r.IntN(10)
		weights := make([]float64, n)
		values := make([]int, n)
		total := 0
		for i := 0; i < n; i++ {
			weights[i] = float64(1 + r.IntN(40))
			values[i] = r.IntN(15)
			total += values[i]
		}
		if total == 0 {
			continue
		}
		threshold := 1 + r.IntN(total)
		want := bruteForceKnapsack(weights, values, threshold)
		items, got, err := MinKnapsack(weights, values, threshold)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
		// Returned items must actually achieve the threshold and weight.
		v, w := 0, 0.0
		for _, i := range items {
			v += values[i]
			w += weights[i]
		}
		if v < threshold || math.Abs(w-got) > 1e-9 {
			t.Fatalf("trial %d: reported solution inconsistent (v=%d w=%v got=%v)", trial, v, w, got)
		}
	}
}

func TestMinKnapsackEdgeCases(t *testing.T) {
	if items, w, err := MinKnapsack(nil, nil, 0); err != nil || w != 0 || len(items) != 0 {
		t.Fatalf("zero threshold should be trivially solvable: %v %v %v", items, w, err)
	}
	if _, _, err := MinKnapsack([]float64{1}, []int{1}, 5); err == nil {
		t.Fatal("unreachable threshold should error")
	}
	if _, _, err := MinKnapsack([]float64{1}, []int{1, 2}, 1); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, _, err := MinKnapsack([]float64{1}, []int{-1}, 1); err == nil {
		t.Fatal("negative value should error")
	}
}
