package solver

import (
	"errors"
	"math"
)

// Constraint is a scalar inequality g(x) ≤ 0. Grad may be nil, in which
// case a central finite difference is used.
type Constraint struct {
	F    func(x []float64) float64
	Grad func(x []float64, out []float64)
}

// Problem is a convex minimization problem
//
//	minimize  Obj(x)
//	s.t.      Cons[i](x) ≤ 0  for all i
//	          x ∈ S           (S encoded by the Project operator)
//
// Project must be the Euclidean projection onto a convex set (for execution
// strategies, the product of {0 ≤ E ≤ R ≤ 1} triangles). ObjGrad may be nil
// to request finite differences.
type Problem struct {
	Dim     int
	Obj     func(x []float64) float64
	ObjGrad func(x []float64, out []float64)
	Cons    []Constraint
	Project func(x []float64)
}

// Options tunes the projected-gradient solver. Zero values select sane
// defaults.
type Options struct {
	// MaxOuter is the number of penalty-continuation rounds (default 12).
	MaxOuter int
	// MaxInner is the number of projected-gradient steps per round
	// (default 400).
	MaxInner int
	// Tol is the maximum allowed constraint violation (default 1e-6,
	// relative to constraint scale as supplied by the caller).
	Tol float64
	// InitialPenalty is the starting quadratic penalty weight (default 10).
	InitialPenalty float64
	// PenaltyGrowth multiplies the penalty each round (default 8).
	PenaltyGrowth float64
	// Step is the initial step size for backtracking (default 1).
	Step float64
}

func (o *Options) fill() {
	if o.MaxOuter <= 0 {
		o.MaxOuter = 12
	}
	if o.MaxInner <= 0 {
		o.MaxInner = 400
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.InitialPenalty <= 0 {
		o.InitialPenalty = 10
	}
	if o.PenaltyGrowth <= 1 {
		o.PenaltyGrowth = 8
	}
	if o.Step <= 0 {
		o.Step = 1
	}
}

// ErrInfeasible is returned when the solver cannot reduce the constraint
// violation below the tolerance.
var ErrInfeasible = errors.New("solver: could not find a feasible point")

// Result reports the solution of a Solve call.
type Result struct {
	X         []float64
	Objective float64
	// MaxViolation is the largest constraint value max_i g_i(x) (≤ Tol on
	// success; 0 means strictly feasible).
	MaxViolation float64
	// Iterations counts total inner gradient steps taken.
	Iterations int
}

// Solve minimizes the problem with a quadratic-penalty projected-gradient
// method: each outer round minimizes Obj(x) + μ·Σ max(0, gᵢ(x))² by
// projected gradient descent with backtracking line search, then grows μ.
// x0 is the starting point (copied). For convex problems this converges to
// a feasible near-optimal point; the caller should verify domain-specific
// feasibility with its own exact check.
func Solve(p Problem, x0 []float64, opt Options) (Result, error) {
	opt.fill()
	if len(x0) != p.Dim {
		return Result{}, errors.New("solver: x0 dimension mismatch")
	}
	x := append([]float64(nil), x0...)
	if p.Project != nil {
		p.Project(x)
	}
	grad := make([]float64, p.Dim)
	cand := make([]float64, p.Dim)
	cgrad := make([]float64, p.Dim)
	mu := opt.InitialPenalty
	iters := 0

	penalty := func(x []float64) float64 {
		total := 0.0
		for _, c := range p.Cons {
			if v := c.F(x); v > 0 {
				total += v * v
			}
		}
		return total
	}
	merit := func(x []float64) float64 { return p.Obj(x) + mu*penalty(x) }

	meritGrad := func(x []float64, out []float64) {
		objGrad(p, x, out)
		for _, c := range p.Cons {
			v := c.F(x)
			if v <= 0 {
				continue
			}
			consGrad(c, x, cgrad)
			for i := range out {
				out[i] += 2 * mu * v * cgrad[i]
			}
		}
	}

	for outer := 0; outer < opt.MaxOuter; outer++ {
		step := opt.Step
		fx := merit(x)
		resets := 0
		for inner := 0; inner < opt.MaxInner; inner++ {
			iters++
			meritGrad(x, grad)
			gnorm := 0.0
			for _, g := range grad {
				gnorm += g * g
			}
			if gnorm < 1e-18 {
				break
			}
			// Normalize the step against the gradient magnitude so large
			// penalty weights do not force absurd first trial points.
			if gn := math.Sqrt(gnorm); step*gn > 8 {
				step = 8 / gn
			}
			// Backtracking line search on the projected step.
			improved := false
			for try := 0; try < 60; try++ {
				for i := range cand {
					cand[i] = x[i] - step*grad[i]
				}
				if p.Project != nil {
					p.Project(cand)
				}
				fc := merit(cand)
				if fc < fx-1e-18 {
					copy(x, cand)
					fx = fc
					improved = true
					// Gentle step growth keeps progress fast once the
					// region is found.
					step *= 1.3
					break
				}
				step /= 2
				if step < 1e-18 {
					break
				}
			}
			if !improved {
				if resets < 2 {
					resets++
					step = opt.Step
					continue
				}
				break
			}
		}
		if maxViolation(p, x) <= opt.Tol {
			return Result{X: x, Objective: p.Obj(x), MaxViolation: maxViolation(p, x), Iterations: iters}, nil
		}
		mu *= opt.PenaltyGrowth
	}
	mv := maxViolation(p, x)
	res := Result{X: x, Objective: p.Obj(x), MaxViolation: mv, Iterations: iters}
	if mv > opt.Tol {
		return res, ErrInfeasible
	}
	return res, nil
}

func maxViolation(p Problem, x []float64) float64 {
	worst := 0.0
	for _, c := range p.Cons {
		if v := c.F(x); v > worst {
			worst = v
		}
	}
	return worst
}

func objGrad(p Problem, x []float64, out []float64) {
	if p.ObjGrad != nil {
		p.ObjGrad(x, out)
		return
	}
	finiteDiff(p.Obj, x, out)
}

func consGrad(c Constraint, x []float64, out []float64) {
	if c.Grad != nil {
		c.Grad(x, out)
		return
	}
	finiteDiff(c.F, x, out)
}

// finiteDiff writes the central-difference gradient of f at x into out.
func finiteDiff(f func([]float64) float64, x []float64, out []float64) {
	const h = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		fp := f(x)
		x[i] = orig - h
		fm := f(x)
		x[i] = orig
		out[i] = (fp - fm) / (2 * h)
	}
}

// Bisect finds a root of f on [lo, hi] assuming f(lo) and f(hi) bracket
// zero; it returns the midpoint after iters halvings (default 100 when
// iters <= 0). Used by scalar threshold searches in the optimizer.
func Bisect(f func(float64) float64, lo, hi float64, iters int) float64 {
	if iters <= 0 {
		iters = 100
	}
	flo := f(lo)
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		fm := f(mid)
		if (flo <= 0) == (fm <= 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MinimizeScalar minimizes a unimodal function on [lo, hi] by golden-section
// search and returns the minimizing argument.
func MinimizeScalar(f func(float64) float64, lo, hi float64, iters int) float64 {
	if iters <= 0 {
		iters = 80
	}
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < iters; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	total := 0.0
	for i := range a {
		total += a[i] * b[i]
	}
	return total
}

// NaNGuard returns an error if any coordinate is NaN or infinite.
func NaNGuard(x []float64) error {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("solver: non-finite coordinate")
		}
	}
	return nil
}
