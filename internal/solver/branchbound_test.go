package solver

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// bruteForcePerfectInfo enumerates all 3^n assignments.
func bruteForcePerfectInfo(p PerfectInfoInstance) ([]Action, float64) {
	n := len(p.Correct)
	totalCorrect := 0
	for _, c := range p.Correct {
		totalCorrect += c
	}
	gamma := p.Beta * float64(totalCorrect)
	invAlphaMinus1 := math.Inf(1)
	if p.Alpha > 0 {
		invAlphaMinus1 = 1/p.Alpha - 1
	}
	best := math.Inf(1)
	var bestActs []Action
	acts := make([]Action, n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			cost, recall, prec := 0.0, 0.0, 0.0
			for i, a := range acts {
				cost += p.cost(i, a)
				r, pc := p.contribution(i, a, invAlphaMinus1)
				recall += r
				if p.Alpha > 0 {
					prec += pc
				}
			}
			if recall >= gamma-1e-9 && (p.Alpha <= 0 || prec >= -1e-9) && cost < best {
				best = cost
				bestActs = append([]Action(nil), acts...)
			}
			return
		}
		for _, a := range []Action{Discard, Retrieve, Evaluate} {
			acts[k] = a
			rec(k + 1)
		}
	}
	rec(0)
	return bestActs, best
}

func TestSolvePerfectInfoPaperExample(t *testing.T) {
	// Example 3.1: groups of 1000 tuples with 900/500/100 correct,
	// α = β = 0.9, o_r = 1, o_e = 3. Optimal: retrieve group 0, evaluate
	// group 1, discard group 2; cost = 1000·1 + 1000·4 = 5000.
	p := PerfectInfoInstance{
		Correct:      []int{900, 500, 100},
		Wrong:        []int{100, 500, 900},
		Alpha:        0.9,
		Beta:         0.9,
		RetrieveCost: 1,
		EvaluateCost: 3,
	}
	acts, cost, err := SolvePerfectInfo(p)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 5000 {
		t.Fatalf("cost %v want 5000 (actions %v)", cost, acts)
	}
	want := []Action{Retrieve, Evaluate, Discard}
	for i := range want {
		if acts[i] != want[i] {
			t.Fatalf("actions %v want %v", acts, want)
		}
	}
}

func TestSolvePerfectInfoMatchesBruteForce(t *testing.T) {
	r := stats.NewRNG(91)
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.IntN(6)
		p := PerfectInfoInstance{
			Correct:      make([]int, n),
			Wrong:        make([]int, n),
			Alpha:        0.5 + 0.4*r.Float64(),
			Beta:         0.5 + 0.4*r.Float64(),
			RetrieveCost: 1,
			EvaluateCost: 1 + float64(r.IntN(5)),
		}
		for i := 0; i < n; i++ {
			p.Correct[i] = r.IntN(50)
			p.Wrong[i] = r.IntN(50)
		}
		_, wantCost := bruteForcePerfectInfo(p)
		_, gotCost, err := SolvePerfectInfo(p)
		if err != nil {
			t.Fatalf("trial %d: %v (instance %+v)", trial, err, p)
		}
		if math.Abs(gotCost-wantCost) > 1e-6 {
			t.Fatalf("trial %d: cost %v want %v (instance %+v)", trial, gotCost, wantCost, p)
		}
	}
}

func TestSolvePerfectInfoAlphaZeroReducesToKnapsack(t *testing.T) {
	// Theorem 3.2's reduction, run forwards: with α = 0 the problem is a
	// min-knapsack. Cross-check against the DP.
	r := stats.NewRNG(95)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.IntN(6)
		values := make([]int, n)
		weights := make([]float64, n)
		total := 0
		for i := 0; i < n; i++ {
			values[i] = 1 + r.IntN(20)
			// Scale weights above values as the proof requires (w > v).
			weights[i] = float64(values[i]) + 1 + float64(r.IntN(30))
			total += values[i]
		}
		threshold := 1 + r.IntN(total)

		_, wantWeight, err := MinKnapsack(weights, values, threshold)
		if err != nil {
			t.Fatal(err)
		}

		inst := PerfectInfoInstance{
			Correct:      values,
			Wrong:        make([]int, n),
			Alpha:        0,
			Beta:         float64(threshold) / float64(total),
			RetrieveCost: 1,
			EvaluateCost: 100, // must never be chosen when α = 0
		}
		for i := 0; i < n; i++ {
			inst.Wrong[i] = int(weights[i]) - values[i]
		}
		acts, gotCost, err := SolvePerfectInfo(inst)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range acts {
			if a == Evaluate {
				t.Fatalf("trial %d: group %d evaluated despite α=0", trial, i)
			}
		}
		// Account for β·total rounding: the B&B needs Σ v·R ≥ β·total which
		// equals the threshold exactly by construction.
		if math.Abs(gotCost-wantWeight) > 1e-6 {
			t.Fatalf("trial %d: B&B cost %v, knapsack weight %v", trial, gotCost, wantWeight)
		}
	}
}

func TestGreedyPerfectInfoFeasibleAndBoundsExact(t *testing.T) {
	r := stats.NewRNG(99)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.IntN(7)
		p := PerfectInfoInstance{
			Correct:      make([]int, n),
			Wrong:        make([]int, n),
			Alpha:        0.5 + 0.4*r.Float64(),
			Beta:         0.5 + 0.4*r.Float64(),
			RetrieveCost: 1,
			EvaluateCost: 3,
		}
		for i := 0; i < n; i++ {
			p.Correct[i] = r.IntN(40) + 1
			p.Wrong[i] = r.IntN(40)
		}
		acts, cost := GreedyPerfectInfo(p)
		// Verify feasibility.
		totalCorrect := 0
		for _, c := range p.Correct {
			totalCorrect += c
		}
		gamma := p.Beta * float64(totalCorrect)
		invAlphaMinus1 := 1/p.Alpha - 1
		recall, prec := 0.0, 0.0
		for i, a := range acts {
			rc, pc := p.contribution(i, a, invAlphaMinus1)
			recall += rc
			prec += pc
		}
		if recall < gamma-1e-9 {
			t.Fatalf("trial %d: greedy recall %v < %v", trial, recall, gamma)
		}
		if prec < -1e-9 {
			t.Fatalf("trial %d: greedy precision slack %v < 0", trial, prec)
		}
		_, exact, err := SolvePerfectInfo(p)
		if err != nil {
			t.Fatal(err)
		}
		if cost < exact-1e-9 {
			t.Fatalf("trial %d: greedy cost %v beat exact %v", trial, cost, exact)
		}
	}
}

func TestSolvePerfectInfoLengthMismatch(t *testing.T) {
	_, _, err := SolvePerfectInfo(PerfectInfoInstance{Correct: []int{1}, Wrong: []int{1, 2}})
	if err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestActionString(t *testing.T) {
	if Discard.String() != "discard" || Retrieve.String() != "retrieve" || Evaluate.String() != "evaluate" {
		t.Fatal("Action.String mismatch")
	}
	if Action(42).String() != "invalid" {
		t.Fatal("invalid action should stringify as invalid")
	}
}
