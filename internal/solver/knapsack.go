package solver

import "errors"

// Min-knapsack: given items with weights w and values v, pick a subset with
// total value ≥ threshold minimizing total weight. The paper's Theorem 3.2
// reduces this problem to the Perfect-Information problem (with α = 0);
// this exact DP lets tests verify that reduction end-to-end.

// MinKnapsack solves the minimum knapsack problem exactly by dynamic
// programming over achievable value totals. weights and values must be
// non-negative; threshold ≥ 0. It returns the chosen item indices (in
// increasing order) and the minimum total weight. If the threshold is
// unreachable it returns an error.
//
// Complexity is O(n·V) time where V = min(threshold, Σ values).
func MinKnapsack(weights []float64, values []int, threshold int) ([]int, float64, error) {
	n := len(weights)
	if len(values) != n {
		return nil, 0, errors.New("solver: weights/values length mismatch")
	}
	if threshold <= 0 {
		return nil, 0, nil
	}
	totalValue := 0
	for _, v := range values {
		if v < 0 {
			return nil, 0, errors.New("solver: negative value")
		}
		totalValue += v
	}
	if totalValue < threshold {
		return nil, 0, errors.New("solver: threshold unreachable")
	}

	// dp[t] = min weight achieving value total ≥ t, for t in [0, threshold].
	// Values above the threshold are capped at threshold, which preserves
	// optimality for the "≥ threshold" objective.
	const inf = 1e300
	dp := make([]float64, threshold+1)
	choice := make([][]int32, threshold+1) // items chosen to reach state t
	for t := 1; t <= threshold; t++ {
		dp[t] = inf
	}
	for i := 0; i < n; i++ {
		if values[i] == 0 {
			continue
		}
		w, v := weights[i], values[i]
		for t := threshold; t >= 1; t-- {
			from := t - v
			if from < 0 {
				from = 0
			}
			if dp[from] < inf && dp[from]+w < dp[t] {
				dp[t] = dp[from] + w
				choice[t] = append(append([]int32(nil), choice[from]...), int32(i))
			}
		}
	}
	if dp[threshold] >= inf {
		return nil, 0, errors.New("solver: threshold unreachable")
	}
	items := make([]int, len(choice[threshold]))
	for i, v := range choice[threshold] {
		items[i] = int(v)
	}
	return items, dp[threshold], nil
}
