package solver

import (
	"errors"
	"math"
	"sort"
)

// The Perfect-Information problem (Problem 1, Section 3.1): for each group
// choose one of three deterministic actions — discard, retrieve, or
// retrieve-and-evaluate — to minimize cost subject to exact recall and
// precision constraints. The paper proves this NP-hard by reduction from
// min-knapsack; this file provides an exact branch-and-bound optimizer that
// is practical for the group counts real predictors produce (tens of
// groups), plus a greedy fallback used as an upper bound and for very wide
// instances.

// Action is the deterministic per-group decision.
type Action uint8

const (
	// Discard drops the whole group: no cost, no output.
	Discard Action = iota
	// Retrieve returns the whole group without evaluating the UDF.
	Retrieve
	// Evaluate retrieves the group and evaluates the UDF on every tuple,
	// returning only matching tuples.
	Evaluate
)

func (a Action) String() string {
	switch a {
	case Discard:
		return "discard"
	case Retrieve:
		return "retrieve"
	case Evaluate:
		return "evaluate"
	default:
		return "invalid"
	}
}

// PerfectInfoInstance describes a Problem 1 instance. Correct[i] and
// Wrong[i] are the exact counts Cₐ and Wₐ for group i; RetrieveCost and
// EvaluateCost are o_r and o_e.
type PerfectInfoInstance struct {
	Correct      []int
	Wrong        []int
	Alpha        float64 // precision lower bound α
	Beta         float64 // recall lower bound β
	RetrieveCost float64 // o_r
	EvaluateCost float64 // o_e
}

// ErrNoFeasibleAssignment is returned when no action vector satisfies the
// constraints (only possible when α or β exceed what evaluation everywhere
// can deliver, which cannot happen for α,β ≤ 1 — kept for safety).
var ErrNoFeasibleAssignment = errors.New("solver: no feasible action assignment")

// groupOrder sorts groups by decreasing "value density" Cₐ/(Cₐ+Wₐ) so the
// search finds good incumbents early.
func (p PerfectInfoInstance) groupOrder() []int {
	order := make([]int, len(p.Correct))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		i, j := order[x], order[y]
		ti := float64(p.Correct[i] + p.Wrong[i])
		tj := float64(p.Correct[j] + p.Wrong[j])
		si, sj := 0.0, 0.0
		if ti > 0 {
			si = float64(p.Correct[i]) / ti
		}
		if tj > 0 {
			sj = float64(p.Correct[j]) / tj
		}
		if si != sj {
			return si > sj
		}
		return ti > tj
	})
	return order
}

// cost returns the cost of taking action act on group i.
func (p PerfectInfoInstance) cost(i int, act Action) float64 {
	t := float64(p.Correct[i] + p.Wrong[i])
	switch act {
	case Discard:
		return 0
	case Retrieve:
		return t * p.RetrieveCost
	default:
		return t * (p.RetrieveCost + p.EvaluateCost)
	}
}

// contribution returns the (recall numerator, precision slack) contribution
// of taking action act on group i.
//
// Recall constraint: Σ Cₐ·Rₐ ≥ β·ΣCₐ — both Retrieve and Evaluate
// contribute Cₐ. Precision constraint (Eq. 3):
// Σ ((1/α − 1)·Cₐ − Wₐ)·Rₐ + Wₐ·Eₐ ≥ 0.
func (p PerfectInfoInstance) contribution(i int, act Action, invAlphaMinus1 float64) (recall float64, precision float64) {
	c, w := float64(p.Correct[i]), float64(p.Wrong[i])
	switch act {
	case Discard:
		return 0, 0
	case Retrieve:
		return c, invAlphaMinus1*c - w
	default: // Evaluate
		return c, invAlphaMinus1 * c
	}
}

// SolvePerfectInfo finds the minimum-cost deterministic action assignment,
// exactly, via depth-first branch and bound. Groups are explored in
// decreasing selectivity order; the search prunes on (a) cost ≥ incumbent
// and (b) optimistic bounds showing the remaining groups cannot repair the
// recall or precision deficit.
//
// Runtime is worst-case exponential in the number of groups (the problem is
// NP-hard), but the pruning keeps instances with dozens of groups fast in
// practice. For α = 0 pass Alpha = 0; the precision constraint then never
// binds.
func SolvePerfectInfo(p PerfectInfoInstance) ([]Action, float64, error) {
	n := len(p.Correct)
	if len(p.Wrong) != n {
		return nil, 0, errors.New("solver: Correct/Wrong length mismatch")
	}
	totalCorrect := 0
	for _, c := range p.Correct {
		totalCorrect += c
	}
	gamma := p.Beta * float64(totalCorrect) // required Σ Cₐ Rₐ
	invAlphaMinus1 := math.Inf(1)
	if p.Alpha > 0 {
		invAlphaMinus1 = 1/p.Alpha - 1
	}

	order := p.groupOrder()

	// Suffix optimistic bounds: the most recall / precision slack the groups
	// from position k onward could still add (taking the best action each).
	sufRecall := make([]float64, n+1)
	sufPrec := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		i := order[k]
		bestR, bestP := 0.0, 0.0
		for _, act := range []Action{Discard, Retrieve, Evaluate} {
			r, pc := p.contribution(i, act, invAlphaMinus1)
			if p.Alpha <= 0 {
				pc = 0
			}
			if r > bestR {
				bestR = r
			}
			if pc > bestP {
				bestP = pc
			}
		}
		sufRecall[k] = sufRecall[k+1] + bestR
		sufPrec[k] = sufPrec[k+1] + bestP
	}

	best := math.Inf(1)
	var bestActs []Action
	acts := make([]Action, n)

	var dfs func(k int, cost, recall, prec float64)
	dfs = func(k int, cost, recall, prec float64) {
		if cost >= best {
			return
		}
		if recall+sufRecall[k] < gamma-1e-9 {
			return
		}
		if p.Alpha > 0 && prec+sufPrec[k] < -1e-9 {
			return
		}
		if k == n {
			if recall >= gamma-1e-9 && (p.Alpha <= 0 || prec >= -1e-9) {
				best = cost
				bestActs = append([]Action(nil), acts...)
			}
			return
		}
		i := order[k]
		// Try cheap actions first so incumbents improve quickly.
		for _, act := range []Action{Discard, Retrieve, Evaluate} {
			r, pc := p.contribution(i, act, invAlphaMinus1)
			if p.Alpha <= 0 {
				pc = 0
			}
			acts[i] = act
			dfs(k+1, cost+p.cost(i, act), recall+r, prec+pc)
		}
		acts[i] = Discard
	}
	dfs(0, 0, 0, 0)

	if bestActs == nil {
		// Evaluating everything always satisfies both constraints
		// (precision 1, recall 1), so this is unreachable for valid input.
		return nil, 0, ErrNoFeasibleAssignment
	}
	return bestActs, best, nil
}

// GreedyPerfectInfo returns a feasible (not necessarily optimal) assignment
// quickly: it retrieves groups in decreasing selectivity order until the
// recall target is met, then switches the retrieved groups with the lowest
// selectivity to Evaluate until precision is met. Used as an incumbent
// seed and for instances too wide for exact search.
func GreedyPerfectInfo(p PerfectInfoInstance) ([]Action, float64) {
	n := len(p.Correct)
	totalCorrect := 0
	for _, c := range p.Correct {
		totalCorrect += c
	}
	gamma := p.Beta * float64(totalCorrect)
	order := p.groupOrder()
	acts := make([]Action, n)
	recall := 0.0
	for _, i := range order {
		if recall >= gamma-1e-9 {
			break
		}
		acts[i] = Retrieve
		recall += float64(p.Correct[i])
	}
	if p.Alpha > 0 {
		invAlphaMinus1 := 1/p.Alpha - 1
		prec := 0.0
		for i, act := range acts {
			_, pc := p.contribution(i, act, invAlphaMinus1)
			prec += pc
		}
		// Upgrade lowest-selectivity retrieved groups to Evaluate.
		for k := n - 1; k >= 0 && prec < -1e-9; k-- {
			i := order[k]
			if acts[i] != Retrieve {
				continue
			}
			_, before := p.contribution(i, Retrieve, invAlphaMinus1)
			_, after := p.contribution(i, Evaluate, invAlphaMinus1)
			acts[i] = Evaluate
			prec += after - before
		}
	}
	cost := 0.0
	for i, act := range acts {
		cost += p.cost(i, act)
	}
	return acts, cost
}
