// Package solver provides the from-scratch numerical optimization substrate
// the paper's optimizer builds on: Euclidean projections onto the feasible
// boxes used by the execution strategies, a projected-gradient method with
// penalty continuation for convex programs, an exact branch-and-bound
// optimizer for the NP-hard 0/1 Perfect-Information problem, and a
// min-knapsack dynamic program (the problem the paper reduces from in its
// hardness proof).
//
// Only the standard library is used.
package solver

// ProjectBox clamps every coordinate of x into [lo[i], hi[i]] in place.
func ProjectBox(x, lo, hi []float64) {
	for i := range x {
		if x[i] < lo[i] {
			x[i] = lo[i]
		} else if x[i] > hi[i] {
			x[i] = hi[i]
		}
	}
}

// ProjectPair returns the Euclidean projection of (r, e) onto the set
// {(R, E) : 0 ≤ E ≤ R ≤ 1}, the per-group feasible region for execution
// strategies (a tuple can only be evaluated if it is retrieved).
//
// The region is the triangle with vertices (0,0), (1,0), (1,1). The
// projection first resolves the E ≤ R half-plane (projecting onto the line
// E=R when violated), then clamps to the unit box; because the triangle's
// box-clamp of a point on the diagonal stays in the triangle, the two-step
// procedure is exact.
func ProjectPair(r, e float64) (float64, float64) {
	if e > r {
		m := (r + e) / 2
		r, e = m, m
	}
	if r < 0 {
		r = 0
	} else if r > 1 {
		r = 1
	}
	if e < 0 {
		e = 0
	} else if e > r {
		e = r
	}
	return r, e
}

// ProjectStrategy projects interleaved (R₁,E₁,R₂,E₂,…) coordinates onto the
// product of per-group triangles, in place. len(x) must be even.
func ProjectStrategy(x []float64) {
	for i := 0; i+1 < len(x); i += 2 {
		x[i], x[i+1] = ProjectPair(x[i], x[i+1])
	}
}
