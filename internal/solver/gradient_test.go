package solver

import (
	"math"
	"testing"
)

func TestSolveQuadraticWithLinearConstraint(t *testing.T) {
	// minimize (x-3)^2 s.t. x <= 1  →  x = 1.
	p := Problem{
		Dim: 1,
		Obj: func(x []float64) float64 { return (x[0] - 3) * (x[0] - 3) },
		Cons: []Constraint{{
			F: func(x []float64) float64 { return x[0] - 1 },
		}},
	}
	res, err := Solve(p, []float64{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 {
		t.Fatalf("x = %v, want 1", res.X[0])
	}
}

func TestSolveLinearOverDisk(t *testing.T) {
	// minimize x+y s.t. x^2+y^2 <= 1  →  (-√2/2, -√2/2), objective -√2.
	p := Problem{
		Dim: 2,
		Obj: func(x []float64) float64 { return x[0] + x[1] },
		ObjGrad: func(x, out []float64) {
			out[0], out[1] = 1, 1
		},
		Cons: []Constraint{{
			F: func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] - 1 },
			Grad: func(x, out []float64) {
				out[0], out[1] = 2*x[0], 2*x[1]
			},
		}},
		Project: func(x []float64) {
			ProjectBox(x, []float64{-2, -2}, []float64{2, 2})
		},
	}
	res, err := Solve(p, []float64{0.5, -0.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective+math.Sqrt2) > 5e-3 {
		t.Fatalf("objective %v, want %v", res.Objective, -math.Sqrt2)
	}
}

func TestSolveStrategyShapedProblem(t *testing.T) {
	// A miniature of the paper's LP: two groups of 100 tuples with
	// selectivities 0.9 and 0.1; minimize cost R1+R2+3(E1+E2) scaled by
	// group size subject to a recall-like linear constraint
	// 90 R1 + 10 R2 >= 72 (β=0.8 of 90 correct tuples... here 0.8·90=72
	// using only group sizes for simplicity). Optimal: R1 = 0.8, rest 0.
	p := Problem{
		Dim: 4, // R1 E1 R2 E2
		Obj: func(x []float64) float64 {
			return 100*(x[0]+3*x[1]) + 100*(x[2]+3*x[3])
		},
		Cons: []Constraint{{
			F: func(x []float64) float64 { return 72 - (90*x[0] + 10*x[2]) },
		}},
		Project: ProjectStrategy,
	}
	res, err := Solve(p, []float64{0.5, 0.5, 0.5, 0.5}, Options{Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-80) > 0.5 {
		t.Fatalf("objective %v, want 80", res.Objective)
	}
	if res.X[1] > 0.01 || res.X[3] > 0.01 {
		t.Fatalf("evaluation probabilities should be ~0, got %v", res.X)
	}
}

func TestSolveInfeasibleReportsError(t *testing.T) {
	// x in [0,1] but constraint wants x >= 2.
	p := Problem{
		Dim: 1,
		Obj: func(x []float64) float64 { return x[0] },
		Cons: []Constraint{{
			F: func(x []float64) float64 { return 2 - x[0] },
		}},
		Project: func(x []float64) { ProjectBox(x, []float64{0}, []float64{1}) },
	}
	_, err := Solve(p, []float64{0}, Options{MaxOuter: 4, MaxInner: 50})
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	p := Problem{Dim: 2, Obj: func(x []float64) float64 { return 0 }}
	if _, err := Solve(p, []float64{1}, Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestBisect(t *testing.T) {
	root := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 0)
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Fatalf("root %v", root)
	}
	// Decreasing function.
	root = Bisect(func(x float64) float64 { return 1 - x }, 0, 3, 0)
	if math.Abs(root-1) > 1e-9 {
		t.Fatalf("root %v", root)
	}
}

func TestMinimizeScalar(t *testing.T) {
	x := MinimizeScalar(func(x float64) float64 { return (x - 1.7) * (x - 1.7) }, 0, 5, 0)
	if math.Abs(x-1.7) > 1e-6 {
		t.Fatalf("argmin %v", x)
	}
}

func TestDot(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("dot %v", d)
	}
}

func TestNaNGuard(t *testing.T) {
	if err := NaNGuard([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := NaNGuard([]float64{1, math.NaN()}); err == nil {
		t.Fatal("expected NaN error")
	}
	if err := NaNGuard([]float64{math.Inf(1)}); err == nil {
		t.Fatal("expected Inf error")
	}
}
