package solver

import (
	"math"
	"testing"
	"testing/quick"
)

func inTriangle(r, e float64) bool {
	return e >= -1e-12 && r >= e-1e-12 && r <= 1+1e-12
}

func TestProjectPairFixedPoints(t *testing.T) {
	for _, tc := range [][2]float64{{0, 0}, {1, 1}, {1, 0}, {0.5, 0.25}, {0.7, 0.7}} {
		r, e := ProjectPair(tc[0], tc[1])
		if r != tc[0] || e != tc[1] {
			t.Fatalf("feasible point (%v,%v) moved to (%v,%v)", tc[0], tc[1], r, e)
		}
	}
}

func TestProjectPairExamples(t *testing.T) {
	cases := []struct{ r, e, wantR, wantE float64 }{
		{2, 0.5, 1, 0.5},     // clamp R
		{-1, -1, 0, 0},       // clamp both
		{0.2, 0.8, 0.5, 0.5}, // project onto diagonal
		{2, 2, 1, 1},         // diagonal then clamp
		{0.5, -0.3, 0.5, 0},  // clamp E only
		{-0.5, 0.5, 0, 0},    // diagonal midpoint is (0,0)
	}
	for _, c := range cases {
		r, e := ProjectPair(c.r, c.e)
		if math.Abs(r-c.wantR) > 1e-12 || math.Abs(e-c.wantE) > 1e-12 {
			t.Fatalf("ProjectPair(%v,%v) = (%v,%v), want (%v,%v)", c.r, c.e, r, e, c.wantR, c.wantE)
		}
	}
}

func TestProjectPairInSetAndIdempotent(t *testing.T) {
	f := func(rRaw, eRaw float64) bool {
		r0 := math.Mod(rRaw, 5)
		e0 := math.Mod(eRaw, 5)
		r, e := ProjectPair(r0, e0)
		if !inTriangle(r, e) {
			return false
		}
		r2, e2 := ProjectPair(r, e)
		return math.Abs(r2-r) < 1e-12 && math.Abs(e2-e) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectPairIsNearestPoint(t *testing.T) {
	// Compare against a dense grid search over the triangle.
	f := func(rRaw, eRaw float64) bool {
		p := [2]float64{math.Mod(rRaw, 3), math.Mod(eRaw, 3)}
		pr, pe := ProjectPair(p[0], p[1])
		got := (pr-p[0])*(pr-p[0]) + (pe-p[1])*(pe-p[1])
		best := math.Inf(1)
		const grid = 60
		for i := 0; i <= grid; i++ {
			r := float64(i) / grid
			for j := 0; j <= i; j++ {
				e := float64(j) / grid
				d := (r-p[0])*(r-p[0]) + (e-p[1])*(e-p[1])
				if d < best {
					best = d
				}
			}
		}
		// The grid is coarse; allow its resolution as slack.
		return got <= best+2.0/grid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectBox(t *testing.T) {
	x := []float64{-1, 0.5, 9}
	ProjectBox(x, []float64{0, 0, 0}, []float64{1, 1, 1})
	want := []float64{0, 0.5, 1}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("ProjectBox got %v want %v", x, want)
		}
	}
}

func TestProjectStrategy(t *testing.T) {
	x := []float64{2, 0.5, 0.2, 0.8, -1, -1}
	ProjectStrategy(x)
	want := []float64{1, 0.5, 0.5, 0.5, 0, 0}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("ProjectStrategy got %v want %v", x, want)
		}
	}
}
