package catalog

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// On-disk format, version 1. Both catalog files are:
//
//	8-byte header: "PREDCAT" + one version byte
//	then records:  uint32 LE payload length | uint32 LE CRC32-C | payload
//
// The payload is one JSON-encoded record. The CRC covers the payload
// only; a record whose length field runs past EOF, whose checksum
// mismatches, or whose payload does not decode marks the end of the
// trustworthy prefix — everything before it is valid (each record was
// fsynced whole before later ones were written), everything from it on is
// a crash artifact and is discarded.

const (
	fileMagic     = "PREDCAT"
	formatVersion = 1
	headerLen     = len(fileMagic) + 1
	// maxRecordLen bounds a single record; anything larger is treated as
	// tail corruption rather than an allocation request.
	maxRecordLen = 1 << 28
)

// Record kinds. Additive facts plus the invalidation tombstone.
const (
	kindOutcomes   = "outcomes"
	kindSamples    = "samples"
	kindColumn     = "column"
	kindInvalidate = "invalidate-udf"
)

// record is the wire form of one catalog fact.
type record struct {
	Kind   string `json:"k"`
	Table  string `json:"t,omitempty"`
	UDF    string `json:"u,omitempty"`
	Column string `json:"c,omitempty"`
	Group  string `json:"g,omitempty"` // grouping column (samples)
	Key    string `json:"w,omitempty"` // workload key (column memos)
	Chosen string `json:"n,omitempty"` // chosen column (column memos)
	Rows   []int  `json:"r,omitempty"`
	Bits   string `json:"b,omitempty"` // one '0'/'1' per entry of Rows
}

// valid rejects structurally damaged payloads that happen to checksum
// (e.g. a bit flip before the CRC was computed never reaches disk, but a
// buggy writer might): replaying them would corrupt memory state.
func (r record) valid() bool {
	switch r.Kind {
	case kindOutcomes, kindSamples:
		return len(r.Rows) == len(r.Bits)
	case kindColumn, kindInvalidate:
		return true
	default:
		// Unknown kinds pass through; apply() ignores them.
		return true
	}
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendLocked serializes records onto the open log in one write, keeping
// goodLen in step. On a failed or short write the tail is truncated back
// to the known-good prefix, so a transient error (ENOSPC, EIO) can never
// leave torn bytes that a later successful append — or an invalidation
// tombstone — would land after (replay stops at the first damaged record,
// so anything after torn bytes is silently lost). Callers hold c.mu.
func (c *Catalog) appendLocked(recs []record) error {
	if c.closed {
		return fmt.Errorf("catalog: closed")
	}
	if c.broken {
		return fmt.Errorf("catalog: log tail damaged by an earlier write failure; reopen the catalog to recover")
	}
	var buf bytes.Buffer
	for _, r := range recs {
		if err := writeRecord(&buf, r); err != nil {
			return err
		}
	}
	if _, err := c.log.Write(buf.Bytes()); err != nil {
		//predlint:allow atomicwrite — crash repair: truncating back to goodLen discards only the partially-written record
		if terr := c.log.Truncate(c.goodLen); terr != nil {
			c.broken = true
		}
		return fmt.Errorf("catalog: %w", err)
	}
	c.goodLen += int64(buf.Len())
	return nil
}

// syncLocked fsyncs the log. Callers hold c.mu.
func (c *Catalog) syncLocked() error {
	if err := c.log.Sync(); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	return nil
}

func writeRecord(w io.Writer, r record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	return nil
}

// parseRecords walks the byte stream after the header and returns the
// decoded records plus the length of the valid prefix (header included)
// and a note describing why parsing stopped early ("" when the whole file
// parsed).
func parseRecords(data []byte) (recs []record, goodLen int, note string) {
	off := headerLen
	for off < len(data) {
		if len(data)-off < 8 {
			return recs, off, fmt.Sprintf("truncated record header at offset %d", off)
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordLen || len(data)-off-8 < n {
			return recs, off, fmt.Sprintf("truncated record payload at offset %d", off)
		}
		payload := data[off+8 : off+8+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, off, fmt.Sprintf("checksum mismatch at offset %d", off)
		}
		var r record
		if err := json.Unmarshal(payload, &r); err != nil || !r.valid() {
			return recs, off, fmt.Sprintf("undecodable record at offset %d", off)
		}
		recs = append(recs, r)
		off += 8 + n
	}
	return recs, off, ""
}

// readRecordFile reads and validates one catalog file. A missing file is
// an empty catalog; a damaged tail is reported (the good prefix is
// returned) but the file is left untouched.
func readRecordFile(path string) ([]record, Recovery, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, Recovery{}, nil
	}
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("catalog: %w", err)
	}
	if len(data) == 0 {
		return nil, Recovery{}, nil
	}
	if len(data) < headerLen || string(data[:len(fileMagic)]) != fileMagic {
		return nil, Recovery{
			Truncated: true,
			Note:      fmt.Sprintf("%s: unrecognized header, file ignored", filepath.Base(path)),
		}, nil
	}
	if v := data[len(fileMagic)]; v != formatVersion {
		return nil, Recovery{}, fmt.Errorf("catalog: %s is format version %d, this build reads version %d", filepath.Base(path), v, formatVersion)
	}
	recs, _, note := parseRecords(data)
	if note != "" {
		return recs, Recovery{Truncated: true, Note: filepath.Base(path) + ": " + note}, nil
	}
	return recs, Recovery{}, nil
}

// recoverRecordFile is readRecordFile for the append-only log: on a
// damaged tail the file is truncated back to its valid prefix so
// subsequent appends produce a clean file. A file with an unrecognized
// header is reset to an empty log (its content cannot be trusted).
func recoverRecordFile(path string) ([]record, Recovery, error) {
	recs, rec, err := readRecordFile(path)
	if err != nil {
		return nil, rec, err
	}
	if !rec.Truncated {
		return recs, rec, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, rec, fmt.Errorf("catalog: %w", err)
	}
	goodLen := 0
	if len(data) >= headerLen && string(data[:len(fileMagic)]) == fileMagic && data[len(fileMagic)] == formatVersion {
		_, goodLen, _ = parseRecords(data)
	}
	if goodLen < headerLen {
		// Header unusable: start the log over.
		f, err := resetLog(path)
		if err != nil {
			return nil, rec, err
		}
		if err := f.Close(); err != nil {
			return nil, rec, fmt.Errorf("catalog: %w", err)
		}
		return recs, rec, nil
	}
	//predlint:allow atomicwrite — recovery: cuts the checksum-damaged tail so the log ends at the last valid record
	if err := os.Truncate(path, int64(goodLen)); err != nil {
		return nil, rec, fmt.Errorf("catalog: %w", err)
	}
	return recs, rec, nil
}

// openAppend opens (creating and writing a header if needed) the log for
// appending. The file is assumed already validated/truncated by
// recoverRecordFile.
func openAppend(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if info.Size() == 0 {
		if err := writeHeader(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("catalog: %w", err)
		}
	}
	return f, nil
}

// resetLog replaces the log with a fresh, fsynced header-only file and
// returns it open for appending.
func resetLog(path string) (*os.File, error) {
	//predlint:allow atomicwrite — only called after snapshot recovery/rename made the old log redundant; a fresh header-only log is the safe state
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if err := writeHeader(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("catalog: %w", err)
	}
	return f, nil
}

func writeHeader(w io.Writer) error {
	hdr := append([]byte(fileMagic), formatVersion)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	return nil
}

// writeSnapshot atomically replaces the snapshot: write tmp, fsync,
// rename, fsync directory.
func writeSnapshot(path string, recs []record) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	err = writeHeader(f)
	for _, r := range recs {
		if err != nil {
			break
		}
		err = writeRecord(f, r)
	}
	if err == nil {
		if serr := f.Sync(); serr != nil {
			err = fmt.Errorf("catalog: %w", serr)
		}
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("catalog: %w", cerr)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("catalog: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}
