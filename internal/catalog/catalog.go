// Package catalog is the durable statistics and outcome store: a
// crash-safe, versioned on-disk catalog that persists the assets the
// engine pays for at query time — raw UDF verdicts per (table, UDF,
// column), labeled sampling evidence per (table, UDF, grouping column),
// and the correlated column chosen by the Section 4.4 discovery pass per
// workload key — so a process restart warm-starts from them instead of
// re-paying o_e.
//
// On disk a catalog directory holds two files:
//
//	catalog.snap   full-state snapshot (rewritten by Compact)
//	catalog.log    append-only delta log since the snapshot (Flush appends)
//
// Both are sequences of length-prefixed, CRC32-checksummed records behind
// a versioned magic header. Open replays the snapshot and then the log;
// a truncated or corrupted tail is detected by checksum, reported, and
// cut off — the good prefix is kept and the damaged suffix is never
// replayed, so a crash can lose recent facts but can never resurrect
// wrong verdicts. Records are additive facts (plus explicit invalidation
// tombstones), so replaying a log over a newer snapshot after a crash
// mid-compaction is idempotent.
//
// Durability contract: facts buffered by Add*/Set* become durable at the
// next Flush (fsync). InvalidateUDF is synchronous — it is fsynced before
// returning, so once a UDF re-registration completes no stale verdict for
// that name can survive a crash. The catalog trusts the operator to
// register the same UDF bodies across restarts; a changed body must be
// re-registered under the engine, which invalidates here.
package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// OutcomeKey identifies one memoizable predicate application: raw UDF
// verdicts are stored per (table, UDF, argument column).
type OutcomeKey struct {
	Table, UDF, Column string
}

// SampleKey identifies accumulated labeled sampling evidence: the rows a
// query labeled or sampled while estimating per-group selectivities,
// stored per (table, UDF, argument column, grouping column).
type SampleKey struct {
	Table, UDF, Column, GroupColumn string
}

// columnChoice is a memoized Section 4.4 discovery result.
type columnChoice struct {
	udf    string
	chosen string
}

// Recovery describes what Open had to do to reach a consistent state.
type Recovery struct {
	// Truncated reports that a corrupted or incomplete tail was detected
	// and cut off (the usual crash signature).
	Truncated bool
	// Note is a human-readable description of what was recovered past.
	Note string
}

// Stats summarizes the catalog's contents and health.
type Stats struct {
	// OutcomeRows is the total number of persisted raw UDF verdicts.
	OutcomeRows int
	// SampleRows is the total number of persisted labeled sample outcomes.
	SampleRows int
	// ColumnMemos is the number of memoized correlated-column choices.
	ColumnMemos int
	// PendingRecords counts buffered deltas not yet flushed to the log.
	PendingRecords int
	// Recovered reports that the last Open truncated a damaged tail.
	Recovered bool
	// RecoveryNote describes the recovery, when Recovered is set.
	RecoveryNote string
}

// Catalog is the in-memory view of one catalog directory plus its open
// append-only log. All methods are safe for concurrent use; reads during
// a Flush or Compact simply wait on the mutex.
type Catalog struct {
	mu  sync.Mutex
	dir string
	log *os.File

	outcomes map[OutcomeKey]map[int]bool
	samples  map[SampleKey]map[int]bool
	columns  map[string]columnChoice

	pending  []record
	recovery Recovery
	closed   bool
	// goodLen is the length of the log's known-good prefix: every byte
	// below it was written whole. A failed append truncates back to it so
	// later records (tombstones above all) are never written after torn
	// bytes that replay would stop at.
	goodLen int64
	// broken marks a log whose tail could not be repaired after a failed
	// append; further writes are refused rather than silently lost.
	broken bool
}

// Open creates dir if needed, replays catalog.snap then catalog.log, and
// returns a catalog positioned to append. Damaged tails are truncated and
// reported via Recovery(); only a version mismatch or an I/O failure is an
// error.
func Open(dir string) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	c := &Catalog{
		dir:      dir,
		outcomes: make(map[OutcomeKey]map[int]bool),
		samples:  make(map[SampleKey]map[int]bool),
		columns:  make(map[string]columnChoice),
	}
	// Snapshot first: a damaged snapshot tail loses facts (safe — they are
	// re-paid), never corrupts what follows, because records are
	// self-contained.
	snapRecs, snapRec, err := readRecordFile(c.snapPath())
	if err != nil {
		return nil, err
	}
	for _, r := range snapRecs {
		c.apply(r)
	}
	// Log second, in append order; its tail is truncated on damage so the
	// file is immediately appendable again.
	logRecs, logRec, err := recoverRecordFile(c.logPath())
	if err != nil {
		return nil, err
	}
	for _, r := range logRecs {
		c.apply(r)
	}
	c.recovery = mergeRecovery(snapRec, logRec)
	f, err := openAppend(c.logPath())
	if err != nil {
		return nil, err
	}
	c.log = f
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("catalog: %w", err)
	}
	c.goodLen = info.Size()
	return c, nil
}

func (c *Catalog) snapPath() string { return filepath.Join(c.dir, "catalog.snap") }
func (c *Catalog) logPath() string  { return filepath.Join(c.dir, "catalog.log") }

// Dir returns the catalog directory.
func (c *Catalog) Dir() string { return c.dir }

// Recovery reports what the last Open had to repair.
func (c *Catalog) Recovery() Recovery {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recovery
}

// apply folds one replayed or freshly buffered record into memory.
func (c *Catalog) apply(r record) {
	switch r.Kind {
	case kindOutcomes:
		k := OutcomeKey{Table: r.Table, UDF: r.UDF, Column: r.Column}
		m := c.outcomes[k]
		if m == nil {
			m = make(map[int]bool, len(r.Rows))
			c.outcomes[k] = m
		}
		for i, row := range r.Rows {
			m[row] = r.Bits[i] == '1'
		}
	case kindSamples:
		k := SampleKey{Table: r.Table, UDF: r.UDF, Column: r.Column, GroupColumn: r.Group}
		m := c.samples[k]
		if m == nil {
			m = make(map[int]bool, len(r.Rows))
			c.samples[k] = m
		}
		for i, row := range r.Rows {
			m[row] = r.Bits[i] == '1'
		}
	case kindColumn:
		c.columns[r.Key] = columnChoice{udf: r.UDF, chosen: r.Chosen}
	case kindInvalidate:
		c.dropUDF(r.UDF)
	}
	// Unknown kinds (written by a newer minor revision) are ignored: they
	// can only be additive facts this revision does not use.
}

// dropUDF removes every fact derived from the named UDF's body.
func (c *Catalog) dropUDF(udf string) {
	for k := range c.outcomes {
		if k.UDF == udf {
			delete(c.outcomes, k)
		}
	}
	for k := range c.samples {
		if k.UDF == udf {
			delete(c.samples, k)
		}
	}
	for k, ch := range c.columns {
		if ch.udf == udf {
			delete(c.columns, k)
		}
	}
}

// Outcomes returns a copy of the persisted raw verdicts for key (nil when
// none are known).
func (c *Catalog) Outcomes(k OutcomeKey) map[int]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return copyRows(c.outcomes[k])
}

// AddOutcomes merges newly paid-for raw verdicts into the catalog and
// buffers the genuinely new ones for the next Flush. Re-adding known
// facts is free (no log growth).
func (c *Catalog) AddOutcomes(k OutcomeKey, verdicts map[int]bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.outcomes[k]
	delta := diffRows(cur, verdicts)
	if len(delta) == 0 {
		return
	}
	if cur == nil {
		cur = make(map[int]bool, len(delta))
		c.outcomes[k] = cur
	}
	for row, v := range delta {
		cur[row] = v
	}
	rows, bits := encodeRows(delta)
	c.pending = append(c.pending, record{
		Kind: kindOutcomes, Table: k.Table, UDF: k.UDF, Column: k.Column,
		Rows: rows, Bits: bits,
	})
}

// Samples returns a copy of the labeled sampling evidence for key (raw,
// unfolded verdicts; nil when none is known).
func (c *Catalog) Samples(k SampleKey) map[int]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return copyRows(c.samples[k])
}

// AddSamples merges labeled sampling evidence (raw verdicts) and buffers
// the new facts for the next Flush.
func (c *Catalog) AddSamples(k SampleKey, verdicts map[int]bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.samples[k]
	delta := diffRows(cur, verdicts)
	if len(delta) == 0 {
		return
	}
	if cur == nil {
		cur = make(map[int]bool, len(delta))
		c.samples[k] = cur
	}
	for row, v := range delta {
		cur[row] = v
	}
	rows, bits := encodeRows(delta)
	c.pending = append(c.pending, record{
		Kind: kindSamples, Table: k.Table, UDF: k.UDF, Column: k.Column, Group: k.GroupColumn,
		Rows: rows, Bits: bits,
	})
}

// ChosenColumn returns the memoized Section 4.4 discovery result for the
// workload key, if one is stored.
func (c *Catalog) ChosenColumn(key string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.columns[key]
	return ch.chosen, ok
}

// SetChosenColumn memoizes a discovery result. udf names the predicate the
// choice was derived from, so invalidating that UDF also drops the memo.
func (c *Catalog) SetChosenColumn(key, udf, chosen string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.columns[key]; ok && cur.udf == udf && cur.chosen == chosen {
		return
	}
	c.columns[key] = columnChoice{udf: udf, chosen: chosen}
	c.pending = append(c.pending, record{Kind: kindColumn, Key: key, UDF: udf, Chosen: chosen})
}

// InvalidateUDF durably drops every fact derived from the named UDF: the
// in-memory state is purged and a tombstone is appended and fsynced before
// returning, so a re-registered UDF body can never serve stale verdicts —
// not even across a crash immediately after this call.
func (c *Catalog) InvalidateUDF(udf string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropUDF(udf)
	// Drop buffered facts for the UDF too: they were derived from the old
	// body and must not be flushed after the tombstone.
	kept := c.pending[:0]
	for _, r := range c.pending {
		if r.UDF == udf {
			continue
		}
		kept = append(kept, r)
	}
	c.pending = kept
	if err := c.appendLocked([]record{{Kind: kindInvalidate, UDF: udf}}); err != nil {
		return err
	}
	return c.syncLocked()
}

// Flush appends every buffered delta to the log and fsyncs. It is cheap
// when nothing is pending.
func (c *Catalog) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Catalog) flushLocked() error {
	if c.closed {
		return fmt.Errorf("catalog: closed")
	}
	if len(c.pending) == 0 {
		return nil
	}
	if err := c.appendLocked(c.pending); err != nil {
		return err
	}
	if err := c.syncLocked(); err != nil {
		return err
	}
	c.pending = c.pending[:0]
	return nil
}

// Compact folds the full state into a fresh snapshot (tmp + fsync +
// rename) and truncates the log. Crashing between the rename and the
// truncate is safe: the old log replays idempotently over the new
// snapshot because replay preserves record order.
func (c *Catalog) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("catalog: closed")
	}
	if err := writeSnapshot(c.snapPath(), c.snapshotRecords()); err != nil {
		return err
	}
	// Truncate the log in place — the handle stays open (O_APPEND puts the
	// next write at the new EOF). If truncation fails the old log is still
	// valid and appendable: replaying it over the fresh snapshot is
	// idempotent, so nothing is lost or wrong, just un-shrunk.
	//predlint:allow atomicwrite — log reset after the snapshot rename made every log record redundant; replay is idempotent
	if err := c.log.Truncate(0); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	c.goodLen = 0
	if err := writeHeader(c.log); err != nil {
		// A header-less log cannot be appended to safely; refuse further
		// writes (the next Open resets it and recovers from the snapshot).
		c.broken = true
		return err
	}
	c.goodLen = int64(headerLen)
	if err := c.syncLocked(); err != nil {
		return err
	}
	c.pending = c.pending[:0] // already folded into the snapshot
	c.broken = false          // the fresh log repairs any earlier tail damage
	return nil
}

// snapshotRecords renders the full state as a deterministic record list.
func (c *Catalog) snapshotRecords() []record {
	var recs []record
	okeys := make([]OutcomeKey, 0, len(c.outcomes))
	for k := range c.outcomes {
		okeys = append(okeys, k)
	}
	sort.Slice(okeys, func(i, j int) bool { return lessOutcome(okeys[i], okeys[j]) })
	for _, k := range okeys {
		rows, bits := encodeRows(c.outcomes[k])
		recs = append(recs, record{Kind: kindOutcomes, Table: k.Table, UDF: k.UDF, Column: k.Column, Rows: rows, Bits: bits})
	}
	skeys := make([]SampleKey, 0, len(c.samples))
	for k := range c.samples {
		skeys = append(skeys, k)
	}
	sort.Slice(skeys, func(i, j int) bool { return lessSample(skeys[i], skeys[j]) })
	for _, k := range skeys {
		rows, bits := encodeRows(c.samples[k])
		recs = append(recs, record{Kind: kindSamples, Table: k.Table, UDF: k.UDF, Column: k.Column, Group: k.GroupColumn, Rows: rows, Bits: bits})
	}
	ckeys := make([]string, 0, len(c.columns))
	for k := range c.columns {
		ckeys = append(ckeys, k)
	}
	sort.Strings(ckeys)
	for _, k := range ckeys {
		ch := c.columns[k]
		recs = append(recs, record{Kind: kindColumn, Key: k, UDF: ch.udf, Chosen: ch.chosen})
	}
	return recs
}

func lessOutcome(a, b OutcomeKey) bool {
	if a.Table != b.Table {
		return a.Table < b.Table
	}
	if a.UDF != b.UDF {
		return a.UDF < b.UDF
	}
	return a.Column < b.Column
}

func lessSample(a, b SampleKey) bool {
	if a.Table != b.Table {
		return a.Table < b.Table
	}
	if a.UDF != b.UDF {
		return a.UDF < b.UDF
	}
	if a.Column != b.Column {
		return a.Column < b.Column
	}
	return a.GroupColumn < b.GroupColumn
}

// Close flushes buffered deltas and releases the log handle. The catalog
// is unusable afterwards.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	err := c.flushLocked()
	if cerr := c.log.Close(); err == nil {
		err = cerr
	}
	c.closed = true
	return err
}

// Stats summarizes contents and recovery state.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		ColumnMemos:    len(c.columns),
		PendingRecords: len(c.pending),
		Recovered:      c.recovery.Truncated,
		RecoveryNote:   c.recovery.Note,
	}
	for _, m := range c.outcomes {
		s.OutcomeRows += len(m)
	}
	for _, m := range c.samples {
		s.SampleRows += len(m)
	}
	return s
}

// copyRows clones a verdict map (nil in, nil out).
func copyRows(m map[int]bool) map[int]bool {
	if m == nil {
		return nil
	}
	out := make(map[int]bool, len(m))
	for row, v := range m {
		out[row] = v
	}
	return out
}

// diffRows returns the entries of next that cur does not already hold.
// A row present in both with a different verdict is included (last write
// wins — this only happens after an invalidation changed the UDF body).
func diffRows(cur, next map[int]bool) map[int]bool {
	delta := make(map[int]bool)
	for row, v := range next {
		if old, ok := cur[row]; !ok || old != v {
			delta[row] = v
		}
	}
	return delta
}

// encodeRows renders a verdict map as a sorted row list plus a '0'/'1'
// bit string (deterministic on-disk form).
func encodeRows(m map[int]bool) ([]int, string) {
	rows := make([]int, 0, len(m))
	for row := range m {
		rows = append(rows, row)
	}
	sort.Ints(rows)
	bits := make([]byte, len(rows))
	for i, row := range rows {
		if m[row] {
			bits[i] = '1'
		} else {
			bits[i] = '0'
		}
	}
	return rows, string(bits)
}

func mergeRecovery(a, b Recovery) Recovery {
	switch {
	case a.Truncated && b.Truncated:
		return Recovery{Truncated: true, Note: a.Note + "; " + b.Note}
	case a.Truncated:
		return a
	default:
		return b
	}
}
