package catalog

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var (
	okey = OutcomeKey{Table: "loans", UDF: "good_credit", Column: "id"}
	skey = SampleKey{Table: "loans", UDF: "good_credit", Column: "id", GroupColumn: "grade"}
)

func open(t *testing.T, dir string) *Catalog {
	t.Helper()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir)
	c.AddOutcomes(okey, map[int]bool{1: true, 2: false, 7: true})
	c.AddSamples(skey, map[int]bool{2: false, 9: true})
	c.SetChosenColumn("wk1", "good_credit", "grade")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := open(t, dir)
	if got := c2.Outcomes(okey); !reflect.DeepEqual(got, map[int]bool{1: true, 2: false, 7: true}) {
		t.Fatalf("outcomes after reopen: %v", got)
	}
	if got := c2.Samples(skey); !reflect.DeepEqual(got, map[int]bool{2: false, 9: true}) {
		t.Fatalf("samples after reopen: %v", got)
	}
	if col, ok := c2.ChosenColumn("wk1"); !ok || col != "grade" {
		t.Fatalf("chosen column after reopen: %q %v", col, ok)
	}
	if rec := c2.Recovery(); rec.Truncated {
		t.Fatalf("clean reopen reported recovery: %+v", rec)
	}
	st := c2.Stats()
	if st.OutcomeRows != 3 || st.SampleRows != 2 || st.ColumnMemos != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestUnflushedFactsAreLost(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir)
	c.AddOutcomes(okey, map[int]bool{1: true})
	// No flush: simulate a crash by reopening the directory.
	c2 := open(t, dir)
	if got := c2.Outcomes(okey); got != nil {
		t.Fatalf("unflushed outcomes survived: %v", got)
	}
}

func TestDeltaFlushDoesNotGrowOnKnownFacts(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir)
	c.AddOutcomes(okey, map[int]bool{1: true, 2: false})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	size1 := fileSize(t, filepath.Join(dir, "catalog.log"))
	// Re-adding the same facts buffers nothing and Flush appends nothing.
	c.AddOutcomes(okey, map[int]bool{1: true, 2: false})
	if st := c.Stats(); st.PendingRecords != 0 {
		t.Fatalf("known facts buffered: %+v", st)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if size2 := fileSize(t, filepath.Join(dir, "catalog.log")); size2 != size1 {
		t.Fatalf("log grew from %d to %d on known facts", size1, size2)
	}
}

// TestCorruptTailTruncated flips a byte in the last log record: open must
// keep the records before it, report the recovery, truncate the tail, and
// leave the log appendable.
func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir)
	c.AddOutcomes(okey, map[int]bool{1: true})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	goodLen := fileSize(t, filepath.Join(dir, "catalog.log"))
	c.AddOutcomes(okey, map[int]bool{2: false})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	logPath := filepath.Join(dir, "catalog.log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // corrupt the second record's payload
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := open(t, dir)
	rec := c2.Recovery()
	if !rec.Truncated || rec.Note == "" {
		t.Fatalf("corruption not reported: %+v", rec)
	}
	if got := c2.Outcomes(okey); !reflect.DeepEqual(got, map[int]bool{1: true}) {
		t.Fatalf("good prefix lost or bad tail replayed: %v", got)
	}
	if size := fileSize(t, logPath); size != goodLen {
		t.Fatalf("log not truncated to good prefix: %d want %d", size, goodLen)
	}
	// The log must be appendable again, and the next open must be clean.
	c2.AddOutcomes(okey, map[int]bool{3: true})
	if err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	c3 := open(t, dir)
	if rec := c3.Recovery(); rec.Truncated {
		t.Fatalf("recovery persisted past repair: %+v", rec)
	}
	if got := c3.Outcomes(okey); !reflect.DeepEqual(got, map[int]bool{1: true, 3: true}) {
		t.Fatalf("outcomes after repair: %v", got)
	}
}

// TestTruncatedMidRecord cuts the log mid-payload, the exact shape a crash
// during append leaves behind.
func TestTruncatedMidRecord(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir)
	c.AddOutcomes(okey, map[int]bool{1: true})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	goodLen := fileSize(t, filepath.Join(dir, "catalog.log"))
	c.AddOutcomes(okey, map[int]bool{2: true})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	logPath := filepath.Join(dir, "catalog.log")
	if err := os.Truncate(logPath, goodLen+5); err != nil {
		t.Fatal(err)
	}
	c2 := open(t, dir)
	if rec := c2.Recovery(); !rec.Truncated {
		t.Fatal("mid-record truncation not detected")
	}
	if got := c2.Outcomes(okey); !reflect.DeepEqual(got, map[int]bool{1: true}) {
		t.Fatalf("outcomes after mid-record cut: %v", got)
	}
	if size := fileSize(t, logPath); size != goodLen {
		t.Fatalf("log not truncated: %d want %d", size, goodLen)
	}
}

// TestGarbageLogReset: a log whose header is unrecognizable cannot be
// trusted at all — it is reset, reported, and never replayed.
func TestGarbageLogReset(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "catalog.log")
	if err := os.WriteFile(logPath, []byte("not a catalog at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := open(t, dir)
	if rec := c.Recovery(); !rec.Truncated {
		t.Fatal("garbage log not reported")
	}
	if st := c.Stats(); st.OutcomeRows != 0 {
		t.Fatalf("garbage replayed: %+v", st)
	}
	c.AddOutcomes(okey, map[int]bool{4: true})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c2 := open(t, dir)
	if got := c2.Outcomes(okey); !reflect.DeepEqual(got, map[int]bool{4: true}) {
		t.Fatalf("outcomes after reset: %v", got)
	}
}

func TestVersionMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir)
	c.AddOutcomes(okey, map[int]bool{1: true})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	logPath := filepath.Join(dir, "catalog.log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(fileMagic)] = 99 // future version
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("future-version catalog opened silently")
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir)
	for i := 0; i < 50; i++ {
		c.AddOutcomes(okey, map[int]bool{i: i%3 == 0})
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	c.SetChosenColumn("wk", "good_credit", "grade")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	logBefore := fileSize(t, filepath.Join(dir, "catalog.log"))
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if logAfter := fileSize(t, filepath.Join(dir, "catalog.log")); logAfter >= logBefore {
		t.Fatalf("compaction did not shrink the log: %d -> %d", logBefore, logAfter)
	}
	// Deltas after compaction land in the fresh log and replay over the
	// snapshot on reopen.
	c.AddOutcomes(okey, map[int]bool{1000: true})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	c2 := open(t, dir)
	got := c2.Outcomes(okey)
	if len(got) != 51 || !got[0] || got[1] || !got[1000] {
		t.Fatalf("state after compaction+reopen: %d rows, sample %v %v %v", len(got), got[0], got[1], got[1000])
	}
	if col, ok := c2.ChosenColumn("wk"); !ok || col != "grade" {
		t.Fatalf("column memo lost in compaction: %q %v", col, ok)
	}
}

// TestCrashMidCompactionReplayIdempotent simulates a crash between the
// snapshot rename and the log truncation: the stale log replays over the
// fresh snapshot without changing the final state.
func TestCrashMidCompactionReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir)
	c.AddOutcomes(okey, map[int]bool{1: true, 2: false})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Save the pre-compaction log, compact, then restore the stale log.
	logPath := filepath.Join(dir, "catalog.log")
	staleLog, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := os.WriteFile(logPath, staleLog, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := open(t, dir)
	if got := c2.Outcomes(okey); !reflect.DeepEqual(got, map[int]bool{1: true, 2: false}) {
		t.Fatalf("stale-log replay changed state: %v", got)
	}
}

func TestInvalidateUDFDurable(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir)
	other := OutcomeKey{Table: "loans", UDF: "other", Column: "id"}
	c.AddOutcomes(okey, map[int]bool{1: true})
	c.AddOutcomes(other, map[int]bool{1: false})
	c.AddSamples(skey, map[int]bool{2: true})
	c.SetChosenColumn("wk", "good_credit", "grade")
	c.SetChosenColumn("wk-other", "other", "grade")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Buffer an unflushed fact for the doomed UDF too: it must not be
	// flushed after the tombstone.
	c.AddOutcomes(okey, map[int]bool{5: true})
	if err := c.InvalidateUDF("good_credit"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	c2 := open(t, dir)
	if got := c2.Outcomes(okey); got != nil {
		t.Fatalf("invalidated outcomes survived: %v", got)
	}
	if got := c2.Samples(skey); got != nil {
		t.Fatalf("invalidated samples survived: %v", got)
	}
	if _, ok := c2.ChosenColumn("wk"); ok {
		t.Fatal("invalidated column memo survived")
	}
	if got := c2.Outcomes(other); !reflect.DeepEqual(got, map[int]bool{1: false}) {
		t.Fatalf("unrelated UDF was dropped: %v", got)
	}
	if col, ok := c2.ChosenColumn("wk-other"); !ok || col != "grade" {
		t.Fatalf("unrelated column memo lost: %q %v", col, ok)
	}
}

// TestWantFoldingAcrossVerdictChange exercises diffRows' last-write-wins
// path: after invalidation a row may legitimately flip verdict.
func TestVerdictFlipAfterInvalidation(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir)
	c.AddOutcomes(okey, map[int]bool{1: true})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.InvalidateUDF("good_credit"); err != nil {
		t.Fatal(err)
	}
	c.AddOutcomes(okey, map[int]bool{1: false})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c2 := open(t, dir)
	if got := c2.Outcomes(okey); !reflect.DeepEqual(got, map[int]bool{1: false}) {
		t.Fatalf("flipped verdict lost: %v", got)
	}
}

func TestClosedCatalogRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c.AddOutcomes(okey, map[int]bool{1: true})
	if err := c.Flush(); err == nil {
		t.Fatal("flush on closed catalog succeeded")
	}
	if err := c.Compact(); err == nil {
		t.Fatal("compact on closed catalog succeeded")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}
