package ml

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/table"
)

// linearlySeparable builds a 2D dataset where y = (x0 + x1 > 0).
func linearlySeparable(rng *stats.RNG, n int) ([][]float64, []bool) {
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		x0 := rng.NormFloat64()
		x1 := rng.NormFloat64()
		X[i] = []float64{x0, x1}
		y[i] = x0+x1 > 0
	}
	return X, y
}

func TestLogisticRegressionSeparable(t *testing.T) {
	rng := stats.NewRNG(1001)
	X, y := linearlySeparable(rng, 600)
	var m LogisticRegression
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range X {
		if m.Predict(X[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Fatalf("training accuracy %v", acc)
	}
	// Probabilities must be calibrated-ish: deep in the positive region
	// P should be high, deep negative low.
	if p := m.Prob([]float64{3, 3}); p < 0.9 {
		t.Fatalf("P(+3,+3) = %v", p)
	}
	if p := m.Prob([]float64{-3, -3}); p > 0.1 {
		t.Fatalf("P(-3,-3) = %v", p)
	}
}

func TestLogisticRegressionProbabilisticLabels(t *testing.T) {
	// Labels drawn with P(y|x0) = sigmoid(2·x0): learned probabilities
	// should track the generating process.
	rng := stats.NewRNG(1003)
	n := 4000
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		X[i] = []float64{x}
		y[i] = rng.Bernoulli(1 / (1 + math.Exp(-2*x)))
	}
	m := LogisticRegression{Epochs: 400}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := m.Prob([]float64{0}); math.Abs(p-0.5) > 0.08 {
		t.Fatalf("P(0) = %v, want ≈0.5", p)
	}
	if p := m.Prob([]float64{1.5}); p < 0.75 {
		t.Fatalf("P(1.5) = %v, want high", p)
	}
}

func TestLogisticRegressionErrors(t *testing.T) {
	var m LogisticRegression
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("empty training set accepted")
	}
	if err := m.Fit([][]float64{{1}}, []bool{true, false}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := m.Fit([][]float64{{1, 2}, {1}}, []bool{true, false}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	unfitted := LogisticRegression{}
	if p := unfitted.Prob([]float64{1}); p != 0.5 {
		t.Fatalf("unfitted Prob %v, want 0.5", p)
	}
}

func TestLogisticRegressionConstantFeature(t *testing.T) {
	// A zero-variance feature must not produce NaNs.
	X := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []bool{false, false, true, true}
	var m LogisticRegression
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := m.Prob([]float64{2.5, 5})
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Fatalf("prob %v", p)
	}
}

func TestSigmoidProperties(t *testing.T) {
	f := func(z float64) bool {
		z = math.Mod(z, 500)
		p := sigmoid(z)
		q := sigmoid(-z)
		return p >= 0 && p <= 1 && math.Abs(p+q-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0) != 0.5")
	}
}

func TestSelfTrainingImprovesOnTinyLabeledSet(t *testing.T) {
	rng := stats.NewRNG(1005)
	X, y := linearlySeparable(rng, 1000)
	labeledIdx := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	labels := make([]bool, len(labeledIdx))
	for k, i := range labeledIdx {
		labels[k] = y[i]
	}
	var st SelfTraining
	probs := st.FitPredict(X, labeledIdx, labels)
	if len(probs) != len(X) {
		t.Fatalf("got %d probs", len(probs))
	}
	correct := 0
	for i := range X {
		if (probs[i] >= 0.5) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.85 {
		t.Fatalf("self-training accuracy %v", acc)
	}
	// Labeled rows must keep their hard labels.
	for k, i := range labeledIdx {
		want := 0.0
		if labels[k] {
			want = 1
		}
		if probs[i] != want {
			t.Fatalf("labeled row %d prob %v, want %v", i, probs[i], want)
		}
	}
}

func TestSelfTrainingNoLabels(t *testing.T) {
	var st SelfTraining
	probs := st.FitPredict([][]float64{{1}, {2}}, nil, nil)
	for _, p := range probs {
		if p != 0.5 {
			t.Fatalf("unlabeled-only prob %v, want 0.5", p)
		}
	}
}

func TestEqualFrequencyBuckets(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.5, 0.3, 0.7, 0.2, 0.8, 0.4, 0.6, 0.0}
	buckets := EqualFrequencyBuckets(scores, 5)
	counts := BucketCounts(buckets, 5)
	for b, c := range counts {
		if c != 2 {
			t.Fatalf("bucket %d has %d members: %v", b, counts, buckets)
		}
	}
	// Order: the lowest scores land in bucket 0, the highest in bucket 4.
	if buckets[9] != 0 { // score 0.0
		t.Fatalf("lowest score in bucket %d", buckets[9])
	}
	if buckets[0] != 4 { // score 0.9
		t.Fatalf("highest score in bucket %d", buckets[0])
	}
}

func TestEqualFrequencyBucketsTies(t *testing.T) {
	scores := []float64{1, 1, 1, 1, 2, 2, 2, 2}
	buckets := EqualFrequencyBuckets(scores, 4)
	// All equal scores must share a bucket.
	for i := 0; i < 4; i++ {
		if buckets[i] != buckets[0] {
			t.Fatalf("tied scores split: %v", buckets)
		}
	}
	for i := 5; i < 8; i++ {
		if buckets[i] != buckets[4] {
			t.Fatalf("tied scores split: %v", buckets)
		}
	}
	if buckets[0] == buckets[4] {
		t.Fatalf("distinct scores merged: %v", buckets)
	}
}

func TestEqualFrequencyBucketsProperty(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		k := int(kRaw%9) + 1
		scores := make([]float64, len(raw))
		for i, v := range raw {
			scores[i] = math.Mod(v, 100)
		}
		buckets := EqualFrequencyBuckets(scores, k)
		if len(buckets) != len(scores) {
			return false
		}
		for _, b := range buckets {
			if b < 0 || b >= k && k > 1 {
				return false
			}
		}
		// Monotone: higher score → bucket id not lower.
		for i := range scores {
			for j := range scores {
				if scores[i] < scores[j] && buckets[i] > buckets[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualFrequencyBucketsEdge(t *testing.T) {
	if out := EqualFrequencyBuckets(nil, 3); len(out) != 0 {
		t.Fatal("nil scores")
	}
	out := EqualFrequencyBuckets([]float64{5, 1}, 1)
	if out[0] != 0 || out[1] != 0 {
		t.Fatal("k=1 should place everything in bucket 0")
	}
}

func TestEncoder(t *testing.T) {
	s := table.MustSchema(
		table.ColumnDef{Name: "id", Type: table.Int},
		table.ColumnDef{Name: "grade", Type: table.String},
		table.ColumnDef{Name: "income", Type: table.Float},
		table.ColumnDef{Name: "label", Type: table.Int},
	)
	tbl := table.New("t", s)
	grades := []string{"A", "B", "C", "A", "B"}
	for i, g := range grades {
		if err := tbl.AppendRow(int64(i), g, float64(i)*10, int64(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	enc, err := BuildEncoder(tbl, Encoder{Exclude: []string{"label", "id"}})
	if err != nil {
		t.Fatal(err)
	}
	// grade one-hot (3) + income (1) = 4 features.
	if enc.Dim() != 4 {
		t.Fatalf("dim %d, want 4 (columns %v)", enc.Dim(), enc.Columns())
	}
	v := enc.EncodeRow(tbl, 0)
	oneHotSum := 0.0
	for _, x := range v[:3] {
		oneHotSum += x
	}
	if oneHotSum != 1 {
		t.Fatalf("one-hot row %v", v)
	}
	if v[3] != 0 {
		t.Fatalf("income feature %v", v[3])
	}
	all := enc.EncodeAll(tbl)
	if len(all) != 5 {
		t.Fatalf("EncodeAll rows %d", len(all))
	}
	// Same grade → same one-hot slot.
	if all[0][0] != all[3][0] && all[0][1] != all[3][1] && all[0][2] != all[3][2] {
		t.Fatal("grade A rows encoded differently")
	}
}

func TestEncoderSkipsWideAndConstantColumns(t *testing.T) {
	s := table.MustSchema(
		table.ColumnDef{Name: "wide", Type: table.String},
		table.ColumnDef{Name: "constant", Type: table.String},
		table.ColumnDef{Name: "x", Type: table.Float},
	)
	tbl := table.New("t", s)
	for i := 0; i < 100; i++ {
		if err := tbl.AppendRow(string(rune('a'+i%60))+string(rune('A'+i/2)), "same", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	enc, err := BuildEncoder(tbl, Encoder{MaxCardinality: 50})
	if err != nil {
		t.Fatal(err)
	}
	if enc.Dim() != 1 {
		t.Fatalf("dim %d, want 1 (only x)", enc.Dim())
	}
}

func TestEncoderNoColumns(t *testing.T) {
	s := table.MustSchema(table.ColumnDef{Name: "only", Type: table.String})
	tbl := table.New("t", s)
	_ = tbl.AppendRow("x")
	if _, err := BuildEncoder(tbl, Encoder{Exclude: []string{"only"}}); err == nil {
		t.Fatal("empty encoder accepted")
	}
}
