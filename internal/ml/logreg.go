// Package ml provides the small machine-learning substrate the paper's
// experiments need: L2-regularized logistic regression, a self-training
// semi-supervised wrapper (the Learning/Multiple baselines of Section 6.2),
// feature encoding from tables, and equal-frequency bucketing for the
// logistic-regression virtual column of Section 4.4.
//
// Everything is deterministic given the inputs; no randomness is used.
package ml

import (
	"errors"
	"math"
)

// LogisticRegression is an L2-regularized binary logistic regression model
// trained by full-batch gradient descent with a decaying step size.
type LogisticRegression struct {
	// L2 is the regularization strength (default 1e-3 when zero).
	L2 float64
	// LearningRate is the initial step size (default 0.5 when zero).
	LearningRate float64
	// Epochs is the number of gradient passes (default 200 when zero).
	Epochs int

	weights []float64 // per-feature weights
	bias    float64
	mean    []float64 // feature standardization
	scale   []float64
	fitted  bool
}

func (m *LogisticRegression) fill() {
	if m.L2 <= 0 {
		m.L2 = 1e-3
	}
	if m.LearningRate <= 0 {
		m.LearningRate = 0.5
	}
	if m.Epochs <= 0 {
		m.Epochs = 200
	}
}

// Fit trains the model on the feature matrix X and labels y. Features are
// standardized internally, so callers need not scale them.
func (m *LogisticRegression) Fit(X [][]float64, y []bool) error {
	if len(X) == 0 {
		return errors.New("ml: empty training set")
	}
	if len(X) != len(y) {
		return errors.New("ml: X/y length mismatch")
	}
	m.fill()
	d := len(X[0])
	for _, row := range X {
		if len(row) != d {
			return errors.New("ml: ragged feature matrix")
		}
	}

	// Standardize features for stable optimization.
	m.mean = make([]float64, d)
	m.scale = make([]float64, d)
	n := float64(len(X))
	for j := 0; j < d; j++ {
		sum := 0.0
		for _, row := range X {
			sum += row[j]
		}
		m.mean[j] = sum / n
		ss := 0.0
		for _, row := range X {
			dv := row[j] - m.mean[j]
			ss += dv * dv
		}
		sd := math.Sqrt(ss / n)
		if sd < 1e-12 {
			sd = 1
		}
		m.scale[j] = sd
	}

	m.weights = make([]float64, d)
	m.bias = 0
	grad := make([]float64, d)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		gBias := 0.0
		for i, row := range X {
			p := m.probStandardized(row)
			t := 0.0
			if y[i] {
				t = 1
			}
			diff := p - t
			for j := 0; j < d; j++ {
				grad[j] += diff * (row[j] - m.mean[j]) / m.scale[j]
			}
			gBias += diff
		}
		lr := m.LearningRate / (1 + 0.01*float64(epoch))
		for j := 0; j < d; j++ {
			m.weights[j] -= lr * (grad[j]/n + m.L2*m.weights[j])
		}
		m.bias -= lr * gBias / n
	}
	m.fitted = true
	return nil
}

func (m *LogisticRegression) probStandardized(row []float64) float64 {
	z := m.bias
	for j, w := range m.weights {
		z += w * (row[j] - m.mean[j]) / m.scale[j]
	}
	return sigmoid(z)
}

// Prob returns P(y = true | x). Fit must have been called.
func (m *LogisticRegression) Prob(x []float64) float64 {
	if !m.fitted {
		return 0.5
	}
	return m.probStandardized(x)
}

// Predict returns Prob(x) >= 0.5.
func (m *LogisticRegression) Predict(x []float64) bool { return m.Prob(x) >= 0.5 }

// Weights returns a copy of the learned weights (standardized space).
func (m *LogisticRegression) Weights() []float64 {
	return append([]float64(nil), m.weights...)
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}
