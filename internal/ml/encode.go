package ml

import (
	"fmt"

	"repro/internal/table"
)

// Encoder turns table rows into feature vectors: numeric columns pass
// through, categorical (string) columns are one-hot encoded. Columns with
// too many distinct values are skipped, mirroring the paper's "numeric or
// nominal with < 50 different values" rule for the logistic-regression
// virtual column.
type Encoder struct {
	// MaxCardinality is the one-hot cutoff for string columns (default 50).
	MaxCardinality int
	// Exclude lists column names to skip (e.g. the hidden label column and
	// row ids).
	Exclude []string

	cols []encodedColumn
	dim  int
}

type encodedColumn struct {
	name    string
	colIdx  int
	numeric bool // float or int pass-through
	isInt   bool // source is an int column
	offset  int  // first feature index
	codes   int  // one-hot width for string columns
	strCol  *table.StringColumn
}

// BuildEncoder inspects the table and fixes the feature layout.
func BuildEncoder(tbl *table.Table, opts Encoder) (*Encoder, error) {
	e := &opts
	if e.MaxCardinality <= 0 {
		e.MaxCardinality = 50
	}
	excluded := make(map[string]bool, len(e.Exclude))
	for _, name := range e.Exclude {
		excluded[name] = true
	}
	offset := 0
	for i := 0; i < tbl.Schema().Len(); i++ {
		def := tbl.Schema().Col(i)
		if excluded[def.Name] {
			continue
		}
		switch def.Type {
		case table.Float:
			e.cols = append(e.cols, encodedColumn{name: def.Name, colIdx: i, numeric: true, offset: offset})
			offset++
		case table.Int:
			e.cols = append(e.cols, encodedColumn{name: def.Name, colIdx: i, numeric: true, isInt: true, offset: offset})
			offset++
		case table.String:
			sc, err := tbl.StringColumn(def.Name)
			if err != nil {
				return nil, err
			}
			card := sc.Cardinality()
			if card >= e.MaxCardinality || card < 2 {
				continue // too wide (overfitting risk) or constant
			}
			e.cols = append(e.cols, encodedColumn{
				name: def.Name, colIdx: i, offset: offset, codes: card, strCol: sc,
			})
			offset += card
		}
	}
	if offset == 0 {
		return nil, fmt.Errorf("ml: no encodable columns in table %s", tbl.Name())
	}
	e.dim = offset
	return e, nil
}

// Dim returns the feature-vector width.
func (e *Encoder) Dim() int { return e.dim }

// Columns returns the names of the encoded source columns, in order.
func (e *Encoder) Columns() []string {
	names := make([]string, len(e.cols))
	for i, c := range e.cols {
		names[i] = c.name
	}
	return names
}

// EncodeRow writes the features of row i into a fresh vector.
func (e *Encoder) EncodeRow(tbl *table.Table, row int) []float64 {
	out := make([]float64, e.dim)
	for _, c := range e.cols {
		switch {
		case c.numeric && c.isInt:
			ic := tbl.Column(c.colIdx).(*table.IntColumn)
			out[c.offset] = float64(ic.At(row))
		case c.numeric:
			fc := tbl.Column(c.colIdx).(*table.FloatColumn)
			out[c.offset] = fc.At(row)
		default:
			out[c.offset+c.strCol.Code(row)] = 1
		}
	}
	return out
}

// EncodeAll materializes the full feature matrix.
func (e *Encoder) EncodeAll(tbl *table.Table) [][]float64 {
	n := tbl.NumRows()
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = e.EncodeRow(tbl, i)
	}
	return out
}
