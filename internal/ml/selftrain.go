package ml

import "sort"

// SelfTraining is a semi-supervised classifier built on logistic
// regression: fit on the labeled rows, pseudo-label the most confident
// unlabeled predictions, refit, repeat. It implements the
// core.SemiSupervised interface used by the Learning and Multiple
// experiment baselines.
type SelfTraining struct {
	// Rounds of pseudo-labeling (default 2).
	Rounds int
	// ConfidenceHigh / ConfidenceLow are the pseudo-labeling thresholds
	// (defaults 0.9 / 0.1).
	ConfidenceHigh float64
	ConfidenceLow  float64
	// MaxPseudoFraction caps how much of the unlabeled pool may be
	// pseudo-labeled per round (default 0.5).
	MaxPseudoFraction float64
	// Model configures the underlying regressions (zero value is fine).
	Model LogisticRegression
}

func (s *SelfTraining) fill() {
	if s.Rounds <= 0 {
		s.Rounds = 2
	}
	if s.ConfidenceHigh <= 0 || s.ConfidenceHigh >= 1 {
		s.ConfidenceHigh = 0.9
	}
	if s.ConfidenceLow <= 0 || s.ConfidenceLow >= 1 {
		s.ConfidenceLow = 0.1
	}
	if s.MaxPseudoFraction <= 0 || s.MaxPseudoFraction > 1 {
		s.MaxPseudoFraction = 0.5
	}
}

// FitPredict trains on the labeled rows (labeledIdx indexes features;
// labels aligns with labeledIdx) and returns P(true) for every row of
// features. Implements core.SemiSupervised.
func (s *SelfTraining) FitPredict(features [][]float64, labeledIdx []int, labels []bool) []float64 {
	s.fill()
	n := len(features)
	out := make([]float64, n)
	if len(labeledIdx) == 0 {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}

	trainIdx := append([]int(nil), labeledIdx...)
	trainLab := append([]bool(nil), labels...)
	isLabeled := make([]bool, n)
	for _, i := range labeledIdx {
		isLabeled[i] = true
	}

	var model LogisticRegression
	for round := 0; round <= s.Rounds; round++ {
		model = s.Model // fresh copy with the configured hyperparameters
		X := make([][]float64, len(trainIdx))
		for k, i := range trainIdx {
			X[k] = features[i]
		}
		if err := model.Fit(X, trainLab); err != nil {
			for i := range out {
				out[i] = 0.5
			}
			return out
		}
		if round == s.Rounds {
			break
		}
		// Pseudo-label the most confident unlabeled rows.
		type scored struct {
			idx  int
			prob float64
		}
		var confident []scored
		for i := 0; i < n; i++ {
			if isLabeled[i] {
				continue
			}
			p := model.Prob(features[i])
			if p >= s.ConfidenceHigh || p <= s.ConfidenceLow {
				confident = append(confident, scored{i, p})
			}
		}
		if len(confident) == 0 {
			break
		}
		// Most extreme confidences first, capped per round.
		sort.Slice(confident, func(a, b int) bool {
			da := extremity(confident[a].prob)
			db := extremity(confident[b].prob)
			if da != db {
				return da > db
			}
			return confident[a].idx < confident[b].idx
		})
		budget := int(s.MaxPseudoFraction * float64(n-len(trainIdx)))
		if budget < 1 {
			budget = 1
		}
		if len(confident) > budget {
			confident = confident[:budget]
		}
		for _, c := range confident {
			isLabeled[c.idx] = true
			trainIdx = append(trainIdx, c.idx)
			trainLab = append(trainLab, c.prob >= 0.5)
		}
	}

	for i := 0; i < n; i++ {
		out[i] = model.Prob(features[i])
	}
	// Labeled rows keep their observed labels as hard probabilities so the
	// baselines never contradict ground truth they already paid for.
	for k, i := range labeledIdx {
		if labels[k] {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
	return out
}

func extremity(p float64) float64 {
	if p >= 0.5 {
		return p - 0.5
	}
	return 0.5 - p
}
