package ml

import "sort"

// EqualFrequencyBuckets assigns each score to one of k buckets whose
// boundaries are chosen so the buckets have (near-)equal population — the
// paper's construction of the logistic-regression virtual column
// (Section 6.3.2: "bucket ranges are chosen so as to get equal sized
// buckets"). Ties at a boundary fall into the lower bucket, so heavily
// repeated scores can make buckets uneven; callers group by the returned
// bucket id either way.
//
// The returned slice maps each input index to a bucket in [0, k). k must
// be ≥ 1; fewer distinct scores than k simply leaves some buckets empty.
func EqualFrequencyBuckets(scores []float64, k int) []int {
	n := len(scores)
	out := make([]int, n)
	if n == 0 || k <= 1 {
		return out
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })

	// Walk the sorted order assigning ranks, then map rank → bucket; equal
	// scores get the same bucket (that of their first occurrence).
	prevScore := 0.0
	prevBucket := 0
	for rank, idx := range order {
		b := rank * k / n
		if rank > 0 && scores[idx] == prevScore {
			b = prevBucket
		}
		out[idx] = b
		prevScore = scores[idx]
		prevBucket = b
	}
	return out
}

// BucketCounts tallies the population of each bucket id in [0, k).
func BucketCounts(buckets []int, k int) []int {
	counts := make([]int, k)
	for _, b := range buckets {
		if b >= 0 && b < k {
			counts[b]++
		}
	}
	return counts
}
