package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func estimatedGroups() []GroupInfo {
	// Posterior-style estimates with moderate uncertainty.
	return []GroupInfo{
		GroupInfoFromSample(1000, 60, 54),
		GroupInfoFromSample(1000, 60, 30),
		GroupInfoFromSample(1000, 60, 6),
	}
}

func TestPlanEstimatedFeasibleBothModels(t *testing.T) {
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	for _, model := range []CorrelationModel{IndependentGroups, UnknownCorrelations} {
		s, err := PlanEstimated(estimatedGroups(), cons, DefaultCost, model)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if !CheckEstimatedFeasible(estimatedGroups(), s, cons, model) {
			t.Fatalf("%v: plan infeasible for its own constraints", model)
		}
	}
}

func TestUnknownCorrelationsNoCheaperThanIndependent(t *testing.T) {
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	sInd, err := PlanEstimated(estimatedGroups(), cons, DefaultCost, IndependentGroups)
	if err != nil {
		t.Fatal(err)
	}
	sUnk, err := PlanEstimated(estimatedGroups(), cons, DefaultCost, UnknownCorrelations)
	if err != nil {
		t.Fatal(err)
	}
	cInd := sInd.ExpectedCost(estimatedGroups(), DefaultCost)
	cUnk := sUnk.ExpectedCost(estimatedGroups(), DefaultCost)
	if cUnk < cInd-1e-6 {
		t.Fatalf("unknown-correlations (%v) cheaper than independent (%v)", cUnk, cInd)
	}
}

func TestEstimatedCostAboveHoeffdingPlan(t *testing.T) {
	// Uncertainty can only make the plan more expensive than planning with
	// the same point estimates and no estimate variance... compare against
	// a variance-free estimated plan rather than the Hoeffding planner
	// (different tail bounds make direct comparison invalid).
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	noisy := estimatedGroups()
	exact := make([]GroupInfo, len(noisy))
	for i, g := range noisy {
		exact[i] = GroupInfo{Size: g.Size, Selectivity: g.Selectivity}
	}
	sNoisy, err := PlanEstimated(noisy, cons, DefaultCost, IndependentGroups)
	if err != nil {
		t.Fatal(err)
	}
	sExact, err := PlanEstimated(exact, cons, DefaultCost, IndependentGroups)
	if err != nil {
		t.Fatal(err)
	}
	// Cost comparison must be on the same remaining sizes; use the exact
	// view (no sampling discounts) for both.
	cNoisy := 0.0
	for i := range noisy {
		cNoisy += float64(noisy[i].Size) * (DefaultCost.Retrieve*sNoisy.R[i] + DefaultCost.Evaluate*sNoisy.E[i])
	}
	cExact := 0.0
	for i := range exact {
		cExact += float64(exact[i].Size) * (DefaultCost.Retrieve*sExact.R[i] + DefaultCost.Evaluate*sExact.E[i])
	}
	if cNoisy < cExact-1e-6 {
		t.Fatalf("noisy estimates produced cheaper plan (%v) than exact (%v)", cNoisy, cExact)
	}
}

func TestPlanEstimatedFeasibilityProperty(t *testing.T) {
	r := stats.NewRNG(301)
	f := func(seed uint32) bool {
		rr := stats.NewRNG(uint64(seed) ^ r.Uint64())
		n := 2 + rr.IntN(7)
		groups := make([]GroupInfo, n)
		for i := range groups {
			size := 200 + rr.IntN(2000)
			sampled := 10 + rr.IntN(size/4)
			pos := rr.IntN(sampled + 1)
			groups[i] = GroupInfoFromSample(size, sampled, pos)
		}
		cons := Constraints{
			Alpha: 0.3 + 0.6*rr.Float64(),
			Beta:  0.3 + 0.6*rr.Float64(),
			Rho:   0.5 + 0.4*rr.Float64(),
		}
		model := IndependentGroups
		if rr.IntN(2) == 1 {
			model = UnknownCorrelations
		}
		s, err := PlanEstimated(groups, cons, DefaultCost, model)
		if err != nil {
			return false
		}
		if err := s.Validate(); err != nil {
			return false
		}
		return CheckEstimatedFeasible(groups, s, cons, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanEstimatedGradientAgreesWithFixedPoint(t *testing.T) {
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	groups := estimatedGroups()
	sFP, err := PlanEstimated(groups, cons, DefaultCost, IndependentGroups)
	if err != nil {
		t.Fatal(err)
	}
	sGrad, err := PlanEstimatedGradient(groups, cons, DefaultCost, IndependentGroups)
	if err != nil {
		t.Fatal(err)
	}
	if err := sGrad.Validate(); err != nil {
		t.Fatal(err)
	}
	if !CheckEstimatedFeasible(groups, sGrad, cons, IndependentGroups) {
		t.Fatal("gradient plan infeasible")
	}
	cFP := sFP.ExpectedCost(groups, DefaultCost)
	cGrad := sGrad.ExpectedCost(groups, DefaultCost)
	// The gradient solve starts from the fixed-point solution and only
	// keeps improvements, so it can never be worse.
	if cGrad > cFP+1e-6 {
		t.Fatalf("gradient plan cost %v exceeds fixed-point %v", cGrad, cFP)
	}
	// And the two should be in the same ballpark (same convex program).
	if cFP > 0 && cGrad < 0.5*cFP {
		t.Fatalf("suspiciously large improvement: %v vs %v", cGrad, cFP)
	}
}

func TestPlanWithSamplesAccountsForSampledPositives(t *testing.T) {
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	// Heavily sampled group: most of its correct tuples are already in the
	// output, reducing how much the plan must retrieve.
	light := []GroupInfo{
		GroupInfoFromSample(1000, 20, 18),
		GroupInfoFromSample(1000, 20, 2),
	}
	heavy := []GroupInfo{
		GroupInfoFromSample(1000, 500, 450),
		GroupInfoFromSample(1000, 20, 2),
	}
	sLight, err := PlanWithSamples(light, cons, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	sHeavy, err := PlanWithSamples(heavy, cons, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	// Execution-phase cost should be smaller with heavy sampling (the
	// sunk sampling cost is accounted elsewhere).
	cLight := sLight.ExpectedCost(light, DefaultCost)
	cHeavy := sHeavy.ExpectedCost(heavy, DefaultCost)
	if cHeavy > cLight+1e-6 {
		t.Fatalf("heavy sampling should shrink remaining cost: %v vs %v", cHeavy, cLight)
	}
}

func TestEstimatedEmpiricalSatisfaction(t *testing.T) {
	// Full pipeline statistical check: estimate via sampling, plan, execute;
	// constraints must hold in ≥ ~ρ of runs.
	rng := stats.NewRNG(777)
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	const runs = 120
	okBoth := 0
	for i := 0; i < runs; i++ {
		groups, labels, truth := syntheticGroups(rng.Split(), []int{800, 800, 800}, []float64{0.85, 0.5, 0.15})
		meter := NewMeter(UDFFunc(truth))
		sampler := NewSampler(groups, meter, rng.Split())
		sizes := []int{800, 800, 800}
		if _, err := sampler.TopUp(TwoThirdPowerAllocator{Num: 2.0}.Allocate(sizes)); err != nil {
			t.Fatal(err)
		}
		strat, err := PlanWithSamples(sampler.Infos(), cons, DefaultCost)
		if err != nil {
			t.Fatal(err)
		}
		exec, err := Execute(groups, strat, sampler.Outcomes(), meter, DefaultCost, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		totalCorrect := 0
		for _, v := range labels {
			if v {
				totalCorrect++
			}
		}
		m := ComputeMetrics(exec.Output, truth, totalCorrect)
		pOK, rOK := m.Satisfies(cons)
		if pOK && rOK {
			okBoth++
		}
	}
	if frac := float64(okBoth) / runs; frac < cons.Rho-0.07 {
		t.Fatalf("both constraints satisfied in only %v of runs (ρ=%v)", frac, cons.Rho)
	}
}

func TestCorrelationModelString(t *testing.T) {
	if IndependentGroups.String() != "independent-groups" {
		t.Fatal("independent string")
	}
	if UnknownCorrelations.String() != "unknown-correlations" {
		t.Fatal("unknown string")
	}
}

func TestPlanEstimatedHugeVarianceFallsBackSafely(t *testing.T) {
	// Absurd variances: the planner may fall back to full evaluation but
	// must stay feasible.
	groups := []GroupInfo{
		{Size: 50, Selectivity: 0.5, Variance: 0.25},
		{Size: 50, Selectivity: 0.5, Variance: 0.25},
	}
	cons := Constraints{Alpha: 0.95, Beta: 0.95, Rho: 0.99}
	s, err := PlanEstimated(groups, cons, DefaultCost, IndependentGroups)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !CheckEstimatedFeasible(groups, s, cons, IndependentGroups) {
		t.Fatal("fallback plan must be feasible")
	}
}

func TestDeviationBoundsOrdering(t *testing.T) {
	// For any strategy, the unknown-correlations deviation dominates the
	// independent-groups deviation (Σ Dev ≥ sqrt(Σ Var) term-by-term via
	// the triangle inequality).
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	groups := estimatedGroups()
	pInd := newEstProblem(groups, cons, DefaultCost, IndependentGroups)
	pUnk := newEstProblem(groups, cons, DefaultCost, UnknownCorrelations)
	r := stats.NewRNG(11)
	for trial := 0; trial < 50; trial++ {
		s := NewStrategy(len(groups))
		for i := range s.R {
			s.R[i] = r.Float64()
			s.E[i] = s.R[i] * r.Float64()
		}
		if pUnk.devPrecision(s) < pInd.devPrecision(s)-1e-9 {
			t.Fatalf("precision deviation ordering violated at %v", s)
		}
		if pUnk.devRecall(s) < pInd.devRecall(s)-1e-9 {
			t.Fatalf("recall deviation ordering violated at %v", s)
		}
	}
}

func TestLHSMatchesManualComputation(t *testing.T) {
	groups := []GroupInfo{GroupInfoFromSample(100, 10, 8)}
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	p := newEstProblem(groups, cons, DefaultCost, IndependentGroups)
	s := NewStrategy(1)
	s.R[0], s.E[0] = 0.6, 0.3
	prec, recall := p.lhs(s)
	w := 90.0
	sa := groups[0].Selectivity
	wantPrec := 8*(1-0.8) + w*(sa*(1-0.8)*0.6-(1-sa)*0.8*(0.6-0.3))
	wantRecallLHS := w * sa * 0.6
	wantRecallRHS := 0.8*(8+w*sa) - 8
	if math.Abs(prec-wantPrec) > 1e-9 {
		t.Fatalf("precision LHS %v want %v", prec, wantPrec)
	}
	if math.Abs(recall-(wantRecallLHS-wantRecallRHS)) > 1e-9 {
		t.Fatalf("recall LHS %v want %v", recall, wantRecallLHS-wantRecallRHS)
	}
}
