package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestExecuteFullEvaluationReturnsExactAnswer(t *testing.T) {
	rng := stats.NewRNG(401)
	groups, labels, truth := syntheticGroups(rng, []int{200, 200}, []float64{0.7, 0.2})
	s := FullEvaluation(2)
	exec, err := Execute(groups, s, nil, UDFFunc(truth), DefaultCost, rng)
	if err != nil {
		t.Fatal(err)
	}
	wantCorrect := 0
	for _, v := range labels {
		if v {
			wantCorrect++
		}
	}
	if len(exec.Output) != wantCorrect {
		t.Fatalf("output %d rows, want %d", len(exec.Output), wantCorrect)
	}
	for _, row := range exec.Output {
		if !truth(row) {
			t.Fatalf("incorrect row %d in exact output", row)
		}
	}
	if exec.Retrieved != 400 || exec.Evaluated != 400 {
		t.Fatalf("retrieved %d evaluated %d, want 400/400", exec.Retrieved, exec.Evaluated)
	}
	if math.Abs(exec.Cost-400*4) > 1e-9 {
		t.Fatalf("cost %v", exec.Cost)
	}
}

func TestExecuteRetrieveOnlyReturnsEverything(t *testing.T) {
	rng := stats.NewRNG(403)
	groups, _, truth := syntheticGroups(rng, []int{150}, []float64{0.4})
	s := NewStrategy(1)
	s.R[0] = 1
	exec, err := Execute(groups, s, nil, UDFFunc(truth), DefaultCost, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Output) != 150 || exec.Evaluated != 0 {
		t.Fatalf("output %d evaluated %d", len(exec.Output), exec.Evaluated)
	}
}

func TestExecuteDiscardAll(t *testing.T) {
	rng := stats.NewRNG(405)
	groups, _, truth := syntheticGroups(rng, []int{50}, []float64{0.5})
	exec, err := Execute(groups, NewStrategy(1), nil, UDFFunc(truth), DefaultCost, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Output) != 0 || exec.Cost != 0 {
		t.Fatalf("discard-all produced output %d cost %v", len(exec.Output), exec.Cost)
	}
}

func TestExecuteHonorsSampledRows(t *testing.T) {
	rng := stats.NewRNG(407)
	groups, _, truth := syntheticGroups(rng, []int{100}, []float64{0.5})
	// Sample 10 rows by hand.
	samples := []SampleOutcome{{Results: map[int]bool{}}}
	for _, row := range groups[0].Rows[:10] {
		samples[0].Results[row] = truth(row)
		if truth(row) {
			samples[0].Positives++
		}
	}
	calls := 0
	countingUDF := UDFFunc(func(row int) bool {
		calls++
		return truth(row)
	})
	s := FullEvaluation(1)
	exec, err := Execute(groups, s, samples, countingUDF, DefaultCost, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 90 unsampled rows get evaluated; sampled rows must not be touched.
	if calls != 90 || exec.Evaluated != 90 || exec.Retrieved != 90 {
		t.Fatalf("calls %d evaluated %d retrieved %d, want 90", calls, exec.Evaluated, exec.Retrieved)
	}
	// Sampled-true rows still appear in the output.
	outSet := map[int]bool{}
	for _, row := range exec.Output {
		outSet[row] = true
	}
	for row, v := range samples[0].Results {
		if v && !outSet[row] {
			t.Fatalf("sampled-true row %d missing from output", row)
		}
		if !v && outSet[row] {
			t.Fatalf("sampled-false row %d present in output", row)
		}
	}
}

func TestExecuteStatisticalCounts(t *testing.T) {
	rng := stats.NewRNG(409)
	groups, _, truth := syntheticGroups(rng, []int{8000}, []float64{0.5})
	s := NewStrategy(1)
	s.R[0], s.E[0] = 0.6, 0.3
	exec, err := Execute(groups, s, nil, UDFFunc(truth), DefaultCost, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(exec.Retrieved)-4800) > 200 {
		t.Fatalf("retrieved %d, want ≈4800", exec.Retrieved)
	}
	if math.Abs(float64(exec.Evaluated)-2400) > 200 {
		t.Fatalf("evaluated %d, want ≈2400", exec.Evaluated)
	}
	// Output = retrieved-not-evaluated + evaluated-true ≈ 2400 + 1200.
	if math.Abs(float64(len(exec.Output))-3600) > 250 {
		t.Fatalf("output %d, want ≈3600", len(exec.Output))
	}
}

func TestExecuteInputValidation(t *testing.T) {
	rng := stats.NewRNG(411)
	groups, _, truth := syntheticGroups(rng, []int{10}, []float64{0.5})
	if _, err := Execute(groups, NewStrategy(2), nil, UDFFunc(truth), DefaultCost, rng); err == nil {
		t.Fatal("group/strategy mismatch accepted")
	}
	if _, err := Execute(groups, NewStrategy(1), make([]SampleOutcome, 2), UDFFunc(truth), DefaultCost, rng); err == nil {
		t.Fatal("group/samples mismatch accepted")
	}
	bad := Strategy{R: []float64{0.5}, E: []float64{0.9}}
	if _, err := Execute(groups, bad, nil, UDFFunc(truth), DefaultCost, rng); err == nil {
		t.Fatal("invalid strategy accepted")
	}
}

func TestComputeMetrics(t *testing.T) {
	truth := func(row int) bool { return row < 5 }
	m := ComputeMetrics([]int{0, 1, 2, 7, 8}, truth, 5)
	if math.Abs(m.Precision-0.6) > 1e-12 {
		t.Fatalf("precision %v", m.Precision)
	}
	if math.Abs(m.Recall-0.6) > 1e-12 {
		t.Fatalf("recall %v", m.Recall)
	}
	pOK, rOK := m.Satisfies(Constraints{Alpha: 0.6, Beta: 0.7})
	if !pOK || rOK {
		t.Fatalf("Satisfies wrong: %v %v", pOK, rOK)
	}
	// Empty output: precision 1 by convention.
	m = ComputeMetrics(nil, truth, 5)
	if m.Precision != 1 || m.Recall != 0 {
		t.Fatalf("empty output metrics %+v", m)
	}
	// No correct tuples anywhere: recall 1 by convention.
	m = ComputeMetrics(nil, truth, 0)
	if m.Recall != 1 {
		t.Fatalf("zero-correct recall %v", m.Recall)
	}
}

func TestExecuteDeterministicWithSameSeed(t *testing.T) {
	groups, _, truth := syntheticGroups(stats.NewRNG(1), []int{500}, []float64{0.5})
	s := NewStrategy(1)
	s.R[0], s.E[0] = 0.5, 0.2
	run := func() []int {
		exec, err := Execute(groups, s, nil, UDFFunc(truth), DefaultCost, stats.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		out := append([]int(nil), exec.Output...)
		sort.Ints(out)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic output sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic output")
		}
	}
}

func TestExecuteAccountingInvariants(t *testing.T) {
	// Property: for any strategy, Retrieved ≥ Evaluated, the output is a
	// subset of the input rows, and the cost formula holds exactly.
	rng := stats.NewRNG(4242)
	f := func(seed uint32, rRaw, eRaw float64) bool {
		rr := stats.NewRNG(uint64(seed))
		groups, _, truth := syntheticGroups(rr, []int{300, 200}, []float64{0.6, 0.3})
		s := NewStrategy(2)
		s.R[0] = math.Abs(math.Mod(rRaw, 1))
		s.E[0] = s.R[0] * math.Abs(math.Mod(eRaw, 1))
		s.R[1] = math.Abs(math.Mod(eRaw*7, 1))
		s.E[1] = s.R[1] * math.Abs(math.Mod(rRaw*3, 1))
		exec, err := Execute(groups, s, nil, UDFFunc(truth), DefaultCost, rng.Split())
		if err != nil {
			return false
		}
		if exec.Evaluated > exec.Retrieved {
			return false
		}
		valid := map[int]bool{}
		for _, g := range groups {
			for _, r := range g.Rows {
				valid[r] = true
			}
		}
		seen := map[int]bool{}
		for _, r := range exec.Output {
			if !valid[r] || seen[r] {
				return false
			}
			seen[r] = true
		}
		wantCost := DefaultCost.Retrieve*float64(exec.Retrieved) + DefaultCost.Evaluate*float64(exec.Evaluated)
		return math.Abs(exec.Cost-wantCost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteOutputSupersetOfEvaluatedTrue(t *testing.T) {
	// Every tuple the executor evaluates as true must be in the output and
	// every evaluated-false tuple must not be (verified via a recording
	// UDF).
	rng := stats.NewRNG(4343)
	groups, _, truth := syntheticGroups(rng, []int{400}, []float64{0.5})
	evaluated := map[int]bool{}
	udf := UDFFunc(func(r int) bool {
		evaluated[r] = truth(r)
		return truth(r)
	})
	s := NewStrategy(1)
	s.R[0], s.E[0] = 0.7, 0.5
	exec, err := Execute(groups, s, nil, udf, DefaultCost, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	outSet := map[int]bool{}
	for _, r := range exec.Output {
		outSet[r] = true
	}
	for r, v := range evaluated {
		if v && !outSet[r] {
			t.Fatalf("evaluated-true row %d missing from output", r)
		}
		if !v && outSet[r] {
			t.Fatalf("evaluated-false row %d present in output", r)
		}
	}
}
