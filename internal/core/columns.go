package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/exec"
)

// This file implements Section 4.4: finding a correlated column. A small
// fraction of tuples is labeled (UDF-evaluated); every candidate column
// with few enough distinct values is scored by estimating its per-group
// selectivities from the labeled tuples and planning with the Section 3.2
// optimizer; the cheapest plan wins. The labeled tuples are reusable both
// for later selectivity estimation and as part of the output.

// Candidate is one column (real or virtual) under consideration, given as
// its induced partition of the relation's rows.
type Candidate struct {
	Name   string
	Groups []Group
}

// ColumnChoice reports the outcome of SelectColumn.
type ColumnChoice struct {
	// Index into the candidates slice; -1 if no candidate qualified.
	Index int
	// Name echoes the winning candidate's name.
	Name string
	// EstimatedCost per candidate (math.Inf(1) for disqualified ones),
	// aligned with the input slice.
	EstimatedCost []float64
}

// SelectColumn picks the candidate column whose estimated query cost is
// lowest. labeled maps row id → UDF outcome for the pre-labeled sample
// (typically ~1% of rows). Candidates with more than √|labeled| distinct
// values are disqualified to avoid overfitting the selectivity estimates —
// the paper's rule; if every candidate is disqualified the caller should
// label more rows and retry.
func SelectColumn(cands []Candidate, labeled map[int]bool, cons Constraints, cost CostModel) (ColumnChoice, error) {
	if len(cands) == 0 {
		return ColumnChoice{}, fmt.Errorf("core: no candidate columns")
	}
	if len(labeled) == 0 {
		return ColumnChoice{}, fmt.Errorf("core: no labeled tuples")
	}
	maxGroups := math.Sqrt(float64(len(labeled)))
	choice := ColumnChoice{Index: -1, EstimatedCost: make([]float64, len(cands))}
	best := math.Inf(1)
	for ci, cand := range cands {
		choice.EstimatedCost[ci] = math.Inf(1)
		if float64(len(cand.Groups)) > maxGroups || len(cand.Groups) == 0 {
			continue
		}
		infos := make([]GroupInfo, len(cand.Groups))
		for gi, g := range cand.Groups {
			pos, tot := 0, 0
			for _, row := range g.Rows {
				if v, ok := labeled[row]; ok {
					tot++
					if v {
						pos++
					}
				}
			}
			info := GroupInfoFromSample(len(g.Rows), tot, pos)
			// Scoring uses the Section 3.2 planner with the point estimate,
			// per the paper; clear the sampling bookkeeping so the cost
			// reflects the whole group.
			infos[gi] = GroupInfo{Size: info.Size, Selectivity: info.Selectivity}
		}
		strat, err := PlanPerfectSelectivities(infos, cons, cost)
		if err != nil {
			return ColumnChoice{}, fmt.Errorf("core: scoring column %q: %w", cand.Name, err)
		}
		c := strat.ExpectedCost(infos, cost)
		choice.EstimatedCost[ci] = c
		if c < best {
			best = c
			choice.Index = ci
			choice.Name = cand.Name
		}
	}
	if choice.Index < 0 {
		return choice, fmt.Errorf("core: no candidate has ≤ %.0f distinct values; label more tuples", maxGroups)
	}
	return choice, nil
}

// Labeler is the random source LabelFraction needs to pick rows.
type Labeler interface {
	SampleWithoutReplacement(n, k int) []int
}

// LabelFraction evaluates the UDF on a uniform random fraction of all rows
// and returns the labels, for use with SelectColumn. The UDF calls are
// charged to the provided meter (wrap the raw UDF first so the cost is
// accounted once).
func LabelFraction(rows []int, fraction float64, udf UDF, rng Labeler) map[int]bool {
	return LabelFractionParallel(rows, fraction, udf, rng, 1)
}

// LabelFractionParallel is LabelFraction with the UDF calls fanned across
// up to `parallelism` workers (≤ 0 means GOMAXPROCS). The sample is drawn
// from the RNG before any evaluation starts, so the labeled set — and the
// RNG stream seen by later phases — is identical at any parallelism level.
//
//predlint:allow ctxflow — pre-context compatibility wrapper; cancellable callers use LabelFractionParallelCtx
func LabelFractionParallel(rows []int, fraction float64, udf UDF, rng Labeler, parallelism int) map[int]bool {
	labeled, _ := LabelFractionParallelCtx(context.Background(), rows, fraction, udf, rng, parallelism)
	return labeled
}

// LabelFractionParallelCtx is LabelFractionParallel honoring a context: a
// cancel mid-labeling returns (nil, ctx.Err()) without handing back a
// partial label map. The RNG draw happens before evaluation either way.
func LabelFractionParallelCtx(ctx context.Context, rows []int, fraction float64, udf UDF, rng Labeler, parallelism int) (map[int]bool, error) {
	k := int(math.Ceil(fraction * float64(len(rows))))
	picks := rng.SampleWithoutReplacement(len(rows), k)
	work := make([]int, len(picks))
	for j, i := range picks {
		work[j] = rows[i]
	}
	verdicts, failed, err := EvalRowsResilient(ctx, exec.NewPool(parallelism), work, udf)
	if err != nil {
		return nil, err
	}
	labeled := make(map[int]bool, len(work))
	for j, row := range work {
		if failed != nil && failed[j] {
			// A failed evaluation is no label: excluding the row keeps the
			// discovery evidence honest under a flaky UDF.
			continue
		}
		labeled[row] = verdicts[j]
	}
	return labeled, nil
}
