package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Experiment baselines (Section 6.2). Naive needs nothing extra; the two
// machine-learning baselines take a semi-supervised classifier through the
// SemiSupervised interface so the core package stays independent of the ml
// package (which provides the implementation used in the experiments).

// RunNaive implements the Naive baseline: retrieve a uniformly random β
// fraction of all tuples, evaluate every one of them, and return the
// matching tuples. It satisfies the recall constraint in expectation only,
// and precision exactly (everything returned is verified).
func RunNaive(in Instance, rng *stats.RNG) (RunResult, error) {
	if err := in.Validate(); err != nil {
		return RunResult{}, err
	}
	if rng == nil {
		return RunResult{}, fmt.Errorf("core: rng is required")
	}
	all := make([]int, 0, in.TotalRows())
	for _, g := range in.Groups {
		all = append(all, g.Rows...)
	}
	k := int(math.Ceil(in.Cons.Beta * float64(len(all))))
	idx := rng.SampleWithoutReplacement(len(all), k)
	var output []int
	for _, i := range idx {
		if in.UDF.Eval(all[i]) {
			output = append(output, all[i])
		}
	}
	return RunResult{
		Output:           output,
		Retrieved:        k,
		Evaluated:        k,
		TotalEvaluations: k,
		TotalRetrievals:  k,
		TotalCost:        float64(k) * (in.Cost.Retrieve + in.Cost.Evaluate),
	}, nil
}

// SemiSupervised is a semi-supervised classifier: given the feature matrix
// for every row, the indices of labeled rows and their labels, it returns
// the estimated probability that each row satisfies the predicate.
// Implementations typically self-train: fit on the labeled rows, pseudo-
// label confident predictions, refit.
type SemiSupervised interface {
	FitPredict(features [][]float64, labeledIdx []int, labels []bool) []float64
}

// MLBaselineOptions tunes the Learning/Multiple baselines.
type MLBaselineOptions struct {
	// InitialFraction of tuples to label first (default 0.02).
	InitialFraction float64
	// GrowthFactor enlarges the labeled set each round (default 1.5).
	GrowthFactor float64
	// MaxFraction caps the labeled set (default 1.0: may label everything).
	MaxFraction float64
	// Threshold is the probability cutoff for predicting true (default 0.5).
	Threshold float64
	// Imputations is the number of imputed datasets for RunMultiple
	// (default 5).
	Imputations int
}

func (o *MLBaselineOptions) fill() {
	if o.InitialFraction <= 0 {
		o.InitialFraction = 0.02
	}
	if o.GrowthFactor <= 1 {
		o.GrowthFactor = 1.5
	}
	if o.MaxFraction <= 0 || o.MaxFraction > 1 {
		o.MaxFraction = 1
	}
	if o.Threshold <= 0 || o.Threshold >= 1 {
		o.Threshold = 0.5
	}
	if o.Imputations <= 0 {
		o.Imputations = 5
	}
}

// RunLearning implements the Learning baseline: evaluate a batch of tuples,
// train the semi-supervised classifier, and return evaluated-true plus
// predicted-true tuples. The batch grows until the precision and recall
// constraints are met — checked against ground truth, which (as the paper
// notes) gives this baseline an unfair advantage since real deployments
// cannot know when to stop.
func RunLearning(in Instance, features [][]float64, clf SemiSupervised, truth func(row int) bool, rng *stats.RNG, opts MLBaselineOptions) (RunResult, error) {
	return runMLBaseline(in, features, clf, truth, rng, opts, false)
}

// RunMultiple implements the Multiple (multiple imputations) baseline:
// unlabeled tuples receive labels drawn from the classifier's class
// probabilities; the labeled-set size grows until the constraints hold on
// average across the imputed datasets.
func RunMultiple(in Instance, features [][]float64, clf SemiSupervised, truth func(row int) bool, rng *stats.RNG, opts MLBaselineOptions) (RunResult, error) {
	return runMLBaseline(in, features, clf, truth, rng, opts, true)
}

func runMLBaseline(in Instance, features [][]float64, clf SemiSupervised, truth func(row int) bool, rng *stats.RNG, opts MLBaselineOptions, multiple bool) (RunResult, error) {
	if err := in.Validate(); err != nil {
		return RunResult{}, err
	}
	if rng == nil || clf == nil || truth == nil {
		return RunResult{}, fmt.Errorf("core: rng, classifier and truth are required")
	}
	opts.fill()

	all := make([]int, 0, in.TotalRows())
	for _, g := range in.Groups {
		all = append(all, g.Rows...)
	}
	n := len(all)
	if n == 0 {
		return RunResult{}, fmt.Errorf("core: empty instance")
	}
	for _, row := range all {
		if row >= len(features) {
			return RunResult{}, fmt.Errorf("core: row %d has no feature vector (have %d)", row, len(features))
		}
	}
	totalCorrect := 0
	for _, row := range all {
		if truth(row) {
			totalCorrect++
		}
	}

	// A fixed random order defines the growing labeled prefix, so each
	// round reuses all previous evaluations.
	perm := rng.Perm(n)
	labeled := 0
	var labeledIdx []int
	var labels []bool
	meter := NewMeter(in.UDF)

	target := int(math.Ceil(opts.InitialFraction * float64(n)))
	for {
		if target > int(opts.MaxFraction*float64(n)) {
			target = int(opts.MaxFraction * float64(n))
		}
		if target <= labeled {
			target = labeled + 1
		}
		if target > n {
			target = n
		}
		for labeled < target {
			row := all[perm[labeled]]
			v := meter.Eval(row)
			labeledIdx = append(labeledIdx, perm[labeled])
			labels = append(labels, v)
			labeled++
		}

		feats := make([][]float64, n)
		for i, row := range all {
			feats[i] = features[row]
		}
		probs := clf.FitPredict(feats, labeledIdx, labels)

		isLabeled := make([]bool, n)
		for _, i := range labeledIdx {
			isLabeled[i] = true
		}

		build := func(impute bool) []int {
			var out []int
			for i, row := range all {
				switch {
				case isLabeled[i]:
					if v, _ := meter.Known(row); v {
						out = append(out, row)
					}
				case impute:
					if rng.Bernoulli(probs[i]) {
						out = append(out, row)
					}
				default:
					if probs[i] >= opts.Threshold {
						out = append(out, row)
					}
				}
			}
			return out
		}

		var output []int
		satisfied := false
		if multiple {
			var sumP, sumR float64
			for j := 0; j < opts.Imputations; j++ {
				out := build(true)
				m := ComputeMetrics(out, truth, totalCorrect)
				sumP += m.Precision
				sumR += m.Recall
				output = out
			}
			k := float64(opts.Imputations)
			satisfied = sumP/k >= in.Cons.Alpha && sumR/k >= in.Cons.Beta
		} else {
			output = build(false)
			m := ComputeMetrics(output, truth, totalCorrect)
			pOK, rOK := m.Satisfies(in.Cons)
			satisfied = pOK && rOK
		}

		if satisfied || labeled >= n || labeled >= int(opts.MaxFraction*float64(n)) {
			retrievedExtra := 0
			for _, row := range output {
				if _, known := meter.Known(row); !known {
					retrievedExtra++
				}
			}
			evals := meter.Calls()
			return RunResult{
				Output:           output,
				Retrieved:        retrievedExtra,
				Evaluated:        0,
				SampledTuples:    evals,
				TotalEvaluations: evals,
				TotalRetrievals:  evals + retrievedExtra,
				TotalCost: float64(evals)*(in.Cost.Retrieve+in.Cost.Evaluate) +
					float64(retrievedExtra)*in.Cost.Retrieve,
			}, nil
		}
		target = int(math.Ceil(float64(target) * opts.GrowthFactor))
	}
}
