package core

import (
	"fmt"

	"repro/internal/stats"
)

// Execution and estimation for conjunctions of two expensive predicates
// (Section 5 / Appendix 10.7.2). Planning lives in extensions.go
// (PlanTwoPredicates); this file adds per-group sampling of both UDFs and
// a deterministic executor for the five per-group actions.

// TwoPredSample records, per group, the sampled rows' outcomes under both
// predicates.
type TwoPredSample struct {
	// Results maps sampled row → (f1, f2) outcomes.
	Results map[int][2]bool
	// Pos1, Pos2, PosBoth count rows passing f1, f2 and both.
	Pos1, Pos2, PosBoth int
}

// SampleTwoPredicates evaluates both UDFs on `targets[i]` random tuples of
// each group and returns per-group samples plus TwoPredGroup estimates
// (Beta-posterior means over the remaining tuples). Evaluations are
// charged through the provided UDFs (wrap them in meters).
func SampleTwoPredicates(groups []Group, targets []int, udf1, udf2 UDF, rng *stats.RNG) ([]TwoPredSample, []TwoPredGroup, error) {
	if len(targets) != len(groups) {
		return nil, nil, fmt.Errorf("core: %d targets for %d groups", len(targets), len(groups))
	}
	samples := make([]TwoPredSample, len(groups))
	infos := make([]TwoPredGroup, len(groups))
	for i, g := range groups {
		samples[i] = TwoPredSample{Results: make(map[int][2]bool)}
		want := targets[i]
		if want > len(g.Rows) {
			want = len(g.Rows)
		}
		for _, idx := range rng.SampleWithoutReplacement(len(g.Rows), want) {
			row := g.Rows[idx]
			v1 := udf1.Eval(row)
			v2 := udf2.Eval(row)
			samples[i].Results[row] = [2]bool{v1, v2}
			if v1 {
				samples[i].Pos1++
			}
			if v2 {
				samples[i].Pos2++
			}
			if v1 && v2 {
				samples[i].PosBoth++
			}
		}
		f := len(samples[i].Results)
		infos[i] = TwoPredGroup{
			Size: len(g.Rows),
			Sel1: stats.NewBetaPosterior(samples[i].Pos1, f-samples[i].Pos1).Mean(),
			Sel2: stats.NewBetaPosterior(samples[i].Pos2, f-samples[i].Pos2).Mean(),
		}
	}
	return samples, infos, nil
}

// TwoPredExecResult is the outcome of executing a two-predicate plan.
type TwoPredExecResult struct {
	Output    []int
	Retrieved int
	// Evaluated1 / Evaluated2 count UDF invocations charged during
	// execution per predicate (excluding sampling).
	Evaluated1, Evaluated2 int
	Cost                   float64
}

// ExecuteTwoPredicates runs the per-group actions. Rows fully evaluated
// during sampling are resolved from their recorded outcomes at no extra
// cost (they are returned iff both predicates held). samples may be nil.
//
// Action semantics per remaining tuple:
//
//	TPDiscard       skip
//	TPAssumeBoth    retrieve, return
//	TPEval1Assume2  retrieve, evaluate f1, return iff f1
//	TPAssume1Eval2  retrieve, evaluate f2, return iff f2
//	TPEvalBoth      retrieve, evaluate f1; if it passes, evaluate f2;
//	                return iff both
func ExecuteTwoPredicates(groups []Group, acts []TwoPredAction, samples []TwoPredSample, udf1, udf2 UDF, cost CostModel) (TwoPredExecResult, error) {
	if len(acts) != len(groups) {
		return TwoPredExecResult{}, fmt.Errorf("core: %d actions for %d groups", len(acts), len(groups))
	}
	if samples != nil && len(samples) != len(groups) {
		return TwoPredExecResult{}, fmt.Errorf("core: %d samples for %d groups", len(samples), len(groups))
	}
	var res TwoPredExecResult
	for gi, g := range groups {
		act := acts[gi]
		var sampled map[int][2]bool
		if samples != nil {
			sampled = samples[gi].Results
		}
		for _, row := range g.Rows {
			if v, ok := sampled[row]; ok {
				if v[0] && v[1] {
					res.Output = append(res.Output, row)
				}
				continue
			}
			switch act {
			case TPDiscard:
			case TPAssumeBoth:
				res.Retrieved++
				res.Output = append(res.Output, row)
			case TPEval1Assume2:
				res.Retrieved++
				res.Evaluated1++
				if udf1.Eval(row) {
					res.Output = append(res.Output, row)
				}
			case TPAssume1Eval2:
				res.Retrieved++
				res.Evaluated2++
				if udf2.Eval(row) {
					res.Output = append(res.Output, row)
				}
			case TPEvalBoth:
				res.Retrieved++
				res.Evaluated1++
				if udf1.Eval(row) {
					res.Evaluated2++
					if udf2.Eval(row) {
						res.Output = append(res.Output, row)
					}
				}
			default:
				return TwoPredExecResult{}, fmt.Errorf("core: invalid action %v for group %d", act, gi)
			}
		}
	}
	res.Cost = cost.Retrieve*float64(res.Retrieved) +
		cost.Evaluate*float64(res.Evaluated1+res.Evaluated2)
	return res, nil
}

// RunTwoPredicates is the end-to-end pipeline for a conjunction of two
// expensive predicates: sample both UDFs per group, estimate joint
// selectivities, plan with PlanTwoPredicates (constraints tightened by
// Hoeffding margins so the expectation-level plan carries a probabilistic
// guarantee), and execute. A tuple is correct iff both predicates hold.
func RunTwoPredicates(groups []Group, udf1, udf2 UDF, cons Constraints, cost CostModel, alloc Allocator, rng *stats.RNG) (TwoPredExecResult, []TwoPredAction, error) {
	if alloc == nil {
		alloc = TwoThirdPowerAllocator{Num: 2.5 * cons.Alpha}
	}
	if rng == nil {
		return TwoPredExecResult{}, nil, fmt.Errorf("core: rng is required")
	}
	sizes := make([]int, len(groups))
	total := 0
	for i, g := range groups {
		sizes[i] = len(g.Rows)
		total += len(g.Rows)
	}
	m1 := NewMeter(udf1)
	m2 := NewMeter(udf2)
	samples, infos, err := SampleTwoPredicates(groups, alloc.Allocate(sizes), m1, m2, rng.Split())
	if err != nil {
		return TwoPredExecResult{}, nil, err
	}

	// Expectation-level planning with margin-tightened constraints: shift
	// α and β by the relative Hoeffding deviations so the realized
	// precision/recall concentrate above the user's bounds.
	tight := cons
	n := float64(total)
	if n > 0 {
		expCorrect := 0.0
		for _, g := range infos {
			expCorrect += float64(g.Size) * g.Sel1 * g.Sel2
		}
		if expCorrect > 1 {
			tight.Beta = stats.Clamp01(cons.Beta + stats.RecallMargin(n, cons.Beta, cons.Rho)/expCorrect)
			tight.Alpha = stats.Clamp01(cons.Alpha + stats.PrecisionMargin(n, cons.Rho)/expCorrect)
		}
	}
	acts, _, err := PlanTwoPredicates(infos, tight, cost)
	if err != nil {
		// Margins can push the tightened problem out of feasibility even
		// though evaluating both predicates everywhere trivially satisfies
		// the user's real constraints — fall back to that.
		acts = make([]TwoPredAction, len(groups))
		for i := range acts {
			acts[i] = TPEvalBoth
		}
	}
	exec, err := ExecuteTwoPredicates(groups, acts, samples, m1, m2, cost)
	if err != nil {
		return TwoPredExecResult{}, nil, err
	}
	// Fold the sampling work into the accounting.
	sampledRows, evals1, evals2 := 0, 0, 0
	for _, s := range samples {
		sampledRows += len(s.Results)
	}
	evals1 = m1.Calls() - exec.Evaluated1
	evals2 = m2.Calls() - exec.Evaluated2
	exec.Retrieved += sampledRows
	exec.Evaluated1 += evals1
	exec.Evaluated2 += evals2
	exec.Cost += float64(sampledRows)*cost.Retrieve + float64(evals1+evals2)*cost.Evaluate
	return exec, acts, nil
}
