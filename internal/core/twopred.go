package core

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/stats"
)

// Execution and estimation for conjunctions of two expensive predicates
// (Section 5 / Appendix 10.7.2). Planning lives in extensions.go
// (PlanTwoPredicates); this file adds per-group sampling of both UDFs and
// a deterministic executor for the five per-group actions.

// TwoPredSample records, per group, the sampled rows' outcomes under both
// predicates.
type TwoPredSample struct {
	// Results maps sampled row → (f1, f2) outcomes.
	Results map[int][2]bool
	// Pos1, Pos2, PosBoth count rows passing f1, f2 and both.
	Pos1, Pos2, PosBoth int
}

// SampleTwoPredicates evaluates both UDFs on `targets[i]` random tuples of
// each group and returns per-group samples plus TwoPredGroup estimates
// (Beta-posterior means over the remaining tuples). Evaluations are
// charged through the provided UDFs (wrap them in meters).
func SampleTwoPredicates(groups []Group, targets []int, udf1, udf2 UDF, rng *stats.RNG) ([]TwoPredSample, []TwoPredGroup, error) {
	return SampleTwoPredicatesParallel(groups, targets, udf1, udf2, rng, 1)
}

// SampleTwoPredicatesParallel is SampleTwoPredicates with both predicates'
// evaluations fanned across up to `parallelism` workers. All sampled rows
// are drawn from the RNG up front (sequentially), so the sampled sets and
// estimates are identical at any parallelism level.
//
//predlint:allow ctxflow — pre-context compatibility wrapper; cancellable callers use SampleTwoPredicatesParallelCtx
func SampleTwoPredicatesParallel(groups []Group, targets []int, udf1, udf2 UDF, rng *stats.RNG, parallelism int) ([]TwoPredSample, []TwoPredGroup, error) {
	return SampleTwoPredicatesParallelCtx(context.Background(), groups, targets, udf1, udf2, rng, parallelism)
}

// SampleTwoPredicatesParallelCtx is SampleTwoPredicatesParallel honoring a
// context: the sample rows are drawn from the RNG up front either way, and
// a cancel during evaluation returns ctx.Err() with no partial samples.
func SampleTwoPredicatesParallelCtx(ctx context.Context, groups []Group, targets []int, udf1, udf2 UDF, rng *stats.RNG, parallelism int) ([]TwoPredSample, []TwoPredGroup, error) {
	if len(targets) != len(groups) {
		return nil, nil, fmt.Errorf("core: %d targets for %d groups", len(targets), len(groups))
	}
	samples := make([]TwoPredSample, len(groups))
	infos := make([]TwoPredGroup, len(groups))
	// Plan: draw every group's sample rows in order.
	var work, groupOf []int
	for i, g := range groups {
		samples[i] = TwoPredSample{Results: make(map[int][2]bool)}
		want := targets[i]
		if want > len(g.Rows) {
			want = len(g.Rows)
		}
		for _, idx := range rng.SampleWithoutReplacement(len(g.Rows), want) {
			work = append(work, g.Rows[idx])
			groupOf = append(groupOf, i)
		}
	}
	// Evaluate both predicates over the batch (sampling never
	// short-circuits: joint selectivities need both outcomes). The two
	// lists are independent, so they run fused as one wave — two
	// sequential barriers would double the latency for I/O-bound UDFs.
	// A row with a failed resilient evaluation under either predicate is
	// dropped from the sample entirely: joint statistics need both
	// outcomes, so a partial row is no evidence.
	v1s, f1s, v2s, f2s, err := evalFused(ctx, work, udf1, work, udf2, parallelism)
	if err != nil {
		return nil, nil, err
	}
	for k, row := range work {
		if (f1s != nil && f1s[k]) || (f2s != nil && f2s[k]) {
			continue
		}
		i := groupOf[k]
		v1, v2 := v1s[k], v2s[k]
		samples[i].Results[row] = [2]bool{v1, v2}
		if v1 {
			samples[i].Pos1++
		}
		if v2 {
			samples[i].Pos2++
		}
		if v1 && v2 {
			samples[i].PosBoth++
		}
	}
	for i, g := range groups {
		f := len(samples[i].Results)
		infos[i] = TwoPredGroup{
			Size: len(g.Rows),
			Sel1: stats.NewBetaPosterior(samples[i].Pos1, f-samples[i].Pos1).Mean(),
			Sel2: stats.NewBetaPosterior(samples[i].Pos2, f-samples[i].Pos2).Mean(),
		}
	}
	return samples, infos, nil
}

// evalFused evaluates two independent work-lists (rows1 under udf1, rows2
// under udf2) as a single pooled batch, returning each list's verdicts
// (and, for resilient UDFs, per-row failure flags — nil otherwise) in
// order. One batch instead of two sequential barriers halves wall-clock
// latency when the pool is wider than either list alone; resilient UDFs
// instead run one gated batch per predicate, since the breaker needs
// sequential fold points. A cancel returns ctx.Err() with all slices nil.
func evalFused(ctx context.Context, rows1 []int, udf1 UDF, rows2 []int, udf2 UDF, parallelism int) (v1, f1, v2, f2 []bool, err error) {
	if anyResilient(udf1, udf2) {
		pool := exec.NewPool(parallelism)
		v1, f1, err = EvalRowsResilient(ctx, pool, rows1, udf1)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		v2, f2, err = EvalRowsResilient(ctx, pool, rows2, udf2)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return v1, f1, v2, f2, nil
	}
	v1 = make([]bool, len(rows1))
	v2 = make([]bool, len(rows2))
	err = exec.NewPool(parallelism).ForEachCtx(ctx, len(rows1)+len(rows2), func(i int) {
		if i < len(rows1) {
			v1[i] = udf1.Eval(rows1[i])
		} else {
			v2[i-len(rows1)] = udf2.Eval(rows2[i-len(rows1)])
		}
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return v1, nil, v2, nil, nil
}

// TwoPredExecResult is the outcome of executing a two-predicate plan.
type TwoPredExecResult struct {
	Output    []int
	Retrieved int
	// Evaluated1 / Evaluated2 count UDF invocations charged during
	// execution per predicate (excluding sampling).
	Evaluated1, Evaluated2 int
	Cost                   float64
}

// ExecuteTwoPredicates runs the per-group actions. Rows fully evaluated
// during sampling are resolved from their recorded outcomes at no extra
// cost (they are returned iff both predicates held). samples may be nil.
//
// Action semantics per remaining tuple:
//
//	TPDiscard       skip
//	TPAssumeBoth    retrieve, return
//	TPEval1Assume2  retrieve, evaluate f1, return iff f1
//	TPAssume1Eval2  retrieve, evaluate f2, return iff f2
//	TPEvalBoth      retrieve, evaluate f1; if it passes, evaluate f2;
//	                return iff both
func ExecuteTwoPredicates(groups []Group, acts []TwoPredAction, samples []TwoPredSample, udf1, udf2 UDF, cost CostModel) (TwoPredExecResult, error) {
	return ExecuteTwoPredicatesParallel(groups, acts, samples, udf1, udf2, cost, 1)
}

// tpKind classifies what a two-predicate output slot still needs.
type tpKind uint8

const (
	tpEmit     tpKind = iota // unconditional output
	tpNeed1                  // output iff f1
	tpNeed2                  // output iff f2
	tpNeedBoth               // output iff f1, then f2 (short-circuit preserved)
)

// tpSlot is one potential output position of the two-predicate executor.
type tpSlot struct {
	row        int
	kind       tpKind
	idx1, idx2 int
}

// ExecuteTwoPredicatesParallel is ExecuteTwoPredicates with the UDF calls
// batched and fanned across up to `parallelism` workers. Evaluation runs in
// waves — all needed f1 calls and unconditional f2 calls first, then f2 on
// the f1 survivors of TPEvalBoth groups — so the sequential short-circuit
// accounting (f2 is never charged for rows f1 rejected) is preserved
// exactly, as are output order and all counters.
//
//predlint:allow ctxflow — pre-context compatibility wrapper; cancellable callers use ExecuteTwoPredicatesParallelCtx
func ExecuteTwoPredicatesParallel(groups []Group, acts []TwoPredAction, samples []TwoPredSample, udf1, udf2 UDF, cost CostModel, parallelism int) (TwoPredExecResult, error) {
	return ExecuteTwoPredicatesParallelCtx(context.Background(), groups, acts, samples, udf1, udf2, cost, parallelism)
}

// ExecuteTwoPredicatesParallelCtx is ExecuteTwoPredicatesParallel honoring
// a context: a cancel in either evaluation wave returns ctx.Err() and an
// empty result.
func ExecuteTwoPredicatesParallelCtx(ctx context.Context, groups []Group, acts []TwoPredAction, samples []TwoPredSample, udf1, udf2 UDF, cost CostModel, parallelism int) (TwoPredExecResult, error) {
	if len(acts) != len(groups) {
		return TwoPredExecResult{}, fmt.Errorf("core: %d actions for %d groups", len(acts), len(groups))
	}
	if samples != nil && len(samples) != len(groups) {
		return TwoPredExecResult{}, fmt.Errorf("core: %d samples for %d groups", len(samples), len(groups))
	}
	var res TwoPredExecResult

	// Plan: classify every tuple, building the f1 work-list and the
	// unconditional-f2 work-list.
	var slots []tpSlot
	var work1, work2 []int
	for gi, g := range groups {
		act := acts[gi]
		var sampled map[int][2]bool
		if samples != nil {
			sampled = samples[gi].Results
		}
		for _, row := range g.Rows {
			if v, ok := sampled[row]; ok {
				if v[0] && v[1] {
					slots = append(slots, tpSlot{row: row, kind: tpEmit})
				}
				continue
			}
			switch act {
			case TPDiscard:
			case TPAssumeBoth:
				res.Retrieved++
				slots = append(slots, tpSlot{row: row, kind: tpEmit})
			case TPEval1Assume2:
				res.Retrieved++
				slots = append(slots, tpSlot{row: row, kind: tpNeed1, idx1: len(work1)})
				work1 = append(work1, row)
			case TPAssume1Eval2:
				res.Retrieved++
				slots = append(slots, tpSlot{row: row, kind: tpNeed2, idx2: len(work2)})
				work2 = append(work2, row)
			case TPEvalBoth:
				res.Retrieved++
				slots = append(slots, tpSlot{row: row, kind: tpNeedBoth, idx1: len(work1)})
				work1 = append(work1, row)
			default:
				return TwoPredExecResult{}, fmt.Errorf("core: invalid action %v for group %d", act, gi)
			}
		}
	}

	// Wave 1: every needed f1 call plus the unconditional f2 calls, fused
	// into one batch since the two lists are independent. Failed resilient
	// evaluations carry verdict false, so failed rows drop out of the
	// output (and, for TPEvalBoth, never reach the f2 wave).
	v1, _, v2, _, err := evalFused(ctx, work1, udf1, work2, udf2, parallelism)
	if err != nil {
		return TwoPredExecResult{}, err
	}

	// Wave 2: f2 on the TPEvalBoth rows that survived f1.
	var work2b []int
	for si := range slots {
		sl := &slots[si]
		if sl.kind != tpNeedBoth {
			continue
		}
		if v1[sl.idx1] {
			sl.idx2 = len(work2b)
			work2b = append(work2b, sl.row)
		} else {
			sl.idx2 = -1
		}
	}
	v2b, _, err := EvalRowsResilient(ctx, exec.NewPool(parallelism), work2b, udf2)
	if err != nil {
		return TwoPredExecResult{}, err
	}

	res.Evaluated1 = len(work1)
	res.Evaluated2 = len(work2) + len(work2b)
	for _, sl := range slots {
		switch sl.kind {
		case tpEmit:
			res.Output = append(res.Output, sl.row)
		case tpNeed1:
			if v1[sl.idx1] {
				res.Output = append(res.Output, sl.row)
			}
		case tpNeed2:
			if v2[sl.idx2] {
				res.Output = append(res.Output, sl.row)
			}
		case tpNeedBoth:
			if sl.idx2 >= 0 && v2b[sl.idx2] {
				res.Output = append(res.Output, sl.row)
			}
		}
	}
	res.Cost = cost.Retrieve*float64(res.Retrieved) +
		cost.Evaluate*float64(res.Evaluated1+res.Evaluated2)
	return res, nil
}

// RunTwoPredicates is the end-to-end pipeline for a conjunction of two
// expensive predicates: sample both UDFs per group, estimate joint
// selectivities, plan with PlanTwoPredicates (constraints tightened by
// Hoeffding margins so the expectation-level plan carries a probabilistic
// guarantee), and execute. A tuple is correct iff both predicates hold.
func RunTwoPredicates(groups []Group, udf1, udf2 UDF, cons Constraints, cost CostModel, alloc Allocator, rng *stats.RNG) (TwoPredExecResult, []TwoPredAction, error) {
	return RunTwoPredicatesParallel(groups, udf1, udf2, cons, cost, alloc, rng, 1)
}

// RunTwoPredicatesParallel is RunTwoPredicates with sampling and execution
// fanned across up to `parallelism` workers; planning stays sequential and
// results are identical at any parallelism level.
//
//predlint:allow ctxflow — pre-context compatibility wrapper; cancellable callers use RunTwoPredicatesParallelCtx
func RunTwoPredicatesParallel(groups []Group, udf1, udf2 UDF, cons Constraints, cost CostModel, alloc Allocator, rng *stats.RNG, parallelism int) (TwoPredExecResult, []TwoPredAction, error) {
	return RunTwoPredicatesParallelCtx(context.Background(), groups, udf1, udf2, cons, cost, alloc, rng, parallelism)
}

// RunTwoPredicatesParallelCtx is RunTwoPredicatesParallel honoring a
// context: both the sampling wave and the execution waves check it, so a
// cancel mid-pipeline returns ctx.Err() after at most one in-flight UDF
// call per worker.
func RunTwoPredicatesParallelCtx(ctx context.Context, groups []Group, udf1, udf2 UDF, cons Constraints, cost CostModel, alloc Allocator, rng *stats.RNG, parallelism int) (TwoPredExecResult, []TwoPredAction, error) {
	if alloc == nil {
		alloc = TwoThirdPowerAllocator{Num: 2.5 * cons.Alpha}
	}
	if rng == nil {
		return TwoPredExecResult{}, nil, fmt.Errorf("core: rng is required")
	}
	sizes := make([]int, len(groups))
	total := 0
	for i, g := range groups {
		sizes[i] = len(g.Rows)
		total += len(g.Rows)
	}
	m1 := NewMeter(udf1)
	m2 := NewMeter(udf2)
	samples, infos, err := SampleTwoPredicatesParallelCtx(ctx, groups, alloc.Allocate(sizes), m1, m2, rng.Split(), parallelism)
	if err != nil {
		return TwoPredExecResult{}, nil, err
	}

	// Expectation-level planning with margin-tightened constraints: shift
	// α and β by the relative Hoeffding deviations so the realized
	// precision/recall concentrate above the user's bounds.
	tight := cons
	n := float64(total)
	if n > 0 {
		expCorrect := 0.0
		for _, g := range infos {
			expCorrect += float64(g.Size) * g.Sel1 * g.Sel2
		}
		if expCorrect > 1 {
			tight.Beta = stats.Clamp01(cons.Beta + stats.RecallMargin(n, cons.Beta, cons.Rho)/expCorrect)
			tight.Alpha = stats.Clamp01(cons.Alpha + stats.PrecisionMargin(n, cons.Rho)/expCorrect)
		}
	}
	acts, _, err := PlanTwoPredicates(infos, tight, cost)
	if err != nil {
		// Margins can push the tightened problem out of feasibility even
		// though evaluating both predicates everywhere trivially satisfies
		// the user's real constraints — fall back to that.
		acts = make([]TwoPredAction, len(groups))
		for i := range acts {
			acts[i] = TPEvalBoth
		}
	}
	exec, err := ExecuteTwoPredicatesParallelCtx(ctx, groups, acts, samples, m1, m2, cost, parallelism)
	if err != nil {
		return TwoPredExecResult{}, nil, err
	}
	// Fold the sampling work into the accounting.
	sampledRows, evals1, evals2 := 0, 0, 0
	for _, s := range samples {
		sampledRows += len(s.Results)
	}
	evals1 = m1.Calls() - exec.Evaluated1
	evals2 = m2.Calls() - exec.Evaluated2
	exec.Retrieved += sampledRows
	exec.Evaluated1 += evals1
	exec.Evaluated2 += evals2
	exec.Cost += float64(sampledRows)*cost.Retrieve + float64(evals1+evals2)*cost.Evaluate
	return exec, acts, nil
}
