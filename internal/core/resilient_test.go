package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/resilience"
)

// fallibleFunc adapts a func to FallibleUDF.
type fallibleFunc func(ctx context.Context, row int) (bool, error)

func (f fallibleFunc) EvalErr(ctx context.Context, row int) (bool, error) { return f(ctx, row) }

func TestResilientMeterFailureMemoizedOnce(t *testing.T) {
	var calls, failures int
	var mu sync.Mutex
	m := NewResilientMeter(fallibleFunc(func(_ context.Context, row int) (bool, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		if row == 7 {
			return false, errors.New("broken row")
		}
		return true, nil
	}), nil, nil, func(row int, err error) {
		mu.Lock()
		failures++
		mu.Unlock()
		if row != 7 {
			t.Errorf("onFailure for row %d, want 7", row)
		}
	})

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		v, failed := m.EvalFallible(ctx, 7)
		if v || !failed {
			t.Fatalf("pass %d: got (%v, %v), want failed with verdict false", i, v, failed)
		}
	}
	if v, failed := m.EvalFallible(ctx, 8); !v || failed {
		t.Fatalf("healthy row: got (%v, %v)", v, failed)
	}
	if failures != 1 {
		t.Errorf("onFailure fired %d times, want once (failed-final memoization)", failures)
	}
	if calls != 2 {
		t.Errorf("body invoked %d times, want 2 (row 7 once + row 8 once)", calls)
	}
	if got := m.Calls(); got != 1 {
		t.Errorf("Calls() = %d, want 1 — failed rows are never charged", got)
	}
}

func TestResilientMeterFailureNotStoredInSharedCache(t *testing.T) {
	cache := NewSharedEvalCache()
	m := NewResilientMeter(fallibleFunc(func(_ context.Context, row int) (bool, error) {
		if row == 3 {
			return false, errors.New("flaky")
		}
		return true, nil
	}), cache, nil, nil)
	ctx := context.Background()
	m.EvalFallible(ctx, 3)
	m.EvalFallible(ctx, 4)
	if _, ok := cache.Lookup(3); ok {
		t.Error("failed row leaked into the shared cache")
	}
	if v, ok := cache.Lookup(4); !ok || !v {
		t.Error("healthy row missing from the shared cache")
	}
}

func TestResilientMeterCancellationForgetsRow(t *testing.T) {
	var calls int
	m := NewResilientMeter(fallibleFunc(func(ctx context.Context, _ int) (bool, error) {
		calls++
		if err := ctx.Err(); err != nil {
			return false, err
		}
		return true, nil
	}), nil, nil, func(int, error) {
		t.Error("cancellation must not fire onFailure")
	})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, failed := m.EvalFallible(ctx, 1); !failed {
		t.Fatal("cancelled evaluation should report failed (withheld)")
	}
	// A fresh context re-evaluates: the row was forgotten, not failed-final.
	if v, failed := m.EvalFallible(context.Background(), 1); !v || failed {
		t.Fatalf("re-run after cancel: got (%v, %v), want a fresh successful evaluation", v, failed)
	}
	if calls != 2 {
		t.Errorf("body invoked %d times, want 2", calls)
	}
}

func TestResolveDeniedServesMemoAndCache(t *testing.T) {
	cache := NewSharedEvalCache()
	cache.Store(5, true)
	var denied []int
	m := NewResilientMeter(fallibleFunc(func(_ context.Context, _ int) (bool, error) {
		return true, nil
	}), cache, nil, func(row int, err error) {
		if !errors.Is(err, resilience.ErrBreakerOpen) {
			t.Errorf("onFailure err = %v, want ErrBreakerOpen", err)
		}
		denied = append(denied, row)
	})

	// Row 1: evaluated first, then denied — memo serves it.
	m.EvalFallible(context.Background(), 1)
	if v, failed := m.ResolveDenied(1); !v || failed {
		t.Fatalf("memoized row denied: got (%v, %v), want served from memo", v, failed)
	}
	// Row 5: cached cross-query — cache serves it.
	if v, failed := m.ResolveDenied(5); !v || failed {
		t.Fatalf("cached row denied: got (%v, %v), want served from cache", v, failed)
	}
	// Row 9: unknown — fails, onFailure fires with ErrBreakerOpen.
	if v, failed := m.ResolveDenied(9); v || !failed {
		t.Fatalf("unknown row denied: got (%v, %v), want failure", v, failed)
	}
	// The failure is final: a later gated segment that would admit row 9
	// still sees it failed (per-query consistency).
	if v, failed := m.EvalFallible(context.Background(), 9); v || !failed {
		t.Fatalf("row 9 after denial: got (%v, %v), want the memoized failure", v, failed)
	}
	if len(denied) != 1 || denied[0] != 9 {
		t.Errorf("onFailure rows = %v, want [9]", denied)
	}
}

func TestPlainMeterNotResilient(t *testing.T) {
	m := NewMeter(UDFFunc(func(row int) bool { return row%2 == 0 }))
	if m.Resilient() {
		t.Fatal("plain meter must not report resilient")
	}
	if anyResilient(m) {
		t.Fatal("anyResilient(plain meter) = true")
	}
	// EvalRowsResilient degenerates to the classic batch: nil failure slice.
	v, f, err := EvalRowsResilient(context.Background(), exec.NewPool(2), []int{0, 1, 2, 3}, m)
	if err != nil || f != nil {
		t.Fatalf("plain path: f=%v err=%v, want nil failure slice", f, err)
	}
	for i, want := range []bool{true, false, true, false} {
		if v[i] != want {
			t.Fatalf("row %d: verdict %v", i, v[i])
		}
	}
}

func TestEvalRowsResilientWithBreakerDeterministic(t *testing.T) {
	// 60 rows; rows 10..29 fail. The breaker (window 8, min 4, rate 0.5,
	// segment 8) trips during the failure run; denied rows resolve as
	// failures. At any parallelism the verdict/failed slices and the trip
	// count must match, because Plan/Record run on the batch spine.
	rows := make([]int, 60)
	for i := range rows {
		rows[i] = i
	}
	run := func(workers int) ([]bool, []bool, int64) {
		b := resilience.NewBreaker(resilience.BreakerConfig{
			Window: 8, MinCalls: 4, FailureRate: 0.5, Cooldown: 8, Probes: 2, Segment: 8,
		})
		m := NewResilientMeter(fallibleFunc(func(_ context.Context, row int) (bool, error) {
			if row >= 10 && row < 30 {
				return false, errors.New("down")
			}
			return true, nil
		}), nil, b, nil)
		v, f, err := EvalRowsResilient(context.Background(), exec.NewPool(workers), rows, m)
		if err != nil {
			t.Fatal(err)
		}
		return v, f, b.Trips()
	}
	v1, f1, trips1 := run(1)
	v8, f8, trips8 := run(8)
	if trips1 == 0 {
		t.Fatal("breaker never tripped — the scenario is miscalibrated")
	}
	if trips1 != trips8 {
		t.Fatalf("trips differ across parallelism: %d vs %d", trips1, trips8)
	}
	for i := range rows {
		if v1[i] != v8[i] || f1[i] != f8[i] {
			t.Fatalf("row %d differs across parallelism: (%v,%v) vs (%v,%v)", i, v1[i], f1[i], v8[i], f8[i])
		}
	}
	// Healthy prefix evaluated normally.
	for i := 0; i < 10; i++ {
		if !v1[i] || f1[i] {
			t.Fatalf("healthy row %d: (%v, %v)", i, v1[i], f1[i])
		}
	}
	// Every row in the failure run is excluded, one way or the other.
	for i := 10; i < 30; i++ {
		if v1[i] || !f1[i] {
			t.Fatalf("failing row %d: (%v, %v), want failed", i, v1[i], f1[i])
		}
	}
}
