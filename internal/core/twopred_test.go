package core

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// twoPredWorld builds groups with independent per-group selectivities for
// two predicates.
func twoPredWorld(rng *stats.RNG, sizes []int, sel1, sel2 []float64) ([]Group, []bool, []bool) {
	total := 0
	for _, s := range sizes {
		total += s
	}
	l1 := make([]bool, total)
	l2 := make([]bool, total)
	groups := make([]Group, len(sizes))
	row := 0
	for gi, size := range sizes {
		rows := make([]int, size)
		for k := 0; k < size; k++ {
			rows[k] = row
			l1[row] = rng.Bernoulli(sel1[gi])
			l2[row] = rng.Bernoulli(sel2[gi])
			row++
		}
		groups[gi] = Group{Key: string(rune('A' + gi)), Rows: rows}
	}
	return groups, l1, l2
}

func TestSampleTwoPredicates(t *testing.T) {
	rng := stats.NewRNG(1101)
	groups, l1, l2 := twoPredWorld(rng, []int{500, 500}, []float64{0.9, 0.2}, []float64{0.7, 0.7})
	u1 := UDFFunc(func(r int) bool { return l1[r] })
	u2 := UDFFunc(func(r int) bool { return l2[r] })
	samples, infos, err := SampleTwoPredicates(groups, []int{100, 100}, u1, u2, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if len(samples[0].Results) != 100 {
		t.Fatalf("sampled %d", len(samples[0].Results))
	}
	if math.Abs(infos[0].Sel1-0.9) > 0.1 || math.Abs(infos[1].Sel1-0.2) > 0.12 {
		t.Fatalf("sel1 estimates %v / %v", infos[0].Sel1, infos[1].Sel1)
	}
	if math.Abs(infos[0].Sel2-0.7) > 0.12 {
		t.Fatalf("sel2 estimate %v", infos[0].Sel2)
	}
	// Counts are internally consistent.
	for _, s := range samples {
		if s.PosBoth > s.Pos1 || s.PosBoth > s.Pos2 {
			t.Fatalf("inconsistent counts %+v", s)
		}
	}
	if _, _, err := SampleTwoPredicates(groups, []int{1}, u1, u2, rng); err == nil {
		t.Fatal("mismatched targets accepted")
	}
}

func TestExecuteTwoPredicatesSemantics(t *testing.T) {
	rng := stats.NewRNG(1103)
	groups, l1, l2 := twoPredWorld(rng, []int{200}, []float64{0.5}, []float64{0.5})
	u1 := UDFFunc(func(r int) bool { return l1[r] })
	u2 := UDFFunc(func(r int) bool { return l2[r] })

	check := func(act TwoPredAction, wantMember func(r int) bool, wantE1, wantE2 int) {
		t.Helper()
		res, err := ExecuteTwoPredicates(groups, []TwoPredAction{act}, nil, u1, u2, DefaultCost)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Output {
			if !wantMember(r) {
				t.Fatalf("action %v: row %d should not be in output", act, r)
			}
		}
		want := 0
		for r := 0; r < 200; r++ {
			if wantMember(r) {
				want++
			}
		}
		if len(res.Output) != want {
			t.Fatalf("action %v: output %d want %d", act, len(res.Output), want)
		}
		if wantE1 >= 0 && res.Evaluated1 != wantE1 {
			t.Fatalf("action %v: evaluated1 %d want %d", act, res.Evaluated1, wantE1)
		}
		if wantE2 >= 0 && res.Evaluated2 != wantE2 {
			t.Fatalf("action %v: evaluated2 %d want %d", act, res.Evaluated2, wantE2)
		}
	}

	check(TPDiscard, func(r int) bool { return false }, 0, 0)
	check(TPAssumeBoth, func(r int) bool { return true }, 0, 0)
	check(TPEval1Assume2, func(r int) bool { return l1[r] }, 200, 0)
	check(TPAssume1Eval2, func(r int) bool { return l2[r] }, 0, 200)
	// EvalBoth short-circuits: f2 evaluated only on f1 survivors.
	pass1 := 0
	for r := 0; r < 200; r++ {
		if l1[r] {
			pass1++
		}
	}
	check(TPEvalBoth, func(r int) bool { return l1[r] && l2[r] }, 200, pass1)
}

func TestExecuteTwoPredicatesHonorsSamples(t *testing.T) {
	rng := stats.NewRNG(1105)
	groups, l1, l2 := twoPredWorld(rng, []int{100}, []float64{0.5}, []float64{0.5})
	calls1, calls2 := 0, 0
	u1 := UDFFunc(func(r int) bool { calls1++; return l1[r] })
	u2 := UDFFunc(func(r int) bool { calls2++; return l2[r] })
	samples := []TwoPredSample{{Results: map[int][2]bool{}}}
	for _, row := range groups[0].Rows[:30] {
		samples[0].Results[row] = [2]bool{l1[row], l2[row]}
	}
	res, err := ExecuteTwoPredicates(groups, []TwoPredAction{TPEvalBoth}, samples, u1, u2, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if calls1 != 70 {
		t.Fatalf("f1 called %d times, want 70", calls1)
	}
	if res.Retrieved != 70 {
		t.Fatalf("retrieved %d want 70", res.Retrieved)
	}
	// Sampled rows passing both must be in the output.
	outSet := map[int]bool{}
	for _, r := range res.Output {
		outSet[r] = true
	}
	for row, v := range samples[0].Results {
		if (v[0] && v[1]) != outSet[row] {
			t.Fatalf("sampled row %d membership wrong", row)
		}
	}
}

func TestExecuteTwoPredicatesValidation(t *testing.T) {
	rng := stats.NewRNG(1107)
	groups, l1, l2 := twoPredWorld(rng, []int{10}, []float64{0.5}, []float64{0.5})
	u1 := UDFFunc(func(r int) bool { return l1[r] })
	u2 := UDFFunc(func(r int) bool { return l2[r] })
	if _, err := ExecuteTwoPredicates(groups, nil, nil, u1, u2, DefaultCost); err == nil {
		t.Fatal("missing actions accepted")
	}
	if _, err := ExecuteTwoPredicates(groups, []TwoPredAction{99}, nil, u1, u2, DefaultCost); err == nil {
		t.Fatal("invalid action accepted")
	}
	if _, err := ExecuteTwoPredicates(groups, []TwoPredAction{TPDiscard}, make([]TwoPredSample, 2), u1, u2, DefaultCost); err == nil {
		t.Fatal("mismatched samples accepted")
	}
}

func TestRunTwoPredicatesEndToEnd(t *testing.T) {
	rng := stats.NewRNG(1109)
	groups, l1, l2 := twoPredWorld(rng,
		[]int{1500, 1500, 1500},
		[]float64{0.95, 0.5, 0.05},
		[]float64{0.9, 0.6, 0.5})
	u1 := UDFFunc(func(r int) bool { return l1[r] })
	u2 := UDFFunc(func(r int) bool { return l2[r] })
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	res, acts, err := RunTwoPredicates(groups, u1, u2, cons, DefaultCost, nil, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 3 {
		t.Fatalf("actions %v", acts)
	}
	// Quality versus the conjunction ground truth.
	truth := func(r int) bool { return l1[r] && l2[r] }
	totalCorrect := 0
	for r := range l1 {
		if truth(r) {
			totalCorrect++
		}
	}
	m := ComputeMetrics(res.Output, truth, totalCorrect)
	if m.Precision < 0.7 || m.Recall < 0.7 {
		t.Fatalf("metrics collapsed: %+v", m)
	}
	// Must beat evaluating both predicates on every tuple.
	evalAllCost := float64(4500) * (DefaultCost.Retrieve + 2*DefaultCost.Evaluate)
	if res.Cost >= evalAllCost {
		t.Fatalf("cost %v not below eval-everything %v", res.Cost, evalAllCost)
	}
	// The near-zero sel1 group should mostly be discarded, not eval'd.
	if acts[2] == TPEvalBoth || acts[2] == TPAssume1Eval2 {
		t.Fatalf("wasteful action on dead group: %v", acts)
	}
	if _, _, err := RunTwoPredicates(groups, u1, u2, cons, DefaultCost, nil, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestRunTwoPredicatesSatisfactionRate(t *testing.T) {
	rng := stats.NewRNG(1111)
	cons := Constraints{Alpha: 0.75, Beta: 0.75, Rho: 0.8}
	const runs = 40
	ok := 0
	for i := 0; i < runs; i++ {
		groups, l1, l2 := twoPredWorld(rng.Split(),
			[]int{1000, 1000, 1000},
			[]float64{0.9, 0.5, 0.1},
			[]float64{0.85, 0.7, 0.6})
		u1 := UDFFunc(func(r int) bool { return l1[r] })
		u2 := UDFFunc(func(r int) bool { return l2[r] })
		res, _, err := RunTwoPredicates(groups, u1, u2, cons, DefaultCost, nil, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		truth := func(r int) bool { return l1[r] && l2[r] }
		totalCorrect := 0
		for r := range l1 {
			if truth(r) {
				totalCorrect++
			}
		}
		m := ComputeMetrics(res.Output, truth, totalCorrect)
		pOK, rOK := m.Satisfies(cons)
		if pOK && rOK {
			ok++
		}
	}
	if frac := float64(ok) / runs; frac < 0.7 {
		t.Fatalf("constraints satisfied in only %v of runs", frac)
	}
}
