package core

import (
	"fmt"

	"repro/internal/stats"
)

// This file wires the pieces into the paper's end-to-end algorithm,
// Intel-Sample (Section 6.2): sample per group to estimate selectivities,
// solve Convex Prog. 4.1, then execute the resulting strategy.

// Instance is a query instance: the grouped relation, the expensive
// predicate, and the user's constraints and costs.
type Instance struct {
	Groups []Group
	UDF    UDF
	Cons   Constraints
	Cost   CostModel
}

// Validate checks the instance is runnable.
func (in Instance) Validate() error {
	if len(in.Groups) == 0 {
		return fmt.Errorf("core: instance has no groups")
	}
	if in.UDF == nil {
		return fmt.Errorf("core: instance has no UDF")
	}
	if err := in.Cons.Validate(); err != nil {
		return err
	}
	return in.Cost.Validate()
}

// TotalRows counts the tuples across groups.
func (in Instance) TotalRows() int {
	total := 0
	for _, g := range in.Groups {
		total += len(g.Rows)
	}
	return total
}

// RunOptions tunes RunIntelSample.
type RunOptions struct {
	// Alloc is the sampling allocator; default TwoThirdPower with
	// num = 2.5·α (the paper's recommended setting).
	Alloc Allocator
	// Adaptive, when true, ignores Alloc and runs the Section 4.3 adaptive
	// num search instead.
	Adaptive bool
	// AdaptiveOpts tunes the adaptive search (used only when Adaptive).
	AdaptiveOpts AdaptiveOptions
	// Model selects the correlation bound; default IndependentGroups
	// (correct for per-group sampling).
	Model CorrelationModel
	// RNG drives sampling and execution coins; required.
	RNG *stats.RNG
}

// RunResult reports everything the experiments need about one run.
type RunResult struct {
	// Strategy is the plan that was executed.
	Strategy Strategy
	// Infos are the estimated group statistics the plan was built from.
	Infos []GroupInfo
	// Output is the approximate query answer (row ids).
	Output []int
	// SampledTuples is the number of UDF calls spent on estimation.
	SampledTuples int
	// Retrieved / Evaluated count execution-phase work (excluding
	// sampling).
	Retrieved, Evaluated int
	// TotalEvaluations = SampledTuples + Evaluated: every UDF call made.
	TotalEvaluations int
	// TotalRetrievals counts every tuple fetched (sampling + execution).
	TotalRetrievals int
	// TotalCost is the full cost including sampling.
	TotalCost float64
}

// RunIntelSample executes the Intel-Sample algorithm on the instance:
// sample → estimate → plan (Convex Prog. 4.1) → execute.
func RunIntelSample(in Instance, opts RunOptions) (RunResult, error) {
	if err := in.Validate(); err != nil {
		return RunResult{}, err
	}
	if opts.RNG == nil {
		return RunResult{}, fmt.Errorf("core: RunOptions.RNG is required")
	}
	if opts.Alloc == nil {
		opts.Alloc = TwoThirdPowerAllocator{Num: 2.5 * in.Cons.Alpha}
	}

	meter := NewMeter(in.UDF)
	sampler := NewSampler(in.Groups, meter, opts.RNG.Split())

	if opts.Adaptive {
		if _, err := AdaptiveTwoThirdPower(sampler, in.Cons, in.Cost, opts.AdaptiveOpts); err != nil {
			return RunResult{}, err
		}
	} else {
		sizes := make([]int, len(in.Groups))
		for i, g := range in.Groups {
			sizes[i] = len(g.Rows)
		}
		if _, err := sampler.TopUp(opts.Alloc.Allocate(sizes)); err != nil {
			return RunResult{}, err
		}
	}

	infos := sampler.Infos()
	strat, err := PlanEstimated(infos, in.Cons, in.Cost, opts.Model)
	if err != nil {
		return RunResult{}, err
	}

	exec, err := Execute(in.Groups, strat, sampler.Outcomes(), meter, in.Cost, opts.RNG.Split())
	if err != nil {
		return RunResult{}, err
	}

	sampled := sampler.TotalSampled()
	res := RunResult{
		Strategy:         strat,
		Infos:            infos,
		Output:           exec.Output,
		SampledTuples:    sampled,
		Retrieved:        exec.Retrieved,
		Evaluated:        exec.Evaluated,
		TotalEvaluations: sampled + exec.Evaluated,
		TotalRetrievals:  sampled + exec.Retrieved,
		TotalCost:        float64(sampled)*(in.Cost.Retrieve+in.Cost.Evaluate) + exec.Cost,
	}
	return res, nil
}

// RunPerfectSelectivities runs the "Optimal" reference algorithm of the
// experiments: selectivities are computed exactly from the oracle (at no
// charge — this baseline is deliberately unrealistic) and the Section 3.2
// plan is executed. truth must answer without cost.
func RunPerfectSelectivities(in Instance, truth func(row int) bool, rng *stats.RNG) (RunResult, error) {
	if err := in.Validate(); err != nil {
		return RunResult{}, err
	}
	infos := make([]GroupInfo, len(in.Groups))
	for i, g := range in.Groups {
		correct := 0
		for _, row := range g.Rows {
			if truth(row) {
				correct++
			}
		}
		sel := 0.0
		if len(g.Rows) > 0 {
			sel = float64(correct) / float64(len(g.Rows))
		}
		infos[i] = GroupInfo{Size: len(g.Rows), Selectivity: sel}
	}
	strat, err := PlanPerfectSelectivities(infos, in.Cons, in.Cost)
	if err != nil {
		return RunResult{}, err
	}
	exec, err := Execute(in.Groups, strat, nil, in.UDF, in.Cost, rng)
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Strategy:         strat,
		Infos:            infos,
		Output:           exec.Output,
		Retrieved:        exec.Retrieved,
		Evaluated:        exec.Evaluated,
		TotalEvaluations: exec.Evaluated,
		TotalRetrievals:  exec.Retrieved,
		TotalCost:        exec.Cost,
	}, nil
}
