package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// conjGroups builds two groups over rows 0..n-1 (even/odd split).
func conjGroups(n int) []Group {
	var even, odd []int
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			even = append(even, i)
		} else {
			odd = append(odd, i)
		}
	}
	return []Group{{Key: "even", Rows: even}, {Key: "odd", Rows: odd}}
}

func TestSampleConjunctionEstimates(t *testing.T) {
	groups := conjGroups(400)
	udfs := []UDF{
		UDFFunc(func(row int) bool { return row%4 == 0 }),  // sel 0.25
		UDFFunc(func(row int) bool { return row < 300 }),   // sel 0.75
		UDFFunc(func(row int) bool { return row%10 != 0 }), // sel 0.9
	}
	samples, sels, err := SampleConjunctionParallelCtx(context.Background(), groups, []int{60, 60}, udfs, stats.NewRNG(3), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || len(sels) != 3 {
		t.Fatalf("got %d samples, %d sels", len(samples), len(sels))
	}
	for i, s := range samples {
		if len(s.Results) != 60 {
			t.Fatalf("group %d sampled %d rows, want 60", i, len(s.Results))
		}
		for row, outs := range s.Results {
			if len(outs) != 3 {
				t.Fatalf("row %d has %d outcomes", row, len(outs))
			}
			for j, u := range udfs {
				if outs[j] != u.Eval(row) {
					t.Fatalf("row %d pred %d recorded %v", row, j, outs[j])
				}
			}
		}
	}
	approx := []float64{0.25, 0.75, 0.9}
	for j, want := range approx {
		if math.Abs(sels[j]-want) > 0.15 {
			t.Fatalf("sel[%d] = %v, want ≈%v", j, sels[j], want)
		}
	}
}

func TestSampleConjunctionDeterministicAcrossParallelism(t *testing.T) {
	groups := conjGroups(300)
	udfs := []UDF{
		UDFFunc(func(row int) bool { return row%3 == 0 }),
		UDFFunc(func(row int) bool { return row%5 != 0 }),
	}
	run := func(par int) ([]ConjSample, []float64) {
		s, sels, err := SampleConjunctionParallelCtx(context.Background(), groups, []int{40, 40}, udfs, stats.NewRNG(17), par)
		if err != nil {
			t.Fatal(err)
		}
		return s, sels
	}
	s1, sel1 := run(1)
	s8, sel8 := run(8)
	if !reflect.DeepEqual(s1, s8) || !reflect.DeepEqual(sel1, sel8) {
		t.Fatal("sampling diverged across parallelism levels")
	}
}

func TestOrderPredicates(t *testing.T) {
	// rank = cost/(1-sel): 3/0.75=4, 1/0.1=10, 3/0.9≈3.33 → order 2,0,1.
	order, err := OrderPredicates([]float64{3, 1, 3}, []float64{0.25, 0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{2, 0, 1}) {
		t.Fatalf("order %v", order)
	}
	// A never-rejecting predicate goes last regardless of cost.
	order, err = OrderPredicates([]float64{0.001, 5}, []float64{1.0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{1, 0}) {
		t.Fatalf("order %v", order)
	}
	// Ties keep original position.
	order, err = OrderPredicates([]float64{2, 2}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1}) {
		t.Fatalf("order %v", order)
	}
	if _, err := OrderPredicates([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestExecuteConjunctionWavesShortCircuit(t *testing.T) {
	n := 200
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	m0 := NewMeter(UDFFunc(func(row int) bool { return row%2 == 0 }))
	m1 := NewMeter(UDFFunc(func(row int) bool { return row%3 == 0 }))
	m2 := NewMeter(UDFFunc(func(row int) bool { return row%5 == 0 }))
	res, err := ExecuteConjunctionWavesParallelCtx(context.Background(), rows, []int{0, 1, 2}, nil, []UDF{m0, m1, m2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for i := 0; i < n; i++ {
		if i%2 == 0 && i%3 == 0 && i%5 == 0 {
			want = append(want, i)
		}
	}
	if !reflect.DeepEqual(res.Output, want) {
		t.Fatalf("output %v, want %v", res.Output, want)
	}
	// Wave sizes: 200, then the 100 even rows, then the 34 multiples of 6.
	if got := res.Evaluated; !reflect.DeepEqual(got, []int{200, 100, 34}) {
		t.Fatalf("evaluated %v", got)
	}
	if m0.Calls() != 200 || m1.Calls() != 100 || m2.Calls() != 34 {
		t.Fatalf("meter calls %d/%d/%d", m0.Calls(), m1.Calls(), m2.Calls())
	}
	if res.Retrieved != 200 {
		t.Fatalf("retrieved %d, want 200", res.Retrieved)
	}
}

func TestExecuteConjunctionWavesKnownRowsFree(t *testing.T) {
	rows := []int{0, 1, 2, 3, 4, 5}
	m0 := NewMeter(UDFFunc(func(row int) bool { return row != 1 }))
	m1 := NewMeter(UDFFunc(func(row int) bool { return row%2 == 0 }))
	known := []map[int]bool{
		{0: true, 1: false},
		{0: true},
	}
	res, err := ExecuteConjunctionWavesParallelCtx(context.Background(), rows, []int{0, 1}, known, []UDF{m0, m1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int{0, 2, 4}) {
		t.Fatalf("output %v", res.Output)
	}
	// Rows 0 and 1 were fully decided (or rejected) without touching pred 0;
	// row 0 also skipped pred 1.
	if m0.Calls() != 4 {
		t.Fatalf("pred0 calls %d, want 4", m0.Calls())
	}
	if m1.Calls() != 4 {
		t.Fatalf("pred1 calls %d, want 4", m1.Calls())
	}
	// Row 0 was never fetched during waves; rows 2..5 were.
	if res.Retrieved != 4 {
		t.Fatalf("retrieved %d, want 4", res.Retrieved)
	}
}

func TestExecuteConjunctionWavesOrderIndependentOfParallelism(t *testing.T) {
	n := 500
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	udfs := []UDF{
		UDFFunc(func(row int) bool { return row%2 == 1 }),
		UDFFunc(func(row int) bool { return row%7 != 0 }),
		UDFFunc(func(row int) bool { return row > 100 }),
	}
	run := func(par int) ConjWavesResult {
		res, err := ExecuteConjunctionWavesParallelCtx(context.Background(), rows, []int{2, 0, 1}, nil, udfs, par)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(1), run(8); !reflect.DeepEqual(a, b) {
		t.Fatalf("waves diverged across parallelism: %+v vs %+v", a, b)
	}
}

func TestConjunctionWavesValidation(t *testing.T) {
	rows := []int{0, 1}
	udfs := []UDF{UDFFunc(func(int) bool { return true }), UDFFunc(func(int) bool { return true })}
	if _, err := ExecuteConjunctionWavesParallelCtx(context.Background(), rows, []int{0}, nil, udfs, 1); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := ExecuteConjunctionWavesParallelCtx(context.Background(), rows, []int{0, 0}, nil, udfs, 1); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, err := ExecuteConjunctionWavesParallelCtx(context.Background(), rows, []int{0, 2}, nil, udfs, 1); err == nil {
		t.Fatal("out-of-range order accepted")
	}
	if _, _, err := SampleConjunctionParallelCtx(context.Background(), conjGroups(10), []int{1}, udfs, stats.NewRNG(1), 1); err == nil {
		t.Fatal("target/group mismatch accepted")
	}
	if _, _, err := SampleConjunctionParallelCtx(context.Background(), conjGroups(10), []int{1, 1}, nil, stats.NewRNG(1), 1); err == nil {
		t.Fatal("no predicates accepted")
	}
}

func TestConjunctionCancellation(t *testing.T) {
	groups := conjGroups(100)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	udf := UDFFunc(func(row int) bool {
		calls++
		if calls == 5 {
			cancel()
		}
		return true
	})
	_, _, err := SampleConjunctionParallelCtx(ctx, groups, []int{20, 20}, []UDF{udf, udf}, stats.NewRNG(2), 1)
	if err != context.Canceled {
		t.Fatalf("sample cancel: %v", err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	calls = 0
	udf2 := UDFFunc(func(row int) bool {
		calls++
		if calls == 5 {
			cancel2()
		}
		return true
	})
	rows := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	_, err = ExecuteConjunctionWavesParallelCtx(ctx2, rows, []int{0, 1}, nil, []UDF{udf2, udf2}, 1)
	if err != context.Canceled {
		t.Fatalf("waves cancel: %v", err)
	}
}
