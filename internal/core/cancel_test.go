package core

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
)

// cancelAfter wraps a UDF so the context cancels once `after` evaluations
// have started, letting tests land a cancel mid-batch deterministically.
func cancelAfter(udf UDF, after int64, cancel context.CancelFunc) UDF {
	var n atomic.Int64
	return UDFFunc(func(row int) bool {
		if n.Add(1) == after {
			cancel()
		}
		return udf.Eval(row)
	})
}

func TestTopUpCtxCancelLeavesSamplerConsistent(t *testing.T) {
	groups, udf := parallelTestGroups(3000)
	targets := []int{200, 200, 200}

	// Reference: an uncancelled sampler over the same seed.
	ref := NewSampler(groups, udf, stats.NewRNG(5))
	refN, err := ref.TopUp(targets)
	if err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		s := NewSampler(groups, cancelAfter(udf, 25, cancel), stats.NewRNG(5))
		s.SetParallelism(par)
		if _, err := s.TopUpCtx(ctx, targets); err != context.Canceled {
			t.Fatalf("par=%d: err %v, want context.Canceled", par, err)
		}
		// The cancelled top-up must not have mutated the sampler: no
		// outcomes recorded, no rows popped.
		if got := s.TotalSampled(); got != 0 {
			t.Fatalf("par=%d: cancelled TopUp recorded %d outcomes", par, got)
		}
		for i := range groups {
			if len(s.unsampled[i]) != len(groups[i].Rows) {
				t.Fatalf("par=%d: group %d pool shrank to %d of %d",
					par, i, len(s.unsampled[i]), len(groups[i].Rows))
			}
		}
		// A retry over a live context completes and matches the reference
		// bit-for-bit: same rows sampled, same outcomes.
		n, err := s.TopUpCtx(context.Background(), targets)
		if err != nil {
			t.Fatal(err)
		}
		if n != refN {
			t.Fatalf("par=%d: retry sampled %d, reference %d", par, n, refN)
		}
		if !reflect.DeepEqual(s.Outcomes(), ref.Outcomes()) {
			t.Fatalf("par=%d: retry outcomes diverge from uncancelled run", par)
		}
	}
}

func TestLabelFractionParallelCtxCancel(t *testing.T) {
	groups, udf := parallelTestGroups(3000)
	rows := make([]int, 0, 3000)
	for _, g := range groups {
		rows = append(rows, g.Rows...)
	}
	for _, par := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		labeled, err := LabelFractionParallelCtx(ctx, rows, 0.2, cancelAfter(udf, 10, cancel), stats.NewRNG(3), par)
		if err != context.Canceled {
			t.Fatalf("par=%d: err %v, want context.Canceled", par, err)
		}
		if labeled != nil {
			t.Fatalf("par=%d: cancelled labeling returned %d labels", par, len(labeled))
		}
	}
}

func TestExecuteParallelCtxCancel(t *testing.T) {
	groups, udf := parallelTestGroups(3000)
	s := NewStrategy(3)
	for i := range s.R {
		s.R[i], s.E[i] = 1, 1
	}
	for _, par := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		res, err := ExecuteParallelCtx(ctx, groups, s, nil, cancelAfter(udf, 40, cancel), DefaultCost, stats.NewRNG(7), par)
		if err != context.Canceled {
			t.Fatalf("par=%d: err %v, want context.Canceled", par, err)
		}
		if len(res.Output) != 0 {
			t.Fatalf("par=%d: cancelled execution returned %d rows", par, len(res.Output))
		}
	}
}

func TestRunTwoPredicatesParallelCtxCancel(t *testing.T) {
	groups, udf := parallelTestGroups(1500)
	cons := Constraints{Alpha: 0.7, Beta: 0.7, Rho: 0.7}
	for _, par := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		_, _, err := RunTwoPredicatesParallelCtx(ctx, groups, cancelAfter(udf, 5, cancel), udf, cons, DefaultCost, nil, stats.NewRNG(11), par)
		if err != context.Canceled {
			t.Fatalf("par=%d: err %v, want context.Canceled", par, err)
		}
	}
}

func TestCtxVariantsMatchLegacyOnBackground(t *testing.T) {
	// The Background-context wrappers must be bit-identical to the legacy
	// entry points (same RNG consumption, same outputs).
	groups, udf := parallelTestGroups(3000)
	s := NewStrategy(3)
	s.R[0], s.E[0] = 1, 0.9
	s.R[1], s.E[1] = 0.7, 0.4
	s.R[2], s.E[2] = 0.2, 0.1
	legacy, err := ExecuteParallel(groups, s, nil, udf, DefaultCost, stats.NewRNG(7), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := ExecuteParallelCtx(context.Background(), groups, s, nil, udf, DefaultCost, stats.NewRNG(7), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, ctxed) {
		t.Fatal("ExecuteParallelCtx(Background) diverges from ExecuteParallel")
	}
}
