package core

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
)

// parallelTestGroups builds a few groups with a deterministic ground truth.
func parallelTestGroups(n int) ([]Group, UDF) {
	rng := stats.NewRNG(99)
	labels := make([]bool, n)
	sels := []float64{0.9, 0.5, 0.1}
	for i := range labels {
		labels[i] = rng.Bernoulli(sels[i%3])
	}
	groups := make([]Group, 3)
	for i := 0; i < n; i++ {
		groups[i%3].Rows = append(groups[i%3].Rows, i)
	}
	for i := range groups {
		groups[i].Key = string(rune('a' + i))
	}
	return groups, UDFFunc(func(row int) bool { return labels[row] })
}

func TestExecuteParallelMatchesSequential(t *testing.T) {
	groups, udf := parallelTestGroups(3000)
	s := NewStrategy(3)
	s.R[0], s.E[0] = 1, 0.9
	s.R[1], s.E[1] = 0.7, 0.4
	s.R[2], s.E[2] = 0.2, 0.1

	// Include a sampling phase so the known-outcome path is covered too.
	mkSamples := func() []SampleOutcome {
		samples := make([]SampleOutcome, 3)
		for i := range samples {
			samples[i] = SampleOutcome{Results: map[int]bool{}}
			for k, row := range groups[i].Rows {
				if k%17 == 0 {
					v := udf.Eval(row)
					samples[i].Results[row] = v
					if v {
						samples[i].Positives++
					}
				}
			}
		}
		return samples
	}

	seq, err := Execute(groups, s, mkSamples(), udf, DefaultCost, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8, 64} {
		par, err := ExecuteParallel(groups, s, mkSamples(), udf, DefaultCost, stats.NewRNG(7), p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallelism %d diverged:\nseq %+v\npar %+v", p, seq, par)
		}
	}
}

func TestSamplerTopUpParallelMatchesSequential(t *testing.T) {
	build := func(parallelism int) *Sampler {
		groups, udf := parallelTestGroups(1200)
		s := NewSampler(groups, udf, stats.NewRNG(11))
		s.SetParallelism(parallelism)
		if _, err := s.TopUp([]int{40, 25, 60}); err != nil {
			t.Fatal(err)
		}
		// A second top-up exercises the incremental path.
		if _, err := s.TopUp([]int{55, 55, 60}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	seq, par := build(1), build(16)
	if !reflect.DeepEqual(seq.Outcomes(), par.Outcomes()) {
		t.Fatal("parallel TopUp produced different outcomes")
	}
	if !reflect.DeepEqual(seq.Infos(), par.Infos()) {
		t.Fatal("parallel TopUp produced different infos")
	}
	if seq.TotalSampled() != par.TotalSampled() {
		t.Fatalf("sampled %d vs %d", seq.TotalSampled(), par.TotalSampled())
	}
}

func TestLabelFractionParallelMatchesSequential(t *testing.T) {
	_, udf := parallelTestGroups(900)
	rows := make([]int, 900)
	for i := range rows {
		rows[i] = i
	}
	seq := LabelFraction(rows, 0.05, udf, stats.NewRNG(3))
	par := LabelFractionParallel(rows, 0.05, udf, stats.NewRNG(3), 8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("labeled sets differ: %d vs %d rows", len(seq), len(par))
	}
}

func TestTwoPredicatesParallelMatchesSequential(t *testing.T) {
	groups, udf1 := parallelTestGroups(1500)
	udf2 := UDFFunc(func(row int) bool { return row%2 == 0 })
	cons := Constraints{Alpha: 0.75, Beta: 0.75, Rho: 0.8}

	seq, actsSeq, err := RunTwoPredicates(groups, udf1, udf2, cons, DefaultCost, nil, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	par, actsPar, err := RunTwoPredicatesParallel(groups, udf1, udf2, cons, DefaultCost, nil, stats.NewRNG(5), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("two-pred diverged:\nseq %+v\npar %+v", seq, par)
	}
	if !reflect.DeepEqual(actsSeq, actsPar) {
		t.Fatalf("actions diverged: %v vs %v", actsSeq, actsPar)
	}
}

func TestMeterSingleFlightUnderConcurrency(t *testing.T) {
	var bodyCalls atomic.Int64
	slow := UDFFunc(func(row int) bool {
		bodyCalls.Add(1)
		return row%2 == 0
	})
	m := NewMeter(slow)
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for row := 0; row < 50; row++ {
				if got := m.Eval(row); got != (row%2 == 0) {
					t.Errorf("row %d verdict %v", row, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c := bodyCalls.Load(); c != 50 {
		t.Fatalf("UDF body ran %d times, want 50 (once per row)", c)
	}
	if m.Calls() != 50 {
		t.Fatalf("meter charged %d calls, want 50", m.Calls())
	}
}

func TestCachedMeterSkipsCharging(t *testing.T) {
	cache := NewSharedEvalCache()
	var bodyCalls atomic.Int64
	udf := UDFFunc(func(row int) bool {
		bodyCalls.Add(1)
		return row > 10
	})

	m1 := NewCachedMeter(udf, cache)
	for row := 0; row < 20; row++ {
		m1.Eval(row)
	}
	if m1.Calls() != 20 || bodyCalls.Load() != 20 {
		t.Fatalf("first meter: %d calls, %d body runs", m1.Calls(), bodyCalls.Load())
	}
	if cache.Len() != 20 {
		t.Fatalf("cache holds %d rows, want 20", cache.Len())
	}

	// A second query's meter over the same cache pays nothing.
	m2 := NewCachedMeter(udf, cache)
	for row := 0; row < 20; row++ {
		if got := m2.Eval(row); got != (row > 10) {
			t.Fatalf("cached verdict wrong for row %d", row)
		}
	}
	if m2.Calls() != 0 || bodyCalls.Load() != 20 {
		t.Fatalf("second meter: %d calls, %d body runs, want 0 and 20", m2.Calls(), bodyCalls.Load())
	}
	// New rows still get evaluated and charged.
	m2.Eval(25)
	if m2.Calls() != 1 || bodyCalls.Load() != 21 {
		t.Fatalf("fresh row: %d calls, %d body runs", m2.Calls(), bodyCalls.Load())
	}
}

func TestMeterPanicDoesNotPoisonMemo(t *testing.T) {
	first := true
	udf := UDFFunc(func(row int) bool {
		if row == 3 && first {
			first = false
			panic("transient")
		}
		return row%2 == 1
	})
	m := NewMeter(udf)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		m.Eval(3)
	}()
	if _, ok := m.Known(3); ok {
		t.Fatal("failed evaluation left a memo entry")
	}
	// A retry must re-invoke the UDF and get the genuine verdict, not the
	// zero-value false.
	if !m.Eval(3) {
		t.Fatal("retry inherited the failed evaluation's zero verdict")
	}
}

func TestMeterKnown(t *testing.T) {
	m := NewMeter(UDFFunc(func(row int) bool { return row == 1 }))
	if _, ok := m.Known(1); ok {
		t.Fatal("unevaluated row reported known")
	}
	m.Eval(1)
	v, ok := m.Known(1)
	if !ok || !v {
		t.Fatalf("known(1) = %v, %v", v, ok)
	}
}
