// Package core implements the paper's contribution: optimizers that decide,
// per group of tuples sharing a correlated-attribute value, the probability
// of retrieving (Rₐ) and evaluating (Eₐ) tuples so that a selection query
// with an expensive UDF predicate meets user-specified precision (α),
// recall (β) and satisfaction-probability (ρ) constraints at minimum
// expected cost.
//
// Three information regimes are supported, mirroring Section 3:
//
//   - Perfect information (exact correct/incorrect counts): the NP-hard 0/1
//     problem, solved exactly by branch and bound (SolvePerfectInformation).
//   - Perfect selectivities: the Hoeffding-tightened linear program solved by
//     the O(|A| log |A|) BIGREEDY-LP algorithm (PlanPerfectSelectivities).
//   - Estimated selectivities: the Chebyshev-tightened convex programs for
//     unknown correlations and independent groups, and the sampling-aware
//     variant of Section 4 (PlanEstimated*, PlanWithSamples).
//
// The package also implements the Section 4 machinery for jointly
// estimating and exploiting selectivities (sampling allocators, Beta
// posterior estimates, adaptive sampling, correlated-column selection), the
// probabilistic executor, the experiment baselines, and the Section 5
// extensions (cost budgets, multiple predicates, selection before join).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/stats"
)

// Constraints carries the user's accuracy requirements: precision lower
// bound Alpha, recall lower bound Beta, and satisfaction probability Rho
// (each constraint must hold with probability at least Rho).
type Constraints struct {
	Alpha float64
	Beta  float64
	Rho   float64
}

// Validate checks all fields lie in [0, 1].
func (c Constraints) Validate() error {
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("core: precision bound α=%v outside [0,1]", c.Alpha)
	}
	if c.Beta < 0 || c.Beta > 1 {
		return fmt.Errorf("core: recall bound β=%v outside [0,1]", c.Beta)
	}
	if c.Rho < 0 || c.Rho >= 1 {
		return fmt.Errorf("core: satisfaction probability ρ=%v outside [0,1)", c.Rho)
	}
	return nil
}

// CostModel carries the per-tuple costs: Retrieve is o_r (fetching a tuple
// from storage) and Evaluate is o_e (one UDF invocation). Evaluating a
// tuple always retrieves it first, so its total cost is o_r + o_e.
type CostModel struct {
	Retrieve float64
	Evaluate float64
}

// DefaultCost matches the paper's experimental setting: o_r = 1, o_e = 3.
var DefaultCost = CostModel{Retrieve: 1, Evaluate: 3}

// Validate checks costs are non-negative.
func (c CostModel) Validate() error {
	if c.Retrieve < 0 || c.Evaluate < 0 {
		return fmt.Errorf("core: negative cost (o_r=%v, o_e=%v)", c.Retrieve, c.Evaluate)
	}
	return nil
}

// GroupInfo is what the optimizer knows about one group of tuples sharing a
// correlated-attribute value.
type GroupInfo struct {
	// Size is tₐ, the number of tuples in the group (always known).
	Size int
	// Selectivity is sₐ: exact in the perfect-selectivity regime, the
	// posterior mean in the estimated regime.
	Selectivity float64
	// Variance is vₐ, the variance of the selectivity estimate; zero when
	// selectivities are known exactly.
	Variance float64
	// Sampled is Fₐ, the number of tuples already retrieved and evaluated
	// while estimating selectivities (Section 4). Zero if none.
	Sampled int
	// SampledPositive is F⁺ₐ, how many sampled tuples satisfied the
	// predicate. At most Sampled.
	SampledPositive int
}

// Remaining returns tₐ − Fₐ, the tuples the execution strategy still acts
// on.
func (g GroupInfo) Remaining() int { return g.Size - g.Sampled }

// Validate checks internal consistency.
func (g GroupInfo) Validate() error {
	if g.Size < 0 {
		return fmt.Errorf("core: negative group size %d", g.Size)
	}
	if g.Selectivity < 0 || g.Selectivity > 1 {
		return fmt.Errorf("core: selectivity %v outside [0,1]", g.Selectivity)
	}
	if g.Variance < 0 {
		return fmt.Errorf("core: negative variance %v", g.Variance)
	}
	if g.Sampled < 0 || g.Sampled > g.Size {
		return fmt.Errorf("core: sampled count %d outside [0,%d]", g.Sampled, g.Size)
	}
	if g.SampledPositive < 0 || g.SampledPositive > g.Sampled {
		return fmt.Errorf("core: sampled positives %d outside [0,%d]", g.SampledPositive, g.Sampled)
	}
	return nil
}

// GroupInfoFromSample builds the estimated-selectivity view of a group from
// its sampling outcome, using the Beta-posterior estimates of Section 4.1:
// sₐ = (F⁺+1)/(F+2) and vₐ = sₐ(1−sₐ)/(F+3).
func GroupInfoFromSample(size, sampled, positives int) GroupInfo {
	post := stats.NewBetaPosterior(positives, sampled-positives)
	return GroupInfo{
		Size:            size,
		Selectivity:     post.Mean(),
		Variance:        post.Variance(),
		Sampled:         sampled,
		SampledPositive: positives,
	}
}

// TotalSize sums tₐ over the groups.
func TotalSize(groups []GroupInfo) int {
	total := 0
	for _, g := range groups {
		total += g.Size
	}
	return total
}

// ExpectedCorrect returns Σ tₐ·sₐ, the expected number of correct tuples.
func ExpectedCorrect(groups []GroupInfo) float64 {
	total := 0.0
	for _, g := range groups {
		total += float64(g.Size) * g.Selectivity
	}
	return total
}

// Strategy is a probabilistic execution strategy: per group, the
// probability R of retrieving each tuple and the probability E of
// retrieving and evaluating it (so the conditional evaluation probability
// given retrieval is E/R). Invariant: 0 ≤ E[i] ≤ R[i] ≤ 1.
type Strategy struct {
	R []float64
	E []float64
	// RecallCapped records that the planner hit the "retrieve everything"
	// ceiling: recall is then 1 deterministically even though the
	// margin-tightened linear constraint could not be met.
	RecallCapped bool
	// PrecisionCapped records that the planner hit the "evaluate everything
	// retrieved" ceiling: the output then contains only verified tuples
	// (plus none unverified), so precision is 1 deterministically.
	PrecisionCapped bool
}

// NewStrategy returns an all-zero (discard everything) strategy over n
// groups.
func NewStrategy(n int) Strategy {
	return Strategy{R: make([]float64, n), E: make([]float64, n)}
}

// Len returns the number of groups the strategy covers.
func (s Strategy) Len() int { return len(s.R) }

// Validate checks the 0 ≤ E ≤ R ≤ 1 invariant (with tolerance eps).
func (s Strategy) Validate() error {
	if len(s.R) != len(s.E) {
		return errors.New("core: strategy R/E length mismatch")
	}
	const eps = 1e-9
	for i := range s.R {
		if s.R[i] < -eps || s.R[i] > 1+eps {
			return fmt.Errorf("core: R[%d]=%v outside [0,1]", i, s.R[i])
		}
		if s.E[i] < -eps || s.E[i] > s.R[i]+eps {
			return fmt.Errorf("core: E[%d]=%v outside [0,R=%v]", i, s.E[i], s.R[i])
		}
	}
	return nil
}

// ExpectedCost returns the expected execution cost
// Σ wₐ·(o_r·Rₐ + o_e·Eₐ) over the not-yet-sampled tuples (wₐ = tₐ − Fₐ).
// Sampling costs already paid are not included; see SampleOutcome.Cost.
func (s Strategy) ExpectedCost(groups []GroupInfo, cost CostModel) float64 {
	total := 0.0
	for i, g := range groups {
		w := float64(g.Remaining())
		total += w * (cost.Retrieve*s.R[i] + cost.Evaluate*s.E[i])
	}
	return total
}

// ExpectedEvaluations returns Σ wₐ·Eₐ, the expected number of UDF calls the
// strategy will make (excluding sampling).
func (s Strategy) ExpectedEvaluations(groups []GroupInfo) float64 {
	total := 0.0
	for i, g := range groups {
		total += float64(g.Remaining()) * s.E[i]
	}
	return total
}

// ExpectedRetrievals returns Σ wₐ·Rₐ (excluding sampling).
func (s Strategy) ExpectedRetrievals(groups []GroupInfo) float64 {
	total := 0.0
	for i, g := range groups {
		total += float64(g.Remaining()) * s.R[i]
	}
	return total
}

// FullEvaluation returns the exact-query strategy (retrieve and evaluate
// everything), which satisfies any constraints deterministically.
func FullEvaluation(n int) Strategy {
	s := NewStrategy(n)
	for i := range s.R {
		s.R[i], s.E[i] = 1, 1
	}
	s.RecallCapped, s.PrecisionCapped = true, true
	return s
}

// Clone returns a deep copy of the strategy.
func (s Strategy) Clone() Strategy {
	out := Strategy{
		R:               append([]float64(nil), s.R...),
		E:               append([]float64(nil), s.E...),
		RecallCapped:    s.RecallCapped,
		PrecisionCapped: s.PrecisionCapped,
	}
	return out
}

// clamp tidies tiny numerical violations after solver arithmetic.
func (s *Strategy) clamp() {
	for i := range s.R {
		s.R[i] = stats.Clamp01(s.R[i])
		if s.E[i] < 0 {
			s.E[i] = 0
		}
		if s.E[i] > s.R[i] {
			s.E[i] = s.R[i]
		}
	}
}

// UDF is the expensive predicate f: given a tuple's row id it reports
// whether the tuple satisfies the predicate. Implementations are expected
// to be deterministic per row within one query execution.
type UDF interface {
	Eval(row int) bool
}

// UDFFunc adapts a function to the UDF interface.
type UDFFunc func(row int) bool

// Eval implements UDF.
func (f UDFFunc) Eval(row int) bool { return f(row) }

// EvalCache is a store of already-paid-for UDF outcomes shared across
// queries (the engine keeps one per (table, UDF, column, want) key).
// Implementations must be safe for concurrent use.
type EvalCache interface {
	// Lookup reports a cached outcome for the row, if one exists.
	Lookup(row int) (bool, bool)
	// Store records the row's outcome.
	Store(row int, v bool)
}

// SharedEvalCache is the standard EvalCache: a mutex-guarded row → outcome
// map, safe for concurrent queries.
type SharedEvalCache struct {
	mu   sync.RWMutex
	vals map[int]bool
}

// NewSharedEvalCache returns an empty cache.
func NewSharedEvalCache() *SharedEvalCache {
	return &SharedEvalCache{vals: make(map[int]bool)}
}

// Lookup implements EvalCache.
func (c *SharedEvalCache) Lookup(row int) (bool, bool) {
	c.mu.RLock()
	v, ok := c.vals[row]
	c.mu.RUnlock()
	return v, ok
}

// Store implements EvalCache.
func (c *SharedEvalCache) Store(row int, v bool) {
	c.mu.Lock()
	c.vals[row] = v
	c.mu.Unlock()
}

// Len reports how many rows have cached outcomes.
func (c *SharedEvalCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.vals)
}

// Preload bulk-loads outcomes (e.g. restored from a durable catalog).
func (c *SharedEvalCache) Preload(m map[int]bool) {
	c.mu.Lock()
	for row, v := range m {
		c.vals[row] = v
	}
	c.mu.Unlock()
}

// Snapshot copies the current outcomes (e.g. for persisting).
func (c *SharedEvalCache) Snapshot() map[int]bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[int]bool, len(c.vals))
	for row, v := range c.vals {
		out[row] = v
	}
	return out
}

// Meter wraps a UDF and counts invocations; it memoizes results so repeated
// evaluations of the same tuple (e.g. sampled during estimation and touched
// again at execution) are charged once, matching the paper's accounting.
//
// Meter is safe for concurrent use: parallel batch evaluation may hit the
// same row from several goroutines, and single-flight de-duplication
// guarantees the underlying UDF runs (and is charged) at most once per row,
// keeping Calls deterministic at any parallelism level. An optional shared
// EvalCache supplies outcomes already paid for by earlier queries; hits are
// NOT charged to this meter.
type Meter struct {
	udf    UDF
	calls  atomic.Int64
	shared EvalCache // may be nil
	// fudf, when non-nil, makes the meter resilient: evaluation goes
	// through the fallible path (see resilient.go), failed rows are
	// memoized as failed-final, never charged, never cached, and reported
	// once through onFailure. gate, when non-nil, is the circuit breaker
	// consulted by gated batch evaluation.
	fudf      FallibleUDF
	gate      exec.Gate
	onFailure func(row int, err error)
	// cacheHits / cacheMisses count shared-cache lookups (zero when shared
	// is nil). Single-flight guarantees at most one lookup per row, so both
	// are deterministic at any parallelism level.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	mu   sync.Mutex
	memo map[int]*meterEntry
}

// meterEntry is a single-flight slot: the first goroutine to claim a row
// evaluates it and closes done; later arrivals wait on done. failed marks
// an evaluation that panicked or was cancelled (written before done
// closes): waiters retry instead of trusting the zero-value verdict.
// errFinal marks a resilient evaluation that ultimately failed (after its
// own retries): the row stays memoized as failed for the meter's lifetime,
// so every phase of a query sees the same rows excluded.
type meterEntry struct {
	done     chan struct{}
	val      bool
	failed   bool
	errFinal bool
}

// NewMeter wraps udf with call counting and memoization.
func NewMeter(udf UDF) *Meter {
	return &Meter{udf: udf, memo: make(map[int]*meterEntry)}
}

// NewCachedMeter is NewMeter backed by a cross-query outcome cache: rows
// found in cache are served without invoking (or charging for) the UDF, and
// newly computed outcomes are written back for future queries.
func NewCachedMeter(udf UDF, cache EvalCache) *Meter {
	m := NewMeter(udf)
	m.shared = cache
	return m
}

// Eval implements UDF, charging only the first evaluation per row. On a
// resilient meter a row whose evaluation ultimately failed reports false
// (the failure was already delivered through onFailure); prefer
// EvalRowsResilient for batch paths that need the per-row failure flags.
//
//predlint:allow ctxflow — pre-context compatibility shim; cancellable batch paths use EvalRowsResilient
func (m *Meter) Eval(row int) bool {
	if m.fudf != nil {
		v, _ := m.EvalFallible(context.Background(), row)
		return v
	}
	var e *meterEntry
	for {
		m.mu.Lock()
		if cur, ok := m.memo[row]; ok {
			m.mu.Unlock()
			<-cur.done
			if cur.failed {
				// The owner panicked; the row was forgotten — retry.
				continue
			}
			return cur.val
		}
		e = &meterEntry{done: make(chan struct{})}
		m.memo[row] = e
		m.mu.Unlock()
		break
	}

	// If the UDF panics, forget the row (a retry must re-evaluate, never
	// inherit the zero-value verdict) and release waiters flagged failed;
	// the panic still propagates to our caller.
	completed := false
	defer func() {
		if !completed {
			e.failed = true
			m.mu.Lock()
			delete(m.memo, row)
			m.mu.Unlock()
			close(e.done)
		}
	}()
	if m.shared != nil {
		if v, ok := m.shared.Lookup(row); ok {
			m.cacheHits.Add(1)
			e.val = v
			completed = true
			close(e.done)
			return v
		}
		m.cacheMisses.Add(1)
	}
	m.calls.Add(1)
	v := m.udf.Eval(row)
	e.val = v
	completed = true
	close(e.done)
	if m.shared != nil {
		m.shared.Store(row, v)
	}
	return v
}

// Calls returns the number of distinct UDF invocations charged so far.
func (m *Meter) Calls() int { return int(m.calls.Load()) }

// CacheHits returns how many rows the shared cross-query cache served
// without charging an evaluation (always 0 without a shared cache).
func (m *Meter) CacheHits() int { return int(m.cacheHits.Load()) }

// CacheMisses returns how many shared-cache lookups fell through to a
// charged UDF invocation (always 0 without a shared cache).
func (m *Meter) CacheMisses() int { return int(m.cacheMisses.Load()) }

// Known reports whether row's value is already memoized (and what it is).
// In-flight evaluations on other goroutines report as unknown.
func (m *Meter) Known(row int) (bool, bool) {
	m.mu.Lock()
	e, ok := m.memo[row]
	m.mu.Unlock()
	if !ok {
		return false, false
	}
	select {
	case <-e.done:
		if e.failed {
			// The evaluation panicked after we fetched the entry; its
			// zero-value verdict was never computed.
			return false, false
		}
		return e.val, true
	default:
		return false, false
	}
}

// Group binds a group key to the row ids of its tuples.
type Group struct {
	Key  string
	Rows []int
}

// infeasibleMargin is the tolerance used when verifying planner output
// against its own constraints.
const feasEps = 1e-6

// almostGE reports a ≥ b within feasEps scaled by the magnitude of b.
func almostGE(a, b float64) bool {
	scale := math.Abs(b)
	if scale < 1 {
		scale = 1
	}
	return a >= b-feasEps*scale
}
