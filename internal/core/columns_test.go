package core

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// buildCandidates creates a relation with a strongly correlated column, a
// weakly correlated column, and a high-cardinality column.
func buildCandidates(rng *stats.RNG, n int) ([]Candidate, []bool, func(int) bool) {
	labels := make([]bool, n)
	strong := make([]int, n) // 3 values tracking the label closely
	weak := make([]int, n)   // 3 values, mostly noise
	wide := make([]int, n)   // ~n/2 distinct values
	for i := 0; i < n; i++ {
		g := i % 3
		sel := []float64{0.9, 0.5, 0.1}[g]
		labels[i] = rng.Bernoulli(sel)
		strong[i] = g
		if rng.Bernoulli(0.9) {
			weak[i] = rng.IntN(3)
		} else {
			weak[i] = g
		}
		wide[i] = i % (n / 2)
	}
	toGroups := func(vals []int) []Group {
		byVal := map[int][]int{}
		for row, v := range vals {
			byVal[v] = append(byVal[v], row)
		}
		var groups []Group
		for v := 0; v < len(byVal); v++ {
			groups = append(groups, Group{Key: string(rune('0' + v%10)), Rows: byVal[v]})
		}
		return groups
	}
	cands := []Candidate{
		{Name: "strong", Groups: toGroups(strong)},
		{Name: "weak", Groups: toGroups(weak)},
		{Name: "wide", Groups: toGroups(wide)},
	}
	truth := func(r int) bool { return labels[r] }
	return cands, labels, truth
}

func TestSelectColumnPrefersCorrelated(t *testing.T) {
	rng := stats.NewRNG(701)
	cands, _, truth := buildCandidates(rng, 3000)
	rows := make([]int, 3000)
	for i := range rows {
		rows[i] = i
	}
	labeled := LabelFraction(rows, 0.05, UDFFunc(truth), rng)
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	choice, err := SelectColumn(cands, labeled, cons, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Name != "strong" {
		t.Fatalf("chose %q, want strong (costs %v)", choice.Name, choice.EstimatedCost)
	}
	// The wide column must be disqualified (cardinality above √|labeled|).
	if !math.IsInf(choice.EstimatedCost[2], 1) {
		t.Fatalf("wide column was not disqualified: %v", choice.EstimatedCost[2])
	}
	// The strong column's estimated cost must be lower than the weak one's.
	if choice.EstimatedCost[0] >= choice.EstimatedCost[1] {
		t.Fatalf("strong cost %v not below weak %v", choice.EstimatedCost[0], choice.EstimatedCost[1])
	}
}

func TestSelectColumnErrors(t *testing.T) {
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	if _, err := SelectColumn(nil, map[int]bool{0: true}, cons, DefaultCost); err == nil {
		t.Fatal("no candidates accepted")
	}
	cand := []Candidate{{Name: "x", Groups: []Group{{Rows: []int{0, 1}}}}}
	if _, err := SelectColumn(cand, nil, cons, DefaultCost); err == nil {
		t.Fatal("no labels accepted")
	}
	// All candidates disqualified: 4 labeled tuples allow at most 2 groups.
	wide := []Candidate{{Name: "wide", Groups: []Group{
		{Rows: []int{0}}, {Rows: []int{1}}, {Rows: []int{2}}, {Rows: []int{3}},
	}}}
	labeled := map[int]bool{0: true, 1: false, 2: true, 3: false}
	if _, err := SelectColumn(wide, labeled, cons, DefaultCost); err == nil {
		t.Fatal("all-disqualified should error")
	}
}

func TestLabelFraction(t *testing.T) {
	rng := stats.NewRNG(703)
	rows := make([]int, 100)
	for i := range rows {
		rows[i] = i + 1000 // offset to catch index/row confusion
	}
	calls := 0
	udf := UDFFunc(func(row int) bool {
		calls++
		return row%2 == 0
	})
	labeled := LabelFraction(rows, 0.1, udf, rng)
	if len(labeled) != 10 || calls != 10 {
		t.Fatalf("labeled %d calls %d, want 10", len(labeled), calls)
	}
	for row, v := range labeled {
		if row < 1000 || row >= 1100 {
			t.Fatalf("labeled row %d outside the relation", row)
		}
		if v != (row%2 == 0) {
			t.Fatalf("label for %d wrong", row)
		}
	}
}
