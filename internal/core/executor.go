package core

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/stats"
)

// This file implements query execution (the "Execution" step of
// Sections 3.2/3.3): given a strategy, flip a coin per tuple to decide
// retrieval, then another to decide evaluation; retrieved-but-unevaluated
// tuples are returned as-is, evaluated tuples are returned only when the
// UDF accepts them. Tuples already evaluated during sampling are returned
// (or dropped) according to their known value at no extra cost.
//
// Execution is split into two phases so the expensive UDF calls can fan
// out across goroutines without perturbing determinism: a sequential PLAN
// phase draws every Bernoulli coin from the RNG in tuple order and emits
// the work-list of rows needing evaluation, then a parallel EVALUATE phase
// runs the UDF over the work-list and merges verdicts back in row order.
// Because the UDF never consumes the RNG, the coin stream — and therefore
// the output — is bit-for-bit identical at every parallelism level.

// SampleOutcome records the sampling phase's work for one group.
type SampleOutcome struct {
	// Results maps sampled row id → UDF outcome.
	Results map[int]bool
	// Positives counts true outcomes (F⁺ₐ).
	Positives int
}

// ExecResult is the outcome of executing a strategy.
type ExecResult struct {
	// Output holds the returned row ids (the approximate query answer).
	Output []int
	// Retrieved counts tuples fetched during execution (excluding sampling).
	Retrieved int
	// Evaluated counts UDF calls made during execution (excluding sampling).
	Evaluated int
	// Cost is the execution cost o_r·Retrieved + o_e·Evaluated.
	Cost float64
}

// Execute runs the strategy over the groups on the calling goroutine. It
// is ExecuteParallel at parallelism 1, kept for the (many) sequential
// callers in the experiment harness.
func Execute(groups []Group, s Strategy, samples []SampleOutcome, udf UDF, cost CostModel, rng *stats.RNG) (ExecResult, error) {
	return ExecuteParallel(groups, s, samples, udf, cost, rng, 1)
}

// execSlot is one potential output position produced by the plan phase:
// either an unconditional emit (evalIdx < 0) or a slot whose inclusion
// depends on the verdict of work-list item evalIdx.
type execSlot struct {
	row     int
	evalIdx int
}

// ExecuteParallel runs the strategy over the groups, fanning UDF calls
// across up to `parallelism` workers (≤ 0 means GOMAXPROCS). samples may
// be nil (no sampling phase) or hold one entry per group; sampled rows are
// not re-retrieved or re-evaluated — their recorded outcome decides
// membership. The RNG drives the per-tuple coins; all draws happen in the
// sequential plan phase, so results are identical at every parallelism
// level.
//
//predlint:allow ctxflow — pre-context compatibility wrapper; cancellable callers use ExecuteParallelCtx
func ExecuteParallel(groups []Group, s Strategy, samples []SampleOutcome, udf UDF, cost CostModel, rng *stats.RNG, parallelism int) (ExecResult, error) {
	return ExecuteParallelCtx(context.Background(), groups, s, samples, udf, cost, rng, parallelism)
}

// ExecuteParallelCtx is ExecuteParallel honoring a context. The plan phase
// (coin flips) is cheap and always completes, so the RNG is consumed
// identically whether or not the evaluate phase is cancelled; a cancel
// during evaluation returns ctx.Err() and an empty result.
func ExecuteParallelCtx(ctx context.Context, groups []Group, s Strategy, samples []SampleOutcome, udf UDF, cost CostModel, rng *stats.RNG, parallelism int) (ExecResult, error) {
	if len(groups) != s.Len() {
		return ExecResult{}, fmt.Errorf("core: %d groups but strategy covers %d", len(groups), s.Len())
	}
	if samples != nil && len(samples) != len(groups) {
		return ExecResult{}, fmt.Errorf("core: %d groups but %d sample outcomes", len(groups), len(samples))
	}
	if err := s.Validate(); err != nil {
		return ExecResult{}, err
	}
	var res ExecResult

	// Plan: draw retrieval/evaluation coins for every tuple in order,
	// collecting output slots and the work-list of rows to evaluate.
	var slots []execSlot
	var work []int
	for i, g := range groups {
		ra, ea := s.R[i], s.E[i]
		var sampled map[int]bool
		if samples != nil {
			sampled = samples[i].Results
		}
		condEval := 0.0
		if ra > 0 {
			condEval = ea / ra
		}
		for _, row := range g.Rows {
			if v, ok := sampled[row]; ok {
				// Already paid for during sampling; include iff correct.
				if v {
					slots = append(slots, execSlot{row: row, evalIdx: -1})
				}
				continue
			}
			if !rng.Bernoulli(ra) {
				continue
			}
			res.Retrieved++
			if rng.Bernoulli(condEval) {
				slots = append(slots, execSlot{row: row, evalIdx: len(work)})
				work = append(work, row)
			} else {
				slots = append(slots, execSlot{row: row, evalIdx: -1})
			}
		}
	}

	// Evaluate: fan the expensive calls out, then merge in plan order. A
	// failed resilient evaluation carries verdict false, so failed rows are
	// excluded from the output below without extra bookkeeping.
	verdicts, _, err := EvalRowsResilient(ctx, exec.NewPool(parallelism), work, udf)
	if err != nil {
		return ExecResult{}, err
	}
	res.Evaluated = len(work)
	for _, sl := range slots {
		if sl.evalIdx < 0 || verdicts[sl.evalIdx] {
			res.Output = append(res.Output, sl.row)
		}
	}
	res.Cost = cost.Retrieve*float64(res.Retrieved) + cost.Evaluate*float64(res.Evaluated)
	return res, nil
}

// Metrics holds the information-retrieval quality of an output set.
type Metrics struct {
	Precision float64
	Recall    float64
	// OutputSize and TotalCorrect echo the denominators for reporting.
	OutputSize   int
	TotalCorrect int
}

// Satisfies reports whether the metrics meet the constraints. An empty
// output has precision 1 by convention (it contains no incorrect tuples).
func (m Metrics) Satisfies(cons Constraints) (precisionOK, recallOK bool) {
	return m.Precision >= cons.Alpha-1e-12, m.Recall >= cons.Beta-1e-12
}

// ComputeMetrics scores an output set against ground truth. truth must be
// the oracle predicate (uncharged); totalCorrect is |C|, the number of
// correct tuples in the whole relation.
func ComputeMetrics(output []int, truth func(row int) bool, totalCorrect int) Metrics {
	correct := 0
	for _, row := range output {
		if truth(row) {
			correct++
		}
	}
	m := Metrics{OutputSize: len(output), TotalCorrect: totalCorrect}
	if len(output) == 0 {
		m.Precision = 1
	} else {
		m.Precision = float64(correct) / float64(len(output))
	}
	if totalCorrect == 0 {
		m.Recall = 1
	} else {
		m.Recall = float64(correct) / float64(totalCorrect)
	}
	return m
}
