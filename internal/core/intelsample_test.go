package core

import (
	"testing"

	"repro/internal/stats"
)

func testInstance(rng *stats.RNG) (Instance, []bool, func(int) bool) {
	groups, labels, truth := syntheticGroups(rng, []int{2000, 2000, 2000}, []float64{0.9, 0.5, 0.1})
	in := Instance{
		Groups: groups,
		UDF:    UDFFunc(truth),
		Cons:   Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8},
		Cost:   DefaultCost,
	}
	return in, labels, truth
}

func totalCorrect(labels []bool) int {
	n := 0
	for _, v := range labels {
		if v {
			n++
		}
	}
	return n
}

func TestRunIntelSampleEndToEnd(t *testing.T) {
	rng := stats.NewRNG(601)
	in, labels, truth := testInstance(rng)
	res, err := RunIntelSample(in, RunOptions{RNG: rng.Split()})
	if err != nil {
		t.Fatal(err)
	}
	if res.SampledTuples == 0 {
		t.Fatal("no sampling happened")
	}
	if res.TotalEvaluations != res.SampledTuples+res.Evaluated {
		t.Fatal("evaluation accounting inconsistent")
	}
	if res.TotalEvaluations >= in.TotalRows() {
		t.Fatalf("evaluated %d of %d tuples — no savings", res.TotalEvaluations, in.TotalRows())
	}
	m := ComputeMetrics(res.Output, truth, totalCorrect(labels))
	// A single run can miss (ρ=0.8) but with these wide margins it should
	// be extremely safe; treat failure as suspicious.
	if m.Precision < 0.7 || m.Recall < 0.7 {
		t.Fatalf("metrics far below constraints: %+v", m)
	}
	// Savings vs the naive baseline.
	naive, err := RunNaive(in, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvaluations >= naive.TotalEvaluations {
		t.Fatalf("Intel-Sample evals %d not below Naive %d", res.TotalEvaluations, naive.TotalEvaluations)
	}
}

func TestRunIntelSampleSatisfactionRate(t *testing.T) {
	rng := stats.NewRNG(603)
	const runs = 60
	ok := 0
	for i := 0; i < runs; i++ {
		in, labels, truth := testInstance(rng.Split())
		res, err := RunIntelSample(in, RunOptions{RNG: rng.Split()})
		if err != nil {
			t.Fatal(err)
		}
		m := ComputeMetrics(res.Output, truth, totalCorrect(labels))
		pOK, rOK := m.Satisfies(in.Cons)
		if pOK && rOK {
			ok++
		}
	}
	if frac := float64(ok) / runs; frac < 0.75 {
		t.Fatalf("constraints satisfied in only %v of runs", frac)
	}
}

func TestRunIntelSampleAdaptive(t *testing.T) {
	rng := stats.NewRNG(605)
	in, labels, truth := testInstance(rng)
	res, err := RunIntelSample(in, RunOptions{RNG: rng.Split(), Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SampledTuples == 0 {
		t.Fatal("adaptive run sampled nothing")
	}
	m := ComputeMetrics(res.Output, truth, totalCorrect(labels))
	if m.Precision < 0.6 || m.Recall < 0.6 {
		t.Fatalf("adaptive metrics collapsed: %+v", m)
	}
}

func TestRunIntelSampleValidation(t *testing.T) {
	rng := stats.NewRNG(607)
	in, _, _ := testInstance(rng)
	if _, err := RunIntelSample(in, RunOptions{}); err == nil {
		t.Fatal("missing RNG accepted")
	}
	bad := in
	bad.Groups = nil
	if _, err := RunIntelSample(bad, RunOptions{RNG: rng}); err == nil {
		t.Fatal("empty instance accepted")
	}
	bad = in
	bad.UDF = nil
	if _, err := RunIntelSample(bad, RunOptions{RNG: rng}); err == nil {
		t.Fatal("nil UDF accepted")
	}
	bad = in
	bad.Cons.Alpha = 7
	if _, err := RunIntelSample(bad, RunOptions{RNG: rng}); err == nil {
		t.Fatal("invalid constraints accepted")
	}
}

func TestRunNaive(t *testing.T) {
	rng := stats.NewRNG(609)
	in, labels, truth := testInstance(rng)
	res, err := RunNaive(in, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	wantK := int(0.8*float64(in.TotalRows())) + 1
	if res.TotalEvaluations < wantK-1 || res.TotalEvaluations > wantK+1 {
		t.Fatalf("naive evaluated %d, want ≈%d", res.TotalEvaluations, wantK)
	}
	m := ComputeMetrics(res.Output, truth, totalCorrect(labels))
	if m.Precision != 1 {
		t.Fatalf("naive precision %v, must be exactly 1", m.Precision)
	}
	if m.Recall < 0.74 || m.Recall > 0.86 {
		t.Fatalf("naive recall %v, want ≈0.8", m.Recall)
	}
}

func TestRunPerfectSelectivities(t *testing.T) {
	rng := stats.NewRNG(611)
	in, labels, truth := testInstance(rng)
	res, err := RunPerfectSelectivities(in, truth, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if res.SampledTuples != 0 {
		t.Fatal("Optimal baseline must not sample")
	}
	m := ComputeMetrics(res.Output, truth, totalCorrect(labels))
	if m.Precision < 0.7 || m.Recall < 0.7 {
		t.Fatalf("optimal metrics collapsed: %+v", m)
	}
	// With free perfect knowledge, Optimal should beat Intel-Sample on
	// total evaluations (which pays for sampling).
	intel, err := RunIntelSample(in, RunOptions{RNG: rng.Split()})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvaluations > intel.TotalEvaluations+200 {
		t.Fatalf("Optimal evals %d much worse than Intel-Sample %d", res.TotalEvaluations, intel.TotalEvaluations)
	}
}

func TestPerfectInfoWrapper(t *testing.T) {
	groups := []PerfectInfoGroup{
		{Key: "1", Correct: 900, Wrong: 100},
		{Key: "2", Correct: 500, Wrong: 500},
		{Key: "3", Correct: 100, Wrong: 900},
	}
	cons := Constraints{Alpha: 0.9, Beta: 0.9, Rho: 0.9}
	plan, err := SolvePerfectInformation(groups, cons, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost != 5000 {
		t.Fatalf("cost %v want 5000", plan.Cost)
	}
	s := plan.Strategy()
	if s.R[0] != 1 || s.E[0] != 0 {
		t.Fatalf("group 1 should be retrieve-only: R=%v E=%v", s.R[0], s.E[0])
	}
	if s.R[1] != 1 || s.E[1] != 1 {
		t.Fatalf("group 2 should be evaluated: R=%v E=%v", s.R[1], s.E[1])
	}
	if s.R[2] != 0 {
		t.Fatalf("group 3 should be discarded: R=%v", s.R[2])
	}
	greedy, err := GreedyPerfectInformation(groups, cons, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Cost < plan.Cost-1e-9 {
		t.Fatalf("greedy cost %v beats exact %v", greedy.Cost, plan.Cost)
	}
	if _, err := SolvePerfectInformation(nil, cons, DefaultCost); err == nil {
		t.Fatal("empty groups accepted")
	}
	if _, err := SolvePerfectInformation([]PerfectInfoGroup{{Correct: -1}}, cons, DefaultCost); err == nil {
		t.Fatal("negative counts accepted")
	}
}
