package core

import (
	"math"

	"repro/internal/solver"
	"repro/internal/stats"
)

// This file implements Section 3.3 (estimated selectivities) and
// Section 4.2 (the sampling-aware variant). The optimizer only has a
// selectivity estimate per group — a random variable Sₐ with mean sₐ and
// variance vₐ — so the Hoeffding margins of Section 3.2 are replaced by
// Chebyshev bounds with deviation terms that depend on the decision
// variables themselves, making the problem convex instead of linear:
//
//	minimize  Σ wₐ (o_r·Rₐ + o_e·Eₐ)
//	s.t.      Gp(R,E) ≥ X(R,E)   and   Gr(R) ≥ Y(R)
//
// where Gp/Gr are the expected precision/recall LHS and X/Y are e_ρ times
// an upper bound on the LHS standard deviation. Two bounds are provided:
//
//   - Unknown correlations (Convex Prog. 3.10): Dev(Σ) ≤ Σ Dev, giving the
//     separable bound e_ρ·Σ (√vₐ·wₐ·(Rₐ−αEₐ) + 0.5·√wₐ).
//   - Independent groups (Convex Prog. 3.11): variances add, giving
//     e_ρ·sqrt(Σ wₐ²vₐ(Rₐ−αEₐ)² + 0.25·wₐ).
//
// The sampling variant (Convex Prog. 4.1) additionally returns the already
// evaluated F⁺ₐ tuples and plans only over the remaining wₐ = tₐ−Fₐ.
//
// Solution method: the first two constraints match Linear-Prog. 3.4 with
// thresholds (X, Y), so we iterate BIGREEDY-LP against relinearized
// thresholds (a fixed-point scheme) — every iterate is verified against the
// true convex constraint and the cheapest verified strategy wins. A
// projected-gradient solver over the exact convex program is available as
// an independent cross-check (PlanEstimatedGradient).

// CorrelationModel selects which deviation bound the planner uses.
type CorrelationModel int

const (
	// IndependentGroups assumes the selectivity estimates of different
	// groups are independent (true for per-group sampling); variances add.
	IndependentGroups CorrelationModel = iota
	// UnknownCorrelations assumes nothing: standard deviations add. More
	// conservative, never cheaper than IndependentGroups.
	UnknownCorrelations
)

func (m CorrelationModel) String() string {
	if m == UnknownCorrelations {
		return "unknown-correlations"
	}
	return "independent-groups"
}

// estProblem carries the precomputed constants of one estimated-selectivity
// planning problem.
type estProblem struct {
	groups []GroupInfo
	cons   Constraints
	cost   CostModel
	model  CorrelationModel
	erho   float64

	// Derived: per-group remaining sizes and constants.
	w          []float64 // wₐ = tₐ − Fₐ
	sumPos     float64   // Σ F⁺ₐ
	sumWS      float64   // Σ wₐ·sₐ
	precConst  float64   // Σ F⁺ₐ·(1−α): constant part of the precision LHS
	recallRHS  float64   // β·Σ(F⁺ₐ + wₐsₐ) − Σ F⁺ₐ: constant part of recall RHS
	sqrtVTimes []float64 // √vₐ·wₐ (unknown-correlations coefficients)
	v2         []float64 // wₐ²·vₐ (independent-groups coefficients)
}

func newEstProblem(groups []GroupInfo, cons Constraints, cost CostModel, model CorrelationModel) *estProblem {
	p := &estProblem{
		groups: groups, cons: cons, cost: cost, model: model,
		erho:       stats.ChebyshevMultiplier(cons.Rho),
		w:          make([]float64, len(groups)),
		sqrtVTimes: make([]float64, len(groups)),
		v2:         make([]float64, len(groups)),
	}
	for i, g := range groups {
		w := float64(g.Remaining())
		p.w[i] = w
		p.sumPos += float64(g.SampledPositive)
		p.sumWS += w * g.Selectivity
		p.sqrtVTimes[i] = math.Sqrt(g.Variance) * w
		p.v2[i] = w * w * g.Variance
	}
	p.precConst = p.sumPos * (1 - cons.Alpha)
	p.recallRHS = cons.Beta*(p.sumPos+p.sumWS) - p.sumPos
	return p
}

// devPrecision returns the deviation bound X(R,E) for the precision
// constraint.
func (p *estProblem) devPrecision(s Strategy) float64 {
	switch p.model {
	case UnknownCorrelations:
		total := 0.0
		for i := range p.groups {
			total += p.sqrtVTimes[i]*(s.R[i]-p.cons.Alpha*s.E[i]) + 0.5*math.Sqrt(p.w[i])
		}
		return p.erho * total
	default:
		total := 0.0
		for i := range p.groups {
			d := s.R[i] - p.cons.Alpha*s.E[i]
			total += p.v2[i]*d*d + 0.25*p.w[i]
		}
		return p.erho * math.Sqrt(total)
	}
}

// devRecall returns the deviation bound Y(R) for the recall constraint.
func (p *estProblem) devRecall(s Strategy) float64 {
	switch p.model {
	case UnknownCorrelations:
		total := 0.0
		for i := range p.groups {
			total += p.sqrtVTimes[i]*math.Abs(s.R[i]-p.cons.Beta) + 0.5*math.Sqrt(p.w[i])
		}
		return p.erho * total
	default:
		total := 0.0
		for i := range p.groups {
			d := s.R[i] - p.cons.Beta
			total += p.v2[i]*d*d + 0.25*p.w[i]
		}
		return p.erho * math.Sqrt(total)
	}
}

// devPrecisionMax / devRecallMax bound the deviations over the whole
// feasible box, providing safe starting thresholds.
func (p *estProblem) devPrecisionMax() float64 {
	s := FullEvaluation(len(p.groups))
	for i := range s.E {
		s.E[i] = 0 // (R−αE) is largest at R=1, E=0
	}
	return p.devPrecision(s)
}

func (p *estProblem) devRecallMax() float64 {
	s := NewStrategy(len(p.groups))
	worst := p.cons.Beta
	if 1-p.cons.Beta > worst {
		worst = 1 - p.cons.Beta
	}
	for i := range s.R {
		s.R[i] = p.cons.Beta + worst // |R−β| = worst (may exceed 1; fine for a bound)
	}
	return p.devRecall(s)
}

// lhs returns the expected precision and recall LHS (including sampled
// constants) for the strategy.
func (p *estProblem) lhs(s Strategy) (prec, recall float64) {
	gp, gr := perfectSelectivityLHS(p.groups, s, p.cons.Alpha, nil)
	return gp + p.precConst, gr - p.recallRHS
}

// feasible verifies the strategy against the exact convex constraints,
// honoring deterministic caps.
func (p *estProblem) feasible(s Strategy) bool {
	prec, recall := p.lhs(s)
	recallOK := s.RecallCapped || almostGE(recall, p.devRecall(s))
	precOK := s.PrecisionCapped || almostGE(prec, p.devPrecision(s))
	return recallOK && precOK
}

// solveFixedPoint iterates BIGREEDY-LP against relinearized thresholds.
func (p *estProblem) solveFixedPoint() Strategy {
	x := p.devPrecisionMax()
	y := p.devRecallMax()
	var best Strategy
	bestCost := math.Inf(1)
	const maxIter = 40
	for iter := 0; iter < maxIter; iter++ {
		// Thresholds for the greedy LP: precision LHS must reach x minus the
		// sampled constant; recall LHS must reach y plus the recall RHS.
		recallTarget := y + p.recallRHS
		precTarget := x - p.precConst
		s := biGreedy(p.groups, p.cons.Alpha, recallTarget, precTarget, nil)
		if p.feasible(s) {
			if c := s.ExpectedCost(p.groups, p.cost); c < bestCost {
				bestCost = c
				best = s.Clone()
			}
		}
		nx, ny := p.devPrecision(s), p.devRecall(s)
		if math.Abs(nx-x)+math.Abs(ny-y) < 1e-9*(1+x+y) {
			break
		}
		// Damped update to avoid oscillation between under- and
		// over-tightened thresholds.
		x = 0.5*x + 0.5*nx
		y = 0.5*y + 0.5*ny
	}
	if math.IsInf(bestCost, 1) {
		// No iterate verified (extreme variances): fall back to the exact
		// query, which satisfies everything deterministically.
		return FullEvaluation(len(p.groups))
	}
	return best
}

// PlanEstimated solves the estimated-selectivity problem (Problem 3) under
// the chosen correlation model, returning a strategy whose precision and
// recall constraints each hold with probability at least ρ.
func PlanEstimated(groups []GroupInfo, cons Constraints, cost CostModel, model CorrelationModel) (Strategy, error) {
	if err := validatePlanInput(groups, cons, cost); err != nil {
		return Strategy{}, err
	}
	p := newEstProblem(groups, cons, cost, model)
	return p.solveFixedPoint(), nil
}

// PlanWithSamples solves Convex Prog. 4.1: the groups carry sampling
// outcomes (Fₐ, F⁺ₐ) and Beta-posterior estimates; sampled matching tuples
// are part of the output for free, and the plan covers only the remaining
// tuples. This is the planning step of the Intel-Sample algorithm.
func PlanWithSamples(groups []GroupInfo, cons Constraints, cost CostModel) (Strategy, error) {
	return PlanEstimated(groups, cons, cost, IndependentGroups)
}

// CheckEstimatedFeasible verifies a strategy against the exact convex
// constraints of the estimated-selectivity problem.
func CheckEstimatedFeasible(groups []GroupInfo, s Strategy, cons Constraints, model CorrelationModel) bool {
	p := newEstProblem(groups, cons, CostModel{}, model)
	return p.feasible(s)
}

// PlanEstimatedGradient solves the same convex program with the
// projected-gradient solver instead of the fixed-point scheme. It exists
// as an independent cross-check and for the solver ablation bench; the two
// planners should land within a few percent of each other.
func PlanEstimatedGradient(groups []GroupInfo, cons Constraints, cost CostModel, model CorrelationModel) (Strategy, error) {
	if err := validatePlanInput(groups, cons, cost); err != nil {
		return Strategy{}, err
	}
	p := newEstProblem(groups, cons, cost, model)
	m := len(groups)

	toStrategy := func(x []float64) Strategy {
		s := NewStrategy(m)
		for i := 0; i < m; i++ {
			s.R[i], s.E[i] = x[2*i], x[2*i+1]
		}
		return s
	}

	scale := float64(TotalSize(groups))
	if scale < 1 {
		scale = 1
	}
	prob := solver.Problem{
		Dim: 2 * m,
		Obj: func(x []float64) float64 {
			total := 0.0
			for i := 0; i < m; i++ {
				total += p.w[i] * (cost.Retrieve*x[2*i] + cost.Evaluate*x[2*i+1])
			}
			return total / scale
		},
		ObjGrad: func(x, out []float64) {
			for i := 0; i < m; i++ {
				out[2*i] = p.w[i] * cost.Retrieve / scale
				out[2*i+1] = p.w[i] * cost.Evaluate / scale
			}
		},
		Cons: []solver.Constraint{
			{F: func(x []float64) float64 {
				s := toStrategy(x)
				prec, _ := p.lhs(s)
				return (p.devPrecision(s) - prec) / scale
			}},
			{F: func(x []float64) float64 {
				s := toStrategy(x)
				_, recall := p.lhs(s)
				return (p.devRecall(s) - recall) / scale
			}},
		},
		Project: solver.ProjectStrategy,
	}
	// Start from the fixed-point solution so the gradient solver refines
	// rather than searches; fall back to full evaluation on solver failure.
	seed := p.solveFixedPoint()
	x0 := make([]float64, 2*m)
	for i := 0; i < m; i++ {
		x0[2*i], x0[2*i+1] = seed.R[i], seed.E[i]
	}
	res, err := solver.Solve(prob, x0, solver.Options{Tol: 1e-7})
	if err != nil {
		return seed, nil
	}
	s := toStrategy(res.X)
	s.clamp()
	if !p.feasible(s) {
		return seed, nil
	}
	// Keep whichever is cheaper; both are verified feasible.
	if s.ExpectedCost(groups, cost) <= seed.ExpectedCost(groups, cost) {
		return s, nil
	}
	return seed, nil
}
