package core

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestConstantAllocator(t *testing.T) {
	a := ConstantAllocator{C: 50}
	got := a.Allocate([]int{100, 30, 0})
	want := []int{50, 30, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alloc %v want %v", got, want)
		}
	}
	if a.String() != "constant(50)" {
		t.Fatalf("name %s", a.String())
	}
}

func TestProportionalAllocator(t *testing.T) {
	a := ProportionalAllocator{Fraction: 0.05}
	got := a.Allocate([]int{1000, 10})
	if got[0] != 50 {
		t.Fatalf("alloc %v", got)
	}
	if got[1] != 1 { // round(0.5) = 1, capped at 10
		t.Fatalf("alloc %v", got)
	}
}

func TestTwoThirdPowerAllocator(t *testing.T) {
	sizes := []int{1000, 2000, 3000}
	n := 6000.0
	a := TwoThirdPowerAllocator{Num: 2.5}
	got := a.Allocate(sizes)
	for i, sz := range sizes {
		want := int(math.Round(2.5 * float64(sz) * math.Pow(n, -1.0/3.0)))
		if got[i] != want {
			t.Fatalf("group %d: alloc %d want %d", i, got[i], want)
		}
	}
	// Total sampling grows like n^(2/3).
	small := TwoThirdPowerAllocator{Num: 1}.Allocate([]int{1000})
	big := TwoThirdPowerAllocator{Num: 1}.Allocate([]int{8000})
	ratio := float64(big[0]) / float64(small[0])
	if math.Abs(ratio-4) > 0.3 { // (8000/1000)^(2/3) = 4
		t.Fatalf("scaling ratio %v, want ≈4", ratio)
	}
	if a.Allocate(nil) != nil {
		// empty allocation allowed
		t.Log("empty sizes handled")
	}
}

func TestSamplerTopUpNoDuplicates(t *testing.T) {
	rng := stats.NewRNG(501)
	groups, _, truth := syntheticGroups(rng, []int{100, 50}, []float64{0.6, 0.3})
	meter := NewMeter(UDFFunc(truth))
	s := NewSampler(groups, meter, rng.Split())
	if _, err := s.TopUp([]int{10, 5}); err != nil {
		t.Fatal(err)
	}
	if s.TotalSampled() != 15 || meter.Calls() != 15 {
		t.Fatalf("sampled %d calls %d", s.TotalSampled(), meter.Calls())
	}
	// Top up further: only the delta is evaluated.
	if _, err := s.TopUp([]int{30, 5}); err != nil {
		t.Fatal(err)
	}
	if s.TotalSampled() != 35 || meter.Calls() != 35 {
		t.Fatalf("after top-up: sampled %d calls %d", s.TotalSampled(), meter.Calls())
	}
	// Lowering targets is a no-op.
	if _, err := s.TopUp([]int{1, 1}); err != nil {
		t.Fatal(err)
	}
	if s.TotalSampled() != 35 {
		t.Fatalf("lowering target changed samples: %d", s.TotalSampled())
	}
	// Over-asking caps at group size.
	if _, err := s.TopUp([]int{1000, 1000}); err != nil {
		t.Fatal(err)
	}
	if s.TotalSampled() != 150 {
		t.Fatalf("over-ask sampled %d, want 150", s.TotalSampled())
	}
	// All sampled rows are distinct and within their groups.
	for i, o := range s.Outcomes() {
		inGroup := map[int]bool{}
		for _, r := range groups[i].Rows {
			inGroup[r] = true
		}
		for row := range o.Results {
			if !inGroup[row] {
				t.Fatalf("sampled row %d not in group %d", row, i)
			}
		}
	}
}

func TestSamplerTargetsMismatch(t *testing.T) {
	rng := stats.NewRNG(503)
	groups, _, truth := syntheticGroups(rng, []int{10}, []float64{0.5})
	s := NewSampler(groups, UDFFunc(truth), rng)
	if _, err := s.TopUp([]int{1, 2}); err == nil {
		t.Fatal("mismatched targets accepted")
	}
}

func TestSamplerInfosMatchPosterior(t *testing.T) {
	rng := stats.NewRNG(505)
	groups, _, truth := syntheticGroups(rng, []int{400}, []float64{0.75})
	s := NewSampler(groups, UDFFunc(truth), rng.Split())
	if _, err := s.TopUp([]int{100}); err != nil {
		t.Fatal(err)
	}
	infos := s.Infos()
	o := s.Outcomes()[0]
	want := GroupInfoFromSample(400, 100, o.Positives)
	if infos[0] != want {
		t.Fatalf("info %+v want %+v", infos[0], want)
	}
	// The estimate should be near the true selectivity.
	if math.Abs(infos[0].Selectivity-0.75) > 0.15 {
		t.Fatalf("estimate %v far from 0.75", infos[0].Selectivity)
	}
}

func TestAdaptiveTwoThirdPower(t *testing.T) {
	rng := stats.NewRNG(507)
	groups, _, truth := syntheticGroups(rng, []int{2000, 2000, 2000}, []float64{0.9, 0.5, 0.1})
	meter := NewMeter(UDFFunc(truth))
	s := NewSampler(groups, meter, rng.Split())
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	num, err := AdaptiveTwoThirdPower(s, cons, DefaultCost, AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if num <= 0 || num > 20 {
		t.Fatalf("num %v out of range", num)
	}
	// Sampling must have happened, but far less than evaluating everything.
	if s.TotalSampled() == 0 {
		t.Fatal("adaptive scheme sampled nothing")
	}
	if s.TotalSampled() > 3000 {
		t.Fatalf("adaptive scheme sampled %d of 6000 tuples", s.TotalSampled())
	}
	// The sampler state must be planable afterwards.
	if _, err := PlanWithSamples(s.Infos(), cons, DefaultCost); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorStrings(t *testing.T) {
	if (ProportionalAllocator{Fraction: 0.05}).String() != "proportional(0.050)" {
		t.Fatal("proportional name")
	}
	if (TwoThirdPowerAllocator{Num: 2.5}).String() != "two-third-power(2.50)" {
		t.Fatal("two-third-power name")
	}
}
