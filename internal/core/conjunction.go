package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/exec"
	"repro/internal/stats"
)

// Generalized conjunctions: N expensive predicates ANDed together. The
// paper's five-action planner (Section 5) covers exactly two predicates and
// lives in twopred.go; this file provides the N-ary substrate the planner
// layer composes for every other conjunction shape:
//
//   - SampleConjunctionParallelCtx — fused sampling of all N predicates
//     over a few rows per group (sampling never short-circuits: joint
//     statistics need every outcome);
//   - OrderPredicates — the classic greedy cheapest-first ordering by
//     cost/(1−selectivity), using the sampled selectivity estimates;
//   - ExecuteConjunctionWavesParallelCtx — short-circuit waves over the
//     ordered predicates, where each wave evaluates only the survivors of
//     the previous one and rows resolved during sampling are free.
//
// Everything is plan/evaluate split like the rest of the package: row
// selection and ordering are sequential, UDF calls fan out across workers,
// and outcomes merge back in plan order — so for a fixed seed the results
// are bit-for-bit identical at every parallelism level.

// ConjSample records, for one group, the sampled rows' outcomes under every
// predicate.
type ConjSample struct {
	// Results maps sampled row → per-predicate outcomes (indexed like the
	// udfs slice passed to SampleConjunctionParallelCtx).
	Results map[int][]bool
	// Pos counts rows passing each predicate; PosAll counts rows passing
	// all of them.
	Pos    []int
	PosAll int
}

// SampleConjunctionParallelCtx evaluates every predicate on targets[i]
// random tuples of each group, fusing all N×rows evaluations into a single
// pooled wave. It returns the per-group samples plus pooled per-predicate
// selectivity estimates (Beta-posterior means over all sampled rows) for
// greedy ordering. The sample rows are drawn from the RNG up front, so the
// sampled sets are identical at any parallelism level; a cancel returns
// ctx.Err() with no partial samples.
func SampleConjunctionParallelCtx(ctx context.Context, groups []Group, targets []int, udfs []UDF, rng *stats.RNG, parallelism int) ([]ConjSample, []float64, error) {
	if len(targets) != len(groups) {
		return nil, nil, fmt.Errorf("core: %d targets for %d groups", len(targets), len(groups))
	}
	if len(udfs) == 0 {
		return nil, nil, fmt.Errorf("core: conjunction without predicates")
	}
	samples := make([]ConjSample, len(groups))
	// Plan: draw every group's sample rows in order.
	var work, groupOf []int
	for i, g := range groups {
		samples[i] = ConjSample{Results: make(map[int][]bool), Pos: make([]int, len(udfs))}
		want := targets[i]
		if want > len(g.Rows) {
			want = len(g.Rows)
		}
		for _, idx := range rng.SampleWithoutReplacement(len(g.Rows), want) {
			work = append(work, g.Rows[idx])
			groupOf = append(groupOf, i)
		}
	}
	// Evaluate: all predicates over all sampled rows as one pooled batch
	// (predicate-major), so wide pools amortize N sequential barriers into
	// one. Resilient UDFs instead run one gated batch per predicate — the
	// breaker needs sequential fold points — and any row with a failed
	// predicate is dropped from the sample entirely (joint statistics need
	// every outcome of a row, so a partial row is no evidence).
	n := len(work)
	verdicts := make([][]bool, len(udfs))
	failedAny := make([]bool, n)
	if anyResilient(udfs...) {
		pool := exec.NewPool(parallelism)
		for j := range udfs {
			vj, fj, err := EvalRowsResilient(ctx, pool, work, udfs[j])
			if err != nil {
				return nil, nil, err
			}
			verdicts[j] = vj
			for k := range fj {
				if fj[k] {
					failedAny[k] = true
				}
			}
		}
		if n == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
	} else {
		for j := range verdicts {
			verdicts[j] = make([]bool, n)
		}
		err := exec.NewPool(parallelism).ForEachCtx(ctx, n*len(udfs), func(i int) {
			j, k := i/n, i%n
			verdicts[j][k] = udfs[j].Eval(work[k])
		})
		if n == 0 {
			// ForEachCtx over zero items never checks ctx; normalize.
			err = ctx.Err()
		}
		if err != nil {
			return nil, nil, err
		}
	}
	kept := 0
	for k, row := range work {
		if failedAny[k] {
			continue
		}
		kept++
		i := groupOf[k]
		outs := make([]bool, len(udfs))
		all := true
		for j := range udfs {
			outs[j] = verdicts[j][k]
			if outs[j] {
				samples[i].Pos[j]++
			} else {
				all = false
			}
		}
		samples[i].Results[row] = outs
		if all {
			samples[i].PosAll++
		}
	}
	sels := make([]float64, len(udfs))
	for j := range udfs {
		pos := 0
		for i := range samples {
			pos += samples[i].Pos[j]
		}
		sels[j] = stats.NewBetaPosterior(pos, kept-pos).Mean()
	}
	return samples, sels, nil
}

// OrderPredicates returns the greedy cheapest-first evaluation order for a
// conjunction: ascending by the classic rank cost/(1−selectivity) — the
// expected price a predicate pays per row it eliminates — with ties broken
// by original position. A predicate that (by its sample) rejects nothing
// ranks last: evaluating it early could never short-circuit anything.
func OrderPredicates(costs, sels []float64) ([]int, error) {
	if len(costs) != len(sels) {
		return nil, fmt.Errorf("core: %d costs for %d selectivities", len(costs), len(sels))
	}
	rank := make([]float64, len(costs))
	for i := range costs {
		reject := 1 - sels[i]
		if reject <= 0 {
			rank[i] = math.Inf(1)
			continue
		}
		rank[i] = costs[i] / reject
	}
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rank[order[a]] < rank[order[b]] })
	return order, nil
}

// ConjWavesResult is the outcome of a short-circuit wave execution.
type ConjWavesResult struct {
	// Output holds the rows passing every predicate, in input row order.
	Output []int
	// Retrieved counts rows fetched during the waves (rows fully resolved
	// by sampling are free; a row rejected by a known outcome before its
	// first unknown predicate is never fetched).
	Retrieved int
	// Evaluated counts the UDF calls issued per predicate during the waves
	// (indexed like udfs; excludes sampling).
	Evaluated []int
}

// ConjWaveRunner executes short-circuit waves over row batches: each Run
// call pushes one batch of rows through every predicate (in the configured
// order) and returns the batch's survivors in input order, while the
// per-predicate evaluation counts and the retrieved-row total accumulate
// across batches. Batching does not change any outcome: a wave evaluates a
// predicate on exactly the rows that survived the previous predicates, and
// rows never interact across waves, so splitting the input into batches
// yields the same calls, the same verdicts and the same survivors as one
// monolithic run — the engine's batch executor relies on this. Not safe for
// concurrent Run calls; parallelism lives inside a wave's pool fan-out.
type ConjWaveRunner struct {
	order     []int
	known     []map[int]bool
	udfs      []UDF
	pool      *exec.Pool
	retrieved map[int]bool
	res       ConjWavesResult
}

// NewConjWaveRunner validates the predicate order and returns a runner.
// known[j], when non-nil, maps row → already-paid outcome of predicate j
// (e.g. from sampling): known rows are resolved without evaluation.
func NewConjWaveRunner(order []int, known []map[int]bool, udfs []UDF, parallelism int) (*ConjWaveRunner, error) {
	if len(order) != len(udfs) {
		return nil, fmt.Errorf("core: order covers %d of %d predicates", len(order), len(udfs))
	}
	if known != nil && len(known) != len(udfs) {
		return nil, fmt.Errorf("core: %d known maps for %d predicates", len(known), len(udfs))
	}
	seen := make([]bool, len(udfs))
	for _, j := range order {
		if j < 0 || j >= len(udfs) || seen[j] {
			return nil, fmt.Errorf("core: invalid predicate order %v", order)
		}
		seen[j] = true
	}
	return &ConjWaveRunner{
		order:     order,
		known:     known,
		udfs:      udfs,
		pool:      exec.NewPool(parallelism),
		retrieved: make(map[int]bool),
		res:       ConjWavesResult{Evaluated: make([]int, len(udfs))},
	}, nil
}

// Run pushes one batch of rows through the waves and returns its survivors
// in input order. A cancel returns ctx.Err() with the accumulated counts
// untouched by the aborted batch's partial work beyond calls already paid.
func (w *ConjWaveRunner) Run(ctx context.Context, rows []int) ([]int, error) {
	survivors := rows
	for _, j := range w.order {
		var kn map[int]bool
		if w.known != nil {
			kn = w.known[j]
		}
		// Plan the wave: resolve known rows, emit slots for the rest so the
		// merge below rebuilds the survivor list in input order.
		type slot struct {
			row     int
			evalIdx int // -1: known pass, no evaluation needed
		}
		var slots []slot
		var work []int
		for _, row := range survivors {
			if v, ok := kn[row]; ok {
				if v {
					slots = append(slots, slot{row: row, evalIdx: -1})
				}
				continue
			}
			slots = append(slots, slot{row: row, evalIdx: len(work)})
			work = append(work, row)
		}
		// Failed resilient evaluations carry verdict false, so failed rows
		// simply do not survive the wave.
		verdicts, _, err := EvalRowsResilient(ctx, w.pool, work, w.udfs[j])
		if err != nil {
			return nil, err
		}
		w.res.Evaluated[j] += len(work)
		for _, row := range work {
			if !w.retrieved[row] {
				w.retrieved[row] = true
				w.res.Retrieved++
			}
		}
		next := make([]int, 0, len(slots))
		for _, sl := range slots {
			if sl.evalIdx < 0 || verdicts[sl.evalIdx] {
				next = append(next, sl.row)
			}
		}
		survivors = next
	}
	return survivors, nil
}

// Result returns the counts accumulated over every Run so far. Output holds
// the survivors of all batches in push order.
func (w *ConjWaveRunner) Result() ConjWavesResult { return w.res }

// ExecuteConjunctionWavesParallelCtx runs a conjunction over rows as
// short-circuit waves: predicates are visited in the given order, each wave
// evaluates its predicate only on the survivors of the previous waves, and
// survivors of the final wave are the output. known[j], when non-nil, maps
// row → already-paid outcome of predicate j (e.g. from sampling): known
// rows are resolved without evaluation. Each wave fans out across up to
// `parallelism` workers; survivor lists are maintained in input order, so
// output and counts are identical at every parallelism level. A cancel
// returns ctx.Err() and an empty result. (One-shot wrapper over
// ConjWaveRunner; the batch executor drives the runner directly.)
func ExecuteConjunctionWavesParallelCtx(ctx context.Context, rows []int, order []int, known []map[int]bool, udfs []UDF, parallelism int) (ConjWavesResult, error) {
	w, err := NewConjWaveRunner(order, known, udfs, parallelism)
	if err != nil {
		return ConjWavesResult{}, err
	}
	out, err := w.Run(ctx, rows)
	if err != nil {
		return ConjWavesResult{}, err
	}
	res := w.Result()
	res.Output = out
	return res, nil
}
