package core

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// This file implements Section 3.2: the Hoeffding-tightened linear program
// (Linear-Prog. 3.4) and the O(|A| log |A|) BIGREEDY-LP algorithm that
// solves it without a general LP solver.
//
// The LP over variables 0 ≤ Eₐ ≤ Rₐ ≤ 1:
//
//	minimize  Σ tₐ·(o_r·Rₐ + o_e·Eₐ)
//	s.t.      Σ tₐsₐ(1−α)Rₐ + tₐ(1−sₐ)α(Eₐ−Rₐ) ≥ h^p   (precision)
//	          Σ tₐsₐRₐ ≥ β·Σ tₐsₐ + h^r                  (recall)
//
// BIGREEDY-LP raises the Rₐ in decreasing-selectivity order until the
// recall constraint holds, then raises the Eₐ in increasing-selectivity
// order (among retrieved groups) until the precision constraint holds. The
// appendix proves this greedy is optimal for the LP.

// PlanPerfectSelectivities solves the perfect-selectivity problem
// (Problem 2): given exact group selectivities, return the minimum-cost
// strategy whose precision and recall constraints each hold with
// probability at least ρ.
//
// If the Hoeffding margins are too large for the fractional constraints to
// be satisfiable, the planner falls back to the nearest deterministic
// guarantee: retrieving everything makes recall exactly 1 and evaluating
// everything retrieved makes precision exactly 1. The returned strategy's
// RecallCapped/PrecisionCapped flags record when that happened.
func PlanPerfectSelectivities(groups []GroupInfo, cons Constraints, cost CostModel) (Strategy, error) {
	if err := validatePlanInput(groups, cons, cost); err != nil {
		return Strategy{}, err
	}
	n := float64(TotalSize(groups))
	hp := stats.PrecisionMargin(n, cons.Rho)
	hr := stats.RecallMargin(n, cons.Beta, cons.Rho)
	recallTarget := cons.Beta*ExpectedCorrect(groups) + hr
	return biGreedy(groups, cons.Alpha, recallTarget, hp, nil), nil
}

// PlanBrowsing solves the browsing special case (Section 2): 100%
// precision is required, so every retrieved tuple must be evaluated; the
// planner minimizes cost subject to the recall constraint only.
func PlanBrowsing(groups []GroupInfo, beta, rho float64, cost CostModel) (Strategy, error) {
	cons := Constraints{Alpha: 1, Beta: beta, Rho: rho}
	if err := validatePlanInput(groups, cons, cost); err != nil {
		return Strategy{}, err
	}
	n := float64(TotalSize(groups))
	hr := stats.RecallMargin(n, beta, rho)
	recallTarget := beta*ExpectedCorrect(groups) + hr
	s := biGreedy(groups, 1, recallTarget, 0, nil)
	// α = 1 forces full evaluation of everything retrieved.
	copy(s.E, s.R)
	s.PrecisionCapped = true
	return s, nil
}

func validatePlanInput(groups []GroupInfo, cons Constraints, cost CostModel) error {
	if len(groups) == 0 {
		return fmt.Errorf("core: no groups to plan over")
	}
	if err := cons.Validate(); err != nil {
		return err
	}
	if err := cost.Validate(); err != nil {
		return err
	}
	for i, g := range groups {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("core: group %d: %w", i, err)
		}
	}
	return nil
}

// weights optionally reweights each group's recall/precision contribution
// (used by the select-then-join extension, where a group's output tuples
// count with their join multiplicity). nil means weight 1 everywhere.
type weights []float64

func (w weights) at(i int) float64 {
	if w == nil {
		return 1
	}
	return w[i]
}

// biGreedy runs BIGREEDY-LP over the remaining (unsampled) tuples of each
// group.
//
// recallTarget is the required value of Σ cₐ·wᵢ·sᵢ·Rᵢ where cₐ is the
// per-group weight (1 by default) and wᵢ = remaining size; precTarget is
// the required value of the precision LHS
// Σ cₐ·wᵢ·[sᵢ(1−α)Rᵢ − (1−sᵢ)α(Rᵢ−Eᵢ)].
func biGreedy(groups []GroupInfo, alpha float64, recallTarget, precTarget float64, wt weights) Strategy {
	s := NewStrategy(len(groups))

	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	// Recall phase ordering: by weighted selectivity, descending — the
	// cheapest recall per unit retrieval cost first.
	sort.SliceStable(order, func(x, y int) bool {
		i, j := order[x], order[y]
		return wt.at(i)*groups[i].Selectivity > wt.at(j)*groups[j].Selectivity
	})

	// Phase 1: raise R in decreasing selectivity order.
	acc := 0.0
	for _, i := range order {
		if acc >= recallTarget {
			break
		}
		g := groups[i]
		gain := wt.at(i) * float64(g.Remaining()) * g.Selectivity
		if gain <= 0 {
			// Zero-selectivity or empty groups cannot add recall.
			continue
		}
		if acc+gain <= recallTarget {
			s.R[i] = 1
			acc += gain
		} else {
			s.R[i] = (recallTarget - acc) / gain
			acc = recallTarget
		}
	}
	if acc < recallTarget {
		// Even retrieving everything with positive selectivity cannot meet
		// the margin-tightened target. Retrieve all tuples: recall is then
		// deterministically 1 (every correct tuple is returned or verified).
		for i := range s.R {
			s.R[i] = 1
		}
		s.RecallCapped = true
	}

	// Phase 2: raise E in increasing selectivity order among retrieved
	// groups until the precision LHS reaches precTarget.
	lhs := 0.0
	for i, g := range groups {
		w := wt.at(i) * float64(g.Remaining())
		lhs += w * s.R[i] * (g.Selectivity - alpha)
	}
	if lhs < precTarget {
		// Ordering for evaluations: ascending weighted wrongness — the
		// paper evaluates the most incorrect retrieved groups first.
		evalOrder := make([]int, len(order))
		copy(evalOrder, order)
		sort.SliceStable(evalOrder, func(x, y int) bool {
			i, j := evalOrder[x], evalOrder[y]
			return wt.at(i)*groups[i].Selectivity < wt.at(j)*groups[j].Selectivity
		})
		needed := precTarget - lhs
		for _, i := range evalOrder {
			if needed <= 0 {
				break
			}
			g := groups[i]
			if s.R[i] <= 0 {
				continue
			}
			perUnit := wt.at(i) * float64(g.Remaining()) * (1 - g.Selectivity) * alpha
			if perUnit <= 0 {
				continue
			}
			cap := perUnit * s.R[i] // raising E from 0 to R
			if cap <= needed {
				s.E[i] = s.R[i]
				needed -= cap
			} else {
				s.E[i] = needed / perUnit
				needed = 0
			}
		}
		if needed > 0 {
			// Everything retrieved is evaluated: the output contains only
			// verified tuples, so precision is deterministically 1.
			copy(s.E, s.R)
			s.PrecisionCapped = true
		}
	}
	s.clamp()
	return s
}

// perfectSelectivityLHS returns the precision and recall LHS values of
// Linear-Prog. 3.4 for the given strategy (over remaining tuples,
// optionally weighted).
func perfectSelectivityLHS(groups []GroupInfo, s Strategy, alpha float64, wt weights) (prec, recall float64) {
	for i, g := range groups {
		w := wt.at(i) * float64(g.Remaining())
		sa := g.Selectivity
		prec += w * (sa*(1-alpha)*s.R[i] - (1-sa)*alpha*(s.R[i]-s.E[i]))
		recall += w * sa * s.R[i]
	}
	return prec, recall
}

// CheckPerfectSelectivityFeasible verifies the strategy satisfies the
// margin-tightened constraints of Linear-Prog. 3.4 (or carries a
// deterministic cap that supersedes them).
func CheckPerfectSelectivityFeasible(groups []GroupInfo, s Strategy, cons Constraints) bool {
	n := float64(TotalSize(groups))
	hp := stats.PrecisionMargin(n, cons.Rho)
	hr := stats.RecallMargin(n, cons.Beta, cons.Rho)
	prec, recall := perfectSelectivityLHS(groups, s, cons.Alpha, nil)
	recallOK := s.RecallCapped || almostGE(recall, cons.Beta*ExpectedCorrect(groups)+hr)
	precOK := s.PrecisionCapped || almostGE(prec, hp)
	return recallOK && precOK
}
