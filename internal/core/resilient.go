package core

import (
	"context"
	"errors"

	"repro/internal/exec"
	"repro/internal/resilience"
)

// Resilient evaluation: the core algorithms (sampling, labeling, the
// probabilistic executor, conjunction waves) evaluate UDFs through the
// EvalRowsResilient helper below. For a plain UDF it degenerates to the
// classic pooled batch — zero overhead, nil failure flags. For a
// ResilientUDF (in practice: a Meter built with NewResilientMeter) the
// batch runs gated: per-row failure flags come back, an attached circuit
// breaker decides admissions segment by segment, and every caller excludes
// failed rows from its evidence (samples, labels, output) so a flaky UDF
// degrades a query instead of poisoning it.

// FallibleUDF is a row evaluator that can fail. Implementations perform
// their own retries (see resilience.Do); an error here is final for the
// row. A cancellation error (ctx.Err()) must be returned unwrapped so the
// meter can tell "this row failed" from "this batch is aborting".
type FallibleUDF interface {
	EvalErr(ctx context.Context, row int) (bool, error)
}

// ResilientUDF is a UDF that distinguishes failed evaluations and
// optionally carries a circuit-breaker gate. *Meter implements it when
// built with NewResilientMeter.
type ResilientUDF interface {
	UDF
	// Resilient reports whether evaluations can actually fail. Every *Meter
	// carries these methods, so batch helpers use this — not the type
	// assertion alone — to decide between the gated path and the (faster,
	// fused) legacy paths.
	Resilient() bool
	// EvalFallible evaluates the row, reporting (verdict, failed). A failed
	// row always carries verdict false.
	EvalFallible(ctx context.Context, row int) (verdict, failed bool)
	// ResolveDenied resolves a breaker-denied row without invoking: from
	// the memo or shared cache when the outcome is already known, else as a
	// failure.
	ResolveDenied(row int) (verdict, failed bool)
	// Gate returns the circuit breaker steering gated batches (nil = none).
	Gate() exec.Gate
}

// EvalRowsResilient evaluates rows under udf honoring ctx. When udf is
// resilient the batch runs gated and the second slice flags failed rows;
// otherwise it is a plain pooled batch and the failure slice is nil. On
// cancellation all outputs are withheld: (nil, nil, ctx.Err()).
func EvalRowsResilient(ctx context.Context, pool *exec.Pool, rows []int, udf UDF) ([]bool, []bool, error) {
	if r, ok := udf.(ResilientUDF); ok && r.Resilient() {
		return pool.EvalRowsGatedCtx(ctx, rows, r.Gate(), r.EvalFallible, r.ResolveDenied)
	}
	verdicts, err := pool.EvalRowsCtx(ctx, rows, udf.Eval)
	if err != nil {
		return nil, nil, err
	}
	return verdicts, nil, nil
}

// anyResilient reports whether any of the UDFs needs the gated path.
func anyResilient(udfs ...UDF) bool {
	for _, u := range udfs {
		if r, ok := u.(ResilientUDF); ok && r.Resilient() {
			return true
		}
	}
	return false
}

// NewResilientMeter wraps a fallible row evaluator with the standard meter
// guarantees — call counting, single-flight memoization, an optional
// shared cross-query cache — plus failure semantics: a row whose
// evaluation ultimately fails (after the evaluator's own retries) is
// memoized as failed for the meter's lifetime, is never charged to Calls,
// never stored in the shared cache, and is reported exactly once through
// onFailure. gate, when non-nil, is consulted by gated batch evaluation
// (EvalRowsResilient); denied rows resolve from the memo or cache when
// known and fail otherwise. Both gate and onFailure may be nil.
func NewResilientMeter(fudf FallibleUDF, cache EvalCache, gate exec.Gate, onFailure func(row int, err error)) *Meter {
	m := &Meter{fudf: fudf, memo: make(map[int]*meterEntry)}
	m.shared = cache
	m.gate = gate
	m.onFailure = onFailure
	return m
}

// Gate implements ResilientUDF.
func (m *Meter) Gate() exec.Gate { return m.gate }

// Resilient implements ResilientUDF: a plain meter (no fallible body, no
// gate) reports false so batch helpers keep the fast fused paths.
func (m *Meter) Resilient() bool { return m.fudf != nil || m.gate != nil }

// EvalFallible implements ResilientUDF: single-flight evaluation through
// the fallible path. Failure handling:
//
//   - a genuine failure memoizes the row as failed-final (every later
//     phase of the query sees the same exclusion), skips the charge and the
//     cache store, and fires onFailure once;
//   - a cancellation (the batch is aborting) forgets the row like the
//     legacy panic path — a later run of the query must re-evaluate it.
func (m *Meter) EvalFallible(ctx context.Context, row int) (bool, bool) {
	if m.fudf == nil {
		// Plain meter reached through a resilient call site: nothing can
		// fail, delegate to the classic path.
		return m.Eval(row), false
	}
	var e *meterEntry
	for {
		m.mu.Lock()
		if cur, ok := m.memo[row]; ok {
			m.mu.Unlock()
			<-cur.done
			if cur.failed {
				// The owner was cancelled; the row was forgotten — retry.
				continue
			}
			return cur.val, cur.errFinal
		}
		e = &meterEntry{done: make(chan struct{})}
		m.memo[row] = e
		m.mu.Unlock()
		break
	}

	if m.shared != nil {
		if v, ok := m.shared.Lookup(row); ok {
			m.cacheHits.Add(1)
			e.val = v
			close(e.done)
			return v, false
		}
		m.cacheMisses.Add(1)
	}
	v, err := m.fudf.EvalErr(ctx, row)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Batch abort, not a row failure: forget the row so a later run
			// re-evaluates, and flag waiters to retry.
			e.failed = true
			m.mu.Lock()
			delete(m.memo, row)
			m.mu.Unlock()
			close(e.done)
			return false, true
		}
		e.errFinal = true
		close(e.done)
		if m.onFailure != nil {
			m.onFailure(row, err)
		}
		return false, true
	}
	m.calls.Add(1)
	e.val = v
	close(e.done)
	if m.shared != nil {
		m.shared.Store(row, v)
	}
	return v, false
}

// ResolveDenied implements ResilientUDF: resolve a breaker-denied row
// without invoking the UDF. A row whose outcome is already memoized or
// cached resolves normally (denial costs nothing); otherwise the row is
// memoized as failed-final so the whole query treats it consistently, and
// onFailure fires with resilience.ErrBreakerOpen.
func (m *Meter) ResolveDenied(row int) (bool, bool) {
	m.mu.Lock()
	if cur, ok := m.memo[row]; ok {
		m.mu.Unlock()
		select {
		case <-cur.done:
			if !cur.failed {
				return cur.val, cur.errFinal
			}
		default:
		}
		// In-flight or forgotten entries cannot happen on the sequential
		// deny path of a gated batch; fail safe by denying.
		return false, true
	}
	e := &meterEntry{done: make(chan struct{})}
	m.memo[row] = e
	m.mu.Unlock()

	if m.shared != nil {
		if v, ok := m.shared.Lookup(row); ok {
			m.cacheHits.Add(1)
			e.val = v
			close(e.done)
			return v, false
		}
		m.cacheMisses.Add(1)
	}
	e.errFinal = true
	close(e.done)
	if m.onFailure != nil {
		m.onFailure(row, resilience.ErrBreakerOpen)
	}
	return false, true
}
