package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func paperGroups() []GroupInfo {
	// Example 3.3: three groups of 1000 tuples with selectivities
	// 0.9 / 0.5 / 0.1.
	return []GroupInfo{
		{Size: 1000, Selectivity: 0.9},
		{Size: 1000, Selectivity: 0.5},
		{Size: 1000, Selectivity: 0.1},
	}
}

func paperCons() Constraints { return Constraints{Alpha: 0.9, Beta: 0.9, Rho: 0.9} }

func TestPlanPerfectSelectivitiesPaperExample(t *testing.T) {
	s, err := PlanPerfectSelectivities(paperGroups(), paperCons(), DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !CheckPerfectSelectivityFeasible(paperGroups(), s, paperCons()) {
		t.Fatal("plan violates its own LP constraints")
	}
	// The highest-selectivity group should be fully retrieved and mostly
	// unevaluated; the lowest-selectivity group mostly discarded.
	if s.R[0] != 1 {
		t.Fatalf("R[0] = %v, want 1", s.R[0])
	}
	if s.R[2] > 0.3 {
		t.Fatalf("R[2] = %v, expected mostly discarded", s.R[2])
	}
	if s.E[0] > 0.2 {
		t.Fatalf("E[0] = %v, expected mostly unevaluated", s.E[0])
	}
	// Far cheaper than evaluating everything (cost 3000·4 = 12000).
	cost := s.ExpectedCost(paperGroups(), DefaultCost)
	if cost >= 9000 {
		t.Fatalf("plan cost %v, expected substantial savings", cost)
	}
}

func TestPlanPerfectSelectivitiesFeasibilityProperty(t *testing.T) {
	r := stats.NewRNG(201)
	f := func(seed uint32) bool {
		rr := stats.NewRNG(uint64(seed) ^ r.Uint64())
		n := 2 + rr.IntN(8)
		groups := make([]GroupInfo, n)
		for i := range groups {
			groups[i] = GroupInfo{
				Size:        100 + rr.IntN(3000),
				Selectivity: rr.Float64(),
			}
		}
		cons := Constraints{
			Alpha: 0.3 + 0.65*rr.Float64(),
			Beta:  0.3 + 0.65*rr.Float64(),
			Rho:   0.5 + 0.45*rr.Float64(),
		}
		s, err := PlanPerfectSelectivities(groups, cons, DefaultCost)
		if err != nil {
			return false
		}
		if err := s.Validate(); err != nil {
			return false
		}
		return CheckPerfectSelectivityFeasible(groups, s, cons)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanCostMonotoneInBeta(t *testing.T) {
	// With a low precision bound the precision constraint never binds, so
	// cost is driven purely by the recall target and must be monotone.
	// (With a binding precision constraint, cost need not be monotone in β:
	// retrieving more high-selectivity mass can satisfy the precision
	// margin for free and remove evaluations.)
	groups := paperGroups()
	prev := -1.0
	for _, beta := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		s, err := PlanPerfectSelectivities(groups, Constraints{Alpha: 0.2, Beta: beta, Rho: 0.8}, DefaultCost)
		if err != nil {
			t.Fatal(err)
		}
		c := s.ExpectedCost(groups, DefaultCost)
		if c < prev-1e-6 {
			t.Fatalf("cost decreased from %v to %v at beta=%v", prev, c, beta)
		}
		prev = c
	}
}

func TestPlanCostMonotoneInAlpha(t *testing.T) {
	groups := paperGroups()
	prev := -1.0
	for _, alpha := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		s, err := PlanPerfectSelectivities(groups, Constraints{Alpha: alpha, Beta: 0.8, Rho: 0.8}, DefaultCost)
		if err != nil {
			t.Fatal(err)
		}
		c := s.ExpectedCost(groups, DefaultCost)
		if c < prev-1e-6 {
			t.Fatalf("cost decreased from %v to %v at alpha=%v", prev, c, alpha)
		}
		prev = c
	}
}

func TestPlanZeroSelectivityGroupDiscarded(t *testing.T) {
	groups := []GroupInfo{
		{Size: 1000, Selectivity: 0.9},
		{Size: 1000, Selectivity: 0},
	}
	s, err := PlanPerfectSelectivities(groups, Constraints{Alpha: 0.5, Beta: 0.5, Rho: 0.8}, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if s.R[1] != 0 {
		t.Fatalf("zero-selectivity group retrieved: R[1]=%v", s.R[1])
	}
}

func TestPlanDegenerateInputs(t *testing.T) {
	if _, err := PlanPerfectSelectivities(nil, paperCons(), DefaultCost); err == nil {
		t.Fatal("empty groups accepted")
	}
	if _, err := PlanPerfectSelectivities(paperGroups(), Constraints{Alpha: 2}, DefaultCost); err == nil {
		t.Fatal("invalid alpha accepted")
	}
	if _, err := PlanPerfectSelectivities(paperGroups(), paperCons(), CostModel{Retrieve: -1}); err == nil {
		t.Fatal("negative cost accepted")
	}
	bad := []GroupInfo{{Size: -1, Selectivity: 0.5}}
	if _, err := PlanPerfectSelectivities(bad, paperCons(), DefaultCost); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestPlanBrowsingEvaluatesEverythingRetrieved(t *testing.T) {
	s, err := PlanBrowsing(paperGroups(), 0.8, 0.8, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.R {
		if math.Abs(s.E[i]-s.R[i]) > 1e-12 {
			t.Fatalf("browsing plan leaves group %d unevaluated: R=%v E=%v", i, s.R[i], s.E[i])
		}
	}
	// Recall target still enforced: enough mass retrieved.
	_, recall := perfectSelectivityLHS(paperGroups(), s, 1, nil)
	if recall < 0.8*ExpectedCorrect(paperGroups()) {
		t.Fatalf("browsing recall LHS %v too small", recall)
	}
}

// TestPlanSatisfiesConstraintsEmpirically is the core correctness check:
// run the planned strategy many times against a synthetic ground truth and
// verify the precision/recall constraints hold in at least ~ρ of runs.
func TestPlanSatisfiesConstraintsEmpirically(t *testing.T) {
	rng := stats.NewRNG(2024)
	groups, labels, truth := syntheticGroups(rng, []int{1000, 1000, 1000}, []float64{0.9, 0.5, 0.1})
	infos := exactInfos(groups, labels)
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	s, err := PlanPerfectSelectivities(infos, cons, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	totalCorrect := 0
	for _, v := range labels {
		if v {
			totalCorrect++
		}
	}
	const runs = 200
	okP, okR := 0, 0
	for i := 0; i < runs; i++ {
		exec, err := Execute(groups, s, nil, UDFFunc(truth), DefaultCost, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		m := ComputeMetrics(exec.Output, truth, totalCorrect)
		pOK, rOK := m.Satisfies(cons)
		if pOK {
			okP++
		}
		if rOK {
			okR++
		}
	}
	// The Hoeffding margins are conservative, so the satisfaction rate
	// should comfortably exceed ρ; allow a small sampling slack.
	if frac := float64(okP) / runs; frac < cons.Rho-0.05 {
		t.Fatalf("precision satisfied in only %v of runs (ρ=%v)", frac, cons.Rho)
	}
	if frac := float64(okR) / runs; frac < cons.Rho-0.05 {
		t.Fatalf("recall satisfied in only %v of runs (ρ=%v)", frac, cons.Rho)
	}
}

// syntheticGroups builds groups with exact per-group selectivities: group i
// has sizes[i] rows of which round(sel[i]·size) are correct. Returns the
// groups, the label array indexed by row id, and a truth function.
func syntheticGroups(rng *stats.RNG, sizes []int, sel []float64) ([]Group, []bool, func(int) bool) {
	total := 0
	for _, s := range sizes {
		total += s
	}
	labels := make([]bool, total)
	groups := make([]Group, len(sizes))
	row := 0
	for gi, size := range sizes {
		rows := make([]int, size)
		correct := int(math.Round(sel[gi] * float64(size)))
		for k := 0; k < size; k++ {
			rows[k] = row
			labels[row] = k < correct
			row++
		}
		// Shuffle within the group so sampling order is not label-ordered.
		rng.Shuffle(len(rows), func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
		groups[gi] = Group{Key: string(rune('A' + gi)), Rows: rows}
	}
	truth := func(r int) bool { return labels[r] }
	return groups, labels, truth
}

// exactInfos derives exact GroupInfo (true selectivities) from labels.
func exactInfos(groups []Group, labels []bool) []GroupInfo {
	infos := make([]GroupInfo, len(groups))
	for i, g := range groups {
		correct := 0
		for _, r := range g.Rows {
			if labels[r] {
				correct++
			}
		}
		sel := 0.0
		if len(g.Rows) > 0 {
			sel = float64(correct) / float64(len(g.Rows))
		}
		infos[i] = GroupInfo{Size: len(g.Rows), Selectivity: sel}
	}
	return infos
}

func TestStrategyHelpers(t *testing.T) {
	s := NewStrategy(2)
	s.R[0], s.E[0] = 1, 0.5
	groups := []GroupInfo{{Size: 100, Selectivity: 0.5}, {Size: 200, Selectivity: 0.2}}
	if c := s.ExpectedCost(groups, DefaultCost); math.Abs(c-(100*1+100*0.5*3)) > 1e-9 {
		t.Fatalf("cost %v", c)
	}
	if e := s.ExpectedEvaluations(groups); math.Abs(e-50) > 1e-9 {
		t.Fatalf("evals %v", e)
	}
	if r := s.ExpectedRetrievals(groups); math.Abs(r-100) > 1e-9 {
		t.Fatalf("retrievals %v", r)
	}
	clone := s.Clone()
	clone.R[0] = 0
	if s.R[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
	full := FullEvaluation(2)
	if full.R[1] != 1 || full.E[1] != 1 {
		t.Fatal("FullEvaluation wrong")
	}
	bad := Strategy{R: []float64{0.5}, E: []float64{0.7}}
	if err := bad.Validate(); err == nil {
		t.Fatal("E > R accepted")
	}
	mismatched := Strategy{R: []float64{1}, E: []float64{}}
	if err := mismatched.Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestGroupInfoFromSample(t *testing.T) {
	g := GroupInfoFromSample(1000, 100, 90)
	if math.Abs(g.Selectivity-91.0/102.0) > 1e-12 {
		t.Fatalf("selectivity %v", g.Selectivity)
	}
	wantVar := g.Selectivity * (1 - g.Selectivity) / 103
	if math.Abs(g.Variance-wantVar) > 1e-12 {
		t.Fatalf("variance %v want %v", g.Variance, wantVar)
	}
	if g.Remaining() != 900 {
		t.Fatalf("remaining %d", g.Remaining())
	}
}

func TestGroupInfoValidate(t *testing.T) {
	cases := []GroupInfo{
		{Size: -1},
		{Size: 10, Selectivity: 1.5},
		{Size: 10, Selectivity: 0.5, Variance: -1},
		{Size: 10, Selectivity: 0.5, Sampled: 11},
		{Size: 10, Selectivity: 0.5, Sampled: 5, SampledPositive: 6},
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, g)
		}
	}
	good := GroupInfo{Size: 10, Selectivity: 0.5, Variance: 0.01, Sampled: 5, SampledPositive: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMeterMemoizes(t *testing.T) {
	calls := 0
	m := NewMeter(UDFFunc(func(row int) bool {
		calls++
		return row%2 == 0
	}))
	if !m.Eval(2) || m.Eval(3) {
		t.Fatal("meter changes UDF semantics")
	}
	m.Eval(2)
	m.Eval(2)
	if m.Calls() != 2 || calls != 2 {
		t.Fatalf("calls %d / %d, want 2", m.Calls(), calls)
	}
	if v, known := m.Known(2); !known || !v {
		t.Fatal("Known(2) wrong")
	}
	if _, known := m.Known(99); known {
		t.Fatal("Known(99) should be unknown")
	}
}
