package core

import (
	"testing"

	"repro/internal/stats"
)

// stubClassifier estimates P(true) per bucket of feature[0] from the
// labeled rows — a deliberately simple SemiSupervised implementation for
// exercising the baseline plumbing without the ml package.
type stubClassifier struct{}

func (stubClassifier) FitPredict(features [][]float64, labeledIdx []int, labels []bool) []float64 {
	pos := map[float64]float64{}
	tot := map[float64]float64{}
	for k, i := range labeledIdx {
		key := features[i][0]
		tot[key]++
		if labels[k] {
			pos[key]++
		}
	}
	out := make([]float64, len(features))
	for i, f := range features {
		key := f[0]
		if tot[key] > 0 {
			out[i] = (pos[key] + 1) / (tot[key] + 2)
		} else {
			out[i] = 0.5
		}
	}
	return out
}

func mlTestSetup(rng *stats.RNG) (Instance, [][]float64, []bool, func(int) bool) {
	in, labels, truth := testInstance(rng)
	// Feature: the group id (a perfectly informative categorical feature).
	features := make([][]float64, len(labels))
	for gi, g := range in.Groups {
		for _, row := range g.Rows {
			features[row] = []float64{float64(gi)}
		}
	}
	return in, features, labels, truth
}

func TestRunLearningTerminatesAndSatisfies(t *testing.T) {
	rng := stats.NewRNG(901)
	in, features, labels, truth := mlTestSetup(rng)
	res, err := RunLearning(in, features, stubClassifier{}, truth, rng.Split(), MLBaselineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvaluations == 0 {
		t.Fatal("learning baseline evaluated nothing")
	}
	m := ComputeMetrics(res.Output, truth, totalCorrect(labels))
	pOK, rOK := m.Satisfies(in.Cons)
	if !(pOK && rOK) && res.TotalEvaluations < in.TotalRows() {
		t.Fatalf("terminated without satisfying constraints: %+v after %d evals", m, res.TotalEvaluations)
	}
}

func TestRunMultipleTerminates(t *testing.T) {
	rng := stats.NewRNG(903)
	in, features, _, truth := mlTestSetup(rng)
	res, err := RunMultiple(in, features, stubClassifier{}, truth, rng.Split(), MLBaselineOptions{Imputations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvaluations == 0 || res.TotalEvaluations > in.TotalRows() {
		t.Fatalf("evaluations %d out of range", res.TotalEvaluations)
	}
	if res.TotalCost <= 0 {
		t.Fatalf("cost %v", res.TotalCost)
	}
}

func TestRunMLBaselineValidation(t *testing.T) {
	rng := stats.NewRNG(905)
	in, features, _, truth := mlTestSetup(rng)
	if _, err := RunLearning(in, features, nil, truth, rng, MLBaselineOptions{}); err == nil {
		t.Fatal("nil classifier accepted")
	}
	if _, err := RunLearning(in, features, stubClassifier{}, nil, rng, MLBaselineOptions{}); err == nil {
		t.Fatal("nil truth accepted")
	}
	if _, err := RunLearning(in, features, stubClassifier{}, truth, nil, MLBaselineOptions{}); err == nil {
		t.Fatal("nil rng accepted")
	}
	short := [][]float64{{1}}
	if _, err := RunLearning(in, short, stubClassifier{}, truth, rng, MLBaselineOptions{}); err == nil {
		t.Fatal("short feature matrix accepted")
	}
}

func TestRunNaiveValidation(t *testing.T) {
	rng := stats.NewRNG(907)
	in, _, _ := testInstance(rng)
	if _, err := RunNaive(in, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	bad := in
	bad.Groups = nil
	if _, err := RunNaive(bad, rng); err == nil {
		t.Fatal("empty instance accepted")
	}
}
