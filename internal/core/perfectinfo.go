package core

import (
	"fmt"

	"repro/internal/solver"
)

// This file wraps the Section 3.1 Perfect-Information problem: exact
// per-group correct/incorrect counts are known, decisions are deterministic
// (0/1), and the optimization is NP-hard (Theorem 3.2, by reduction from
// min-knapsack). The exact optimizer lives in internal/solver; this file
// adapts it to the package's strategy types.

// PerfectInfoGroup is a group with exactly known composition.
type PerfectInfoGroup struct {
	Key     string
	Correct int // Cₐ
	Wrong   int // Wₐ
}

// PerfectInfoPlan is the deterministic plan for the perfect-information
// problem.
type PerfectInfoPlan struct {
	Actions []solver.Action
	Cost    float64
}

// Strategy converts the deterministic actions to the probabilistic strategy
// representation (probabilities 0 or 1), so the shared executor can run it.
func (p PerfectInfoPlan) Strategy() Strategy {
	s := NewStrategy(len(p.Actions))
	for i, a := range p.Actions {
		switch a {
		case solver.Retrieve:
			s.R[i] = 1
		case solver.Evaluate:
			s.R[i], s.E[i] = 1, 1
		}
	}
	return s
}

// SolvePerfectInformation solves Problem 1 exactly: minimum-cost
// deterministic actions satisfying the precision and recall constraints
// given exact Cₐ/Wₐ counts. Exponential worst case (the problem is
// NP-hard) but fast in practice for realistic group counts; use
// GreedyPerfectInformation for very wide instances.
func SolvePerfectInformation(groups []PerfectInfoGroup, cons Constraints, cost CostModel) (PerfectInfoPlan, error) {
	inst, err := perfectInfoInstance(groups, cons, cost)
	if err != nil {
		return PerfectInfoPlan{}, err
	}
	acts, c, err := solver.SolvePerfectInfo(inst)
	if err != nil {
		return PerfectInfoPlan{}, err
	}
	return PerfectInfoPlan{Actions: acts, Cost: c}, nil
}

// GreedyPerfectInformation returns a feasible (not necessarily optimal)
// plan in O(|A| log |A|) time.
func GreedyPerfectInformation(groups []PerfectInfoGroup, cons Constraints, cost CostModel) (PerfectInfoPlan, error) {
	inst, err := perfectInfoInstance(groups, cons, cost)
	if err != nil {
		return PerfectInfoPlan{}, err
	}
	acts, c := solver.GreedyPerfectInfo(inst)
	return PerfectInfoPlan{Actions: acts, Cost: c}, nil
}

func perfectInfoInstance(groups []PerfectInfoGroup, cons Constraints, cost CostModel) (solver.PerfectInfoInstance, error) {
	if len(groups) == 0 {
		return solver.PerfectInfoInstance{}, fmt.Errorf("core: no groups")
	}
	if err := cons.Validate(); err != nil {
		return solver.PerfectInfoInstance{}, err
	}
	if err := cost.Validate(); err != nil {
		return solver.PerfectInfoInstance{}, err
	}
	inst := solver.PerfectInfoInstance{
		Correct:      make([]int, len(groups)),
		Wrong:        make([]int, len(groups)),
		Alpha:        cons.Alpha,
		Beta:         cons.Beta,
		RetrieveCost: cost.Retrieve,
		EvaluateCost: cost.Evaluate,
	}
	for i, g := range groups {
		if g.Correct < 0 || g.Wrong < 0 {
			return solver.PerfectInfoInstance{}, fmt.Errorf("core: group %d has negative counts", i)
		}
		inst.Correct[i] = g.Correct
		inst.Wrong[i] = g.Wrong
	}
	return inst, nil
}
