package core

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestPlanBudgetEndpoints(t *testing.T) {
	groups := paperGroups()
	// Huge budget: full recall achievable.
	plan, err := PlanBudget(groups, 0.8, 0.8, 1e9, DefaultCost, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.AchievedBeta != 1 {
		t.Fatalf("huge budget achieved β=%v, want 1", plan.AchievedBeta)
	}
	// Zero budget with a precision-trivial setup: β=0 plan costs > 0
	// because of margins, so expect an error.
	if _, err := PlanBudget(groups, 0.8, 0.8, 0, DefaultCost, nil); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := PlanBudget(groups, 0.8, 0.8, -5, DefaultCost, nil); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestPlanBudgetMonotone(t *testing.T) {
	groups := paperGroups()
	prev := -1.0
	for _, budget := range []float64{1500, 3000, 5000, 8000} {
		plan, err := PlanBudget(groups, 0.8, 0.8, budget, DefaultCost, nil)
		if err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		if plan.AchievedBeta < prev-1e-9 {
			t.Fatalf("achieved β decreased at budget %v", budget)
		}
		prev = plan.AchievedBeta
		// The plan must respect the budget.
		if c := plan.Strategy.ExpectedCost(groups, DefaultCost); c > budget+1e-6 {
			t.Fatalf("plan cost %v exceeds budget %v", c, budget)
		}
	}
}

func bruteForceTwoPred(groups []TwoPredGroup, cons Constraints, cost CostModel) float64 {
	actions := []TwoPredAction{TPDiscard, TPAssumeBoth, TPEval1Assume2, TPAssume1Eval2, TPEvalBoth}
	n := len(groups)
	totalCorrect := 0.0
	for _, g := range groups {
		totalCorrect += float64(g.Size) * g.Sel1 * g.Sel2
	}
	gamma := cons.Beta * totalCorrect
	best := math.Inf(1)
	acts := make([]TwoPredAction, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			c, recall, prec := 0.0, 0.0, 0.0
			for gi, a := range acts {
				g := groups[gi]
				t := float64(g.Size)
				cc, corr, wrong := twoPredStats(g, a, cost)
				c += t * cc
				recall += t * corr
				prec += t * (corr - cons.Alpha*(corr+wrong))
			}
			if recall >= gamma-1e-9 && prec >= -1e-9 && c < best {
				best = c
			}
			return
		}
		for _, a := range actions {
			acts[i] = a
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestPlanTwoPredicatesMatchesBruteForce(t *testing.T) {
	r := stats.NewRNG(801)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.IntN(4)
		groups := make([]TwoPredGroup, n)
		for i := range groups {
			groups[i] = TwoPredGroup{
				Size: 50 + r.IntN(500),
				Sel1: r.Float64(),
				Sel2: r.Float64(),
			}
		}
		cons := Constraints{Alpha: 0.4 + 0.5*r.Float64(), Beta: 0.4 + 0.5*r.Float64(), Rho: 0.8}
		want := bruteForceTwoPred(groups, cons, DefaultCost)
		acts, got, err := PlanTwoPredicates(groups, cons, DefaultCost)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: cost %v want %v (acts %v)", trial, got, want, acts)
		}
	}
}

func TestPlanTwoPredicatesSkipsSecondUDF(t *testing.T) {
	// A group very unlikely to pass predicate 1 should not pay for
	// evaluating predicate 2 (the paper's motivating observation).
	groups := []TwoPredGroup{
		{Size: 1000, Sel1: 0.95, Sel2: 0.95}, // passes both: assume or cheap
		{Size: 1000, Sel1: 0.02, Sel2: 0.9},  // fails pred 1: discard
	}
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	acts, _, err := PlanTwoPredicates(groups, cons, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if acts[1] != TPDiscard {
		t.Fatalf("low-sel1 group action %v, want discard", acts[1])
	}
}

func TestTwoPredActionString(t *testing.T) {
	names := map[TwoPredAction]string{
		TPDiscard: "discard", TPAssumeBoth: "assume-both",
		TPEval1Assume2: "eval-1", TPAssume1Eval2: "eval-2", TPEvalBoth: "eval-both",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d stringifies as %q, want %q", a, a.String(), want)
		}
	}
	if TwoPredAction(99).String() != "invalid" {
		t.Fatal("invalid action string")
	}
}

func TestTwoPredStatsEvalBothNeverWrong(t *testing.T) {
	r := stats.NewRNG(803)
	for trial := 0; trial < 100; trial++ {
		g := TwoPredGroup{Size: 100, Sel1: r.Float64(), Sel2: r.Float64()}
		_, _, wrong := twoPredStats(g, TPEvalBoth, DefaultCost)
		if wrong != 0 {
			t.Fatalf("eval-both produced wrong mass %v", wrong)
		}
		// And it costs less than two unconditional evaluations.
		c, _, _ := twoPredStats(g, TPEvalBoth, DefaultCost)
		full := DefaultCost.Retrieve + 2*DefaultCost.Evaluate
		if c > full+1e-12 {
			t.Fatalf("eval-both cost %v exceeds unconditional %v", c, full)
		}
	}
}

func TestPlanSelectJoinWeighting(t *testing.T) {
	cons := Constraints{Alpha: 0.7, Beta: 0.7, Rho: 0.8}
	// Two groups with the same size/selectivity; one joins with 10 tuples
	// per row, the other with 1. The heavy group should be retrieved first.
	groups := []JoinGroup{
		{Size: 1000, Selectivity: 0.5, JoinWeight: 1},
		{Size: 1000, Selectivity: 0.5, JoinWeight: 10},
	}
	s, err := PlanSelectJoin(groups, cons, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.R[1] <= s.R[0] {
		t.Fatalf("heavy join group retrieved less: R=%v", s.R)
	}
	// The heavy group alone can cover the weighted recall target, so the
	// light group should be untouched.
	if s.R[0] != 0 {
		t.Fatalf("light join group should be discarded, R[0]=%v", s.R[0])
	}
}

func TestPlanSelectJoinUniformWeightsMatchPlain(t *testing.T) {
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	jg := []JoinGroup{
		{Size: 1000, Selectivity: 0.9, JoinWeight: 1},
		{Size: 1000, Selectivity: 0.5, JoinWeight: 1},
		{Size: 1000, Selectivity: 0.1, JoinWeight: 1},
	}
	sJoin, err := PlanSelectJoin(jg, cons, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	sPlain, err := PlanPerfectSelectivities(paperGroups(), cons, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sPlain.R {
		if math.Abs(sJoin.R[i]-sPlain.R[i]) > 1e-9 || math.Abs(sJoin.E[i]-sPlain.E[i]) > 1e-9 {
			t.Fatalf("weight-1 join plan differs from plain plan: %v vs %v", sJoin, sPlain)
		}
	}
}

func TestPlanSelectJoinErrors(t *testing.T) {
	cons := Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	if _, err := PlanSelectJoin(nil, cons, DefaultCost); err == nil {
		t.Fatal("empty groups accepted")
	}
	bad := []JoinGroup{{Size: 10, Selectivity: 0.5, JoinWeight: -1}}
	if _, err := PlanSelectJoin(bad, cons, DefaultCost); err == nil {
		t.Fatal("negative weight accepted")
	}
}
