package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Section 5 extensions: a fixed cost budget with recall as the objective,
// conjunctions of two expensive predicates, and selection followed by a
// join (where output tuples count with their join multiplicity).

// PlannerFunc plans a strategy for groups under constraints; both
// PlanPerfectSelectivities and the estimated-selectivity planners match.
type PlannerFunc func([]GroupInfo, Constraints, CostModel) (Strategy, error)

// BudgetPlan is the result of PlanBudget.
type BudgetPlan struct {
	Strategy Strategy
	// AchievedBeta is the highest recall bound for which the plan's cost
	// fits the budget.
	AchievedBeta float64
}

// PlanBudget solves the alternate objective of Section 5/Appendix 10.7.1:
// maximize recall subject to precision ≥ α (with probability ρ) and
// expected cost ≤ budget. It binary-searches the recall bound β and plans
// with the supplied planner (PlanPerfectSelectivities by default).
func PlanBudget(groups []GroupInfo, alpha, rho, budget float64, cost CostModel, planner PlannerFunc) (BudgetPlan, error) {
	if planner == nil {
		planner = PlanPerfectSelectivities
	}
	if budget < 0 {
		return BudgetPlan{}, fmt.Errorf("core: negative budget %v", budget)
	}
	plan := func(beta float64) (Strategy, float64, error) {
		s, err := planner(groups, Constraints{Alpha: alpha, Beta: beta, Rho: rho}, cost)
		if err != nil {
			return Strategy{}, 0, err
		}
		return s, s.ExpectedCost(groups, cost), nil
	}
	// Quick exits: even β=0 may exceed the budget (precision margins), and
	// β=1 may fit it.
	s1, c1, err := plan(1)
	if err != nil {
		return BudgetPlan{}, err
	}
	if c1 <= budget {
		return BudgetPlan{Strategy: s1, AchievedBeta: 1}, nil
	}
	s0, c0, err := plan(0)
	if err != nil {
		return BudgetPlan{}, err
	}
	if c0 > budget {
		return BudgetPlan{Strategy: s0, AchievedBeta: 0},
			fmt.Errorf("core: budget %v cannot cover even β=0 (cost %v)", budget, c0)
	}
	lo, hi := 0.0, 1.0
	best, bestBeta := s0, 0.0
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		s, c, err := plan(mid)
		if err != nil {
			return BudgetPlan{}, err
		}
		if c <= budget {
			lo = mid
			best, bestBeta = s, mid
		} else {
			hi = mid
		}
	}
	return BudgetPlan{Strategy: best, AchievedBeta: bestBeta}, nil
}

// TwoPredGroup describes one group for a conjunction of two expensive
// predicates f1 AND f2, with independent per-tuple selectivities.
type TwoPredGroup struct {
	Size int
	Sel1 float64 // P(f1 = 1) per tuple
	Sel2 float64 // P(f2 = 1) per tuple
}

// TwoPredAction is the per-group decision for two predicates. A predicate
// is either assumed true (no UDF call) or evaluated (tuples failing it are
// dropped); or the whole group is discarded.
type TwoPredAction uint8

// The five per-group actions of the two-predicate extension.
const (
	TPDiscard      TwoPredAction = iota // drop the group
	TPAssumeBoth                        // return all tuples, no UDF calls
	TPEval1Assume2                      // evaluate f1, assume f2
	TPAssume1Eval2                      // assume f1, evaluate f2
	TPEvalBoth                          // evaluate f1, then f2 on survivors
)

func (a TwoPredAction) String() string {
	switch a {
	case TPDiscard:
		return "discard"
	case TPAssumeBoth:
		return "assume-both"
	case TPEval1Assume2:
		return "eval-1"
	case TPAssume1Eval2:
		return "eval-2"
	case TPEvalBoth:
		return "eval-both"
	default:
		return "invalid"
	}
}

// twoPredStats returns, per tuple of the group under the action:
// (cost, expected correct output, expected incorrect output).
// A tuple is correct iff both predicates hold.
func twoPredStats(g TwoPredGroup, a TwoPredAction, cost CostModel) (c, correct, wrong float64) {
	p1, p2 := g.Sel1, g.Sel2
	both := p1 * p2
	switch a {
	case TPDiscard:
		return 0, 0, 0
	case TPAssumeBoth:
		return cost.Retrieve, both, 1 - both
	case TPEval1Assume2:
		// Output iff f1 passes; incorrect when f1 passes but f2 fails.
		return cost.Retrieve + cost.Evaluate, both, p1 * (1 - p2)
	case TPAssume1Eval2:
		return cost.Retrieve + cost.Evaluate, both, (1 - p1) * p2
	default: // TPEvalBoth: f2 evaluated only on f1 survivors.
		return cost.Retrieve + cost.Evaluate*(1+p1), both, 0
	}
}

// PlanTwoPredicates chooses one action per group minimizing expected cost
// while satisfying the precision and recall constraints in expectation
// (the Section 5 sketch; probability-ρ margins can be layered on by
// tightening α and β before the call). Exact search via branch and bound.
func PlanTwoPredicates(groups []TwoPredGroup, cons Constraints, cost CostModel) ([]TwoPredAction, float64, error) {
	if len(groups) == 0 {
		return nil, 0, fmt.Errorf("core: no groups")
	}
	if err := cons.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(groups)
	actions := []TwoPredAction{TPDiscard, TPAssumeBoth, TPEval1Assume2, TPAssume1Eval2, TPEvalBoth}

	// Per group and action: cost, recall contribution, precision slack
	// contribution correct − α(correct+wrong).
	costs := make([][]float64, n)
	recalls := make([][]float64, n)
	precs := make([][]float64, n)
	totalCorrect := 0.0
	for i, g := range groups {
		t := float64(g.Size)
		totalCorrect += t * g.Sel1 * g.Sel2
		costs[i] = make([]float64, len(actions))
		recalls[i] = make([]float64, len(actions))
		precs[i] = make([]float64, len(actions))
		for ai, a := range actions {
			c, corr, wrong := twoPredStats(g, a, cost)
			costs[i][ai] = t * c
			recalls[i][ai] = t * corr
			precs[i][ai] = t * (corr - cons.Alpha*(corr+wrong))
		}
	}
	gamma := cons.Beta * totalCorrect

	// Optimistic suffix bounds for pruning.
	sufRecall := make([]float64, n+1)
	sufPrec := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		br, bp := 0.0, 0.0
		for ai := range actions {
			br = math.Max(br, recalls[i][ai])
			bp = math.Max(bp, precs[i][ai])
		}
		sufRecall[i] = sufRecall[i+1] + br
		sufPrec[i] = sufPrec[i+1] + bp
	}

	best := math.Inf(1)
	var bestActs []TwoPredAction
	acts := make([]TwoPredAction, n)
	var dfs func(i int, c, recall, prec float64)
	dfs = func(i int, c, recall, prec float64) {
		if c >= best {
			return
		}
		if recall+sufRecall[i] < gamma-1e-9 || prec+sufPrec[i] < -1e-9 {
			return
		}
		if i == n {
			best = c
			bestActs = append([]TwoPredAction(nil), acts...)
			return
		}
		// Cheap actions first for early incumbents.
		order := []int{0, 1, 2, 3, 4}
		sort.Slice(order, func(x, y int) bool { return costs[i][order[x]] < costs[i][order[y]] })
		for _, ai := range order {
			acts[i] = actions[ai]
			dfs(i+1, c+costs[i][ai], recall+recalls[i][ai], prec+precs[i][ai])
		}
		acts[i] = TPDiscard
	}
	dfs(0, 0, 0, 0)
	if bestActs == nil {
		return nil, 0, fmt.Errorf("core: no feasible two-predicate plan")
	}
	return bestActs, best, nil
}

// JoinGroup describes one (correlated-value, join-key) subgroup for the
// selection-before-join extension: its tuples match JoinWeight tuples of
// the joined table, so each output tuple counts JoinWeight times toward
// join-result precision and recall while costing the same to retrieve or
// evaluate.
type JoinGroup struct {
	Size        int
	Selectivity float64
	JoinWeight  float64 // n_j ≥ 0
}

// PlanSelectJoin plans retrieval/evaluation probabilities per subgroup so
// the join result meets the precision and recall constraints with
// probability ρ. The linear program is Linear-Prog. 3.4 with every
// contribution weighted by n_j; Hoeffding ranges scale with n_j as well.
func PlanSelectJoin(groups []JoinGroup, cons Constraints, cost CostModel) (Strategy, error) {
	if len(groups) == 0 {
		return Strategy{}, fmt.Errorf("core: no groups")
	}
	if err := cons.Validate(); err != nil {
		return Strategy{}, err
	}
	infos := make([]GroupInfo, len(groups))
	wt := make(weights, len(groups))
	// Hoeffding: per-tuple indicators now span ranges proportional to n_j,
	// so Σ(bᵢ−aᵢ)² = Σ tₐ·n_j².
	sumSq := 0.0
	weightedCorrect := 0.0
	for i, g := range groups {
		if g.JoinWeight < 0 {
			return Strategy{}, fmt.Errorf("core: negative join weight %v", g.JoinWeight)
		}
		infos[i] = GroupInfo{Size: g.Size, Selectivity: g.Selectivity}
		wt[i] = g.JoinWeight
		sumSq += float64(g.Size) * g.JoinWeight * g.JoinWeight
		weightedCorrect += g.JoinWeight * float64(g.Size) * g.Selectivity
	}
	hp := stats.HoeffdingMargin(sumSq, 1, cons.Rho)
	hr := stats.HoeffdingMargin(sumSq, 1-cons.Beta, cons.Rho)
	recallTarget := cons.Beta*weightedCorrect + hr
	return biGreedy(infos, cons.Alpha, recallTarget, hp, wt), nil
}
