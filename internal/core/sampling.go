package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/stats"
)

// This file implements Section 4: joint estimation and exploitation.
// Selectivities are estimated by sampling (retrieving and evaluating) a few
// tuples per group; the Beta posterior of Section 4.1 turns the outcomes
// into (sₐ, vₐ) estimates; allocators decide how much to sample per group,
// including the paper's Two-Third-Power rule of thumb Fₐ = num·tₐ·n^(−1/3)
// and the adaptive scheme that discovers a good num value.

// Allocator decides how many tuples to sample from each group given the
// group sizes.
type Allocator interface {
	// Allocate returns the target sample count per group; implementations
	// must return values in [0, sizes[i]].
	Allocate(sizes []int) []int
	// String names the allocator for reports.
	String() string
}

// ConstantAllocator samples the same number of tuples from every group
// (capped by group size) — the Constant(c) scheme of Section 6.3.
type ConstantAllocator struct{ C int }

// Allocate implements Allocator.
func (a ConstantAllocator) Allocate(sizes []int) []int {
	out := make([]int, len(sizes))
	for i, t := range sizes {
		out[i] = min(a.C, t)
	}
	return out
}

func (a ConstantAllocator) String() string { return fmt.Sprintf("constant(%d)", a.C) }

// ProportionalAllocator samples a fixed fraction of every group — the
// "fixed 5% of the data" scheme of Experiment 1.
type ProportionalAllocator struct{ Fraction float64 }

// Allocate implements Allocator.
func (a ProportionalAllocator) Allocate(sizes []int) []int {
	out := make([]int, len(sizes))
	for i, t := range sizes {
		out[i] = min(t, int(math.Round(a.Fraction*float64(t))))
	}
	return out
}

func (a ProportionalAllocator) String() string {
	return fmt.Sprintf("proportional(%.3f)", a.Fraction)
}

// TwoThirdPowerAllocator samples Fₐ = num·tₐ·n^(−1/3) tuples from group a,
// the Section 4.3 rule of thumb (so named because total sampling grows as
// n^(2/3)).
type TwoThirdPowerAllocator struct{ Num float64 }

// Allocate implements Allocator.
func (a TwoThirdPowerAllocator) Allocate(sizes []int) []int {
	n := 0
	for _, t := range sizes {
		n += t
	}
	out := make([]int, len(sizes))
	if n == 0 {
		return out
	}
	scale := a.Num * math.Pow(float64(n), -1.0/3.0)
	for i, t := range sizes {
		out[i] = min(t, int(math.Round(scale*float64(t))))
	}
	return out
}

func (a TwoThirdPowerAllocator) String() string {
	return fmt.Sprintf("two-third-power(%.2f)", a.Num)
}

// Sampler incrementally samples tuples from groups without replacement,
// remembering outcomes so allocations can be topped up (as the adaptive
// scheme requires) without re-evaluating tuples.
type Sampler struct {
	groups   []Group
	udf      UDF
	rng      *stats.RNG
	outcomes []SampleOutcome
	// unsampled[i] holds the not-yet-sampled row ids of group i in a
	// pre-shuffled order; sampling pops from the tail.
	unsampled [][]int
	// parallelism caps the workers used to evaluate newly sampled rows
	// (default 1, fully sequential). Row selection is always sequential, so
	// outcomes are identical at any setting.
	parallelism int
	// priors counts rows seeded via SeedPrior: they carry evidence but were
	// not examined by this query, so TotalSampled excludes them.
	priors int
}

// SetParallelism sets the worker cap for UDF evaluation during TopUp
// (≤ 0 means GOMAXPROCS, 1 means sequential).
func (s *Sampler) SetParallelism(p int) { s.parallelism = p }

// NewSampler prepares a sampler over the groups. Each group's rows are
// shuffled once up front so successive top-ups are uniform without
// replacement.
func NewSampler(groups []Group, udf UDF, rng *stats.RNG) *Sampler {
	s := &Sampler{
		groups:      groups,
		udf:         udf,
		rng:         rng,
		outcomes:    make([]SampleOutcome, len(groups)),
		unsampled:   make([][]int, len(groups)),
		parallelism: 1,
	}
	for i, g := range groups {
		rows := append([]int(nil), g.Rows...)
		rng.Shuffle(len(rows), func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
		s.unsampled[i] = rows
		s.outcomes[i] = SampleOutcome{Results: make(map[int]bool)}
	}
	return s
}

// seedKnown moves rows with known outcomes from the unsampled pools into
// the recorded results, returning how many rows it seeded. Rows not
// belonging to any group (or already sampled) are ignored.
func (s *Sampler) seedKnown(known map[int]bool) int {
	seeded := 0
	for i := range s.groups {
		kept := s.unsampled[i][:0]
		for _, row := range s.unsampled[i] {
			if v, ok := known[row]; ok {
				s.outcomes[i].Results[row] = v
				if v {
					s.outcomes[i].Positives++
				}
				seeded++
				continue
			}
			kept = append(kept, row)
		}
		s.unsampled[i] = kept
	}
	return seeded
}

// Preload records rows whose UDF outcome is already known (e.g. tuples
// labeled while discovering the correlated column, Section 4.4) so they
// count as sampled without re-evaluation. Rows not belonging to any group
// are ignored.
func (s *Sampler) Preload(known map[int]bool) {
	s.seedKnown(known)
}

// SeedPrior records rows whose UDF outcome was paid for in an earlier
// process life (e.g. restored from a durable catalog). Like Preload, the
// rows count as sampling evidence — they strengthen the Beta posterior and
// shrink or eliminate later top-ups — but unlike Preload they are NOT
// counted by TotalSampled: they were not examined during this query, and
// reporting them as sampled would hide the warm-start savings. Rows not
// belonging to any group (or already sampled) are ignored. Returns the
// number of rows seeded.
func (s *Sampler) SeedPrior(known map[int]bool) int {
	seeded := s.seedKnown(known)
	s.priors += seeded
	return seeded
}

// TopUp raises each group's sampled count to targets[i] (no-op for groups
// already at or above target), evaluating the UDF on newly sampled rows.
// It returns the number of new evaluations performed.
//
// TopUp is plan/evaluate split: the rows to sample are popped sequentially
// from the pre-shuffled per-group pools (no RNG is consumed), the UDF runs
// over the whole batch on up to SetParallelism workers, and outcomes are
// recorded in pop order — so the sampler's state after TopUp is identical
// at any parallelism level.
//
//predlint:allow ctxflow — pre-context compatibility wrapper; cancellable callers use TopUpCtx
func (s *Sampler) TopUp(targets []int) (int, error) {
	return s.TopUpCtx(context.Background(), targets)
}

// TopUpCtx is TopUp honoring a context. The sampler's state mutates only
// after the whole batch evaluated successfully: a cancelled top-up returns
// ctx.Err() with the un-sampled pools and outcomes exactly as they were, so
// the sampler (and any shared meter beneath the UDF) stays reusable — a
// later TopUp over the same targets re-plans the identical batch.
func (s *Sampler) TopUpCtx(ctx context.Context, targets []int) (int, error) {
	if len(targets) != len(s.groups) {
		return 0, fmt.Errorf("core: %d targets for %d groups", len(targets), len(s.groups))
	}
	// Plan: read (without popping) the rows each group still owes from the
	// tail of its pre-shuffled pool, group-major, in pop order.
	var work, groupOf []int
	take := make([]int, len(s.groups))
	for i := range s.groups {
		want := targets[i] - len(s.outcomes[i].Results)
		if avail := len(s.unsampled[i]); want > avail {
			want = avail
		}
		if want < 0 {
			want = 0
		}
		last := len(s.unsampled[i]) - 1
		for k := 0; k < want; k++ {
			work = append(work, s.unsampled[i][last-k])
			groupOf = append(groupOf, i)
		}
		take[i] = want
	}
	// Evaluate in parallel; commit (pop + record) only on full success.
	// Rows whose resilient evaluation failed are popped (so they are not
	// endlessly re-planned) but recorded as NOTHING: failed invocations
	// must never become sampling evidence, and a later top-up to the same
	// target simply samples replacement rows.
	verdicts, failed, err := EvalRowsResilient(ctx, exec.NewPool(s.parallelism), work, s.udf)
	if err != nil {
		return 0, err
	}
	for i, k := range take {
		s.unsampled[i] = s.unsampled[i][:len(s.unsampled[i])-k]
	}
	for k, row := range work {
		if failed != nil && failed[k] {
			continue
		}
		i := groupOf[k]
		s.outcomes[i].Results[row] = verdicts[k]
		if verdicts[k] {
			s.outcomes[i].Positives++
		}
	}
	return len(work), nil
}

// Outcomes returns the per-group sampling outcomes (shared, do not mutate).
func (s *Sampler) Outcomes() []SampleOutcome { return s.outcomes }

// TotalSampled returns the number of tuples examined so far by this
// sampler: labeled, preloaded or topped up. Rows seeded from prior
// process lives (SeedPrior) are excluded — their cost was paid before
// this query started.
func (s *Sampler) TotalSampled() int {
	total := 0
	for _, o := range s.outcomes {
		total += len(o.Results)
	}
	return total - s.priors
}

// Infos converts the current sampling state into estimated-selectivity
// GroupInfo values using the Beta posterior.
func (s *Sampler) Infos() []GroupInfo {
	infos := make([]GroupInfo, len(s.groups))
	for i, g := range s.groups {
		o := s.outcomes[i]
		infos[i] = GroupInfoFromSample(len(g.Rows), len(o.Results), o.Positives)
	}
	return infos
}

// AdaptiveOptions tunes AdaptiveTwoThirdPower.
type AdaptiveOptions struct {
	// StartNum is the initial num value (default 0.5·α, with α from the
	// constraints; the paper observes the optimum scales with α).
	StartNum float64
	// GrowthFactor multiplies num each round (default 1.4).
	GrowthFactor float64
	// MaxNum stops the search (default 20).
	MaxNum float64
	// Patience is how many consecutive cost increases end the search
	// (default 2).
	Patience int
}

func (o *AdaptiveOptions) fill(alpha float64) {
	if o.StartNum <= 0 {
		o.StartNum = 0.5 * alpha
		if o.StartNum <= 0 {
			o.StartNum = 0.5
		}
	}
	if o.GrowthFactor <= 1 {
		o.GrowthFactor = 1.4
	}
	if o.MaxNum <= 0 {
		o.MaxNum = 20
	}
	if o.Patience <= 0 {
		o.Patience = 2
	}
}

// AdaptiveTwoThirdPower implements the Section 4.3 adaptive scheme: start
// with a small num, repeatedly enlarge the sample, re-solve Convex
// Prog. 4.1, and track the estimated total cost (sampling already paid +
// planned execution). When the cost estimate has risen Patience times in a
// row, stop. The sampler retains all evaluations, so the final state is
// ready for planning and execution. Returns the num value whose cost
// estimate was lowest.
func AdaptiveTwoThirdPower(s *Sampler, cons Constraints, cost CostModel, opts AdaptiveOptions) (float64, error) {
	opts.fill(cons.Alpha)
	sizes := make([]int, len(s.groups))
	for i, g := range s.groups {
		sizes[i] = len(g.Rows)
	}
	bestNum := opts.StartNum
	bestCost := math.Inf(1)
	rises := 0
	prev := math.Inf(1)
	for num := opts.StartNum; num <= opts.MaxNum; num *= opts.GrowthFactor {
		alloc := TwoThirdPowerAllocator{Num: num}.Allocate(sizes)
		if _, err := s.TopUp(alloc); err != nil {
			return bestNum, err
		}
		infos := s.Infos()
		strat, err := PlanWithSamples(infos, cons, cost)
		if err != nil {
			return bestNum, err
		}
		sunk := float64(s.TotalSampled()) * (cost.Retrieve + cost.Evaluate)
		est := sunk + strat.ExpectedCost(infos, cost)
		if est < bestCost {
			bestCost = est
			bestNum = num
		}
		if est > prev {
			rises++
			if rises >= opts.Patience {
				break
			}
		} else {
			rises = 0
		}
		prev = est
	}
	return bestNum, nil
}
