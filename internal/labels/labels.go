// Package labels loads the hidden ground-truth files (id,label CSVs, the
// format cmd/datagen writes) that back simulated expensive UDFs in the
// command-line tools and the query server.
//
// The UDF built by Predicate accepts the id value however the CSV loader
// typed the id column — int64, float64 or string — instead of silently
// answering false for every non-int64 row, which used to make whole queries
// "succeed" with zero results whenever type inference picked Float or
// String for the id column.
package labels

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"
)

// Load reads an id,label CSV (header row required) into a lookup map.
// Labels "1" and "true" (any case) are positive.
func Load(r io.Reader) (map[int64]bool, error) {
	records, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) < 1 {
		return nil, fmt.Errorf("labels: empty labels file")
	}
	m := make(map[int64]bool, len(records)-1)
	for _, rec := range records[1:] {
		if len(rec) < 2 {
			return nil, fmt.Errorf("labels: labels file needs id,label columns")
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, err
		}
		m[id] = rec[1] == "1" || strings.EqualFold(rec[1], "true")
	}
	return m, nil
}

// LoadFile is Load reading from a file path.
func LoadFile(path string) (map[int64]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Predicate builds a simulated expensive UDF over the labels: it reports
// whether the row's id is labeled positive. Ids arrive as whatever Go type
// the CSV loader inferred for the id column — int64, float64 (accepted when
// integral) or string (accepted when it parses as an integer). Any other
// value panics with a descriptive message; the engine's fault capture turns
// that into a query-level error instead of a silent empty result.
func Predicate(m map[int64]bool) func(v any) bool {
	return func(v any) bool {
		switch id := v.(type) {
		case int64:
			return m[id]
		case float64:
			if id != math.Trunc(id) || math.IsInf(id, 0) || math.IsNaN(id) {
				panic(fmt.Sprintf("labels: non-integral float id %v", id))
			}
			// Out-of-range float→int conversion is implementation-defined;
			// without this guard such ids would silently look up a garbage
			// key and return false. 2⁶³ is exactly representable.
			if id >= 9223372036854775808.0 || id < -9223372036854775808.0 {
				panic(fmt.Sprintf("labels: float id %v overflows int64", id))
			}
			return m[int64(id)]
		case string:
			n, err := strconv.ParseInt(strings.TrimSpace(id), 10, 64)
			if err != nil {
				panic(fmt.Sprintf("labels: non-numeric string id %q", id))
			}
			return m[n]
		default:
			panic(fmt.Sprintf("labels: unsupported id type %T", v))
		}
	}
}

// Delayed wraps a predicate with a fixed artificial latency per call,
// simulating a genuinely expensive UDF (remote scoring service, disk).
// d ≤ 0 returns pred unchanged.
func Delayed(pred func(v any) bool, d time.Duration) func(v any) bool {
	if d <= 0 {
		return pred
	}
	return func(v any) bool {
		time.Sleep(d)
		return pred(v)
	}
}
