package labels

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoad(t *testing.T) {
	m, err := Load(strings.NewReader("id,label\n0,1\n1,0\n2,true\n3,TRUE\n4,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]bool{0: true, 1: false, 2: true, 3: true, 4: false}
	if len(m) != len(want) {
		t.Fatalf("got %d labels", len(m))
	}
	for id, v := range want {
		if m[id] != v {
			t.Fatalf("label[%d] = %v, want %v", id, m[id], v)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("id\n0\n")); err == nil {
		t.Fatal("single-column labels accepted")
	}
	if _, err := Load(strings.NewReader("id,label\nxyz,1\n")); err == nil {
		t.Fatal("non-numeric id accepted")
	}
	if _, err := LoadFile("/no/such/file"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.csv")
	if err := os.WriteFile(path, []byte("id,label\n7,1\n8,0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m[7] || m[8] {
		t.Fatalf("labels %v", m)
	}
}

// TestPredicateIDTypes is the regression test for the silent-wrong-answer
// bug: the simulated UDF used to do v.(int64) and answer false for every
// row when the id column inferred as Float or String.
func TestPredicateIDTypes(t *testing.T) {
	pred := Predicate(map[int64]bool{3: true, 4: false})
	if !pred(int64(3)) || pred(int64(4)) || pred(int64(99)) {
		t.Fatal("int64 ids mishandled")
	}
	if !pred(float64(3)) || pred(float64(4)) {
		t.Fatal("integral float ids mishandled")
	}
	if !pred("3") || pred("4") || !pred(" 3 ") {
		t.Fatal("string ids mishandled")
	}
}

func TestPredicateFaultsOnBadIDs(t *testing.T) {
	pred := Predicate(map[int64]bool{1: true})
	for name, v := range map[string]any{
		"non-integral float": 1.5,
		"overflowing float":  1e20, // int64(1e20) is implementation-defined
		"non-numeric string": "abc",
		"unsupported type":   []byte("1"),
		"nil":                nil,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic — would silently drop the row", name)
				}
			}()
			pred(v)
		}()
	}
}
