// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6) plus the ablations DESIGN.md calls out. Each
// experiment is a named runner that computes a typed result and renders it
// as a text table; cmd/exppred exposes them on the command line and
// bench_test.go wraps them as benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all randomness; same seed, same numbers.
	Seed uint64
	// Scale shrinks the datasets (1 = the paper's sizes). Values below 1
	// keep all distributional statistics but run proportionally faster.
	Scale float64
	// Iterations overrides each experiment's default repetition count
	// (0 keeps the default).
	Iterations int
	// Alpha, Beta, Rho are the default constraints (0 → 0.8, the paper's
	// defaults).
	Alpha, Beta, Rho float64
	// Out receives rendered tables; nil discards them.
	Out io.Writer
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.8
	}
	if c.Beta <= 0 {
		c.Beta = 0.8
	}
	if c.Rho <= 0 {
		c.Rho = 0.8
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
}

// Runner caches generated datasets across experiments.
type Runner struct {
	cfg Config

	mu   sync.Mutex
	data map[string]*dataset.Dataset
}

// New creates a runner.
func New(cfg Config) *Runner {
	cfg.fill()
	return &Runner{cfg: cfg, data: make(map[string]*dataset.Dataset)}
}

// Config returns the effective configuration.
func (r *Runner) Config() Config { return r.cfg }

// cons returns the default constraints.
func (r *Runner) cons() core.Constraints {
	return core.Constraints{Alpha: r.cfg.Alpha, Beta: r.cfg.Beta, Rho: r.cfg.Rho}
}

// Dataset generates (or returns the cached) dataset by name at the
// configured scale.
func (r *Runner) Dataset(name string) (*dataset.Dataset, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.data[name]; ok {
		return d, nil
	}
	spec, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	if r.cfg.Scale != 1 {
		spec = spec.Scaled(r.cfg.Scale)
	}
	d, err := dataset.Generate(spec, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	r.data[name] = d
	return d, nil
}

// DatasetNames returns the evaluation datasets in presentation order.
func DatasetNames() []string { return []string{"lc", "prosper", "census", "marketing"} }

// iters resolves the repetition count for an experiment.
func (r *Runner) iters(def int) int {
	if r.cfg.Iterations > 0 {
		return r.cfg.Iterations
	}
	return def
}

// rng derives a fresh deterministic generator for an experiment.
func (r *Runner) rng(salt uint64) *stats.RNG {
	return stats.NewRNG(r.cfg.Seed*0x9e3779b97f4a7c15 + salt)
}

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (fmt.Stringer, error)
}

var registry = map[string]Experiment{}
var registryOrder []string

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
	registryOrder = append(registryOrder, e.ID)
}

// IDs lists the registered experiment ids in registration order.
func IDs() []string {
	out := append([]string(nil), registryOrder...)
	sort.Strings(out)
	return out
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// Run executes the experiment and renders its result to cfg.Out.
func (r *Runner) Run(id string) (fmt.Stringer, error) {
	e, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(r.cfg.Out, "== %s: %s ==\n", e.ID, e.Title)
	res, err := e.Run(r)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(r.cfg.Out, res.String())
	return res, nil
}

// textTable renders rows of cells with aligned columns.
func textTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb []byte
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb = append(sb, ' ', ' ')
			}
			sb = append(sb, c...)
			for p := len(c); p < widths[i]; p++ {
				sb = append(sb, ' ')
			}
		}
		sb = append(sb, '\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		for p := 0; p < widths[i]; p++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return string(sb)
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.0f%%", 100*v)
}
