package experiments

import (
	"fmt"

	"repro/internal/core"
)

// ------------------------------------------------------------------ fig1a

// CostComparisonResult holds a bar chart's data: per dataset, the mean
// number of UDF evaluations per algorithm.
type CostComparisonResult struct {
	Title      string
	Algorithms []string
	Datasets   []string
	// Evals[d][a] is the mean evaluation count of algorithm a on dataset d.
	Evals [][]float64
}

func (c *CostComparisonResult) String() string {
	header := append([]string{"dataset"}, c.Algorithms...)
	rows := make([][]string, len(c.Datasets))
	for i, d := range c.Datasets {
		row := []string{d}
		for _, v := range c.Evals[i] {
			row = append(row, f0(v))
		}
		rows[i] = row
	}
	return textTable(header, rows)
}

func runFig1a(r *Runner) (fmt.Stringer, error) {
	iters := r.iters(50)
	cons := r.cons()
	res := &CostComparisonResult{
		Title:      "Figure 1(a)",
		Algorithms: []string{"naive", "intel-sample", "optimal"},
	}
	for _, name := range DatasetNames() {
		d, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		rng := r.rng(hash("fig1a" + name))
		var naive, intel, optimal average
		for i := 0; i < iters; i++ {
			o, err := runNaive(d, cons, rng.Split())
			if err != nil {
				return nil, err
			}
			naive.add(o)
			o, err = runIntel(d, cons, nil, rng.Split())
			if err != nil {
				return nil, err
			}
			intel.add(o)
			o, err = runOptimal(d, cons, rng.Split())
			if err != nil {
				return nil, err
			}
			optimal.add(o)
		}
		res.Datasets = append(res.Datasets, name)
		res.Evals = append(res.Evals, []float64{naive.meanEvals(), intel.meanEvals(), optimal.meanEvals()})
	}
	return res, nil
}

// ------------------------------------------------------------------ fig1b

func runFig1b(r *Runner) (fmt.Stringer, error) {
	iters := r.iters(5)
	cons := r.cons()
	res := &CostComparisonResult{
		Title:      "Figure 1(b)",
		Algorithms: []string{"learning", "multiple", "intel-sample"},
	}
	for _, name := range DatasetNames() {
		d, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		features, err := mlFeatures(d)
		if err != nil {
			return nil, err
		}
		rng := r.rng(hash("fig1b" + name))
		var learning, multiple, intel average
		for i := 0; i < iters; i++ {
			o, err := runLearning(d, cons, features, rng.Split())
			if err != nil {
				return nil, err
			}
			learning.add(o)
			o, err = runMultiple(d, cons, features, rng.Split())
			if err != nil {
				return nil, err
			}
			multiple.add(o)
			o, err = runIntel(d, cons, nil, rng.Split())
			if err != nil {
				return nil, err
			}
			intel.add(o)
		}
		res.Datasets = append(res.Datasets, name)
		res.Evals = append(res.Evals, []float64{learning.meanEvals(), multiple.meanEvals(), intel.meanEvals()})
	}
	return res, nil
}

// ------------------------------------------------------------------ fig1c

// SweepResult is a line chart: per dataset (series), the mean evaluation
// (or retrieval) count at each x value.
type SweepResult struct {
	Title  string
	XLabel string
	X      []float64
	Series []string
	// Y[s][x] is the metric of series s at X[x].
	Y [][]float64
}

func (s *SweepResult) String() string {
	header := append([]string{s.XLabel}, s.Series...)
	rows := make([][]string, len(s.X))
	for i := range s.X {
		row := []string{f2(s.X[i])}
		for _, series := range s.Y {
			row = append(row, f0(series[i]))
		}
		rows[i] = row
	}
	return textTable(header, rows)
}

func runFig1c(r *Runner) (fmt.Stringer, error) {
	iters := r.iters(5)
	cons := r.cons()
	nums := []float64{0.5, 1, 2, 3, 4, 6, 8, 10, 12, 14}
	res := &SweepResult{
		Title:  "Figure 1(c)",
		XLabel: "num (two-third-power, logistic-regression buckets)",
		X:      nums,
	}
	for _, name := range DatasetNames() {
		d, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		features, err := mlFeatures(d)
		if err != nil {
			return nil, err
		}
		rng := r.rng(hash("fig1c" + name))
		ys := make([]float64, len(nums))
		for xi, num := range nums {
			var agg average
			for i := 0; i < iters; i++ {
				o, err := runIntelVirtual(d, cons, num, rng.Split(), features)
				if err != nil {
					return nil, err
				}
				agg.add(o)
			}
			ys[xi] = agg.meanEvals()
		}
		res.Series = append(res.Series, name)
		res.Y = append(res.Y, ys)
	}
	return res, nil
}

// ------------------------------------------------------------- fig2a/fig2b

// AccuracyResult is Figures 2(a)/2(b): per dataset, the fraction of runs
// whose precision (or recall) constraint was satisfied, per ρ value.
type AccuracyResult struct {
	Title  string
	Metric string // "precision" or "recall"
	Rhos   []float64
	Series []string
	// Rate[s][r] is the satisfaction rate of series s at Rhos[r].
	Rate [][]float64
}

func (a *AccuracyResult) String() string {
	header := append([]string{"rho"}, a.Series...)
	rows := make([][]string, len(a.Rhos))
	for i := range a.Rhos {
		row := []string{f2(a.Rhos[i])}
		for _, series := range a.Rate {
			row = append(row, f2(series[i]))
		}
		rows[i] = row
	}
	return textTable(header, rows)
}

// MinRate returns the worst satisfaction-rate margin over all series and
// ρ values: min over cells of (rate − ρ). Nonnegative means the guarantee
// held everywhere.
func (a *AccuracyResult) MinRate() float64 {
	worst := 1.0
	for _, series := range a.Rate {
		for i, rate := range series {
			if m := rate - a.Rhos[i]; m < worst {
				worst = m
			}
		}
	}
	return worst
}

func runAccuracy(r *Runner, metric string) (fmt.Stringer, error) {
	iters := r.iters(100)
	rhos := []float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95}
	res := &AccuracyResult{Title: "Figure 2(a/b)", Metric: metric, Rhos: rhos}
	for _, name := range DatasetNames() {
		d, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		rng := r.rng(hash("fig2" + metric + name))
		rates := make([]float64, len(rhos))
		for ri, rho := range rhos {
			cons := core.Constraints{Alpha: r.cfg.Alpha, Beta: r.cfg.Beta, Rho: rho}
			var agg average
			for i := 0; i < iters; i++ {
				o, err := runIntel(d, cons, nil, rng.Split())
				if err != nil {
					return nil, err
				}
				agg.add(o)
			}
			if metric == "precision" {
				rates[ri] = agg.precRate()
			} else {
				rates[ri] = agg.recallRate()
			}
		}
		res.Series = append(res.Series, name)
		res.Rate = append(res.Rate, rates)
	}
	return res, nil
}

func runFig2a(r *Runner) (fmt.Stringer, error) { return runAccuracy(r, "precision") }
func runFig2b(r *Runner) (fmt.Stringer, error) { return runAccuracy(r, "recall") }

// ------------------------------------------------------------------ fig2c

func runFig2c(r *Runner) (fmt.Stringer, error) {
	iters := r.iters(50)
	alphas := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	ratios := []float64{2.5, 3.5, 4.5}
	d, err := r.Dataset("lc")
	if err != nil {
		return nil, err
	}
	res := &SweepResult{Title: "Figure 2(c)", XLabel: "alpha", X: alphas}
	rng := r.rng(hash("fig2c"))
	for _, ratio := range ratios {
		ys := make([]float64, len(alphas))
		for xi, alpha := range alphas {
			cons := core.Constraints{Alpha: alpha, Beta: r.cfg.Beta, Rho: r.cfg.Rho}
			alloc := core.TwoThirdPowerAllocator{Num: ratio * alpha}
			var agg average
			for i := 0; i < iters; i++ {
				o, err := runIntel(d, cons, alloc, rng.Split())
				if err != nil {
					return nil, err
				}
				agg.add(o)
			}
			ys[xi] = agg.meanEvals()
		}
		res.Series = append(res.Series, fmt.Sprintf("num/alpha=%.1f", ratio))
		res.Y = append(res.Y, ys)
	}
	return res, nil
}

// ------------------------------------------------------------------ fig3a

func runFig3a(r *Runner) (fmt.Stringer, error) {
	iters := r.iters(20)
	cons := r.cons()
	cs := []int{50, 100, 250, 500, 1000, 2000, 3500, 5000}
	res := &SweepResult{Title: "Figure 3(a)", XLabel: "c (tuples sampled per group)"}
	for _, c := range cs {
		res.X = append(res.X, float64(c))
	}
	for _, name := range DatasetNames() {
		d, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		rng := r.rng(hash("fig3a" + name))
		ys := make([]float64, len(cs))
		for xi, c := range cs {
			// Constant c scales with the dataset scale so reduced runs
			// sweep the same relative range.
			scaled := int(float64(c)*r.cfg.Scale + 0.5)
			if scaled < 1 {
				scaled = 1
			}
			var agg average
			for i := 0; i < iters; i++ {
				o, err := runIntel(d, cons, core.ConstantAllocator{C: scaled}, rng.Split())
				if err != nil {
					return nil, err
				}
				agg.add(o)
			}
			ys[xi] = agg.meanEvals()
		}
		res.Series = append(res.Series, name)
		res.Y = append(res.Y, ys)
	}
	return res, nil
}

// ------------------------------------------------------------------ fig3b

func runFig3b(r *Runner) (fmt.Stringer, error) {
	iters := r.iters(20)
	cons := r.cons()
	nums := []float64{0.5, 1, 2, 3, 4, 6, 8, 10, 12, 14, 16}
	res := &SweepResult{Title: "Figure 3(b)", XLabel: "num (two-third-power)", X: nums}
	for _, name := range DatasetNames() {
		d, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		rng := r.rng(hash("fig3b" + name))
		ys := make([]float64, len(nums))
		for xi, num := range nums {
			var agg average
			for i := 0; i < iters; i++ {
				o, err := runIntel(d, cons, core.TwoThirdPowerAllocator{Num: num}, rng.Split())
				if err != nil {
					return nil, err
				}
				agg.add(o)
			}
			ys[xi] = agg.meanEvals()
		}
		res.Series = append(res.Series, name)
		res.Y = append(res.Y, ys)
	}
	return res, nil
}

// ------------------------------------------------------------------ fig3c

func runFig3c(r *Runner) (fmt.Stringer, error) {
	iters := r.iters(50)
	betas := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	nums := []float64{2.5, 3.5, 4.5}
	d, err := r.Dataset("lc")
	if err != nil {
		return nil, err
	}
	res := &SweepResult{Title: "Figure 3(c)", XLabel: "beta (metric: retrievals)", X: betas}
	rng := r.rng(hash("fig3c"))
	for _, num := range nums {
		ys := make([]float64, len(betas))
		for xi, beta := range betas {
			cons := core.Constraints{Alpha: r.cfg.Alpha, Beta: beta, Rho: r.cfg.Rho}
			alloc := core.TwoThirdPowerAllocator{Num: num * r.cfg.Alpha}
			var agg average
			for i := 0; i < iters; i++ {
				o, err := runIntel(d, cons, alloc, rng.Split())
				if err != nil {
					return nil, err
				}
				agg.add(o)
			}
			ys[xi] = agg.meanRetrievals()
		}
		res.Series = append(res.Series, fmt.Sprintf("num=%.1f", num))
		res.Y = append(res.Y, ys)
	}
	return res, nil
}

func init() {
	register(Experiment{ID: "fig1a", Title: "Evaluations: Naive vs Intel-Sample vs Optimal (Figure 1a)", Run: runFig1a})
	register(Experiment{ID: "fig1b", Title: "Evaluations vs ML baselines (Figure 1b)", Run: runFig1b})
	register(Experiment{ID: "fig1c", Title: "Logistic-regression virtual column sweep (Figure 1c)", Run: runFig1c})
	register(Experiment{ID: "fig2a", Title: "Precision satisfaction vs rho (Figure 2a)", Run: runFig2a})
	register(Experiment{ID: "fig2b", Title: "Recall satisfaction vs rho (Figure 2b)", Run: runFig2b})
	register(Experiment{ID: "fig2c", Title: "Evaluations vs alpha (Figure 2c)", Run: runFig2c})
	register(Experiment{ID: "fig3a", Title: "Constant-sampling sweep (Figure 3a)", Run: runFig3a})
	register(Experiment{ID: "fig3b", Title: "Two-third-power sweep (Figure 3b)", Run: runFig3b})
	register(Experiment{ID: "fig3c", Title: "Retrievals vs beta (Figure 3c)", Run: runFig3c})
}
