package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
)

// Experiments beyond the numbered tables/figures: the §6.2.1 column
// robustness study, the §4.3 adaptive sampler, and the ablations DESIGN.md
// calls out.

// ---------------------------------------------------------------- columns

// ColumnRobustnessResult reproduces the §6.2.1 study: Intel-Sample run
// with each candidate predictor column of the LC dataset.
type ColumnRobustnessResult struct {
	Columns []string
	Evals   []float64 // aligned with Columns, ascending
	Naive   float64
}

func (c *ColumnRobustnessResult) String() string {
	rows := make([][]string, len(c.Columns))
	for i := range c.Columns {
		rows[i] = []string{c.Columns[i], f0(c.Evals[i])}
	}
	out := textTable([]string{"column", "evaluations"}, rows)
	return out + fmt.Sprintf("naive reference: %.0f\n", c.Naive)
}

// BestWorst returns the extreme mean evaluation counts.
func (c *ColumnRobustnessResult) BestWorst() (best, worst float64) {
	if len(c.Evals) == 0 {
		return 0, 0
	}
	return c.Evals[0], c.Evals[len(c.Evals)-1]
}

func runColumns(r *Runner) (fmt.Stringer, error) {
	iters := r.iters(5)
	cons := r.cons()
	d, err := r.Dataset("lc")
	if err != nil {
		return nil, err
	}
	// Candidate columns: the true predictor, its coarsening, and the noisy
	// extra predictors.
	cols := []string{d.Spec.Predictor, "coarse_" + d.Spec.Predictor}
	for j := 0; j < d.Spec.ExtraPredictors; j++ {
		cols = append(cols, fmt.Sprintf("pred_%02d", j))
	}
	rng := r.rng(hash("columns"))
	type colEval struct {
		name  string
		evals float64
	}
	results := make([]colEval, 0, len(cols))
	for _, col := range cols {
		groups, err := d.Groups(col)
		if err != nil {
			return nil, err
		}
		var agg average
		for i := 0; i < iters; i++ {
			in := core.Instance{Groups: groups, UDF: core.NewMeter(d.UDF()), Cons: cons, Cost: core.DefaultCost}
			res, err := core.RunIntelSample(in, core.RunOptions{RNG: rng.Split()})
			if err != nil {
				return nil, err
			}
			agg.add(outcomeFromRun(d, cons, res))
		}
		results = append(results, colEval{col, agg.meanEvals()})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].evals < results[j].evals })

	var naive average
	for i := 0; i < iters; i++ {
		o, err := runNaive(d, cons, rng.Split())
		if err != nil {
			return nil, err
		}
		naive.add(o)
	}
	out := &ColumnRobustnessResult{Naive: naive.meanEvals()}
	for _, ce := range results {
		out.Columns = append(out.Columns, ce.name)
		out.Evals = append(out.Evals, ce.evals)
	}
	return out, nil
}

// --------------------------------------------------------------- adaptive

// AdaptiveResult reports the §4.3 adaptive num search per dataset.
type AdaptiveResult struct {
	Datasets      []string
	ChosenNum     []float64
	AdaptiveEvals []float64
	FixedEvals    []float64 // fixed num = 2.5α reference
}

func (a *AdaptiveResult) String() string {
	rows := make([][]string, len(a.Datasets))
	for i := range a.Datasets {
		rows[i] = []string{
			a.Datasets[i], f2(a.ChosenNum[i]), f0(a.AdaptiveEvals[i]), f0(a.FixedEvals[i]),
		}
	}
	return textTable([]string{"dataset", "chosen num", "adaptive evals", "fixed-num evals"}, rows)
}

func runAdaptive(r *Runner) (fmt.Stringer, error) {
	iters := r.iters(5)
	cons := r.cons()
	res := &AdaptiveResult{}
	for _, name := range DatasetNames() {
		d, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		rng := r.rng(hash("adaptive" + name))
		var adaptive, fixed average
		numSum := 0.0
		for i := 0; i < iters; i++ {
			in, err := d.Instance(cons, core.DefaultCost)
			if err != nil {
				return nil, err
			}
			// Run the adaptive search manually to capture the chosen num.
			meter := core.NewMeter(d.UDF())
			in.UDF = meter
			sampler := core.NewSampler(in.Groups, meter, rng.Split())
			num, err := core.AdaptiveTwoThirdPower(sampler, cons, core.DefaultCost, core.AdaptiveOptions{})
			if err != nil {
				return nil, err
			}
			numSum += num
			strat, err := core.PlanWithSamples(sampler.Infos(), cons, core.DefaultCost)
			if err != nil {
				return nil, err
			}
			exec, err := core.Execute(in.Groups, strat, sampler.Outcomes(), meter, core.DefaultCost, rng.Split())
			if err != nil {
				return nil, err
			}
			m := core.ComputeMetrics(exec.Output, d.Truth(), d.TotalCorrect())
			pOK, rOK := m.Satisfies(cons)
			adaptive.add(AlgoOutcome{
				Evaluations: meter.Calls(),
				Retrievals:  sampler.TotalSampled() + exec.Retrieved,
				Precision:   m.Precision, Recall: m.Recall,
				SatisfiedP: pOK, SatisfiedR: rOK,
			})

			o, err := runIntel(d, cons, nil, rng.Split())
			if err != nil {
				return nil, err
			}
			fixed.add(o)
		}
		res.Datasets = append(res.Datasets, name)
		res.ChosenNum = append(res.ChosenNum, numSum/float64(iters))
		res.AdaptiveEvals = append(res.AdaptiveEvals, adaptive.meanEvals())
		res.FixedEvals = append(res.FixedEvals, fixed.meanEvals())
	}
	return res, nil
}

// -------------------------------------------------------------- ablations

// SolverAblationResult compares the fixed-point and projected-gradient
// convex planners on the same estimated instances.
type SolverAblationResult struct {
	Datasets     []string
	FixedCost    []float64
	GradientCost []float64
	FixedTime    []time.Duration
	GradientTime []time.Duration
}

func (s *SolverAblationResult) String() string {
	rows := make([][]string, len(s.Datasets))
	for i := range s.Datasets {
		rows[i] = []string{
			s.Datasets[i],
			f0(s.FixedCost[i]), f0(s.GradientCost[i]),
			s.FixedTime[i].String(), s.GradientTime[i].String(),
		}
	}
	return textTable([]string{"dataset", "fixed-point cost", "gradient cost", "fp time", "grad time"}, rows)
}

func runSolverAblation(r *Runner) (fmt.Stringer, error) {
	cons := r.cons()
	res := &SolverAblationResult{}
	for _, name := range DatasetNames() {
		d, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		rng := r.rng(hash("solverabl" + name))
		groups, err := d.PredictorGroups()
		if err != nil {
			return nil, err
		}
		meter := core.NewMeter(d.UDF())
		sampler := core.NewSampler(groups, meter, rng.Split())
		sizes := make([]int, len(groups))
		for i, g := range groups {
			sizes[i] = len(g.Rows)
		}
		if _, err := sampler.TopUp((core.TwoThirdPowerAllocator{Num: 2.5 * cons.Alpha}).Allocate(sizes)); err != nil {
			return nil, err
		}
		infos := sampler.Infos()

		t0 := time.Now()
		sFP, err := core.PlanWithSamples(infos, cons, core.DefaultCost)
		if err != nil {
			return nil, err
		}
		fpTime := time.Since(t0)
		t0 = time.Now()
		sGrad, err := core.PlanEstimatedGradient(infos, cons, core.DefaultCost, core.IndependentGroups)
		if err != nil {
			return nil, err
		}
		gradTime := time.Since(t0)

		res.Datasets = append(res.Datasets, name)
		res.FixedCost = append(res.FixedCost, sFP.ExpectedCost(infos, core.DefaultCost))
		res.GradientCost = append(res.GradientCost, sGrad.ExpectedCost(infos, core.DefaultCost))
		res.FixedTime = append(res.FixedTime, fpTime)
		res.GradientTime = append(res.GradientTime, gradTime)
	}
	return res, nil
}

// BoundAblationResult compares the two correlation bounds' plan costs.
type BoundAblationResult struct {
	Datasets    []string
	Independent []float64
	Unknown     []float64
}

func (b *BoundAblationResult) String() string {
	rows := make([][]string, len(b.Datasets))
	for i := range b.Datasets {
		rows[i] = []string{b.Datasets[i], f0(b.Independent[i]), f0(b.Unknown[i])}
	}
	return textTable([]string{"dataset", "independent cost", "unknown-corr cost"}, rows)
}

func runBoundAblation(r *Runner) (fmt.Stringer, error) {
	cons := r.cons()
	res := &BoundAblationResult{}
	for _, name := range DatasetNames() {
		d, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		rng := r.rng(hash("boundabl" + name))
		groups, err := d.PredictorGroups()
		if err != nil {
			return nil, err
		}
		meter := core.NewMeter(d.UDF())
		sampler := core.NewSampler(groups, meter, rng.Split())
		sizes := make([]int, len(groups))
		for i, g := range groups {
			sizes[i] = len(g.Rows)
		}
		if _, err := sampler.TopUp((core.TwoThirdPowerAllocator{Num: 2.5 * cons.Alpha}).Allocate(sizes)); err != nil {
			return nil, err
		}
		infos := sampler.Infos()
		sInd, err := core.PlanEstimated(infos, cons, core.DefaultCost, core.IndependentGroups)
		if err != nil {
			return nil, err
		}
		sUnk, err := core.PlanEstimated(infos, cons, core.DefaultCost, core.UnknownCorrelations)
		if err != nil {
			return nil, err
		}
		res.Datasets = append(res.Datasets, name)
		res.Independent = append(res.Independent, sInd.ExpectedCost(infos, core.DefaultCost))
		res.Unknown = append(res.Unknown, sUnk.ExpectedCost(infos, core.DefaultCost))
	}
	return res, nil
}

// MarginAblationResult shows what the Hoeffding/Chebyshev margins buy:
// plan cost and empirical satisfaction with margins on (the real planner)
// vs off (ρ→0, expectation-level planning like the Naive baseline).
type MarginAblationResult struct {
	Datasets     []string
	WithCost     []float64
	WithoutCost  []float64
	WithBothOK   []float64 // fraction of runs satisfying both constraints
	WithoutBothO []float64
}

func (m *MarginAblationResult) String() string {
	rows := make([][]string, len(m.Datasets))
	for i := range m.Datasets {
		rows[i] = []string{
			m.Datasets[i], f0(m.WithCost[i]), f0(m.WithoutCost[i]),
			f2(m.WithBothOK[i]), f2(m.WithoutBothO[i]),
		}
	}
	return textTable([]string{"dataset", "cost w/ margins", "cost w/o", "satisfied w/", "satisfied w/o"}, rows)
}

func runMarginAblation(r *Runner) (fmt.Stringer, error) {
	iters := r.iters(30)
	res := &MarginAblationResult{}
	for _, name := range DatasetNames() {
		d, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		rng := r.rng(hash("marginabl" + name))
		with := core.Constraints{Alpha: r.cfg.Alpha, Beta: r.cfg.Beta, Rho: r.cfg.Rho}
		without := core.Constraints{Alpha: r.cfg.Alpha, Beta: r.cfg.Beta, Rho: 0.01}
		var aggWith, aggWithout average
		var bothWith, bothWithout int
		for i := 0; i < iters; i++ {
			o, err := runIntel(d, with, nil, rng.Split())
			if err != nil {
				return nil, err
			}
			aggWith.add(o)
			if o.SatisfiedP && o.SatisfiedR {
				bothWith++
			}
			o, err = runIntel(d, without, nil, rng.Split())
			if err != nil {
				return nil, err
			}
			aggWithout.add(o)
			if o.SatisfiedP && o.SatisfiedR {
				bothWithout++
			}
		}
		res.Datasets = append(res.Datasets, name)
		res.WithCost = append(res.WithCost, aggWith.cost.Mean())
		res.WithoutCost = append(res.WithoutCost, aggWithout.cost.Mean())
		res.WithBothOK = append(res.WithBothOK, float64(bothWith)/float64(iters))
		res.WithoutBothO = append(res.WithoutBothO, float64(bothWithout)/float64(iters))
	}
	return res, nil
}

func init() {
	register(Experiment{ID: "columns", Title: "Column robustness on LC (§6.2.1)", Run: runColumns})
	register(Experiment{ID: "adaptive", Title: "Adaptive sampling parameter search (§4.3)", Run: runAdaptive})
	register(Experiment{ID: "ablation-solver", Title: "Fixed-point vs projected-gradient planner", Run: runSolverAblation})
	register(Experiment{ID: "ablation-bound", Title: "Independent vs unknown-correlation bound", Run: runBoundAblation})
	register(Experiment{ID: "ablation-margin", Title: "Concentration margins on vs off", Run: runMarginAblation})
}
