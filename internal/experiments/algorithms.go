package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/stats"
)

// Shared per-algorithm run helpers. Every helper returns an AlgoOutcome so
// the experiments can aggregate evaluations, retrievals, cost and
// constraint satisfaction uniformly.

// AlgoOutcome is one algorithm run's accounting.
type AlgoOutcome struct {
	Evaluations int
	Retrievals  int
	Cost        float64
	Precision   float64
	Recall      float64
	SatisfiedP  bool
	SatisfiedR  bool
}

func outcomeFromRun(d *dataset.Dataset, cons core.Constraints, res core.RunResult) AlgoOutcome {
	m := core.ComputeMetrics(res.Output, d.Truth(), d.TotalCorrect())
	pOK, rOK := m.Satisfies(cons)
	return AlgoOutcome{
		Evaluations: res.TotalEvaluations,
		Retrievals:  res.TotalRetrievals,
		Cost:        res.TotalCost,
		Precision:   m.Precision,
		Recall:      m.Recall,
		SatisfiedP:  pOK,
		SatisfiedR:  rOK,
	}
}

// runIntel runs the Intel-Sample pipeline with the given allocator (nil =
// the default TwoThirdPower(2.5α)).
func runIntel(d *dataset.Dataset, cons core.Constraints, alloc core.Allocator, rng *stats.RNG) (AlgoOutcome, error) {
	in, err := d.Instance(cons, core.DefaultCost)
	if err != nil {
		return AlgoOutcome{}, err
	}
	res, err := core.RunIntelSample(in, core.RunOptions{Alloc: alloc, RNG: rng})
	if err != nil {
		return AlgoOutcome{}, err
	}
	return outcomeFromRun(d, cons, res), nil
}

// runOptimal runs the perfect-selectivity reference ("Optimal").
func runOptimal(d *dataset.Dataset, cons core.Constraints, rng *stats.RNG) (AlgoOutcome, error) {
	in, err := d.Instance(cons, core.DefaultCost)
	if err != nil {
		return AlgoOutcome{}, err
	}
	res, err := core.RunPerfectSelectivities(in, d.Truth(), rng)
	if err != nil {
		return AlgoOutcome{}, err
	}
	return outcomeFromRun(d, cons, res), nil
}

// runNaive runs the Naive baseline.
func runNaive(d *dataset.Dataset, cons core.Constraints, rng *stats.RNG) (AlgoOutcome, error) {
	in, err := d.Instance(cons, core.DefaultCost)
	if err != nil {
		return AlgoOutcome{}, err
	}
	res, err := core.RunNaive(in, rng)
	if err != nil {
		return AlgoOutcome{}, err
	}
	return outcomeFromRun(d, cons, res), nil
}

// mlFeatures encodes the dataset's feature columns for the ML baselines,
// excluding the row id and the many noisy extra predictors (which would
// slow training without matching the paper's feature set).
func mlFeatures(d *dataset.Dataset) ([][]float64, error) {
	exclude := []string{"id"}
	for i := 0; i < d.Spec.ExtraPredictors; i++ {
		exclude = append(exclude, fmt.Sprintf("pred_%02d", i))
	}
	enc, err := ml.BuildEncoder(d.Table, ml.Encoder{Exclude: exclude})
	if err != nil {
		return nil, err
	}
	return enc.EncodeAll(d.Table), nil
}

func mlOpts() core.MLBaselineOptions {
	return core.MLBaselineOptions{InitialFraction: 0.02, GrowthFactor: 1.6}
}

func mlClassifier() *ml.SelfTraining {
	return &ml.SelfTraining{Rounds: 1, Model: ml.LogisticRegression{Epochs: 60}}
}

// runLearning runs the semi-supervised Learning baseline.
func runLearning(d *dataset.Dataset, cons core.Constraints, features [][]float64, rng *stats.RNG) (AlgoOutcome, error) {
	in, err := d.Instance(cons, core.DefaultCost)
	if err != nil {
		return AlgoOutcome{}, err
	}
	res, err := core.RunLearning(in, features, mlClassifier(), d.Truth(), rng, mlOpts())
	if err != nil {
		return AlgoOutcome{}, err
	}
	return outcomeFromRun(d, cons, res), nil
}

// runMultiple runs the multiple-imputations baseline.
func runMultiple(d *dataset.Dataset, cons core.Constraints, features [][]float64, rng *stats.RNG) (AlgoOutcome, error) {
	in, err := d.Instance(cons, core.DefaultCost)
	if err != nil {
		return AlgoOutcome{}, err
	}
	res, err := core.RunMultiple(in, features, mlClassifier(), d.Truth(), rng, mlOpts())
	if err != nil {
		return AlgoOutcome{}, err
	}
	return outcomeFromRun(d, cons, res), nil
}

// runIntelVirtual runs Intel-Sample over the logistic-regression virtual
// column (Section 6.3.2): label 1%, train, bucket scores into 10 groups,
// then sample/plan/execute as usual. The 1% training labels are preloaded
// into the sampler so they are charged once and reused.
func runIntelVirtual(d *dataset.Dataset, cons core.Constraints, num float64, rng *stats.RNG, features [][]float64) (AlgoOutcome, error) {
	meter := core.NewMeter(d.UDF())
	n := d.Table.NumRows()
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	labeled := core.LabelFraction(rows, 0.01, meter, rng)

	X := make([][]float64, 0, len(labeled))
	y := make([]bool, 0, len(labeled))
	for row, v := range labeled {
		X = append(X, features[row])
		y = append(y, v)
	}
	model := ml.LogisticRegression{Epochs: 80}
	if err := model.Fit(X, y); err != nil {
		return AlgoOutcome{}, err
	}
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = model.Prob(features[i])
	}
	buckets := ml.EqualFrequencyBuckets(scores, 10)
	byBucket := make([][]int, 10)
	for row, b := range buckets {
		byBucket[b] = append(byBucket[b], row)
	}
	var groups []core.Group
	for b, rws := range byBucket {
		if len(rws) == 0 {
			continue
		}
		groups = append(groups, core.Group{Key: fmt.Sprintf("b%02d", b), Rows: rws})
	}

	sampler := core.NewSampler(groups, meter, rng.Split())
	sampler.Preload(labeled)
	sizes := make([]int, len(groups))
	for i, g := range groups {
		sizes[i] = len(g.Rows)
	}
	if _, err := sampler.TopUp((core.TwoThirdPowerAllocator{Num: num}).Allocate(sizes)); err != nil {
		return AlgoOutcome{}, err
	}
	strat, err := core.PlanWithSamples(sampler.Infos(), cons, core.DefaultCost)
	if err != nil {
		return AlgoOutcome{}, err
	}
	exec, err := core.Execute(groups, strat, sampler.Outcomes(), meter, core.DefaultCost, rng.Split())
	if err != nil {
		return AlgoOutcome{}, err
	}
	m := core.ComputeMetrics(exec.Output, d.Truth(), d.TotalCorrect())
	pOK, rOK := m.Satisfies(cons)
	retr := sampler.TotalSampled() + exec.Retrieved
	return AlgoOutcome{
		Evaluations: meter.Calls(),
		Retrievals:  retr,
		Cost:        float64(meter.Calls())*core.DefaultCost.Evaluate + float64(retr)*core.DefaultCost.Retrieve,
		Precision:   m.Precision,
		Recall:      m.Recall,
		SatisfiedP:  pOK,
		SatisfiedR:  rOK,
	}, nil
}

// average aggregates outcomes.
type average struct {
	evals, retrievals, cost stats.Welford
	precOK, recallOK        int
	n                       int
}

func (a *average) add(o AlgoOutcome) {
	a.evals.Add(float64(o.Evaluations))
	a.retrievals.Add(float64(o.Retrievals))
	a.cost.Add(o.Cost)
	if o.SatisfiedP {
		a.precOK++
	}
	if o.SatisfiedR {
		a.recallOK++
	}
	a.n++
}

func (a *average) meanEvals() float64      { return a.evals.Mean() }
func (a *average) meanRetrievals() float64 { return a.retrievals.Mean() }
func (a *average) precRate() float64 {
	if a.n == 0 {
		return 0
	}
	return float64(a.precOK) / float64(a.n)
}
func (a *average) recallRate() float64 {
	if a.n == 0 {
		return 0
	}
	return float64(a.recallOK) / float64(a.n)
}
