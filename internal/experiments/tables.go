package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/solver"
)

// ---------------------------------------------------------------- table1

// Table1Result reproduces the Section 2 worked example (Table 1): a
// 12-tuple relation with three groups, solved exactly with the
// perfect-information optimizer.
type Table1Result struct {
	Groups  []core.PerfectInfoGroup
	Actions []solver.Action
	Cost    float64
}

func (t *Table1Result) String() string {
	rows := make([][]string, len(t.Groups))
	for i, g := range t.Groups {
		rows[i] = []string{
			g.Key,
			fmt.Sprintf("%d", g.Correct+g.Wrong),
			fmt.Sprintf("%d", g.Correct),
			t.Actions[i].String(),
		}
	}
	return textTable([]string{"A", "tuples", "correct", "action"}, rows) +
		fmt.Sprintf("optimal cost: %.0f\n", t.Cost)
}

func runTable1(r *Runner) (fmt.Stringer, error) {
	// Table 1 of the paper: A=1 has 4/4 correct, A=2 has 1/3, A=3 has 1/5.
	groups := []core.PerfectInfoGroup{
		{Key: "1", Correct: 4, Wrong: 0},
		{Key: "2", Correct: 1, Wrong: 2},
		{Key: "3", Correct: 1, Wrong: 4},
	}
	plan, err := core.SolvePerfectInformation(groups, core.Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}, core.DefaultCost)
	if err != nil {
		return nil, err
	}
	return &Table1Result{Groups: groups, Actions: plan.Actions, Cost: plan.Cost}, nil
}

// ---------------------------------------------------------------- table2

// Table2Row is one dataset's line of Table 2.
type Table2Row struct {
	Dataset         string
	Selectivity     float64
	NaiveEvals      float64
	IntelEvals      float64
	BestMLEvals     float64
	SavingsVsNaive  float64 // 1 − intel/naive
	SavingsVsBestML float64 // 1 − intel/bestML
}

// Table2Result reproduces Table 2: selectivities and savings per dataset.
type Table2Result struct{ Rows []Table2Row }

func (t *Table2Result) String() string {
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []string{
			r.Dataset, f2(r.Selectivity),
			f0(r.NaiveEvals), f0(r.IntelEvals), f0(r.BestMLEvals),
			pct(r.SavingsVsNaive), pct(r.SavingsVsBestML),
		}
	}
	return textTable(
		[]string{"dataset", "selectivity", "naive", "intel-sample", "best-ml", "vs naive", "vs ml"},
		rows)
}

func runTable2(r *Runner) (fmt.Stringer, error) {
	iters := r.iters(10)
	mlIters := iters
	if mlIters > 5 {
		mlIters = 5 // the ML baselines are far slower; average fewer runs
	}
	cons := r.cons()
	res := &Table2Result{}
	for _, name := range DatasetNames() {
		d, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		rng := r.rng(hash(name))
		var naive, intel, learning, multiple average
		for i := 0; i < iters; i++ {
			o, err := runNaive(d, cons, rng.Split())
			if err != nil {
				return nil, err
			}
			naive.add(o)
			o, err = runIntel(d, cons, nil, rng.Split())
			if err != nil {
				return nil, err
			}
			intel.add(o)
		}
		features, err := mlFeatures(d)
		if err != nil {
			return nil, err
		}
		for i := 0; i < mlIters; i++ {
			o, err := runLearning(d, cons, features, rng.Split())
			if err != nil {
				return nil, err
			}
			learning.add(o)
			o, err = runMultiple(d, cons, features, rng.Split())
			if err != nil {
				return nil, err
			}
			multiple.add(o)
		}
		bestML := learning.meanEvals()
		if multiple.meanEvals() < bestML {
			bestML = multiple.meanEvals()
		}
		row := Table2Row{
			Dataset:     name,
			Selectivity: d.OverallSelectivity(),
			NaiveEvals:  naive.meanEvals(),
			IntelEvals:  intel.meanEvals(),
			BestMLEvals: bestML,
		}
		if row.NaiveEvals > 0 {
			row.SavingsVsNaive = 1 - row.IntelEvals/row.NaiveEvals
		}
		if row.BestMLEvals > 0 {
			row.SavingsVsBestML = 1 - row.IntelEvals/row.BestMLEvals
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// ---------------------------------------------------------------- table3

// Table3Row is one dataset's line of Table 3 (Appendix 10.8).
type Table3Row struct {
	Dataset     string
	NumGroups   int
	SizeDev     float64
	SelDev      float64
	Correlation float64
}

// Table3Result reproduces Table 3: group statistics per dataset.
type Table3Result struct{ Rows []Table3Row }

func (t *Table3Result) String() string {
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []string{
			r.Dataset, fmt.Sprintf("%d", r.NumGroups),
			f0(r.SizeDev), f2(r.SelDev), f2(r.Correlation),
		}
	}
	return textTable([]string{"dataset", "groups", "size dev", "sel dev", "corr"}, rows)
}

func runTable3(r *Runner) (fmt.Stringer, error) {
	res := &Table3Result{}
	for _, name := range DatasetNames() {
		d, err := r.Dataset(name)
		if err != nil {
			return nil, err
		}
		groups, sizeDev, selDev, corr := d.MeasuredStats()
		res.Rows = append(res.Rows, Table3Row{
			Dataset: name, NumGroups: groups,
			SizeDev: sizeDev, SelDev: selDev, Correlation: corr,
		})
	}
	return res, nil
}

func hash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func init() {
	register(Experiment{ID: "table1", Title: "Worked example (Table 1) solved exactly", Run: runTable1})
	register(Experiment{ID: "table2", Title: "Selectivities and savings per dataset (Table 2)", Run: runTable2})
	register(Experiment{ID: "table3", Title: "Group statistics per dataset (Table 3)", Run: runTable3})
}
