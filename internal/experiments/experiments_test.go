package experiments

import (
	"strings"
	"testing"
)

func tinyRunner() *Runner {
	return New(Config{Seed: 7, Scale: 0.02, Iterations: 2})
}

func TestAllExperimentsRun(t *testing.T) {
	r := tinyRunner()
	for _, id := range IDs() {
		res, err := r.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if strings.TrimSpace(res.String()) == "" {
			t.Fatalf("%s: empty rendering", id)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(IDs()) < 14 {
		t.Fatalf("registry has only %d experiments: %v", len(IDs()), IDs())
	}
}

func TestTable1ActionsMatchPaper(t *testing.T) {
	r := tinyRunner()
	res, err := r.Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	t1 := res.(*Table1Result)
	// Group 1 (all correct) must not be discarded; group 3 (1/5 correct)
	// must not be blindly retrieved.
	if t1.Actions[0].String() == "discard" {
		t.Fatalf("group 1 discarded: %v", t1.Actions)
	}
	if t1.Actions[2].String() == "retrieve" {
		t.Fatalf("group 3 blindly retrieved: %v", t1.Actions)
	}
	if t1.Cost <= 0 {
		t.Fatalf("cost %v", t1.Cost)
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	// Concentration margins cost Θ(√n) tuples regardless of n, so the
	// relative savings only emerge at sufficient scale; 10% of the paper's
	// sizes is enough for every dataset to show a positive margin.
	r := New(Config{Seed: 11, Scale: 0.1, Iterations: 3})
	res, err := r.Run("table2")
	if err != nil {
		t.Fatal(err)
	}
	t2 := res.(*Table2Result)
	if len(t2.Rows) != 4 {
		t.Fatalf("rows %d", len(t2.Rows))
	}
	byName := map[string]Table2Row{}
	for _, row := range t2.Rows {
		byName[row.Dataset] = row
		// Intel-Sample must always save versus Naive.
		if row.SavingsVsNaive <= 0 {
			t.Fatalf("%s: no savings vs naive (%+v)", row.Dataset, row)
		}
	}
	// The paper's key shape: savings vs naive are largest on LC (high
	// selectivity) and smallest on Marketing (low selectivity).
	if byName["lc"].SavingsVsNaive <= byName["marketing"].SavingsVsNaive {
		t.Fatalf("savings ordering inverted: lc %v vs marketing %v",
			byName["lc"].SavingsVsNaive, byName["marketing"].SavingsVsNaive)
	}
}

func TestTable3MatchesSpecs(t *testing.T) {
	r := New(Config{Seed: 3, Scale: 1}) // full scale: stats must match the paper
	res, err := r.Run("table3")
	if err != nil {
		t.Fatal(err)
	}
	t3 := res.(*Table3Result)
	want := map[string]Table3Row{
		"lc":        {NumGroups: 7, SizeDev: 5233, SelDev: 0.13, Correlation: 0.84},
		"prosper":   {NumGroups: 8, SizeDev: 1521, SelDev: 0.20, Correlation: 0.20},
		"census":    {NumGroups: 7, SizeDev: 8183, SelDev: 0.15, Correlation: 0.36},
		"marketing": {NumGroups: 10, SizeDev: 5070, SelDev: 0.20, Correlation: -0.65},
	}
	for _, row := range t3.Rows {
		w := want[row.Dataset]
		if row.NumGroups != w.NumGroups {
			t.Fatalf("%s groups %d want %d", row.Dataset, row.NumGroups, w.NumGroups)
		}
		if rel := row.SizeDev/w.SizeDev - 1; rel < -0.05 || rel > 0.05 {
			t.Fatalf("%s size dev %v want %v", row.Dataset, row.SizeDev, w.SizeDev)
		}
		if d := row.SelDev - w.SelDev; d < -0.03 || d > 0.03 {
			t.Fatalf("%s sel dev %v want %v", row.Dataset, row.SelDev, w.SelDev)
		}
		if d := row.Correlation - w.Correlation; d < -0.08 || d > 0.08 {
			t.Fatalf("%s corr %v want %v", row.Dataset, row.Correlation, w.Correlation)
		}
	}
}

func TestFig1aOrdering(t *testing.T) {
	r := New(Config{Seed: 13, Scale: 0.1, Iterations: 5})
	res, err := r.Run("fig1a")
	if err != nil {
		t.Fatal(err)
	}
	f := res.(*CostComparisonResult)
	for i, name := range f.Datasets {
		naive, intel, optimal := f.Evals[i][0], f.Evals[i][1], f.Evals[i][2]
		if intel >= naive {
			t.Fatalf("%s: intel %v not below naive %v", name, intel, naive)
		}
		// Optimal has free perfect knowledge; allow small statistical slop.
		if optimal > intel*1.15+50 {
			t.Fatalf("%s: optimal %v above intel %v", name, optimal, intel)
		}
	}
}

func TestFig2AccuracyAboveDiagonal(t *testing.T) {
	r := New(Config{Seed: 17, Scale: 0.05, Iterations: 12})
	for _, id := range []string{"fig2a", "fig2b"} {
		res, err := r.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		acc := res.(*AccuracyResult)
		// Allow sampling slack with only 12 runs per cell.
		if m := acc.MinRate(); m < -0.25 {
			t.Fatalf("%s: satisfaction rate dips %v below rho", id, m)
		}
	}
}

func TestColumnsBestIsTruePredictor(t *testing.T) {
	r := New(Config{Seed: 19, Scale: 0.04, Iterations: 2})
	res, err := r.Run("columns")
	if err != nil {
		t.Fatal(err)
	}
	c := res.(*ColumnRobustnessResult)
	best, worst := c.BestWorst()
	if best >= worst {
		t.Fatalf("no spread across columns: %v vs %v", best, worst)
	}
	// The true predictor or its near-noiseless copy should be among the
	// cheapest three columns.
	top := c.Columns
	if len(top) > 3 {
		top = top[:3]
	}
	found := false
	for _, name := range top {
		if name == "grade" || name == "pred_00" || name == "coarse_grade" {
			found = true
		}
	}
	if !found {
		t.Fatalf("true predictor not among cheapest columns: %v", top)
	}
	// Even the worst column must beat naive (§6.2.1's observation).
	if worst >= c.Naive {
		t.Fatalf("worst column %v not below naive %v", worst, c.Naive)
	}
}

func TestBoundAblationOrdering(t *testing.T) {
	r := New(Config{Seed: 23, Scale: 0.04})
	res, err := r.Run("ablation-bound")
	if err != nil {
		t.Fatal(err)
	}
	b := res.(*BoundAblationResult)
	for i := range b.Datasets {
		if b.Unknown[i] < b.Independent[i]-1e-6 {
			t.Fatalf("%s: unknown-corr plan cheaper than independent", b.Datasets[i])
		}
	}
}

func TestRunnerDatasetCache(t *testing.T) {
	r := tinyRunner()
	a, err := r.Dataset("lc")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Dataset("lc")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("dataset not cached")
	}
	if _, err := r.Dataset("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestTwoPredExtensionShape(t *testing.T) {
	r := New(Config{Seed: 29, Scale: 0.05, Iterations: 5})
	res, err := r.Run("ext-twopred")
	if err != nil {
		t.Fatal(err)
	}
	tp := res.(*TwoPredResult)
	if tp.PlannerCost >= tp.ShortCircuitCost {
		t.Fatalf("planner cost %v not below short-circuit %v", tp.PlannerCost, tp.ShortCircuitCost)
	}
	if tp.ShortCircuitCost >= tp.EvalBothCost {
		t.Fatalf("short-circuit %v not below eval-both %v", tp.ShortCircuitCost, tp.EvalBothCost)
	}
	if tp.SatisfiedRate < 0.6 {
		t.Fatalf("satisfaction rate %v", tp.SatisfiedRate)
	}
}

func TestMarginAblationShape(t *testing.T) {
	r := New(Config{Seed: 31, Scale: 0.05, Iterations: 10})
	res, err := r.Run("ablation-margin")
	if err != nil {
		t.Fatal(err)
	}
	m := res.(*MarginAblationResult)
	for i := range m.Datasets {
		// Margins must never make plans cheaper.
		if m.WithCost[i] < m.WithoutCost[i]-1e-6 {
			t.Fatalf("%s: margined plan cheaper than unmargined", m.Datasets[i])
		}
	}
}
