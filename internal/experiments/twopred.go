package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// The Section 5 two-predicate extension, exercised on a synthetic
// moderation-style workload: compare our per-group joint planner against
// (a) evaluating both predicates everywhere and (b) exact short-circuit
// evaluation (f2 only on f1 survivors).

// TwoPredResult reports the extension study.
type TwoPredResult struct {
	PlannerCost      float64
	ShortCircuitCost float64
	EvalBothCost     float64
	Precision        float64
	Recall           float64
	SatisfiedRate    float64
}

func (t *TwoPredResult) String() string {
	rows := [][]string{
		{"joint planner", f0(t.PlannerCost), f2(t.Precision), f2(t.Recall)},
		{"exact short-circuit", f0(t.ShortCircuitCost), "1.00", "1.00"},
		{"exact eval-both", f0(t.EvalBothCost), "1.00", "1.00"},
	}
	return textTable([]string{"strategy", "cost", "precision", "recall"}, rows) +
		fmt.Sprintf("constraints satisfied in %.0f%% of runs\n", 100*t.SatisfiedRate)
}

func runTwoPred(r *Runner) (fmt.Stringer, error) {
	iters := r.iters(20)
	cons := r.cons()
	rng := r.rng(hash("twopred"))

	sizes := []int{3000, 3000, 3000, 3000}
	sel1 := []float64{0.9, 0.55, 0.05, 0.35}
	sel2 := []float64{0.95, 0.6, 0.3, 0.85}

	var costAgg, precAgg, recAgg stats.Welford
	satisfied := 0
	var shortCircuit, evalBoth float64
	for iter := 0; iter < iters; iter++ {
		world := rng.Split()
		total := 0
		for _, s := range sizes {
			total += s
		}
		l1 := make([]bool, total)
		l2 := make([]bool, total)
		groups := make([]core.Group, len(sizes))
		row := 0
		for gi, size := range sizes {
			rows := make([]int, size)
			for k := 0; k < size; k++ {
				rows[k] = row
				l1[row] = world.Bernoulli(sel1[gi])
				l2[row] = world.Bernoulli(sel2[gi])
				row++
			}
			groups[gi] = core.Group{Key: fmt.Sprintf("g%d", gi), Rows: rows}
		}
		u1 := core.UDFFunc(func(r int) bool { return l1[r] })
		u2 := core.UDFFunc(func(r int) bool { return l2[r] })

		res, _, err := core.RunTwoPredicates(groups, u1, u2, cons, core.DefaultCost, nil, rng.Split())
		if err != nil {
			return nil, err
		}
		truth := func(r int) bool { return l1[r] && l2[r] }
		totalCorrect := 0
		pass1 := 0
		for i := range l1 {
			if truth(i) {
				totalCorrect++
			}
			if l1[i] {
				pass1++
			}
		}
		m := core.ComputeMetrics(res.Output, truth, totalCorrect)
		costAgg.Add(res.Cost)
		precAgg.Add(m.Precision)
		recAgg.Add(m.Recall)
		pOK, rOK := m.Satisfies(cons)
		if pOK && rOK {
			satisfied++
		}
		// Exact references for this world.
		n := float64(total)
		shortCircuit = n*core.DefaultCost.Retrieve + (n+float64(pass1))*core.DefaultCost.Evaluate
		evalBoth = n * (core.DefaultCost.Retrieve + 2*core.DefaultCost.Evaluate)
	}
	return &TwoPredResult{
		PlannerCost:      costAgg.Mean(),
		ShortCircuitCost: shortCircuit,
		EvalBothCost:     evalBoth,
		Precision:        precAgg.Mean(),
		Recall:           recAgg.Mean(),
		SatisfiedRate:    float64(satisfied) / float64(iters),
	}, nil
}

func init() {
	register(Experiment{ID: "ext-twopred", Title: "Two-predicate conjunction extension (§5)", Run: runTwoPred})
}
