package stats

import (
	"math"
	"sort"
)

// Summary statistics for experiment reporting and dataset calibration.

// Mean returns the arithmetic mean of xs; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// Variance returns the population variance of xs; 0 for fewer than two
// elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	total := 0.0
	for _, x := range xs {
		d := x - m
		total += d * d
	}
	return total / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleStdDev returns the sample (n−1 denominator) standard deviation,
// matching how the paper reports the group-size and selectivity deviations
// in Appendix 10.8.
func SampleStdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	total := 0.0
	for _, x := range xs {
		d := x - m
		total += d * d
	}
	return math.Sqrt(total / float64(n-1))
}

// WeightedMean returns Σ wᵢxᵢ / Σ wᵢ; 0 when weights sum to zero.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var num, den float64
	for i := range xs {
		num += ws[i] * xs[i]
		den += ws[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// PearsonCorrelation returns the Pearson correlation coefficient between xs
// and ys; 0 when either side has zero variance.
func PearsonCorrelation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: PearsonCorrelation length mismatch")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Welford accumulates a running mean and variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Clamp01 restricts x to the unit interval.
func Clamp01(x float64) float64 { return Clamp(x, 0, 1) }
