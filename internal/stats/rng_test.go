package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestNewRNGDifferentSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 64", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		// One collision is possible but wildly unlikely; check a few more.
		if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
			t.Fatal("split children produce identical streams")
		}
	}
}

func TestSplitDoesNotPerturbDeterminism(t *testing.T) {
	a := NewRNG(9)
	_ = a.Split()
	b := NewRNG(9)
	_ = b.Split()
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("parent streams diverged after Split")
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 50; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", got)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(5)
	for _, tc := range []struct{ n, k int }{{10, 3}, {10, 10}, {10, 15}, {1, 1}, {5, 0}} {
		idx := r.SampleWithoutReplacement(tc.n, tc.k)
		want := tc.k
		if want > tc.n {
			want = tc.n
		}
		if want < 0 {
			want = 0
		}
		if len(idx) != want {
			t.Fatalf("n=%d k=%d: got %d indices", tc.n, tc.k, len(idx))
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= tc.n {
				t.Fatalf("index %d out of range [0,%d)", i, tc.n)
			}
			if seen[i] {
				t.Fatalf("duplicate index %d", i)
			}
			seen[i] = true
		}
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each of 10 items should be chosen ~k/n of the time.
	r := NewRNG(17)
	counts := make([]int, 10)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, idx := range r.SampleWithoutReplacement(10, 3) {
			counts[idx]++
		}
	}
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.3) > 0.02 {
			t.Fatalf("item %d selected with frequency %v, want ~0.3", i, got)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := NewRNG(23)
	for _, tc := range []struct {
		n int
		p float64
	}{{20, 0.5}, {500, 0.1}, {2000, 0.72}} {
		var w Welford
		for i := 0; i < 4000; i++ {
			w.Add(float64(r.Binomial(tc.n, tc.p)))
		}
		wantMean := float64(tc.n) * tc.p
		wantSD := math.Sqrt(float64(tc.n) * tc.p * (1 - tc.p))
		if math.Abs(w.Mean()-wantMean) > 4*wantSD/math.Sqrt(4000)+0.75 {
			t.Fatalf("n=%d p=%v: mean %v want %v", tc.n, tc.p, w.Mean(), wantMean)
		}
		if math.Abs(w.StdDev()-wantSD) > 0.15*wantSD+0.5 {
			t.Fatalf("n=%d p=%v: sd %v want %v", tc.n, tc.p, w.StdDev(), wantSD)
		}
	}
}

func TestBinomialBounds(t *testing.T) {
	r := NewRNG(29)
	f := func(nRaw uint16, p float64) bool {
		n := int(nRaw % 3000)
		p = math.Abs(math.Mod(p, 1))
		k := r.Binomial(n, p)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaMean(t *testing.T) {
	r := NewRNG(31)
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		var w Welford
		for i := 0; i < 20000; i++ {
			w.Add(r.Gamma(shape))
		}
		if math.Abs(w.Mean()-shape) > 0.08*shape+0.05 {
			t.Fatalf("Gamma(%v) mean %v", shape, w.Mean())
		}
	}
}

func TestBetaDrawsInUnitInterval(t *testing.T) {
	r := NewRNG(37)
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 20)) + 0.1
		b = math.Abs(math.Mod(b, 20)) + 0.1
		x := r.Beta(a, b)
		return x >= 0 && x <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(41)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}
