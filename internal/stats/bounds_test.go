package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHoeffdingMarginMatchesTail(t *testing.T) {
	// The margin is defined so that the Hoeffding tail at the margin equals
	// exactly 1−ρ.
	for _, rho := range []float64{0.5, 0.8, 0.9, 0.99} {
		n := 50000.0
		m := HoeffdingMargin(n, 1, rho)
		tail := HoeffdingUpperTail(n, 1, m)
		if math.Abs(tail-(1-rho)) > 1e-9 {
			t.Fatalf("rho=%v: tail at margin = %v, want %v", rho, tail, 1-rho)
		}
	}
}

func TestHoeffdingMarginMonotoneInRho(t *testing.T) {
	prev := 0.0
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		m := HoeffdingMargin(1000, 1, rho)
		if m <= prev {
			t.Fatalf("margin not increasing at rho=%v", rho)
		}
		prev = m
	}
}

func TestHoeffdingMarginScalesSqrtN(t *testing.T) {
	m1 := HoeffdingMargin(100, 1, 0.8)
	m4 := HoeffdingMargin(400, 1, 0.8)
	if math.Abs(m4/m1-2) > 1e-9 {
		t.Fatalf("margin should scale as sqrt(n): %v vs %v", m1, m4)
	}
}

func TestHoeffdingMarginEdges(t *testing.T) {
	if HoeffdingMargin(100, 1, 0) != 0 {
		t.Fatal("rho=0 should give zero margin")
	}
	if !math.IsInf(HoeffdingMargin(100, 1, 1), 1) {
		t.Fatal("rho=1 should give infinite margin")
	}
	if HoeffdingMargin(0, 1, 0.8) != 0 {
		t.Fatal("n=0 should give zero margin")
	}
}

func TestRecallMarginUsesRange(t *testing.T) {
	// Recall indicators live in [0, 1−β]; margin shrinks as β → 1.
	m0 := RecallMargin(1000, 0, 0.8)
	mHalf := RecallMargin(1000, 0.5, 0.8)
	m1 := RecallMargin(1000, 1, 0.8)
	if math.Abs(mHalf-m0/2) > 1e-9 {
		t.Fatalf("beta=0.5 margin %v want half of %v", mHalf, m0)
	}
	if m1 != 0 {
		t.Fatalf("beta=1 margin should be 0, got %v", m1)
	}
	if pm := PrecisionMargin(1000, 0.8); math.Abs(pm-m0) > 1e-9 {
		t.Fatalf("precision margin %v should equal full-range recall margin %v", pm, m0)
	}
}

func TestChebyshevMultiplier(t *testing.T) {
	if e := ChebyshevMultiplier(0.75); math.Abs(e-2) > 1e-12 {
		t.Fatalf("e_0.75 = %v, want 2", e)
	}
	if e := ChebyshevMultiplier(0); math.Abs(e-1) > 1e-12 {
		t.Fatalf("e_0 = %v, want 1", e)
	}
	if !math.IsInf(ChebyshevMultiplier(1), 1) {
		t.Fatal("e_1 should be +Inf")
	}
	if e := ChebyshevMultiplier(-3); math.Abs(e-1) > 1e-12 {
		t.Fatalf("negative rho should clamp to 0, got %v", e)
	}
}

func TestChebyshevMultiplierMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return ChebyshevMultiplier(a) <= ChebyshevMultiplier(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHoeffdingEmpirical(t *testing.T) {
	// Empirically: the mean of n Bernoulli(p) draws deviates below its
	// expectation by more than the margin in at most (1−ρ) of trials.
	r := NewRNG(71)
	const n, trials = 2000, 800
	rho := 0.9
	margin := HoeffdingMargin(float64(n), 1, rho)
	p := 0.4
	violations := 0
	for trial := 0; trial < trials; trial++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				sum++
			}
		}
		if sum-float64(n)*p < -margin {
			violations++
		}
	}
	if frac := float64(violations) / trials; frac > 1-rho {
		t.Fatalf("Hoeffding violated empirically: %v > %v", frac, 1-rho)
	}
}
