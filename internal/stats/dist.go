package stats

import (
	"fmt"
	"math"
)

// BetaDist is the Beta(Alpha, Beta) distribution. Section 4.1 of the paper
// models the posterior over a group's selectivity after observing F⁺ matching
// and F⁻ non-matching sampled tuples as Beta(F⁺+1, F⁻+1).
type BetaDist struct {
	Alpha, Beta float64
}

// NewBetaPosterior returns the selectivity posterior after observing
// positives matching tuples and negatives non-matching tuples, i.e.
// Beta(positives+1, negatives+1) — a uniform prior updated by the sample.
func NewBetaPosterior(positives, negatives int) BetaDist {
	if positives < 0 || negatives < 0 {
		panic(fmt.Sprintf("stats: negative Beta counts (%d, %d)", positives, negatives))
	}
	return BetaDist{Alpha: float64(positives) + 1, Beta: float64(negatives) + 1}
}

// Mean returns α/(α+β). For the posterior this is (F⁺+1)/(F+2), the paper's
// selectivity estimate sₐ.
func (d BetaDist) Mean() float64 { return d.Alpha / (d.Alpha + d.Beta) }

// Variance returns αβ/((α+β)²(α+β+1)). For the posterior this equals
// s(1−s)/(F+3), the paper's vₐ.
func (d BetaDist) Variance() float64 {
	s := d.Alpha + d.Beta
	return d.Alpha * d.Beta / (s * s * (s + 1))
}

// Mode returns the distribution's mode; defined for α,β > 1, otherwise the
// nearest boundary is returned.
func (d BetaDist) Mode() float64 {
	switch {
	case d.Alpha > 1 && d.Beta > 1:
		return (d.Alpha - 1) / (d.Alpha + d.Beta - 2)
	case d.Alpha <= 1 && d.Beta > 1:
		return 0
	case d.Alpha > 1 && d.Beta <= 1:
		return 1
	default:
		return 0.5
	}
}

// PDF returns the density at x.
func (d BetaDist) PDF(x float64) float64 {
	if x < 0 || x > 1 {
		return 0
	}
	if x == 0 || x == 1 {
		// Density may be infinite at the boundary; report a large finite
		// value only when the exponent is exactly zero.
		if (x == 0 && d.Alpha == 1) || (x == 1 && d.Beta == 1) {
			return math.Exp(-logBeta(d.Alpha, d.Beta))
		}
		return 0
	}
	return math.Exp((d.Alpha-1)*math.Log(x) + (d.Beta-1)*math.Log(1-x) - logBeta(d.Alpha, d.Beta))
}

// Sample draws from the distribution using r.
func (d BetaDist) Sample(r *RNG) float64 { return r.Beta(d.Alpha, d.Beta) }

// logBeta returns ln B(a,b).
func logBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// BinomialDist is the Binomial(N, P) distribution: the number of correct
// tuples in a group of N tuples with independent per-tuple selectivity P
// (the Perfect Selectivities model of Section 3.2).
type BinomialDist struct {
	N int
	P float64
}

// Mean returns N·P.
func (d BinomialDist) Mean() float64 { return float64(d.N) * d.P }

// Variance returns N·P·(1−P).
func (d BinomialDist) Variance() float64 { return float64(d.N) * d.P * (1 - d.P) }

// PMF returns P(X = k).
func (d BinomialDist) PMF(k int) float64 {
	if k < 0 || k > d.N {
		return 0
	}
	if d.P <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if d.P >= 1 {
		if k == d.N {
			return 1
		}
		return 0
	}
	ln, _ := math.Lgamma(float64(d.N) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(d.N-k) + 1)
	return math.Exp(ln - lk - lnk + float64(k)*math.Log(d.P) + float64(d.N-k)*math.Log(1-d.P))
}

// CDF returns P(X <= k) by direct summation; adequate for the moderate N
// used in tests.
func (d BinomialDist) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= d.N {
		return 1
	}
	total := 0.0
	for i := 0; i <= k; i++ {
		total += d.PMF(i)
	}
	if total > 1 {
		total = 1
	}
	return total
}

// Sample draws from the distribution using r.
func (d BinomialDist) Sample(r *RNG) int { return r.Binomial(d.N, d.P) }

// NormalDist is the Normal(Mu, Sigma) distribution, used for tail checks in
// tests and the large-n binomial approximation.
type NormalDist struct {
	Mu, Sigma float64
}

// PDF returns the density at x.
func (d NormalDist) PDF(x float64) float64 {
	if d.Sigma <= 0 {
		return 0
	}
	z := (x - d.Mu) / d.Sigma
	return math.Exp(-0.5*z*z) / (d.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x).
func (d NormalDist) CDF(x float64) float64 {
	if d.Sigma <= 0 {
		if x < d.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-d.Mu)/(d.Sigma*math.Sqrt2))
}

// Quantile returns the p-th quantile via bisection on the CDF. p must lie in
// (0,1).
func (d NormalDist) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: Normal quantile requires p in (0,1)")
	}
	lo, hi := d.Mu-12*d.Sigma, d.Mu+12*d.Sigma
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if d.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Sample draws from the distribution using r.
func (d NormalDist) Sample(r *RNG) float64 { return d.Mu + d.Sigma*r.NormFloat64() }
