package stats

import "math"

// This file implements the concentration bounds from Sections 3.2 and 3.3:
// Hoeffding margins that convert "satisfy the constraint in expectation"
// into "satisfy the constraint with probability ≥ ρ", and the Chebyshev
// deviation multiplier e_ρ used by the convex programs.

// HoeffdingMargin returns the one-sided deviation t such that a sum of n
// independent random variables, each with range width `rangeWidth`, stays
// within t of its expectation with probability at least rho:
//
//	t = rangeWidth · sqrt( n · ln(1/(1−rho)) / 2 )
//
// The paper's Eq. (8)–(9) write log(1−ρ) — negative for ρ<1 — which is a
// typo; the appendix derivation (setting exp(−2t²/Σ(bᵢ−aᵢ)²) = 1−ρ) yields
// the form implemented here. rho must lie in [0,1); rho <= 0 gives margin 0.
func HoeffdingMargin(n float64, rangeWidth, rho float64) float64 {
	if rho <= 0 || n <= 0 || rangeWidth <= 0 {
		return 0
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return rangeWidth * math.Sqrt(n*math.Log(1/(1-rho))/2)
}

// PrecisionMargin is h^p_ρ from Eq. (8): the per-tuple precision indicator
// I^p lies in [−α, 1−α], range width 1, so the margin is
// sqrt(n·ln(1/(1−ρ))/2) where n = Σ tₐ.
func PrecisionMargin(totalTuples float64, rho float64) float64 {
	return HoeffdingMargin(totalTuples, 1, rho)
}

// RecallMargin is h^r_ρ from Eq. (9): the per-tuple recall indicator I^r
// lies in [0, 1−β], so the margin is (1−β)·sqrt(n·ln(1/(1−ρ))/2).
func RecallMargin(totalTuples, beta, rho float64) float64 {
	return HoeffdingMargin(totalTuples, 1-beta, rho)
}

// ChebyshevMultiplier returns e_ρ = 1/sqrt(1−ρ). Chebyshev's inequality
// guarantees P(|X−E[X]| ≥ e_ρ·Dev(X)) ≤ 1−ρ, so requiring
// E[LHS] ≥ e_ρ·Dev(LHS) makes the probabilistic constraint hold with
// probability at least ρ (Section 3.3.1).
func ChebyshevMultiplier(rho float64) float64 {
	if rho < 0 {
		rho = 0
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return 1 / math.Sqrt(1-rho)
}

// HoeffdingUpperTail returns the Hoeffding bound on P(S − E[S] ≥ t) for a
// sum of n independent variables each with the given range width.
func HoeffdingUpperTail(n float64, rangeWidth, t float64) float64 {
	if t <= 0 {
		return 1
	}
	if n <= 0 || rangeWidth <= 0 {
		return 0
	}
	return math.Exp(-2 * t * t / (n * rangeWidth * rangeWidth))
}
