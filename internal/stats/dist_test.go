package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBetaPosteriorMoments(t *testing.T) {
	// Section 4.1: s = (F⁺+1)/(F+2), v = s(1−s)/(F+3).
	for _, tc := range []struct{ pos, neg int }{{0, 0}, {9, 1}, {50, 50}, {1, 99}} {
		d := NewBetaPosterior(tc.pos, tc.neg)
		f := float64(tc.pos + tc.neg)
		wantMean := (float64(tc.pos) + 1) / (f + 2)
		wantVar := wantMean * (1 - wantMean) / (f + 3)
		if math.Abs(d.Mean()-wantMean) > 1e-12 {
			t.Fatalf("pos=%d neg=%d mean %v want %v", tc.pos, tc.neg, d.Mean(), wantMean)
		}
		if math.Abs(d.Variance()-wantVar) > 1e-12 {
			t.Fatalf("pos=%d neg=%d var %v want %v", tc.pos, tc.neg, d.Variance(), wantVar)
		}
	}
}

func TestBetaPosteriorPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative counts")
		}
	}()
	NewBetaPosterior(-1, 0)
}

func TestBetaPosteriorProperty(t *testing.T) {
	f := func(posRaw, negRaw uint16) bool {
		pos, neg := int(posRaw%10000), int(negRaw%10000)
		d := NewBetaPosterior(pos, neg)
		m, v := d.Mean(), d.Variance()
		// Mean in (0,1); variance positive and no larger than uniform's 1/12
		// once any evidence is in... variance of Beta is at most 1/12 at (1,1)?
		// Beta(1,1) variance = 1/12; evidence only shrinks it.
		return m > 0 && m < 1 && v > 0 && v <= 1.0/12+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBetaPDFIntegratesToOne(t *testing.T) {
	d := BetaDist{Alpha: 3, Beta: 5}
	const steps = 20000
	total := 0.0
	for i := 0; i < steps; i++ {
		x := (float64(i) + 0.5) / steps
		total += d.PDF(x) / steps
	}
	if math.Abs(total-1) > 1e-3 {
		t.Fatalf("Beta(3,5) PDF integral = %v", total)
	}
}

func TestBetaSampleMean(t *testing.T) {
	r := NewRNG(101)
	d := BetaDist{Alpha: 8, Beta: 2}
	var w Welford
	for i := 0; i < 20000; i++ {
		w.Add(d.Sample(r))
	}
	if math.Abs(w.Mean()-0.8) > 0.01 {
		t.Fatalf("Beta(8,2) sample mean %v want 0.8", w.Mean())
	}
}

func TestBetaMode(t *testing.T) {
	if m := (BetaDist{Alpha: 3, Beta: 3}).Mode(); math.Abs(m-0.5) > 1e-12 {
		t.Fatalf("mode %v want 0.5", m)
	}
	if m := (BetaDist{Alpha: 0.5, Beta: 3}).Mode(); m != 0 {
		t.Fatalf("mode %v want 0", m)
	}
	if m := (BetaDist{Alpha: 3, Beta: 0.5}).Mode(); m != 1 {
		t.Fatalf("mode %v want 1", m)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	d := BinomialDist{N: 40, P: 0.3}
	total := 0.0
	for k := 0; k <= 40; k++ {
		total += d.PMF(k)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("Binomial PMF sums to %v", total)
	}
}

func TestBinomialDegenerate(t *testing.T) {
	d0 := BinomialDist{N: 10, P: 0}
	if d0.PMF(0) != 1 || d0.PMF(1) != 0 {
		t.Fatal("Binomial(n,0) should be a point mass at 0")
	}
	d1 := BinomialDist{N: 10, P: 1}
	if d1.PMF(10) != 1 || d1.PMF(9) != 0 {
		t.Fatal("Binomial(n,1) should be a point mass at n")
	}
}

func TestBinomialCDFMonotone(t *testing.T) {
	d := BinomialDist{N: 25, P: 0.45}
	prev := -1.0
	for k := -1; k <= 26; k++ {
		c := d.CDF(k)
		if c < prev-1e-12 {
			t.Fatalf("CDF decreased at k=%d", k)
		}
		prev = c
	}
	if d.CDF(25) != 1 {
		t.Fatal("CDF at N should be 1")
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	d := NormalDist{Mu: 2, Sigma: 3}
	for _, p := range []float64{0.01, 0.2, 0.5, 0.8, 0.99} {
		x := d.Quantile(p)
		if math.Abs(d.CDF(x)-p) > 1e-6 {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, d.CDF(x))
		}
	}
}

func TestNormalPDFSymmetry(t *testing.T) {
	d := NormalDist{Mu: 0, Sigma: 1}
	f := func(x float64) bool {
		x = math.Mod(x, 50)
		return math.Abs(d.PDF(x)-d.PDF(-x)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalSampleMoments(t *testing.T) {
	r := NewRNG(55)
	d := NormalDist{Mu: -4, Sigma: 2}
	var w Welford
	for i := 0; i < 40000; i++ {
		w.Add(d.Sample(r))
	}
	if math.Abs(w.Mean()+4) > 0.05 {
		t.Fatalf("sample mean %v", w.Mean())
	}
	if math.Abs(w.StdDev()-2) > 0.05 {
		t.Fatalf("sample sd %v", w.StdDev())
	}
}
