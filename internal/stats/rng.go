// Package stats provides the statistical substrate used throughout the
// repository: a deterministic splittable random number generator,
// the Beta/Binomial/Normal distributions needed by the selectivity
// estimators, Hoeffding and Chebyshev tail bounds, and small-sample
// summaries (moments, quantiles, Pearson correlation).
//
// Everything is built on the standard library only. All randomness flows
// through RNG so experiments are reproducible from a single seed.
package stats

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random number generator. It wraps a PCG source and
// adds the sampling primitives the optimizer and the experiment harness
// need: Bernoulli draws, integer ranges, shuffles and subset sampling.
//
// RNG is not safe for concurrent use; derive independent generators with
// Split when goroutines need their own streams.
type RNG struct {
	src *rand.Rand
	// seed material retained so Split can derive uncorrelated children.
	hi, lo uint64
	splits uint64
}

// NewRNG returns a generator seeded from seed. Two RNGs constructed with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	hi := seed ^ 0x9e3779b97f4a7c15
	lo := seed*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	return &RNG{src: rand.New(rand.NewPCG(hi, lo)), hi: hi, lo: lo}
}

// Split derives a new generator whose stream is independent of the parent's
// future output. Each call yields a distinct child.
func (r *RNG) Split() *RNG {
	r.splits++
	hi := mix64(r.hi + r.splits*0xd1342543de82ef95)
	lo := mix64(r.lo ^ r.splits*0xaf251af3b0f025b5)
	return &RNG{src: rand.New(rand.NewPCG(hi, lo)), hi: hi, lo: lo}
}

// mix64 is the SplitMix64 finalizer; it decorrelates sequential seeds.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0,1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform draw in [0,n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Uint64 returns a uniform 64-bit draw.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// NormFloat64 returns a standard normal draw.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Bernoulli returns true with probability p. Values of p outside [0,1] are
// clamped.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0,n). If k >= n it returns all n indices in random order. The result is
// in random order.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	if k <= 0 {
		return nil
	}
	// Floyd's algorithm: O(k) expected work, no O(n) allocation.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.IntN(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Binomial returns the number of successes in n independent Bernoulli(p)
// trials. For large n it uses a normal approximation with continuity
// correction, clamped to [0,n]; exact inversion is used for small n so the
// executor's per-group draws stay faithful.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.src.Float64() < p {
				k++
			}
		}
		return k
	}
	mu := float64(n) * p
	sigma := math.Sqrt(float64(n) * p * (1 - p))
	k := int(math.Round(mu + sigma*r.src.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Gamma returns a draw from the Gamma(shape, 1) distribution using the
// Marsaglia–Tsang squeeze method. shape must be > 0.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("stats: Gamma shape must be positive")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
		u := r.src.Float64()
		for u == 0 {
			u = r.src.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.src.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.src.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a draw from the Beta(a, b) distribution.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}
