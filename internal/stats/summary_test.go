package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceBasics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Fatalf("mean %v", m)
	}
	if v := Variance(xs); math.Abs(v-4) > 1e-12 {
		t.Fatalf("variance %v", v)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 1e-12 {
		t.Fatalf("stddev %v", sd)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty slice should give zeros")
	}
	if Variance([]float64{3}) != 0 || SampleStdDev([]float64{3}) != 0 {
		t.Fatal("singleton should give zero spread")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestSampleStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// sample variance = 2.5
	if sd := SampleStdDev(xs); math.Abs(sd-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("sample sd %v", sd)
	}
}

func TestWeightedMean(t *testing.T) {
	xs := []float64{1, 10}
	ws := []float64{9, 1}
	if m := WeightedMean(xs, ws); math.Abs(m-1.9) > 1e-12 {
		t.Fatalf("weighted mean %v", m)
	}
	if m := WeightedMean([]float64{1, 2}, []float64{0, 0}); m != 0 {
		t.Fatalf("zero-weight mean %v", m)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ysPos := []float64{2, 4, 6, 8, 10}
	ysNeg := []float64{5, 4, 3, 2, 1}
	if c := PearsonCorrelation(xs, ysPos); math.Abs(c-1) > 1e-12 {
		t.Fatalf("corr %v want 1", c)
	}
	if c := PearsonCorrelation(xs, ysNeg); math.Abs(c+1) > 1e-12 {
		t.Fatalf("corr %v want -1", c)
	}
	if c := PearsonCorrelation(xs, []float64{7, 7, 7, 7, 7}); c != 0 {
		t.Fatalf("constant series corr %v want 0", c)
	}
}

func TestPearsonBounded(t *testing.T) {
	f := func(xs, ys [8]float64) bool {
		bx, by := make([]float64, 8), make([]float64, 8)
		for i := range xs {
			bx[i] = math.Mod(xs[i], 1e6)
			by[i] = math.Mod(ys[i], 1e6)
		}
		c := PearsonCorrelation(bx, by)
		return c >= -1-1e-9 && c <= 1+1e-9 && !math.IsNaN(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if q := Quantile(xs, 0); q != 10 {
		t.Fatalf("q0 %v", q)
	}
	if q := Quantile(xs, 1); q != 40 {
		t.Fatalf("q1 %v", q)
	}
	if q := Quantile(xs, 0.5); math.Abs(q-25) > 1e-12 {
		t.Fatalf("median %v", q)
	}
	// must not mutate input
	if xs[0] != 10 || xs[3] != 40 {
		t.Fatal("Quantile mutated its input")
	}
	shuffled := []float64{40, 10, 30, 20}
	if q := Quantile(shuffled, 0.5); math.Abs(q-25) > 1e-12 {
		t.Fatalf("median of unsorted %v", q)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := NewRNG(77)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 1
		w.Add(xs[i])
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
		t.Fatalf("welford mean %v batch %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.Variance()-Variance(xs)) > 1e-9 {
		t.Fatalf("welford var %v batch %v", w.Variance(), Variance(xs))
	}
	if w.N() != 1000 {
		t.Fatalf("welford n %d", w.N())
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
	f := func(x float64) bool {
		c := Clamp01(x)
		return c >= 0 && c <= 1 && (x < 0 || x > 1 || c == x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
