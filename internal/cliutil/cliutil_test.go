package cliutil

import "testing"

func TestMultiFlag(t *testing.T) {
	var m MultiFlag
	if err := m.Set("a=1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b=2"); err != nil {
		t.Fatal(err)
	}
	if m.String() != "a=1,b=2" {
		t.Fatalf("string %q", m.String())
	}
	if len(m) != 2 {
		t.Fatalf("len %d", len(m))
	}
}
