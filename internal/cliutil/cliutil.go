// Package cliutil holds the tiny flag helpers shared by the command-line
// tools (cmd/predsql, cmd/predsqld).
package cliutil

import "strings"

// MultiFlag collects a repeatable string flag (e.g. -table name=path).
type MultiFlag []string

// String implements flag.Value.
func (m *MultiFlag) String() string { return strings.Join(*m, ",") }

// Set implements flag.Value.
func (m *MultiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
