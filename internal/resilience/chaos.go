package resilience

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosConfig describes a seeded fault schedule for exercising retry,
// breaker and degradation behavior. Every decision is a pure hash of
// (Seed, value, per-value attempt index), so at a fixed seed the same
// values fail on the same attempts regardless of worker interleaving —
// EXCEPT the flap schedule, which runs on a global call counter and is
// deliberately order-dependent (useful for liveness tests, excluded from
// the bit-determinism contract).
//
// The determinism contract additionally assumes the wrapped column's
// values are distinct per row (ids, typically): two rows sharing a value
// share an attempt counter, so their retry schedules would interleave
// scheduling-dependently.
type ChaosConfig struct {
	// Seed drives every hash draw.
	Seed uint64
	// ErrorRate is the per-attempt probability of an injected transient
	// error.
	ErrorRate float64
	// PanicRate is the per-VALUE probability of a panicking body: an
	// afflicted value panics on every attempt (panics are classified
	// non-retryable, so this models a persistent crash bug).
	PanicRate float64
	// LatencyRate / Latency inject a ctx-aware sleep on a fraction of
	// attempts. Latency alone never changes outcomes; combined with a
	// per-call timeout it produces Timeout errors.
	LatencyRate float64
	Latency     time.Duration
	// FailAttempts, when positive, makes the first FailAttempts attempts of
	// EVERY value fail transiently — a deterministic retry exerciser.
	FailAttempts int
	// FlapPeriod / FlapDown fail the first FlapDown of every FlapPeriod
	// calls (global counter; not bit-deterministic under parallelism).
	FlapPeriod int
	FlapDown   int
}

// Enabled reports whether the config injects anything.
func (c ChaosConfig) Enabled() bool {
	return c.ErrorRate > 0 || c.PanicRate > 0 || (c.LatencyRate > 0 && c.Latency > 0) ||
		c.FailAttempts > 0 || (c.FlapPeriod > 0 && c.FlapDown > 0)
}

// Chaos wraps fallible UDF bodies with the configured fault schedule.
type Chaos struct {
	cfg ChaosConfig

	mu       sync.Mutex
	attempts map[uint64]int

	flap  atomic.Int64
	calls atomic.Int64
}

// NewChaos builds a chaos injector.
func NewChaos(cfg ChaosConfig) *Chaos {
	return &Chaos{cfg: cfg, attempts: make(map[uint64]int)}
}

// Calls reports how many wrapped invocations ran (including failed ones).
func (c *Chaos) Calls() int64 { return c.calls.Load() }

// draw maps a (stream, key, attempt) triple to a uniform [0,1) value.
func (c *Chaos) draw(stream, key uint64, attempt int) float64 {
	h := Mix64(c.cfg.Seed ^ Mix64(stream) ^ Mix64(key) ^ Mix64(uint64(attempt)))
	return float64(h>>11) / float64(uint64(1)<<53)
}

// nextAttempt returns the 1-based attempt index for the value key.
func (c *Chaos) nextAttempt(key uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attempts[key]++
	return c.attempts[key]
}

// Wrap layers the fault schedule over a fallible value-level body. The
// value's canonical string rendering keys its schedule.
func (c *Chaos) Wrap(fn func(ctx context.Context, v any) (bool, error)) func(ctx context.Context, v any) (bool, error) {
	return func(ctx context.Context, v any) (bool, error) {
		key := HashString(fmt.Sprint(v))
		attempt := c.nextAttempt(key)
		c.calls.Add(1)
		if c.cfg.PanicRate > 0 && c.draw(1, key, 0) < c.cfg.PanicRate {
			panic(fmt.Sprintf("chaos: injected panic (value=%v)", v))
		}
		if c.cfg.LatencyRate > 0 && c.cfg.Latency > 0 && c.draw(2, key, attempt) < c.cfg.LatencyRate {
			t := time.NewTimer(c.cfg.Latency)
			select {
			case <-ctx.Done():
				t.Stop()
				return false, ctx.Err()
			case <-t.C:
			}
		}
		if c.cfg.FlapPeriod > 0 && c.cfg.FlapDown > 0 {
			g := c.flap.Add(1) - 1
			if int(g%int64(c.cfg.FlapPeriod)) < c.cfg.FlapDown {
				return false, New(Transient, "chaos", fmt.Errorf("injected flap failure (call=%d)", g))
			}
		}
		if attempt <= c.cfg.FailAttempts {
			return false, New(Transient, "chaos", fmt.Errorf("injected failure (value=%v attempt=%d)", v, attempt))
		}
		if c.cfg.ErrorRate > 0 && c.draw(3, key, attempt) < c.cfg.ErrorRate {
			return false, New(Transient, "chaos", fmt.Errorf("injected transient error (value=%v attempt=%d)", v, attempt))
		}
		return fn(ctx, v)
	}
}
