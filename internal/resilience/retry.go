package resilience

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"
)

// Policy tunes retry behavior for one class of invocations. The zero value
// is usable: every knob falls back to the documented default.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 3). 1 disables retries.
	MaxAttempts int
	// CallTimeout bounds each attempt (0 = unbounded). The deadline is
	// cooperative — the attempt's context is cancelled and the attempt is
	// abandoned; bodies that honor their context return promptly, bodies
	// that don't leak a goroutine until they finish on their own.
	CallTimeout time.Duration
	// BaseBackoff is the delay before the second attempt (default 1ms);
	// each further attempt doubles it, capped at MaxBackoff (default 50ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the deterministic jitter. Jitter is a pure hash of
	// (Seed, key, attempt) — no shared RNG stream — so backoff schedules
	// are identical regardless of how workers interleave.
	Seed uint64
	// Sleep replaces the ctx-aware backoff sleep in tests (nil = real
	// timer). It must return ctx.Err() promptly if ctx ends mid-sleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

func (p Policy) baseBackoff() time.Duration {
	if p.BaseBackoff <= 0 {
		return time.Millisecond
	}
	return p.BaseBackoff
}

func (p Policy) maxBackoff() time.Duration {
	if p.MaxBackoff <= 0 {
		return 50 * time.Millisecond
	}
	return p.MaxBackoff
}

// Backoff returns the delay inserted before attempt+1 (attempt counts from
// 1): capped exponential growth scaled by a deterministic jitter factor in
// [0.5, 1.5) hashed from (Seed, key, attempt).
func (p Policy) Backoff(key uint64, attempt int) time.Duration {
	d := p.baseBackoff()
	for i := 1; i < attempt && d < p.maxBackoff(); i++ {
		d *= 2
	}
	if d > p.maxBackoff() {
		d = p.maxBackoff()
	}
	h := Mix64(p.Seed ^ Mix64(key) ^ Mix64(uint64(attempt)))
	frac := float64(h>>11) / float64(uint64(1)<<53)
	return time.Duration(float64(d) * (0.5 + frac))
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do invokes fn under the policy: up to MaxAttempts attempts, retrying
// only errors Retryable reports worth it, sleeping the jittered backoff
// between attempts. key identifies the logical call (e.g. a hash of the
// UDF name and row) so its jitter schedule is stable across runs.
//
// It returns the verdict, the number of attempts made, and the final
// error. A context that ends mid-attempt or mid-backoff surfaces as
// ctx.Err() promptly — the full backoff is never slept out — which callers
// must treat as a batch abort, not a row failure.
func Do(ctx context.Context, p Policy, key uint64, fn func(ctx context.Context) (bool, error)) (bool, int, error) {
	attempts := 0
	for {
		if err := ctx.Err(); err != nil {
			return false, attempts, err
		}
		attempts++
		v, err := p.runOnce(ctx, fn)
		if err == nil {
			return v, attempts, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return false, attempts, cerr
		}
		if !Retryable(err) || attempts >= p.maxAttempts() {
			return false, attempts, err
		}
		if serr := p.sleep(ctx, p.Backoff(key, attempts)); serr != nil {
			return false, attempts, serr
		}
	}
}

// runOnce performs a single attempt, enforcing the per-call deadline when
// one is configured. fn is responsible for recovering its own panics (the
// engine's invocation boundary does); an abandoned timed-out attempt keeps
// running on its goroutine but its result is discarded.
func (p Policy) runOnce(ctx context.Context, fn func(ctx context.Context) (bool, error)) (bool, error) {
	if p.CallTimeout <= 0 {
		return fn(ctx)
	}
	cctx, cancel := context.WithTimeout(ctx, p.CallTimeout)
	defer cancel()
	type result struct {
		v   bool
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := fn(cctx)
		ch <- result{v, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil && cctx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			// The body honored its deadline; classify as a retryable timeout
			// rather than leaking the raw context error upward (which callers
			// treat as a batch abort).
			return false, &Error{Kind: Timeout, Err: fmt.Errorf("call exceeded %v", p.CallTimeout)}
		}
		return r.v, r.err
	case <-cctx.Done():
		if err := ctx.Err(); err != nil {
			return false, err
		}
		return false, &Error{Kind: Timeout, Err: fmt.Errorf("call exceeded %v (abandoned)", p.CallTimeout)}
	}
}

// Mix64 is the splitmix64 finalizer: a cheap, well-mixed 64-bit hash step
// used to derive independent deterministic streams from composite keys.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString hashes a string to a stable 64-bit key (FNV-1a finished with
// Mix64), for keying retry jitter and chaos schedules by value.
func HashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return Mix64(h.Sum64())
}
