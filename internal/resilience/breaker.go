package resilience

import "sync"

// BreakerConfig tunes a circuit breaker. The zero value is usable: every
// knob falls back to the documented default.
type BreakerConfig struct {
	// Window is the size of the sliding outcome window (default 32).
	Window int
	// MinCalls is how many outcomes the window needs before the failure
	// rate is trusted enough to trip (default 10).
	MinCalls int
	// FailureRate is the tripping threshold (default 0.5): the breaker
	// opens when failures/outcomes in the window reaches it.
	FailureRate float64
	// Cooldown is how many DENIED calls an open breaker absorbs before
	// moving to half-open (default 32). The clock is logical — denials, not
	// wall time — so breaker behavior replays identically in tests.
	Cooldown int
	// Probes is how many trial calls half-open admits; all must succeed to
	// close, any failure re-opens (default 4).
	Probes int
	// Segment is the barrier width gated batches use once the breaker has
	// seen a failure (default 32). Smaller segments react faster but add
	// synchronization barriers; before the first failure batches run
	// unsegmented, so healthy workloads pay nothing.
	Segment int
}

func (c BreakerConfig) window() int {
	if c.Window <= 0 {
		return 32
	}
	return c.Window
}

func (c BreakerConfig) minCalls() int {
	if c.MinCalls <= 0 {
		return 10
	}
	return c.MinCalls
}

func (c BreakerConfig) failureRate() float64 {
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		return 0.5
	}
	return c.FailureRate
}

func (c BreakerConfig) cooldown() int {
	if c.Cooldown <= 0 {
		return 32
	}
	return c.Cooldown
}

func (c BreakerConfig) probes() int {
	if c.Probes <= 0 {
		return 4
	}
	return c.Probes
}

func (c BreakerConfig) segment() int {
	if c.Segment <= 0 {
		return 32
	}
	return c.Segment
}

// BreakerState is a breaker's position in the closed → open → half-open
// cycle.
type BreakerState uint8

const (
	// BreakerClosed admits everything (healthy).
	BreakerClosed BreakerState = iota
	// BreakerOpen denies everything while the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a few probes to test recovery.
	BreakerHalfOpen
)

// String names the state for stats endpoints.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a circuit breaker designed for deterministic batch
// evaluation. It implements the exec.Gate protocol:
//
//   - Segment() reports the barrier width gated batches should use — 0
//     ("run the whole batch as one wave") until the breaker records its
//     first failure, the configured segment width afterwards. This keeps
//     the healthy path exactly as fast as ungated evaluation.
//   - Plan(n) decides, before a segment evaluates, which of its n items
//     may invoke; denials advance the open-state cooldown.
//   - Record(failed) folds admitted outcomes back in item order after the
//     segment evaluates.
//
// Because Plan and Record run sequentially on the batch's spine (only the
// evaluations between them fan out), the breaker's state transitions — and
// therefore Trips and every deny decision — depend only on the outcome
// sequence, never on worker scheduling. All methods are mutex-guarded, so
// a breaker shared across concurrent queries stays consistent (though
// cross-query interleaving is then scheduling-dependent by nature).
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state BreakerState
	// armed flips on the first recorded failure and never resets: it
	// switches gated batches from whole-batch waves to segmented waves.
	armed bool

	// Sliding outcome window (closed state).
	window []bool
	widx   int
	wlen   int
	fails  int

	// Open-state cooldown and half-open probe accounting.
	cooldownLeft   int
	probesIssued   int
	probeSuccesses int

	trips int64
}

// NewBreaker returns a closed breaker under the given config.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg, window: make([]bool, cfg.window())}
}

// Segment implements exec.Gate: 0 (no segmentation) while the breaker has
// never seen a failure, the configured width afterwards.
func (b *Breaker) Segment() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.armed {
		return 0
	}
	return b.cfg.segment()
}

// Plan implements exec.Gate: it returns, for each of the next n items in
// order, whether the item may invoke. Denied items advance the open
// cooldown; when the cooldown elapses mid-plan the breaker moves to
// half-open and admits probes from the remaining items.
func (b *Breaker) Plan(n int) []bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	allowed := make([]bool, n)
	for i := range allowed {
		switch b.state {
		case BreakerClosed:
			allowed[i] = true
		case BreakerOpen:
			b.cooldownLeft--
			if b.cooldownLeft <= 0 {
				b.state = BreakerHalfOpen
				b.probesIssued = 0
				b.probeSuccesses = 0
			}
			// This item is still denied; the NEXT one may probe.
		case BreakerHalfOpen:
			if b.probesIssued < b.cfg.probes() {
				b.probesIssued++
				allowed[i] = true
			}
		}
	}
	return allowed
}

// Record implements exec.Gate: fold one admitted item's outcome, in item
// order. Closed-state outcomes feed the sliding window and may trip the
// breaker; half-open outcomes resolve probes. Outcomes arriving while open
// (admitted before the trip folded) are ignored.
func (b *Breaker) Record(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if failed {
		b.armed = true
	}
	switch b.state {
	case BreakerClosed:
		b.push(failed)
		if b.wlen >= b.cfg.minCalls() && float64(b.fails) >= b.cfg.failureRate()*float64(b.wlen) {
			b.trip()
		}
	case BreakerHalfOpen:
		if failed {
			b.trip()
			return
		}
		b.probeSuccesses++
		if b.probeSuccesses >= b.cfg.probes() {
			b.state = BreakerClosed
			b.resetWindow()
		}
	}
}

// push adds one outcome to the sliding window. Callers hold b.mu.
func (b *Breaker) push(failed bool) {
	if b.wlen == len(b.window) {
		if b.window[b.widx] {
			b.fails--
		}
	} else {
		b.wlen++
	}
	b.window[b.widx] = failed
	if failed {
		b.fails++
	}
	b.widx = (b.widx + 1) % len(b.window)
}

// trip opens the breaker. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.trips++
	b.cooldownLeft = b.cfg.cooldown()
	b.resetWindow()
}

// resetWindow clears the sliding window. Callers hold b.mu.
func (b *Breaker) resetWindow() {
	b.wlen, b.widx, b.fails = 0, 0, 0
}

// State reports the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
