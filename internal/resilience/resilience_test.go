package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Kind
	}{
		{New(Transient, "op", errors.New("blip")), Transient},
		{New(Permanent, "op", errors.New("bad input")), Permanent},
		{New(Timeout, "op", errors.New("slow")), Timeout},
		{NewPanicError("op", "boom", nil), Panic},
		{fmt.Errorf("wrapped: %w", New(Permanent, "op", errors.New("x"))), Permanent},
		{errors.New("plain"), Transient}, // unrecognized defaults to Transient
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryable(t *testing.T) {
	if !Retryable(errors.New("plain")) {
		t.Error("plain errors should be retryable")
	}
	if !Retryable(New(Timeout, "", errors.New("slow"))) {
		t.Error("timeouts should be retryable")
	}
	if Retryable(New(Permanent, "", errors.New("bad"))) {
		t.Error("permanent errors must not be retryable")
	}
	if Retryable(NewPanicError("", "boom", nil)) {
		t.Error("panics must not be retryable")
	}
	if Retryable(ErrBreakerOpen) {
		t.Error("breaker denials must not be retryable")
	}
	if Retryable(fmt.Errorf("deny: %w", ErrBreakerOpen)) {
		t.Error("wrapped breaker denials must not be retryable")
	}
}

func TestErrorText(t *testing.T) {
	e := New(Transient, "udf:sentiment", errors.New("503"))
	if got := e.Error(); got != "udf:sentiment: transient: 503" {
		t.Errorf("Error() = %q", got)
	}
	var target *Error
	if !errors.As(fmt.Errorf("w: %w", e), &target) || target.Kind != Transient {
		t.Error("errors.As should unwrap to the typed error")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := Policy{BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Seed: 42}
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := p.Backoff(7, attempt)
		d2 := p.Backoff(7, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		// Raw exponential value before jitter, capped.
		raw := time.Millisecond << (attempt - 1)
		if raw > 8*time.Millisecond {
			raw = 8 * time.Millisecond
		}
		if d1 < raw/2 || d1 >= raw+raw/2 {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, d1, raw/2, raw+raw/2)
		}
	}
	if p.Backoff(7, 3) == p.Backoff(8, 3) {
		t.Error("different keys should (overwhelmingly) jitter differently")
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 5,
		Sleep:       func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil },
	}
	calls := 0
	v, attempts, err := Do(context.Background(), p, 1, func(context.Context) (bool, error) {
		calls++
		if calls < 3 {
			return false, New(Transient, "t", errors.New("blip"))
		}
		return true, nil
	})
	if err != nil || !v || attempts != 3 || calls != 3 {
		t.Fatalf("got v=%v attempts=%d calls=%d err=%v, want success on attempt 3", v, attempts, calls, err)
	}
	if len(slept) != 2 {
		t.Errorf("slept %d backoffs, want 2", len(slept))
	}
}

func TestDoPermanentFailsImmediately(t *testing.T) {
	calls := 0
	_, attempts, err := Do(context.Background(), Policy{MaxAttempts: 5}, 1, func(context.Context) (bool, error) {
		calls++
		return false, New(Permanent, "t", errors.New("bad input"))
	})
	if calls != 1 || attempts != 1 {
		t.Errorf("permanent error retried: calls=%d attempts=%d", calls, attempts)
	}
	if Classify(err) != Permanent {
		t.Errorf("err = %v, want permanent", err)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	_, attempts, err := Do(context.Background(), p, 1, func(context.Context) (bool, error) {
		calls++
		return false, errors.New("always")
	})
	if calls != 3 || attempts != 3 {
		t.Errorf("calls=%d attempts=%d, want 3", calls, attempts)
	}
	if err == nil || Classify(err) != Transient {
		t.Errorf("err = %v, want the final transient error", err)
	}
}

func TestDoCancelledDuringBackoffReturnsCtxErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{
		MaxAttempts: 5,
		Sleep: func(ctx context.Context, _ time.Duration) error {
			cancel() // the context ends mid-backoff
			return ctx.Err()
		},
	}
	_, _, err := Do(ctx, p, 1, func(context.Context) (bool, error) {
		return false, errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want raw context.Canceled (batch abort, not row failure)", err)
	}
	var re *Error
	if errors.As(err, &re) {
		t.Fatalf("cancellation must not be wrapped in a typed failure: %v", err)
	}
}

func TestDoCallTimeoutClassifiedRetryable(t *testing.T) {
	p := Policy{
		MaxAttempts: 2,
		CallTimeout: 5 * time.Millisecond,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	// Atomic: the body runs on the call-timeout watchdog's goroutine, which
	// Do abandons when the deadline fires — the final read here has no
	// happens-before edge with the increment.
	var calls atomic.Int32
	_, attempts, err := Do(context.Background(), p, 1, func(ctx context.Context) (bool, error) {
		calls.Add(1)
		<-ctx.Done() // body honors its per-attempt deadline
		return false, ctx.Err()
	})
	if attempts != 2 || calls.Load() != 2 {
		t.Errorf("attempts=%d calls=%d, want the timeout retried once", attempts, calls.Load())
	}
	if Classify(err) != Timeout {
		t.Errorf("err = %v, want a typed timeout", err)
	}
	// The parent context is intact: the timeout must not surface as a
	// context error (callers treat those as batch aborts).
	if errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("per-call timeout leaked as a context error: %v", err)
	}
}

func TestDoParentCancelBeatsCallTimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 3, CallTimeout: time.Minute}
	_, _, err := Do(ctx, p, 1, func(ctx context.Context) (bool, error) {
		cancel()
		<-ctx.Done()
		return false, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// drive pushes a scripted outcome sequence through the breaker the way a
// gated batch does: Plan one item, then Record it if admitted.
func drive(b *Breaker, outcomes []bool) (admitted, denied int) {
	for _, failed := range outcomes {
		if b.Plan(1)[0] {
			admitted++
			b.Record(failed)
		} else {
			denied++
		}
	}
	return
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	cfg := BreakerConfig{Window: 8, MinCalls: 4, FailureRate: 0.5, Cooldown: 6, Probes: 2}
	b := NewBreaker(cfg)
	if b.State() != BreakerClosed {
		t.Fatal("new breaker should be closed")
	}

	// Four straight failures reach MinCalls at 100% failure rate: trip.
	drive(b, []bool{true, true, true, true})
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d, want open after the window fills with failures", b.State(), b.Trips())
	}

	// The cooldown is counted in denials. 6 denials, then probes.
	_, denied := drive(b, make([]bool, 6))
	if denied != 6 {
		t.Fatalf("denied %d during cooldown, want 6", denied)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%v, want half-open after the cooldown elapses", b.State())
	}

	// Both probes succeed: closed again.
	admitted, _ := drive(b, []bool{false, false})
	if admitted != 2 || b.State() != BreakerClosed {
		t.Fatalf("admitted=%d state=%v, want 2 successful probes to close", admitted, b.State())
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	cfg := BreakerConfig{Window: 8, MinCalls: 2, FailureRate: 0.5, Cooldown: 2, Probes: 2}
	b := NewBreaker(cfg)
	drive(b, []bool{true, true}) // trip
	drive(b, make([]bool, 2))    // cooldown
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	drive(b, []bool{true}) // failed probe
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state=%v trips=%d, want re-opened on probe failure", b.State(), b.Trips())
	}
}

func TestBreakerHalfOpenAdmitsOnlyProbes(t *testing.T) {
	cfg := BreakerConfig{Window: 8, MinCalls: 2, FailureRate: 0.5, Cooldown: 1, Probes: 2}
	b := NewBreaker(cfg)
	drive(b, []bool{true, true}) // trip
	b.Plan(1)                    // cooldown elapses; next plan is half-open
	allowed := b.Plan(5)
	admits := 0
	for _, a := range allowed {
		if a {
			admits++
		}
	}
	if admits != 2 {
		t.Fatalf("half-open admitted %d of 5, want exactly Probes=2", admits)
	}
}

func TestBreakerSegmentArmsOnFirstFailure(t *testing.T) {
	b := NewBreaker(BreakerConfig{Segment: 16})
	if got := b.Segment(); got != 0 {
		t.Fatalf("Segment() = %d before any failure, want 0 (unsegmented fast path)", got)
	}
	b.Plan(1)
	b.Record(false)
	if got := b.Segment(); got != 0 {
		t.Fatalf("Segment() = %d after a success, want 0", got)
	}
	b.Plan(1)
	b.Record(true)
	if got := b.Segment(); got != 16 {
		t.Fatalf("Segment() = %d after a failure, want the configured 16", got)
	}
}

func TestBreakerSlidingWindowEviction(t *testing.T) {
	// Window 4, 50% rate: two old failures must age out and not trip the
	// breaker once fresh successes displace them.
	cfg := BreakerConfig{Window: 4, MinCalls: 4, FailureRate: 0.75}
	b := NewBreaker(cfg)
	drive(b, []bool{true, true, false, false, false, false})
	if b.State() != BreakerClosed {
		t.Fatalf("state=%v, want closed: aged-out failures must not count", b.State())
	}
}

func TestChaosDeterministicSchedule(t *testing.T) {
	cfg := ChaosConfig{Seed: 99, ErrorRate: 0.3}
	run := func() []bool {
		c := NewChaos(cfg)
		body := c.Wrap(func(_ context.Context, _ any) (bool, error) { return true, nil })
		var fails []bool
		for v := 0; v < 200; v++ {
			_, err := body(context.Background(), v)
			fails = append(fails, err != nil)
		}
		return fails
	}
	a, b := run(), run()
	failures := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("value %d: schedules diverge across identical runs", i)
		}
		if a[i] {
			failures++
		}
	}
	if failures < 30 || failures > 90 {
		t.Errorf("%d/200 injected failures at rate 0.3 — schedule looks mis-scaled", failures)
	}
}

func TestChaosFailAttempts(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, FailAttempts: 2})
	body := c.Wrap(func(_ context.Context, _ any) (bool, error) { return true, nil })
	for attempt := 1; attempt <= 3; attempt++ {
		v, err := body(context.Background(), "someval")
		if attempt <= 2 && err == nil {
			t.Fatalf("attempt %d: want injected failure", attempt)
		}
		if attempt == 3 && (err != nil || !v) {
			t.Fatalf("attempt 3: want the real body's verdict, got v=%v err=%v", v, err)
		}
	}
	if c.Calls() != 3 {
		t.Errorf("Calls() = %d, want 3", c.Calls())
	}
}

func TestChaosPanicIsPerValuePersistent(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 5, PanicRate: 0.2})
	body := c.Wrap(func(_ context.Context, _ any) (bool, error) { return true, nil })
	call := func(v any) (panicked bool) {
		defer func() { panicked = recover() != nil }()
		_, _ = body(context.Background(), v)
		return false
	}
	anyPanic := false
	for v := 0; v < 100; v++ {
		first := call(v)
		for rep := 0; rep < 3; rep++ {
			if call(v) != first {
				t.Fatalf("value %d: panic affliction not persistent across attempts", v)
			}
		}
		anyPanic = anyPanic || first
	}
	if !anyPanic {
		t.Error("no value panicked at rate 0.2 over 100 values")
	}
}

func TestChaosEnabled(t *testing.T) {
	if (ChaosConfig{}).Enabled() {
		t.Error("zero config must be disabled")
	}
	if !(ChaosConfig{ErrorRate: 0.1}).Enabled() || !(ChaosConfig{FailAttempts: 1}).Enabled() {
		t.Error("configured injection must report enabled")
	}
	if (ChaosConfig{Latency: time.Millisecond}).Enabled() {
		t.Error("latency without a rate injects nothing")
	}
}

func TestMix64AndHashString(t *testing.T) {
	if Mix64(1) == Mix64(2) {
		t.Error("Mix64 collision on adjacent inputs")
	}
	if HashString("a") != HashString("a") || HashString("a") == HashString("b") {
		t.Error("HashString must be stable and discriminating")
	}
}
