// Package resilience makes expensive-predicate invocation survivable: the
// paper's UDFs stand in for crowdsourced workers and remote ML services,
// which time out, error transiently and occasionally crash. This package
// provides the typed error taxonomy that decides retryability, capped
// exponential backoff with seeded deterministic jitter, per-call
// cooperative deadlines, a circuit breaker whose state machine advances on
// a logical call clock (so trips are bit-for-bit reproducible at any
// parallelism level), and a seeded chaos wrapper for fault-injection tests.
//
// Determinism is the organizing constraint. Nothing in this package draws
// from a shared RNG stream: retry jitter is a pure hash of
// (seed, key, attempt), chaos decisions are pure hashes of the value being
// evaluated and its per-value attempt index, and the breaker folds
// outcomes in batch order behind segment barriers (see Breaker). At a
// fixed seed and fault schedule the same rows fail, the same retries
// happen and the same trips fire whether a query runs on one worker or
// sixty-four.
package resilience

import (
	"errors"
	"fmt"
)

// Kind classifies a UDF invocation failure; it decides retryability.
type Kind uint8

const (
	// Transient failures (network blips, 5xx-style errors, injected chaos)
	// are worth retrying.
	Transient Kind = iota
	// Permanent failures (bad input, 4xx-style rejections) never succeed on
	// retry; the row fails immediately.
	Permanent
	// Timeout marks an attempt that exceeded its per-call deadline.
	// Retryable: the next attempt may be faster.
	Timeout
	// Panic marks a UDF body that panicked. Not retryable: a crash is a
	// bug, and re-running a buggy body buys nothing but another crash.
	Panic
)

// String names the kind for error text and stats.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Timeout:
		return "timeout"
	case Panic:
		return "panic"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Error is a classified invocation failure.
type Error struct {
	Kind Kind
	// Op names the failing operation (e.g. "udf:sentiment"); may be empty.
	Op  string
	Err error
	// Stack holds the panicking goroutine's stack for Kind == Panic.
	Stack []byte
}

// New builds a classified error.
func New(kind Kind, op string, err error) *Error {
	return &Error{Kind: kind, Op: op, Err: err}
}

// NewPanicError captures a recovered panic value and its stack as a typed,
// non-retryable error.
func NewPanicError(op string, value any, stack []byte) *Error {
	return &Error{Kind: Panic, Op: op, Err: fmt.Errorf("panic: %v", value), Stack: stack}
}

// Error implements error.
func (e *Error) Error() string {
	msg := e.Kind.String()
	if e.Op != "" {
		msg = e.Op + ": " + msg
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// ErrBreakerOpen reports an invocation denied by an open circuit breaker.
// Never retried; under skip/degrade policies the row counts as failed.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// Classify maps an arbitrary error to a Kind. Typed errors report their
// own kind; anything unrecognized defaults to Transient, so plain errors
// from user UDF bodies get the benefit of a retry.
func Classify(err error) Kind {
	var re *Error
	if errors.As(err, &re) {
		return re.Kind
	}
	return Transient
}

// Retryable reports whether another attempt could plausibly succeed.
func Retryable(err error) bool {
	if errors.Is(err, ErrBreakerOpen) {
		return false
	}
	switch Classify(err) {
	case Transient, Timeout:
		return true
	default:
		return false
	}
}
