package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/table"
)

// newFallibleEngine builds an engine whose UDF fails permanently on the
// given ids. Retry backoff is stubbed out so tests run instantly.
func newFallibleEngine(t testing.TB, n int, failIDs map[int64]bool) (*Engine, map[int64]bool) {
	t.Helper()
	tbl, truth := buildLoanTable(t, n, 42)
	e := New(7)
	e.Retry = resilience.Policy{Sleep: func(context.Context, time.Duration) error { return nil }}
	if err := e.RegisterTable(tbl); err != nil {
		t.Fatal(err)
	}
	err := e.RegisterUDF(UDF{
		Name: "good_credit",
		BodyErr: func(_ context.Context, v table.Value) (bool, error) {
			id := v.(int64)
			if failIDs[id] {
				return false, resilience.New(resilience.Permanent, "udf", errors.New("row is cursed"))
			}
			return truth[id], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, truth
}

func exactQuery(onFailure FailurePolicy) Query {
	return Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true, OnFailure: onFailure}
}

func TestFailPolicyReturnsTypedError(t *testing.T) {
	e, _ := newFallibleEngine(t, 300, map[int64]bool{17: true})
	_, err := e.Execute(exactQuery(FailOnError))
	if err == nil {
		t.Fatal("want the query to fail under the fail policy")
	}
	if !strings.Contains(err.Error(), "good_credit") || !strings.Contains(err.Error(), "failed on row") {
		t.Fatalf("err = %v, want a typed per-row failure message", err)
	}
	var re *resilience.Error
	if !errors.As(err, &re) || re.Kind != resilience.Permanent {
		t.Fatalf("err = %v, want to unwrap to the permanent resilience error", err)
	}
}

func TestSkipPolicyExcludesFailedRows(t *testing.T) {
	failIDs := map[int64]bool{5: true, 100: true, 250: true}
	e, truth := newFallibleEngine(t, 300, failIDs)
	res, err := e.Execute(exactQuery(SkipFailed))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for id, v := range truth {
		if v && !failIDs[id] {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("got %d rows, want %d (failed rows excluded)", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		if failIDs[int64(row)] {
			t.Fatalf("failed row %d leaked into the output", row)
		}
	}
	if res.Stats.FailedRows != len(failIDs) {
		t.Errorf("FailedRows = %d, want %d", res.Stats.FailedRows, len(failIDs))
	}
	if res.Stats.Degraded {
		t.Error("skip must not mark the result degraded")
	}
}

func TestDegradePolicyMarksDegraded(t *testing.T) {
	e, _ := newFallibleEngine(t, 300, map[int64]bool{5: true})
	res, err := e.Execute(exactQuery(DegradeFailed))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded || res.Stats.FailedRows != 1 {
		t.Fatalf("Degraded=%v FailedRows=%d, want degraded with 1 failed row", res.Stats.Degraded, res.Stats.FailedRows)
	}
	// No failures → not degraded, even under the degrade policy.
	e2, _ := newFallibleEngine(t, 300, nil)
	res2, err := e2.Execute(exactQuery(DegradeFailed))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Degraded || res2.Stats.FailedRows != 0 {
		t.Fatalf("clean run reported Degraded=%v FailedRows=%d", res2.Stats.Degraded, res2.Stats.FailedRows)
	}
}

func TestEngineDefaultPolicyApplies(t *testing.T) {
	e, _ := newFallibleEngine(t, 300, map[int64]bool{5: true})
	e.OnFailure = SkipFailed
	res, err := e.Execute(exactQuery("")) // query defers to the engine default
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FailedRows != 1 {
		t.Fatalf("FailedRows = %d, want 1 under the engine-default skip policy", res.Stats.FailedRows)
	}
}

func TestRetriesCountedAndTransientRecovers(t *testing.T) {
	tbl, truth := buildLoanTable(t, 200, 42)
	e := New(7)
	e.Retry = resilience.Policy{MaxAttempts: 3, Sleep: func(context.Context, time.Duration) error { return nil }}
	if err := e.RegisterTable(tbl); err != nil {
		t.Fatal(err)
	}
	// Every 10th id fails its first two attempts, then succeeds.
	var mu sync.Mutex
	attempts := make(map[int64]int)
	err := e.RegisterUDF(UDF{
		Name: "good_credit",
		BodyErr: func(_ context.Context, v table.Value) (bool, error) {
			id := v.(int64)
			if id%10 == 0 {
				mu.Lock()
				attempts[id]++
				a := attempts[id]
				mu.Unlock()
				if a <= 2 {
					return false, errors.New("transient blip")
				}
			}
			return truth[id], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(exactQuery(FailOnError))
	if err != nil {
		t.Fatalf("transient errors within the retry budget must not fail the query: %v", err)
	}
	if res.Stats.FailedRows != 0 {
		t.Errorf("FailedRows = %d, want 0 (all rows recovered)", res.Stats.FailedRows)
	}
	if want := 2 * 20; res.Stats.Retries != want { // 20 flaky ids × 2 extra attempts
		t.Errorf("Retries = %d, want %d", res.Stats.Retries, want)
	}
	wantRows := 0
	for _, v := range truth {
		if v {
			wantRows++
		}
	}
	if len(res.Rows) != wantRows {
		t.Errorf("got %d rows, want %d", len(res.Rows), wantRows)
	}
}

func TestBreakerTripRecordedInStats(t *testing.T) {
	// A long run of consecutive failures trips the breaker; the denied
	// remainder resolves as failed rows without invoking the UDF.
	failIDs := make(map[int64]bool)
	for id := int64(50); id < 150; id++ {
		failIDs[id] = true
	}
	e, _ := newFallibleEngine(t, 300, failIDs)
	e.Breaker = resilience.BreakerConfig{Window: 8, MinCalls: 4, FailureRate: 0.5, Cooldown: 200, Probes: 2, Segment: 8}
	res, err := e.Execute(exactQuery(SkipFailed))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BreakerTrips == 0 {
		t.Fatal("BreakerTrips = 0, want the failure run to trip the breaker")
	}
	if res.Stats.FailedRows < len(failIDs) {
		t.Errorf("FailedRows = %d, want ≥ %d (failures + denials)", res.Stats.FailedRows, len(failIDs))
	}
	sts := e.BreakerStatuses()
	if len(sts) != 1 || sts[0].Table != "loans" || sts[0].UDF != "good_credit" || sts[0].Trips == 0 {
		t.Fatalf("BreakerStatuses() = %+v", sts)
	}
}

func TestFailedRowsNotCachedAcrossQueries(t *testing.T) {
	tbl, truth := buildLoanTable(t, 100, 42)
	e := New(7)
	e.Retry = resilience.Policy{Sleep: func(context.Context, time.Duration) error { return nil }}
	if err := e.RegisterTable(tbl); err != nil {
		t.Fatal(err)
	}
	// Row 5 fails during the first query only; the service then "recovers".
	var mu sync.Mutex
	healthy := false
	err := e.RegisterUDF(UDF{
		Name: "good_credit",
		BodyErr: func(_ context.Context, v table.Value) (bool, error) {
			id := v.(int64)
			mu.Lock()
			h := healthy
			mu.Unlock()
			if id == 5 && !h {
				return false, resilience.New(resilience.Permanent, "udf", errors.New("down"))
			}
			return truth[id], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := e.Execute(exactQuery(SkipFailed))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.FailedRows != 1 {
		t.Fatalf("first query FailedRows = %d, want 1", res1.Stats.FailedRows)
	}
	mu.Lock()
	healthy = true
	mu.Unlock()
	res2, err := e.Execute(exactQuery(SkipFailed))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.FailedRows != 0 {
		t.Fatalf("second query FailedRows = %d, want 0 — the failure must not have been cached", res2.Stats.FailedRows)
	}
	has5 := false
	for _, row := range res2.Rows {
		if row == 5 {
			has5 = true
		}
	}
	if truth[5] != has5 {
		t.Errorf("row 5 in second result = %v, want %v (re-evaluated after recovery)", has5, truth[5])
	}
}

func TestRegisterUDFBodyValidation(t *testing.T) {
	e := New(1)
	if err := e.RegisterUDF(UDF{Name: "x"}); err == nil {
		t.Error("want an error registering a UDF with no body")
	}
	err := e.RegisterUDF(UDF{
		Name:    "x",
		Body:    func(table.Value) bool { return true },
		BodyErr: func(context.Context, table.Value) (bool, error) { return true, nil },
	})
	if err == nil {
		t.Error("want an error registering a UDF with both bodies")
	}
}

func TestParseFailurePolicy(t *testing.T) {
	for in, want := range map[string]FailurePolicy{
		"": FailOnError, "fail": FailOnError, "skip": SkipFailed, "degrade": DegradeFailed,
	} {
		got, err := ParseFailurePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFailurePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFailurePolicy("explode"); err == nil {
		t.Error("want an error for an unknown policy")
	}
	if err := (Query{Table: "t", UDFName: "u", UDFArg: "a", OnFailure: "explode"}).Validate(); err == nil {
		t.Error("Validate must reject an unknown failure policy")
	}
}

func TestApproximateQueryWithFailingRowsDegrades(t *testing.T) {
	// Every 5th id fails when invoked. An approximate query may still emit
	// such rows as part of a group accepted without evaluation — failure
	// semantics govern invoked rows only — but the invocations that did fail
	// must be counted, excluded from evidence, and mark the result degraded.
	failIDs := make(map[int64]bool)
	for id := int64(0); id < 3000; id += 5 {
		failIDs[id] = true
	}
	e, _ := newFallibleEngine(t, 3000, failIDs)
	res, err := e.Execute(Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Approx: approx(0.8, 0.8, 0.8), GroupOn: "grade", OnFailure: DegradeFailed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FailedRows == 0 || !res.Stats.Degraded {
		t.Errorf("FailedRows=%d Degraded=%v, want the failures surfaced", res.Stats.FailedRows, res.Stats.Degraded)
	}
	if len(res.Rows) == 0 {
		t.Error("degraded approximate query returned no rows at all")
	}
}
