package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/resilience"
	"repro/internal/table"
)

// analyzeEngine builds an engine whose UDF fails transiently-but-
// persistently on a block of ids (so invocations retry AND ultimately
// fail), with a tight breaker so the failure run trips it. Parallelism is
// the variable under test: every EXPLAIN ANALYZE count must be identical
// at any setting.
func analyzeEngine(t testing.TB, parallelism int) *Engine {
	t.Helper()
	tbl, truth := buildLoanTable(t, 300, 42)
	e := New(7)
	e.Parallelism = parallelism
	e.Retry = resilience.Policy{Sleep: func(context.Context, time.Duration) error { return nil }}
	e.Breaker = resilience.BreakerConfig{Window: 8, MinCalls: 4, FailureRate: 0.5, Cooldown: 200, Probes: 2, Segment: 8}
	if err := e.RegisterTable(tbl); err != nil {
		t.Fatal(err)
	}
	err := e.RegisterUDF(UDF{
		Name: "good_credit",
		BodyErr: func(_ context.Context, v table.Value) (bool, error) {
			id := v.(int64)
			if id >= 50 && id < 150 {
				return false, resilience.New(resilience.Transient, "udf", errors.New("service flapping"))
			}
			return truth[id], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// runAnalyzed executes the exact query under EXPLAIN ANALYZE and returns
// the annotated plan text with wall times stripped (ZeroTimings), plus
// the result.
func runAnalyzed(t testing.TB, e *Engine) (string, *Result) {
	t.Helper()
	root, res, err := e.ExplainAnalyzeContext(context.Background(), exactQuery(SkipFailed))
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || root == nil {
		t.Fatal("ExplainAnalyzeContext returned nil result or plan")
	}
	plan.ZeroTimings(root)
	return plan.Format(root), res
}

func TestExplainAnalyzeCountsDeterministicAcrossParallelism(t *testing.T) {
	// Two runs against one engine: the first trips the breaker (and
	// retries its transient failures); the second sees breaker denials.
	// Both annotated plans — count fields only — must be bit-identical at
	// parallelism 1 and 8.
	render := func(parallelism int) (string, string) {
		e := analyzeEngine(t, parallelism)
		cold, _ := runAnalyzed(t, e)
		warm, _ := runAnalyzed(t, e)
		return cold, warm
	}
	cold1, warm1 := render(1)
	cold8, warm8 := render(8)
	if cold1 != cold8 {
		t.Fatalf("cold EXPLAIN ANALYZE counts differ across parallelism:\n--- p=1 ---\n%s\n--- p=8 ---\n%s", cold1, cold8)
	}
	if warm1 != warm8 {
		t.Fatalf("warm EXPLAIN ANALYZE counts differ across parallelism:\n--- p=1 ---\n%s\n--- p=8 ---\n%s", warm1, warm8)
	}
	evalLine := func(text string) string {
		for _, line := range strings.Split(text, "\n") {
			if strings.Contains(line, "exact-eval") {
				return line
			}
		}
		return ""
	}
	// Cold run: charged calls, retries and failures, no denials possible
	// (a never-tripped breaker runs the batch as one ungated wave).
	for _, want := range []string{"actual ", "rows=", "calls=", "retries=", "failed="} {
		if !strings.Contains(evalLine(cold1), want) {
			t.Errorf("cold exact-eval line missing %q: %s", want, evalLine(cold1))
		}
	}
	// Warm run: the tripped breaker denies the still-failing block.
	if !strings.Contains(evalLine(warm1), "denied=") {
		t.Errorf("warm exact-eval line missing denials: %s", evalLine(warm1))
	}
	if strings.Contains(cold1, "time=") || strings.Contains(warm1, "time=") {
		t.Error("ZeroTimings left wall-clock fields in the rendered plan")
	}
}

func TestExplainAnalyzeActualNodes(t *testing.T) {
	e := analyzeEngine(t, 4)
	root, res, err := e.ExplainAnalyzeContext(context.Background(), exactQuery(SkipFailed))
	if err != nil {
		t.Fatal(err)
	}
	scan := root.Find(plan.OpScan)
	if scan == nil || scan.Actual == nil || scan.Actual.Rows != 300 {
		t.Fatalf("scan node actual = %+v, want rows=300", scan)
	}
	eval := root.Find(plan.OpExactEval)
	if eval == nil || eval.Actual == nil {
		t.Fatal("exact-eval node missing actuals")
	}
	a := eval.Actual
	if a.Rows != len(res.Rows) {
		t.Errorf("eval rows = %d, want %d", a.Rows, len(res.Rows))
	}
	if a.Calls != res.Stats.Evaluations {
		t.Errorf("eval calls = %d, want %d", a.Calls, res.Stats.Evaluations)
	}
	if a.Retries != res.Stats.Retries {
		t.Errorf("eval retries = %d, want %d", a.Retries, res.Stats.Retries)
	}
	if a.Failed != res.Stats.FailedRows {
		t.Errorf("eval failed = %d, want %d", a.Failed, res.Stats.FailedRows)
	}
	if a.Retries == 0 {
		t.Error("eval retries = 0, want transient failures retried")
	}
	if a.ElapsedNS <= 0 {
		t.Error("eval elapsed not measured")
	}

	// Second query against the tripped breaker: denials recorded, and only
	// for rows that could not resolve from the warm cache.
	root2, res2, err := e.ExplainAnalyzeContext(context.Background(), exactQuery(SkipFailed))
	if err != nil {
		t.Fatal(err)
	}
	a2 := root2.Find(plan.OpExactEval).Actual
	if a2.Denied == 0 {
		t.Error("second-run denied = 0, want breaker denials recorded")
	}
	if a2.Denied > a2.Failed {
		t.Errorf("denied %d > failed %d: denials are a subset of failures", a2.Denied, a2.Failed)
	}
	if a2.Failed != res2.Stats.FailedRows {
		t.Errorf("second-run failed = %d, want %d", a2.Failed, res2.Stats.FailedRows)
	}
}

func TestExplainAnalyzeApproxPipeline(t *testing.T) {
	tbl, truth := buildLoanTable(t, 600, 42)
	e := New(7)
	if err := e.RegisterTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterUDF(UDF{Name: "good_credit", Body: func(v table.Value) bool { return truth[v.(int64)] }}); err != nil {
		t.Fatal(err)
	}
	q := Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		GroupOn: "grade",
		Approx:  &Approx{Precision: 0.9, Recall: 0.9, Probability: 0.9},
	}
	root, res, err := e.ExplainAnalyzeContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	gr := root.Find(plan.OpGroupResolve)
	if gr == nil || gr.Actual == nil || gr.Actual.Groups != 3 {
		t.Fatalf("group-resolve actual = %+v, want 3 groups", gr)
	}
	smp := root.Find(plan.OpSample)
	if smp == nil || smp.Actual == nil || smp.Actual.Rows != res.Stats.Sampled {
		t.Fatalf("sample actual = %+v, want rows=%d", smp, res.Stats.Sampled)
	}
	mrg := root.Find(plan.OpMerge)
	if mrg == nil || mrg.Actual == nil || mrg.Actual.Rows != len(res.Rows) {
		t.Fatalf("merge actual = %+v, want rows=%d", mrg, len(res.Rows))
	}
}

func TestTraceSpansCoverPipeline(t *testing.T) {
	e := analyzeEngine(t, 4)
	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := e.ExecuteContext(ctx, exactQuery(SkipFailed)); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, s := range tr.Spans() {
		names[s.Name] = true
	}
	for _, want := range []string{"bind", "plan", "op:scan", "op:exact-eval"} {
		if !names[want] {
			t.Errorf("missing span %q in %v", want, names)
		}
	}
}
