package engine

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/table"
)

func filterTestTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.New("t", table.MustSchema(
		table.ColumnDef{Name: "n", Type: table.Int},
		table.ColumnDef{Name: "x", Type: table.Float},
		table.ColumnDef{Name: "s", Type: table.String},
	))
	rows := []struct {
		n int64
		x float64
		s string
	}{
		{42, 1.5, "a"},
		{7, 42, "b"},
		{42, 100, "a"},
		{-3, 0.1, "c"},
		{0, math.Copysign(0, -1), "z0"}, // row 4: negative zero
		{1, 0, "p0"},                    // row 5: positive zero
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.n, r.x, r.s); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTypedFilterSemantics(t *testing.T) {
	e := New(1)
	tbl := filterTestTable(t)
	cases := []struct {
		filters []Filter
		want    []int
	}{
		// Typed int comparison.
		{[]Filter{{Column: "n", Value: "42"}}, []int{0, 2}},
		{[]Filter{{Column: "n", Value: "-3"}}, []int{3}},
		// Non-canonical renderings never match (same as the old
		// render-and-compare semantics).
		{[]Filter{{Column: "n", Value: "042"}}, []int{}},
		{[]Filter{{Column: "n", Value: "+42"}}, []int{}},
		{[]Filter{{Column: "n", Value: "4.2"}}, []int{}},
		{[]Filter{{Column: "n", Value: "zap"}}, []int{}},
		// Typed float comparison; FloatColumn renders 42 as "42".
		{[]Filter{{Column: "x", Value: "1.5"}}, []int{0}},
		{[]Filter{{Column: "x", Value: "42"}}, []int{1}},
		{[]Filter{{Column: "x", Value: "1e2"}}, []int{}},
		{[]Filter{{Column: "x", Value: "0.1"}}, []int{3}},
		// Signed zeros render differently ("0" vs "-0") and must not
		// conflate under the typed comparison.
		{[]Filter{{Column: "x", Value: "0"}}, []int{5}},
		{[]Filter{{Column: "x", Value: "-0"}}, []int{4}},
		// Dictionary-code string comparison.
		{[]Filter{{Column: "s", Value: "a"}}, []int{0, 2}},
		{[]Filter{{Column: "s", Value: "z"}}, []int{}},
		// Conjunction of filters.
		{[]Filter{{Column: "n", Value: "42"}, {Column: "s", Value: "a"}, {Column: "x", Value: "100"}}, []int{2}},
	}
	for _, c := range cases {
		got, err := e.filterRows(tbl, c.filters)
		if err != nil {
			t.Fatalf("%v: %v", c.filters, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("filters %v matched %v, want %v", c.filters, got, c.want)
		}
	}
	// No filters means "all rows" signaled as nil.
	got, err := e.filterRows(tbl, nil)
	if err != nil || got != nil {
		t.Fatalf("no filters: %v, %v", got, err)
	}
	// Unknown column errors.
	if _, err := e.filterRows(tbl, []Filter{{Column: "nope", Value: "1"}}); err == nil {
		t.Fatal("unknown filter column accepted")
	}
}
