package engine

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/catalog"
	"repro/internal/table"
)

// catalogEngine is newTestEngine plus an attached catalog in dir. The
// table and truth are reproducible, so successive engines simulate
// process restarts over the same data.
func catalogEngine(t testing.TB, n int, dir string) (*Engine, map[int64]bool, *atomic.Int64) {
	t.Helper()
	e, truth, calls := newTestEngine(t, n)
	c, err := catalog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	e.SetCatalog(c)
	return e, truth, calls
}

func exactQ() Query {
	return Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true}
}

func approxQ() Query {
	q := exactQ()
	q.Approx = approx(0.8, 0.8, 0.8)
	return q
}

// TestCatalogWarmRestartExact: a repeated exact workload after a restart
// runs with zero UDF invocations and identical output.
func TestCatalogWarmRestartExact(t *testing.T) {
	dir := t.TempDir()
	e1, _, calls1 := catalogEngine(t, 600, dir)
	res1, err := e1.Execute(exactQ())
	if err != nil {
		t.Fatal(err)
	}
	if calls1.Load() != 600 {
		t.Fatalf("cold run invoked %d bodies, want 600", calls1.Load())
	}
	if err := e1.CloseCatalog(); err != nil {
		t.Fatal(err)
	}

	e2, _, calls2 := catalogEngine(t, 600, dir)
	res2, err := e2.Execute(exactQ())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Rows, res2.Rows) {
		t.Fatalf("warm restart changed the exact answer: %d vs %d rows", len(res1.Rows), len(res2.Rows))
	}
	if calls2.Load() != 0 || res2.Stats.Evaluations != 0 {
		t.Fatalf("warm restart paid %d invocations / %d evaluations, want 0", calls2.Load(), res2.Stats.Evaluations)
	}
	if res2.Stats.CacheHits != 600 || res2.Stats.CacheMisses != 0 {
		t.Fatalf("warm stats hits=%d misses=%d, want 600/0", res2.Stats.CacheHits, res2.Stats.CacheMisses)
	}
	if hits, misses := e2.CacheCounters(); hits != 600 || misses != 0 {
		t.Fatalf("engine counters hits=%d misses=%d, want 600/0", hits, misses)
	}
}

// TestCatalogWarmRestartApprox: after a restart the approximate workload
// skips the labeling pass (column memo) and its top-ups (seeded
// evidence): Sampled strictly shrinks and — because the cold run also ran
// an exact query — no UDF is ever invoked.
func TestCatalogWarmRestartApprox(t *testing.T) {
	dir := t.TempDir()
	e1, _, _ := catalogEngine(t, 600, dir)
	if _, err := e1.Execute(exactQ()); err != nil {
		t.Fatal(err)
	}
	res1, err := e1.Execute(approxQ())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Sampled == 0 {
		t.Fatal("cold approximate run sampled nothing")
	}
	if err := e1.CloseCatalog(); err != nil {
		t.Fatal(err)
	}

	e2, _, calls2 := catalogEngine(t, 600, dir)
	res2, err := e2.Execute(approxQ())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Sampled >= res1.Stats.Sampled {
		t.Fatalf("warm Sampled %d not reduced from cold %d", res2.Stats.Sampled, res1.Stats.Sampled)
	}
	if calls2.Load() != 0 || res2.Stats.Evaluations != 0 {
		t.Fatalf("warm approx paid %d invocations / %d evaluations, want 0", calls2.Load(), res2.Stats.Evaluations)
	}
	if res2.Stats.ChosenColumn != res1.Stats.ChosenColumn {
		t.Fatalf("memoized column %q differs from discovered %q", res2.Stats.ChosenColumn, res1.Stats.ChosenColumn)
	}
	cc := e2.CatalogCounters()
	if cc.ColumnMemoHits != 1 {
		t.Fatalf("column memo hits %d, want 1", cc.ColumnMemoHits)
	}
	if cc.SeededRows == 0 {
		t.Fatal("no sampler rows were seeded from the catalog")
	}
}

// TestCatalogReRegisterInvalidates is the regression test for the
// re-registration contract: replacing a UDF body drops persisted verdicts
// (durably) as well as the in-memory cache, so a changed body can never
// serve stale outcomes — in this process or after another restart.
func TestCatalogReRegisterInvalidates(t *testing.T) {
	dir := t.TempDir()
	e1, truth, _ := catalogEngine(t, 300, dir)
	res1, err := e1.Execute(exactQ())
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.FlushCatalog(); err != nil {
		t.Fatal(err)
	}

	// Replace the body with its negation. The old verdicts must die.
	var calls2 atomic.Int64
	err = e1.RegisterUDF(UDF{
		Name: "good_credit",
		Body: func(v table.Value) bool {
			calls2.Add(1)
			return !truth[v.(int64)]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := e1.Catalog().Stats(); st.OutcomeRows != 0 {
		t.Fatalf("persisted verdicts survived re-registration: %+v", st)
	}
	res2, err := e1.Execute(exactQ())
	if err != nil {
		t.Fatal(err)
	}
	if calls2.Load() != 300 {
		t.Fatalf("re-registered body invoked %d times, want 300 (stale verdicts served)", calls2.Load())
	}
	if len(res1.Rows)+len(res2.Rows) != 300 {
		t.Fatalf("negated predicate rows %d + %d != 300", len(res1.Rows), len(res2.Rows))
	}
	if err := e1.CloseCatalog(); err != nil {
		t.Fatal(err)
	}

	// A fresh process registering the NEW body first-time must inherit the
	// new verdicts, not the old ones.
	e2, _, _ := newTestEngine(t, 300)
	// newTestEngine registered the original body; replace with negation
	// BEFORE attaching the catalog (first process life for this catalog).
	var calls3 atomic.Int64
	err = e2.RegisterUDF(UDF{
		Name: "good_credit",
		Body: func(v table.Value) bool {
			calls3.Add(1)
			return !truth[v.(int64)]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := catalog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	e2.SetCatalog(c)
	res3, err := e2.Execute(exactQ())
	if err != nil {
		t.Fatal(err)
	}
	if calls3.Load() != 0 {
		t.Fatalf("restart re-paid %d invocations for re-registered body", calls3.Load())
	}
	if !reflect.DeepEqual(res2.Rows, res3.Rows) {
		t.Fatal("restart served different rows than the re-registered body computed")
	}
}

// TestCatalogCacheCountersColdRun: without a catalog the counters still
// work — second identical query is served fully from the in-process
// cross-query cache.
func TestCatalogCacheCountersColdRun(t *testing.T) {
	e, _, _ := newTestEngine(t, 300)
	res1, err := e.Execute(exactQ())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.CacheHits != 0 || res1.Stats.CacheMisses != 300 {
		t.Fatalf("cold stats hits=%d misses=%d, want 0/300", res1.Stats.CacheHits, res1.Stats.CacheMisses)
	}
	res2, err := e.Execute(exactQ())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.CacheHits != 300 || res2.Stats.CacheMisses != 0 {
		t.Fatalf("warm stats hits=%d misses=%d, want 300/0", res2.Stats.CacheHits, res2.Stats.CacheMisses)
	}
	if hits, misses := e.CacheCounters(); hits != 300 || misses != 300 {
		t.Fatalf("engine counters hits=%d misses=%d, want 300/300", hits, misses)
	}
}

// TestCatalogFaultedQueryPersistsNothing: a panicking UDF body must not
// leave synthetic verdicts in the durable catalog.
func TestCatalogFaultedQueryPersistsNothing(t *testing.T) {
	dir := t.TempDir()
	e, truth, _ := catalogEngine(t, 300, dir)
	err := e.RegisterUDF(UDF{
		Name: "flaky",
		Body: func(v table.Value) bool {
			if v.(int64) == 7 {
				panic("boom")
			}
			return truth[v.(int64)]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Table: "loans", UDFName: "flaky", UDFArg: "id", Want: true, Approx: approx(0.8, 0.8, 0.8)}
	if _, err := e.Execute(q); err == nil {
		t.Fatal("faulting query succeeded")
	}
	if err := e.FlushCatalog(); err != nil {
		t.Fatal(err)
	}
	st := e.Catalog().Stats()
	if st.SampleRows != 0 {
		t.Fatalf("faulted query persisted %d sample rows", st.SampleRows)
	}
}
