package engine

import (
	"fmt"

	"repro/internal/core"
)

// Approx carries the accuracy contract of an approximate query.
type Approx struct {
	Precision   float64 // α
	Recall      float64 // β
	Probability float64 // ρ
}

// Constraints converts to the core representation.
func (a Approx) Constraints() core.Constraints {
	return core.Constraints{Alpha: a.Precision, Beta: a.Recall, Rho: a.Probability}
}

// Query is the engine's logical plan for
//
//	SELECT cols FROM table WHERE udf(arg) = want
//	[WITH PRECISION α RECALL β PROBABILITY ρ] [GROUP ON col] [BUDGET b]
type Query struct {
	// Table to select from.
	Table string
	// Columns to project; empty or ["*"] means all.
	Columns []string
	// UDFName / UDFArg form the predicate UDFName(UDFArg) = Want.
	UDFName string
	UDFArg  string
	// Want is the required predicate outcome (true for "= 1").
	Want bool
	// Approx, when non-nil, allows approximate evaluation; nil demands the
	// exact answer (evaluate every tuple).
	Approx *Approx
	// GroupOn optionally pins the correlated column; empty lets the engine
	// discover one (Section 4.4), and the special value "virtual" requests
	// the logistic-regression virtual column of Section 6.3.2.
	GroupOn string
	// Budget, when positive, switches to the fixed-budget objective:
	// maximize recall subject to the precision bound and cost ≤ Budget.
	Budget float64
	// Conjuncts adds further expensive predicates ANDed with the first
	// (Section 5 and its N-ary generalization): for each c,
	// AND c.UDFName(c.UDFArg) = c.Want. With exactly one conjunct and
	// Approx set, the planner uses the paper's five-action two-predicate
	// optimizer (which requires an explicit GroupOn column); with two or
	// more, it samples every predicate, orders them cheapest-first and
	// evaluates in short-circuit waves. Without Approx, conjunctions of any
	// arity evaluate exactly, each wave touching only prior survivors.
	Conjuncts []Conjunct
	// Filters are cheap equality predicates evaluated before any UDF work.
	Filters []Filter
	// OnFailure decides what a row whose UDF invocation ultimately fails
	// (after retries, or denied by an open circuit breaker) means: fail the
	// query (FailOnError, the default), silently exclude the row
	// (SkipFailed), or exclude it and mark the result degraded
	// (DegradeFailed). "" defers to the engine default.
	OnFailure FailurePolicy
}

// Conjunct is one additional expensive predicate of a conjunction.
type Conjunct struct {
	UDFName string
	UDFArg  string
	Want    bool
}

// predicates lists every expensive predicate of the query, first predicate
// first.
func (q Query) predicates() []Conjunct {
	preds := make([]Conjunct, 0, 1+len(q.Conjuncts))
	preds = append(preds, Conjunct{UDFName: q.UDFName, UDFArg: q.UDFArg, Want: q.Want})
	return append(preds, q.Conjuncts...)
}

// Filter is a cheap (non-UDF) equality predicate. Per Section 5, cheap
// predicates execute first: the engine scans the column store, keeps only
// matching rows, and runs the expensive-predicate machinery on that
// subset. Values compare against the canonical string rendering of the
// cell (so "42", "42.5" and "A" all work).
type Filter struct {
	Column string
	Value  string
}

// Validate performs static checks (table/UDF existence is checked at
// execution time).
func (q Query) Validate() error {
	if q.Table == "" {
		return fmt.Errorf("engine: query without table")
	}
	if q.UDFName == "" || q.UDFArg == "" {
		return fmt.Errorf("engine: query without UDF predicate")
	}
	if q.Approx != nil {
		c := q.Approx.Constraints()
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if q.Budget < 0 {
		return fmt.Errorf("engine: negative budget %v", q.Budget)
	}
	if q.Budget > 0 && q.Approx == nil {
		return fmt.Errorf("engine: BUDGET requires WITH PRECISION/RECALL/PROBABILITY")
	}
	for _, c := range q.Conjuncts {
		if c.UDFName == "" || c.UDFArg == "" {
			return fmt.Errorf("engine: empty AND predicate")
		}
	}
	if len(q.Conjuncts) > 0 && q.Budget > 0 {
		return fmt.Errorf("engine: BUDGET is not supported with AND conjunctions")
	}
	if _, err := ParseFailurePolicy(string(q.OnFailure)); err != nil {
		return err
	}
	return nil
}

// Stats reports how a query execution spent its budget.
type Stats struct {
	// Evaluations is the number of UDF invocations (sampling + execution).
	Evaluations int
	// Retrievals is the number of tuples fetched.
	Retrievals int
	// Cost is o_r·Retrievals + o_e·Evaluations.
	Cost float64
	// ChosenColumn is the correlated column the optimizer used ("" for
	// exact execution).
	ChosenColumn string
	// Sampled is the number of tuples evaluated during estimation.
	Sampled int
	// Exact reports whether the query ran without approximation.
	Exact bool
	// AchievedRecallBound is set for budget queries: the recall bound the
	// planner could afford.
	AchievedRecallBound float64
	// CacheHits counts rows this query was served from the cross-query
	// outcome cache (no UDF invocation charged). Zero when the cache is
	// disabled.
	CacheHits int
	// CacheMisses counts cache lookups this query paid for with a fresh
	// UDF invocation. Zero when the cache is disabled.
	CacheMisses int
	// FailedRows counts rows whose UDF invocation ultimately failed (after
	// retries, or denied by an open circuit breaker), summed per predicate:
	// a row failing under two predicates counts twice. Failed rows are
	// excluded from the output and from all learned evidence.
	FailedRows int
	// Retries counts the extra UDF invocation attempts retries made beyond
	// each row's first.
	Retries int
	// BreakerTrips counts how many times this query tripped a circuit
	// breaker open.
	BreakerTrips int
	// Degraded marks a partial result: the failure policy was "degrade"
	// and at least one row was excluded because its UDF invocation failed.
	Degraded bool
}

// Result is a query's output: the matching row ids of the base table (so
// callers can project whatever they need) plus execution statistics.
type Result struct {
	Rows  []int
	Stats Stats
}
