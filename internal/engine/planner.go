package engine

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/plan"
)

// The planner layer: queries are lowered into plan.Spec (the query plus
// everything only the engine knows — row counts, the cost model,
// per-predicate costs, any catalog-memoized column choice), shaped into a
// physical operator tree by internal/plan, and executed uniformly by the
// operators in operators.go. The former dispatch branches (executeExact /
// executeApprox / executeTwoPred / the join path) are now plan shapes.

// buildSpec lowers a bound statement into the planner's spec. Everything
// is read off the pipeState, so tables, predicates and costs are resolved
// exactly once (by bindStatement) per plan or execution.
func (e *Engine) buildSpec(st *pipeState) plan.Spec {
	q := st.q
	sp := plan.Spec{
		Table:         q.Table,
		Rows:          st.tbl.NumRows(),
		Preds:         make([]plan.Pred, len(st.preds)),
		GroupOn:       q.GroupOn,
		VirtualName:   VirtualColumn,
		Budget:        q.Budget,
		Retrieve:      st.cost.Retrieve,
		LabelFraction: e.LabelFraction,
	}
	for i, p := range st.preds {
		sp.Preds[i] = plan.Pred{UDF: p.spec.UDFName, Arg: p.spec.UDFArg, Want: p.spec.Want, Cost: p.cost}
	}
	for _, f := range q.Filters {
		sp.Filters = append(sp.Filters, plan.Filter{Column: f.Column, Value: f.Value})
	}
	if q.Approx != nil {
		sp.Approx = &plan.Approx{Alpha: q.Approx.Precision, Beta: q.Approx.Recall, Rho: q.Approx.Probability}
		sp.SampleNum = 2.5 * q.Approx.Precision
		if q.GroupOn == "" {
			if col, ok := e.peekMemoColumn(q, st.cost); ok {
				sp.MemoColumn = col
			}
		}
	}
	if st.join != nil {
		sp.Join = &plan.Join{
			Table:    st.join.JoinTable,
			Rows:     st.joinTbl.NumRows(),
			LeftKey:  st.join.LeftKey,
			RightKey: st.join.RightKey,
		}
	}
	return sp
}

// predCost resolves the effective o_e for one predicate: its UDF's own
// cost when set, the engine-wide default otherwise. (Not costModel(q) —
// that carries the FIRST predicate's override, which must not leak onto
// later conjuncts.)
func (e *Engine) predCost(p Conjunct) float64 {
	if u, err := e.registry.Lookup(p.UDFName); err == nil && u.Cost > 0 {
		return u.Cost
	}
	return e.Cost.Evaluate
}

// peekMemoColumn reports the catalog-memoized §4.4 column choice for the
// query's workload, if one exists (display only — the group-resolve
// operator re-checks at execution time and falls back to discovery when the
// memo went stale).
func (e *Engine) peekMemoColumn(q Query, cost core.CostModel) (string, bool) {
	c := e.Catalog()
	if c == nil {
		return "", false
	}
	return c.ChosenColumn(workloadKey(q, cost))
}

// validateShape rejects query shapes no rewrite rule covers, with the same
// errors whether the query is planned (EXPLAIN) or executed.
func validateShape(q Query, join *SelectJoinQuery) error {
	if len(q.Conjuncts) == 1 && q.Approx != nil && (q.GroupOn == "" || q.GroupOn == VirtualColumn) {
		return fmt.Errorf("engine: AND conjunctions require an explicit GROUP ON column")
	}
	if len(q.Conjuncts) > 1 && q.Approx != nil && q.GroupOn == VirtualColumn {
		return fmt.Errorf("engine: N-ary AND conjunctions do not support the virtual column")
	}
	if join != nil {
		if q.Approx == nil {
			return fmt.Errorf("engine: select-join requires WITH PRECISION/RECALL/PROBABILITY")
		}
		if q.GroupOn == "" || q.GroupOn == VirtualColumn {
			return fmt.Errorf("engine: select-join requires an explicit GROUP ON column")
		}
		if len(q.Conjuncts) > 0 {
			return fmt.Errorf("engine: select-join does not support AND conjunctions")
		}
	}
	return nil
}

// Plan builds (without executing) the physical operator tree for a query.
func (e *Engine) Plan(q Query) (*plan.Node, error) {
	return e.planStatement(q, nil)
}

// PlanSelectJoin is Plan for the selection-before-join extension.
func (e *Engine) PlanSelectJoin(q SelectJoinQuery) (*plan.Node, error) {
	return e.planStatement(q.Query, &q)
}

func (e *Engine) planStatement(q Query, join *SelectJoinQuery) (*plan.Node, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := validateShape(q, join); err != nil {
		return nil, err
	}
	// The same binder execution uses, so EXPLAIN fails exactly like
	// execution would on unknown tables, UDFs, argument columns, join
	// keys, or a pinned grouping column.
	st, err := e.bindStatement(q, join)
	if err != nil {
		return nil, err
	}
	return plan.Physical(e.buildSpec(st))
}

// Explain renders the query's physical plan as EXPLAIN text.
func (e *Engine) Explain(q Query) (string, error) {
	n, err := e.Plan(q)
	if err != nil {
		return "", err
	}
	return plan.Format(n), nil
}

// ExplainSelectJoin is Explain for the selection-before-join extension.
func (e *Engine) ExplainSelectJoin(q SelectJoinQuery) (string, error) {
	n, err := e.PlanSelectJoin(q)
	if err != nil {
		return "", err
	}
	return plan.Format(n), nil
}

// ExplainAnalyzeContext EXECUTES the query and returns the physical plan
// annotated with per-operator measured counts (plan.Actual) alongside the
// result. The count fields are bit-identical at any parallelism; only the
// per-node wall times vary (see plan.ZeroTimings).
func (e *Engine) ExplainAnalyzeContext(ctx context.Context, q Query) (*plan.Node, *Result, error) {
	res, root, err := e.executeStatement(ctx, q, nil, true, nil)
	if err != nil {
		return nil, nil, err
	}
	return root, res, nil
}

// ExplainAnalyzeSelectJoinContext is ExplainAnalyzeContext for the
// selection-before-join extension.
func (e *Engine) ExplainAnalyzeSelectJoinContext(ctx context.Context, q SelectJoinQuery) (*plan.Node, *Result, error) {
	res, root, err := e.executeStatement(ctx, q.Query, &q, true, nil)
	if err != nil {
		return nil, nil, err
	}
	return root, res, nil
}
