package engine

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/table"
)

// SelectJoinQuery is the Section 5 "single predicate with join" extension:
//
//	SELECT * FROM T WHERE udf(arg) = 1 ... JOIN T2 ON T.LeftKey = T2.RightKey
//
// Tuples of T matching many T2 tuples count with that multiplicity in the
// join result, so the optimizer prefers verifying them even at lower
// selectivity.
type SelectJoinQuery struct {
	Query
	JoinTable string
	LeftKey   string
	RightKey  string
}

// ExecuteSelectJoin plans per (group, join-key-weight-class) subgroups with
// join-multiplicity weights and executes the resulting strategy. The
// output rows are row ids of the base table (joined expansion is left to
// the caller); guarantees are at the join-result level.
func (e *Engine) ExecuteSelectJoin(q SelectJoinQuery) (*Result, error) {
	return e.ExecuteSelectJoinContext(context.Background(), q)
}

// ExecuteSelectJoinContext is ExecuteSelectJoin honoring a context (same
// cancellation contract as ExecuteContext).
func (e *Engine) ExecuteSelectJoinContext(ctx context.Context, q SelectJoinQuery) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if q.Approx == nil {
		return nil, fmt.Errorf("engine: select-join requires WITH PRECISION/RECALL/PROBABILITY")
	}
	if q.GroupOn == "" || q.GroupOn == VirtualColumn {
		return nil, fmt.Errorf("engine: select-join requires an explicit GROUP ON column")
	}
	tbl, err := e.Table(q.Table)
	if err != nil {
		return nil, err
	}
	joinTbl, err := e.Table(q.JoinTable)
	if err != nil {
		return nil, err
	}
	leftCol := tbl.ColumnByName(q.LeftKey)
	if leftCol == nil {
		return nil, fmt.Errorf("engine: table %q has no column %q", q.Table, q.LeftKey)
	}
	rightCol := joinTbl.ColumnByName(q.RightKey)
	if rightCol == nil {
		return nil, fmt.Errorf("engine: table %q has no column %q", q.JoinTable, q.RightKey)
	}
	udf, fault, err := e.rowUDF(tbl, q.Query)
	if err != nil {
		return nil, err
	}
	epoch := e.invalidations.Load()
	meter := e.meterFor(q.Query, udf, fault)
	cost := e.costModel(q.Query)
	cons := q.Approx.Constraints()
	e.mu.Lock()
	rng := e.rng.Split()
	e.mu.Unlock()

	// Join-key multiplicities from the join table.
	mult := make(map[string]int)
	for i := 0; i < joinTbl.NumRows(); i++ {
		mult[rightCol.StringAt(i)]++
	}

	// Subgroups: (correlated value, join multiplicity) pairs, so tuples in
	// one subgroup share both selectivity behaviour and weight.
	subset, err := e.filterRows(tbl, q.Filters)
	if err != nil {
		return nil, err
	}
	base, err := groupsFromColumn(tbl, q.GroupOn, subset)
	if err != nil {
		return nil, err
	}
	type subKey struct {
		group  int
		weight int
	}
	sub := make(map[subKey][]int)
	for gi, g := range base {
		for _, row := range g.Rows {
			w := mult[leftCol.StringAt(row)]
			if w == 0 {
				// A tuple whose join key matches nothing can never appear in
				// the join result: sampling or retrieving it would pay real
				// UDF cost for an unreturnable tuple. Drop it before the
				// sampler ever sees it.
				continue
			}
			sub[subKey{gi, w}] = append(sub[subKey{gi, w}], row)
		}
	}
	if len(sub) == 0 {
		// Every tuple had multiplicity 0: the join result is empty, and no
		// retrieval or evaluation is ever worth paying.
		return &Result{Stats: Stats{ChosenColumn: q.GroupOn}}, nil
	}
	keys := make([]subKey, 0, len(sub))
	for k := range sub {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].group != keys[b].group {
			return keys[a].group < keys[b].group
		}
		return keys[a].weight < keys[b].weight
	})

	groups := make([]core.Group, len(keys))
	for i, k := range keys {
		groups[i] = core.Group{
			Key:  fmt.Sprintf("%s/w%d", base[k.group].Key, k.weight),
			Rows: sub[k],
		}
	}

	// Estimate subgroup selectivities by sampling, then plan with weights.
	sampler := core.NewSampler(groups, meter, rng.Split())
	sampler.SetParallelism(e.parallelism())
	e.seedSamplerFromCatalog(sampler, q.Query, q.GroupOn)
	sizes := make([]int, len(groups))
	for i, g := range groups {
		sizes[i] = len(g.Rows)
	}
	if _, err := sampler.TopUpCtx(ctx, (core.TwoThirdPowerAllocator{Num: 2.5 * cons.Alpha}).Allocate(sizes)); err != nil {
		return nil, err
	}
	infos := sampler.Infos()
	joinGroups := make([]core.JoinGroup, len(keys))
	for i, k := range keys {
		joinGroups[i] = core.JoinGroup{
			Size:        infos[i].Remaining(),
			Selectivity: infos[i].Selectivity,
			JoinWeight:  float64(k.weight),
		}
	}
	strat, err := core.PlanSelectJoin(joinGroups, cons, cost)
	if err != nil {
		return nil, err
	}
	// The strategy covers remaining tuples; execute over the groups with
	// the sampler's outcomes honored.
	exec, err := core.ExecuteParallelCtx(ctx, groups, strat, sampler.Outcomes(), meter, cost, rng.Split(), e.parallelism())
	if err != nil {
		return nil, err
	}
	sort.Ints(exec.Output)
	if fault.Err() != nil {
		return nil, fault.Err()
	}
	e.persistQueryLearnings(sampler, q.Query, cost, q.GroupOn, fault, epoch)
	sampled := sampler.TotalSampled()
	retrievals := sampled + exec.Retrieved
	res := &Result{
		Rows: exec.Output,
		Stats: Stats{
			Evaluations:  meter.Calls(),
			Retrievals:   retrievals,
			Cost:         float64(meter.Calls())*cost.Evaluate + float64(retrievals)*cost.Retrieve,
			ChosenColumn: q.GroupOn,
			Sampled:      sampled,
			CacheHits:    meter.CacheHits(),
			CacheMisses:  meter.CacheMisses(),
		},
	}
	e.cacheHits.Add(int64(res.Stats.CacheHits))
	e.cacheMisses.Add(int64(res.Stats.CacheMisses))
	return res, nil
}

// JoinMultiplicities is a helper exposing the per-key match counts of a
// join table (used by examples and tests).
func JoinMultiplicities(joinTbl *table.Table, key string) (map[string]int, error) {
	col := joinTbl.ColumnByName(key)
	if col == nil {
		return nil, fmt.Errorf("engine: table %q has no column %q", joinTbl.Name(), key)
	}
	mult := make(map[string]int)
	for i := 0; i < joinTbl.NumRows(); i++ {
		mult[col.StringAt(i)]++
	}
	return mult, nil
}
