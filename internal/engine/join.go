package engine

import (
	"context"
	"fmt"

	"repro/internal/table"
)

// SelectJoinQuery is the Section 5 "single predicate with join" extension:
//
//	SELECT * FROM T WHERE udf(arg) = 1 ... JOIN T2 ON T.LeftKey = T2.RightKey
//
// Tuples of T matching many T2 tuples count with that multiplicity in the
// join result, so the optimizer prefers verifying them even at lower
// selectivity.
type SelectJoinQuery struct {
	Query
	JoinTable string
	LeftKey   string
	RightKey  string
}

// ExecuteSelectJoin plans per (group, join-key-weight-class) subgroups with
// join-multiplicity weights and executes the resulting strategy. The
// output rows are row ids of the base table (joined expansion is left to
// the caller); guarantees are at the join-result level.
//
//predlint:allow ctxflow — pre-context compatibility wrapper; cancellable callers use ExecuteSelectJoinContext
func (e *Engine) ExecuteSelectJoin(q SelectJoinQuery) (*Result, error) {
	return e.ExecuteSelectJoinContext(context.Background(), q)
}

// ExecuteSelectJoinContext is ExecuteSelectJoin honoring a context (same
// cancellation contract as ExecuteContext). The join runs through the same
// planner pipeline as every other shape: group-resolve → join-group →
// sample → solve(join-weights) → prob-eval → merge (see operators.go).
func (e *Engine) ExecuteSelectJoinContext(ctx context.Context, q SelectJoinQuery) (*Result, error) {
	res, _, err := e.executeStatement(ctx, q.Query, &q, false, nil)
	return res, err
}

// JoinMultiplicities is a helper exposing the per-key match counts of a
// join table (used by examples and tests).
func JoinMultiplicities(joinTbl *table.Table, key string) (map[string]int, error) {
	col := joinTbl.ColumnByName(key)
	if col == nil {
		return nil, fmt.Errorf("engine: table %q has no column %q", joinTbl.Name(), key)
	}
	mult := make(map[string]int)
	for i := 0; i < joinTbl.NumRows(); i++ {
		mult[col.StringAt(i)]++
	}
	return mult, nil
}
