package engine

import (
	"hash/fnv"
	"testing"

	"repro/internal/table"
)

// rowsChecksum fingerprints an ordered row-id list for golden comparisons.
func rowsChecksum(rows []int) uint64 {
	h := fnv.New64a()
	for _, r := range rows {
		h.Write([]byte{byte(r), byte(r >> 8), byte(r >> 16), byte(r >> 24)})
	}
	return h.Sum64()
}

// TestTwoPredRegressionPinned pins the exact output of the legacy
// two-predicate dispatch (engine seed 7, loan fixture seed 42, captured at
// PR 3 / commit ab23ef1, before the planner refactor subsumed it into the
// N-ary conjunction path). The refactor's contract is bit-for-bit
// compatibility: rows, checksum and every Stats field must match at every
// parallelism level, including the follow-up query that proves the engine's
// RNG stream was consumed identically.
func TestTwoPredRegressionPinned(t *testing.T) {
	type golden struct {
		rows  int
		hash  uint64
		stats Stats
	}
	approxGold := golden{1004, 0x27f4d4d0d6d35d6a, Stats{
		Evaluations: 2972, Retrievals: 2130, Cost: 11046,
		ChosenColumn: "grade", CacheMisses: 2972,
	}}
	followGold := golden{1596, 0xb914cc97771b5ede, Stats{
		Evaluations: 236, Retrievals: 1885, Cost: 2593,
		ChosenColumn: "grade", Sampled: 417, CacheHits: 374, CacheMisses: 236,
	}}
	exactGold := golden{1016, 0x8806df37156d2052, Stats{
		Evaluations: 4515, Retrievals: 3000, Cost: 16545,
		Exact: true, CacheMisses: 4515,
	}}
	check := func(t *testing.T, name string, res *Result, want golden) {
		t.Helper()
		if len(res.Rows) != want.rows || rowsChecksum(res.Rows) != want.hash {
			t.Errorf("%s: got %d rows (hash %#x), want %d (hash %#x)",
				name, len(res.Rows), rowsChecksum(res.Rows), want.rows, want.hash)
		}
		if res.Stats != want.stats {
			t.Errorf("%s: stats %+v, want %+v", name, res.Stats, want.stats)
		}
	}
	for _, par := range []int{1, 4} {
		e, _, _ := newTestEngine(t, 3000)
		e.Parallelism = par
		if err := e.RegisterUDF(UDF{Name: "rich", Body: func(v table.Value) bool {
			return v.(float64) > 80000
		}}); err != nil {
			t.Fatal(err)
		}
		q := Query{
			Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
			Conjuncts: []Conjunct{{UDFName: "rich", UDFArg: "income", Want: true}},
			Approx:    approx(0.75, 0.75, 0.8), GroupOn: "grade",
		}
		res, err := e.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		check(t, "approx two-pred", res, approxGold)

		// A follow-up single-predicate query on the same engine pins the
		// engine RNG stream: if the conjunction path consumed one extra (or
		// one fewer) split, this diverges.
		res2, err := e.Execute(Query{
			Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
			Approx: approx(0.8, 0.8, 0.8), GroupOn: "grade",
		})
		if err != nil {
			t.Fatal(err)
		}
		check(t, "follow-up single-pred", res2, followGold)

		// Exact conjunction on a fresh engine (the warm cache above would
		// change the accounting).
		e2, _, _ := newTestEngine(t, 3000)
		e2.Parallelism = par
		if err := e2.RegisterUDF(UDF{Name: "rich", Body: func(v table.Value) bool {
			return v.(float64) > 80000
		}}); err != nil {
			t.Fatal(err)
		}
		qe := q
		qe.Approx = nil
		qe.GroupOn = ""
		resE, err := e2.Execute(qe)
		if err != nil {
			t.Fatal(err)
		}
		check(t, "exact two-pred", resE, exactGold)
	}
}
