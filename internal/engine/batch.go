package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/table"
)

// Volcano-style batch execution. The planner's physical chain is compiled
// into a pull pipeline of BatchOperators: the scan yields row-id batches
// lazily from the column store with the cheap compiled filters fused in
// (filtered-out rows never materialize anywhere), streaming operators
// (exact-eval, conj-waves) evaluate one batch at a time, and blocking
// stages — everything whose algorithm needs the whole input (grouping,
// sampling, solving, the §5 pipeline, merge) — run their operator body
// once during Open and then replay their product downstream in batches.
//
// The determinism contract is untouched: batches are planned sequentially
// in row order, UDF evaluation inside a batch fans out through
// internal/exec, and verdicts merge back at their batch slot — so output
// rows and every Stats counter are bit-identical at any parallelism AND
// any batch size. The one documented exception is circuit-breaker timing:
// a breaker arms/trips on evaluation-order fold points, and batch
// boundaries are fold points, so workloads that trip breakers mid-query
// may deny different rows at different batch sizes (exactly as they
// already did at different breaker Segment sizes). See DESIGN.md, "Batch
// execution & streaming".

// DefaultBatchSize is the number of rows per batch when Engine.BatchSize
// is unset.
const DefaultBatchSize = 1024

// Batch is one unit of rows flowing between operators: a selection vector
// of row ids into the (columnar) base table, at most Engine.BatchSize
// long. The slice is owned by the producing operator and valid only until
// its next Next call — consumers that retain rows must copy them.
type Batch struct {
	Rows []int
}

// BatchOperator is the Volcano iterator contract every physical operator
// implements. Open prepares the operator (and its children; blocking
// stages do their work here), Next returns the next non-empty batch or
// (nil, nil) at end-of-stream, Close releases resources. Operators are
// single-consumer: Next must not be called concurrently.
type BatchOperator interface {
	Open(ctx context.Context) error
	Next(ctx context.Context) (*Batch, error)
	Close() error
}

// RowSink receives result-row batches as execution produces them. The
// slice is only valid during the call (copy to retain). Returning
// ErrStopStream stops production — upstream operators are cancelled and
// the query finishes with statistics covering the work actually done;
// any other error aborts the query with that error.
type RowSink func(rows []int) error

// ErrStopStream is returned by a RowSink to stop a streaming query early
// (e.g. a row limit was reached). Evaluation of batches not yet pulled is
// skipped entirely.
var ErrStopStream = errors.New("engine: stop streaming")

// scanOp is the pipeline leaf: it walks the table's row ids in order,
// applying the compiled cheap filters inline (operator fusion — a filtered
// row costs one typed comparison and is never appended anywhere), and
// yields surviving rows in batches of the engine's batch size. The batch
// buffer is reused across Next calls, so a fully-streamed scan allocates
// O(batch), not O(table).
type scanOp struct {
	e          *Engine
	st         *pipeState
	node       *plan.Node // scan node (EXPLAIN ANALYZE attribution)
	filterNode *plan.Node // filter node fused into this scan; nil without filters

	preds     []func(int) bool
	cursor    int
	buf       []int
	batch     Batch
	opened    bool
	done      bool
	scanned   int // rows read off the table so far
	emitted   int // rows surviving the fused filters
	elapsedNS int64
}

func (s *scanOp) Open(ctx context.Context) error {
	if s.opened {
		return nil
	}
	s.opened = true
	filters := s.st.q.Filters
	s.preds = make([]func(int) bool, len(filters))
	for i, f := range filters {
		col := s.st.tbl.ColumnByName(f.Column)
		if col == nil {
			return fmt.Errorf("engine: table %q has no column %q to filter on", s.st.tbl.Name(), f.Column)
		}
		s.preds[i] = compileFilter(col, f.Value)
	}
	s.buf = make([]int, 0, s.e.batchSize())
	return nil
}

func (s *scanOp) Next(ctx context.Context) (*Batch, error) {
	if s.done {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := obs.FromContext(ctx).Start("op:scan")
	start := obs.Now()
	n := s.st.tbl.NumRows()
	size := cap(s.buf)
	s.buf = s.buf[:0]
	// Scan until the batch holds `size` survivors (or the table ends):
	// batches carry surviving rows, so downstream work per batch is
	// constant regardless of filter selectivity.
	for s.cursor < n && len(s.buf) < size {
		r := s.cursor
		s.cursor++
		s.scanned++
		keep := true
		for _, p := range s.preds {
			if !p(r) {
				keep = false
				break
			}
		}
		if keep {
			s.buf = append(s.buf, r)
		}
	}
	s.elapsedNS += int64(obs.Since(start))
	sp.End()
	if len(s.buf) == 0 {
		s.done = true
		return nil, nil
	}
	s.emitted += len(s.buf)
	s.batch.Rows = s.buf
	return &s.batch, nil
}

func (s *scanOp) Close() error { return nil }

// stageOp wraps one blocking operator body (group-resolve, sample, solve,
// prob-eval, merge, join-group, conj-sample, conj-exec) in the iterator
// contract: Open runs the children first (pipeline tail), then the body —
// exactly the legacy walker's child-first order, so RNG splits and meter
// charges happen in the same sequence — and Next replays the operator's
// row universe downstream in batches for consumers that stream (the
// conj-waves operator above a conj-sample stage). A stage whose child
// already finished the result (an operator short-circuit, e.g. the empty
// join) skips its body, exactly like the legacy walker.
type stageOp struct {
	e     *Engine
	st    *pipeState
	node  *plan.Node
	child BatchOperator
	run   func(ctx context.Context) error
	// drain: this is the lowest blocking stage and cheap filters exist, so
	// the fused scan is pulled dry here to materialize st.subset (the row
	// universe every blocking body reads). Without filters the drain is
	// skipped and subset stays nil ("all rows"), so the scan never runs.
	drain bool

	opened bool
	cursor int
	buf    []int
	batch  Batch
}

func (s *stageOp) Open(ctx context.Context) error {
	if s.opened {
		return nil
	}
	s.opened = true
	if err := s.child.Open(ctx); err != nil {
		return err
	}
	if s.drain {
		subset := []int{}
		for {
			b, err := s.child.Next(ctx)
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			subset = append(subset, b.Rows...)
		}
		s.st.subset = subset
	}
	if s.st.res != nil {
		return nil // a lower operator already finished the result
	}
	sp := obs.FromContext(ctx).Start("op:" + string(s.node.Op))
	var before predTotals
	var start time.Time
	if s.st.analyze {
		before = s.st.predTotals()
		start = obs.Now()
	}
	err := s.run(ctx)
	if err == nil && s.st.analyze {
		after := s.st.predTotals()
		a := &plan.Actual{
			Calls:       after.calls - before.calls,
			CacheHits:   after.hits - before.hits,
			CacheMisses: after.misses - before.misses,
			Retries:     after.retries - before.retries,
			Denied:      after.denied - before.denied,
			Failed:      after.failed - before.failed,
			ElapsedNS:   int64(obs.Since(start)),
		}
		s.st.fillActualRows(s.node.Op, a)
		s.node.Actual = a
	}
	sp.End()
	return err
}

// Next replays the (possibly filtered) row universe in batches: blocking
// stages consume groups and samples out of pipeState, so what flows up to
// a streaming consumer is the scan universe itself.
func (s *stageOp) Next(ctx context.Context) (*Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.buf == nil {
		s.buf = make([]int, 0, s.e.batchSize())
	}
	sub := s.st.subset
	total := s.st.tbl.NumRows()
	if sub != nil {
		total = len(sub)
	}
	if s.cursor >= total {
		return nil, nil
	}
	end := s.cursor + cap(s.buf)
	if end > total {
		end = total
	}
	s.buf = s.buf[:0]
	for i := s.cursor; i < end; i++ {
		if sub != nil {
			s.buf = append(s.buf, sub[i])
		} else {
			s.buf = append(s.buf, i)
		}
	}
	s.cursor = end
	s.batch.Rows = s.buf
	return &s.batch, nil
}

func (s *stageOp) Close() error { return s.child.Close() }

// resultOp terminates blocking chains: once Open has run every stage (and
// st.res is finished), Next serves the result rows in batches — which is
// what streams a fully-materialized shape's output incrementally.
type resultOp struct {
	e      *Engine
	st     *pipeState
	child  BatchOperator
	cursor int
	batch  Batch
}

func (r *resultOp) Open(ctx context.Context) error { return r.child.Open(ctx) }

func (r *resultOp) Next(ctx context.Context) (*Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.st.res == nil {
		return nil, fmt.Errorf("engine: pipeline finished without a result")
	}
	rows := r.st.res.Rows
	if r.cursor >= len(rows) {
		return nil, nil
	}
	end := r.cursor + r.e.batchSize()
	if end > len(rows) {
		end = len(rows)
	}
	r.batch.Rows = rows[r.cursor:end]
	r.cursor = end
	return &r.batch, nil
}

func (r *resultOp) Close() error { return r.child.Close() }

// streamingOp is the extra contract of terminal operators that produce
// result rows batch-by-batch (exact-eval, conj-waves): finalize assembles
// st.res from whatever was evaluated so far — at end-of-stream, or after
// an early stop.
type streamingOp interface {
	BatchOperator
	finalize()
}

// exactEvalOp evaluates the predicate on each pulled batch. Verdicts land
// at their batch slot, so output order matches the sequential scan exactly;
// rows whose invocation failed carry verdict false and drop out.
type exactEvalOp struct {
	e       *Engine
	st      *pipeState
	node    *plan.Node
	child   BatchOperator
	collect bool // accumulate output rows for st.res (materialized path)

	pool      *exec.Pool
	pulled    int // rows pulled from the child (= retrievals so far)
	emitted   int
	out       []int
	buf       []int
	batch     Batch
	opened    bool
	finalized bool
	before    predTotals
	elapsedNS int64
}

func (o *exactEvalOp) Open(ctx context.Context) error {
	if o.opened {
		return nil
	}
	o.opened = true
	if err := o.child.Open(ctx); err != nil {
		return err
	}
	o.pool = o.e.pool()
	if o.st.analyze {
		o.before = o.st.predTotals()
	}
	return nil
}

func (o *exactEvalOp) Next(ctx context.Context) (*Batch, error) {
	meter := o.st.preds[0].meter
	for {
		cb, err := o.child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if cb == nil {
			o.finalize()
			return nil, nil
		}
		sp := obs.FromContext(ctx).Start("op:exact-eval")
		start := obs.Now()
		verdicts, _, err := core.EvalRowsResilient(ctx, o.pool, cb.Rows, meter)
		if err != nil {
			sp.End()
			return nil, err
		}
		o.pulled += len(cb.Rows)
		o.buf = o.buf[:0]
		for i, r := range cb.Rows {
			if verdicts[i] {
				o.buf = append(o.buf, r)
			}
		}
		o.elapsedNS += int64(obs.Since(start))
		sp.End()
		if o.collect {
			o.out = append(o.out, o.buf...)
		}
		o.emitted += len(o.buf)
		if len(o.buf) == 0 {
			continue // batch fully rejected; pull the next one
		}
		o.batch.Rows = o.buf
		return &o.batch, nil
	}
}

func (o *exactEvalOp) finalize() {
	if o.finalized {
		return
	}
	o.finalized = true
	st := o.st
	meter := st.preds[0].meter
	n := o.pulled
	st.res = &Result{
		Rows: o.out,
		Stats: Stats{
			Evaluations: meter.Calls(),
			Retrievals:  n,
			Cost:        float64(n)*st.cost.Retrieve + float64(meter.Calls())*st.cost.Evaluate,
			Exact:       true,
			CacheHits:   meter.CacheHits(),
			CacheMisses: meter.CacheMisses(),
		},
	}
	o.recordActual()
}

func (o *exactEvalOp) recordActual() {
	if !o.st.analyze {
		return
	}
	after := o.st.predTotals()
	o.node.Actual = &plan.Actual{
		Rows:        o.emitted,
		Calls:       after.calls - o.before.calls,
		CacheHits:   after.hits - o.before.hits,
		CacheMisses: after.misses - o.before.misses,
		Retries:     after.retries - o.before.retries,
		Denied:      after.denied - o.before.denied,
		Failed:      after.failed - o.before.failed,
		ElapsedNS:   o.elapsedNS,
	}
}

func (o *exactEvalOp) Close() error { return o.child.Close() }

// conjWavesOp evaluates the conjunction in short-circuit waves, one pulled
// batch at a time. The wave order and the free sampled outcomes are fixed
// during Open (after the child chain — including any conj-sample stage —
// has run), so every batch flows through identical waves; rows never
// interact across batches, which is why batching leaves calls, survivors
// and counters bit-identical (see core.ConjWaveRunner).
type conjWavesOp struct {
	e       *Engine
	st      *pipeState
	node    *plan.Node
	mode    string
	child   BatchOperator
	collect bool

	runner      *core.ConjWaveRunner
	sampledRows int
	pulled      int
	emitted     int
	out         []int
	batch       Batch
	opened      bool
	finalized   bool
	before      predTotals
	elapsedNS   int64
}

func (o *conjWavesOp) Open(ctx context.Context) error {
	if o.opened {
		return nil
	}
	o.opened = true
	if err := o.child.Open(ctx); err != nil {
		return err
	}
	st := o.st
	if o.st.analyze {
		o.before = st.predTotals()
	}
	udfs := make([]core.UDF, len(st.preds))
	for i, p := range st.preds {
		udfs[i] = p.meter
	}
	order := make([]int, len(st.preds))
	for i := range order {
		order[i] = i
	}
	var known []map[int]bool
	if o.mode == plan.ModeGreedyOrder {
		costs := make([]float64, len(st.preds))
		for i, p := range st.preds {
			costs[i] = p.cost
		}
		var err error
		order, err = core.OrderPredicates(costs, st.conjSels)
		if err != nil {
			return err
		}
		known = make([]map[int]bool, len(st.preds))
		for j := range known {
			known[j] = make(map[int]bool)
		}
		for _, s := range st.conjSamples {
			o.sampledRows += len(s.Results)
			for row, outs := range s.Results {
				for j, v := range outs {
					known[j][row] = v
				}
			}
		}
	}
	runner, err := core.NewConjWaveRunner(order, known, udfs, o.e.parallelism())
	if err != nil {
		return err
	}
	o.runner = runner
	if o.collect {
		// The legacy operator's Output was never nil (the survivor list is
		// rebuilt each wave); keep Rows bit-identical.
		o.out = make([]int, 0)
	}
	return nil
}

func (o *conjWavesOp) Next(ctx context.Context) (*Batch, error) {
	for {
		cb, err := o.child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if cb == nil {
			o.finalize()
			return nil, nil
		}
		sp := obs.FromContext(ctx).Start("op:conj-waves")
		start := obs.Now()
		survivors, err := o.runner.Run(ctx, cb.Rows)
		if err != nil {
			sp.End()
			return nil, err
		}
		o.pulled += len(cb.Rows)
		o.elapsedNS += int64(obs.Since(start))
		sp.End()
		if o.collect {
			o.out = append(o.out, survivors...)
		}
		o.emitted += len(survivors)
		if len(survivors) == 0 {
			continue
		}
		o.batch.Rows = survivors
		return &o.batch, nil
	}
}

func (o *conjWavesOp) finalize() {
	if o.finalized {
		return
	}
	o.finalized = true
	st := o.st
	// Billing is per predicate: each predicate's charged calls pay its own
	// o_e — the same per-predicate costs the greedy ordering and the
	// EXPLAIN estimates use.
	evals := 0
	evalCost := 0.0
	hits, misses := 0, 0
	for _, p := range st.preds {
		evals += p.meter.Calls()
		evalCost += float64(p.meter.Calls()) * p.cost
		hits += p.meter.CacheHits()
		misses += p.meter.CacheMisses()
	}
	stats := Stats{
		Evaluations:  evals,
		ChosenColumn: st.chosen,
		CacheHits:    hits,
		CacheMisses:  misses,
		// Every returned row was verified under every predicate, so the
		// answer is exact even on the sampled (approximate) path — the
		// accuracy contract is met deterministically and the sampling
		// spend bought the wave ordering instead.
		Exact: true,
	}
	if st.q.Approx == nil {
		stats.Retrievals = o.pulled
	} else {
		stats.Sampled = o.sampledRows
		stats.Retrievals = o.sampledRows + o.runner.Result().Retrieved
	}
	stats.Cost = float64(stats.Retrievals)*st.cost.Retrieve + evalCost
	st.res = &Result{Rows: o.out, Stats: stats}
	o.recordActual()
}

func (o *conjWavesOp) recordActual() {
	if !o.st.analyze {
		return
	}
	after := o.st.predTotals()
	o.node.Actual = &plan.Actual{
		Rows:        o.emitted,
		Calls:       after.calls - o.before.calls,
		CacheHits:   after.hits - o.before.hits,
		CacheMisses: after.misses - o.before.misses,
		Retries:     after.retries - o.before.retries,
		Denied:      after.denied - o.before.denied,
		Failed:      after.failed - o.before.failed,
		ElapsedNS:   o.elapsedNS,
	}
}

func (o *conjWavesOp) Close() error { return o.child.Close() }

// pipeline is a compiled operator chain plus what the executor needs to
// drive and account for it.
type pipeline struct {
	st     *pipeState
	root   BatchOperator
	scan   *scanOp
	stream streamingOp // nil when the terminal is a blocking resultOp
}

// buildPipeline compiles the physical plan chain (a linear single-child
// tree) into a pull pipeline. collect makes the streaming terminal
// accumulate its output rows into st.res (the materialized, sink-less
// path).
func (e *Engine) buildPipeline(root *plan.Node, st *pipeState, collect bool) (*pipeline, error) {
	var chain []*plan.Node
	for n := root; n != nil; n = n.Child() {
		if len(n.Children) > 1 {
			return nil, fmt.Errorf("engine: physical node %q has %d children, want a linear chain", n.Op, len(n.Children))
		}
		chain = append(chain, n)
	}
	i := len(chain) - 1
	if chain[i].Op != plan.OpScan {
		return nil, fmt.Errorf("engine: pipeline does not end in a scan (got %q)", chain[i].Op)
	}
	scan := &scanOp{e: e, st: st, node: chain[i]}
	i--
	if i >= 0 && chain[i].Op == plan.OpFilter {
		scan.filterNode = chain[i] // fused: the scan applies the filters inline
		i--
	}
	p := &pipeline{st: st, scan: scan}
	var cur BatchOperator = scan
	lowestStage := true
	for ; i >= 0; i-- {
		n := chain[i]
		if p.stream != nil {
			// Nodes above a streaming terminal (the merge of the greedy
			// conjunction shape) describe work the terminal performs
			// itself; the legacy walker skipped them via the result
			// short-circuit, so they carry no Actual here either.
			continue
		}
		switch {
		case n.Op == plan.OpConjSolve || (n.Op == plan.OpConjSample && n.Mode == plan.ModeTwoPred):
			// Display-only nodes of the fused §5 shape: the conj-exec
			// operator performs their work internally.
			continue
		case n.Op == plan.OpExactEval:
			t := &exactEvalOp{e: e, st: st, node: n, child: cur, collect: collect}
			cur, p.stream = t, t
		case n.Op == plan.OpConjWaves:
			t := &conjWavesOp{e: e, st: st, node: n, mode: n.Mode, child: cur, collect: collect}
			cur, p.stream = t, t
		default:
			body, err := e.stageBody(n, st)
			if err != nil {
				return nil, err
			}
			cur = &stageOp{
				e: e, st: st, node: n, child: cur, run: body,
				drain: lowestStage && scan.filterNode != nil,
			}
			lowestStage = false
		}
	}
	if p.stream == nil {
		cur = &resultOp{e: e, st: st, child: cur}
	}
	p.root = cur
	return p, nil
}

// stageBody resolves the blocking operator body for a stage node.
func (e *Engine) stageBody(n *plan.Node, st *pipeState) (func(ctx context.Context) error, error) {
	switch n.Op {
	case plan.OpGroupResolve:
		return func(ctx context.Context) error { return e.opGroupResolve(ctx, st) }, nil
	case plan.OpJoinGroup:
		return func(ctx context.Context) error { return e.opJoinGroup(st) }, nil
	case plan.OpSample:
		return func(ctx context.Context) error { return e.opSample(ctx, st) }, nil
	case plan.OpSolve:
		mode := n.Mode
		return func(ctx context.Context) error { return e.opSolve(mode, st) }, nil
	case plan.OpProbEval:
		return func(ctx context.Context) error { return e.opProbEval(ctx, st) }, nil
	case plan.OpMerge:
		return func(ctx context.Context) error { return e.opMerge(st) }, nil
	case plan.OpConjSample:
		return func(ctx context.Context) error { return e.opConjSample(ctx, st) }, nil
	case plan.OpConjExec:
		return func(ctx context.Context) error { return e.opConjExec(ctx, st) }, nil
	default:
		return nil, fmt.Errorf("engine: unknown physical operator %q", n.Op)
	}
}

// recordScanActuals attributes the fused scan(+filter) under EXPLAIN
// ANALYZE: the scan reports the table's row universe (every row is read,
// whether pulled in batches or implicit under a blocking chain), the
// filter node reports the survivors its fused predicates passed. Neither
// charges UDF counters — cheap predicates run on resident column data.
func (p *pipeline) recordScanActuals() {
	if !p.st.analyze {
		return
	}
	sc := p.scan
	sc.node.Actual = &plan.Actual{Rows: p.st.tbl.NumRows(), ElapsedNS: sc.elapsedNS}
	if sc.filterNode != nil {
		rows := sc.emitted
		if !sc.done && p.st.subset != nil {
			rows = len(p.st.subset)
		}
		sc.filterNode.Actual = &plan.Actual{Rows: rows}
	}
}

// runPipeline compiles and drives the batch pipeline for one statement.
// With a nil sink the result is materialized into st.res exactly as the
// legacy walker did (blocking chains never even pull their resultOp); with
// a sink, result batches are delivered as produced and an ErrStopStream
// from the sink cancels upstream work, leaving Stats covering the
// evaluation actually performed.
func (e *Engine) runPipeline(ctx context.Context, root *plan.Node, st *pipeState, sink RowSink) error {
	pipe, err := e.buildPipeline(root, st, sink == nil)
	if err != nil {
		return err
	}
	defer pipe.root.Close()
	pctx := ctx
	var cancel context.CancelFunc
	if sink != nil {
		pctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	if err := pipe.root.Open(pctx); err != nil {
		return err
	}
	if sink == nil && pipe.stream == nil {
		// Blocking chain, materialized query: the stages finished st.res
		// during Open; pulling it through the resultOp would only copy it.
		pipe.recordScanActuals()
		return nil
	}
	for {
		b, err := pipe.root.Next(pctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		e.noteBatch(len(b.Rows))
		if sink != nil {
			err = sink(b.Rows)
		}
		e.batchDone()
		if err != nil {
			if errors.Is(err, ErrStopStream) {
				cancel()
				break
			}
			return err
		}
	}
	if pipe.stream != nil && st.res == nil {
		// Early stop before end-of-stream: assemble Stats from the work done.
		pipe.stream.finalize()
	}
	pipe.recordScanActuals()
	return nil
}

// batchSize resolves the effective rows-per-batch.
func (e *Engine) batchSize() int {
	if e.BatchSize > 0 {
		return e.BatchSize
	}
	return DefaultBatchSize
}

// noteBatch / batchDone maintain the engine-lifetime batch observability
// counters around one emitted batch's downstream processing.
func (e *Engine) noteBatch(rows int) {
	e.batchesInFlight.Add(1)
	e.batchesTotal.Add(1)
	for {
		cur := e.peakBatchRows.Load()
		if int64(rows) <= cur || e.peakBatchRows.CompareAndSwap(cur, int64(rows)) {
			break
		}
	}
}

func (e *Engine) batchDone() { e.batchesInFlight.Add(-1) }

// BatchCounters reports engine-lifetime batch execution observability:
// batches currently being processed downstream (in flight), the largest
// batch (in rows) any query emitted, and the total batches emitted.
func (e *Engine) BatchCounters() (inFlight, peakRows, total int64) {
	return e.batchesInFlight.Load(), e.peakBatchRows.Load(), e.batchesTotal.Load()
}

// ExecuteStreamContext runs the query, delivering matching row ids to the
// sink in deterministic batches as execution produces them. For streaming
// shapes (exact selections and conjunction waves) the first batch arrives
// while later batches are still unevaluated; blocking shapes (sampling
// pipelines, the §5 two-predicate plan, joins) complete their evaluation
// first and then stream the finished result out in batches. The returned
// Stats cover the evaluation performed — after an ErrStopStream they
// reflect only the batches actually pulled.
func (e *Engine) ExecuteStreamContext(ctx context.Context, q Query, sink RowSink) (Stats, error) {
	if sink == nil {
		return Stats{}, fmt.Errorf("engine: ExecuteStreamContext requires a sink")
	}
	res, _, err := e.executeStatement(ctx, q, nil, false, sink)
	if err != nil {
		return Stats{}, err
	}
	return res.Stats, nil
}

// ExecuteStreamSelectJoinContext is ExecuteStreamContext for the
// selection-before-join extension.
func (e *Engine) ExecuteStreamSelectJoinContext(ctx context.Context, q SelectJoinQuery, sink RowSink) (Stats, error) {
	if sink == nil {
		return Stats{}, fmt.Errorf("engine: ExecuteStreamSelectJoinContext requires a sink")
	}
	res, _, err := e.executeStatement(ctx, q.Query, &q, false, sink)
	if err != nil {
		return Stats{}, err
	}
	return res.Stats, nil
}

// Renderer resolves the query's projection against its base table and
// returns the projected column names plus a per-row cell renderer. The
// rendering is identical to Materialize + CellString (both are the
// column's canonical StringAt), which is what lets streaming consumers
// format rows without materializing a result table.
func (e *Engine) Renderer(q Query) ([]string, func(row int) []string, error) {
	tbl, err := e.Table(q.Table)
	if err != nil {
		return nil, nil, err
	}
	idxs, err := e.projection(tbl, q.Columns)
	if err != nil {
		return nil, nil, err
	}
	if idxs == nil {
		idxs = make([]int, tbl.Schema().Len())
		for i := range idxs {
			idxs[i] = i
		}
	}
	names := make([]string, len(idxs))
	cols := make([]table.Column, len(idxs))
	for i, j := range idxs {
		names[i] = tbl.Schema().Col(j).Name
		cols[i] = tbl.Column(j)
	}
	render := func(row int) []string {
		cells := make([]string, len(cols))
		for i, c := range cols {
			cells[i] = c.StringAt(row)
		}
		return cells
	}
	return names, render, nil
}
