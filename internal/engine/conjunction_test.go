package engine

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/table"
)

// registerModUDF registers a UDF passing rows whose id is divisible by mod,
// counting invocations.
func registerModUDF(t *testing.T, e *Engine, name string, mod int64) *atomic.Int64 {
	t.Helper()
	calls := new(atomic.Int64)
	err := e.RegisterUDF(UDF{Name: name, Body: func(v table.Value) bool {
		calls.Add(1)
		return v.(int64)%mod == 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	return calls
}

// naryQuery is a three-predicate conjunction over the loan fixture.
func naryQuery(approximate bool, groupOn string) Query {
	q := Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Conjuncts: []Conjunct{
			{UDFName: "div3", UDFArg: "id", Want: true},
			{UDFName: "div5", UDFArg: "id", Want: true},
		},
		GroupOn: groupOn,
	}
	if approximate {
		q.Approx = approx(0.8, 0.8, 0.8)
	}
	return q
}

// naryTruth computes the ground-truth output of naryQuery.
func naryTruth(truth map[int64]bool, n int) []int {
	var want []int
	for i := 0; i < n; i++ {
		if truth[int64(i)] && i%3 == 0 && i%5 == 0 {
			want = append(want, i)
		}
	}
	return want
}

// TestExecuteNaryConjunction is the acceptance check for the N-ary path: a
// 3-UDF conjunction executes end-to-end, returns the exact answer, and
// spends fewer total UDF evaluations than evaluating every predicate on
// every row — the short-circuit saving.
func TestExecuteNaryConjunction(t *testing.T) {
	const n = 3000
	for _, groupOn := range []string{"", "grade"} {
		for _, par := range []int{1, 8} {
			e, truth, _ := newTestEngine(t, n)
			e.Parallelism = par
			registerModUDF(t, e, "div3", 3)
			registerModUDF(t, e, "div5", 5)
			res, err := e.Execute(naryQuery(true, groupOn))
			if err != nil {
				t.Fatal(err)
			}
			if want := naryTruth(truth, n); !reflect.DeepEqual(res.Rows, want) {
				t.Fatalf("groupOn=%q par=%d: %d rows, want %d (exact conjunction)",
					groupOn, par, len(res.Rows), len(want))
			}
			if !res.Stats.Exact {
				t.Fatalf("wave answers are fully verified; Exact should be true: %+v", res.Stats)
			}
			if res.Stats.Evaluations >= 3*n {
				t.Fatalf("groupOn=%q par=%d: no short-circuit saving: %d evaluations (all-on-all = %d)",
					groupOn, par, res.Stats.Evaluations, 3*n)
			}
			if res.Stats.Sampled == 0 {
				t.Fatalf("approximate N-ary conjunction did not sample: %+v", res.Stats)
			}
		}
	}
}

// TestExecuteNaryConjunctionExact: without accuracy bounds the waves run in
// query order with no sampling, still short-circuiting.
func TestExecuteNaryConjunctionExact(t *testing.T) {
	const n = 900
	e, truth, goodCalls := newTestEngine(t, n)
	div3 := registerModUDF(t, e, "div3", 3)
	div5 := registerModUDF(t, e, "div5", 5)
	res, err := e.Execute(naryQuery(false, ""))
	if err != nil {
		t.Fatal(err)
	}
	if want := naryTruth(truth, n); !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows %d, want %d", len(res.Rows), len(want))
	}
	nTrue := 0
	for i := 0; i < n; i++ {
		if truth[int64(i)] {
			nTrue++
		}
	}
	nTrueDiv3 := 0
	for i := 0; i < n; i += 3 {
		if truth[int64(i)] {
			nTrueDiv3++
		}
	}
	// Wave sizes: every row, then good_credit survivors, then also-div3
	// survivors.
	if goodCalls.Load() != int64(n) || div3.Load() != int64(nTrue) || div5.Load() != int64(nTrueDiv3) {
		t.Fatalf("wave calls %d/%d/%d, want %d/%d/%d",
			goodCalls.Load(), div3.Load(), div5.Load(), n, nTrue, nTrueDiv3)
	}
	if !res.Stats.Exact || res.Stats.Retrievals != n {
		t.Fatalf("stats %+v", res.Stats)
	}
	if res.Stats.Sampled != 0 {
		t.Fatalf("exact conjunction sampled %d rows", res.Stats.Sampled)
	}
}

// TestExecuteNaryConjunctionDeterministic: same seed, same rows and stats
// at every parallelism level.
func TestExecuteNaryConjunctionDeterministic(t *testing.T) {
	run := func(par int) *Result {
		e, _, _ := newTestEngine(t, 1500)
		e.Parallelism = par
		registerModUDF(t, e, "div3", 3)
		registerModUDF(t, e, "div5", 5)
		res, err := e.Execute(naryQuery(true, "grade"))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("N-ary conjunction diverged across parallelism:\n%+v\n%+v", a, b)
	}
}

// TestNaryGreedyOrderingSaves: when the selective predicate comes last in
// query order, the sampled greedy ordering moves it first and beats the
// query-order wave cost.
func TestNaryGreedyOrderingSaves(t *testing.T) {
	const n = 3000
	newE := func() *Engine {
		e, _, _ := newTestEngine(t, n)
		// pass90/pass80 are wide; div30 passes ~3% — the query lists it last.
		if err := e.RegisterUDF(UDF{Name: "pass90", Body: func(v table.Value) bool {
			return v.(int64)%10 != 0
		}}); err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterUDF(UDF{Name: "pass80", Body: func(v table.Value) bool {
			return v.(int64)%5 != 0
		}}); err != nil {
			t.Fatal(err)
		}
		registerModUDF(t, e, "div30", 30)
		return e
	}
	q := Query{
		Table: "loans", UDFName: "pass90", UDFArg: "id", Want: true,
		Conjuncts: []Conjunct{
			{UDFName: "pass80", UDFArg: "id", Want: true},
			{UDFName: "div30", UDFArg: "id", Want: true},
		},
	}
	exactQ := q
	exact, err := newE().Execute(exactQ)
	if err != nil {
		t.Fatal(err)
	}
	greedyQ := q
	greedyQ.Approx = approx(0.8, 0.8, 0.8)
	greedy, err := newE().Execute(greedyQ)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact.Rows, greedy.Rows) {
		t.Fatalf("greedy order changed the answer: %d vs %d rows", len(greedy.Rows), len(exact.Rows))
	}
	// Query-order waves: 3000 + ~2700 + ~2160 ≈ 7860 evaluations. Greedy
	// puts div30 first: 3000 waves + ~100 + ~90, plus 3 predicates over the
	// sample — far fewer in total.
	if greedy.Stats.Evaluations >= exact.Stats.Evaluations {
		t.Fatalf("greedy ordering saved nothing: %d vs query-order %d",
			greedy.Stats.Evaluations, exact.Stats.Evaluations)
	}
}

// TestNaryConjunctionValidation: N-ary specific shape rules.
func TestNaryConjunctionValidation(t *testing.T) {
	e, _, _ := newTestEngine(t, 90)
	registerModUDF(t, e, "div3", 3)
	registerModUDF(t, e, "div5", 5)
	q := naryQuery(true, VirtualColumn)
	if _, err := e.Execute(q); err == nil {
		t.Fatal("N-ary conjunction over the virtual column accepted")
	}
	q = naryQuery(true, "")
	q.Budget = 50
	if _, err := e.Execute(q); err == nil {
		t.Fatal("budget + conjunction accepted")
	}
	q = naryQuery(true, "")
	q.Conjuncts[1].UDFName = "missing"
	if _, err := e.Execute(q); err == nil {
		t.Fatal("unknown third UDF accepted")
	}
}

// TestExplainShapes exercises Engine.Explain across every shape the
// planner covers (content goldens live at the predeval layer).
func TestExplainShapes(t *testing.T) {
	e, _, _ := newTestEngine(t, 900)
	registerModUDF(t, e, "div3", 3)
	registerModUDF(t, e, "div5", 5)
	base := Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true}
	cases := []struct {
		name string
		mut  func(Query) Query
		want string
	}{
		{"exact", func(q Query) Query { return q }, "exact-eval"},
		{"approx", func(q Query) Query { q.Approx = approx(0.9, 0.9, 0.9); return q }, "group-resolve[auto]"},
		{"pinned", func(q Query) Query { q.Approx = approx(0.9, 0.9, 0.9); q.GroupOn = "grade"; return q }, "group-resolve[pinned]"},
		{"budget", func(q Query) Query { q.Approx = approx(0.9, 0.9, 0.9); q.Budget = 100; return q }, "solve[budget]"},
		{"two-pred", func(q Query) Query {
			q.Approx = approx(0.9, 0.9, 0.9)
			q.GroupOn = "grade"
			q.Conjuncts = []Conjunct{{UDFName: "div3", UDFArg: "id", Want: true}}
			return q
		}, "conj-exec"},
		{"n-ary", func(q Query) Query {
			q.Approx = approx(0.9, 0.9, 0.9)
			q.Conjuncts = []Conjunct{
				{UDFName: "div3", UDFArg: "id", Want: true},
				{UDFName: "div5", UDFArg: "id", Want: true},
			}
			return q
		}, "conj-waves[greedy]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			text, err := e.Explain(tc.mut(base))
			if err != nil {
				t.Fatal(err)
			}
			if !containsLine(text, tc.want) {
				t.Fatalf("EXPLAIN missing %q:\n%s", tc.want, text)
			}
		})
	}
	if _, err := e.Explain(Query{Table: "loans", UDFName: "missing", UDFArg: "id"}); err == nil {
		t.Fatal("EXPLAIN of unknown UDF accepted")
	}
}

func containsLine(text, substr string) bool {
	for i := 0; i+len(substr) <= len(text); i++ {
		if text[i:i+len(substr)] == substr {
			return true
		}
	}
	return false
}

// TestSameUDFExactConjunctionSharesCache pins the legacy degenerate-exact
// behavior: the waves are sequential, so a duplicate predicate is served
// from the shared outcome cache instead of re-invoking the UDF.
func TestSameUDFExactConjunctionSharesCache(t *testing.T) {
	e, truth, calls := newTestEngine(t, 100)
	res, err := e.Execute(Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Conjuncts: []Conjunct{{UDFName: "good_credit", UDFArg: "id", Want: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	nTrue := 0
	for _, v := range truth {
		if v {
			nTrue++
		}
	}
	if len(res.Rows) != nTrue {
		t.Fatalf("%d rows, want %d", len(res.Rows), nTrue)
	}
	// Wave 1 invokes the body once per row; wave 2 is pure cache hits.
	if calls.Load() != 100 {
		t.Fatalf("UDF body invoked %d times, want 100", calls.Load())
	}
	if res.Stats.Evaluations != 100 {
		t.Fatalf("charged %d evaluations, want 100", res.Stats.Evaluations)
	}
	if res.Stats.CacheHits != nTrue {
		t.Fatalf("cache hits %d, want %d", res.Stats.CacheHits, nTrue)
	}
}

// TestExplainValidatesBindings: EXPLAIN rejects unresolvable join keys and
// pinned group columns just like execution would.
func TestExplainValidatesBindings(t *testing.T) {
	e, _, _ := newTestEngine(t, 90)
	base := Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Approx: approx(0.9, 0.9, 0.9), GroupOn: "grade"}
	q := base
	q.GroupOn = "nosuch"
	if _, err := e.Explain(q); err == nil {
		t.Fatal("EXPLAIN with unknown GROUP ON column accepted")
	}
	sj := SelectJoinQuery{Query: base, JoinTable: "loans", LeftKey: "nosuch", RightKey: "id"}
	if _, err := e.ExplainSelectJoin(sj); err == nil {
		t.Fatal("EXPLAIN with unknown join key accepted")
	}
	sj = SelectJoinQuery{Query: base, JoinTable: "missing", LeftKey: "id", RightKey: "id"}
	if _, err := e.ExplainSelectJoin(sj); err == nil {
		t.Fatal("EXPLAIN with unknown join table accepted")
	}
}

// TestNaryConjunctionPerPredicateCost: waves bill each predicate's charged
// calls at its own o_e, consistent with the costs the greedy ordering and
// EXPLAIN estimates use.
func TestNaryConjunctionPerPredicateCost(t *testing.T) {
	e, truth, _ := newTestEngine(t, 300)
	var cheapCalls, priceyCalls atomic.Int64
	if err := e.RegisterUDF(UDF{Name: "cheap", Cost: 1, Body: func(v table.Value) bool {
		cheapCalls.Add(1)
		return v.(int64)%2 == 0
	}}); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterUDF(UDF{Name: "pricey", Cost: 50, Body: func(v table.Value) bool {
		priceyCalls.Add(1)
		return v.(int64)%3 == 0
	}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Conjuncts: []Conjunct{
			{UDFName: "cheap", UDFArg: "id", Want: true},
			{UDFName: "pricey", UDFArg: "id", Want: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = truth
	// good_credit has no override (default o_e = 3); o_r = 1 per scan row.
	want := float64(300)*1 + float64(300)*3 + float64(cheapCalls.Load())*1 + float64(priceyCalls.Load())*50
	if res.Stats.Cost != want {
		t.Fatalf("cost %v, want %v (cheap %d, pricey %d calls)",
			res.Stats.Cost, want, cheapCalls.Load(), priceyCalls.Load())
	}
}

// TestPredCostNoLeakFromFirstOverride: a first predicate's per-UDF cost
// override must not leak onto later conjuncts that have none (they price
// at the engine default).
func TestPredCostNoLeakFromFirstOverride(t *testing.T) {
	e, _, _ := newTestEngine(t, 300)
	var priceyCalls, cheapCalls atomic.Int64
	if err := e.RegisterUDF(UDF{Name: "pricey", Cost: 100, Body: func(v table.Value) bool {
		priceyCalls.Add(1)
		return v.(int64)%2 == 0
	}}); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterUDF(UDF{Name: "cheapdef", Body: func(v table.Value) bool {
		cheapCalls.Add(1)
		return v.(int64)%3 == 0
	}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(Query{
		Table: "loans", UDFName: "pricey", UDFArg: "id", Want: true,
		Conjuncts: []Conjunct{
			{UDFName: "cheapdef", UDFArg: "id", Want: true},
			{UDFName: "good_credit", UDFArg: "id", Want: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	goodCalls := res.Stats.Evaluations - int(priceyCalls.Load()) - int(cheapCalls.Load())
	want := float64(300)*1 + float64(priceyCalls.Load())*100 +
		float64(cheapCalls.Load())*3 + float64(goodCalls)*3
	if res.Stats.Cost != want {
		t.Fatalf("cost %v, want %v (pricey %d, cheapdef %d, good %d calls)",
			res.Stats.Cost, want, priceyCalls.Load(), cheapCalls.Load(), goodCalls)
	}
}

// TestExplainRejectsBadProjection: EXPLAIN and execution accept/reject the
// same statements, including the projection columns.
func TestExplainRejectsBadProjection(t *testing.T) {
	e, _, _ := newTestEngine(t, 60)
	q := Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Columns: []string{"nosuchcol"}}
	if _, err := e.Explain(q); err == nil {
		t.Fatal("EXPLAIN with unknown projection column accepted")
	}
	if _, err := e.Execute(q); err == nil {
		t.Fatal("execution with unknown projection column accepted")
	}
}
