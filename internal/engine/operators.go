package engine

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/resilience"
	"repro/internal/stats"
	"repro/internal/table"
)

// Physical-operator state and the blocking operator bodies. The planner
// (planner.go + internal/plan) shapes every query into a chain of physical
// operators; the batch pipeline (batch.go) compiles that chain into pull
// iterators, running each blocking body below during its stage's Open —
// leaf-first, each operator reading and extending the shared pipeline
// state. The operator bodies are the former executeExact / executeApprox /
// executeTwoPred / ExecuteSelectJoin code paths, extracted statement-for-
// statement so the determinism contract is preserved bit-for-bit: RNG
// splits happen in the same order, meters charge the same rows, and Stats
// are assembled with the same formulas.

// resolvedPred is one expensive predicate bound to the engine: its fault
// box, its failure-telemetry sink, its metered (resilient, usually
// cache-backed) evaluator, and its effective o_e.
type resolvedPred struct {
	spec  Conjunct
	fault *udfFault
	sink  *predSink
	meter *core.Meter
	cost  float64
}

// pipeState is the shared state flowing through a pipeline's operators.
type pipeState struct {
	q    Query
	join *SelectJoinQuery
	tbl  *table.Table
	cost core.CostModel
	// preds holds the resolved predicates, first predicate first.
	preds []resolvedPred
	// epoch is the invalidation epoch captured before any evaluation (see
	// persistQueryLearnings).
	epoch int64
	// rng is the query's RNG stream, split from the engine's once per
	// approximate query (nil for exact shapes — they must not consume the
	// engine stream).
	rng *stats.RNG

	// Products of the operators, in pipeline order.
	subset      []int             // op filter
	groups      []core.Group      // op group-resolve (or join-group)
	chosen      string            // op group-resolve
	labeled     map[int]bool      // op group-resolve (discovery/virtual labels)
	joinTbl     *table.Table      // join shape, bound during validation
	leftCol     table.Column      // join shape
	rightCol    table.Column      // join shape
	joinWeights []float64         // op join-group, parallel to groups
	sampler     *core.Sampler     // op sample
	strategy    core.Strategy     // op solve
	achieved    float64           // op solve (budget mode)
	conjSamples []core.ConjSample // op conj-sample
	conjSels    []float64         // op conj-sample
	exec        core.ExecResult   // op prob-eval

	// res is the finished result; once set, remaining operators are
	// skipped (used by terminal operators and short-circuits like the
	// empty join).
	res *Result

	// analyze turns on EXPLAIN ANALYZE instrumentation: each executed
	// operator records its deterministic counter deltas (and display-only
	// wall time) into the plan node it executes.
	analyze bool
}

// predTotals is a snapshot of the statement-wide deterministic counters:
// charged UDF calls and cache traffic summed over the predicates' meters,
// failure/retry/denial totals summed over their sinks. The batch executor
// diffs two snapshots to attribute work to one operator. Operators run
// sequentially (parallelism lives inside an operator), so the deltas are
// exact and — because every underlying counter is deterministic at any
// parallelism — bit-identical at any parallelism too.
type predTotals struct {
	calls, hits, misses, retries, failed, denied int
}

func (st *pipeState) predTotals() predTotals {
	var t predTotals
	for _, p := range st.preds {
		t.calls += p.meter.Calls()
		t.hits += p.meter.CacheHits()
		t.misses += p.meter.CacheMisses()
		f, r, d := p.sink.countsFull()
		t.failed += f
		t.retries += r
		t.denied += d
	}
	return t
}

// bindStatement resolves every name a statement references — the base
// table, the join table and its keys, each predicate's UDF and argument
// column, and a pinned grouping column — into the pipeline state. Both
// execution and EXPLAIN planning bind through here, so the two paths
// accept and reject exactly the same statements.
func (e *Engine) bindStatement(q Query, join *SelectJoinQuery) (*pipeState, error) {
	tbl, err := e.Table(q.Table)
	if err != nil {
		return nil, err
	}
	st := &pipeState{q: q, join: join, tbl: tbl, cost: e.costModel(q)}
	if join != nil {
		st.joinTbl, err = e.Table(join.JoinTable)
		if err != nil {
			return nil, err
		}
		st.leftCol = tbl.ColumnByName(join.LeftKey)
		if st.leftCol == nil {
			return nil, fmt.Errorf("engine: table %q has no column %q", q.Table, join.LeftKey)
		}
		st.rightCol = st.joinTbl.ColumnByName(join.RightKey)
		if st.rightCol == nil {
			return nil, fmt.Errorf("engine: table %q has no column %q", join.JoinTable, join.RightKey)
		}
	}
	st.preds, err = e.resolvePreds(tbl, q)
	if err != nil {
		return nil, err
	}
	// A pinned grouping column is only consulted by grouping shapes (exact
	// shapes ignore GroupOn), so only those reject a bad name.
	if q.Approx != nil && q.GroupOn != "" && q.GroupOn != VirtualColumn && tbl.ColumnByName(q.GroupOn) == nil {
		return nil, fmt.Errorf("engine: table %q has no column %q to group on", q.Table, q.GroupOn)
	}
	if _, err := e.projection(tbl, q.Columns); err != nil {
		return nil, err
	}
	return st, nil
}

// resolvePreds binds every predicate of the query: its row invoker (panic
// capture + retry + deadline, see resilience.go), fault box, telemetry
// sink, shared circuit breaker and resilient meter. In approximate
// conjunctions, a predicate whose (UDF, argument) key collides with an
// earlier one gets a private (cache-less) meter: two meters sharing one
// cache while sampling evaluates both predicates concurrently over the same
// rows would make the charged-call split depend on store timing. Exact
// conjunctions keep the shared cache even for duplicates — their waves are
// sequential barriers, so the later predicate's lookups deterministically
// hit what the earlier one stored.
func (e *Engine) resolvePreds(tbl *table.Table, q Query) ([]resolvedPred, error) {
	policy := e.policyFor(q)
	specs := q.predicates()
	preds := make([]resolvedPred, len(specs))
	for i, p := range specs {
		u, err := e.registry.Lookup(p.UDFName)
		if err != nil {
			return nil, err
		}
		col := tbl.ColumnByName(p.UDFArg)
		if col == nil {
			return nil, fmt.Errorf("engine: table %q has no column %q for UDF argument", q.Table, p.UDFArg)
		}
		fault := &udfFault{}
		sink := &predSink{}
		inv := &rowInvoker{
			udfName: p.UDFName,
			body:    u.fallible(),
			col:     col,
			want:    p.Want,
			policy:  e.retryPolicy(),
			key:     resilience.HashString(q.Table + "\x00" + p.UDFName + "\x00" + p.UDFArg),
			sink:    sink,
		}
		private := false
		for j := 0; q.Approx != nil && j < i; j++ {
			if specs[j].UDFName == p.UDFName && specs[j].UDFArg == p.UDFArg {
				private = true
				break
			}
		}
		var cache core.EvalCache
		if !private && e.CacheUDFResults {
			key := evalCacheKey{table: q.Table, udf: p.UDFName, column: p.UDFArg}
			cache = faultGatedCache{
				inner: wantFoldedCache{inner: e.evalCache(key), want: p.Want},
				fault: fault,
			}
		}
		meter := core.NewResilientMeter(inv, cache, e.breakerFor(q.Table, p.UDFName),
			failureHandler(p.UDFName, policy, fault, sink))
		preds[i] = resolvedPred{spec: p, fault: fault, sink: sink, meter: meter, cost: e.predCost(p)}
	}
	return preds, nil
}

// fillActualRows resolves the "rows out" (and groups, where meaningful) of
// an operator from the pipeline products it just wrote.
func (st *pipeState) fillActualRows(op plan.Op, a *plan.Actual) {
	groupRows := func() int {
		n := 0
		for _, g := range st.groups {
			n += len(g.Rows)
		}
		return n
	}
	switch op {
	case plan.OpScan:
		a.Rows = st.tbl.NumRows()
	case plan.OpFilter:
		if st.subset != nil {
			a.Rows = len(st.subset)
		} else {
			a.Rows = st.tbl.NumRows()
		}
	case plan.OpGroupResolve, plan.OpJoinGroup:
		a.Rows = groupRows()
		a.Groups = len(st.groups)
	case plan.OpSample:
		a.Rows = st.sampler.TotalSampled()
	case plan.OpConjSample:
		for _, s := range st.conjSamples {
			a.Rows += len(s.Results)
		}
	case plan.OpProbEval:
		a.Rows = len(st.exec.Output)
	case plan.OpMerge, plan.OpExactEval, plan.OpConjExec, plan.OpConjWaves:
		if st.res != nil {
			a.Rows = len(st.res.Rows)
		}
	}
}

// opGroupResolve determines the grouping the optimizer will use: the
// pinned column, a discovered correlated column (memo-accelerated), or the
// logistic-regression virtual column.
func (e *Engine) opGroupResolve(ctx context.Context, st *pipeState) error {
	cons := core.Constraints{}
	if st.q.Approx != nil {
		cons = st.q.Approx.Constraints()
	}
	groups, chosen, labeled, err := e.resolveGroups(ctx, st.tbl, st.q, st.preds[0].meter, cons, st.cost, st.rng, st.subset)
	if err != nil {
		return err
	}
	st.groups, st.chosen, st.labeled = groups, chosen, labeled
	return nil
}

// opJoinGroup splits each group into (group, join-multiplicity) subgroups,
// so tuples in one subgroup share both selectivity behaviour and weight.
// Tuples whose join key matches nothing can never appear in the join
// result; they are dropped before the sampler ever sees them, and an
// entirely empty join short-circuits the pipeline.
func (e *Engine) opJoinGroup(st *pipeState) error {
	mult := make(map[string]int)
	for i := 0; i < st.joinTbl.NumRows(); i++ {
		mult[st.rightCol.StringAt(i)]++
	}
	type subKey struct {
		group  int
		weight int
	}
	sub := make(map[subKey][]int)
	for gi, g := range st.groups {
		for _, row := range g.Rows {
			w := mult[st.leftCol.StringAt(row)]
			if w == 0 {
				continue
			}
			sub[subKey{gi, w}] = append(sub[subKey{gi, w}], row)
		}
	}
	if len(sub) == 0 {
		st.res = &Result{Stats: Stats{ChosenColumn: st.q.GroupOn}}
		return nil
	}
	keys := make([]subKey, 0, len(sub))
	for k := range sub {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].group != keys[b].group {
			return keys[a].group < keys[b].group
		}
		return keys[a].weight < keys[b].weight
	})
	groups := make([]core.Group, len(keys))
	weights := make([]float64, len(keys))
	for i, k := range keys {
		groups[i] = core.Group{
			Key:  fmt.Sprintf("%s/w%d", st.groups[k.group].Key, k.weight),
			Rows: sub[k],
		}
		weights[i] = float64(k.weight)
	}
	st.groups, st.joinWeights = groups, weights
	return nil
}

// opSample estimates per-group selectivities: preload rows labeled during
// group resolution, warm-start from the durable catalog, then top up with
// the Two-Third-Power allocation.
func (e *Engine) opSample(ctx context.Context, st *pipeState) error {
	cons := st.q.Approx.Constraints()
	sampler := core.NewSampler(st.groups, st.preds[0].meter, st.rng.Split())
	sampler.SetParallelism(e.parallelism())
	sampler.Preload(st.labeled)
	e.seedSamplerFromCatalog(sampler, st.q, st.chosen)
	sizes := make([]int, len(st.groups))
	for i, g := range st.groups {
		sizes[i] = len(g.Rows)
	}
	alloc := core.TwoThirdPowerAllocator{Num: 2.5 * cons.Alpha}
	if _, err := sampler.TopUpCtx(ctx, alloc.Allocate(sizes)); err != nil {
		return err
	}
	st.sampler = sampler
	return nil
}

// opSolve turns the sampling estimates into an execution strategy: the
// constrained program, the fixed-budget objective, or the join-weighted
// variant.
func (e *Engine) opSolve(mode string, st *pipeState) error {
	infos := st.sampler.Infos()
	cons := st.q.Approx.Constraints()
	switch mode {
	case plan.ModeBudget:
		spent := float64(st.preds[0].meter.Calls()) * (st.cost.Retrieve + st.cost.Evaluate)
		remaining := st.q.Budget - spent
		if remaining < 0 {
			remaining = 0
		}
		p, err := core.PlanBudget(infos, cons.Alpha, cons.Rho, remaining, st.cost,
			func(g []core.GroupInfo, c core.Constraints, cm core.CostModel) (core.Strategy, error) {
				return core.PlanWithSamples(g, c, cm)
			})
		if err != nil {
			return err
		}
		st.strategy = p.Strategy
		st.achieved = p.AchievedBeta
	case plan.ModeJoinWeight:
		joinGroups := make([]core.JoinGroup, len(infos))
		for i, info := range infos {
			joinGroups[i] = core.JoinGroup{
				Size:        info.Remaining(),
				Selectivity: info.Selectivity,
				JoinWeight:  st.joinWeights[i],
			}
		}
		strat, err := core.PlanSelectJoin(joinGroups, cons, st.cost)
		if err != nil {
			return err
		}
		st.strategy = strat
	default:
		strat, err := core.PlanWithSamples(infos, cons, st.cost)
		if err != nil {
			return err
		}
		st.strategy = strat
	}
	return nil
}

// opProbEval executes the strategy: per-tuple retrieve/evaluate coins
// drawn sequentially, UDF calls fanned across the worker pool.
func (e *Engine) opProbEval(ctx context.Context, st *pipeState) error {
	exec, err := core.ExecuteParallelCtx(ctx, st.groups, st.strategy, st.sampler.Outcomes(), st.preds[0].meter, st.cost, st.rng.Split(), e.parallelism())
	if err != nil {
		return err
	}
	st.exec = exec
	return nil
}

// opMerge sorts the output, persists what the query learned, and assembles
// the result statistics for sampler-based pipelines. (Conjunction
// operators are terminal and assemble their own stats.)
func (e *Engine) opMerge(st *pipeState) error {
	sort.Ints(st.exec.Output)
	e.persistQueryLearnings(st.sampler, st.q, st.cost, st.chosen, st.preds[0].fault, st.epoch)
	meter := st.preds[0].meter
	sampled := st.sampler.TotalSampled()
	retrievals := sampled + st.exec.Retrieved
	st.res = &Result{
		Rows: st.exec.Output,
		Stats: Stats{
			Evaluations:         meter.Calls(),
			Retrievals:          retrievals,
			Cost:                float64(meter.Calls())*st.cost.Evaluate + float64(retrievals)*st.cost.Retrieve,
			ChosenColumn:        st.chosen,
			Sampled:             sampled,
			AchievedRecallBound: st.achieved,
			CacheHits:           meter.CacheHits(),
			CacheMisses:         meter.CacheMisses(),
		},
	}
	return nil
}
