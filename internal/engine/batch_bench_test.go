package engine

import (
	"context"
	"testing"

	"repro/internal/table"
)

// benchFilterTable builds an n-row table with a 3-valued grade column, so
// a grade filter keeps one third of the rows.
func benchFilterTable(b *testing.B, n int) *table.Table {
	b.Helper()
	schema := table.MustSchema(
		table.ColumnDef{Name: "id", Type: table.Int},
		table.ColumnDef{Name: "grade", Type: table.String},
	)
	tbl := table.New("loans", schema)
	grades := []string{"A", "B", "C"}
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(int64(i), grades[i%3]); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// BenchmarkBatchScanFilter1M compares the two ways of applying cheap
// filters over a 1M-row table: materializing the full survivor list
// (the pre-batch executor's filter operator, kept as filterRows) versus
// draining the fused batch scan. The interesting metric is B/op: the
// materialized path allocates proportionally to the TABLE (the survivor
// slice plus its growth reallocations), the fused path proportionally to
// the BATCH (one reused buffer), a ≥5x difference at this shape.
func BenchmarkBatchScanFilter1M(b *testing.B) {
	const n = 1 << 20
	tbl := benchFilterTable(b, n)
	e := New(1)
	if err := e.RegisterTable(tbl); err != nil {
		b.Fatal(err)
	}
	filters := []Filter{{Column: "grade", Value: "B"}}
	want := 0
	for i := 0; i < n; i++ {
		if i%3 == 1 {
			want++
		}
	}

	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := e.filterRows(tbl, filters)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) != want {
				b.Fatalf("%d survivors, want %d", len(rows), want)
			}
		}
	})

	b.Run("fused-batch", func(b *testing.B) {
		b.ReportAllocs()
		ctx := context.Background()
		st := &pipeState{q: Query{Filters: filters}, tbl: tbl}
		for i := 0; i < b.N; i++ {
			sc := &scanOp{e: e, st: st}
			if err := sc.Open(ctx); err != nil {
				b.Fatal(err)
			}
			got := 0
			for {
				batch, err := sc.Next(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if batch == nil {
					break
				}
				got += len(batch.Rows)
			}
			if got != want {
				b.Fatalf("%d survivors, want %d", got, want)
			}
		}
	})
}
