package engine

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/table"
)

// buildLoanTable creates a small table where good_credit(id) correlates
// strongly with the grade column: grade A → 90%, B → 50%, C → 10%.
func buildLoanTable(t testing.TB, n int, seed uint64) (*table.Table, map[int64]bool) {
	t.Helper()
	rng := stats.NewRNG(seed)
	schema := table.MustSchema(
		table.ColumnDef{Name: "id", Type: table.Int},
		table.ColumnDef{Name: "grade", Type: table.String},
		table.ColumnDef{Name: "income", Type: table.Float},
		table.ColumnDef{Name: "purpose", Type: table.String},
	)
	tbl := table.New("loans", schema)
	truth := make(map[int64]bool, n)
	grades := []string{"A", "B", "C"}
	sels := []float64{0.9, 0.5, 0.1}
	for i := 0; i < n; i++ {
		g := i % 3
		id := int64(i)
		label := rng.Bernoulli(sels[g])
		truth[id] = label
		inc := 30000 + rng.Float64()*90000
		if label {
			inc += 20000
		}
		purpose := []string{"car", "home", "debt", "other"}[rng.IntN(4)]
		if err := tbl.AppendRow(id, grades[g], inc, purpose); err != nil {
			t.Fatal(err)
		}
	}
	return tbl, truth
}

func newTestEngine(t testing.TB, n int) (*Engine, map[int64]bool, *atomic.Int64) {
	t.Helper()
	tbl, truth := buildLoanTable(t, n, 42)
	e := New(7)
	if err := e.RegisterTable(tbl); err != nil {
		t.Fatal(err)
	}
	// Atomic: UDF bodies may run concurrently when Parallelism > 1.
	calls := new(atomic.Int64)
	err := e.RegisterUDF(UDF{
		Name: "good_credit",
		Body: func(v table.Value) bool {
			calls.Add(1)
			return truth[v.(int64)]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, truth, calls
}

func approx(alpha, beta, rho float64) *Approx {
	return &Approx{Precision: alpha, Recall: beta, Probability: rho}
}

func TestExecuteExact(t *testing.T) {
	e, truth, calls := newTestEngine(t, 900)
	res, err := e.Execute(Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Exact {
		t.Fatal("expected exact execution")
	}
	if calls.Load() != 900 || res.Stats.Evaluations != 900 {
		t.Fatalf("exact evaluated %d/%d, want 900", calls.Load(), res.Stats.Evaluations)
	}
	wantCount := 0
	for _, v := range truth {
		if v {
			wantCount++
		}
	}
	if len(res.Rows) != wantCount {
		t.Fatalf("exact output %d rows, want %d", len(res.Rows), wantCount)
	}
}

func TestExecuteApproxPinnedColumn(t *testing.T) {
	e, truth, _ := newTestEngine(t, 3000)
	res, err := e.Execute(Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Approx: approx(0.8, 0.8, 0.8), GroupOn: "grade",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChosenColumn != "grade" {
		t.Fatalf("chosen column %q", res.Stats.ChosenColumn)
	}
	if res.Stats.Evaluations >= 3000 {
		t.Fatalf("approx run evaluated everything (%d)", res.Stats.Evaluations)
	}
	// Verify metrics against ground truth.
	totalCorrect := 0
	for _, v := range truth {
		if v {
			totalCorrect++
		}
	}
	correct := 0
	for _, row := range res.Rows {
		if truth[int64(row)] {
			correct++
		}
	}
	prec := float64(correct) / float64(len(res.Rows))
	recall := float64(correct) / float64(totalCorrect)
	if prec < 0.7 || recall < 0.7 {
		t.Fatalf("metrics collapsed: precision %v recall %v", prec, recall)
	}
}

func TestExecuteApproxDiscoversColumn(t *testing.T) {
	e, _, _ := newTestEngine(t, 3000)
	res, err := e.Execute(Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Approx: approx(0.8, 0.8, 0.8),
	})
	if err != nil {
		t.Fatal(err)
	}
	// grade is the only informative low-cardinality column; purpose is
	// noise. The scan must pick grade.
	if res.Stats.ChosenColumn != "grade" {
		t.Fatalf("discovered column %q, want grade", res.Stats.ChosenColumn)
	}
	if res.Stats.Evaluations >= 3000 {
		t.Fatalf("no savings: %d evaluations", res.Stats.Evaluations)
	}
}

func TestExecuteApproxVirtualColumn(t *testing.T) {
	e, truth, _ := newTestEngine(t, 3000)
	res, err := e.Execute(Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Approx: approx(0.8, 0.8, 0.8), GroupOn: VirtualColumn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChosenColumn != VirtualColumn {
		t.Fatalf("chosen column %q", res.Stats.ChosenColumn)
	}
	totalCorrect := 0
	for _, v := range truth {
		if v {
			totalCorrect++
		}
	}
	correct := 0
	for _, row := range res.Rows {
		if truth[int64(row)] {
			correct++
		}
	}
	if len(res.Rows) == 0 {
		t.Fatal("virtual column produced empty output")
	}
	prec := float64(correct) / float64(len(res.Rows))
	recall := float64(correct) / float64(totalCorrect)
	if prec < 0.65 || recall < 0.65 {
		t.Fatalf("virtual column metrics: precision %v recall %v", prec, recall)
	}
}

func TestExecuteWantFalse(t *testing.T) {
	e, truth, _ := newTestEngine(t, 900)
	res, err := e.Execute(Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if truth[int64(row)] {
			t.Fatalf("want-false output contains true row %d", row)
		}
	}
}

func TestExecuteBudget(t *testing.T) {
	e, _, _ := newTestEngine(t, 3000)
	res, err := e.Execute(Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Approx: approx(0.8, 0.8, 0.8), GroupOn: "grade", Budget: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AchievedRecallBound <= 0 || res.Stats.AchievedRecallBound > 1 {
		t.Fatalf("achieved recall bound %v", res.Stats.AchievedRecallBound)
	}
	if res.Stats.Cost > 4000*1.1 {
		t.Fatalf("cost %v blew the budget", res.Stats.Cost)
	}
}

func TestExecuteErrors(t *testing.T) {
	e, _, _ := newTestEngine(t, 90)
	cases := []Query{
		{},
		{Table: "nope", UDFName: "good_credit", UDFArg: "id", Want: true},
		{Table: "loans", UDFName: "nope", UDFArg: "id", Want: true},
		{Table: "loans", UDFName: "good_credit", UDFArg: "nope", Want: true},
		{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true, Columns: []string{"missing"}},
		{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true, Budget: 10},
		{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
			Approx: &Approx{Precision: 2, Recall: 0.5, Probability: 0.5}},
		{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
			Approx: approx(0.8, 0.8, 0.8), GroupOn: "missing"},
	}
	for i, q := range cases {
		if _, err := e.Execute(q); err == nil {
			t.Fatalf("case %d accepted: %+v", i, q)
		}
	}
}

func TestRegisterErrors(t *testing.T) {
	e := New(1)
	tbl, _ := buildLoanTable(t, 9, 1)
	if err := e.RegisterTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterTable(tbl); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if err := e.RegisterUDF(UDF{Name: "", Body: func(table.Value) bool { return true }}); err == nil {
		t.Fatal("empty UDF name accepted")
	}
	if err := e.RegisterUDF(UDF{Name: "f"}); err == nil {
		t.Fatal("nil UDF body accepted")
	}
	if err := e.RegisterUDF(UDF{Name: "f", Body: func(table.Value) bool { return true }, Cost: -1}); err == nil {
		t.Fatal("negative UDF cost accepted")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(UDF{Name: "f", Body: func(table.Value) bool { return true }}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("g"); err == nil {
		t.Fatal("unknown UDF found")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "f" {
		t.Fatalf("names %v", names)
	}
}

func TestUDFCostOverride(t *testing.T) {
	e, _, _ := newTestEngine(t, 90)
	if err := e.RegisterUDF(UDF{
		Name: "pricey",
		Body: func(v table.Value) bool { return true },
		Cost: 50,
	}); err != nil {
		t.Fatal(err)
	}
	cost := e.costModel(Query{UDFName: "pricey"})
	if cost.Evaluate != 50 {
		t.Fatalf("override cost %v", cost.Evaluate)
	}
	cost = e.costModel(Query{UDFName: "good_credit"})
	if cost.Evaluate != core.DefaultCost.Evaluate {
		t.Fatalf("default cost %v", cost.Evaluate)
	}
}

func TestMaterialize(t *testing.T) {
	e, _, _ := newTestEngine(t, 300)
	q := Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Columns: []string{"id", "grade"},
	}
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Materialize(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != len(res.Rows) {
		t.Fatalf("materialized %d rows, want %d", out.NumRows(), len(res.Rows))
	}
	if out.Schema().Len() != 2 || out.Schema().Col(1).Name != "grade" {
		t.Fatalf("projection schema %s", out.Schema())
	}
}

func TestExecuteSelectJoin(t *testing.T) {
	e, truth, _ := newTestEngine(t, 1500)
	// Orders table: grade-A customers appear many times.
	schema := table.MustSchema(
		table.ColumnDef{Name: "loan_id", Type: table.Int},
	)
	orders := table.New("orders", schema)
	rng := stats.NewRNG(5)
	for i := 0; i < 4000; i++ {
		if err := orders.AppendRow(int64(rng.IntN(1500))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RegisterTable(orders); err != nil {
		t.Fatal(err)
	}
	q := SelectJoinQuery{
		Query: Query{
			Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
			Approx: approx(0.7, 0.7, 0.8), GroupOn: "grade",
		},
		JoinTable: "orders", LeftKey: "id", RightKey: "loan_id",
	}
	res, err := e.ExecuteSelectJoin(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("join query returned nothing")
	}
	if res.Stats.Evaluations >= 1500 {
		t.Fatalf("no savings: %d evaluations", res.Stats.Evaluations)
	}
	correct := 0
	for _, row := range res.Rows {
		if truth[int64(row)] {
			correct++
		}
	}
	if prec := float64(correct) / float64(len(res.Rows)); prec < 0.55 {
		t.Fatalf("join precision %v", prec)
	}
}

func TestExecuteSelectJoinErrors(t *testing.T) {
	e, _, _ := newTestEngine(t, 90)
	base := Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Approx: approx(0.8, 0.8, 0.8), GroupOn: "grade",
	}
	cases := []SelectJoinQuery{
		{Query: Query{}},
		{Query: base, JoinTable: "missing", LeftKey: "id", RightKey: "x"},
		{Query: func() Query { q := base; q.Approx = nil; return q }(), JoinTable: "loans", LeftKey: "id", RightKey: "id"},
		{Query: func() Query { q := base; q.GroupOn = ""; return q }(), JoinTable: "loans", LeftKey: "id", RightKey: "id"},
		{Query: base, JoinTable: "loans", LeftKey: "missing", RightKey: "id"},
		{Query: base, JoinTable: "loans", LeftKey: "id", RightKey: "missing"},
	}
	for i, q := range cases {
		if _, err := e.ExecuteSelectJoin(q); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestJoinMultiplicities(t *testing.T) {
	schema := table.MustSchema(table.ColumnDef{Name: "k", Type: table.String})
	tbl := table.New("t", schema)
	for _, k := range []string{"a", "a", "b"} {
		if err := tbl.AppendRow(k); err != nil {
			t.Fatal(err)
		}
	}
	mult, err := JoinMultiplicities(tbl, "k")
	if err != nil {
		t.Fatal(err)
	}
	if mult["a"] != 2 || mult["b"] != 1 {
		t.Fatalf("multiplicities %v", mult)
	}
	if _, err := JoinMultiplicities(tbl, "nope"); err == nil {
		t.Fatal("missing key accepted")
	}
}

func TestVirtualColumnDeterministic(t *testing.T) {
	run := func() []int {
		tbl, truth := buildLoanTable(t, 1500, 42)
		e := New(9)
		if err := e.RegisterTable(tbl); err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterUDF(UDF{Name: "f", Body: func(v table.Value) bool { return truth[v.(int64)] }}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(Query{
			Table: "loans", UDFName: "f", UDFArg: "id", Want: true,
			Approx: approx(0.8, 0.8, 0.8), GroupOn: VirtualColumn,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("same-seed virtual-column runs returned %d vs %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed virtual-column runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEngineDeterministicAcrossSeeds(t *testing.T) {
	run := func(seed uint64) int {
		tbl, truth := buildLoanTable(t, 1200, 42)
		e := New(seed)
		if err := e.RegisterTable(tbl); err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterUDF(UDF{Name: "f", Body: func(v table.Value) bool { return truth[v.(int64)] }}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(Query{
			Table: "loans", UDFName: "f", UDFArg: "id", Want: true,
			Approx: approx(0.8, 0.8, 0.8), GroupOn: "grade",
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Evaluations
	}
	if run(3) != run(3) {
		t.Fatal("same seed produced different executions")
	}
}

func TestQueryValidate(t *testing.T) {
	good := Query{Table: "t", UDFName: "f", UDFArg: "c", Want: true}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	msg := func(q Query) string {
		err := q.Validate()
		if err == nil {
			return ""
		}
		return err.Error()
	}
	if msg(Query{UDFName: "f", UDFArg: "c"}) == "" {
		t.Fatal("missing table accepted")
	}
	if msg(Query{Table: "t"}) == "" {
		t.Fatal("missing UDF accepted")
	}
	if msg(Query{Table: "t", UDFName: "f", UDFArg: "c", Budget: -1}) == "" {
		t.Fatal("negative budget accepted")
	}
}

func TestExecuteConjunction(t *testing.T) {
	e, truth, _ := newTestEngine(t, 3000)
	// Second predicate: high income (correlated with nothing in grade, a
	// pure per-row property).
	incomes, err := func() (*table.FloatColumn, error) {
		tbl, err := e.Table("loans")
		if err != nil {
			return nil, err
		}
		return tbl.FloatColumn("income")
	}()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterUDF(UDF{Name: "rich", Body: func(v table.Value) bool {
		return v.(float64) > 80000
	}}); err != nil {
		t.Fatal(err)
	}
	q := Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Conjuncts: []Conjunct{{UDFName: "rich", UDFArg: "income", Want: true}},
		Approx:    approx(0.75, 0.75, 0.8), GroupOn: "grade",
	}
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Evaluations >= 2*3000 {
		t.Fatalf("no savings: %d evaluations", res.Stats.Evaluations)
	}
	// Exact conjunction for reference.
	qExact := q
	qExact.Approx = nil
	qExact.GroupOn = ""
	exact, err := e.Execute(qExact)
	if err != nil {
		t.Fatal(err)
	}
	wantSet := map[int]bool{}
	for _, r := range exact.Rows {
		wantSet[r] = true
	}
	correct := 0
	for _, r := range res.Rows {
		if wantSet[r] {
			correct++
		}
	}
	if len(res.Rows) == 0 {
		t.Fatal("empty conjunction output")
	}
	prec := float64(correct) / float64(len(res.Rows))
	recall := float64(correct) / float64(len(exact.Rows))
	if prec < 0.6 || recall < 0.6 {
		t.Fatalf("conjunction metrics: precision %v recall %v", prec, recall)
	}
	_ = truth
	_ = incomes
}

func TestExecuteConjunctionExactShortCircuits(t *testing.T) {
	e, truth, calls := newTestEngine(t, 300)
	var calls2 atomic.Int64
	if err := e.RegisterUDF(UDF{Name: "second", Body: func(v table.Value) bool {
		calls2.Add(1)
		return v.(int64)%2 == 0
	}}); err != nil {
		t.Fatal(err)
	}
	q := Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Conjuncts: []Conjunct{{UDFName: "second", UDFArg: "id", Want: true}},
	}
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	nTrue := 0
	for _, v := range truth {
		if v {
			nTrue++
		}
	}
	// f2 must only have been evaluated on f1 survivors.
	if calls2.Load() != int64(nTrue) {
		t.Fatalf("second predicate called %d times, want %d", calls2.Load(), nTrue)
	}
	if calls.Load() != 300 {
		t.Fatalf("first predicate called %d times, want 300", calls.Load())
	}
	for _, r := range res.Rows {
		if !truth[int64(r)] || r%2 != 0 {
			t.Fatalf("row %d should not match conjunction", r)
		}
	}
}

func TestExecuteConjunctionValidation(t *testing.T) {
	e, _, _ := newTestEngine(t, 90)
	base := Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Conjuncts: []Conjunct{{UDFName: "good_credit", UDFArg: "id", Want: true}},
		Approx:    approx(0.8, 0.8, 0.8),
	}
	if _, err := e.Execute(base); err == nil {
		t.Fatal("conjunction without GROUP ON accepted")
	}
	bad := base
	bad.Conjuncts = []Conjunct{{}}
	if _, err := e.Execute(bad); err == nil {
		t.Fatal("empty conjunct accepted")
	}
	bad = base
	bad.GroupOn = "grade"
	bad.Conjuncts = []Conjunct{{UDFName: "missing", UDFArg: "id", Want: true}}
	if _, err := e.Execute(bad); err == nil {
		t.Fatal("unknown second UDF accepted")
	}
	bad = base
	bad.GroupOn = "grade"
	bad.Budget = 100
	if _, err := e.Execute(bad); err == nil {
		t.Fatal("budget + conjunction accepted")
	}
}

func TestUDFPanicSurfacesAsError(t *testing.T) {
	e, truth, _ := newTestEngine(t, 300)
	if err := e.RegisterUDF(UDF{Name: "explodes", Body: func(v table.Value) bool {
		if v.(int64) == 7 {
			panic("boom")
		}
		return truth[v.(int64)]
	}}); err != nil {
		t.Fatal(err)
	}
	_, err := e.Execute(Query{Table: "loans", UDFName: "explodes", UDFArg: "id", Want: true})
	if err == nil {
		t.Fatal("panicking UDF did not surface an error")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error %v does not mention the panic", err)
	}
	// The engine must survive: a subsequent healthy query still works.
	res, err := e.Execute(Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("engine broken after UDF panic")
	}
}

func TestUDFPanicInApproximateQuery(t *testing.T) {
	e, _, _ := newTestEngine(t, 900)
	if err := e.RegisterUDF(UDF{Name: "flaky", Body: func(v table.Value) bool {
		panic("always")
	}}); err != nil {
		t.Fatal(err)
	}
	_, err := e.Execute(Query{
		Table: "loans", UDFName: "flaky", UDFArg: "id", Want: true,
		Approx: approx(0.8, 0.8, 0.8), GroupOn: "grade",
	})
	if err == nil {
		t.Fatal("panicking UDF in approximate query did not error")
	}
}

func TestCheapFilterPushdownExact(t *testing.T) {
	e, truth, calls := newTestEngine(t, 900)
	res, err := e.Execute(Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Filters: []Filter{{Column: "grade", Value: "A"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only grade-A rows (ids ≡ 0 mod 3, 300 of them) are evaluated.
	if calls.Load() != 300 {
		t.Fatalf("UDF called %d times, want 300", calls.Load())
	}
	for _, r := range res.Rows {
		if r%3 != 0 {
			t.Fatalf("non-A row %d in output", r)
		}
		if !truth[int64(r)] {
			t.Fatalf("incorrect row %d in output", r)
		}
	}
	if res.Stats.Retrievals != 300 {
		t.Fatalf("retrievals %d, want 300", res.Stats.Retrievals)
	}
}

func TestCheapFilterPushdownApprox(t *testing.T) {
	e, _, _ := newTestEngine(t, 3000)
	res, err := e.Execute(Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Approx:  approx(0.8, 0.8, 0.8),
		Filters: []Filter{{Column: "purpose", Value: "car"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Table("loans")
	if err != nil {
		t.Fatal(err)
	}
	purpose, err := tbl.StringColumn("purpose")
	if err != nil {
		t.Fatal(err)
	}
	carRows := 0
	for i := 0; i < tbl.NumRows(); i++ {
		if purpose.At(i) == "car" {
			carRows++
		}
	}
	for _, r := range res.Rows {
		if purpose.At(r) != "car" {
			t.Fatalf("non-car row %d in output", r)
		}
	}
	if res.Stats.Evaluations >= carRows {
		t.Fatalf("no savings within the filtered subset: %d evals of %d rows",
			res.Stats.Evaluations, carRows)
	}
}

func TestCheapFilterErrors(t *testing.T) {
	e, _, _ := newTestEngine(t, 90)
	_, err := e.Execute(Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Filters: []Filter{{Column: "missing", Value: "x"}},
	})
	if err == nil {
		t.Fatal("missing filter column accepted")
	}
}

func TestCheapFilterEmptyResult(t *testing.T) {
	e, _, _ := newTestEngine(t, 90)
	res, err := e.Execute(Query{
		Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
		Filters: []Filter{{Column: "grade", Value: "Z"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 || res.Stats.Evaluations != 0 {
		t.Fatalf("empty filter produced %d rows, %d evals", len(res.Rows), res.Stats.Evaluations)
	}
}
