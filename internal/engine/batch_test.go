package engine

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/table"
)

// newChaosEngine builds an engine over the loan table whose UDF misbehaves
// deterministically per row id: ids ≡ 3 (mod 7) fail their first attempt
// with a transient error (the retry then succeeds), and ids ≡ 5 (mod 13)
// fail every attempt (the row ultimately fails; queries run under "skip").
// Failure is keyed on the row's value, never on timing or batch shape, so
// results must be identical at every parallelism level and batch size. The
// breaker is configured to never trip — trip timing is the one documented
// batch-size-sensitive behavior, so determinism tests must keep it out of
// play.
func newChaosEngine(t testing.TB, n, parallelism, batchSize int) (*Engine, map[int64]bool) {
	t.Helper()
	tbl, truth := buildLoanTable(t, n, 42)
	e := New(7)
	e.Parallelism = parallelism
	e.BatchSize = batchSize
	e.Retry = resilience.Policy{Sleep: func(context.Context, time.Duration) error { return nil }}
	e.Breaker = resilience.BreakerConfig{Window: 1 << 20, MinCalls: 1 << 20, FailureRate: 1, Segment: 1 << 20}
	if err := e.RegisterTable(tbl); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	attempts := make(map[int64]int)
	err := e.RegisterUDF(UDF{
		Name: "good_credit",
		BodyErr: func(_ context.Context, v table.Value) (bool, error) {
			id := v.(int64)
			mu.Lock()
			attempts[id]++
			attempt := attempts[id]
			mu.Unlock()
			if id%13 == 5 {
				return false, fmt.Errorf("chaos: id %d is down", id)
			}
			if id%7 == 3 && attempt == 1 {
				return false, fmt.Errorf("chaos: id %d flaked", id)
			}
			return truth[id], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = e.RegisterUDF(UDF{
		Name: "rich",
		Body: func(v table.Value) bool { return v.(float64) > 70000 },
		Cost: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, truth
}

// TestBatchDeterminismMatrix pins the PR 1 determinism contract onto the
// batch executor: for a fixed seed, rows and the full Stats struct are
// bit-for-bit identical across parallelism {1, 8} × batch size
// {1, 64, 4096} — batch sizes below, at and above the table size — on
// seeded chaos workloads covering every pipeline family (fused
// scan+filter, exact streaming eval, conjunction waves, and the blocking
// sampling pipeline).
func TestBatchDeterminismMatrix(t *testing.T) {
	queries := map[string]Query{
		"exact-filtered": {
			Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
			Filters: []Filter{{Column: "grade", Value: "B"}}, OnFailure: SkipFailed,
		},
		"conj-waves": {
			Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
			Conjuncts: []Conjunct{{UDFName: "rich", UDFArg: "income", Want: true}},
			OnFailure: SkipFailed,
		},
		"approx-grouped": {
			Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
			Approx: approx(0.8, 0.8, 0.8), GroupOn: "grade", OnFailure: SkipFailed,
		},
	}
	type combo struct{ parallelism, batch int }
	var combos []combo
	for _, p := range []int{1, 8} {
		for _, b := range []int{1, 64, 4096} {
			combos = append(combos, combo{p, b})
		}
	}
	for name, q := range queries {
		t.Run(name, func(t *testing.T) {
			var baseRows []int
			var baseStats Stats
			for i, c := range combos {
				// A fresh engine per run: the chaos attempt counters and the
				// RNG must restart identically.
				e, _ := newChaosEngine(t, 600, c.parallelism, c.batch)
				res, err := e.Execute(q)
				if err != nil {
					t.Fatalf("p=%d batch=%d: %v", c.parallelism, c.batch, err)
				}
				if i == 0 {
					baseRows, baseStats = res.Rows, res.Stats
					if len(baseRows) == 0 {
						t.Fatalf("workload %s returned no rows; the matrix would compare nothing", name)
					}
					continue
				}
				if !reflect.DeepEqual(res.Rows, baseRows) {
					t.Errorf("p=%d batch=%d: rows diverged (%d vs %d)",
						c.parallelism, c.batch, len(res.Rows), len(baseRows))
				}
				if res.Stats != baseStats {
					t.Errorf("p=%d batch=%d: stats diverged:\n got %+v\nwant %+v",
						c.parallelism, c.batch, res.Stats, baseStats)
				}
			}
		})
	}
}

// TestStreamMatchesMaterialized pins that streaming delivers exactly the
// materialized result: same rows in the same order, same Stats.
func TestStreamMatchesMaterialized(t *testing.T) {
	q := Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true, OnFailure: SkipFailed}
	e1, _ := newChaosEngine(t, 600, 4, 64)
	want, err := e1.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := newChaosEngine(t, 600, 4, 64)
	var got []int
	stats, err := e2.ExecuteStreamContext(context.Background(), q, func(rows []int) error {
		got = append(got, rows...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Rows) {
		t.Fatalf("streamed %d rows, materialized %d; orders differ", len(got), len(want.Rows))
	}
	if stats != want.Stats {
		t.Fatalf("streamed stats %+v, materialized %+v", stats, want.Stats)
	}
}

// TestStreamEarlyStopCancelsUpstream is the regression test for the
// limit/stream interplay at the engine layer: a sink that stops after the
// first batch must cancel upstream evaluation — the engine must not pay
// for rows the consumer will never see.
func TestStreamEarlyStopCancelsUpstream(t *testing.T) {
	e, _, calls := newTestEngine(t, 2000)
	e.BatchSize = 16
	e.Parallelism = 1
	q := Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true}
	var got []int
	stats, err := e.ExecuteStreamContext(context.Background(), q, func(rows []int) error {
		got = append(got, rows...)
		return ErrStopStream
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) > 16 {
		t.Fatalf("first batch delivered %d rows, want 1..16", len(got))
	}
	if n := calls.Load(); n >= 2000 {
		t.Fatalf("early stop still evaluated every row (%d calls)", n)
	}
	if stats.Evaluations >= 2000 {
		t.Fatalf("Stats.Evaluations = %d, want far fewer than the 2000-row table", stats.Evaluations)
	}
	// The engine (and its caches) must stay fully usable after a stop.
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("engine unusable after an early-stopped stream")
	}
}

// TestStreamFirstBatchBeforeLastWave pins the core streaming property:
// with a streaming plan shape, the first batch reaches the sink while
// later rows are still unevaluated.
func TestStreamFirstBatchBeforeLastWave(t *testing.T) {
	e, _, calls := newTestEngine(t, 1000)
	e.BatchSize = 8
	q := Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true}
	var callsAtFirstBatch int64 = -1
	_, err := e.ExecuteStreamContext(context.Background(), q, func(rows []int) error {
		if callsAtFirstBatch < 0 {
			callsAtFirstBatch = calls.Load()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if callsAtFirstBatch < 0 {
		t.Fatal("sink never called")
	}
	if callsAtFirstBatch >= 1000 {
		t.Fatalf("first batch arrived only after all %d evaluations", callsAtFirstBatch)
	}
}

// TestBatchCountersAdvance pins the batch observability counters: emitted
// batches are counted, the peak batch size is tracked, and nothing stays
// in flight once queries finish.
func TestBatchCountersAdvance(t *testing.T) {
	e, _, _ := newTestEngine(t, 300)
	e.BatchSize = 64
	_, err := e.ExecuteStreamContext(context.Background(),
		Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true},
		func([]int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	inFlight, peak, total := e.BatchCounters()
	if inFlight != 0 {
		t.Errorf("in-flight batches = %d after completion, want 0", inFlight)
	}
	if peak <= 0 || peak > 64 {
		t.Errorf("peak batch rows = %d, want 1..64", peak)
	}
	if total <= 0 {
		t.Errorf("total batches = %d, want > 0", total)
	}
}

// TestBatchSizeKnobHonored pins that the configured batch size bounds
// every emitted batch.
func TestBatchSizeKnobHonored(t *testing.T) {
	for _, size := range []int{1, 7, 256} {
		e, _, _ := newTestEngine(t, 300)
		e.BatchSize = size
		batches := 0
		_, err := e.ExecuteStreamContext(context.Background(),
			Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true},
			func(rows []int) error {
				batches++
				if len(rows) == 0 || len(rows) > size {
					t.Fatalf("size=%d: batch of %d rows", size, len(rows))
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if batches == 0 {
			t.Fatalf("size=%d: no batches", size)
		}
	}
}
