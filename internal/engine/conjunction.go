package engine

import (
	"context"
	"sort"

	"repro/internal/core"
)

// Conjunctions of expensive predicates. Two shapes exist:
//
//   - Exactly two predicates with accuracy bounds run the paper's §5
//     pipeline (opConjExec): sample both UDFs per group, estimate joint
//     selectivities, and plan one of five actions per group (discard /
//     assume both / evaluate either / evaluate both with short-circuit).
//     This requires an explicit GROUP ON column, like the paper.
//
//   - Every other conjunction runs short-circuit waves (conjWavesOp in
//     batch.go): each
//     predicate is evaluated only on the survivors of the ones before it.
//     Exact queries keep the predicates in query order; approximate N-ary
//     queries first sample every predicate (opConjSample) and order them
//     greedily cheapest-first by sampled cost/(1−selectivity). The wave
//     answer is exact — rows resolved during sampling are free, and the
//     sampling spend buys the ordering that minimizes wave work.

// opConjSample draws the N-ary conjunction's sample: all predicates,
// fused, over a Two-Third-Power allocation per group (the whole filtered
// scan counts as one group when no GROUP ON was given).
func (e *Engine) opConjSample(ctx context.Context, st *pipeState) error {
	cons := st.q.Approx.Constraints()
	groups := st.groups
	if groups == nil {
		groups = []core.Group{{Key: "all", Rows: universe(st.tbl, st.subset)}}
	}
	sizes := make([]int, len(groups))
	for i, g := range groups {
		sizes[i] = len(g.Rows)
	}
	udfs := make([]core.UDF, len(st.preds))
	for i, p := range st.preds {
		udfs[i] = p.meter
	}
	targets := core.TwoThirdPowerAllocator{Num: 2.5 * cons.Alpha}.Allocate(sizes)
	samples, sels, err := core.SampleConjunctionParallelCtx(ctx, groups, targets, udfs, st.rng.Split(), e.parallelism())
	if err != nil {
		return err
	}
	st.conjSamples, st.conjSels = samples, sels
	return nil
}

// opConjExec runs the §5 two-predicate pipeline over the resolved groups.
func (e *Engine) opConjExec(ctx context.Context, st *pipeState) error {
	q := st.q
	m1, m2 := st.preds[0].meter, st.preds[1].meter
	res, _, err := core.RunTwoPredicatesParallelCtx(ctx, st.groups, m1, m2, q.Approx.Constraints(), st.cost, nil, st.rng, e.parallelism())
	if err != nil {
		return err
	}
	sort.Ints(res.Output)
	if err := st.preds[0].fault.Err(); err != nil {
		return err
	}
	if err := st.preds[1].fault.Err(); err != nil {
		return err
	}
	// Account evaluations from the outer meters so cross-query cache hits
	// are not re-charged; sampling work is Retrievals beyond execution.
	evals := m1.Calls() + m2.Calls()
	sampled := evals - res.Evaluated1 - res.Evaluated2
	if sampled < 0 {
		// Cache hits during sampling can push charged calls below the
		// execution-phase counts; the sampling work was simply free.
		sampled = 0
	}
	st.res = &Result{
		Rows: res.Output,
		Stats: Stats{
			Evaluations:  evals,
			Retrievals:   res.Retrieved,
			Cost:         float64(res.Retrieved)*st.cost.Retrieve + float64(evals)*st.cost.Evaluate,
			ChosenColumn: q.GroupOn,
			Sampled:      sampled,
			CacheHits:    m1.CacheHits() + m2.CacheHits(),
			CacheMisses:  m1.CacheMisses() + m2.CacheMisses(),
		},
	}
	return nil
}
