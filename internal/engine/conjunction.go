package engine

import (
	"context"
	"sort"

	"repro/internal/core"
	"repro/internal/plan"
)

// Conjunctions of expensive predicates. Two shapes exist:
//
//   - Exactly two predicates with accuracy bounds run the paper's §5
//     pipeline (opConjExec): sample both UDFs per group, estimate joint
//     selectivities, and plan one of five actions per group (discard /
//     assume both / evaluate either / evaluate both with short-circuit).
//     This requires an explicit GROUP ON column, like the paper.
//
//   - Every other conjunction runs short-circuit waves (opConjWaves): each
//     predicate is evaluated only on the survivors of the ones before it.
//     Exact queries keep the predicates in query order; approximate N-ary
//     queries first sample every predicate (opConjSample) and order them
//     greedily cheapest-first by sampled cost/(1−selectivity). The wave
//     answer is exact — rows resolved during sampling are free, and the
//     sampling spend buys the ordering that minimizes wave work.

// opConjSample draws the N-ary conjunction's sample: all predicates,
// fused, over a Two-Third-Power allocation per group (the whole filtered
// scan counts as one group when no GROUP ON was given).
func (e *Engine) opConjSample(ctx context.Context, st *pipeState) error {
	cons := st.q.Approx.Constraints()
	groups := st.groups
	if groups == nil {
		groups = []core.Group{{Key: "all", Rows: universe(st.tbl, st.subset)}}
	}
	sizes := make([]int, len(groups))
	for i, g := range groups {
		sizes[i] = len(g.Rows)
	}
	udfs := make([]core.UDF, len(st.preds))
	for i, p := range st.preds {
		udfs[i] = p.meter
	}
	targets := core.TwoThirdPowerAllocator{Num: 2.5 * cons.Alpha}.Allocate(sizes)
	samples, sels, err := core.SampleConjunctionParallelCtx(ctx, groups, targets, udfs, st.rng.Split(), e.parallelism())
	if err != nil {
		return err
	}
	st.conjSamples, st.conjSels = samples, sels
	return nil
}

// opConjExec runs the §5 two-predicate pipeline over the resolved groups.
func (e *Engine) opConjExec(ctx context.Context, st *pipeState) error {
	q := st.q
	m1, m2 := st.preds[0].meter, st.preds[1].meter
	res, _, err := core.RunTwoPredicatesParallelCtx(ctx, st.groups, m1, m2, q.Approx.Constraints(), st.cost, nil, st.rng, e.parallelism())
	if err != nil {
		return err
	}
	sort.Ints(res.Output)
	if err := st.preds[0].fault.Err(); err != nil {
		return err
	}
	if err := st.preds[1].fault.Err(); err != nil {
		return err
	}
	// Account evaluations from the outer meters so cross-query cache hits
	// are not re-charged; sampling work is Retrievals beyond execution.
	evals := m1.Calls() + m2.Calls()
	sampled := evals - res.Evaluated1 - res.Evaluated2
	if sampled < 0 {
		// Cache hits during sampling can push charged calls below the
		// execution-phase counts; the sampling work was simply free.
		sampled = 0
	}
	st.res = &Result{
		Rows: res.Output,
		Stats: Stats{
			Evaluations:  evals,
			Retrievals:   res.Retrieved,
			Cost:         float64(res.Retrieved)*st.cost.Retrieve + float64(evals)*st.cost.Evaluate,
			ChosenColumn: q.GroupOn,
			Sampled:      sampled,
			CacheHits:    m1.CacheHits() + m2.CacheHits(),
			CacheMisses:  m1.CacheMisses() + m2.CacheMisses(),
		},
	}
	return nil
}

// opConjWaves evaluates the conjunction in short-circuit waves over the
// scan. In greedy mode the predicates run cheapest-first as ordered by the
// sampled selectivities, and sampled rows are resolved for free; in
// query-order mode (exact queries) no sampling happened and the predicates
// run as written.
func (e *Engine) opConjWaves(ctx context.Context, mode string, st *pipeState) error {
	rows := universe(st.tbl, st.subset)
	udfs := make([]core.UDF, len(st.preds))
	for i, p := range st.preds {
		udfs[i] = p.meter
	}
	order := make([]int, len(st.preds))
	for i := range order {
		order[i] = i
	}
	var known []map[int]bool
	sampledRows := 0
	if mode == plan.ModeGreedyOrder {
		costs := make([]float64, len(st.preds))
		for i, p := range st.preds {
			costs[i] = p.cost
		}
		var err error
		order, err = core.OrderPredicates(costs, st.conjSels)
		if err != nil {
			return err
		}
		known = make([]map[int]bool, len(st.preds))
		for j := range known {
			known[j] = make(map[int]bool)
		}
		for _, s := range st.conjSamples {
			sampledRows += len(s.Results)
			for row, outs := range s.Results {
				for j, v := range outs {
					known[j][row] = v
				}
			}
		}
	}
	waves, err := core.ExecuteConjunctionWavesParallelCtx(ctx, rows, order, known, udfs, e.parallelism())
	if err != nil {
		return err
	}
	for _, p := range st.preds {
		if err := p.fault.Err(); err != nil {
			return err
		}
	}
	// Billing is per predicate: each predicate's charged calls pay its own
	// o_e — the same per-predicate costs the greedy ordering and the
	// EXPLAIN estimates use. (The §5 two-predicate shape keeps the paper's
	// single cost model; see opConjExec.)
	evals := 0
	evalCost := 0.0
	hits, misses := 0, 0
	for _, p := range st.preds {
		evals += p.meter.Calls()
		evalCost += float64(p.meter.Calls()) * p.cost
		hits += p.meter.CacheHits()
		misses += p.meter.CacheMisses()
	}
	stats := Stats{
		Evaluations:  evals,
		ChosenColumn: st.chosen,
		CacheHits:    hits,
		CacheMisses:  misses,
		// Every returned row was verified under every predicate, so the
		// answer is exact even on the sampled (approximate) path — the
		// accuracy contract is met deterministically and the sampling
		// spend bought the wave ordering instead.
		Exact: true,
	}
	if st.q.Approx == nil {
		stats.Retrievals = len(rows)
	} else {
		stats.Sampled = sampledRows
		stats.Retrievals = sampledRows + waves.Retrieved
	}
	stats.Cost = float64(stats.Retrievals)*st.cost.Retrieve + evalCost
	st.res = &Result{Rows: waves.Output, Stats: stats}
	return nil
}
