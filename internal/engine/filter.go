package engine

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/table"
)

// Cheap-predicate evaluation over the column store. Filter literals arrive
// as strings (the SQL layer's rendering); rather than re-rendering every
// cell with StringAt per row, each filter is compiled once per column into
// a typed predicate that compares raw []int64 / []float64 / dictionary
// codes directly. Semantics match the old render-and-compare exactly: a
// literal that is not the canonical rendering of any cell value (e.g.
// "042", "+7", "1e2") matches nothing, just as it never equaled a
// canonical StringAt before.

// matchNone is the compiled form of a literal no cell can render as.
func matchNone(int) bool { return false }

// compileFilter turns one equality filter into a typed row predicate.
func compileFilter(col table.Column, lit string) func(row int) bool {
	switch c := col.(type) {
	case *table.IntColumn:
		v, err := strconv.ParseInt(lit, 10, 64)
		if err != nil || strconv.FormatInt(v, 10) != lit {
			return matchNone
		}
		data := c.Data()
		return func(row int) bool { return data[row] == v }
	case *table.FloatColumn:
		v, err := strconv.ParseFloat(lit, 64)
		if err != nil || strconv.FormatFloat(v, 'g', -1, 64) != lit {
			return matchNone
		}
		data := c.Data()
		if math.IsNaN(v) {
			// StringAt renders NaN as "NaN", which the old comparison
			// matched; float equality would not.
			return func(row int) bool { return math.IsNaN(data[row]) }
		}
		if v == 0 {
			// "0" and "-0" render differently, so only the same-signed
			// zero matched before; == would conflate them.
			neg := math.Signbit(v)
			return func(row int) bool {
				return data[row] == 0 && math.Signbit(data[row]) == neg
			}
		}
		return func(row int) bool { return data[row] == v }
	case *table.StringColumn:
		code := c.LookupCode(lit)
		if code < 0 {
			return matchNone
		}
		return func(row int) bool { return c.Code(row) == code }
	default:
		return func(row int) bool { return col.StringAt(row) == lit }
	}
}

// filterRows applies the query's cheap predicates, returning the matching
// row ids (nil when there are no filters, meaning "all rows"). The scan is
// over already-resident column data, so no retrieval or evaluation cost is
// charged — this is the Section 5 "execute cheap predicates first" rule.
func (e *Engine) filterRows(tbl *table.Table, filters []Filter) ([]int, error) {
	if len(filters) == 0 {
		return nil, nil
	}
	preds := make([]func(int) bool, len(filters))
	for i, f := range filters {
		col := tbl.ColumnByName(f.Column)
		if col == nil {
			return nil, fmt.Errorf("engine: table %q has no column %q to filter on", tbl.Name(), f.Column)
		}
		preds[i] = compileFilter(col, f.Value)
	}
	rows := []int{}
	for r := 0; r < tbl.NumRows(); r++ {
		keep := true
		for _, pred := range preds {
			if !pred(r) {
				keep = false
				break
			}
		}
		if keep {
			rows = append(rows, r)
		}
	}
	return rows, nil
}
