// Package engine is the query-engine substrate: it binds the core
// optimizer to tables, exposes a UDF registry with cost accounting, plans
// and executes approximate selection queries (optionally with automatic
// correlated-column discovery and logistic-regression virtual columns),
// and implements the selection-before-join extension.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/table"
)

// UDFBody is a user-supplied predicate over a single column value.
type UDFBody func(v table.Value) bool

// UDFBodyErr is a fallible user-supplied predicate: a UDF that may fail
// (remote service error, timeout) instead of panicking. Returned errors are
// classified by the resilience package — wrap them in *resilience.Error to
// control retryability; plain errors default to transient (retried). The
// context carries the per-call deadline; bodies that honor it return
// promptly on cancellation (return ctx.Err() unwrapped).
type UDFBodyErr func(ctx context.Context, v table.Value) (bool, error)

// UDF is a registered expensive predicate: a named boolean function of one
// column, with a per-invocation cost (the paper's o_e). Exactly one of Body
// and BodyErr must be set; a legacy Body is adapted to the fallible
// invocation path automatically (its panics become typed errors at the
// invocation boundary).
type UDF struct {
	Name string
	Body UDFBody
	// BodyErr is the fallible form; see UDFBodyErr.
	BodyErr UDFBodyErr
	// Cost is o_e for this UDF; zero means "use the engine default".
	Cost float64
}

// fallible returns the UDF's body in fallible form, adapting a legacy Body
// (panic capture happens at the invocation boundary, not here).
func (u UDF) fallible() UDFBodyErr {
	if u.BodyErr != nil {
		return u.BodyErr
	}
	body := u.Body
	return func(_ context.Context, v table.Value) (bool, error) {
		return body(v), nil
	}
}

// Registry holds named UDFs. It is safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	udfs map[string]UDF
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{udfs: make(map[string]UDF)}
}

// Register adds or replaces a UDF. The name must be non-empty and exactly
// one of Body / BodyErr set.
func (r *Registry) Register(u UDF) error {
	if u.Name == "" {
		return fmt.Errorf("engine: UDF with empty name")
	}
	if u.Body == nil && u.BodyErr == nil {
		return fmt.Errorf("engine: UDF %q has no body", u.Name)
	}
	if u.Body != nil && u.BodyErr != nil {
		return fmt.Errorf("engine: UDF %q has both Body and BodyErr", u.Name)
	}
	if u.Cost < 0 {
		return fmt.Errorf("engine: UDF %q has negative cost", u.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.udfs[u.Name] = u
	return nil
}

// Has reports whether a UDF with the given name is registered.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.udfs[name]
	return ok
}

// Lookup fetches a UDF by name.
func (r *Registry) Lookup(name string) (UDF, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.udfs[name]
	if !ok {
		return UDF{}, fmt.Errorf("engine: unknown UDF %q", name)
	}
	return u, nil
}

// Names lists the registered UDF names in sorted order, so callers that
// render or persist the list get the same bytes on every run.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.udfs))
	for n := range r.udfs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
