package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/resilience"
	"repro/internal/stats"
	"repro/internal/table"
)

// Engine executes selection queries with expensive UDF predicates against
// registered tables, using the core optimizer for approximate execution.
type Engine struct {
	mu       sync.RWMutex
	tables   map[string]*table.Table
	registry *Registry
	// Cost is the engine-wide cost model; a UDF's own Cost overrides
	// Evaluate when set.
	Cost core.CostModel
	// LabelFraction is the fraction of tuples labeled to discover a
	// correlated column (default 0.01, the paper's 1%).
	LabelFraction float64
	// VirtualBuckets is the bucket count for the logistic-regression
	// virtual column (default 10).
	VirtualBuckets int
	// MaxCandidateCardinality caps candidate correlated columns (default
	// 50, matching the paper's column scan).
	MaxCandidateCardinality int
	// Parallelism caps the number of workers UDF evaluation fans out
	// across (labeling, sampling, execution and exact scans). Default
	// runtime.GOMAXPROCS(0); 1 reproduces the sequential legacy behavior;
	// ≤ 0 also means GOMAXPROCS. For a given seed, query results are
	// bit-for-bit identical at every setting — only wall clock changes.
	// Values above GOMAXPROCS are honored (useful for I/O-bound UDFs).
	// UDF bodies must tolerate concurrent invocation when Parallelism > 1.
	// Set before serving queries; changing it while Execute runs on
	// another goroutine is a data race.
	Parallelism int
	// CacheUDFResults enables the cross-query (table, UDF, column)
	// outcome cache: rows evaluated by one query are never re-paid by a
	// later one. On by default; set before serving queries. See cache.go.
	CacheUDFResults bool
	// Retry tunes per-invocation retry/backoff and the per-call deadline
	// (see resilience.Policy; the zero value means 3 attempts, 1ms..50ms
	// capped exponential backoff, no deadline). The jitter seed defaults to
	// the engine seed. Set before serving queries.
	Retry resilience.Policy
	// Breaker tunes the per-(table, UDF) circuit breakers (the zero value
	// uses the documented defaults). Set before serving queries; existing
	// breakers keep the config they were created with.
	Breaker resilience.BreakerConfig
	// OnFailure is the default failure policy for queries that do not set
	// their own ("" means FailOnError). See resilience.go.
	OnFailure FailurePolicy
	// BatchSize is the number of rows per execution batch in the Volcano
	// pipeline (see batch.go); ≤ 0 means DefaultBatchSize. Results are
	// bit-identical at any setting (breaker-tripping workloads excepted —
	// fold points move with batch boundaries; see DESIGN.md). Set before
	// serving queries.
	BatchSize int

	rng  *stats.RNG
	seed uint64

	breakerMu sync.Mutex
	breakers  map[breakerKey]*resilience.Breaker

	cacheMu    sync.Mutex
	evalCaches map[evalCacheKey]*core.SharedEvalCache
	// catalog, when non-nil, persists eval-cache outcomes, sampling
	// evidence and column choices across restarts (see catalog.go). Guarded
	// by cacheMu; attach before serving queries.
	catalog *catalog.Catalog

	// flushedLens remembers each eval cache's size at its last catalog
	// flush; outcomes only accumulate (invalidation drops whole caches),
	// so an unchanged size means nothing new to persist and FlushCatalog
	// skips the snapshot+diff for that key. Guarded by cacheMu.
	flushedLens map[evalCacheKey]int
	// invalidations counts UDF invalidation events. Queries capture it
	// before evaluating and refuse to persist learnings if it moved: a
	// body replaced mid-query must not have its stale verdicts re-persisted
	// after the catalog tombstone. Mutated under cacheMu.
	invalidations atomic.Int64

	// Engine-lifetime observability counters (summed over completed
	// queries / warm-start events).
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	columnMemoHits atomic.Int64
	seededRows     atomic.Int64

	// Batch execution observability (see BatchCounters).
	batchesInFlight atomic.Int64
	peakBatchRows   atomic.Int64
	batchesTotal    atomic.Int64
}

// New returns an engine with the paper's default cost model (o_r = 1,
// o_e = 3) and the given deterministic seed.
func New(seed uint64) *Engine {
	return &Engine{
		tables:                  make(map[string]*table.Table),
		registry:                NewRegistry(),
		Cost:                    core.DefaultCost,
		LabelFraction:           0.01,
		VirtualBuckets:          10,
		MaxCandidateCardinality: 50,
		Parallelism:             runtime.GOMAXPROCS(0),
		CacheUDFResults:         true,
		rng:                     stats.NewRNG(seed),
		seed:                    seed,
		breakers:                make(map[breakerKey]*resilience.Breaker),
		evalCaches:              make(map[evalCacheKey]*core.SharedEvalCache),
		flushedLens:             make(map[evalCacheKey]int),
	}
}

// parallelism resolves the effective worker cap.
func (e *Engine) parallelism() int {
	if e.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.Parallelism
}

// pool returns a worker pool at the engine's parallelism.
func (e *Engine) pool() *exec.Pool { return exec.NewPool(e.parallelism()) }

// RegisterTable adds a table; the name must be unused.
func (e *Engine) RegisterTable(t *table.Table) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.tables[t.Name()]; dup {
		return fmt.Errorf("engine: table %q already registered", t.Name())
	}
	e.tables[t.Name()] = t
	return nil
}

// TableNames lists the registered tables in sorted order.
func (e *Engine) TableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.tables))
	for name := range e.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Table looks up a registered table.
func (e *Engine) Table(name string) (*table.Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

// RegisterUDF adds a UDF to the engine's registry. Re-registering an
// existing name replaces its body, so every cached outcome for that name
// is dropped — from the in-memory eval caches AND from the attached
// durable catalog (durably, before this returns) — because a changed body
// must never serve verdicts the old body computed. A first-time
// registration invalidates nothing: persisted verdicts from earlier
// process lives stay warm, which is the whole point of the catalog (the
// durability contract trusts the operator to register the same body
// across restarts; see DESIGN.md).
func (e *Engine) RegisterUDF(u UDF) error {
	if !e.registry.Has(u.Name) {
		return e.registry.Register(u)
	}
	// Invalidate BEFORE swapping the body in: if the durable tombstone
	// cannot be written, the old body stays active and the persisted
	// verdicts remain consistent with it — never the other way around.
	// Holding cacheMu across memory drop + tombstone serializes against
	// FlushCatalog and persistQueryLearnings, so no stale verdict can be
	// re-persisted after the tombstone.
	e.cacheMu.Lock()
	e.invalidateUDFLocked(u.Name)
	c := e.catalog
	var err error
	if c != nil {
		err = c.InvalidateUDF(u.Name)
	}
	e.cacheMu.Unlock()
	if err != nil {
		return fmt.Errorf("engine: invalidating catalog entries for UDF %q: %w", u.Name, err)
	}
	return e.registry.Register(u)
}

// udfFault collects the first panic a UDF body raised during a query, so
// a buggy user function surfaces as a query error instead of crashing the
// process. The faulting tuple is treated as non-matching (it is never
// returned), and the error is reported once execution finishes. It is safe
// for concurrent use: parallel evaluation may fault on several rows at
// once, and only the first capture wins.
type udfFault struct {
	mu  sync.Mutex
	err error
}

// record stores err if no earlier fault was captured.
func (f *udfFault) record(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

// Err returns the recorded fault, if any.
func (f *udfFault) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// costModel resolves the effective costs for the query's UDF.
func (e *Engine) costModel(q Query) core.CostModel {
	cost := e.Cost
	if u, err := e.registry.Lookup(q.UDFName); err == nil && u.Cost > 0 {
		cost.Evaluate = u.Cost
	}
	return cost
}

// Execute runs the query and returns the matching row ids plus statistics.
//
//predlint:allow ctxflow — pre-context compatibility wrapper; cancellable callers use ExecuteContext
func (e *Engine) Execute(q Query) (*Result, error) {
	return e.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute honoring a context: every UDF-evaluating phase
// (labeling, sampling, execution, exact scans) checks the context between
// work items, so a cancel or deadline returns ctx.Err() after at most one
// in-flight UDF call per worker. A cancelled query leaves the engine fully
// reusable — the cross-query outcome cache keeps every completed (and paid)
// evaluation, no entry is ever stored partially, and a later run of the
// same query completes normally. See DESIGN.md, "Cancellation contract".
func (e *Engine) ExecuteContext(ctx context.Context, q Query) (*Result, error) {
	res, _, err := e.executeStatement(ctx, q, nil, false, nil)
	return res, err
}

// executeStatement is the uniform execution path for every query shape:
// validate, bind tables and predicates, lower into the physical operator
// tree, and run it as a batch pull pipeline (see batch.go). The former
// per-shape dispatch branches live on as plan shapes (see planner.go and
// operators.go). With analyze set, the executed tree comes back with
// per-operator Actual counts (EXPLAIN ANALYZE); the returned root is nil
// otherwise. A non-nil sink streams result batches as they are produced
// instead of materializing Result.Rows. A trace attached to ctx
// (obs.WithTrace) gets bind/plan/operator spans either way.
func (e *Engine) executeStatement(ctx context.Context, q Query, join *SelectJoinQuery, analyze bool, sink RowSink) (*Result, *plan.Node, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	if err := validateShape(q, join); err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	tr := obs.FromContext(ctx)
	sp := tr.Start("bind")
	st, err := e.bindStatement(q, join)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	st.analyze = analyze
	sp = tr.Start("plan")
	root, err := plan.Physical(e.buildSpec(st))
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	// Trip baselines for the breakers this statement touches (deduped by
	// pointer — duplicate predicates share one breaker), so Stats can report
	// the trips THIS statement caused, not the engine-lifetime totals.
	baselines := make(map[*resilience.Breaker]int64)
	for _, p := range st.preds {
		if b, ok := p.meter.Gate().(*resilience.Breaker); ok && b != nil {
			if _, seen := baselines[b]; !seen {
				baselines[b] = b.Trips()
			}
		}
	}
	// Captured before any evaluation: if a UDF body is replaced while this
	// query runs, its learnings are not persisted (see persistQueryLearnings).
	st.epoch = e.invalidations.Load()
	if q.Approx != nil {
		// One split per approximate query, exactly like the legacy paths —
		// exact shapes must not consume the engine's RNG stream.
		e.mu.Lock()
		st.rng = e.rng.Split()
		e.mu.Unlock()
	}
	if err := e.runPipeline(ctx, root, st, sink); err != nil {
		return nil, nil, err
	}
	for _, p := range st.preds {
		if err := p.fault.Err(); err != nil {
			return nil, nil, err
		}
	}
	// Resilience accounting: failed rows and retries from the per-predicate
	// sinks, breaker trips as deltas against the captured baselines.
	for _, p := range st.preds {
		f, r := p.sink.counts()
		st.res.Stats.FailedRows += f
		st.res.Stats.Retries += r
	}
	for b, base := range baselines {
		st.res.Stats.BreakerTrips += int(b.Trips() - base)
	}
	if e.policyFor(q) == DegradeFailed && st.res.Stats.FailedRows > 0 {
		st.res.Stats.Degraded = true
	}
	e.cacheHits.Add(int64(st.res.Stats.CacheHits))
	e.cacheMisses.Add(int64(st.res.Stats.CacheMisses))
	if !analyze {
		root = nil
	}
	return st.res, root, nil
}

// universe resolves a row subset: nil means every row of the table.
func universe(tbl *table.Table, subset []int) []int {
	if subset != nil {
		return subset
	}
	rows := make([]int, tbl.NumRows())
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// resolveGroups determines the grouping the optimizer will use: the pinned
// column, a discovered correlated column, or the logistic-regression
// virtual column. It returns the groups, the column's display name, and
// any rows labeled along the way (row → outcome) for reuse.
func (e *Engine) resolveGroups(ctx context.Context, tbl *table.Table, q Query, meter *core.Meter, cons core.Constraints, cost core.CostModel, rng *stats.RNG, subset []int) ([]core.Group, string, map[int]bool, error) {
	switch q.GroupOn {
	case "":
		// A memoized Section 4.4 choice skips the labeling scan entirely;
		// the RNG draws it would have consumed are simply not made (warm
		// runs are deterministic among themselves, not vs. cold runs).
		if groups, col, ok := e.memoizedColumn(tbl, q, cost, subset); ok {
			return groups, col, nil, nil
		}
		return e.discoverColumn(ctx, tbl, q, meter, cons, cost, rng, subset)
	case VirtualColumn:
		return e.virtualColumn(ctx, tbl, q, meter, rng, subset)
	default:
		groups, err := groupsFromColumn(tbl, q.GroupOn, subset)
		if err != nil {
			return nil, "", nil, err
		}
		return groups, q.GroupOn, nil, nil
	}
}

// VirtualColumn is the GroupOn value requesting a logistic-regression
// virtual column (Section 6.3.2).
const VirtualColumn = "virtual"

func groupsFromColumn(tbl *table.Table, column string, subset []int) ([]core.Group, error) {
	col := tbl.ColumnByName(column)
	if col == nil {
		return nil, fmt.Errorf("engine: table %q has no column %q to group on", tbl.Name(), column)
	}
	byKey := make(map[string][]int)
	var keys []string
	for _, r := range universe(tbl, subset) {
		k := col.StringAt(r)
		if _, seen := byKey[k]; !seen {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], r)
	}
	sort.Strings(keys)
	groups := make([]core.Group, 0, len(keys))
	for _, k := range keys {
		groups = append(groups, core.Group{Key: k, Rows: byKey[k]})
	}
	return groups, nil
}

// discoverColumn implements Section 4.4's column scan: label a small
// fraction of tuples, score every low-cardinality column with the
// Section 3.2 planner, pick the cheapest. The labeled rows are returned
// for reuse by the sampler.
func (e *Engine) discoverColumn(ctx context.Context, tbl *table.Table, q Query, meter *core.Meter, cons core.Constraints, cost core.CostModel, rng *stats.RNG, subset []int) ([]core.Group, string, map[int]bool, error) {
	var cands []core.Candidate
	for i := 0; i < tbl.Schema().Len(); i++ {
		def := tbl.Schema().Col(i)
		if def.Name == q.UDFArg {
			continue // the UDF argument (usually a key) is not a predictor
		}
		groups, err := groupsFromColumn(tbl, def.Name, subset)
		if err != nil {
			return nil, "", nil, err
		}
		if len(groups) < 2 || len(groups) > e.MaxCandidateCardinality {
			continue
		}
		cands = append(cands, core.Candidate{Name: def.Name, Groups: groups})
	}
	if len(cands) == 0 {
		return nil, "", nil, fmt.Errorf("engine: table %q has no candidate correlated columns; use GROUP ON or %q", q.Table, VirtualColumn)
	}

	rows := universe(tbl, subset)
	frac := e.LabelFraction
	if frac <= 0 {
		frac = 0.01
	}
	labeled := make(map[int]bool)
	for attempt := 0; attempt < 8; attempt++ {
		batch, err := core.LabelFractionParallelCtx(ctx, rows, frac, meter, rng, e.parallelism())
		if err != nil {
			return nil, "", nil, err
		}
		for row, v := range batch {
			labeled[row] = v
		}
		choice, err := core.SelectColumn(cands, labeled, cons, cost)
		if err == nil {
			return cands[choice.Index].Groups, choice.Name, labeled, nil
		}
		frac *= 2 // every candidate disqualified: label more and retry
		if frac > 1 {
			break
		}
	}
	return nil, "", nil, fmt.Errorf("engine: could not qualify any correlated column for table %q", q.Table)
}

// virtualColumn implements Section 6.3.2: label ~1% of rows, train a
// logistic regression over the table's encodable features, score every
// row, and bucket the scores into equal-frequency groups.
func (e *Engine) virtualColumn(ctx context.Context, tbl *table.Table, q Query, meter *core.Meter, rng *stats.RNG, subset []int) ([]core.Group, string, map[int]bool, error) {
	enc, err := ml.BuildEncoder(tbl, ml.Encoder{
		MaxCardinality: e.MaxCandidateCardinality,
		Exclude:        []string{q.UDFArg},
	})
	if err != nil {
		return nil, "", nil, fmt.Errorf("engine: virtual column needs encodable features: %w", err)
	}
	rows := universe(tbl, subset)
	frac := e.LabelFraction
	if frac <= 0 {
		frac = 0.01
	}
	labeled, err := core.LabelFractionParallelCtx(ctx, rows, frac, meter, rng, e.parallelism())
	if err != nil {
		return nil, "", nil, err
	}

	// Train in sorted row order: ranging over the map would feed the
	// gradient accumulation in Go's randomized iteration order, making
	// same-seed runs diverge at the last ulp (and occasionally across a
	// bucket boundary).
	labeledRows := make([]int, 0, len(labeled))
	for row := range labeled {
		labeledRows = append(labeledRows, row)
	}
	sort.Ints(labeledRows)
	X := make([][]float64, 0, len(labeled))
	y := make([]bool, 0, len(labeled))
	for _, row := range labeledRows {
		X = append(X, enc.EncodeRow(tbl, row))
		y = append(y, labeled[row])
	}
	var model ml.LogisticRegression
	if err := model.Fit(X, y); err != nil {
		return nil, "", nil, fmt.Errorf("engine: training virtual column: %w", err)
	}
	scores := make([]float64, len(rows))
	for i, r := range rows {
		scores[i] = model.Prob(enc.EncodeRow(tbl, r))
	}
	k := e.VirtualBuckets
	if k <= 1 {
		k = 10
	}
	buckets := ml.EqualFrequencyBuckets(scores, k)
	byBucket := make([][]int, k)
	for i, b := range buckets {
		byBucket[b] = append(byBucket[b], rows[i])
	}
	var groups []core.Group
	for b, rws := range byBucket {
		if len(rws) == 0 {
			continue
		}
		groups = append(groups, core.Group{Key: fmt.Sprintf("bucket%02d", b), Rows: rws})
	}
	if len(groups) < 2 {
		return nil, "", nil, fmt.Errorf("engine: virtual column collapsed to %d buckets", len(groups))
	}
	return groups, VirtualColumn, labeled, nil
}

// projection validates the requested columns and returns their indices
// (nil means all columns).
func (e *Engine) projection(tbl *table.Table, cols []string) ([]int, error) {
	if len(cols) == 0 || (len(cols) == 1 && cols[0] == "*") {
		return nil, nil
	}
	idxs := make([]int, len(cols))
	for i, name := range cols {
		j := tbl.Schema().Lookup(name)
		if j < 0 {
			return nil, fmt.Errorf("engine: table %q has no column %q", tbl.Name(), name)
		}
		idxs[i] = j
	}
	return idxs, nil
}

// Materialize builds a new table holding the result rows with the query's
// projection applied.
func (e *Engine) Materialize(q Query, res *Result) (*table.Table, error) {
	tbl, err := e.Table(q.Table)
	if err != nil {
		return nil, err
	}
	idxs, err := e.projection(tbl, q.Columns)
	if err != nil {
		return nil, err
	}
	if idxs == nil {
		idxs = make([]int, tbl.Schema().Len())
		for i := range idxs {
			idxs[i] = i
		}
	}
	defs := make([]table.ColumnDef, len(idxs))
	for i, j := range idxs {
		defs[i] = tbl.Schema().Col(j)
	}
	schema, err := table.NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	out := table.New(tbl.Name()+"_result", schema)
	vals := make([]table.Value, len(idxs))
	for _, row := range res.Rows {
		for i, j := range idxs {
			vals[i] = tbl.Column(j).Value(row)
		}
		if err := out.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return out, nil
}
