package engine

import (
	"repro/internal/catalog"
	"repro/internal/core"
)

// Cross-query UDF memoization. Under production traffic the same expensive
// predicate is applied to the same table over and over (by different
// queries, different constraint settings, or repeated identical queries);
// since a registered UDF is a pure function of one column's cell and table
// rows are append-only, an outcome computed once never needs re-paying o_e.
// The engine keeps one SharedEvalCache per (table, UDF, column) key and
// threads it beneath each query's Meter: cache hits bypass the UDF body
// and are not charged as evaluations, so Stats.Evaluations and Stats.Cost
// reflect only genuinely new work. The cache stores the RAW body outcome;
// the query's "= 0/1" comparison is folded at lookup, so complementary
// queries (want=1 vs want=0) share each other's evaluations.
//
// The cache is keyed by row id within the table. Rows appended after a
// cache exists simply miss and get evaluated; existing rows cannot be
// mutated through the table API, so entries never go stale.

// evalCacheKey identifies one memoizable predicate application.
type evalCacheKey struct {
	table  string
	udf    string
	column string
}

// evalCache returns (creating on first use) the shared cache for key. A
// freshly created cache seeds itself from the attached durable catalog, so
// verdicts paid for in earlier process lives are served without ever
// invoking the UDF.
func (e *Engine) evalCache(key evalCacheKey) *core.SharedEvalCache {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	c, ok := e.evalCaches[key]
	if !ok {
		c = core.NewSharedEvalCache()
		if e.catalog != nil {
			if prior := e.catalog.Outcomes(catalog.OutcomeKey{Table: key.table, UDF: key.udf, Column: key.column}); len(prior) > 0 {
				c.Preload(prior)
			}
		}
		e.evalCaches[key] = c
	}
	return c
}

// wantFoldedCache maps between the raw body outcomes held in the shared
// cache and the want-folded verdicts the query's Meter works with: verdict
// v relates to raw outcome r by v = (r == want), which inverts to
// r = (v == want).
type wantFoldedCache struct {
	inner core.EvalCache
	want  bool
}

func (c wantFoldedCache) Lookup(row int) (bool, bool) {
	raw, ok := c.inner.Lookup(row)
	return raw == c.want, ok
}

func (c wantFoldedCache) Store(row int, v bool) {
	c.inner.Store(row, v == c.want)
}

// faultGatedCache blocks writes once the query has recorded a UDF fault:
// a recovered panic yields a synthetic "false" verdict that must not be
// persisted — a later query would silently inherit it instead of
// re-evaluating. Reads are unaffected (cached entries are always genuine).
type faultGatedCache struct {
	inner core.EvalCache
	fault *udfFault
}

func (c faultGatedCache) Lookup(row int) (bool, bool) { return c.inner.Lookup(row) }

func (c faultGatedCache) Store(row int, v bool) {
	// The fault is recorded inside the UDF wrapper before Meter.Eval
	// stores, so the faulting row itself is always blocked. Healthy rows
	// evaluated concurrently with a fault may be skipped too — that only
	// costs a future re-evaluation, never correctness.
	if c.fault.Err() == nil {
		c.inner.Store(row, v)
	}
}

// InvalidateUDFCache drops every cached outcome (all tables and UDFs).
func (e *Engine) InvalidateUDFCache() {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	e.invalidations.Add(1)
	e.evalCaches = make(map[evalCacheKey]*core.SharedEvalCache)
	e.flushedLens = make(map[evalCacheKey]int)
}

// invalidateUDFLocked drops cached outcomes of one UDF name (all tables)
// and bumps the invalidation epoch; RegisterUDF calls this when replacing
// a body. Callers hold cacheMu.
func (e *Engine) invalidateUDFLocked(name string) {
	e.invalidations.Add(1)
	for key := range e.evalCaches {
		if key.udf == name {
			delete(e.evalCaches, key)
			delete(e.flushedLens, key)
		}
	}
}
