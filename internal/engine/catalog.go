package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/table"
)

// Durable catalog integration. When a catalog is attached the engine
// warm-starts from persisted state instead of re-paying o_e after a
// restart:
//
//   - the cross-query eval caches are seeded lazily from persisted raw
//     verdicts (so repeated exact workloads run with zero evaluations);
//   - samplers are seeded with prior labeled/sampled evidence per
//     (table, UDF, column, grouping column), shrinking or eliminating the
//     1% labeling pass and the per-group top-ups of repeated approximate
//     queries;
//   - the Section 4.4 correlated-column discovery result is memoized per
//     workload key, so repeat queries skip the labeling scan entirely.
//
// Writes go to the catalog's memory as queries finish; FlushCatalog (or a
// server's periodic flush) makes them durable. Catalog writes are gated on
// the query's UDF fault state: a panicking UDF yields synthetic verdicts
// that must never become durable facts. The same hygiene extends
// structurally to per-row failures under the skip/degrade policies: a row
// whose invocation ultimately fails (retries exhausted, breaker denial) is
// excluded from the eval cache, sampler evidence and output before any of
// the snapshots below are taken, so no failed row is ever persisted as a
// verdict or a sampling fact.
//
// Like Parallelism, attach the catalog before serving queries.

// SetCatalog attaches a durable catalog. Eval caches created afterwards
// seed themselves from it; pass nil to detach. Configure before serving
// queries (see SetParallelism).
func (e *Engine) SetCatalog(c *catalog.Catalog) {
	e.cacheMu.Lock()
	e.catalog = c
	e.cacheMu.Unlock()
}

// Catalog returns the attached catalog (nil when none).
func (e *Engine) Catalog() *catalog.Catalog {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	return e.catalog
}

// FlushCatalog folds every in-memory eval cache into the catalog and
// flushes it to disk. No-op without an attached catalog. Caches whose
// size has not moved since their last flush are skipped without
// snapshotting (outcomes only accumulate; invalidation drops whole
// caches and their flush watermark), so an idle server's periodic flush
// costs O(1) per cache, not O(rows). cacheMu is held throughout: an
// invalidation can only run entirely before (its dropped caches are not
// in the map) or entirely after (its tombstone lands after these
// records, and replay order wins), never interleaved.
func (e *Engine) FlushCatalog() error {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	c := e.catalog
	if c == nil {
		return nil
	}
	// Iterate caches in sorted key order: AddOutcomes appends WAL records,
	// and the log's byte stream must be a deterministic function of the
	// workload, not of map iteration order (same contract as the catalog's
	// own snapshotRecords).
	keys := make([]evalCacheKey, 0, len(e.evalCaches))
	for k := range e.evalCaches {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.table != b.table {
			return a.table < b.table
		}
		if a.udf != b.udf {
			return a.udf < b.udf
		}
		return a.column < b.column
	})
	for _, k := range keys {
		sc := e.evalCaches[k]
		n := sc.Len()
		if n == e.flushedLens[k] {
			continue
		}
		c.AddOutcomes(catalog.OutcomeKey{Table: k.table, UDF: k.udf, Column: k.column}, sc.Snapshot())
		e.flushedLens[k] = n
	}
	return c.Flush()
}

// CloseCatalog flushes, compacts and closes the attached catalog, then
// detaches it. No-op without one.
func (e *Engine) CloseCatalog() error {
	if err := e.FlushCatalog(); err != nil {
		return err
	}
	e.cacheMu.Lock()
	c := e.catalog
	e.catalog = nil
	e.cacheMu.Unlock()
	if c == nil {
		return nil
	}
	if err := c.Compact(); err != nil {
		c.Close()
		return err
	}
	return c.Close()
}

// CacheCounters reports engine-lifetime cross-query eval-cache hits and
// misses (summed over completed queries).
func (e *Engine) CacheCounters() (hits, misses int64) {
	return e.cacheHits.Load(), e.cacheMisses.Load()
}

// CatalogCounters summarizes warm-start activity since engine creation.
type CatalogCounters struct {
	// ColumnMemoHits counts queries whose Section 4.4 discovery pass was
	// skipped because the catalog had memoized the chosen column.
	ColumnMemoHits int64
	// SeededRows counts sampler rows seeded from persisted evidence.
	SeededRows int64
}

// CatalogCounters reports warm-start activity since engine creation.
func (e *Engine) CatalogCounters() CatalogCounters {
	return CatalogCounters{
		ColumnMemoHits: e.columnMemoHits.Load(),
		SeededRows:     e.seededRows.Load(),
	}
}

// workloadKey canonicalizes everything that influences the Section 4.4
// column choice: the predicate application, the cheap-filter subset, the
// accuracy constraints and the cost model. Two queries with equal keys
// would discover the same column, so the choice is safe to memoize.
func workloadKey(q Query, cost core.CostModel) string {
	parts := []string{
		"v1", q.Table, q.UDFName, q.UDFArg, fmt.Sprintf("want=%t", q.Want),
		fmt.Sprintf("cost=%g,%g", cost.Retrieve, cost.Evaluate),
	}
	if q.Approx != nil {
		parts = append(parts, fmt.Sprintf("apr=%g,%g,%g", q.Approx.Precision, q.Approx.Recall, q.Approx.Probability))
	}
	if len(q.Filters) > 0 {
		fs := make([]string, len(q.Filters))
		for i, f := range q.Filters {
			fs[i] = f.Column + "=" + f.Value
		}
		sort.Strings(fs)
		parts = append(parts, "flt="+strings.Join(fs, "&"))
	}
	return strings.Join(parts, "\x1f")
}

// foldVerdicts maps between raw UDF outcomes and want-folded verdicts.
// The transform is its own inverse: folded = (raw == want) and
// raw = (folded == want).
func foldVerdicts(m map[int]bool, want bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for row, v := range m {
		out[row] = v == want
	}
	return out
}

// memoizedColumn returns persisted discovery output for the query's
// workload, if the memoized column still yields a usable grouping.
func (e *Engine) memoizedColumn(tbl *table.Table, q Query, cost core.CostModel, subset []int) ([]core.Group, string, bool) {
	c := e.Catalog()
	if c == nil {
		return nil, "", false
	}
	col, ok := c.ChosenColumn(workloadKey(q, cost))
	if !ok {
		return nil, "", false
	}
	groups, err := groupsFromColumn(tbl, col, subset)
	if err != nil || len(groups) < 2 || len(groups) > e.MaxCandidateCardinality {
		// The table changed shape since the memo was written: fall back to
		// a fresh discovery pass (which overwrites the memo).
		return nil, "", false
	}
	e.columnMemoHits.Add(1)
	return groups, col, true
}

// seedSamplerFromCatalog warm-starts a sampler with persisted evidence for
// the query's (table, UDF, column, grouping column), folded to its want.
// Returns the number of rows seeded.
func (e *Engine) seedSamplerFromCatalog(s *core.Sampler, q Query, groupCol string) int {
	c := e.Catalog()
	if c == nil {
		return 0
	}
	prior := c.Samples(catalog.SampleKey{
		Table: q.Table, UDF: q.UDFName, Column: q.UDFArg, GroupColumn: groupCol,
	})
	if len(prior) == 0 {
		return 0
	}
	n := s.SeedPrior(foldVerdicts(prior, q.Want))
	e.seededRows.Add(int64(n))
	return n
}

// persistQueryLearnings records what an approximate query learned: the
// sampler's accumulated evidence (unfolded to raw verdicts) and, when
// discovery ran, the chosen column. Two gates protect the catalog from
// poison: the query's fault state (synthetic verdicts from a panicking
// UDF must never become durable) and the invalidation epoch captured
// before the query evaluated anything — if a UDF body was replaced
// mid-query, this query's verdicts may belong to the old body and are
// discarded rather than re-persisted after the tombstone. cacheMu
// serializes the epoch check with RegisterUDF's invalidation.
func (e *Engine) persistQueryLearnings(s *core.Sampler, q Query, cost core.CostModel, chosen string, fault *udfFault, epoch int64) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	c := e.catalog
	if c == nil || fault.Err() != nil || e.invalidations.Load() != epoch {
		return
	}
	if q.GroupOn == "" && chosen != "" && chosen != VirtualColumn {
		c.SetChosenColumn(workloadKey(q, cost), q.UDFName, chosen)
	}
	raw := make(map[int]bool)
	for _, o := range s.Outcomes() {
		for row, v := range o.Results {
			raw[row] = v == q.Want
		}
	}
	if len(raw) > 0 {
		c.AddSamples(catalog.SampleKey{
			Table: q.Table, UDF: q.UDFName, Column: q.UDFArg, GroupColumn: chosen,
		}, raw)
	}
}
