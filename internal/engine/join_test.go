package engine

import (
	"testing"

	"repro/internal/table"
)

// ordersFor builds an orders table whose loan_id values are exactly ids.
func ordersFor(t *testing.T, e *Engine, ids []int64) {
	t.Helper()
	schema := table.MustSchema(table.ColumnDef{Name: "loan_id", Type: table.Int})
	orders := table.New("orders", schema)
	for _, id := range ids {
		if err := orders.AppendRow(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RegisterTable(orders); err != nil {
		t.Fatal(err)
	}
}

// TestSelectJoinSkipsZeroWeightSubgroups is the regression test for the
// w0-subgroup bug: tuples whose join key matches nothing can never appear
// in the join result, so the sampler must not pay UDF calls for them.
func TestSelectJoinSkipsZeroWeightSubgroups(t *testing.T) {
	const n, joined = 1500, 300
	e, _, calls := newTestEngine(t, n)
	// Only ids < joined appear in orders (each a few times); the other
	// n−joined loans have join multiplicity 0.
	var ids []int64
	for i := 0; i < joined; i++ {
		for k := 0; k < 1+i%3; k++ {
			ids = append(ids, int64(i))
		}
	}
	ordersFor(t, e, ids)
	res, err := e.ExecuteSelectJoin(SelectJoinQuery{
		Query: Query{
			Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
			Approx: approx(0.7, 0.7, 0.8), GroupOn: "grade",
		},
		JoinTable: "orders", LeftKey: "id", RightKey: "loan_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row >= joined {
			t.Fatalf("row %d has join multiplicity 0 yet was returned", row)
		}
	}
	// Stats assertion: every retrieval (sampling included) and every UDF
	// call must come from the joined tuples — zero-weight subgroups are
	// dropped before the sampler ever tops them up.
	if res.Stats.Retrievals > joined {
		t.Fatalf("%d retrievals for %d joinable tuples: paid for unreturnable rows", res.Stats.Retrievals, joined)
	}
	if got := calls.Load(); got > joined {
		t.Fatalf("%d UDF calls for %d joinable tuples", got, joined)
	}
	if res.Stats.Sampled <= 0 {
		t.Fatalf("stats lost the sampling count: %+v", res.Stats)
	}
}

// TestSelectJoinAllZeroWeight: when no tuple joins, the result is empty and
// free — no sampling, no evaluation, no planning failure.
func TestSelectJoinAllZeroWeight(t *testing.T) {
	e, _, calls := newTestEngine(t, 300)
	// Orders reference ids far outside the loans table.
	ordersFor(t, e, []int64{5000, 5001, 5002})
	res, err := e.ExecuteSelectJoin(SelectJoinQuery{
		Query: Query{
			Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true,
			Approx: approx(0.7, 0.7, 0.8), GroupOn: "grade",
		},
		JoinTable: "orders", LeftKey: "id", RightKey: "loan_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("empty join produced %d rows", len(res.Rows))
	}
	if calls.Load() != 0 || res.Stats.Evaluations != 0 || res.Stats.Retrievals != 0 {
		t.Fatalf("empty join paid work: calls=%d stats=%+v", calls.Load(), res.Stats)
	}
}
