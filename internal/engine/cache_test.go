package engine

import (
	"sync/atomic"
	"testing"

	"repro/internal/table"
)

// TestUDFPanicNotCached guards against cache poisoning: a recovered panic
// yields a synthetic "false" verdict that must never be served to a later
// query from the cross-query cache.
func TestUDFPanicNotCached(t *testing.T) {
	e, truth, _ := newTestEngine(t, 300)
	var failedOnce atomic.Bool
	if err := e.RegisterUDF(UDF{Name: "flaky", Body: func(v table.Value) bool {
		if v.(int64) == 7 && failedOnce.CompareAndSwap(false, true) {
			panic("transient")
		}
		return truth[v.(int64)]
	}}); err != nil {
		t.Fatal(err)
	}
	q := Query{Table: "loans", UDFName: "flaky", UDFArg: "id", Want: true}
	if _, err := e.Execute(q); err == nil {
		t.Fatal("first query with panicking UDF did not error")
	}
	// The retry must re-evaluate row 7 (not inherit the recovered false)
	// and return the full correct result.
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Rows {
		if r == 7 {
			found = true
		}
		if !truth[int64(r)] {
			t.Fatalf("incorrect row %d in retried result", r)
		}
	}
	if truth[7] != found {
		t.Fatalf("row 7 presence %v, want %v (poisoned cache?)", found, truth[7])
	}
	want := 0
	for _, v := range truth {
		if v {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("retried result has %d rows, want %d", len(res.Rows), want)
	}
}

// TestReRegisterUDFInvalidatesCache: replacing a UDF body must drop the
// old body's cached outcomes.
func TestReRegisterUDFInvalidatesCache(t *testing.T) {
	e, truth, calls := newTestEngine(t, 300)
	q := Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true}
	if _, err := e.Execute(q); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 300 {
		t.Fatalf("first query made %d calls, want 300", calls.Load())
	}
	// Replace the body with its negation.
	if err := e.RegisterUDF(UDF{Name: "good_credit", Body: func(v table.Value) bool {
		calls.Add(1)
		return !truth[v.(int64)]
	}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 600 {
		t.Fatalf("re-registered body called %d times total, want 600 (stale cache?)", calls.Load())
	}
	for _, r := range res.Rows {
		if truth[int64(r)] {
			t.Fatalf("row %d matches old body's verdict", r)
		}
	}
	if res.Stats.Evaluations != 300 {
		t.Fatalf("second query charged %d evaluations, want 300", res.Stats.Evaluations)
	}
}

// TestComplementaryWantSharesCache: the cache stores raw body outcomes, so
// a want=0 query rides the evaluations a want=1 query already paid for.
func TestComplementaryWantSharesCache(t *testing.T) {
	e, truth, calls := newTestEngine(t, 300)
	q := Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true}
	pos, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	q.Want = false
	neg, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 300 || neg.Stats.Evaluations != 0 {
		t.Fatalf("want=0 after want=1: %d total calls, %d evaluations, want 300 and 0",
			calls.Load(), neg.Stats.Evaluations)
	}
	if len(pos.Rows)+len(neg.Rows) != 300 {
		t.Fatalf("complementary results cover %d rows, want 300", len(pos.Rows)+len(neg.Rows))
	}
	for _, r := range neg.Rows {
		if truth[int64(r)] {
			t.Fatalf("want=0 result contains matching row %d", r)
		}
	}
}

// TestSameUDFConjunctionDeterministicStats: a conjunction whose predicates
// share a cache key must still report identical Stats at any parallelism
// (the second meter goes private instead of racing the shared cache).
func TestSameUDFConjunctionDeterministicStats(t *testing.T) {
	run := func(parallelism int) Stats {
		tbl, truth := buildLoanTable(t, 1500, 42)
		e := New(7)
		e.Parallelism = parallelism
		if err := e.RegisterTable(tbl); err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterUDF(UDF{Name: "f", Body: func(v table.Value) bool { return truth[v.(int64)] }}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(Query{
			Table: "loans", UDFName: "f", UDFArg: "id", Want: true,
			Conjuncts: []Conjunct{{UDFName: "f", UDFArg: "id", Want: true}},
			Approx:    approx(0.75, 0.75, 0.8), GroupOn: "grade",
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	seq := run(1)
	for _, p := range []int{2, 8} {
		if par := run(p); par != seq {
			t.Fatalf("parallelism %d stats %+v, want %+v", p, par, seq)
		}
	}
}

// TestCachedSecondQueryFree: the happy-path cache contract at engine level.
func TestCachedSecondQueryFree(t *testing.T) {
	e, _, calls := newTestEngine(t, 300)
	q := Query{Table: "loans", UDFName: "good_credit", UDFArg: "id", Want: true}
	first, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 300 || second.Stats.Evaluations != 0 {
		t.Fatalf("second query: %d total calls, %d evaluations, want 300 and 0", calls.Load(), second.Stats.Evaluations)
	}
	if len(first.Rows) != len(second.Rows) {
		t.Fatalf("cached result size %d, want %d", len(second.Rows), len(first.Rows))
	}
}
