package engine

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"context"

	"repro/internal/resilience"
	"repro/internal/table"
)

// Resilient invocation wiring: every UDF call the engine issues goes
// through a rowInvoker — panic capture at the invocation boundary, per-call
// deadline, retry with deterministic backoff (resilience.Do), a shared
// per-(table, UDF) circuit breaker — and each query decides via its
// FailurePolicy what a row whose invocation ultimately fails means.

// FailurePolicy decides what a query does with rows whose UDF invocation
// ultimately fails (after retries, or denied by an open breaker).
type FailurePolicy string

const (
	// FailOnError (the default) surfaces the first failure as a query error
	// once execution finishes; no partial result is returned. Failed rows
	// are still excluded from all evidence, so the engine stays usable.
	FailOnError FailurePolicy = "fail"
	// SkipFailed silently excludes failed rows from the result; the failure
	// counters in Stats are still populated.
	SkipFailed FailurePolicy = "skip"
	// DegradeFailed excludes failed rows like SkipFailed and additionally
	// marks the result Stats.Degraded, so clients can tell a partial answer
	// from a complete one.
	DegradeFailed FailurePolicy = "degrade"
)

// ParseFailurePolicy validates a policy string ("" means FailOnError).
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	switch FailurePolicy(s) {
	case "":
		return FailOnError, nil
	case FailOnError, SkipFailed, DegradeFailed:
		return FailurePolicy(s), nil
	default:
		return "", fmt.Errorf("engine: unknown failure policy %q (want fail, skip or degrade)", s)
	}
}

// policyFor resolves the effective failure policy for a query: the query's
// own, else the engine default, else FailOnError.
func (e *Engine) policyFor(q Query) FailurePolicy {
	if q.OnFailure != "" {
		return q.OnFailure
	}
	if e.OnFailure != "" {
		return e.OnFailure
	}
	return FailOnError
}

// retryPolicy resolves the engine's retry policy, seeding the jitter from
// the engine seed unless the operator pinned one.
func (e *Engine) retryPolicy() resilience.Policy {
	p := e.Retry
	if p.Seed == 0 {
		p.Seed = e.seed
	}
	return p
}

// predSink accumulates one predicate's failure telemetry over a single
// query. It is safe for concurrent use (invocations fan out); the totals it
// folds are per-row deterministic, so the sums are too.
type predSink struct {
	mu      sync.Mutex
	failed  map[int]error
	retries int
	denied  int
}

// recordFailure notes a row's final failure (first error per row wins).
// Rows denied by an open circuit breaker are additionally tallied so
// EXPLAIN ANALYZE can split denials out of the failure total.
func (s *predSink) recordFailure(row int, err error) {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = make(map[int]error)
	}
	if _, dup := s.failed[row]; !dup {
		s.failed[row] = err
		if errors.Is(err, resilience.ErrBreakerOpen) {
			s.denied++
		}
	}
	s.mu.Unlock()
}

// addRetries folds the extra attempts one invocation made.
func (s *predSink) addRetries(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.retries += n
	s.mu.Unlock()
}

// counts reports (distinct failed rows, total retries).
func (s *predSink) counts() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.failed), s.retries
}

// countsFull reports (distinct failed rows, total retries, breaker-denied
// rows). Like everything the sink folds, the totals are per-row
// deterministic regardless of evaluation interleaving.
func (s *predSink) countsFull() (failed, retries, denied int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.failed), s.retries, s.denied
}

// rowInvoker adapts one bound predicate to the core fallible-UDF interface:
// fetch the argument cell, invoke the body under the retry policy with
// panics captured into typed errors, fold the "= 0/1" comparison on
// success. It implements core.FallibleUDF.
type rowInvoker struct {
	udfName string
	body    UDFBodyErr
	col     table.Column
	want    bool
	policy  resilience.Policy
	// key salts the per-row retry-jitter stream so two predicates never
	// share backoff schedules.
	key  uint64
	sink *predSink
}

// EvalErr implements core.FallibleUDF. Cancellation errors pass through
// unwrapped (the meter treats them as a batch abort, not a row failure).
func (r *rowInvoker) EvalErr(ctx context.Context, row int) (bool, error) {
	v, attempts, err := resilience.Do(ctx, r.policy, r.key^resilience.Mix64(uint64(row)),
		func(ctx context.Context) (out bool, rerr error) {
			defer func() {
				if rec := recover(); rec != nil {
					rerr = resilience.NewPanicError("udf:"+r.udfName, rec, debug.Stack())
				}
			}()
			raw, err := r.body(ctx, r.col.Value(row))
			if err != nil {
				return false, err
			}
			return raw == r.want, nil
		})
	r.sink.addRetries(attempts - 1)
	return v, err
}

// failureHandler builds the meter's onFailure callback for one predicate:
// always record into the sink; under FailOnError additionally record the
// query fault so execution surfaces an error once it finishes.
func failureHandler(udfName string, policy FailurePolicy, fault *udfFault, sink *predSink) func(row int, err error) {
	return func(row int, err error) {
		sink.recordFailure(row, err)
		if policy != FailOnError {
			return
		}
		var re *resilience.Error
		if errors.As(err, &re) && re.Kind == resilience.Panic {
			// Wrap the typed error (not just its message) so callers can
			// errors.As to the panic kind; the text keeps the historical
			// "panicked on row" shape.
			fault.record(fmt.Errorf("engine: UDF %q panicked on row %d: %w", udfName, row, re))
			return
		}
		fault.record(fmt.Errorf("engine: UDF %q failed on row %d: %w", udfName, row, err))
	}
}

// breakerKey identifies one shared circuit breaker.
type breakerKey struct {
	table string
	udf   string
}

// breakerFor returns (creating on first use) the circuit breaker shared by
// every query invoking udfName against tableName. Sharing across queries is
// the point: a UDF backed by a failing remote service should stay tripped
// for the next query too.
func (e *Engine) breakerFor(tableName, udfName string) *resilience.Breaker {
	e.breakerMu.Lock()
	defer e.breakerMu.Unlock()
	key := breakerKey{table: tableName, udf: udfName}
	b, ok := e.breakers[key]
	if !ok {
		b = resilience.NewBreaker(e.Breaker)
		e.breakers[key] = b
	}
	return b
}

// BreakerStatus is one circuit breaker's observable state.
type BreakerStatus struct {
	Table string
	UDF   string
	State string
	Trips int64
}

// BreakerStatuses reports every circuit breaker the engine has created, in
// (table, UDF) order.
func (e *Engine) BreakerStatuses() []BreakerStatus {
	e.breakerMu.Lock()
	keys := make([]breakerKey, 0, len(e.breakers))
	for k := range e.breakers {
		keys = append(keys, k)
	}
	breakers := make([]*resilience.Breaker, len(keys))
	for i, k := range keys {
		breakers[i] = e.breakers[k]
	}
	e.breakerMu.Unlock()
	out := make([]BreakerStatus, len(keys))
	for i, k := range keys {
		out[i] = BreakerStatus{Table: k.table, UDF: k.udf, State: breakers[i].State().String(), Trips: breakers[i].Trips()}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Table != out[b].Table {
			return out[a].Table < out[b].Table
		}
		return out[a].UDF < out[b].UDF
	})
	return out
}
