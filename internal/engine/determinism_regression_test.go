package engine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/table"
)

// flushedLogBytes builds an engine with several dirty eval caches (enough
// distinct keys that map iteration order is effectively never the same
// twice), flushes them into a fresh catalog, and returns the raw WAL
// bytes.
func flushedLogBytes(t *testing.T) []byte {
	t.Helper()
	e, _, _ := newTestEngine(t, 10)
	dir := t.TempDir()
	c, err := catalog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	e.SetCatalog(c)
	for i := 0; i < 8; i++ {
		key := evalCacheKey{table: "loans", udf: fmt.Sprintf("udf%d", i), column: "id"}
		e.evalCache(key).Store(i, i%2 == 0)
	}
	if err := e.FlushCatalog(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "catalog.log"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFlushCatalogDeterministicRecordOrder pins the maporder fix in
// FlushCatalog: flushing the same set of eval caches must append WAL
// records in the same order — byte-identical logs — on every run, not in
// map iteration order.
func TestFlushCatalogDeterministicRecordOrder(t *testing.T) {
	first := flushedLogBytes(t)
	if len(first) == 0 {
		t.Fatal("flush wrote no WAL records")
	}
	for i := 0; i < 3; i++ {
		if next := flushedLogBytes(t); !bytes.Equal(first, next) {
			t.Fatalf("flush %d produced a different WAL byte stream than the first flush", i+2)
		}
	}
}

// TestRegistryNamesSorted pins the maporder fix in Registry.Names: the
// listing must come back sorted, not in map iteration order.
func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid", "beta", "omega", "kappa", "nu", "eps"} {
		if err := r.Register(UDF{Name: name, Body: func(table.Value) bool { return true }}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		names := r.Names()
		if !sort.StringsAreSorted(names) {
			t.Fatalf("Names() not sorted: %v", names)
		}
		if len(names) != 8 {
			t.Fatalf("Names() returned %d names, want 8", len(names))
		}
	}
}
