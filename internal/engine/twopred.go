package engine

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/table"
)

// Conjunctions of two expensive predicates (Section 5): the engine samples
// both UDFs per group, estimates joint selectivities, and plans one of five
// actions per group (discard / assume both / evaluate either / evaluate
// both with short-circuit).

// executeTwoPred handles queries with an AND conjunction.
func (e *Engine) executeTwoPred(tbl *table.Table, q Query, cost core.CostModel, subset []int) (*Result, error) {
	if q.Approx == nil {
		// Exact conjunction: evaluate f1 on everything, f2 on survivors.
		return e.executeTwoPredExact(tbl, q, cost, subset)
	}
	if q.GroupOn == "" || q.GroupOn == VirtualColumn {
		return nil, fmt.Errorf("engine: AND conjunctions require an explicit GROUP ON column")
	}
	udf1, fault1, err := e.rowUDF(tbl, q)
	if err != nil {
		return nil, err
	}
	udf2, fault2, err := e.rowUDF(tbl, Query{
		Table: q.Table, UDFName: q.And.UDFName, UDFArg: q.And.UDFArg, Want: q.And.Want,
	})
	if err != nil {
		return nil, err
	}
	groups, err := groupsFromColumn(tbl, q.GroupOn, subset)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	rng := e.rng.Split()
	e.mu.Unlock()

	m1 := core.NewMeter(udf1)
	m2 := core.NewMeter(udf2)
	res, _, err := core.RunTwoPredicates(groups, m1, m2, q.Approx.Constraints(), cost, nil, rng)
	if err != nil {
		return nil, err
	}
	sort.Ints(res.Output)
	if fault1.Err() != nil {
		return nil, fault1.Err()
	}
	if fault2.Err() != nil {
		return nil, fault2.Err()
	}
	return &Result{
		Rows: res.Output,
		Stats: Stats{
			Evaluations:  m1.Calls() + m2.Calls(),
			Retrievals:   res.Retrieved,
			Cost:         res.Cost,
			ChosenColumn: q.GroupOn,
			Sampled:      m1.Calls() + m2.Calls() - res.Evaluated1 - res.Evaluated2,
		},
	}, nil
}

func (e *Engine) executeTwoPredExact(tbl *table.Table, q Query, cost core.CostModel, subset []int) (*Result, error) {
	udf1, fault1, err := e.rowUDF(tbl, q)
	if err != nil {
		return nil, err
	}
	udf2, fault2, err := e.rowUDF(tbl, Query{
		Table: q.Table, UDFName: q.And.UDFName, UDFArg: q.And.UDFArg, Want: q.And.Want,
	})
	if err != nil {
		return nil, err
	}
	m1 := core.NewMeter(udf1)
	m2 := core.NewMeter(udf2)
	scan := universe(tbl, subset)
	var rows []int
	for _, i := range scan {
		if m1.Eval(i) && m2.Eval(i) {
			rows = append(rows, i)
		}
	}
	n := len(scan)
	if fault1.Err() != nil {
		return nil, fault1.Err()
	}
	if fault2.Err() != nil {
		return nil, fault2.Err()
	}
	evals := m1.Calls() + m2.Calls()
	return &Result{
		Rows: rows,
		Stats: Stats{
			Evaluations: evals,
			Retrievals:  n,
			Cost:        float64(n)*cost.Retrieve + float64(evals)*cost.Evaluate,
			Exact:       true,
		},
	}, nil
}
