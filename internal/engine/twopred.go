package engine

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/table"
)

// Conjunctions of two expensive predicates (Section 5): the engine samples
// both UDFs per group, estimates joint selectivities, and plans one of five
// actions per group (discard / assume both / evaluate either / evaluate
// both with short-circuit).

// executeTwoPred handles queries with an AND conjunction.
func (e *Engine) executeTwoPred(ctx context.Context, tbl *table.Table, q Query, cost core.CostModel, subset []int) (*Result, error) {
	if q.Approx == nil {
		// Exact conjunction: evaluate f1 on everything, f2 on survivors.
		return e.executeTwoPredExact(ctx, tbl, q, cost, subset)
	}
	if q.GroupOn == "" || q.GroupOn == VirtualColumn {
		return nil, fmt.Errorf("engine: AND conjunctions require an explicit GROUP ON column")
	}
	udf1, fault1, err := e.rowUDF(tbl, q)
	if err != nil {
		return nil, err
	}
	udf2, fault2, err := e.rowUDF(tbl, q2(q))
	if err != nil {
		return nil, err
	}
	groups, err := groupsFromColumn(tbl, q.GroupOn, subset)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	rng := e.rng.Split()
	e.mu.Unlock()

	m1 := e.meterFor(q, udf1, fault1)
	m2 := e.meterFor(q2(q), udf2, fault2)
	if q.And.UDFName == q.UDFName && q.And.UDFArg == q.UDFArg {
		// Degenerate conjunction over one (table, UDF, column) key: the two
		// meters would share a cache while sampling evaluates both
		// predicates concurrently over the same rows, making whether m2
		// charges a call depend on store timing. Give m2 a private meter so
		// Stats stay bit-identical at every parallelism level.
		m2 = core.NewMeter(udf2)
	}
	res, _, err := core.RunTwoPredicatesParallelCtx(ctx, groups, m1, m2, q.Approx.Constraints(), cost, nil, rng, e.parallelism())
	if err != nil {
		return nil, err
	}
	sort.Ints(res.Output)
	if fault1.Err() != nil {
		return nil, fault1.Err()
	}
	if fault2.Err() != nil {
		return nil, fault2.Err()
	}
	// Account evaluations from the outer meters so cross-query cache hits
	// are not re-charged; sampling work is Retrievals beyond execution.
	evals := m1.Calls() + m2.Calls()
	sampled := evals - res.Evaluated1 - res.Evaluated2
	if sampled < 0 {
		// Cache hits during sampling can push charged calls below the
		// execution-phase counts; the sampling work was simply free.
		sampled = 0
	}
	return &Result{
		Rows: res.Output,
		Stats: Stats{
			Evaluations:  evals,
			Retrievals:   res.Retrieved,
			Cost:         float64(res.Retrieved)*cost.Retrieve + float64(evals)*cost.Evaluate,
			ChosenColumn: q.GroupOn,
			Sampled:      sampled,
			CacheHits:    m1.CacheHits() + m2.CacheHits(),
			CacheMisses:  m1.CacheMisses() + m2.CacheMisses(),
		},
	}, nil
}

// q2 is the synthetic Query describing the second predicate of a
// conjunction (used for UDF resolution and cache keying).
func q2(q Query) Query {
	return Query{Table: q.Table, UDFName: q.And.UDFName, UDFArg: q.And.UDFArg, Want: q.And.Want}
}

func (e *Engine) executeTwoPredExact(ctx context.Context, tbl *table.Table, q Query, cost core.CostModel, subset []int) (*Result, error) {
	udf1, fault1, err := e.rowUDF(tbl, q)
	if err != nil {
		return nil, err
	}
	udf2, fault2, err := e.rowUDF(tbl, q2(q))
	if err != nil {
		return nil, err
	}
	m1 := e.meterFor(q, udf1, fault1)
	m2 := e.meterFor(q2(q), udf2, fault2)
	// Exact conjunction, batched: f1 over the whole scan, then f2 over the
	// survivors — the same short-circuit work (and charges) as the
	// sequential m1.Eval(i) && m2.Eval(i) loop, in the same output order.
	scan := universe(tbl, subset)
	pool := e.pool()
	v1, err := pool.EvalRowsCtx(ctx, scan, m1.Eval)
	if err != nil {
		return nil, err
	}
	var survivors []int
	for i, r := range scan {
		if v1[i] {
			survivors = append(survivors, r)
		}
	}
	v2, err := pool.EvalRowsCtx(ctx, survivors, m2.Eval)
	if err != nil {
		return nil, err
	}
	var rows []int
	for i, r := range survivors {
		if v2[i] {
			rows = append(rows, r)
		}
	}
	n := len(scan)
	if fault1.Err() != nil {
		return nil, fault1.Err()
	}
	if fault2.Err() != nil {
		return nil, fault2.Err()
	}
	evals := m1.Calls() + m2.Calls()
	return &Result{
		Rows: rows,
		Stats: Stats{
			Evaluations: evals,
			Retrievals:  n,
			Cost:        float64(n)*cost.Retrieve + float64(evals)*cost.Evaluate,
			Exact:       true,
			CacheHits:   m1.CacheHits() + m2.CacheHits(),
			CacheMisses: m1.CacheMisses() + m2.CacheMisses(),
		},
	}, nil
}
