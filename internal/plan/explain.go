package plan

import (
	"fmt"
	"strings"
)

// Format renders a plan tree as the EXPLAIN text: one node per line,
// box-drawing indentation, with the node's mode, principal column,
// attributes and cost estimates. The output is stable (attributes are
// ordered), so it is safe to golden-test.
func Format(root *Node) string {
	var b strings.Builder
	writeNode(&b, root, "", "")
	return b.String()
}

func writeNode(b *strings.Builder, n *Node, prefix, childPrefix string) {
	b.WriteString(prefix)
	b.WriteString(nodeLine(n))
	b.WriteByte('\n')
	for i, c := range n.Children {
		last := i == len(n.Children)-1
		connector, extend := "├─ ", "│  "
		if last {
			connector, extend = "└─ ", "   "
		}
		writeNode(b, c, childPrefix+connector, childPrefix+extend)
	}
}

// nodeLine renders one node: "op[mode] key=value ...  (rows=…, cost≈…)".
func nodeLine(n *Node) string {
	var b strings.Builder
	b.WriteString(string(n.Op))
	if n.Mode != "" {
		fmt.Fprintf(&b, "[%s]", n.Mode)
	}
	for _, a := range n.Detail {
		fmt.Fprintf(&b, " %s=%s", a.Key, quoteIfSpacey(a.Value))
	}
	est := estimates(n)
	if est != "" {
		b.WriteString("  (")
		b.WriteString(est)
		b.WriteString(")")
	}
	if n.Actual != nil {
		b.WriteString("  (actual ")
		b.WriteString(actuals(n.Actual))
		b.WriteString(")")
	}
	return b.String()
}

// actuals renders the measured counts of an EXPLAIN ANALYZE node: rows
// always, every other count only when non-zero, the wall time last. The
// count fields are deterministic at any parallelism; only the time= part
// varies run to run.
func actuals(a *Actual) string {
	parts := []string{fmt.Sprintf("rows=%d", a.Rows)}
	add := func(key string, v int) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", key, v))
		}
	}
	add("groups", a.Groups)
	add("calls", a.Calls)
	add("hits", a.CacheHits)
	add("misses", a.CacheMisses)
	add("retries", a.Retries)
	add("denied", a.Denied)
	add("failed", a.Failed)
	if a.ElapsedNS > 0 {
		parts = append(parts, fmt.Sprintf("time=%.3fms", float64(a.ElapsedNS)/1e6))
	}
	return strings.Join(parts, " ")
}

func estimates(n *Node) string {
	var parts []string
	if n.EstRows > 0 {
		parts = append(parts, fmt.Sprintf("rows≈%d", n.EstRows))
	}
	if n.EstCost > 0 {
		rel := "≈"
		if n.CostIsBound {
			rel = "≤"
		}
		parts = append(parts, fmt.Sprintf("cost%s%.6g", rel, n.EstCost))
	}
	return strings.Join(parts, ", ")
}

// quoteIfSpacey wraps multi-word attribute values in quotes so lines stay
// machine-splittable on spaces around '='.
func quoteIfSpacey(v string) string {
	if strings.ContainsAny(v, " \t") {
		return "«" + v + "»"
	}
	return v
}
