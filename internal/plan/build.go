package plan

import (
	"fmt"
	"strings"
)

// Logical lowers a spec into the logical plan: a composite root (select /
// conjunction / join) over the scan → filter base, annotated with the
// accuracy contract. Logical nodes say what the query means; Physical
// decides how it runs.
func Logical(s Spec) (*Node, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	base := s.scanChain()
	var root *Node
	switch {
	case s.Join != nil:
		root = &Node{
			Op:       OpJoin,
			Column:   s.Join.LeftKey,
			Preds:    s.Preds,
			Children: []*Node{base},
			EstRows:  s.Rows,
			Detail: []Attr{
				{"table", s.Join.Table},
				{"on", fmt.Sprintf("%s = %s.%s", s.Join.LeftKey, s.Join.Table, s.Join.RightKey)},
			},
		}
	case len(s.Preds) > 1:
		root = &Node{
			Op:       OpConjunction,
			Preds:    s.Preds,
			Children: []*Node{base},
			EstRows:  s.Rows,
			Detail:   []Attr{{"predicates", predList(s.Preds)}},
		}
	default:
		root = &Node{
			Op:       OpSelect,
			Preds:    s.Preds,
			Children: []*Node{base},
			EstRows:  s.Rows,
			Detail:   []Attr{{"predicate", s.Preds[0].String()}},
		}
	}
	if s.Approx != nil {
		root.Detail = append(root.Detail, Attr{"accuracy", fmt.Sprintf("α=%g β=%g ρ=%g", s.Approx.Alpha, s.Approx.Beta, s.Approx.Rho)})
		if s.Budget > 0 {
			root.Detail = append(root.Detail, Attr{"budget", fmt.Sprintf("%g", s.Budget)})
		}
	} else {
		root.Detail = append(root.Detail, Attr{"accuracy", "exact"})
	}
	return root, nil
}

// scanChain builds filter → scan (or a bare scan when there are no cheap
// filters).
func (s Spec) scanChain() *Node {
	scan := &Node{Op: OpScan, Column: s.Table, EstRows: s.Rows,
		Detail: []Attr{{"table", s.Table}}}
	if len(s.Filters) == 0 {
		return scan
	}
	fs := make([]string, len(s.Filters))
	for i, f := range s.Filters {
		fs[i] = fmt.Sprintf("%s = %q", f.Column, f.Value)
	}
	return &Node{
		Op:          OpFilter,
		Children:    []*Node{scan},
		EstRows:     s.Rows,
		CostIsBound: true,
		Detail:      []Attr{{"predicates", strings.Join(fs, " AND ")}},
	}
}

// Physical rewrites the logical plan into the physical operator tree the
// engine executes. The rewrite rules are the former dispatch branches:
//
//   - select + exact          → exact-eval
//   - select + approx         → group-resolve · sample · solve · prob-eval · merge
//   - conjunction + exact     → conj-waves (query order)
//   - conjunction + approx, 2 → group-resolve · conj-sample · conj-solve · conj-exec · merge
//   - conjunction + approx, N → [group-resolve ·] conj-sample · conj-waves(greedy) · merge
//   - join + approx           → group-resolve · join-group · sample · solve(weights) · prob-eval · merge
func Physical(s Spec) (*Node, error) {
	logical, err := Logical(s)
	if err != nil {
		return nil, err
	}
	base := logical.Child() // filter → scan chain, reused as the pipeline tail
	switch logical.Op {
	case OpJoin:
		return s.physicalJoin(base), nil
	case OpConjunction:
		return s.physicalConjunction(base), nil
	default:
		return s.physicalSelect(base), nil
	}
}

func (s Spec) physicalSelect(base *Node) *Node {
	p := s.Preds[0]
	if s.Approx == nil {
		return &Node{
			Op:       OpExactEval,
			Preds:    s.Preds,
			Children: []*Node{base},
			EstRows:  s.Rows,
			EstCost:  float64(s.Rows) * s.perRow(p),
			Detail:   []Attr{{"predicate", p.String()}},
		}
	}
	gr := s.groupResolve(base)
	n := s.Rows
	sampleRows := s.estSampleRows(n)
	sample := &Node{
		Op:       OpSample,
		Children: []*Node{gr},
		EstRows:  sampleRows,
		EstCost:  float64(sampleRows) * s.perRow(p),
		Detail:   []Attr{{"allocator", fmt.Sprintf("two-third-power num=%.3g", s.SampleNum)}},
	}
	solve := &Node{Op: OpSolve, Mode: ModeConstrained, Children: []*Node{sample},
		Detail: []Attr{{"objective", fmt.Sprintf("min cost s.t. α=%g β=%g ρ=%g", s.Approx.Alpha, s.Approx.Beta, s.Approx.Rho)}}}
	if s.Budget > 0 {
		solve.Mode = ModeBudget
		solve.Detail = []Attr{{"objective", fmt.Sprintf("max recall s.t. α=%g ρ=%g cost≤%g", s.Approx.Alpha, s.Approx.Rho, s.Budget)}}
	}
	eval := &Node{
		Op:          OpProbEval,
		Children:    []*Node{solve},
		EstRows:     n,
		EstCost:     float64(n-sampleRows) * s.perRow(p),
		CostIsBound: true,
		Detail:      []Attr{{"strategy", "per-group retrieve/evaluate coins"}},
	}
	return s.merge(eval)
}

func (s Spec) physicalConjunction(base *Node) *Node {
	n := s.Rows
	if s.Approx == nil {
		return &Node{
			Op:          OpConjWaves,
			Mode:        ModeQueryOrder,
			Preds:       s.Preds,
			Children:    []*Node{base},
			EstRows:     n,
			EstCost:     float64(n) * (s.Retrieve + s.sumEval()),
			CostIsBound: true,
			Detail: []Attr{
				{"order", predList(s.Preds)},
				{"short-circuit", "each wave evaluates only prior survivors"},
			},
		}
	}
	sampleRows := s.estSampleRows(n)
	conjSample := func(child *Node) *Node {
		return &Node{
			Op:       OpConjSample,
			Preds:    s.Preds,
			Children: []*Node{child},
			EstRows:  sampleRows,
			EstCost:  float64(sampleRows) * (s.Retrieve + s.sumEval()),
			Detail:   []Attr{{"fused", fmt.Sprintf("all %d predicates per sampled row", len(s.Preds))}},
		}
	}
	if len(s.Preds) == 2 {
		gr := s.groupResolve(base)
		sample := conjSample(gr)
		sample.Mode = ModeTwoPred
		solve := &Node{Op: OpConjSolve, Mode: ModeTwoPred, Children: []*Node{sample},
			Detail: []Attr{{"actions", "discard | assume-both | eval-f1 | eval-f2 | eval-both (§5)"}}}
		exec := &Node{
			Op:          OpConjExec,
			Preds:       s.Preds,
			Children:    []*Node{solve},
			EstRows:     n,
			EstCost:     float64(n-sampleRows) * (s.Retrieve + s.sumEval()),
			CostIsBound: true,
		}
		return s.merge(exec)
	}
	// N ≥ 3: sampled selectivities only order the short-circuit waves; the
	// answer itself is exact.
	child := base
	if s.GroupOn != "" && s.GroupOn != s.VirtualName {
		child = s.groupResolve(base)
	}
	waves := &Node{
		Op:          OpConjWaves,
		Mode:        ModeGreedyOrder,
		Preds:       s.Preds,
		Children:    []*Node{conjSample(child)},
		EstRows:     n,
		EstCost:     float64(n-sampleRows) * (s.Retrieve + s.sumEval()),
		CostIsBound: true,
		Detail: []Attr{
			{"order", "cheapest-first by sampled cost/(1−selectivity)"},
			{"short-circuit", "each wave evaluates only prior survivors"},
		},
	}
	return s.merge(waves)
}

func (s Spec) physicalJoin(base *Node) *Node {
	p := s.Preds[0]
	gr := s.groupResolve(base)
	jg := &Node{
		Op:       OpJoinGroup,
		Column:   s.Join.LeftKey,
		Children: []*Node{gr},
		EstRows:  s.Rows,
		Detail: []Attr{
			{"weights", fmt.Sprintf("join multiplicity of %s in %s.%s (%d rows)", s.Join.LeftKey, s.Join.Table, s.Join.RightKey, s.Join.Rows)},
		},
	}
	n := s.Rows
	sampleRows := s.estSampleRows(n)
	sample := &Node{
		Op:       OpSample,
		Children: []*Node{jg},
		EstRows:  sampleRows,
		EstCost:  float64(sampleRows) * s.perRow(p),
		Detail:   []Attr{{"allocator", fmt.Sprintf("two-third-power num=%.3g", s.SampleNum)}},
	}
	solve := &Node{Op: OpSolve, Mode: ModeJoinWeight, Children: []*Node{sample},
		Detail: []Attr{{"objective", fmt.Sprintf("min cost s.t. join-weighted α=%g β=%g ρ=%g", s.Approx.Alpha, s.Approx.Beta, s.Approx.Rho)}}}
	eval := &Node{
		Op:          OpProbEval,
		Children:    []*Node{solve},
		EstRows:     n,
		EstCost:     float64(n-sampleRows) * s.perRow(p),
		CostIsBound: true,
		Detail:      []Attr{{"strategy", "per-subgroup retrieve/evaluate coins"}},
	}
	return s.merge(eval)
}

// groupResolve builds the group-resolve node for the spec's GroupOn.
func (s Spec) groupResolve(child *Node) *Node {
	n := &Node{Op: OpGroupResolve, Children: []*Node{child}, EstRows: s.Rows}
	switch s.GroupOn {
	case "":
		n.Mode = ModeAuto
		labelRows := s.estLabelRows(s.Rows)
		if s.MemoColumn != "" {
			n.Column = s.MemoColumn
			n.Detail = []Attr{
				{"column", s.MemoColumn + " (catalog memo; re-discovered if stale)"},
			}
			return n
		}
		n.Detail = []Attr{{"column", "discovered at runtime (§4.4 column scan)"}}
		n.EstCost = float64(labelRows) * s.perRow(s.Preds[0])
		n.Detail = append(n.Detail, Attr{"labeling", fmt.Sprintf("≈%d rows", labelRows)})
	case s.VirtualName:
		n.Mode = ModeVirtual
		n.Column = s.VirtualName
		labelRows := s.estLabelRows(s.Rows)
		n.EstCost = float64(labelRows) * s.perRow(s.Preds[0])
		n.Detail = []Attr{
			{"column", "logistic-regression buckets (§6.3.2)"},
			{"labeling", fmt.Sprintf("≈%d rows", labelRows)},
		}
	default:
		n.Mode = ModePinned
		n.Column = s.GroupOn
		n.Detail = []Attr{{"column", s.GroupOn}}
	}
	return n
}

// merge appends the common sort/assemble tail.
func (s Spec) merge(child *Node) *Node {
	return &Node{Op: OpMerge, Children: []*Node{child},
		Detail: []Attr{{"output", "row ids, ascending"}}}
}

func predList(preds []Pred) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}
