// Package plan is the engine's planner layer: the SQL layer's query
// description is lowered into a logical plan (scan → cheap-filter →
// group-resolve → sample → solve → probabilistic-eval → merge, with
// conjunctions and joins as composite nodes), and rewrite rules turn the
// logical plan into a tree of physical operators that the engine executes
// uniformly. Every node is printable, which is what EXPLAIN renders.
//
// The package is deliberately free of engine dependencies: the engine
// lowers its Query into a Spec (adding what only it knows — row counts,
// cost model, per-predicate costs, any catalog-memoized column choice) and
// walks the returned physical tree to run the extracted operators. Keeping
// the shapes here means a new query form is a new rewrite rule plus an
// operator, not a new dispatch branch.
package plan

import (
	"fmt"
	"math"
)

// Op identifies a plan node. Logical ops describe what a query means;
// physical ops name the operator the engine will run.
type Op string

const (
	// Logical ops.
	OpSelect      Op = "select"      // composite: predicates over a scan
	OpConjunction Op = "conjunction" // composite: N expensive predicates ANDed
	OpJoin        Op = "join"        // composite: selection before join

	// Shared logical/physical pipeline stages.
	OpScan         Op = "scan"          // row universe of a table
	OpFilter       Op = "filter"        // cheap typed predicates, pushed first
	OpGroupResolve Op = "group-resolve" // correlated-column grouping
	OpSample       Op = "sample"        // per-group selectivity estimation
	OpSolve        Op = "solve"         // optimizer: strategy from estimates
	OpProbEval     Op = "prob-eval"     // per-tuple retrieve/evaluate coins
	OpMerge        Op = "merge"         // sort row ids, assemble stats

	// Physical-only operators.
	OpExactEval  Op = "exact-eval"  // evaluate the predicate on every row
	OpConjSample Op = "conj-sample" // fused sampling of all N predicates
	OpConjSolve  Op = "conj-solve"  // §5 five-action per-group plan (N=2)
	OpConjExec   Op = "conj-exec"   // execute the five-action plan
	OpConjWaves  Op = "conj-waves"  // short-circuit waves over ordered preds
	OpJoinGroup  Op = "join-group"  // (group, join-multiplicity) subgroups
)

// Group-resolve modes (Node.Mode).
const (
	ModePinned  = "pinned"  // GROUP ON column
	ModeAuto    = "auto"    // §4.4 discovery (memo-accelerated)
	ModeVirtual = "virtual" // §6.3.2 logistic-regression buckets
	// Solve modes.
	ModeConstrained = "constrained" // min cost s.t. α, β, ρ
	ModeBudget      = "budget"      // max recall s.t. α, ρ, cost ≤ B
	ModeJoinWeight  = "join-weight" // join-multiplicity-weighted LP
	// Conj-waves orderings.
	ModeQueryOrder  = "query-order" // predicates as written
	ModeGreedyOrder = "greedy"      // cheapest-first from sampled selectivities
	// ModeTwoPred marks conj-sample/conj-solve nodes of the §5 two-predicate
	// shape: they describe work the fused conj-exec operator performs
	// internally (sampling, planning and execution are one core pipeline
	// there), so the executor skips them.
	ModeTwoPred = "two-pred"
)

// Attr is one display attribute of a node (ordered, for stable EXPLAIN
// output).
type Attr struct {
	Key, Value string
}

// Node is one plan node. Children run before the node itself; a linear
// pipeline is a chain of single-child nodes.
type Node struct {
	Op   Op
	Mode string // operator variant, one of the Mode* constants ("" when unique)
	// Column is the node's principal column (group column, join key), when
	// meaningful.
	Column string
	// Preds carries the expensive predicates a conjunction/eval node owns.
	Preds    []Pred
	Children []*Node
	// EstRows is the planner's row estimate flowing out of the node;
	// EstCost its estimated cost in cost-model units. CostIsBound marks an
	// upper bound (printed "≤") rather than a point estimate ("≈").
	EstRows     int
	EstCost     float64
	CostIsBound bool
	// Detail holds extra display attributes.
	Detail []Attr
	// Actual holds the measured execution counts of the node (EXPLAIN
	// ANALYZE); nil on plain EXPLAIN and on display-only nodes.
	Actual *Actual
}

// Actual is what one physical operator measurably did during execution.
// Every count field is derived from deterministic engine counters and is
// bit-identical at any parallelism setting; ElapsedNS is wall-clock and
// display-only — determinism comparisons must zero it first (ZeroTimings).
type Actual struct {
	// Rows the operator produced (result rows, sampled rows for sampling
	// operators, surviving rows for filters).
	Rows int
	// Groups the operator resolved (grouping operators only).
	Groups int
	// Calls is the delta of charged UDF invocations across the statement's
	// predicates while this operator ran; CacheHits/CacheMisses split the
	// cross-query cache traffic the same way.
	Calls       int
	CacheHits   int
	CacheMisses int
	// Retries, Denied and Failed are the resilience deltas: extra attempts,
	// rows denied by an open circuit breaker, and rows whose invocation
	// ultimately failed.
	Retries int
	Denied  int
	Failed  int
	// ElapsedNS is the operator's wall time (children excluded). Display
	// only: excluded from the determinism contract.
	ElapsedNS int64
}

// ZeroTimings clears every wall-clock field in the tree, leaving only the
// deterministic count fields — the form determinism tests compare.
func ZeroTimings(n *Node) {
	if n == nil {
		return
	}
	if n.Actual != nil {
		n.Actual.ElapsedNS = 0
	}
	for _, c := range n.Children {
		ZeroTimings(c)
	}
}

// Child returns the single child of a pipeline node (nil when the node has
// none).
func (n *Node) Child() *Node {
	if len(n.Children) == 0 {
		return nil
	}
	return n.Children[0]
}

// Find returns the first node (preorder) with the given op, or nil.
func (n *Node) Find(op Op) *Node {
	if n == nil {
		return nil
	}
	if n.Op == op {
		return n
	}
	for _, c := range n.Children {
		if m := c.Find(op); m != nil {
			return m
		}
	}
	return nil
}

// Pred is one expensive predicate udf(arg) = want with its per-invocation
// cost o_e.
type Pred struct {
	UDF  string
	Arg  string
	Want bool
	Cost float64
}

func (p Pred) String() string {
	w := 0
	if p.Want {
		w = 1
	}
	return fmt.Sprintf("%s(%s)=%d", p.UDF, p.Arg, w)
}

// Approx carries the accuracy contract of an approximate query.
type Approx struct {
	Alpha, Beta, Rho float64
}

// Filter is a cheap equality predicate.
type Filter struct {
	Column, Value string
}

// Join describes the selection-before-join extension.
type Join struct {
	Table             string
	Rows              int
	LeftKey, RightKey string
}

// Spec is everything the planner needs to shape a query: the parsed query
// plus engine-known statistics. It is the seam between the engine and this
// package.
type Spec struct {
	Table   string
	Rows    int
	Filters []Filter
	// Preds holds the expensive predicates, first predicate first. At least
	// one is required.
	Preds  []Pred
	Approx *Approx
	Budget float64
	// GroupOn is "" (automatic discovery), the virtual-column marker, or a
	// pinned column name.
	GroupOn string
	// VirtualName is the GroupOn value that requests the virtual column.
	VirtualName string
	// MemoColumn is a catalog-memoized §4.4 choice for this workload (""
	// when unknown); discovery starts there and falls back if stale.
	MemoColumn string
	// Retrieve is o_r; per-predicate o_e lives on each Pred.
	Retrieve float64
	// LabelFraction is the §4.4 labeling fraction (for discovery cost
	// estimates).
	LabelFraction float64
	// SampleNum is the Two-Third-Power allocator's num factor (2.5·α).
	SampleNum float64
	Join      *Join
}

// Validate checks the spec is shapeable.
func (s Spec) Validate() error {
	if s.Table == "" {
		return fmt.Errorf("plan: spec without table")
	}
	if len(s.Preds) == 0 {
		return fmt.Errorf("plan: spec without predicates")
	}
	for _, p := range s.Preds {
		if p.UDF == "" || p.Arg == "" {
			return fmt.Errorf("plan: predicate without UDF or argument")
		}
	}
	if s.Join != nil && len(s.Preds) > 1 {
		return fmt.Errorf("plan: join with a conjunction is not supported")
	}
	return nil
}

// estSampleRows estimates the Two-Third-Power allocation over n rows:
// Fₐ = num·tₐ·n^(−1/3) sums to num·n^(2/3).
func (s Spec) estSampleRows(n int) int {
	if n <= 0 {
		return 0
	}
	est := int(math.Round(s.SampleNum * math.Pow(float64(n), 2.0/3.0)))
	if est > n {
		est = n
	}
	if est < 0 {
		est = 0
	}
	return est
}

// estLabelRows estimates the §4.4 labeling pass size.
func (s Spec) estLabelRows(n int) int {
	frac := s.LabelFraction
	if frac <= 0 {
		frac = 0.01
	}
	est := int(math.Round(frac * float64(n)))
	if est > n {
		est = n
	}
	return est
}

// perRow is o_r + o_e for predicate p.
func (s Spec) perRow(p Pred) float64 { return s.Retrieve + p.Cost }

// sumEval is Σ o_e over the predicates.
func (s Spec) sumEval() float64 {
	total := 0.0
	for _, p := range s.Preds {
		total += p.Cost
	}
	return total
}
