package plan

import (
	"strings"
	"testing"
)

func baseSpec() Spec {
	return Spec{
		Table:         "loans",
		Rows:          3000,
		Preds:         []Pred{{UDF: "good_credit", Arg: "id", Want: true, Cost: 3}},
		Retrieve:      1,
		LabelFraction: 0.01,
		SampleNum:     2.25,
		VirtualName:   "virtual",
	}
}

func mustPhysical(t *testing.T, s Spec) *Node {
	t.Helper()
	n, err := Physical(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func chain(n *Node) []Op {
	var ops []Op
	for ; n != nil; n = n.Child() {
		ops = append(ops, n.Op)
	}
	return ops
}

func opsEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPhysicalShapes(t *testing.T) {
	ap := &Approx{Alpha: 0.9, Beta: 0.9, Rho: 0.9}
	second := Pred{UDF: "rich", Arg: "income", Want: true, Cost: 3}
	third := Pred{UDF: "local", Arg: "state", Want: true, Cost: 3}

	cases := []struct {
		name string
		mut  func(*Spec)
		want []Op
	}{
		{"exact select", func(s *Spec) {}, []Op{OpExactEval, OpScan}},
		{"exact select filtered", func(s *Spec) {
			s.Filters = []Filter{{Column: "purpose", Value: "car"}}
		}, []Op{OpExactEval, OpFilter, OpScan}},
		{"approx pinned", func(s *Spec) {
			s.Approx = ap
			s.GroupOn = "grade"
		}, []Op{OpMerge, OpProbEval, OpSolve, OpSample, OpGroupResolve, OpScan}},
		{"approx discover", func(s *Spec) { s.Approx = ap },
			[]Op{OpMerge, OpProbEval, OpSolve, OpSample, OpGroupResolve, OpScan}},
		{"budget", func(s *Spec) {
			s.Approx = ap
			s.GroupOn = "grade"
			s.Budget = 500
		}, []Op{OpMerge, OpProbEval, OpSolve, OpSample, OpGroupResolve, OpScan}},
		{"exact conjunction", func(s *Spec) {
			s.Preds = append(s.Preds, second, third)
		}, []Op{OpConjWaves, OpScan}},
		{"two-pred approx", func(s *Spec) {
			s.Preds = append(s.Preds, second)
			s.Approx = ap
			s.GroupOn = "grade"
		}, []Op{OpMerge, OpConjExec, OpConjSolve, OpConjSample, OpGroupResolve, OpScan}},
		{"n-ary approx grouped", func(s *Spec) {
			s.Preds = append(s.Preds, second, third)
			s.Approx = ap
			s.GroupOn = "grade"
		}, []Op{OpMerge, OpConjWaves, OpConjSample, OpGroupResolve, OpScan}},
		{"n-ary approx ungrouped", func(s *Spec) {
			s.Preds = append(s.Preds, second, third)
			s.Approx = ap
		}, []Op{OpMerge, OpConjWaves, OpConjSample, OpScan}},
		{"join", func(s *Spec) {
			s.Approx = ap
			s.GroupOn = "grade"
			s.Join = &Join{Table: "orders", Rows: 9000, LeftKey: "id", RightKey: "loan_id"}
		}, []Op{OpMerge, OpProbEval, OpSolve, OpSample, OpJoinGroup, OpGroupResolve, OpScan}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := baseSpec()
			tc.mut(&s)
			got := chain(mustPhysical(t, s))
			if !opsEqual(got, tc.want) {
				t.Fatalf("chain %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPhysicalModes(t *testing.T) {
	ap := &Approx{Alpha: 0.9, Beta: 0.9, Rho: 0.9}
	s := baseSpec()
	s.Approx = ap
	n := mustPhysical(t, s).Find(OpGroupResolve)
	if n == nil || n.Mode != ModeAuto {
		t.Fatalf("discover mode: %+v", n)
	}
	s.MemoColumn = "grade"
	n = mustPhysical(t, s).Find(OpGroupResolve)
	if n.Column != "grade" || n.Mode != ModeAuto {
		t.Fatalf("memo column not surfaced: %+v", n)
	}
	s.MemoColumn = ""
	s.GroupOn = "virtual"
	n = mustPhysical(t, s).Find(OpGroupResolve)
	if n.Mode != ModeVirtual {
		t.Fatalf("virtual mode: %+v", n)
	}
	s.GroupOn = "grade"
	n = mustPhysical(t, s).Find(OpGroupResolve)
	if n.Mode != ModePinned || n.Column != "grade" {
		t.Fatalf("pinned mode: %+v", n)
	}
	s.Budget = 100
	if sv := mustPhysical(t, s).Find(OpSolve); sv.Mode != ModeBudget {
		t.Fatalf("budget solve mode: %+v", sv)
	}
}

func TestLogicalComposites(t *testing.T) {
	s := baseSpec()
	s.Preds = append(s.Preds, Pred{UDF: "rich", Arg: "income", Want: true, Cost: 3})
	l, err := Logical(s)
	if err != nil {
		t.Fatal(err)
	}
	if l.Op != OpConjunction {
		t.Fatalf("root %v, want conjunction", l.Op)
	}
	s.Preds = s.Preds[:1]
	s.Join = &Join{Table: "orders", Rows: 1, LeftKey: "id", RightKey: "loan_id"}
	l, err = Logical(s)
	if err != nil {
		t.Fatal(err)
	}
	if l.Op != OpJoin {
		t.Fatalf("root %v, want join", l.Op)
	}
}

func TestSpecValidate(t *testing.T) {
	s := baseSpec()
	s.Table = ""
	if _, err := Physical(s); err == nil {
		t.Fatal("empty table accepted")
	}
	s = baseSpec()
	s.Preds = nil
	if _, err := Physical(s); err == nil {
		t.Fatal("no predicates accepted")
	}
	s = baseSpec()
	s.Preds = append(s.Preds, Pred{UDF: "rich", Arg: "income"})
	s.Join = &Join{Table: "orders", Rows: 1, LeftKey: "id", RightKey: "loan_id"}
	if _, err := Physical(s); err == nil {
		t.Fatal("join+conjunction accepted")
	}
}

// TestFormatGolden pins the EXPLAIN rendering of an approximate pinned
// query — the format is part of the public surface (predsqld returns it).
func TestFormatGolden(t *testing.T) {
	s := baseSpec()
	s.Approx = &Approx{Alpha: 0.9, Beta: 0.9, Rho: 0.9}
	s.GroupOn = "grade"
	s.Filters = []Filter{{Column: "purpose", Value: "car"}}
	got := Format(mustPhysical(t, s))
	// The golden is asserted line-by-line for readable failures.
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantLines := []string{
		`merge output=«row ids, ascending»`,
		`└─ prob-eval strategy=«per-group retrieve/evaluate coins»  (rows≈3000, cost≤10128)`,
		`   └─ solve[constrained] objective=«min cost s.t. α=0.9 β=0.9 ρ=0.9»`,
		`      └─ sample allocator=«two-third-power num=2.25»  (rows≈468, cost≈1872)`,
		`         └─ group-resolve[pinned] column=grade  (rows≈3000)`,
		`            └─ filter predicates=«purpose = "car"»  (rows≈3000)`,
		`               └─ scan table=loans  (rows≈3000)`,
	}
	if len(lines) != len(wantLines) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(wantLines), got)
	}
	for i := range lines {
		if lines[i] != wantLines[i] {
			t.Errorf("line %d:\n got %q\nwant %q", i, lines[i], wantLines[i])
		}
	}
}
