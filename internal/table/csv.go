package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// ReadCSV loads a table from CSV. The first record is the header. Column
// types are inferred from the data: a column is Int if every non-empty
// value parses as an integer, Float if every non-empty value parses as a
// finite number, else String. Empty cells do not vote during inference and
// load as the column's zero value (0, 0.0 or ""); a column with no
// non-empty cells is String. Callers keying on a numeric column (e.g. a
// simulated-UDF id) should note that an empty cell is indistinguishable
// from a literal 0 after loading. Non-finite spellings ("NaN", "Inf", …)
// are text, not numbers — they would otherwise smuggle NaN/Inf into typed
// filters and grouping. Empty files (no header) are an error.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table: csv %q has no header", name)
	}
	header := records[0]
	body := records[1:]
	types := inferTypes(header, body)
	defs := make([]ColumnDef, len(header))
	for i, h := range header {
		defs[i] = ColumnDef{Name: h, Type: types[i]}
	}
	schema, err := NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	tbl := New(name, schema)
	for rowIdx, rec := range body {
		vals := make([]Value, len(rec))
		for i, cell := range rec {
			switch types[i] {
			case Int:
				if cell == "" {
					vals[i] = int64(0)
					continue
				}
				v, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("table: csv row %d col %q: %w", rowIdx+2, header[i], err)
				}
				vals[i] = v
			case Float:
				if cell == "" {
					vals[i] = float64(0)
					continue
				}
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("table: csv row %d col %q: %w", rowIdx+2, header[i], err)
				}
				vals[i] = v
			default:
				vals[i] = cell
			}
		}
		if err := tbl.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

func inferTypes(header []string, body [][]string) []Type {
	types := make([]Type, len(header))
	for i := range types {
		allInt, allFloat, nonEmpty := true, true, false
		for _, rec := range body {
			if i >= len(rec) {
				continue
			}
			cell := rec[i]
			if cell == "" {
				// A missing value says nothing about the column's type; it
				// must not demote an otherwise-numeric column to String.
				continue
			}
			nonEmpty = true
			if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
				allInt = false
			}
			if f, err := strconv.ParseFloat(cell, 64); err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
				// ParseFloat accepts "NaN"/"Inf" spellings; keep those
				// columns String so typed comparisons stay total.
				allFloat = false
			}
			if !allInt && !allFloat {
				break
			}
		}
		switch {
		case !nonEmpty:
			types[i] = String
		case allInt:
			types[i] = Int
		case allFloat:
			types[i] = Float
		default:
			types[i] = String
		}
	}
	return types
}

// WriteCSV writes the table (header + all rows) to w.
func WriteCSV(tbl *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(tbl.Schema().Names()); err != nil {
		return fmt.Errorf("table: writing csv header: %w", err)
	}
	rec := make([]string, tbl.Schema().Len())
	for i := 0; i < tbl.NumRows(); i++ {
		for j := range rec {
			rec[j] = tbl.CellString(i, j)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: writing csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
