package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV loads a table from CSV. The first record is the header. Column
// types are inferred from the data: a column is Int if every value parses
// as an integer, Float if every value parses as a number, else String.
// Empty files (no header) are an error.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table: csv %q has no header", name)
	}
	header := records[0]
	body := records[1:]
	types := inferTypes(header, body)
	defs := make([]ColumnDef, len(header))
	for i, h := range header {
		defs[i] = ColumnDef{Name: h, Type: types[i]}
	}
	schema, err := NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	tbl := New(name, schema)
	for rowIdx, rec := range body {
		vals := make([]Value, len(rec))
		for i, cell := range rec {
			switch types[i] {
			case Int:
				v, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("table: csv row %d col %q: %w", rowIdx+2, header[i], err)
				}
				vals[i] = v
			case Float:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("table: csv row %d col %q: %w", rowIdx+2, header[i], err)
				}
				vals[i] = v
			default:
				vals[i] = cell
			}
		}
		if err := tbl.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

func inferTypes(header []string, body [][]string) []Type {
	types := make([]Type, len(header))
	for i := range types {
		allInt, allFloat := true, true
		for _, rec := range body {
			if i >= len(rec) {
				continue
			}
			cell := rec[i]
			if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
				allInt = false
			}
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				allFloat = false
			}
			if !allInt && !allFloat {
				break
			}
		}
		switch {
		case len(body) == 0:
			types[i] = String
		case allInt:
			types[i] = Int
		case allFloat:
			types[i] = Float
		default:
			types[i] = String
		}
	}
	return types
}

// WriteCSV writes the table (header + all rows) to w.
func WriteCSV(tbl *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(tbl.Schema().Names()); err != nil {
		return fmt.Errorf("table: writing csv header: %w", err)
	}
	rec := make([]string, tbl.Schema().Len())
	for i := 0; i < tbl.NumRows(); i++ {
		for j := range rec {
			rec[j] = tbl.CellString(i, j)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: writing csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
