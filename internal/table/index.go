package table

import (
	"fmt"
	"sort"
)

// GroupIndex partitions a table's rows by the distinct values of one
// column — the "groups" of Section 2 of the paper. The cost model assumes
// an index on the correlated attribute so examined tuples are reachable at
// constant cost; this is that index.
type GroupIndex struct {
	column string
	keys   []string         // distinct values, sorted for determinism
	rows   map[string][]int // value → row ids (ascending)
}

// BuildGroupIndex indexes tbl on the named column. Any column type works;
// values are keyed by their canonical string rendering.
func BuildGroupIndex(tbl *Table, column string) (*GroupIndex, error) {
	col := tbl.ColumnByName(column)
	if col == nil {
		return nil, fmt.Errorf("table %s: no column %q to index", tbl.Name(), column)
	}
	idx := &GroupIndex{column: column, rows: make(map[string][]int)}
	for i := 0; i < tbl.NumRows(); i++ {
		k := col.StringAt(i)
		idx.rows[k] = append(idx.rows[k], i)
	}
	idx.keys = make([]string, 0, len(idx.rows))
	for k := range idx.rows {
		idx.keys = append(idx.keys, k)
	}
	sort.Strings(idx.keys)
	return idx, nil
}

// Column returns the indexed column name.
func (g *GroupIndex) Column() string { return g.column }

// NumGroups returns the number of distinct values.
func (g *GroupIndex) NumGroups() int { return len(g.keys) }

// Keys returns the distinct values in sorted order. The slice is shared;
// callers must not modify it.
func (g *GroupIndex) Keys() []string { return g.keys }

// Rows returns the row ids holding value key. The slice is shared; callers
// must not modify it.
func (g *GroupIndex) Rows(key string) []int { return g.rows[key] }

// GroupSizes returns the tuple count per group, aligned with Keys().
func (g *GroupIndex) GroupSizes() []int {
	sizes := make([]int, len(g.keys))
	for i, k := range g.keys {
		sizes[i] = len(g.rows[k])
	}
	return sizes
}

// TotalRows returns the number of indexed rows.
func (g *GroupIndex) TotalRows() int {
	total := 0
	for _, k := range g.keys {
		total += len(g.rows[k])
	}
	return total
}
