package table

import (
	"fmt"
	"strconv"
)

// Value is a dynamically typed cell value: int64, float64 or string.
type Value interface{}

// Column is typed columnar storage.
type Column interface {
	// Type reports the column's element type.
	Type() Type
	// Len reports the number of stored values.
	Len() int
	// Value returns the cell at row i as a dynamic value.
	Value(i int) Value
	// StringAt renders the cell at row i.
	StringAt(i int) string
	// append adds a dynamic value; implementations validate the type.
	append(v Value) error
}

// IntColumn stores int64 values.
type IntColumn struct{ data []int64 }

// Type implements Column.
func (c *IntColumn) Type() Type { return Int }

// Len implements Column.
func (c *IntColumn) Len() int { return len(c.data) }

// Value implements Column.
func (c *IntColumn) Value(i int) Value { return c.data[i] }

// At returns the typed value at row i.
func (c *IntColumn) At(i int) int64 { return c.data[i] }

// Data exposes the backing slice for read-only scans.
func (c *IntColumn) Data() []int64 { return c.data }

// StringAt implements Column.
func (c *IntColumn) StringAt(i int) string { return strconv.FormatInt(c.data[i], 10) }

func (c *IntColumn) append(v Value) error {
	switch x := v.(type) {
	case int64:
		c.data = append(c.data, x)
	case int:
		c.data = append(c.data, int64(x))
	default:
		return fmt.Errorf("table: cannot append %T to int column", v)
	}
	return nil
}

// FloatColumn stores float64 values.
type FloatColumn struct{ data []float64 }

// Type implements Column.
func (c *FloatColumn) Type() Type { return Float }

// Len implements Column.
func (c *FloatColumn) Len() int { return len(c.data) }

// Value implements Column.
func (c *FloatColumn) Value(i int) Value { return c.data[i] }

// At returns the typed value at row i.
func (c *FloatColumn) At(i int) float64 { return c.data[i] }

// Data exposes the backing slice for read-only scans.
func (c *FloatColumn) Data() []float64 { return c.data }

// StringAt implements Column.
func (c *FloatColumn) StringAt(i int) string {
	return strconv.FormatFloat(c.data[i], 'g', -1, 64)
}

func (c *FloatColumn) append(v Value) error {
	switch x := v.(type) {
	case float64:
		c.data = append(c.data, x)
	case int64:
		c.data = append(c.data, float64(x))
	case int:
		c.data = append(c.data, float64(x))
	default:
		return fmt.Errorf("table: cannot append %T to float column", v)
	}
	return nil
}

// StringColumn stores string values with lightweight interning so the
// categorical columns that dominate this workload do not duplicate storage.
type StringColumn struct {
	data   []int32
	dict   []string
	lookup map[string]int32
}

// Type implements Column.
func (c *StringColumn) Type() Type { return String }

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.data) }

// Value implements Column.
func (c *StringColumn) Value(i int) Value { return c.dict[c.data[i]] }

// At returns the typed value at row i.
func (c *StringColumn) At(i int) string { return c.dict[c.data[i]] }

// StringAt implements Column.
func (c *StringColumn) StringAt(i int) string { return c.dict[c.data[i]] }

// Cardinality returns the number of distinct values seen.
func (c *StringColumn) Cardinality() int { return len(c.dict) }

// Code returns the dictionary code of the value at row i; codes are dense
// in [0, Cardinality()).
func (c *StringColumn) Code(i int) int { return int(c.data[i]) }

// Dict returns the dictionary (code → string) for read-only use.
func (c *StringColumn) Dict() []string { return c.dict }

// LookupCode resolves a value to its dictionary code, or -1 if the value
// never appears in the column.
func (c *StringColumn) LookupCode(s string) int {
	if code, ok := c.lookup[s]; ok {
		return int(code)
	}
	return -1
}

func (c *StringColumn) append(v Value) error {
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("table: cannot append %T to string column", v)
	}
	if c.lookup == nil {
		c.lookup = make(map[string]int32)
	}
	code, ok := c.lookup[s]
	if !ok {
		code = int32(len(c.dict))
		c.dict = append(c.dict, s)
		c.lookup[s] = code
	}
	c.data = append(c.data, code)
	return nil
}

// newColumn allocates an empty column of the given type.
func newColumn(t Type) Column {
	switch t {
	case Int:
		return &IntColumn{}
	case Float:
		return &FloatColumn{}
	case String:
		return &StringColumn{}
	default:
		panic(fmt.Sprintf("table: unknown column type %d", t))
	}
}
