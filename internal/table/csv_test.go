package table

import (
	"bytes"
	"strings"
	"testing"
)

func mustReadCSV(t *testing.T, csv string) *Table {
	t.Helper()
	tbl, err := ReadCSV("t", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestInferTypesSkipsEmptyCells is the regression test for the inference
// bug: a single empty cell used to demote an otherwise-numeric column to
// String, breaking typed filters and grouping downstream.
func TestInferTypesSkipsEmptyCells(t *testing.T) {
	tbl := mustReadCSV(t, "id,score,name\n1,0.5,a\n,,b\n3,2.25,\n")
	sch := tbl.Schema()
	if got := sch.Col(0).Type; got != Int {
		t.Fatalf("id inferred %v, want Int", got)
	}
	if got := sch.Col(1).Type; got != Float {
		t.Fatalf("score inferred %v, want Float", got)
	}
	if got := sch.Col(2).Type; got != String {
		t.Fatalf("name inferred %v, want String", got)
	}
	// Empty cells load as the column's zero value.
	if v := tbl.Column(0).Value(1); v != int64(0) {
		t.Fatalf("empty int cell loaded %v (%T)", v, v)
	}
	if v := tbl.Column(1).Value(1); v != float64(0) {
		t.Fatalf("empty float cell loaded %v (%T)", v, v)
	}
	if v := tbl.Column(2).Value(2); v != "" {
		t.Fatalf("empty string cell loaded %q", v)
	}
	if v := tbl.Column(0).Value(2); v != int64(3) {
		t.Fatalf("row after empties loaded %v", v)
	}
}

// TestInferTypesRejectsNonFinite: "NaN"/"Inf" spellings parse as floats but
// must infer as String — they are text, and letting them through smuggles
// non-finite values into typed filters and grouping.
func TestInferTypesRejectsNonFinite(t *testing.T) {
	tbl := mustReadCSV(t, "a,b,c,d\n1.5,NaN,Inf,-Infinity\n2.5,2.0,3.0,4.0\n")
	sch := tbl.Schema()
	if got := sch.Col(0).Type; got != Float {
		t.Fatalf("finite column inferred %v, want Float", got)
	}
	for i := 1; i < 4; i++ {
		if got := sch.Col(i).Type; got != String {
			t.Fatalf("col %q inferred %v, want String", sch.Col(i).Name, got)
		}
	}
}

func TestInferTypesAllEmptyColumn(t *testing.T) {
	tbl := mustReadCSV(t, "id,blank\n1,\n2,\n")
	if got := tbl.Schema().Col(1).Type; got != String {
		t.Fatalf("all-empty column inferred %v, want String", got)
	}
}

func TestCSVRoundTripTypedValues(t *testing.T) {
	src := "id,grade,score\n1,A,0.5\n2,B,1.25\n3,A,-3\n"
	tbl := mustReadCSV(t, src)
	var buf bytes.Buffer
	if err := WriteCSV(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	back := mustReadCSV(t, buf.String())
	if back.NumRows() != tbl.NumRows() || back.Schema().Len() != tbl.Schema().Len() {
		t.Fatalf("round trip shape %dx%d, want %dx%d",
			back.NumRows(), back.Schema().Len(), tbl.NumRows(), tbl.Schema().Len())
	}
	for i := 0; i < tbl.NumRows(); i++ {
		for j := 0; j < tbl.Schema().Len(); j++ {
			if got, want := back.CellString(i, j), tbl.CellString(i, j); got != want {
				t.Fatalf("cell (%d,%d) %q, want %q", i, j, got, want)
			}
			if got, want := back.Column(j).Value(i), tbl.Column(j).Value(i); got != want {
				t.Fatalf("value (%d,%d) %v, want %v", i, j, got, want)
			}
		}
	}
	// Types survive the round trip too.
	for j := 0; j < tbl.Schema().Len(); j++ {
		if got, want := back.Schema().Col(j).Type, tbl.Schema().Col(j).Type; got != want {
			t.Fatalf("col %d type %v, want %v", j, got, want)
		}
	}
}

func TestCSVRoundTripWithEmptyCells(t *testing.T) {
	// Empty numeric cells load as zero, render as "0", and stay numeric on
	// the second pass — a stable fixed point.
	tbl := mustReadCSV(t, "id,score\n1,0.5\n,\n3,1.5\n")
	var buf bytes.Buffer
	if err := WriteCSV(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	back := mustReadCSV(t, buf.String())
	if got := back.Schema().Col(0).Type; got != Int {
		t.Fatalf("id re-inferred %v, want Int", got)
	}
	if v := back.Column(0).Value(1); v != int64(0) {
		t.Fatalf("empty id round-tripped to %v", v)
	}
}
