package table

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	s := MustSchema(
		ColumnDef{Name: "id", Type: Int},
		ColumnDef{Name: "grade", Type: String},
		ColumnDef{Name: "income", Type: Float},
	)
	tbl := New("loans", s)
	rows := []struct {
		id     int64
		grade  string
		income float64
	}{
		{1, "A", 90000.5}, {2, "A", 85000}, {3, "B", 60000},
		{4, "C", 30000}, {5, "B", 55000}, {6, "A", 120000},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.id, r.grade, r.income); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestSchemaBasics(t *testing.T) {
	s := MustSchema(ColumnDef{Name: "a", Type: Int}, ColumnDef{Name: "b", Type: String})
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
	if s.Lookup("b") != 1 || s.Lookup("missing") != -1 {
		t.Fatal("Lookup misbehaves")
	}
	if got := s.String(); got != "a:int, b:string" {
		t.Fatalf("schema string %q", got)
	}
	if names := s.Names(); names[0] != "a" || names[1] != "b" {
		t.Fatalf("names %v", names)
	}
}

func TestSchemaRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewSchema(ColumnDef{Name: "x", Type: Int}, ColumnDef{Name: "x", Type: Int}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewSchema(ColumnDef{Name: "", Type: Int}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestAppendAndRead(t *testing.T) {
	tbl := sampleTable(t)
	if tbl.NumRows() != 6 {
		t.Fatalf("rows %d", tbl.NumRows())
	}
	ic, err := tbl.IntColumn("id")
	if err != nil {
		t.Fatal(err)
	}
	if ic.At(2) != 3 {
		t.Fatalf("id[2] = %d", ic.At(2))
	}
	sc, err := tbl.StringColumn("grade")
	if err != nil {
		t.Fatal(err)
	}
	if sc.At(3) != "C" {
		t.Fatalf("grade[3] = %s", sc.At(3))
	}
	if sc.Cardinality() != 3 {
		t.Fatalf("cardinality %d", sc.Cardinality())
	}
	fc, err := tbl.FloatColumn("income")
	if err != nil {
		t.Fatal(err)
	}
	if fc.At(5) != 120000 {
		t.Fatalf("income[5] = %v", fc.At(5))
	}
	row := tbl.Row(0)
	if row[0].(int64) != 1 || row[1].(string) != "A" || row[2].(float64) != 90000.5 {
		t.Fatalf("row %v", row)
	}
}

func TestAppendTypeErrors(t *testing.T) {
	s := MustSchema(ColumnDef{Name: "a", Type: Int}, ColumnDef{Name: "b", Type: Float})
	tbl := New("t", s)
	if err := tbl.AppendRow("oops", 1.0); err == nil {
		t.Fatal("string into int column accepted")
	}
	if tbl.NumRows() != 0 {
		t.Fatal("failed append should not change row count")
	}
	// Second column failure must roll back the first column's append.
	if err := tbl.AppendRow(int64(1), "oops"); err == nil {
		t.Fatal("string into float column accepted")
	}
	if err := tbl.AppendRow(int64(1), 2.0); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 1 {
		t.Fatalf("rows %d", tbl.NumRows())
	}
	ic, _ := tbl.IntColumn("a")
	if ic.Len() != 1 {
		t.Fatalf("int column misaligned: len %d", ic.Len())
	}
}

func TestAppendArityError(t *testing.T) {
	tbl := sampleTable(t)
	if err := tbl.AppendRow(int64(9)); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestIntCoercionIntoFloat(t *testing.T) {
	s := MustSchema(ColumnDef{Name: "x", Type: Float})
	tbl := New("t", s)
	if err := tbl.AppendRow(7); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(int64(8)); err != nil {
		t.Fatal(err)
	}
	fc, _ := tbl.FloatColumn("x")
	if fc.At(0) != 7 || fc.At(1) != 8 {
		t.Fatalf("coercion failed: %v", fc.Data())
	}
}

func TestColumnTypeMismatchAccessors(t *testing.T) {
	tbl := sampleTable(t)
	if _, err := tbl.IntColumn("grade"); err == nil {
		t.Fatal("IntColumn on string column should error")
	}
	if _, err := tbl.FloatColumn("id"); err == nil {
		t.Fatal("FloatColumn on int column should error")
	}
	if _, err := tbl.StringColumn("income"); err == nil {
		t.Fatal("StringColumn on float column should error")
	}
	if _, err := tbl.IntColumn("nope"); err == nil {
		t.Fatal("missing column should error")
	}
}

func TestStringColumnInterning(t *testing.T) {
	s := MustSchema(ColumnDef{Name: "g", Type: String})
	tbl := New("t", s)
	for i := 0; i < 100; i++ {
		val := "even"
		if i%2 == 1 {
			val = "odd"
		}
		if err := tbl.AppendRow(val); err != nil {
			t.Fatal(err)
		}
	}
	sc, _ := tbl.StringColumn("g")
	if sc.Cardinality() != 2 {
		t.Fatalf("cardinality %d", sc.Cardinality())
	}
	if sc.Code(0) != sc.Code(2) || sc.Code(0) == sc.Code(1) {
		t.Fatal("dictionary codes inconsistent")
	}
	if len(sc.Dict()) != 2 {
		t.Fatalf("dict %v", sc.Dict())
	}
}

func TestGroupIndex(t *testing.T) {
	tbl := sampleTable(t)
	idx, err := BuildGroupIndex(tbl, "grade")
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumGroups() != 3 {
		t.Fatalf("groups %d", idx.NumGroups())
	}
	if got := idx.Keys(); got[0] != "A" || got[1] != "B" || got[2] != "C" {
		t.Fatalf("keys %v", got)
	}
	if rows := idx.Rows("A"); len(rows) != 3 {
		t.Fatalf("A rows %v", rows)
	}
	if rows := idx.Rows("C"); len(rows) != 1 || rows[0] != 3 {
		t.Fatalf("C rows %v", rows)
	}
	if idx.TotalRows() != 6 {
		t.Fatalf("total %d", idx.TotalRows())
	}
	sizes := idx.GroupSizes()
	if sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("sizes %v", sizes)
	}
	if idx.Column() != "grade" {
		t.Fatalf("column %s", idx.Column())
	}
}

func TestGroupIndexIntColumn(t *testing.T) {
	s := MustSchema(ColumnDef{Name: "bucket", Type: Int})
	tbl := New("t", s)
	for i := 0; i < 10; i++ {
		if err := tbl.AppendRow(int64(i % 3)); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := BuildGroupIndex(tbl, "bucket")
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumGroups() != 3 {
		t.Fatalf("groups %d", idx.NumGroups())
	}
	if idx.TotalRows() != 10 {
		t.Fatalf("total %d", idx.TotalRows())
	}
}

func TestGroupIndexMissingColumn(t *testing.T) {
	tbl := sampleTable(t)
	if _, err := BuildGroupIndex(tbl, "nope"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestGroupIndexPartition(t *testing.T) {
	// Property: groups partition the row ids exactly.
	f := func(codes []uint8) bool {
		s := MustSchema(ColumnDef{Name: "g", Type: Int})
		tbl := New("t", s)
		for _, c := range codes {
			if err := tbl.AppendRow(int64(c % 7)); err != nil {
				return false
			}
		}
		idx, err := BuildGroupIndex(tbl, "g")
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, k := range idx.Keys() {
			for _, r := range idx.Rows(k) {
				if seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return len(seen) == len(codes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := sampleTable(t)
	var buf strings.Builder
	if err := WriteCSV(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("loans", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tbl.NumRows() {
		t.Fatalf("rows %d want %d", got.NumRows(), tbl.NumRows())
	}
	for i := 0; i < tbl.NumRows(); i++ {
		for j := 0; j < tbl.Schema().Len(); j++ {
			if got.CellString(i, j) != tbl.CellString(i, j) {
				t.Fatalf("cell (%d,%d): %q vs %q", i, j, got.CellString(i, j), tbl.CellString(i, j))
			}
		}
	}
	// Types should be inferred back.
	if got.Schema().Col(0).Type != Int || got.Schema().Col(1).Type != String || got.Schema().Col(2).Type != Float {
		t.Fatalf("inferred schema %s", got.Schema())
	}
}

func TestCSVTypeInference(t *testing.T) {
	in := "a,b,c\n1,1.5,x\n2,2,y\n"
	tbl, err := ReadCSV("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema().Col(0).Type != Int {
		t.Fatal("col a should be int")
	}
	if tbl.Schema().Col(1).Type != Float {
		t.Fatal("col b should be float")
	}
	if tbl.Schema().Col(2).Type != String {
		t.Fatal("col c should be string")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Fatal("empty csv accepted")
	}
	// Ragged rows are rejected by encoding/csv.
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("ragged csv accepted")
	}
}

func TestCSVHeaderOnly(t *testing.T) {
	tbl, err := ReadCSV("t", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 {
		t.Fatalf("rows %d", tbl.NumRows())
	}
	if tbl.Schema().Col(0).Type != String {
		t.Fatal("empty body should default to string columns")
	}
}

func TestTypeString(t *testing.T) {
	if Int.String() != "int" || Float.String() != "float" || String.String() != "string" {
		t.Fatal("type strings wrong")
	}
	if Type(9).String() != "invalid" {
		t.Fatal("invalid type string wrong")
	}
}

func TestGroupKeyAndCellString(t *testing.T) {
	tbl := sampleTable(t)
	if tbl.GroupKey(0, 1) != "A" {
		t.Fatalf("group key %s", tbl.GroupKey(0, 1))
	}
	if tbl.CellString(0, 0) != "1" {
		t.Fatalf("cell string %s", tbl.CellString(0, 0))
	}
}
