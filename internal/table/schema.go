// Package table implements the small in-memory column store the query
// engine and the experiment harness run against: typed schemas, columnar
// storage for int/float/string attributes, a value (group) index over
// categorical columns, and CSV import/export.
//
// The paper's algorithms never mutate base data; tables here are
// append-only and safe for concurrent reads once loaded.
package table

import (
	"fmt"
	"strings"
)

// Type enumerates supported column types.
type Type uint8

const (
	// Int is a 64-bit integer column.
	Int Type = iota
	// Float is a 64-bit floating point column.
	Float
	// String is a string column (categorical attributes live here or in Int).
	String
)

func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	default:
		return "invalid"
	}
}

// ColumnDef names and types one column.
type ColumnDef struct {
	Name string
	Type Type
}

// Schema is an ordered list of column definitions with unique names.
type Schema struct {
	cols  []ColumnDef
	index map[string]int
}

// NewSchema builds a schema from defs. Duplicate or empty names are
// rejected.
func NewSchema(defs ...ColumnDef) (*Schema, error) {
	s := &Schema{cols: append([]ColumnDef(nil), defs...), index: make(map[string]int, len(defs))}
	for i, d := range defs {
		if d.Name == "" {
			return nil, fmt.Errorf("table: column %d has empty name", i)
		}
		if _, dup := s.index[d.Name]; dup {
			return nil, fmt.Errorf("table: duplicate column %q", d.Name)
		}
		s.index[d.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(defs ...ColumnDef) *Schema {
	s, err := NewSchema(defs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the definition at position i.
func (s *Schema) Col(i int) ColumnDef { return s.cols[i] }

// Lookup returns the position of the named column, or -1.
func (s *Schema) Lookup(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name
	}
	return names
}

// String renders the schema as "name:type, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = c.Name + ":" + c.Type.String()
	}
	return strings.Join(parts, ", ")
}
