package table

import (
	"fmt"
)

// Table is an append-only columnar relation.
type Table struct {
	name   string
	schema *Schema
	cols   []Column
	rows   int
}

// New creates an empty table with the given name and schema.
func New(name string, schema *Schema) *Table {
	cols := make([]Column, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		cols[i] = newColumn(schema.Col(i).Type)
	}
	return &Table{name: name, schema: schema, cols: cols}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.rows }

// AppendRow appends one row; vals must match the schema's arity and types
// (ints coerce into float columns).
func (t *Table) AppendRow(vals ...Value) error {
	if len(vals) != t.schema.Len() {
		return fmt.Errorf("table %s: row arity %d, schema arity %d", t.name, len(vals), t.schema.Len())
	}
	for i, v := range vals {
		if err := t.cols[i].append(v); err != nil {
			// Roll back the partial row so columns stay aligned.
			for j := 0; j < i; j++ {
				t.truncateColumn(j)
			}
			return fmt.Errorf("table %s column %s: %w", t.name, t.schema.Col(i).Name, err)
		}
	}
	t.rows++
	return nil
}

func (t *Table) truncateColumn(j int) {
	switch c := t.cols[j].(type) {
	case *IntColumn:
		c.data = c.data[:len(c.data)-1]
	case *FloatColumn:
		c.data = c.data[:len(c.data)-1]
	case *StringColumn:
		c.data = c.data[:len(c.data)-1]
	}
}

// Column returns the column at position i.
func (t *Table) Column(i int) Column { return t.cols[i] }

// ColumnByName returns the named column, or nil if absent.
func (t *Table) ColumnByName(name string) Column {
	i := t.schema.Lookup(name)
	if i < 0 {
		return nil
	}
	return t.cols[i]
}

// IntColumn returns the named column as *IntColumn, or an error.
func (t *Table) IntColumn(name string) (*IntColumn, error) {
	c := t.ColumnByName(name)
	if c == nil {
		return nil, fmt.Errorf("table %s: no column %q", t.name, name)
	}
	ic, ok := c.(*IntColumn)
	if !ok {
		return nil, fmt.Errorf("table %s: column %q is %s, not int", t.name, name, c.Type())
	}
	return ic, nil
}

// FloatColumn returns the named column as *FloatColumn, or an error.
func (t *Table) FloatColumn(name string) (*FloatColumn, error) {
	c := t.ColumnByName(name)
	if c == nil {
		return nil, fmt.Errorf("table %s: no column %q", t.name, name)
	}
	fc, ok := c.(*FloatColumn)
	if !ok {
		return nil, fmt.Errorf("table %s: column %q is %s, not float", t.name, name, c.Type())
	}
	return fc, nil
}

// StringColumn returns the named column as *StringColumn, or an error.
func (t *Table) StringColumn(name string) (*StringColumn, error) {
	c := t.ColumnByName(name)
	if c == nil {
		return nil, fmt.Errorf("table %s: no column %q", t.name, name)
	}
	sc, ok := c.(*StringColumn)
	if !ok {
		return nil, fmt.Errorf("table %s: column %q is %s, not string", t.name, name, c.Type())
	}
	return sc, nil
}

// Row materializes row i as dynamic values (for display and small results).
func (t *Table) Row(i int) []Value {
	row := make([]Value, len(t.cols))
	for j, c := range t.cols {
		row[j] = c.Value(i)
	}
	return row
}

// CellString renders cell (row, col) as a string.
func (t *Table) CellString(row, col int) string { return t.cols[col].StringAt(row) }

// GroupKey renders the value of column col at row i as a canonical string
// key, usable for grouping across column types.
func (t *Table) GroupKey(row, col int) string { return t.cols[col].StringAt(row) }
