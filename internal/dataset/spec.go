// Package dataset generates the synthetic stand-ins for the paper's four
// evaluation datasets. The real data (LendingClub and Prosper loan dumps,
// the UCI Bank Marketing and Census/Adult sets) is not redistributable, so
// each generator is calibrated to every statistic the paper publishes:
// total tuple count and overall predicate selectivity (Table 2), and the
// group count, group-size standard deviation, group-selectivity standard
// deviation and size–selectivity Pearson correlation of the designated
// correlated column (Table 3 / Appendix 10.8). The paper's algorithms
// observe the data only through group sizes, column values and UDF
// outcomes, so matching these marginals reproduces the cost/accuracy
// trade-offs the paper measures.
package dataset

import "fmt"

// Spec describes one dataset to synthesize.
type Spec struct {
	// Name identifies the dataset ("lc", "prosper", "census", "marketing").
	Name string
	// N is the number of tuples.
	N int
	// Groups is the number of distinct values of the correlated column.
	Groups int
	// Selectivity is the overall fraction of tuples satisfying the UDF.
	Selectivity float64
	// SizeDev is the sample standard deviation of group sizes.
	SizeDev float64
	// SelDev is the sample standard deviation of group selectivities.
	SelDev float64
	// SizeSelCorr is the Pearson correlation between group size and group
	// selectivity.
	SizeSelCorr float64
	// Predictor names the correlated column.
	Predictor string
	// ExtraPredictors adds noisy copies of the correlated column at
	// increasing noise levels (used by the §6.2.1 column-robustness study).
	ExtraPredictors int
	// MinGroupSize floors the group sizes during calibration (default 30).
	MinGroupSize int
}

// Validate checks the spec is generatable.
func (s Spec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("dataset %s: N=%d", s.Name, s.N)
	}
	if s.Groups < 2 || s.Groups > s.N {
		return fmt.Errorf("dataset %s: %d groups for %d tuples", s.Name, s.Groups, s.N)
	}
	if s.Selectivity <= 0 || s.Selectivity >= 1 {
		return fmt.Errorf("dataset %s: selectivity %v", s.Name, s.Selectivity)
	}
	if s.SizeDev < 0 || s.SelDev < 0 {
		return fmt.Errorf("dataset %s: negative deviation", s.Name)
	}
	if s.SizeSelCorr < -1 || s.SizeSelCorr > 1 {
		return fmt.Errorf("dataset %s: correlation %v", s.Name, s.SizeSelCorr)
	}
	return nil
}

// Scaled returns a spec for a dataset shrunk (or grown) by factor while
// preserving all distributional statistics; SizeDev scales with the mean
// group size. Used to keep unit tests and micro-benchmarks fast.
func (s Spec) Scaled(factor float64) Spec {
	out := s
	out.N = int(float64(s.N) * factor)
	out.SizeDev = s.SizeDev * factor
	if out.N < s.Groups*10 {
		out.N = s.Groups * 10
		out.SizeDev = s.SizeDev * float64(out.N) / float64(s.N)
	}
	return out
}

// The four evaluation datasets, calibrated to Tables 2 and 3 of the paper.
var (
	// LendingClub: ~53k loans, selectivity 0.72 ("Fully Paid"), predictor
	// Grade with 7 values, size dev 5233, sel dev 0.13, correlation 0.84.
	LendingClub = Spec{
		Name: "lc", N: 53000, Groups: 7, Selectivity: 0.72,
		SizeDev: 5233, SelDev: 0.13, SizeSelCorr: 0.84,
		Predictor: "grade", ExtraPredictors: 35,
	}
	// Prosper: ~30k loans, selectivity 0.45, predictor Grade with 8 values,
	// size dev 1521, sel dev 0.20, correlation 0.20.
	Prosper = Spec{
		Name: "prosper", N: 30000, Groups: 8, Selectivity: 0.45,
		SizeDev: 1521, SelDev: 0.20, SizeSelCorr: 0.20,
		Predictor: "grade",
	}
	// Census: ~45k people, selectivity 0.24 (income > 50k), predictor
	// Marital Status with 7 values, size dev 8183, sel dev 0.15,
	// correlation 0.36.
	Census = Spec{
		Name: "census", N: 45000, Groups: 7, Selectivity: 0.24,
		SizeDev: 8183, SelDev: 0.15, SizeSelCorr: 0.36,
		Predictor: "marital_status",
	}
	// Marketing: ~41k phone-campaign contacts, selectivity 0.11
	// (subscribed), predictor Employment Variation Rate with 10 values,
	// size dev 5070, sel dev 0.20, correlation −0.65.
	Marketing = Spec{
		Name: "marketing", N: 41000, Groups: 10, Selectivity: 0.11,
		SizeDev: 5070, SelDev: 0.20, SizeSelCorr: -0.65,
		Predictor: "emp_var_rate",
	}
)

// All returns the four paper datasets in presentation order.
func All() []Spec { return []Spec{LendingClub, Prosper, Census, Marketing} }

// ByName looks a spec up by its Name field.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}
