package dataset

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/table"
)

// Dataset is a generated relation plus its hidden ground truth. The label
// is deliberately NOT a table column: algorithms may only learn it through
// UDF evaluations, mirroring the paper's protocol ("the value of the UDF is
// known precisely to us for the purposes of evaluation, but assumed to be
// unknown to any of the query evaluation algorithms").
type Dataset struct {
	Spec  Spec
	Table *table.Table
	// Labels holds the hidden UDF outcome per row.
	Labels []bool
	// GroupSizes / GroupSelectivities echo the calibration actually used.
	GroupSizes         []int
	GroupSelectivities []float64
	totalCorrect       int
}

// Generate synthesizes a dataset from the spec, deterministically for a
// given seed.
func Generate(spec Spec, seed uint64) (*Dataset, error) {
	cal, err := Calibrate(spec)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed ^ hashName(spec.Name))

	defs := []table.ColumnDef{
		{Name: "id", Type: table.Int},
		{Name: spec.Predictor, Type: table.String},
		{Name: "score_strong", Type: table.Float},
		{Name: "score_weak", Type: table.Float},
		{Name: "group_score", Type: table.Float},
		{Name: "noise", Type: table.Float},
		{Name: "coarse_" + spec.Predictor, Type: table.String},
	}
	for j := 0; j < spec.ExtraPredictors; j++ {
		defs = append(defs, table.ColumnDef{Name: fmt.Sprintf("pred_%02d", j), Type: table.String})
	}
	schema, err := table.NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	tbl := table.New(spec.Name, schema)

	d := &Dataset{
		Spec:               spec,
		Table:              tbl,
		GroupSizes:         cal.Sizes,
		GroupSelectivities: cal.Selectivities,
	}

	// Assemble rows: per group, exactly cal.Correct[g] correct tuples, in a
	// shuffled global order so row id carries no signal.
	type protoRow struct {
		group int
		label bool
	}
	rows := make([]protoRow, 0, spec.N)
	for g, size := range cal.Sizes {
		for i := 0; i < size; i++ {
			rows = append(rows, protoRow{group: g, label: i < cal.Correct[g]})
		}
	}
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })

	d.Labels = make([]bool, len(rows))
	for id, pr := range rows {
		d.Labels[id] = pr.label
		if pr.label {
			d.totalCorrect++
		}
		lab := 0.0
		if pr.label {
			lab = 1
		}
		// Per-row feature strength is calibrated against the paper's
		// experience: its real features (income, loan purpose, …) predict
		// the UDF far from perfectly, so the ML baselines need large
		// labeled sets before they satisfy the constraints. Noise levels
		// of 2.0σ/3.5σ around the 0/1 label reproduce that regime.
		vals := []table.Value{
			int64(id),
			groupName(spec, pr.group),
			lab + rng.NormFloat64()*2.0, // moderately label-informative
			lab + rng.NormFloat64()*3.5, // weakly label-informative
			cal.Selectivities[pr.group] + rng.NormFloat64()*0.05, // group-level score
			rng.NormFloat64(),           // pure noise
			groupName(spec, pr.group/2), // coarsened predictor
		}
		for j := 0; j < spec.ExtraPredictors; j++ {
			// Noise grows across the extra predictors: pred_00 is nearly
			// the true column, the last is nearly random.
			noise := float64(j+1) / float64(spec.ExtraPredictors+1)
			g := pr.group
			if rng.Bernoulli(noise) {
				g = rng.IntN(spec.Groups)
			}
			vals = append(vals, groupName(spec, g))
		}
		if err := tbl.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func groupName(spec Spec, g int) string {
	// Loan grades read as letters; other predictors as coded values.
	if spec.Predictor == "grade" {
		return string(rune('A' + g))
	}
	return fmt.Sprintf("v%02d", g)
}

func hashName(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Truth returns the uncharged ground-truth predicate.
func (d *Dataset) Truth() func(row int) bool {
	labels := d.Labels
	return func(row int) bool { return labels[row] }
}

// UDF returns the simulated expensive predicate: it reveals the hidden
// label. Wrap it in core.NewMeter to charge and count invocations.
func (d *Dataset) UDF() core.UDF {
	labels := d.Labels
	return core.UDFFunc(func(row int) bool { return labels[row] })
}

// TotalCorrect returns |C|, the number of tuples satisfying the predicate.
func (d *Dataset) TotalCorrect() int { return d.totalCorrect }

// Groups partitions the rows by the named column.
func (d *Dataset) Groups(column string) ([]core.Group, error) {
	idx, err := table.BuildGroupIndex(d.Table, column)
	if err != nil {
		return nil, err
	}
	groups := make([]core.Group, 0, idx.NumGroups())
	for _, key := range idx.Keys() {
		groups = append(groups, core.Group{Key: key, Rows: idx.Rows(key)})
	}
	return groups, nil
}

// PredictorGroups partitions by the designated correlated column.
func (d *Dataset) PredictorGroups() ([]core.Group, error) {
	return d.Groups(d.Spec.Predictor)
}

// Instance assembles a core.Instance over the designated predictor with
// the given constraints and cost model. The UDF is a fresh meter so each
// instance accounts its own calls.
func (d *Dataset) Instance(cons core.Constraints, cost core.CostModel) (core.Instance, error) {
	groups, err := d.PredictorGroups()
	if err != nil {
		return core.Instance{}, err
	}
	return core.Instance{
		Groups: groups,
		UDF:    core.NewMeter(d.UDF()),
		Cons:   cons,
		Cost:   cost,
	}, nil
}

// MeasuredStats reports the realized group statistics (what Table 3 shows):
// group count, sample deviation of sizes, sample deviation of
// selectivities, and the size–selectivity Pearson correlation.
func (d *Dataset) MeasuredStats() (groups int, sizeDev, selDev, corr float64) {
	sizes := make([]float64, len(d.GroupSizes))
	sels := make([]float64, len(d.GroupSelectivities))
	for i := range sizes {
		sizes[i] = float64(d.GroupSizes[i])
		sels[i] = d.GroupSelectivities[i]
	}
	return len(sizes), stats.SampleStdDev(sizes), stats.SampleStdDev(sels),
		stats.PearsonCorrelation(sizes, sels)
}

// OverallSelectivity returns the realized fraction of correct tuples.
func (d *Dataset) OverallSelectivity() float64 {
	if len(d.Labels) == 0 {
		return 0
	}
	return float64(d.totalCorrect) / float64(len(d.Labels))
}

// RealizedGroupStats recomputes sizes and exact selectivities from the
// stored labels and the predictor column (a consistency check: they must
// match the calibration up to count rounding).
func (d *Dataset) RealizedGroupStats() (sizes []int, sels []float64, err error) {
	groups, err := d.PredictorGroups()
	if err != nil {
		return nil, nil, err
	}
	sizes = make([]int, len(groups))
	sels = make([]float64, len(groups))
	for i, g := range groups {
		correct := 0
		for _, row := range g.Rows {
			if d.Labels[row] {
				correct++
			}
		}
		sizes[i] = len(g.Rows)
		if len(g.Rows) > 0 {
			sels[i] = float64(correct) / float64(len(g.Rows))
		}
	}
	return sizes, sels, nil
}
