package dataset

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestCalibrateMatchesPublishedStats(t *testing.T) {
	for _, spec := range All() {
		cal, err := Calibrate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		sizes := make([]float64, len(cal.Sizes))
		total := 0
		for i, s := range cal.Sizes {
			if s <= 0 {
				t.Fatalf("%s: non-positive group size %d", spec.Name, s)
			}
			sizes[i] = float64(s)
			total += s
		}
		if total != spec.N {
			t.Fatalf("%s: sizes sum to %d, want %d", spec.Name, total, spec.N)
		}
		if got := stats.SampleStdDev(sizes); math.Abs(got-spec.SizeDev) > 0.02*spec.SizeDev {
			t.Fatalf("%s: size dev %v, want %v", spec.Name, got, spec.SizeDev)
		}
		if got := stats.SampleStdDev(cal.Selectivities); math.Abs(got-spec.SelDev) > 0.02 {
			t.Fatalf("%s: sel dev %v, want %v", spec.Name, got, spec.SelDev)
		}
		if got := stats.PearsonCorrelation(sizes, cal.Selectivities); math.Abs(got-spec.SizeSelCorr) > 0.05 {
			t.Fatalf("%s: corr %v, want %v", spec.Name, got, spec.SizeSelCorr)
		}
		if got := stats.WeightedMean(cal.Selectivities, sizes); math.Abs(got-spec.Selectivity) > 0.01 {
			t.Fatalf("%s: overall selectivity %v, want %v", spec.Name, got, spec.Selectivity)
		}
		for i, s := range cal.Selectivities {
			if s < 0 || s > 1 {
				t.Fatalf("%s: selectivity[%d] = %v", spec.Name, i, s)
			}
			if cal.Correct[i] < 0 || cal.Correct[i] > cal.Sizes[i] {
				t.Fatalf("%s: correct[%d] = %d of %d", spec.Name, i, cal.Correct[i], cal.Sizes[i])
			}
		}
	}
}

func TestCalibrateInvalidSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "x", N: 0, Groups: 2, Selectivity: 0.5},
		{Name: "x", N: 100, Groups: 1, Selectivity: 0.5},
		{Name: "x", N: 100, Groups: 5, Selectivity: 0},
		{Name: "x", N: 100, Groups: 5, Selectivity: 0.5, SizeSelCorr: 2},
		{Name: "x", N: 100, Groups: 5, Selectivity: 0.5, SizeDev: -1},
	}
	for i, spec := range bad {
		if _, err := Calibrate(spec); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestGenerateSmallScale(t *testing.T) {
	spec := LendingClub.Scaled(0.05) // ~2650 rows, fast
	d, err := Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Table.NumRows() != spec.N {
		t.Fatalf("rows %d, want %d", d.Table.NumRows(), spec.N)
	}
	if len(d.Labels) != spec.N {
		t.Fatalf("labels %d", len(d.Labels))
	}
	// Overall selectivity close to spec.
	if got := d.OverallSelectivity(); math.Abs(got-spec.Selectivity) > 0.02 {
		t.Fatalf("overall selectivity %v, want %v", got, spec.Selectivity)
	}
	// Realized group stats must match the calibration exactly (counts are
	// deterministic).
	sizes, sels, err := d.RealizedGroupStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != spec.Groups {
		t.Fatalf("%d realized groups", len(sizes))
	}
	for i := range sels {
		if sels[i] < 0 || sels[i] > 1 {
			t.Fatalf("realized selectivity %v", sels[i])
		}
	}
	// The extra predictors exist with the requested cardinalities.
	if spec.ExtraPredictors > 0 {
		col, err := d.Table.StringColumn("pred_00")
		if err != nil {
			t.Fatal(err)
		}
		if col.Cardinality() > spec.Groups {
			t.Fatalf("pred_00 cardinality %d", col.Cardinality())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Prosper.Scaled(0.03)
	a, err := Generate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ across identical seeds")
		}
	}
	c, err := Generate(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Labels {
		if a.Labels[i] == c.Labels[i] {
			same++
		}
	}
	if same == len(a.Labels) {
		t.Fatal("different seeds produced identical labels")
	}
}

func TestDatasetGroupsPartition(t *testing.T) {
	spec := Census.Scaled(0.05)
	d, err := Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := d.PredictorGroups()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != spec.Groups {
		t.Fatalf("groups %d, want %d", len(groups), spec.Groups)
	}
	seen := make([]bool, spec.N)
	for _, g := range groups {
		for _, row := range g.Rows {
			if seen[row] {
				t.Fatalf("row %d in two groups", row)
			}
			seen[row] = true
		}
	}
	for row, ok := range seen {
		if !ok {
			t.Fatalf("row %d missing from groups", row)
		}
	}
	if _, err := d.Groups("no_such_column"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestDatasetInstanceRuns(t *testing.T) {
	spec := Marketing.Scaled(0.05)
	d, err := Generate(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	in, err := d.Instance(core.Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}, core.DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(99)
	res, err := core.RunIntelSample(in, core.RunOptions{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvaluations <= 0 || res.TotalEvaluations > spec.N {
		t.Fatalf("evaluations %d", res.TotalEvaluations)
	}
	m := core.ComputeMetrics(res.Output, d.Truth(), d.TotalCorrect())
	if m.Recall < 0.5 {
		t.Fatalf("recall collapsed: %+v", m)
	}
}

func TestFeatureColumnsInformative(t *testing.T) {
	spec := LendingClub.Scaled(0.05)
	d, err := Generate(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	col, err := d.Table.FloatColumn("score_strong")
	if err != nil {
		t.Fatal(err)
	}
	// score_strong must separate the classes.
	var pos, neg stats.Welford
	for i := 0; i < d.Table.NumRows(); i++ {
		if d.Labels[i] {
			pos.Add(col.At(i))
		} else {
			neg.Add(col.At(i))
		}
	}
	if pos.Mean()-neg.Mean() < 0.5 {
		t.Fatalf("score_strong gap %v too small", pos.Mean()-neg.Mean())
	}
	// noise must not separate the classes.
	ncol, err := d.Table.FloatColumn("noise")
	if err != nil {
		t.Fatal(err)
	}
	var npos, nneg stats.Welford
	for i := 0; i < d.Table.NumRows(); i++ {
		if d.Labels[i] {
			npos.Add(ncol.At(i))
		} else {
			nneg.Add(ncol.At(i))
		}
	}
	if math.Abs(npos.Mean()-nneg.Mean()) > 0.15 {
		t.Fatalf("noise column separates classes by %v", npos.Mean()-nneg.Mean())
	}
}

func TestExtraPredictorNoiseOrdering(t *testing.T) {
	spec := LendingClub.Scaled(0.05)
	d, err := Generate(spec, 13)
	if err != nil {
		t.Fatal(err)
	}
	// pred_00 should agree with the true predictor far more often than the
	// last extra predictor.
	truth, err := d.Table.StringColumn(spec.Predictor)
	if err != nil {
		t.Fatal(err)
	}
	agree := func(name string) float64 {
		col, err := d.Table.StringColumn(name)
		if err != nil {
			t.Fatal(err)
		}
		same := 0
		for i := 0; i < d.Table.NumRows(); i++ {
			if col.At(i) == truth.At(i) {
				same++
			}
		}
		return float64(same) / float64(d.Table.NumRows())
	}
	first := agree("pred_00")
	last := agree("pred_34")
	if first < last+0.3 {
		t.Fatalf("noise ordering broken: pred_00 agreement %v, pred_34 %v", first, last)
	}
}

func TestByNameAndScaled(t *testing.T) {
	s, err := ByName("census")
	if err != nil || s.Name != "census" {
		t.Fatalf("ByName: %v %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	scaled := LendingClub.Scaled(0.1)
	if scaled.N != 5300 {
		t.Fatalf("scaled N %d", scaled.N)
	}
	if math.Abs(scaled.SizeDev-523.3) > 1e-9 {
		t.Fatalf("scaled dev %v", scaled.SizeDev)
	}
	// Tiny factors floor at 10 rows per group.
	tiny := LendingClub.Scaled(0.0001)
	if tiny.N < tiny.Groups*10 {
		t.Fatalf("tiny N %d", tiny.N)
	}
}

func TestScaledStatsStillCalibrate(t *testing.T) {
	for _, spec := range All() {
		s := spec.Scaled(0.05)
		cal, err := Calibrate(s)
		if err != nil {
			t.Fatalf("%s scaled: %v", spec.Name, err)
		}
		sizes := make([]float64, len(cal.Sizes))
		for i, v := range cal.Sizes {
			sizes[i] = float64(v)
		}
		if got := stats.PearsonCorrelation(sizes, cal.Selectivities); math.Abs(got-s.SizeSelCorr) > 0.1 {
			t.Fatalf("%s scaled: corr %v want %v", spec.Name, got, s.SizeSelCorr)
		}
		if got := stats.WeightedMean(cal.Selectivities, sizes); math.Abs(got-s.Selectivity) > 0.02 {
			t.Fatalf("%s scaled: overall sel %v want %v", spec.Name, got, s.Selectivity)
		}
	}
}
