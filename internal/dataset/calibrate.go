package dataset

import (
	"fmt"
	"math"

	"repro/internal/solver"
	"repro/internal/stats"
)

// Calibration turns a Spec's published statistics into concrete per-group
// sizes and selectivities.
//
// Sizes: a right-skewed exponential ramp is standardized and scaled to the
// requested sample standard deviation around the mean N/k; the skew
// parameter is grown until every group stays above the minimum size (large
// deviations, like Census's 8183 around a 6428 mean, force heavy skew).
//
// Selectivities: initialized from a linear-Gaussian construction that hits
// the requested correlation against the size pattern, then polished by a
// small projected-gradient fit (reusing internal/solver) that drives the
// weighted mean, sample deviation and correlation onto their targets while
// respecting the [0.005, 0.995] box.

// Calibration is the resolved group structure of a dataset.
type Calibration struct {
	Sizes         []int
	Selectivities []float64
	Correct       []int // per-group correct-tuple counts (rounded)
}

// Calibrate computes group sizes and selectivities matching the spec.
func Calibrate(spec Spec) (Calibration, error) {
	if err := spec.Validate(); err != nil {
		return Calibration{}, err
	}
	minSize := spec.MinGroupSize
	if minSize <= 0 {
		minSize = 30
	}
	sizes, z, err := calibrateSizes(spec, minSize)
	if err != nil {
		return Calibration{}, err
	}
	sels, err := calibrateSelectivities(spec, sizes, z)
	if err != nil {
		return Calibration{}, err
	}
	cal := Calibration{Sizes: sizes, Selectivities: sels, Correct: make([]int, len(sizes))}
	for i := range sizes {
		cal.Correct[i] = int(math.Round(sels[i] * float64(sizes[i])))
	}
	return cal, nil
}

// calibrateSizes returns integer sizes summing to spec.N whose sample
// standard deviation is spec.SizeDev, plus the standardized size pattern z
// used to correlate selectivities.
func calibrateSizes(spec Spec, minSize int) ([]int, []float64, error) {
	k := spec.Groups
	mean := float64(spec.N) / float64(k)
	// Degenerate case: no spread requested.
	if spec.SizeDev == 0 {
		sizes := evenSplit(spec.N, k)
		return sizes, make([]float64, k), nil
	}
	for g := 0.4; g <= 24; g *= 1.15 {
		z := standardizedExpRamp(k, g)
		ok := true
		raw := make([]float64, k)
		for i := range raw {
			raw[i] = mean + spec.SizeDev*z[i]
			if raw[i] < float64(minSize) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		sizes := roundToSum(raw, spec.N, minSize)
		return sizes, z, nil
	}
	return nil, nil, fmt.Errorf("dataset %s: size deviation %v unreachable with %d groups of mean %v",
		spec.Name, spec.SizeDev, k, mean)
}

// standardizedExpRamp returns exp(g·i/(k−1)) standardized to sample mean 0
// and sample standard deviation 1.
func standardizedExpRamp(k int, g float64) []float64 {
	z := make([]float64, k)
	for i := range z {
		z[i] = math.Exp(g * float64(i) / float64(k-1))
	}
	m := stats.Mean(z)
	sd := stats.SampleStdDev(z)
	for i := range z {
		z[i] = (z[i] - m) / sd
	}
	return z
}

// evenSplit divides n into k near-equal integers summing to n.
func evenSplit(n, k int) []int {
	sizes := make([]int, k)
	base := n / k
	rem := n % k
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	return sizes
}

// roundToSum rounds raw to integers ≥ minSize summing exactly to n,
// distributing the rounding residue across the largest groups.
func roundToSum(raw []float64, n, minSize int) []int {
	sizes := make([]int, len(raw))
	total := 0
	largest := 0
	for i, v := range raw {
		sizes[i] = int(math.Round(v))
		if sizes[i] < minSize {
			sizes[i] = minSize
		}
		total += sizes[i]
		if sizes[i] > sizes[largest] {
			largest = i
		}
	}
	sizes[largest] += n - total
	return sizes
}

// calibrateSelectivities returns per-group selectivities whose
// size-weighted mean, sample deviation, and correlation with the sizes
// match the spec.
func calibrateSelectivities(spec Spec, sizes []int, z []float64) ([]float64, error) {
	k := spec.Groups
	fSizes := make([]float64, k)
	for i, t := range sizes {
		fSizes[i] = float64(t)
	}

	// Initial guess: linear-Gaussian construction s = μ + d(r·z + q·w) with
	// w a fixed pattern orthogonalized against z.
	w := orthogonalPattern(z)
	r := spec.SizeSelCorr
	q := math.Sqrt(math.Max(0, 1-r*r))
	init := make([]float64, k)
	for i := range init {
		init[i] = spec.Selectivity + spec.SelDev*(r*z[i]+q*w[i])
	}

	const lo, hi = 0.005, 0.995
	loss := func(s []float64) float64 {
		wm := stats.WeightedMean(s, fSizes)
		sd := stats.SampleStdDev(s)
		corr := stats.PearsonCorrelation(fSizes, s)
		e1 := wm - spec.Selectivity
		e2 := sd - spec.SelDev
		e3 := corr - spec.SizeSelCorr
		return 40*e1*e1 + 10*e2*e2 + e3*e3
	}
	prob := solver.Problem{
		Dim: k,
		Obj: loss,
		Project: func(x []float64) {
			for i := range x {
				x[i] = stats.Clamp(x[i], lo, hi)
			}
		},
	}
	res, err := solver.Solve(prob, init, solver.Options{MaxOuter: 1, MaxInner: 4000, Step: 0.05})
	if err != nil {
		return nil, fmt.Errorf("dataset %s: selectivity calibration failed: %w", spec.Name, err)
	}
	if err := solver.NaNGuard(res.X); err != nil {
		return nil, fmt.Errorf("dataset %s: %w", spec.Name, err)
	}
	return res.X, nil
}

// orthogonalPattern builds a unit-deviation pattern orthogonal (in the
// sample sense) to z: an alternating wave Gram-Schmidt-projected against z.
func orthogonalPattern(z []float64) []float64 {
	k := len(z)
	w := make([]float64, k)
	for i := range w {
		if i%2 == 0 {
			w[i] = 1
		} else {
			w[i] = -1
		}
		// Break symmetry so w isn't accidentally parallel to z.
		w[i] += 0.3 * math.Sin(float64(i))
	}
	// Remove mean, project out z, restandardize.
	m := stats.Mean(w)
	for i := range w {
		w[i] -= m
	}
	var dot, zz float64
	for i := range w {
		dot += w[i] * z[i]
		zz += z[i] * z[i]
	}
	if zz > 0 {
		for i := range w {
			w[i] -= dot / zz * z[i]
		}
	}
	sd := stats.SampleStdDev(w)
	if sd < 1e-9 {
		return make([]float64, k)
	}
	for i := range w {
		w[i] /= sd
	}
	return w
}
