// Package sqlparse implements the small SQL dialect the engine accepts:
//
//	[EXPLAIN] SELECT <*|col,...> FROM <table>
//	    [JOIN <table2> ON <leftcol> = <rightcol>]
//	    WHERE <udf>(<col>) = <0|1> [AND <udf2>(<col2>) = <0|1> ...]
//	    [WITH [PRECISION p] [RECALL r] [PROBABILITY q]]
//	    [GROUP ON <col>]
//	    [BUDGET <b>]
//
// The WITH clause turns on approximate evaluation; omitted bounds default
// to 0.9. WHERE takes any number of expensive UDF predicates ANDed
// together (plus cheap `col = literal` filters, evaluated first). GROUP ON
// pins the correlated column ("virtual" requests the logistic-regression
// virtual column); without it the engine discovers a column automatically.
// BUDGET switches to the fixed-budget objective. An EXPLAIN prefix asks
// for the physical operator tree instead of executing. Parse errors are
// *Error values carrying the offending token's line and column.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // single-quoted literal, quotes stripped
	tokSymbol // single-character punctuation: * ( ) = , . ;
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the input into tokens. Identifiers keep their original case;
// keyword comparison is case-insensitive at parse time.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '*' || c == '(' || c == ')' || c == '=' || c == ',' || c == '.' || c == ';':
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		case c == '\'':
			start := i
			i++
			for i < len(input) && input[i] != '\'' {
				i++
			}
			if i >= len(input) {
				return nil, errAt(input, start, "unterminated string literal")
			}
			toks = append(toks, token{tokString, input[start+1 : i], start})
			i++
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (isIdentChar(rune(input[i]))) {
				i++
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		case unicode.IsDigit(c):
			start := i
			seenDot := false
			for i < len(input) {
				ch := rune(input[i])
				if ch == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				if !unicode.IsDigit(ch) {
					break
				}
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		default:
			return nil, errAt(input, i, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}

func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
