package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse drives the lexer and parser with arbitrary input: any input
// may be rejected, but none may panic, and accepted statements must
// satisfy the parser's own invariants (a UDF predicate exists, EXPLAIN is
// flagged, errors carry positions inside the input).
//
// CI runs this with a short budget (-fuzz=FuzzParse -fuzztime=20s); the
// seed corpus covers every clause of the dialect.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM loans WHERE good_credit(id) = 1",
		"select id, grade from loans where f(id) = 0 with precision 0.85 recall 0.75 probability 0.9 group on grade budget 5000;",
		"EXPLAIN SELECT * FROM t WHERE f(x) = 1 AND g(y) = 0 AND h(z) = 1",
		"SELECT * FROM loans JOIN orders ON loans.id = orders.loan_id WHERE f(id) = 1 WITH RECALL 0.8 GROUP ON grade",
		"SELECT * FROM t WHERE grade = 'A' AND f(x) = 1 AND amount = 5000",
		"SELECT * FROM t WHERE f(x) = 1 WITH",
		"SELECT * FROM t WHERE f(x) @ 1",
		"'unterminated",
		"explain",
		"SELECT * FROM t WHERE f(x.y.z) = 1 GROUP ON virtual",
		"SELECT a,b,c FROM t WHERE f(x) = 1 BUDGET 10.5.5",
		"\x00\xff\xfe SELECT",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			var perr *Error
			if errorsAs(err, &perr) {
				if perr.Line < 1 || perr.Col < 1 {
					t.Fatalf("non-positive error position %d:%d for %q", perr.Line, perr.Col, input)
				}
				if perr.Line > 1+strings.Count(input, "\n") {
					t.Fatalf("error line %d beyond input %q", perr.Line, input)
				}
			}
			return
		}
		if stmt.Query.UDFName == "" || stmt.Query.UDFArg == "" {
			t.Fatalf("accepted statement without UDF predicate: %q → %+v", input, stmt.Query)
		}
		for _, c := range stmt.Query.Conjuncts {
			if c.UDFName == "" || c.UDFArg == "" {
				t.Fatalf("accepted empty conjunct: %q → %+v", input, stmt.Query)
			}
		}
		if err := stmt.Query.Validate(); err != nil {
			t.Fatalf("accepted statement fails validation: %q → %v", input, err)
		}
	})
}
