package sqlparse

import (
	"strconv"
	"strings"

	"repro/internal/engine"
)

// JoinSpec is the optional JOIN clause of a statement.
type JoinSpec struct {
	Table    string
	LeftKey  string
	RightKey string
}

// Statement is a parsed query: the engine's logical query plus the
// optional join clause. Explain marks an EXPLAIN-prefixed statement — the
// caller should plan (and render) the query instead of executing it.
// Analyze marks EXPLAIN ANALYZE: the caller should EXECUTE the query and
// render the plan annotated with measured per-operator counts.
type Statement struct {
	Query   engine.Query
	Join    *JoinSpec
	Explain bool
	Analyze bool
}

// SelectJoin assembles the engine's select-join form; valid only when a
// JOIN clause is present.
func (s *Statement) SelectJoin() (engine.SelectJoinQuery, error) {
	if s.Join == nil {
		return engine.SelectJoinQuery{}, &Error{Msg: "statement has no JOIN clause", Line: 1, Col: 1}
	}
	return engine.SelectJoinQuery{
		Query:     s.Query,
		JoinTable: s.Join.Table,
		LeftKey:   s.Join.LeftKey,
		RightKey:  s.Join.RightKey,
	}, nil
}

// DefaultBound is the value used for WITH-clause bounds the user omits.
const DefaultBound = 0.9

type parser struct {
	input string
	toks  []token
	pos   int
}

// Parse parses one statement of the engine's SQL dialect. Errors are
// *Error values carrying the line/column of the offending token.
func Parse(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{input: input, toks: toks}
	explain, analyze := false, false
	if isKeyword(p.peek(), "EXPLAIN") {
		p.next()
		explain = true
		if isKeyword(p.peek(), "ANALYZE") {
			p.next()
			analyze = true
		}
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Explain = explain
	stmt.Analyze = analyze
	// Optional trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf(p.peek(), "unexpected %s after statement", p.peek())
	}
	if err := stmt.Query.Validate(); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// errf builds a positional error pointing at token t.
func (p *parser) errf(t token, format string, args ...any) error {
	return errAt(p.input, t.pos, format, args...)
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !isKeyword(t, kw) {
		return p.errf(t, "expected %s, got %s", kw, t)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return p.errf(t, "expected %q, got %s", sym, t)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", p.errf(t, "expected identifier, got %s", t)
	}
	return t.text, nil
}

// qualifiedIdent parses ident or ident.ident and returns the final part.
func (p *parser) qualifiedIdent() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	for p.peek().kind == tokSymbol && p.peek().text == "." {
		p.next()
		name, err = p.ident()
		if err != nil {
			return "", err
		}
	}
	return name, nil
}

func (p *parser) number() (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, p.errf(t, "expected number, got %s", t)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errf(t, "bad number %q: %v", t.text, err)
	}
	return v, nil
}

func (p *parser) parseSelect() (*Statement, error) {
	stmt := &Statement{}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	cols, err := p.parseColumns()
	if err != nil {
		return nil, err
	}
	stmt.Query.Columns = cols

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	stmt.Query.Table, err = p.ident()
	if err != nil {
		return nil, err
	}

	if isKeyword(p.peek(), "JOIN") {
		p.next()
		join := &JoinSpec{}
		join.Table, err = p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		join.LeftKey, err = p.qualifiedIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		join.RightKey, err = p.qualifiedIdent()
		if err != nil {
			return nil, err
		}
		stmt.Join = join
	}

	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	if err := p.parseWhere(stmt); err != nil {
		return nil, err
	}

	for {
		switch {
		case isKeyword(p.peek(), "WITH"):
			t := p.next()
			if stmt.Query.Approx != nil {
				return nil, p.errf(t, "duplicate WITH clause")
			}
			approx, err := p.parseWith()
			if err != nil {
				return nil, err
			}
			stmt.Query.Approx = approx
		case isKeyword(p.peek(), "GROUP"):
			t := p.next()
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			if stmt.Query.GroupOn != "" {
				return nil, p.errf(t, "duplicate GROUP ON clause")
			}
			stmt.Query.GroupOn, err = p.ident()
			if err != nil {
				return nil, err
			}
		case isKeyword(p.peek(), "BUDGET"):
			t := p.next()
			if stmt.Query.Budget != 0 {
				return nil, p.errf(t, "duplicate BUDGET clause")
			}
			stmt.Query.Budget, err = p.number()
			if err != nil {
				return nil, err
			}
		default:
			return stmt, nil
		}
	}
}

// parseWhere parses a conjunction of predicates: expensive UDF predicates
// `udf(col) = 0|1` (any number — one is the plain selection, two the
// paper's §5 conjunction, three or more the N-ary greedy-wave path) and
// cheap equality filters `col = literal` (any number; the engine pushes
// these down and evaluates them first, per Section 5).
func (p *parser) parseWhere(stmt *Statement) error {
	whereTok := p.peek()
	udfCount := 0
	for {
		name, err := p.ident()
		if err != nil {
			return err
		}
		if p.peek().kind == tokSymbol && p.peek().text == "(" {
			// UDF predicate.
			p.next()
			arg, err := p.qualifiedIdent()
			if err != nil {
				return err
			}
			if err := p.expectSymbol(")"); err != nil {
				return err
			}
			if err := p.expectSymbol("="); err != nil {
				return err
			}
			numTok := p.peek()
			v, err := p.number()
			if err != nil {
				return err
			}
			var want bool
			switch v {
			case 0:
				want = false
			case 1:
				want = true
			default:
				return p.errf(numTok, "UDF comparison must be = 0 or = 1, got %v", v)
			}
			if udfCount == 0 {
				stmt.Query.UDFName, stmt.Query.UDFArg, stmt.Query.Want = name, arg, want
			} else {
				stmt.Query.Conjuncts = append(stmt.Query.Conjuncts,
					engine.Conjunct{UDFName: name, UDFArg: arg, Want: want})
			}
			udfCount++
		} else {
			// Cheap equality filter: col [= literal].
			col := name
			for p.peek().kind == tokSymbol && p.peek().text == "." {
				p.next()
				col, err = p.ident()
				if err != nil {
					return err
				}
			}
			if err := p.expectSymbol("="); err != nil {
				return err
			}
			val, err := p.literal()
			if err != nil {
				return err
			}
			stmt.Query.Filters = append(stmt.Query.Filters, engine.Filter{Column: col, Value: val})
		}
		if !isKeyword(p.peek(), "AND") {
			break
		}
		p.next()
	}
	if udfCount == 0 {
		return p.errf(whereTok, "WHERE clause needs a UDF predicate")
	}
	return nil
}

// literal parses a filter value: a number, a quoted string, or a bare
// identifier (treated as a string value).
func (p *parser) literal() (string, error) {
	t := p.next()
	switch t.kind {
	case tokNumber, tokString, tokIdent:
		return t.text, nil
	default:
		return "", p.errf(t, "expected literal, got %s", t)
	}
}

func (p *parser) parseColumns() ([]string, error) {
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.next()
		return nil, nil
	}
	var cols []string
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, name)
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.next()
			continue
		}
		return cols, nil
	}
}

func (p *parser) parseWith() (*engine.Approx, error) {
	approx := &engine.Approx{Precision: DefaultBound, Recall: DefaultBound, Probability: DefaultBound}
	seen := map[string]bool{}
	found := false
	for {
		var field *float64
		switch {
		case isKeyword(p.peek(), "PRECISION"):
			field = &approx.Precision
		case isKeyword(p.peek(), "RECALL"):
			field = &approx.Recall
		case isKeyword(p.peek(), "PROBABILITY"):
			field = &approx.Probability
		default:
			if !found {
				return nil, p.errf(p.peek(), "WITH requires at least one of PRECISION, RECALL, PROBABILITY")
			}
			return approx, nil
		}
		t := p.next()
		kw := strings.ToUpper(t.text)
		if seen[kw] {
			return nil, p.errf(t, "duplicate %s in WITH clause", kw)
		}
		seen[kw] = true
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		*field = v
		found = true
	}
}
