package sqlparse

import (
	"errors"
	"strings"
	"testing"
)

// errorsAs is errors.As without the test files importing it everywhere.
func errorsAs(err error, target **Error) bool { return errors.As(err, target) }

func TestParseBasic(t *testing.T) {
	stmt, err := Parse("SELECT * FROM loans WHERE good_credit(id) = 1")
	if err != nil {
		t.Fatal(err)
	}
	q := stmt.Query
	if q.Table != "loans" || q.UDFName != "good_credit" || q.UDFArg != "id" || !q.Want {
		t.Fatalf("parsed %+v", q)
	}
	if q.Approx != nil || q.GroupOn != "" || q.Budget != 0 || stmt.Join != nil {
		t.Fatalf("unexpected clauses: %+v", q)
	}
	if len(q.Columns) != 0 {
		t.Fatalf("columns %v", q.Columns)
	}
}

func TestParseFullClause(t *testing.T) {
	stmt, err := Parse(`select id, grade from loans
		where good_credit(id) = 1
		with precision 0.85 recall 0.75 probability 0.9
		group on grade budget 5000;`)
	if err != nil {
		t.Fatal(err)
	}
	q := stmt.Query
	if len(q.Columns) != 2 || q.Columns[0] != "id" || q.Columns[1] != "grade" {
		t.Fatalf("columns %v", q.Columns)
	}
	if q.Approx == nil {
		t.Fatal("missing approx")
	}
	if q.Approx.Precision != 0.85 || q.Approx.Recall != 0.75 || q.Approx.Probability != 0.9 {
		t.Fatalf("approx %+v", q.Approx)
	}
	if q.GroupOn != "grade" || q.Budget != 5000 {
		t.Fatalf("clauses %+v", q)
	}
}

func TestParseWithDefaults(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE f(x) = 1 WITH RECALL 0.7")
	if err != nil {
		t.Fatal(err)
	}
	a := stmt.Query.Approx
	if a == nil || a.Recall != 0.7 || a.Precision != DefaultBound || a.Probability != DefaultBound {
		t.Fatalf("approx %+v", a)
	}
}

func TestParseWithClausesAnyOrder(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE f(x) = 1 WITH PROBABILITY 0.99 PRECISION 0.6")
	if err != nil {
		t.Fatal(err)
	}
	a := stmt.Query.Approx
	if a.Probability != 0.99 || a.Precision != 0.6 || a.Recall != DefaultBound {
		t.Fatalf("approx %+v", a)
	}
}

func TestParseWantZero(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE f(x) = 0")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Query.Want {
		t.Fatal("want should be false")
	}
}

func TestParseJoin(t *testing.T) {
	stmt, err := Parse("SELECT * FROM loans JOIN orders ON loans.id = orders.loan_id WHERE f(id) = 1 WITH RECALL 0.8 GROUP ON grade")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Join == nil {
		t.Fatal("join missing")
	}
	if stmt.Join.Table != "orders" || stmt.Join.LeftKey != "id" || stmt.Join.RightKey != "loan_id" {
		t.Fatalf("join %+v", stmt.Join)
	}
	sj, err := stmt.SelectJoin()
	if err != nil {
		t.Fatal(err)
	}
	if sj.JoinTable != "orders" {
		t.Fatalf("select-join %+v", sj)
	}
}

func TestSelectJoinWithoutJoin(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE f(x) = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.SelectJoin(); err == nil {
		t.Fatal("SelectJoin without JOIN accepted")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	stmt, err := Parse("sElEcT * fRoM t wHeRe f(x) = 1 wItH pReCiSiOn 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Query.Approx.Precision != 0.5 {
		t.Fatalf("approx %+v", stmt.Query.Approx)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE f = 1",
		"SELECT * FROM t WHERE f(x) = 2",
		"SELECT * FROM t WHERE f(x) = 1 WITH",
		"SELECT * FROM t WHERE f(x) = 1 WITH PRECISION",
		"SELECT * FROM t WHERE f(x) = 1 WITH PRECISION 0.5 PRECISION 0.6",
		"SELECT * FROM t WHERE f(x) = 1 GROUP grade",
		"SELECT * FROM t WHERE f(x) = 1 BUDGET",
		"SELECT * FROM t WHERE f(x) = 1 BUDGET 10", // budget without WITH
		"SELECT * FROM t WHERE f(x) = 1 trailing garbage",
		"SELECT * FROM t WHERE f(x) = 1 WITH PRECISION 1.5", // invalid bound
		"SELECT * FROM t JOIN WHERE f(x) = 1",
		"SELECT ,* FROM t WHERE f(x) = 1",
		"SELECT * FROM t WHERE f(x) @ 1",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("accepted: %s", sql)
		}
	}
}

func TestParseDuplicateClauses(t *testing.T) {
	cases := []string{
		"SELECT * FROM t WHERE f(x) = 1 WITH PRECISION 0.5 WITH RECALL 0.5",
		"SELECT * FROM t WHERE f(x) = 1 GROUP ON a GROUP ON b",
		"SELECT * FROM t WHERE f(x) = 1 WITH RECALL 0.5 BUDGET 10 BUDGET 20",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("accepted: %s", sql)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT # FROM"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex("0.85 42 7.")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "0.85" || toks[1].text != "42" || toks[2].text != "7." {
		t.Fatalf("tokens %v", toks)
	}
}

func TestTokenString(t *testing.T) {
	toks, err := lex("x")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(toks[0].String(), "x") {
		t.Fatalf("token string %s", toks[0])
	}
	if toks[1].String() != "end of input" {
		t.Fatalf("eof string %s", toks[1])
	}
}

func TestParseConjunction(t *testing.T) {
	stmt, err := Parse(`SELECT * FROM posts WHERE relevant(id) = 1 AND safe(id) = 1
		WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8 GROUP ON topic`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Query.Conjuncts) != 1 {
		t.Fatalf("conjuncts %+v", stmt.Query.Conjuncts)
	}
	and := stmt.Query.Conjuncts[0]
	if and.UDFName != "safe" || and.UDFArg != "id" || !and.Want {
		t.Fatalf("conjunct %+v", and)
	}
	if stmt.Query.UDFName != "relevant" {
		t.Fatalf("primary %+v", stmt.Query)
	}
}

func TestParseConjunctionWantZero(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE f(x) = 1 AND g(y) = 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Query.Conjuncts) != 1 || stmt.Query.Conjuncts[0].Want {
		t.Fatalf("conjuncts %+v", stmt.Query.Conjuncts)
	}
}

func TestParseConjunctionErrors(t *testing.T) {
	cases := []string{
		"SELECT * FROM t WHERE f(x) = 1 AND",
		"SELECT * FROM t WHERE f(x) = 1 AND g =", // filter without literal
		"SELECT * FROM t WHERE f(x) = 1 AND g(y) = 3",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("accepted: %s", sql)
		}
	}
}

func TestParseCheapFilters(t *testing.T) {
	stmt, err := Parse(`SELECT * FROM loans WHERE grade = 'A' AND good_credit(id) = 1
		AND purpose = car AND amount = 5000`)
	if err != nil {
		t.Fatal(err)
	}
	q := stmt.Query
	if q.UDFName != "good_credit" {
		t.Fatalf("primary UDF %q", q.UDFName)
	}
	if len(q.Filters) != 3 {
		t.Fatalf("filters %+v", q.Filters)
	}
	want := []struct{ col, val string }{{"grade", "A"}, {"purpose", "car"}, {"amount", "5000"}}
	for i, w := range want {
		if q.Filters[i].Column != w.col || q.Filters[i].Value != w.val {
			t.Fatalf("filter %d = %+v, want %+v", i, q.Filters[i], w)
		}
	}
}

func TestParseFilterOnlyWhereRejected(t *testing.T) {
	if _, err := Parse("SELECT * FROM t WHERE grade = 'A'"); err == nil {
		t.Fatal("WHERE without a UDF predicate accepted")
	}
}

func TestParseNaryConjunction(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE f(x) = 1 AND g(y) = 0 AND h(z) = 1 AND grade = 'A'")
	if err != nil {
		t.Fatal(err)
	}
	q := stmt.Query
	if q.UDFName != "f" || len(q.Conjuncts) != 2 {
		t.Fatalf("parsed %+v", q)
	}
	if q.Conjuncts[0].UDFName != "g" || q.Conjuncts[0].Want {
		t.Fatalf("conjunct 0: %+v", q.Conjuncts[0])
	}
	if q.Conjuncts[1].UDFName != "h" || !q.Conjuncts[1].Want {
		t.Fatalf("conjunct 1: %+v", q.Conjuncts[1])
	}
	if len(q.Filters) != 1 || q.Filters[0].Column != "grade" {
		t.Fatalf("filters %+v", q.Filters)
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse("EXPLAIN SELECT * FROM t WHERE f(x) = 1 WITH RECALL 0.8")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Explain || stmt.Query.Table != "t" {
		t.Fatalf("parsed %+v", stmt)
	}
	stmt, err = Parse("explain select * from t where f(x) = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Explain {
		t.Fatal("lowercase explain not recognized")
	}
	if _, err := Parse("EXPLAIN"); err == nil {
		t.Fatal("bare EXPLAIN accepted")
	}
	if _, err := Parse("EXPLAIN EXPLAIN SELECT * FROM t WHERE f(x) = 1"); err == nil {
		t.Fatal("double EXPLAIN accepted")
	}
}

func TestParseExplainAnalyze(t *testing.T) {
	stmt, err := Parse("EXPLAIN ANALYZE SELECT * FROM t WHERE f(x) = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Explain || !stmt.Analyze {
		t.Fatalf("parsed %+v, want Explain and Analyze set", stmt)
	}
	stmt, err = Parse("explain analyze select * from t where f(x) = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Analyze {
		t.Fatal("lowercase explain analyze not recognized")
	}
	// ANALYZE is only a keyword directly after EXPLAIN.
	stmt, err = Parse("SELECT * FROM analyze WHERE f(x) = 1")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Analyze || stmt.Query.Table != "analyze" {
		t.Fatalf("parsed %+v, want plain select from table 'analyze'", stmt)
	}
	if _, err := Parse("ANALYZE SELECT * FROM t WHERE f(x) = 1"); err == nil {
		t.Fatal("bare ANALYZE accepted")
	}
	if _, err := Parse("EXPLAIN ANALYZE"); err == nil {
		t.Fatal("bare EXPLAIN ANALYZE accepted")
	}
}

func TestParseErrorPositions(t *testing.T) {
	var perr *Error
	_, err := Parse("SELECT * FROM t WHERE f(x) @ 1")
	if !errorsAs(err, &perr) {
		t.Fatalf("error %T is not *Error: %v", err, err)
	}
	if perr.Line != 1 || perr.Col != 28 {
		t.Fatalf("position %d:%d, want 1:28 (%v)", perr.Line, perr.Col, err)
	}
	_, err = Parse("SELECT *\nFROM t\nWHERE f(x) = 3")
	if !errorsAs(err, &perr) {
		t.Fatalf("error %T is not *Error: %v", err, err)
	}
	if perr.Line != 3 || perr.Col != 14 {
		t.Fatalf("position %d:%d, want 3:14 (%v)", perr.Line, perr.Col, err)
	}
	if !strings.Contains(err.Error(), "sqlparse:") || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("rendered error %q", err)
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := lex("'hello world' 'a'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokString || toks[0].text != "hello world" {
		t.Fatalf("token %+v", toks[0])
	}
	if toks[1].text != "a" {
		t.Fatalf("token %+v", toks[1])
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
}
