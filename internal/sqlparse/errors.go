package sqlparse

import (
	"fmt"
	"strings"
)

// Error is a parse (or lex) error carrying the position of the offending
// token: 1-based line and column (bytes from the start of the line). The
// rendered message keeps the historical "sqlparse:" prefix, so callers that
// matched on the string keep working; structured consumers (the query
// server returns {error, line, col} JSON) unwrap with errors.As.
type Error struct {
	Msg  string
	Line int
	Col  int
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("sqlparse: %s (line %d, col %d)", e.Msg, e.Line, e.Col)
}

// errAt builds an Error pointing at byte offset off of input.
func errAt(input string, off int, format string, args ...any) *Error {
	line, col := position(input, off)
	return &Error{Msg: fmt.Sprintf(format, args...), Line: line, Col: col}
}

// position converts a byte offset into a 1-based (line, column) pair.
// Columns count bytes from the last newline, which matches how the lexer
// consumes its input.
func position(input string, off int) (line, col int) {
	if off > len(input) {
		off = len(input)
	}
	if off < 0 {
		off = 0
	}
	before := input[:off]
	line = 1 + strings.Count(before, "\n")
	if i := strings.LastIndexByte(before, '\n'); i >= 0 {
		return line, off - i
	}
	return line, off + 1
}
