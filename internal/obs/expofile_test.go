package obs

import (
	"os"
	"testing"
)

// TestParseExpositionFile validates a /metrics scrape saved to disk — the
// CI metrics e2e step starts a real predsqld, runs a query, scrapes
// GET /metrics into a file and points EXPO_FILE here. Skipped when the
// env var is unset, so the test is inert in normal runs.
func TestParseExpositionFile(t *testing.T) {
	path := os.Getenv("EXPO_FILE")
	if path == "" {
		t.Skip("EXPO_FILE not set (driven by the CI metrics e2e step)")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := ParseExposition(f)
	if err != nil {
		t.Fatalf("scrape is not valid exposition: %v", err)
	}
	// The server ran at least one query and its UDF, so both required
	// histogram families must be populated.
	if got := samples["predsqld_query_duration_seconds_count"]; got < 1 {
		t.Errorf("query_duration_seconds_count = %v, want >= 1", got)
	}
	if got := samples[`predsqld_udf_duration_seconds_count{udf="good_credit"}`]; got < 1 {
		t.Errorf("udf_duration_seconds_count{udf=good_credit} = %v, want >= 1", got)
	}
	if got := samples[`predsqld_queries_total{status="ok"}`]; got < 1 {
		t.Errorf(`queries_total{status="ok"} = %v, want >= 1`, got)
	}
}
