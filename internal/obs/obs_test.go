package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_queries_total", "Total queries.", Label{"status", "ok"})
	c.Add(3)
	r.Counter("test_queries_total", "Total queries.", Label{"status", "error"}).Inc()
	g := r.Gauge("test_in_flight", "In-flight queries.")
	g.Set(2)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP test_in_flight In-flight queries.
# TYPE test_in_flight gauge
test_in_flight 2
# HELP test_queries_total Total queries.
# TYPE test_queries_total counter
test_queries_total{status="error"} 1
test_queries_total{status="ok"} 3
# HELP test_uptime_seconds Uptime.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 1.5
`
	if got != want {
		t.Fatalf("exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}

	vals, err := ParseExposition(strings.NewReader(got))
	if err != nil {
		t.Fatalf("own output does not parse: %v", err)
	}
	if vals[`test_queries_total{status="ok"}`] != 3 {
		t.Fatalf("parsed %v", vals)
	}
	if vals["test_in_flight"] != 2 {
		t.Fatalf("parsed %v", vals)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("re-registering a counter should return the same instrument")
	}
	h1 := r.Histogram("h_seconds", "h", DefBuckets)
	h2 := r.Histogram("h_seconds", "h", DefBuckets)
	if h1 != h2 {
		t.Fatal("re-registering a histogram should return the same instrument")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter/gauge name collision")
		}
	}()
	r := NewRegistry()
	r.Counter("clash", "c")
	r.Gauge("clash", "g")
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10}, Label{"udf", "f"})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{udf="f",le="0.1"} 1
test_latency_seconds_bucket{udf="f",le="1"} 3
test_latency_seconds_bucket{udf="f",le="10"} 4
test_latency_seconds_bucket{udf="f",le="+Inf"} 5
test_latency_seconds_sum{udf="f"} 56.05
test_latency_seconds_count{udf="f"} 5
`
	if got != want {
		t.Fatalf("histogram exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
	vals, err := ParseExposition(strings.NewReader(got))
	if err != nil {
		t.Fatalf("own histogram output does not parse: %v", err)
	}
	if vals[`test_latency_seconds_count{udf="f"}`] != 5 {
		t.Fatalf("parsed %v", vals)
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d", h.Count())
	}
}

func TestCollectCallback(t *testing.T) {
	r := NewRegistry()
	r.Collect("breaker_state", "Breaker state.", "gauge", func() []Sample {
		return []Sample{
			{Labels: []Label{{"table", "loans"}, {"udf", "g"}}, Value: 2},
			{Labels: []Label{{"table", "loans"}, {"udf", "f"}}, Value: 0},
		}
	})
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	// Samples are sorted by label signature even when the callback returns
	// them out of order (maporder contract: collect-then-sort).
	fIdx := strings.Index(got, `udf="f"`)
	gIdx := strings.Index(got, `udf="g"`)
	if fIdx < 0 || gIdx < 0 || fIdx > gIdx {
		t.Fatalf("collector samples not sorted:\n%s", got)
	}
	if _, err := ParseExposition(strings.NewReader(got)); err != nil {
		t.Fatal(err)
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"no type":          "orphan_metric 1\n",
		"bad name":         "# TYPE 9bad counter\n9bad 1\n",
		"bad value":        "# TYPE m counter\nm one\n",
		"bad label":        "# TYPE m counter\nm{x=unquoted} 1\n",
		"dup sample":       "# TYPE m counter\nm 1\nm 2\n",
		"hist no inf":      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"hist decreasing":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"hist count drift": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error on %q", name, in)
		}
	}
}

func TestParseExpositionEscapes(t *testing.T) {
	in := "# TYPE m counter\nm{path=\"a\\\\b\\\"c\\nd\"} 7\n"
	vals, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 {
		t.Fatalf("parsed %v", vals)
	}
	for k, v := range vals {
		if v != 7 || !strings.Contains(k, "a\\\\b") {
			t.Fatalf("parsed %q=%v", k, v)
		}
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	h := r.Histogram("h_seconds", "h", DefBuckets)
	g := r.Gauge("g", "g")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j%100) / 1000)
				g.Set(float64(i))
				if j%100 == 0 {
					var b strings.Builder
					if err := r.WriteExposition(&b); err != nil {
						t.Error(err)
						return
					}
					if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
						t.Errorf("mid-flight exposition invalid: %v", err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	sum := math.Float64frombits(h.sumBits.Load())
	if sum <= 0 {
		t.Fatalf("histogram sum = %v", sum)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	s := tr.Start("parse")
	s.SetAttr("sql", "SELECT 1")
	s.End()
	s.End() // second End is a no-op
	tr.Start("execute").End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "parse" || spans[1].Name != "execute" {
		t.Fatalf("span order: %+v", spans)
	}
	if spans[0].Attrs["sql"] != "SELECT 1" {
		t.Fatalf("attrs: %+v", spans[0].Attrs)
	}
	if spans[0].StartUS < 0 || spans[0].DurUS < 0 {
		t.Fatalf("negative timing: %+v", spans[0])
	}
	if _, err := json.Marshal(spans); err != nil {
		t.Fatal(err)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	s := tr.Start("anything")
	s.SetAttr("k", "v")
	s.End()
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil trace exported spans: %v", got)
	}
}
