// Package obs is the repository's dependency-free observability layer:
// a wall-clock facade, a hand-rolled metrics registry with Prometheus
// text exposition, and lightweight per-query traces.
//
// Determinism contract: obs is the single package sanctioned to read the
// wall clock (see internal/lint/config.go — the detrand analyzer flags
// time.Now/Since/Until everywhere else in result-producing code). Timing
// data produced here is display-only: nothing derived from a clock may
// influence query results, plans, or persisted state. EXPLAIN ANALYZE
// count fields are computed from deterministic engine counters and are
// bit-identical at any parallelism; only the elapsed fields come from
// this package and are excluded from determinism comparisons.
package obs

import "time"

// Now returns the current wall-clock time. It exists so that every clock
// read in the tree flows through this package, keeping result-producing
// packages clock-free under the detrand lint.
func Now() time.Time { return time.Now() }

// Since returns the elapsed wall time since start. Display-only by
// contract: callers must not let the returned duration influence results.
func Since(start time.Time) time.Duration { return time.Since(start) }
