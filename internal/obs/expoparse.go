package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseExposition reads Prometheus text exposition format and validates
// it: metric-name charset, label syntax, numeric values, "# TYPE"
// declared before a family's samples, and histogram shape (ascending
// non-decreasing cumulative buckets ending in le="+Inf", with matching
// _count and a _sum). It is the tiny validating parser the CI metrics
// gate and the scrape tests run against a live /metrics endpoint.
//
// The returned map is keyed by the sample name plus its labels sorted by
// label name, e.g. `predsqld_queries_total{status="ok"}`.
func ParseExposition(r io.Reader) (map[string]float64, error) {
	types := make(map[string]string) // family -> declared type
	helped := make(map[string]bool)  // family -> HELP seen
	out := make(map[string]float64)
	type bucket struct {
		le  float64
		val float64
	}
	hbuckets := make(map[string][]bucket) // histogram series (sans le) -> buckets
	hinf := make(map[string]float64)      // histogram series -> +Inf bucket value
	hcount := make(map[string]float64)
	hsum := make(map[string]bool)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, types, helped); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam, suffix := familyOf(name, types)
		if _, ok := types[fam]; !ok {
			return nil, fmt.Errorf("line %d: sample %q precedes its # TYPE declaration", lineNo, name)
		}
		key := sampleKey(name, labels)
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		out[key] = val
		if types[fam] == "histogram" {
			series := fam + "\x00" + sampleKey("", withoutLabel(labels, "le"))
			switch suffix {
			case "_bucket":
				le, ok := labelValue(labels, "le")
				if !ok {
					return nil, fmt.Errorf("line %d: histogram bucket %q missing le label", lineNo, name)
				}
				if le == "+Inf" {
					hinf[series] = val
				} else {
					b, err := strconv.ParseFloat(le, 64)
					if err != nil {
						return nil, fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
					}
					hbuckets[series] = append(hbuckets[series], bucket{b, val})
				}
			case "_count":
				hcount[series] = val
			case "_sum":
				hsum[series] = true
			default:
				return nil, fmt.Errorf("line %d: histogram family %q has plain sample %q", lineNo, fam, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Histogram shape checks, per series (a series may legitimately have
	// no finite buckets, so key the sweep on every map that names one).
	seriesSet := make(map[string]bool)
	for s := range hbuckets {
		seriesSet[s] = true
	}
	for s := range hinf {
		seriesSet[s] = true
	}
	for s := range hcount {
		seriesSet[s] = true
	}
	series := make([]string, 0, len(seriesSet))
	for s := range seriesSet {
		series = append(series, s)
	}
	sort.Strings(series)
	for _, series := range series {
		bs := hbuckets[series]
		fam := series[:strings.IndexByte(series, 0)]
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		prev := 0.0
		for _, b := range bs {
			if b.val < prev {
				return nil, fmt.Errorf("histogram %s: bucket counts decrease at le=%g", fam, b.le)
			}
			prev = b.val
		}
		inf, ok := hinf[series]
		if !ok {
			return nil, fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", fam)
		}
		if inf < prev {
			return nil, fmt.Errorf("histogram %s: +Inf bucket below last finite bucket", fam)
		}
		count, ok := hcount[series]
		if !ok {
			return nil, fmt.Errorf("histogram %s: missing _count", fam)
		}
		if count != inf {
			return nil, fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", fam, count, inf)
		}
		if !hsum[series] {
			return nil, fmt.Errorf("histogram %s: missing _sum", fam)
		}
	}
	return out, nil
}

func parseComment(line string, types map[string]string, helped map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		name := fields[2]
		if !validName(name) {
			return fmt.Errorf("bad metric name %q in TYPE", name)
		}
		if len(fields) < 4 {
			return fmt.Errorf("TYPE %s missing type", name)
		}
		typ := strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("TYPE %s has invalid type %q", name, typ)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		types[name] = typ
	case "HELP":
		name := fields[2]
		if !validName(name) {
			return fmt.Errorf("bad metric name %q in HELP", name)
		}
		if helped[name] {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		helped[name] = true
	}
	return nil
}

// parseSample splits `name{a="b",...} value` into its parts.
func parseSample(line string) (string, []Label, float64, error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	var labels []Label
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, fmt.Errorf("sample %q: %w", name, err)
		}
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp is legal; take the first field as the value.
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	val, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: bad value %q", name, rest)
	}
	return name, labels, val, nil
}

func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	for {
		s = strings.TrimLeft(s, " ")
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label missing '='")
		}
		name := strings.TrimSpace(s[:eq])
		if !validName(name) || strings.Contains(name, ":") {
			return nil, "", fmt.Errorf("bad label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("label %s value not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if len(s) == 0 {
				return nil, "", fmt.Errorf("unterminated label value for %s", name)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if len(s) == 0 {
					return nil, "", fmt.Errorf("dangling escape in label %s", name)
				}
				switch s[0] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[0])
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %s", s[0], name)
				}
				s = s[1:]
				continue
			}
			val.WriteByte(c)
		}
		labels = append(labels, Label{name, val.String()})
		s = strings.TrimLeft(s, " ")
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
		}
	}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// familyOf maps a sample name back to its declared family, stripping the
// histogram suffixes when the base name is a declared histogram.
func familyOf(name string, types map[string]string) (fam, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if types[base] == "histogram" {
				return base, suf
			}
		}
	}
	return name, ""
}

func sampleKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	sorted := append([]Label{}, labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func labelValue(labels []Label, name string) (string, bool) {
	for _, l := range labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

func withoutLabel(labels []Label, name string) []Label {
	out := make([]Label, 0, len(labels))
	for _, l := range labels {
		if l.Name != name {
			out = append(out, l)
		}
	}
	return out
}
