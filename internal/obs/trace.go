package obs

import (
	"context"
	"sync"
	"time"
)

// Trace collects the spans of one query. A nil *Trace is a valid no-op
// sink — every method is nil-safe — so instrumented code pays only a nil
// check when tracing is off. Span timings are display-only diagnostics:
// they never feed back into planning or results.
type Trace struct {
	mu    sync.Mutex
	start time.Time
	spans []*Span
}

// Span is one timed phase inside a trace.
type Span struct {
	tr    *Trace
	name  string
	start time.Time
	dur   time.Duration
	attrs []Label
	done  bool
}

// SpanJSON is the wire form of a finished span: offsets and durations in
// microseconds relative to the trace start.
type SpanJSON struct {
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// NewTrace starts an empty trace anchored at the current time.
func NewTrace() *Trace {
	return &Trace{start: Now()}
}

// Start opens a span. The returned span must be closed with End; spans
// left open are exported with the duration they had accumulated at
// export time.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, start: Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// SetAttr attaches a key/value annotation to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Label{key, value})
	s.tr.mu.Unlock()
}

// End closes the span; second and later calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.done {
		s.done = true
		s.dur = Since(s.start)
	}
	s.tr.mu.Unlock()
}

// Spans exports the trace in span-start order.
func (t *Trace) Spans() []SpanJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanJSON, len(t.spans))
	for i, s := range t.spans {
		dur := s.dur
		if !s.done {
			dur = Since(s.start)
		}
		j := SpanJSON{
			Name:    s.name,
			StartUS: s.start.Sub(t.start).Microseconds(),
			DurUS:   dur.Microseconds(),
		}
		if len(s.attrs) > 0 {
			j.Attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				j.Attrs[a.Name] = a.Value
			}
		}
		out[i] = j
	}
	return out
}

type traceKey struct{}

// WithTrace returns a context carrying t; instrumented layers pick it up
// via FromContext.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil (a valid no-op
// trace) when none is attached.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
