package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteExposition renders every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, one
// "# HELP" / "# TYPE" header each, samples sorted by label signature so
// output is stable across scrapes.
func (r *Registry) WriteExposition(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		type row struct {
			sig  string
			line string
		}
		var rows []row
		add := func(sig, line string) { rows = append(rows, row{sig, line}) }
		for _, m := range f.metrics {
			switch {
			case m.ctr != nil:
				add(m.sig, sampleLine(f.name, m.labels, float64(m.ctr.Value())))
			case m.gauge != nil:
				add(m.sig, sampleLine(f.name, m.labels, m.gauge.Value()))
			case m.gfn != nil:
				add(m.sig, sampleLine(f.name, m.labels, m.gfn()))
			case m.hist != nil:
				writeHistogram(add, f.name, m)
			}
		}
		for _, fn := range f.collect {
			for _, s := range fn() {
				add(labelSig(s.Labels), sampleLine(f.name, s.Labels, s.Value))
			}
		}
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].sig < rows[j].sig })
		for _, r := range rows {
			bw.WriteString(r.line)
		}
	}
	return bw.Flush()
}

// writeHistogram expands one histogram metric into its cumulative
// _bucket/_sum/_count exposition samples. Scrapes race observations, so
// the +Inf bucket is clamped up to the running cumulative sum to keep the
// bucket sequence non-decreasing.
func writeHistogram(add func(sig, line string), name string, m *metric) {
	h := m.hist
	cum := int64(0)
	var b strings.Builder
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		le := strconv.FormatFloat(bound, 'g', -1, 64)
		b.WriteString(sampleLine(name+"_bucket", append(append([]Label{}, m.labels...), Label{"le", le}), float64(cum)))
	}
	count := h.count.Load()
	if cum > count {
		count = cum
	}
	b.WriteString(sampleLine(name+"_bucket", append(append([]Label{}, m.labels...), Label{"le", "+Inf"}), float64(count)))
	b.WriteString(sampleLine(name+"_sum", m.labels, math.Float64frombits(h.sumBits.Load())))
	b.WriteString(sampleLine(name+"_count", m.labels, float64(count)))
	add(m.sig, b.String())
}

func sampleLine(name string, labels []Label, v float64) string {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
	return b.String()
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
