package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition sample produced by a collector callback: a
// label set and a value, emitted under the collector's family name.
type Sample struct {
	Labels []Label
	Value  float64
}

// DefBuckets are the default latency buckets (seconds), spanning 500µs
// to 10s — wide enough for both fast cached queries and slow chaos runs.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n panics (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free; exposition reads may race individual bucket increments but
// never tear a value (all fields are atomics), which is the standard
// Prometheus scrape contract.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(Since(start).Seconds()) }

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// metric is one registered (labels, instrument) pair inside a family.
type metric struct {
	labels []Label
	sig    string
	ctr    *Counter
	gauge  *Gauge
	gfn    func() float64
	hist   *Histogram
}

// family groups every metric sharing one exposition name.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	metrics []*metric
	collect []func() []Sample
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func labelSig(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + l.Value
	}
	sort.Strings(parts)
	return fmt.Sprint(parts)
}

func (r *Registry) familyFor(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// find returns the existing metric with the same label signature, making
// registration idempotent (re-registering returns the same instrument).
func (f *family) find(sig string) *metric {
	for _, m := range f.metrics {
		if m.sig == sig {
			return m
		}
	}
	return nil
}

// Counter registers (or returns the existing) counter under name with the
// given labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "counter")
	sig := labelSig(labels)
	if m := f.find(sig); m != nil {
		return m.ctr
	}
	m := &metric{labels: labels, sig: sig, ctr: &Counter{}}
	f.metrics = append(f.metrics, m)
	return m.ctr
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "gauge")
	sig := labelSig(labels)
	if m := f.find(sig); m != nil {
		return m.gauge
	}
	m := &metric{labels: labels, sig: sig, gauge: &Gauge{}}
	f.metrics = append(f.metrics, m)
	return m.gauge
}

// GaugeFunc registers a gauge whose value is read by calling fn at scrape
// time (for values that already live in an atomic elsewhere).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "gauge")
	sig := labelSig(labels)
	if f.find(sig) != nil {
		return
	}
	f.metrics = append(f.metrics, &metric{labels: labels, sig: sig, gfn: fn})
}

// Histogram registers (or returns the existing) histogram under name with
// the given ascending bucket upper bounds (seconds for latency metrics).
// A +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "histogram")
	sig := labelSig(labels)
	if m := f.find(sig); m != nil {
		return m.hist
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds))}
	f.metrics = append(f.metrics, &metric{labels: labels, sig: sig, hist: h})
	return h
}

// Collect registers a callback producing samples for name at scrape time.
// typ must be "counter" or "gauge". Used for state that lives outside the
// registry (server atomics, breaker status tables); the callback must
// return monotonically non-decreasing values for counters.
func (r *Registry) Collect(name, help, typ string, fn func() []Sample) {
	if typ != "counter" && typ != "gauge" {
		panic(fmt.Sprintf("obs: collector %q has invalid type %q", name, typ))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typ)
	f.collect = append(f.collect, fn)
}
