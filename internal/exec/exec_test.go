package exec

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewPoolDefaults(t *testing.T) {
	if got := NewPool(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(0) workers %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewPool(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(-3) workers %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewPool(7).Workers(); got != 7 {
		t.Fatalf("NewPool(7) workers %d", got)
	}
	// Oversubscription beyond GOMAXPROCS is deliberate (I/O-bound UDFs).
	if got := NewPool(1000).Workers(); got != 1000 {
		t.Fatalf("NewPool(1000) workers %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 10000
		counts := make([]atomic.Int32, n)
		NewPool(workers).ForEach(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	// Parallelism 1 must preserve strict index order on the calling
	// goroutine — the legacy-behavior contract.
	var order []int
	NewPool(1).ForEach(100, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
	if len(order) != 100 {
		t.Fatalf("visited %d of 100", len(order))
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	NewPool(4).ForEach(0, func(int) { called = true })
	NewPool(4).ForEach(-5, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty batch")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				pe, ok := recover().(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered non-PanicError", workers)
				}
				if pe.Value != "boom" {
					t.Fatalf("workers=%d: panic value %v, want boom", workers, pe.Value)
				}
				// The stack must point at the panicking work item, not at
				// the pool's re-panic site.
				if !strings.Contains(string(pe.Stack), "TestForEachPanicPropagates") {
					t.Fatalf("workers=%d: stack does not reach the panicking fn:\n%s", workers, pe.Stack)
				}
				if !strings.Contains(pe.Error(), "boom") {
					t.Fatalf("workers=%d: Error() lost the panic value: %q", workers, pe.Error())
				}
			}()
			NewPool(workers).ForEach(100, func(i int) {
				if i == 37 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: no panic", workers)
		}()
	}
}

func TestForEachPanicStopsClaimingWork(t *testing.T) {
	// After an early panic, the batch must not be fully drained: workers
	// stop claiming chunks once the panic is recorded. Run enough items
	// that full drainage would be detected reliably.
	const n = 100000
	var executed atomic.Int64
	func() {
		defer func() { _ = recover() }()
		NewPool(4).ForEach(n, func(i int) {
			if i == 0 {
				panic("early")
			}
			executed.Add(1)
		})
	}()
	if got := executed.Load(); got >= n-1 {
		t.Fatalf("all %d items ran despite early panic", got)
	}
}

func TestForEachConcurrencyCap(t *testing.T) {
	const workers = 4
	var cur, peak atomic.Int32
	var mu sync.Mutex
	NewPool(workers).ForEach(200, func(int) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent invocations, cap %d", p, workers)
	}
}

func TestEvalRowsOrder(t *testing.T) {
	rows := []int{5, 3, 8, 1, 9, 2}
	got := NewPool(8).EvalRows(rows, func(r int) bool { return r%2 == 1 })
	want := []bool{true, true, false, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdicts %v, want %v", got, want)
		}
	}
	if out := NewPool(3).EvalRows(nil, func(int) bool { return true }); len(out) != 0 {
		t.Fatalf("empty input produced %v", out)
	}
}

func TestForEachCtxNilErrorOnCompletion(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := NewPool(workers).ForEachCtx(context.Background(), 500, func(int) { ran.Add(1) })
		if err != nil {
			t.Fatalf("workers=%d: err %v", workers, err)
		}
		if ran.Load() != 500 {
			t.Fatalf("workers=%d: ran %d of 500", workers, ran.Load())
		}
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		called := atomic.Bool{}
		err := NewPool(workers).ForEachCtx(ctx, 100, func(int) { called.Store(true) })
		if err != context.Canceled {
			t.Fatalf("workers=%d: err %v, want context.Canceled", workers, err)
		}
		if called.Load() {
			t.Fatalf("workers=%d: fn ran under a dead context", workers)
		}
	}
}

func TestForEachCtxCancelStopsPromptly(t *testing.T) {
	// Items block until released; after a cancel each worker may finish only
	// the one item it had in flight, so the executed count is bounded by
	// (items started before cancel) ≤ workers.
	const workers, n = 4, 100000
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	firstIn := make(chan struct{}, 1)
	err := func() error {
		go func() {
			<-firstIn
			cancel()
			close(release)
		}()
		return NewPool(workers).ForEachCtx(ctx, n, func(int) {
			if started.Add(1) == 1 {
				firstIn <- struct{}{}
			}
			<-release
		})
	}()
	if err != context.Canceled {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	// Each worker had at most one item in flight when the cancel landed;
	// nothing new may start afterwards beyond those already claimed.
	if got := started.Load(); got > workers {
		t.Fatalf("%d items ran; cancellation allows at most %d in-flight", got, workers)
	}
}

func TestEvalRowsCtxWithholdsPartialVerdicts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rows := make([]int, 1000)
	for i := range rows {
		rows[i] = i
	}
	var n atomic.Int64
	out, err := NewPool(2).EvalRowsCtx(ctx, rows, func(r int) bool {
		if n.Add(1) == 10 {
			cancel()
		}
		return true
	})
	if err != context.Canceled {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("cancelled batch returned verdicts %v", out[:5])
	}
	// Sequential path too.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var m int
	out, err = NewPool(1).EvalRowsCtx(ctx2, rows, func(r int) bool {
		m++
		if m == 5 {
			cancel2()
		}
		return true
	})
	if err != context.Canceled || out != nil {
		t.Fatalf("sequential cancel: out %v err %v", out, err)
	}
	if m != 5 {
		t.Fatalf("sequential path ran %d items past the cancel", m)
	}
}
