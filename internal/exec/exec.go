// Package exec is the parallel-evaluation substrate: a small worker pool
// that fans independent work items (UDF invocations, almost always) across
// goroutines and merges results back in item order, so callers get
// bit-for-bit deterministic output regardless of the parallelism level.
//
// The design deliberately keeps all randomness and planning OUT of this
// package: callers run a sequential plan phase that draws every random coin
// and emits a work-list, then hand the work-list here for evaluation. The
// pool only decides which goroutine runs which item, which affects wall
// clock but never results — each item's output lands at its own index.
//
// Worker count is exactly the requested parallelism (bounded below by 1 and
// above by the number of items). It is intentionally NOT clamped to
// runtime.GOMAXPROCS: expensive predicates are frequently I/O-bound (remote
// services, human labeling, disk), where oversubscribing cores is the whole
// point. CPU-bound callers should pass runtime.GOMAXPROCS(0).
//
// Cancellation: the Ctx variants accept a context.Context and check it
// between work items, so a cancel stops the batch after at most one
// in-flight item per worker. A cancelled batch returns ctx.Err() and its
// partial outputs must be discarded — items that did run completed fully
// (an item is never abandoned mid-call), which is what keeps caller-side
// memoization and shared caches consistent after a cancel.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is what the pool re-panics with when a work item panics: the
// original panic value plus the stack of the panicking goroutine, captured
// inside the worker's recover (before the frames unwind), so post-mortems
// point at the UDF body rather than at the pool's re-panic site.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value with its originating stack.
func (p *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n\n%s", p.Value, p.Stack)
}

// Pool runs batches of independent work items on up to a fixed number of
// concurrent workers. The zero value is not useful; use NewPool. A Pool is
// stateless between calls (workers live only for the duration of one batch)
// and is safe for concurrent use.
type Pool struct {
	workers int
}

// NewPool returns a pool of the given parallelism. Non-positive values
// default to runtime.GOMAXPROCS(0).
func NewPool(parallelism int) *Pool {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: parallelism}
}

// Workers reports the pool's parallelism.
func (p *Pool) Workers() int { return p.workers }

// ForEach invokes fn(i) for every i in [0, n), using up to Workers()
// goroutines. It returns after all invocations complete. When parallelism
// is 1 (or n is 1) everything runs on the calling goroutine, byte-for-byte
// reproducing the legacy sequential behavior.
//
// fn must be safe for concurrent invocation when the pool's parallelism
// exceeds 1. If any invocation panics, no further chunks are claimed
// (in-flight chunks on other workers still finish) and the first captured
// panic is re-panicked on the calling goroutine as a *PanicError carrying
// the original value and the panicking goroutine's stack.
//
//predlint:allow ctxflow — uncancellable convenience form; cancellable callers use ForEachCtx
func (p *Pool) ForEach(n int, fn func(i int)) {
	// context.Background() is never cancelled, so the error is always nil.
	_ = p.ForEachCtx(context.Background(), n, fn)
}

// ForEachCtx is ForEach honoring a context: every worker checks ctx between
// work items, so after a cancel each worker finishes at most the one item
// it had in flight and stops claiming more. If the context ends before all
// n items ran, ForEachCtx returns ctx.Err(); items that did run completed
// fully (none are abandoned mid-call). Outputs of a cancelled batch are
// truncated, never reordered — but callers should discard them and
// propagate the error.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			runOne(i, fn)
		}
		return nil
	}
	// Workers claim fixed-size chunks off an atomic cursor. Chunking
	// amortizes the atomic op for cheap items while staying balanced for
	// expensive ones (at most workers·8 claims per batch).
	chunk := n / (w * 8)
	if chunk < 1 {
		chunk = 1
	}
	var (
		cursor    atomic.Int64
		wg        sync.WaitGroup
		cancelled atomic.Bool
		panicMu   sync.Mutex
		panicV    any
		panics    int
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				end := int(cursor.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				if !runChunk(ctx, start, end, fn, &cancelled, &panicMu, &panicV, &panics) {
					// Park the cursor past the end so idle workers stop
					// claiming chunks: once a panic or cancel is destined to
					// discard the batch, further expensive calls are pure
					// waste. In-flight chunks still finish their current item.
					cursor.Store(int64(n))
					return
				}
			}
		}()
	}
	wg.Wait()
	if panics > 0 {
		panic(panicV)
	}
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// runOne invokes one item on the calling goroutine, wrapping any panic in
// a *PanicError so sequential and parallel batches re-panic identically.
func runOne(i int, fn func(int)) {
	defer func() {
		if r := recover(); r != nil {
			if _, wrapped := r.(*PanicError); !wrapped {
				r = &PanicError{Value: r, Stack: debug.Stack()}
			}
			panic(r)
		}
	}()
	fn(i)
}

// runChunk executes one claimed chunk, checking the context before every
// item and recording the first panic; it reports whether the worker should
// keep claiming work.
func runChunk(ctx context.Context, start, end int, fn func(int), cancelled *atomic.Bool, mu *sync.Mutex, first *any, count *int) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			// Wrap with the panicking goroutine's stack (still intact here:
			// deferred recovery runs before the frames unwind). Nested pools
			// re-panic a *PanicError that is passed through untouched.
			if _, wrapped := r.(*PanicError); !wrapped {
				r = &PanicError{Value: r, Stack: debug.Stack()}
			}
			mu.Lock()
			if *count == 0 {
				*first = r
			}
			*count++
			mu.Unlock()
			ok = false
		}
	}()
	for i := start; i < end; i++ {
		if ctx.Err() != nil {
			cancelled.Store(true)
			return false
		}
		fn(i)
	}
	return true
}

// EvalRows evaluates pred over each row id and returns the verdicts in
// input order. This is the batch shape every UDF path uses: the caller's
// plan phase produces the row work-list, this fans the expensive calls out.
func (p *Pool) EvalRows(rows []int, pred func(row int) bool) []bool {
	out := make([]bool, len(rows))
	p.ForEach(len(rows), func(i int) { out[i] = pred(rows[i]) })
	return out
}

// EvalRowsCtx is EvalRows honoring a context. On cancellation it returns
// (nil, ctx.Err()): the partial verdicts are withheld so no caller can
// mistake a truncated batch for a complete one.
func (p *Pool) EvalRowsCtx(ctx context.Context, rows []int, pred func(row int) bool) ([]bool, error) {
	out := make([]bool, len(rows))
	if err := p.ForEachCtx(ctx, len(rows), func(i int) { out[i] = pred(rows[i]) }); err != nil {
		return nil, err
	}
	return out, nil
}
