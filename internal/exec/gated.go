package exec

import (
	"context"
	"fmt"
)

// Gated batch evaluation: the substrate beneath circuit-broken UDF
// invocation. A plain EvalRowsCtx batch fans every row out at once, which
// is perfect for healthy UDFs but gives a circuit breaker nothing to act
// on — by the time outcomes exist, every call has already been made. The
// gated variant splits the batch into segments that act as barriers: the
// gate decides BEFORE each segment which rows may invoke (denied rows are
// resolved by the caller's deny callback, sequentially), the admitted rows
// fan out in parallel, and the outcomes fold back into the gate in row
// order AFTER the segment. All gate interaction happens on the calling
// goroutine, so gate state — and therefore every admit/deny decision — is
// a pure function of the outcome sequence, bit-for-bit identical at any
// parallelism level.

// Gate steers a gated batch. Implementations (e.g. resilience.Breaker)
// need not be goroutine-safe for the batch's sake — all three methods are
// called from the batch's calling goroutine — but typically are, so one
// gate can serve many queries.
type Gate interface {
	// Segment returns the barrier width for the next segment: 0 means "no
	// segmentation" (the remaining batch runs as one wave). Called at each
	// segment boundary, so a gate can switch widths mid-batch.
	Segment() int
	// Plan reports, for each of the next n rows in order, whether the row
	// may invoke.
	Plan(n int) []bool
	// Record folds one admitted row's outcome, in row order.
	Record(failed bool)
}

// EvalRowsGatedCtx evaluates rows with per-row failure reporting and an
// optional gate. eval is invoked for admitted rows (concurrently, up to
// the pool's width) and returns (verdict, failed); deny resolves denied
// rows without invoking (e.g. from a memo or cache) and is called
// sequentially on the calling goroutine. A nil gate admits everything in
// one wave. On cancellation both slices are withheld: (nil, nil, ctx.Err()).
//
// The verdicts and failed slices are index-aligned with rows; a failed row
// always carries verdict false.
func (p *Pool) EvalRowsGatedCtx(
	ctx context.Context,
	rows []int,
	gate Gate,
	eval func(ctx context.Context, row int) (verdict, failed bool),
	deny func(row int) (verdict, failed bool),
) ([]bool, []bool, error) {
	n := len(rows)
	verdicts := make([]bool, n)
	failed := make([]bool, n)
	for start := 0; start < n; {
		width := n - start
		if gate != nil {
			if s := gate.Segment(); s > 0 && s < width {
				width = s
			}
		}
		end := start + width

		var allowed []bool
		if gate != nil {
			allowed = gate.Plan(width)
			if len(allowed) != width {
				return nil, nil, fmt.Errorf("exec: gate planned %d of %d items", len(allowed), width)
			}
		}

		// Resolve denied rows sequentially, collect the admitted work-list.
		var work []int // indices into rows, segment-relative ordering kept
		for i := start; i < end; i++ {
			if allowed == nil || allowed[i-start] {
				work = append(work, i)
				continue
			}
			verdicts[i], failed[i] = deny(rows[i])
		}

		// Fan the admitted rows out; verdicts land at their own index.
		err := p.ForEachCtx(ctx, len(work), func(k int) {
			i := work[k]
			verdicts[i], failed[i] = eval(ctx, rows[i])
		})
		if err == nil && len(work) == 0 {
			// A fully-denied segment makes no ctx checks; normalize so a
			// cancelled caller can't spin through deny-only segments.
			err = ctx.Err()
		}
		if err != nil {
			return nil, nil, err
		}

		// Fold admitted outcomes back in row order.
		if gate != nil {
			for _, i := range work {
				gate.Record(failed[i])
			}
		}
		start = end
	}
	return verdicts, failed, nil
}
