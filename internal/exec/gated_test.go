package exec

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// scriptGate is a deterministic Gate that denies a fixed set of rows (by
// plan position) and records the fold order.
type scriptGate struct {
	mu      sync.Mutex
	segment int
	deny    map[int]bool // plan position → denied
	planned int
	folds   []bool
}

func (g *scriptGate) Segment() int { return g.segment }

func (g *scriptGate) Plan(n int) []bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	allowed := make([]bool, n)
	for i := range allowed {
		allowed[i] = !g.deny[g.planned]
		g.planned++
	}
	return allowed
}

func (g *scriptGate) Record(failed bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.folds = append(g.folds, failed)
}

func TestEvalRowsGatedNilGateMatchesPlain(t *testing.T) {
	rows := []int{3, 1, 4, 1, 5, 9, 2, 6}
	verdicts, failed, err := NewPool(4).EvalRowsGatedCtx(context.Background(), rows, nil,
		func(_ context.Context, row int) (bool, bool) { return row%2 == 0, row == 9 },
		func(int) (bool, bool) { t.Fatal("deny must not run without a gate"); return false, false },
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if verdicts[i] != (row%2 == 0) || failed[i] != (row == 9) {
			t.Fatalf("row %d: verdict=%v failed=%v", row, verdicts[i], failed[i])
		}
	}
}

func TestEvalRowsGatedDeniedRowsUseDeny(t *testing.T) {
	rows := []int{10, 11, 12, 13, 14, 15}
	gate := &scriptGate{segment: 2, deny: map[int]bool{1: true, 4: true}}
	var evaluated []int
	var mu sync.Mutex
	verdicts, failed, err := NewPool(3).EvalRowsGatedCtx(context.Background(), rows, gate,
		func(_ context.Context, row int) (bool, bool) {
			mu.Lock()
			evaluated = append(evaluated, row)
			mu.Unlock()
			return true, false
		},
		func(row int) (bool, bool) { return false, true }, // denied = failed
	)
	if err != nil {
		t.Fatal(err)
	}
	wantDenied := map[int]bool{11: true, 14: true}
	for i, row := range rows {
		if wantDenied[row] != failed[i] || wantDenied[row] == verdicts[i] {
			t.Fatalf("row %d: verdict=%v failed=%v, denied=%v", row, verdicts[i], failed[i], wantDenied[row])
		}
	}
	if len(evaluated) != 4 {
		t.Fatalf("evaluated %d rows, want 4 (2 denied)", len(evaluated))
	}
	// Only admitted rows fold, in row order, one per admitted row.
	if len(gate.folds) != 4 {
		t.Fatalf("folded %d outcomes, want 4", len(gate.folds))
	}
}

func TestEvalRowsGatedDeterministicAcrossParallelism(t *testing.T) {
	rows := make([]int, 100)
	for i := range rows {
		rows[i] = i
	}
	run := func(workers int) ([]bool, []bool, []bool) {
		gate := &scriptGate{segment: 7, deny: map[int]bool{5: true, 50: true, 51: true, 98: true}}
		verdicts, failed, err := NewPool(workers).EvalRowsGatedCtx(context.Background(), rows, gate,
			func(_ context.Context, row int) (bool, bool) { return row%3 == 0, row%10 == 4 },
			func(int) (bool, bool) { return false, true },
		)
		if err != nil {
			t.Fatal(err)
		}
		return verdicts, failed, gate.folds
	}
	v1, f1, folds1 := run(1)
	v8, f8, folds8 := run(8)
	for i := range rows {
		if v1[i] != v8[i] || f1[i] != f8[i] {
			t.Fatalf("row %d differs across parallelism: (%v,%v) vs (%v,%v)", i, v1[i], f1[i], v8[i], f8[i])
		}
	}
	if len(folds1) != len(folds8) {
		t.Fatalf("fold counts differ: %d vs %d", len(folds1), len(folds8))
	}
	for i := range folds1 {
		if folds1[i] != folds8[i] {
			t.Fatalf("fold %d differs across parallelism", i)
		}
	}
}

func TestEvalRowsGatedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows := []int{1, 2, 3}
	v, f, err := NewPool(2).EvalRowsGatedCtx(ctx, rows, nil,
		func(_ context.Context, _ int) (bool, bool) { return true, false },
		func(int) (bool, bool) { return false, true },
	)
	if !errors.Is(err, context.Canceled) || v != nil || f != nil {
		t.Fatalf("got v=%v f=%v err=%v, want withheld slices and context.Canceled", v, f, err)
	}
}

// denyAllGate denies everything forever: without the deny-only ctx check a
// cancelled caller would spin through segments making no progress checks.
type denyAllGate struct{}

func (denyAllGate) Segment() int { return 4 }
func (denyAllGate) Plan(n int) []bool {
	return make([]bool, n)
}
func (denyAllGate) Record(bool) {}

func TestEvalRowsGatedDenyOnlySegmentsHonorCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows := make([]int, 1000)
	_, _, err := NewPool(2).EvalRowsGatedCtx(ctx, rows, denyAllGate{},
		func(_ context.Context, _ int) (bool, bool) { t.Fatal("nothing is admitted"); return false, false },
		func(int) (bool, bool) { return false, true },
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled even when every segment is deny-only", err)
	}
}
