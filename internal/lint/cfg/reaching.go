package cfg

import (
	"go/ast"
	"go/types"
)

// Defs maps each local variable to the set of nodes that may have
// defined its current value.
type Defs map[types.Object]map[ast.Node]bool

// ReachingDefs computes, for every block, which definitions of each
// variable may reach the block's entry. A definition is the statement
// that assigns: *ast.AssignStmt, *ast.IncDecStmt, *ast.RangeStmt (for
// its key/value) or *ast.ValueSpec. Variables live at function entry
// (parameters, captures) simply have no reaching definition until the
// first assignment — absence means "defined outside the graph".
func ReachingDefs(g *Graph, info *types.Info) map[*Block]Defs {
	bottom := func() Defs { return Defs{} }
	join := func(dst, src Defs) bool {
		changed := false
		for obj, nodes := range src {
			d := dst[obj]
			if d == nil {
				d = map[ast.Node]bool{}
				dst[obj] = d
			}
			for n := range nodes {
				if !d[n] {
					d[n] = true
					changed = true
				}
			}
		}
		return changed
	}
	transfer := func(b *Block, in Defs) Defs {
		out := cloneDefs(in)
		for _, n := range b.Nodes {
			for _, obj := range definedObjects(n, info) {
				out[obj] = map[ast.Node]bool{n: true}
			}
		}
		return out
	}
	return Forward(g, Defs{}, bottom, join, transfer)
}

func cloneDefs(d Defs) Defs {
	out := make(Defs, len(d))
	for obj, nodes := range d {
		m := make(map[ast.Node]bool, len(nodes))
		for n := range nodes {
			m[n] = true
		}
		out[obj] = m
	}
	return out
}

// definedObjects lists the variables a statement-level node (re)defines.
func definedObjects(n ast.Node, info *types.Info) []types.Object {
	var objs []types.Object
	addIdent := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := identObject(info, id); obj != nil {
			objs = append(objs, obj)
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			addIdent(lhs)
		}
	case *ast.IncDecStmt:
		addIdent(n.X)
	case *ast.RangeStmt:
		addIdent(n.Key)
		addIdent(n.Value)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						addIdent(name)
					}
				}
			}
		}
	}
	return objs
}

// identObject resolves an identifier to its variable object, whether
// the identifier defines it (:=, var) or re-assigns it.
func identObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
