package cfg

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// compile type-checks one source file and returns the named function's
// body plus the type info needed by the analyses.
func compile(t *testing.T, src, fn string) (*ast.BlockStmt, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fd.Body, info
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil
}

// reachesExit reports whether Exit is reachable from Entry.
func reachesExit(g *Graph) bool {
	seen := map[*Block]bool{}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		for _, s := range b.Succs {
			stack = append(stack, s)
		}
	}
	return seen[g.Exit]
}

// hasCycle reports whether the graph has any cycle (DFS with an
// on-stack marker).
func hasCycle(g *Graph) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	var visit func(b *Block) bool
	visit = func(b *Block) bool {
		color[b.Index] = gray
		for _, s := range b.Succs {
			switch color[s.Index] {
			case gray:
				return true
			case white:
				if visit(s) {
					return true
				}
			}
		}
		color[b.Index] = black
		return false
	}
	for _, b := range g.Blocks {
		if color[b.Index] == white && visit(b) {
			return true
		}
	}
	return false
}

func TestGraphShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
		// wantExit: Exit reachable from Entry.
		wantExit bool
		// wantLoop: the graph contains a cycle.
		wantLoop bool
	}{
		{"straight", `x = 1; _ = x`, true, false},
		{"if", `if c { x = 1 } else { x = 2 }; _ = x`, true, false},
		{"ifNoElse", `if c { x = 1 }; _ = x`, true, false},
		{"forCond", `for i := 0; i < x; i++ { x++ }`, true, true},
		{"forever", `for { x++ }`, false, true},
		{"foreverBreak", `for { if c { break }; x++ }`, true, true},
		{"rangeLoop", `for i := range xs { x += i }`, true, true},
		{"switchTag", `switch x { case 1: x = 2; case 2: x = 3; fallthrough; default: x = 4 }`, true, false},
		{"selectBlock", `select {}`, false, false},
		{"labeled", `L: for { for { continue L } }`, false, true},
		{"gotoFwd", `if c { goto done }; x = 1; done: x = 2`, true, false},
		{"panicPath", `if c { panic("boom") }; x = 1`, true, false},
		{"panicOnly", `panic("boom")`, false, false},
		{"returnEarly", `if c { return }; x = 1`, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := fmt.Sprintf(
				"package x\nvar c bool\nvar xs []int\nfunc f() { var x int; _ = x\n%s\n}", tc.body)
			body, _ := compile(t, src, "f")
			g := New(body)
			if got := reachesExit(g); got != tc.wantExit {
				t.Errorf("exit reachable = %v, want %v", got, tc.wantExit)
			}
			if hasLoop := hasCycle(g); hasLoop != tc.wantLoop {
				t.Errorf("cycle = %v, want %v", hasLoop, tc.wantLoop)
			}
			// Edge lists must be consistent both ways.
			for _, b := range g.Blocks {
				for _, s := range b.Succs {
					found := false
					for _, p := range s.Preds {
						if p == b {
							found = true
						}
					}
					if !found {
						t.Errorf("block %d missing pred edge from %d", s.Index, b.Index)
					}
				}
			}
		})
	}
}

func TestReachingDefsDiamond(t *testing.T) {
	src := `package x
var c bool
func f() int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}`
	body, info := compile(t, src, "f")
	g := New(body)
	defs := ReachingDefs(g, info)
	// At Exit entry, both branch assignments (but not the initial
	// definition) must reach x.
	var xObj types.Object
	for id, obj := range info.Defs {
		if id.Name == "x" && obj != nil {
			xObj = obj
		}
	}
	if xObj == nil {
		t.Fatal("x object not found")
	}
	got := defs[g.Exit][xObj]
	if len(got) != 2 {
		t.Fatalf("defs of x at exit = %d, want 2 (one per branch)", len(got))
	}
}

// escFixture wires the batchalias-shaped seed/tracks config over a test
// source: mk() seeds, *Buf / Buf / integer slices / nestings carry.
func escFixture(t *testing.T, src string) []Escape {
	t.Helper()
	body, info := compile(t, src, "f")
	g := New(body)
	var tracks func(types.Type) bool
	tracks = func(ty types.Type) bool {
		switch u := ty.(type) {
		case *types.Pointer:
			return tracks(u.Elem())
		case *types.Named:
			if u.Obj().Name() == "Buf" {
				return true
			}
			return tracks(u.Underlying())
		case *types.Slice:
			if b, ok := u.Elem().Underlying().(*types.Basic); ok {
				return b.Info()&types.IsInteger != 0
			}
			return tracks(u.Elem())
		}
		return false
	}
	return Escapes(g, TaintConfig{
		Info: info,
		Seed: func(call *ast.CallExpr) bool {
			if id, ok := call.Fun.(*ast.Ident); ok {
				return id.Name == "mk"
			}
			return false
		},
		Tracks: tracks,
	})
}

const escPrelude = `package x
type Buf struct{ Rows []int }
func mk() *Buf { return &Buf{} }
var global []int
type holder struct {
	buf  *Buf
	rows []int
	hist [][]int
}
func use(rows []int) int { return len(rows) }
`

func TestEscapes(t *testing.T) {
	cases := []struct {
		name string
		fn   string
		want []EscapeKind
	}{
		{"fieldStore", `func f(h *holder) { b := mk(); h.buf = b }`, []EscapeKind{EscapeStore}},
		{"rowsFieldStore", `func f(h *holder) { b := mk(); h.rows = b.Rows }`, []EscapeKind{EscapeStore}},
		{"appendRetain", `func f(h *holder) { b := mk(); h.hist = append(h.hist, b.Rows) }`, []EscapeKind{EscapeStore}},
		{"globalStore", `func f() { b := mk(); global = b.Rows }`, []EscapeKind{EscapeGlobal}},
		{"send", `func f(ch chan []int) { b := mk(); ch <- b.Rows }`, []EscapeKind{EscapeSend}},
		{"ret", `func f() []int { b := mk(); return b.Rows }`, []EscapeKind{EscapeReturn}},
		{"retSlice", `func f() []int { b := mk(); return b.Rows[1:] }`, []EscapeKind{EscapeReturn}},
		{"capture", `func f() func() int { b := mk(); return func() int { return len(b.Rows) } }`, []EscapeKind{EscapeCapture}},
		{"spawn", `func f(ch chan int) { b := mk(); go func(rows []int) { ch <- len(rows) }(b.Rows) }`, []EscapeKind{EscapeSpawn}},
		{"aliasThenStore", `func f(h *holder) { b := mk(); r := b.Rows; h.rows = r }`, []EscapeKind{EscapeStore}},
		{"loopStore", `func f(h *holder) { for { b := mk(); h.buf = b } }`, []EscapeKind{EscapeStore}},
		{"borrowCall", `func f() { b := mk(); _ = use(b.Rows) }`, nil},
		{"explicitCopy", `func f(h *holder) { b := mk(); h.rows = append([]int(nil), b.Rows...) }`, nil},
		{"killByReassign", `func f(h *holder) { b := mk(); _ = b; r := []int{1}; h.rows = r }`, nil},
		{"rangeBorrow", `func f() int { b := mk(); n := 0; for _, v := range b.Rows { n += v }; return n }`, nil},
		{"condStore", `func f(h *holder, c bool) { b := mk(); if c { h.buf = b } }`, []EscapeKind{EscapeStore}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			escs := escFixture(t, escPrelude+tc.fn)
			var got []string
			for _, e := range escs {
				got = append(got, string(e.Kind))
				if e.Seed == nil {
					t.Errorf("escape %v has no seed", e.Kind)
				}
			}
			var want []string
			for _, k := range tc.want {
				want = append(want, string(k))
			}
			if strings.Join(got, "|") != strings.Join(want, "|") {
				t.Errorf("escapes = %v, want %v", got, want)
			}
		})
	}
}
