package cfg

// Forward runs a forward may-analysis to fixpoint over g and returns
// the entry fact of every block.
//
// entry is the Entry block's initial fact; bottom produces the initial
// fact for every other block. join merges a predecessor's exit fact
// into a block's entry fact IN PLACE and reports whether the entry fact
// changed (facts are reference-shaped: maps or structs of maps).
// transfer computes a block's exit fact from its entry fact and must
// not mutate its input — it is re-invoked until fixpoint, so it must
// also be pure (collect diagnostics in a separate post-fixpoint walk
// over the returned entry facts, not inside transfer).
//
// Blocks are seeded onto the worklist in index order, so iteration
// order — and therefore any tie-breaking inside join — is
// deterministic for a given graph.
func Forward[T any](g *Graph, entry T, bottom func() T, join func(dst, src T) bool, transfer func(b *Block, in T) T) map[*Block]T {
	ins := make(map[*Block]T, len(g.Blocks))
	for _, blk := range g.Blocks {
		if blk == g.Entry {
			ins[blk] = entry
		} else {
			ins[blk] = bottom()
		}
	}
	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make([]bool, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		out := transfer(blk, ins[blk])
		for _, s := range blk.Succs {
			if join(ins[s], out) && !queued[s.Index] {
				work = append(work, s)
				queued[s.Index] = true
			}
		}
	}
	return ins
}
