// Package cfg is the flow-sensitive substrate under the predlint
// analyzers that check path properties instead of single statements
// (batchalias, spanbalance). It builds intra-procedural control-flow
// graphs over go/ast function bodies and provides a generic worklist
// dataflow engine (worklist.go), reaching definitions (reaching.go) and
// a conservative escape-lite taint lattice (escape.go) — all on the
// standard library, mirroring the x/tools go/analysis split the same way
// the loader in internal/lint does.
//
// The graphs are deliberately modest. A Block holds statement-level
// nodes in execution order; compound statements never appear in
// Block.Nodes except *ast.RangeStmt, which seats a loop header so
// analyses can model the per-iteration key/value definition (clients
// must look only at its Key/Value/X, never recurse into its Body).
// Function literals are opaque at this level: their bodies belong to
// their own graphs (analyzers visit every function, literals included),
// while the enclosing graph carries the literal as part of the statement
// that creates it, which is exactly what capture analyses need.
//
// Every return edges to the single synthetic Exit block, so "holds on
// all paths out of the function" is "holds at Exit entry". A call to the
// panic builtin terminates its path without reaching Exit: deferred
// cleanups still run during a panic, so treating panic as a normal exit
// would charge per-return cleanup patterns with leaks they cannot fix.
package cfg

import (
	"go/ast"
	"go/token"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first. It may carry nodes.
	Entry *Block
	// Exit is a synthetic, empty block every return path reaches.
	Exit *Block
	// Blocks lists all blocks, in creation (roughly source) order.
	// Blocks unreachable from Entry have no predecessors and simply
	// never accumulate dataflow facts.
	Blocks []*Block
}

// Block is a straight-line run of statement-level nodes.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// New builds the control-flow graph for one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: map[string]*Block{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit)
	return b.g
}

// scope is one enclosing breakable construct: loops carry a continue
// target, switch/select only a break target.
type scope struct {
	label     string
	brk, cont *Block
}

type builder struct {
	g *Graph
	// cur is the block under construction; nil after a terminator
	// (return, branch, panic) until the next statement revives it as an
	// unreachable block.
	cur          *Block
	scopes       []scope
	labels       map[string]*Block
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// current returns the block under construction, reviving dead control
// flow (statements after a terminator) as a fresh unreachable block.
func (b *builder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.current()
	blk.Nodes = append(blk.Nodes, n)
}

// label returns (creating on demand) the block that carries the named
// label, the target of both goto and the label's own fallthrough entry.
func (b *builder) label(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		blk := b.label(s.Label.Name)
		b.edge(b.current(), blk)
		b.cur = blk
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanic(call) {
			b.cur = nil
		}
	default:
		// Assignments, declarations, sends, incdec, defer, go, empty:
		// straight-line statement-level nodes.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.current()
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur
	var elseEnd *Block
	hasElse := s.Else != nil
	if hasElse {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}
	after := b.newBlock()
	if !hasElse {
		b.edge(cond, after)
	}
	b.edge(thenEnd, after)
	b.edge(elseEnd, after)
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.edge(b.current(), head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock()
	post := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		// A condition-less for only leaves via break/return.
		b.edge(head, after)
	}
	b.scopes = append(b.scopes, scope{label: label, brk: after, cont: post})
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, post)
	b.cur = post
	if s.Post != nil {
		b.stmt(s.Post)
	}
	b.edge(b.cur, head)
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	b.add(s.X)
	head := b.newBlock()
	b.edge(b.current(), head)
	// The RangeStmt itself seats the loop header: per-iteration
	// key/value definitions live here. See the package comment for the
	// "never recurse into its Body" contract.
	head.Nodes = append(head.Nodes, s)
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.scopes = append(b.scopes, scope{label: label, brk: after, cont: head})
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, head)
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

// switchStmt handles both expression and type switches; exactly one of
// tag (expression switch) and assign (type switch guard) is non-nil,
// and both may be nil for a bare switch.
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	header := b.current()
	after := b.newBlock()
	b.scopes = append(b.scopes, scope{label: label, brk: after})
	clauses := body.List
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.edge(header, blocks[i])
	}
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		stmts := cc.Body
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				stmts = stmts[:n-1]
				fallsThrough = true
			}
		}
		b.stmtList(stmts)
		if fallsThrough && i+1 < len(clauses) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, after)
		}
		b.cur = nil
	}
	if !hasDefault {
		b.edge(header, after)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	header := b.current()
	after := b.newBlock()
	b.scopes = append(b.scopes, scope{label: label, brk: after})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		blk := b.newBlock()
		b.edge(header, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
		b.cur = nil
	}
	// A clause-less select{} blocks forever: after stays unreachable,
	// which is exactly right.
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		b.edge(b.current(), b.findScope(s.Label, true))
	case token.CONTINUE:
		b.edge(b.current(), b.findScope(s.Label, false))
	case token.GOTO:
		if s.Label != nil {
			b.edge(b.current(), b.label(s.Label.Name))
		}
	case token.FALLTHROUGH:
		// Wired by switchStmt; a stray one (dead code) just ends the path.
	}
	b.cur = nil
}

// findScope resolves a break (brk=true) or continue target, honoring an
// optional label. Unlabeled continue skips non-loop scopes.
func (b *builder) findScope(label *ast.Ident, brk bool) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if label != nil && sc.label != label.Name {
			continue
		}
		if brk {
			return sc.brk
		}
		if sc.cont != nil {
			return sc.cont
		}
		if label != nil {
			return nil
		}
	}
	return nil
}

// isPanic matches a call to the panic builtin syntactically; a shadowed
// panic identifier is pathological enough to ignore at this layer.
func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
