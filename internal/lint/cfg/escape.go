package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EscapeKind classifies how a tracked value outlives the call that
// produced it.
type EscapeKind string

const (
	// EscapeStore: stored through a field, index, or pointer — a
	// location that can outlive the statement.
	EscapeStore EscapeKind = "stored in a longer-lived location"
	// EscapeGlobal: assigned to a package-level variable.
	EscapeGlobal EscapeKind = "stored in a package-level variable"
	// EscapeSend: sent on a channel.
	EscapeSend EscapeKind = "sent on a channel"
	// EscapeReturn: returned to the caller.
	EscapeReturn EscapeKind = "returned to the caller"
	// EscapeCapture: referenced from inside a function literal, which
	// may run after the value is invalidated.
	EscapeCapture EscapeKind = "captured by a function literal"
	// EscapeSpawn: passed as an argument to a spawned goroutine.
	EscapeSpawn EscapeKind = "passed to a spawned goroutine"
)

// Escape is one point where a tracked value leaks out of its producing
// call's extent.
type Escape struct {
	Pos  token.Pos
	Kind EscapeKind
	// Seed is the call expression that produced the escaping value.
	Seed *ast.CallExpr
}

// TaintConfig parameterizes the escape-lite analysis.
type TaintConfig struct {
	Info *types.Info
	// Seed reports whether a call freshly produces a tracked value
	// (e.g. a child operator's Next returning a reused *Batch).
	Seed func(call *ast.CallExpr) bool
	// Tracks reports whether a type can carry a tracked value — both
	// directly (the seed's own type) and transitively (a slice or
	// struct holding one). Expressions whose static type is not
	// trackable are never tainted, which is how element copies like
	// append(dst, src...) over basic element types launder taint.
	Tracks func(t types.Type) bool
}

// Escapes runs a forward may-taint analysis over g and reports every
// point where a seeded value escapes. The lattice is a set of tainted
// local variables (each mapped to its seed); taint propagates through
// assignment, selection, slicing, indexing, address-of, conversion,
// composite literals and append-from-tainted, and is killed by
// re-assignment from an untracked source. Ordinary calls borrow their
// arguments (callees are assumed not to retain — the contract this
// analysis enforces is exactly that retention is explicit), so only
// stores, sends, returns, goroutine hand-offs and closure captures
// count as escapes.
func Escapes(g *Graph, cfg TaintConfig) []Escape {
	a := &taint{cfg: cfg}
	bottom := func() taintFact { return taintFact{} }
	join := func(dst, src taintFact) bool {
		changed := false
		for obj, seed := range src {
			if _, ok := dst[obj]; !ok {
				dst[obj] = seed
				changed = true
			}
		}
		return changed
	}
	transfer := func(b *Block, in taintFact) taintFact {
		out := in.clone()
		for _, n := range b.Nodes {
			a.node(n, out, nil)
		}
		return out
	}
	ins := Forward(g, taintFact{}, bottom, join, transfer)

	// Post-fixpoint reporting walk: re-apply each block's transfer with
	// its final entry fact and collect escapes this time.
	seen := map[escKey]bool{}
	var out []Escape
	report := func(pos token.Pos, kind EscapeKind, seed *ast.CallExpr) {
		k := escKey{pos, kind}
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, Escape{Pos: pos, Kind: kind, Seed: seed})
	}
	for _, blk := range g.Blocks {
		fact := ins[blk].clone()
		for _, n := range blk.Nodes {
			a.node(n, fact, report)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

type escKey struct {
	pos  token.Pos
	kind EscapeKind
}

// taintFact maps a tainted local variable to the seed call it aliases.
type taintFact map[types.Object]*ast.CallExpr

func (f taintFact) clone() taintFact {
	out := make(taintFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

type taint struct {
	cfg TaintConfig
}

type reportFunc func(pos token.Pos, kind EscapeKind, seed *ast.CallExpr)

// node applies one statement-level node to the fact, reporting escapes
// when report is non-nil (the post-fixpoint walk) and staying silent
// during fixpoint iteration.
func (a *taint) node(n ast.Node, fact taintFact, report reportFunc) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(n, fact, report)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					a.valueSpec(vs, fact, report)
				}
			}
		}
	case *ast.RangeStmt:
		// Loop header only: the body's statements live in their own
		// blocks (see the cfg package contract), so scan just X for
		// captures and return.
		a.rangeHeader(n, fact)
		a.captures(n.X, fact, report)
		return
	case *ast.SendStmt:
		if seed := a.taintOf(n.Value, fact); seed != nil {
			a.report(report, n.Pos(), EscapeSend, seed)
		}
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if seed := a.taintOf(res, fact); seed != nil {
				a.report(report, res.Pos(), EscapeReturn, seed)
			}
		}
	case *ast.GoStmt:
		for _, arg := range n.Call.Args {
			if seed := a.taintOf(arg, fact); seed != nil {
				a.report(report, arg.Pos(), EscapeSpawn, seed)
			}
		}
	}
	a.captures(n, fact, report)
}

// captures flags references to tainted variables from inside function
// literals anywhere under n: the literal may run after the producing
// call's next invocation invalidates the value.
func (a *taint) captures(n ast.Node, fact taintFact, report reportFunc) {
	if report == nil || len(fact) == 0 {
		return
	}
	ast.Inspect(n, func(child ast.Node) bool {
		lit, ok := child.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			id, ok := inner.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := a.cfg.Info.Uses[id]; obj != nil {
				if seed, tainted := fact[obj]; tainted {
					a.report(report, id.Pos(), EscapeCapture, seed)
				}
			}
			return true
		})
		return false
	})
}

func (a *taint) report(report reportFunc, pos token.Pos, kind EscapeKind, seed *ast.CallExpr) {
	if report != nil {
		report(pos, kind, seed)
	}
}

func (a *taint) assign(n *ast.AssignStmt, fact taintFact, report reportFunc) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// Compound assignment (+= etc.) cannot move a reference-shaped
		// tracked value wholesale; leave the fact alone.
		return
	}
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		// Tuple assignment from a call: taint every result whose type
		// can carry the tracked value when the call is a seed.
		var seed *ast.CallExpr
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && a.cfg.Seed(call) {
			seed = call
		}
		for _, lhs := range n.Lhs {
			s := seed
			if s != nil && !a.tracks(lhs) {
				s = nil
			}
			a.assignOne(lhs, s, fact, report)
		}
		return
	}
	for i, lhs := range n.Lhs {
		var seed *ast.CallExpr
		if i < len(n.Rhs) {
			seed = a.taintOf(n.Rhs[i], fact)
		}
		a.assignOne(lhs, seed, fact, report)
	}
}

func (a *taint) valueSpec(vs *ast.ValueSpec, fact taintFact, report reportFunc) {
	for i, name := range vs.Names {
		var seed *ast.CallExpr
		if i < len(vs.Values) {
			seed = a.taintOf(vs.Values[i], fact)
		} else if len(vs.Values) == 1 && len(vs.Names) > 1 {
			if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok && a.cfg.Seed(call) && a.tracks(name) {
				seed = call
			}
		}
		a.assignOne(name, seed, fact, report)
	}
}

// assignOne applies one lhs ← seed binding: idents gain or lose taint,
// and any store destination that is not a plain local becomes an escape
// when the stored value is tainted.
func (a *taint) assignOne(lhs ast.Expr, seed *ast.CallExpr, fact taintFact, report reportFunc) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := identObject(a.cfg.Info, l)
		if obj == nil {
			return
		}
		if seed == nil {
			delete(fact, obj)
			return
		}
		if isPkgLevel(obj) {
			a.report(report, l.Pos(), EscapeGlobal, seed)
			return
		}
		fact[obj] = seed
	default:
		if seed != nil {
			a.report(report, lhs.Pos(), EscapeStore, seed)
		}
	}
}

// rangeHeader models the per-iteration key/value definitions of a range
// loop: ranging over a tainted container taints a trackable value
// variable; otherwise the loop variables are killed.
func (a *taint) rangeHeader(n *ast.RangeStmt, fact taintFact) {
	seed := a.taintOf(n.X, fact)
	bind := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := identObject(a.cfg.Info, id)
		if obj == nil {
			return
		}
		if seed != nil && a.tracks(id) {
			fact[obj] = seed
		} else {
			delete(fact, obj)
		}
	}
	if n.Key != nil {
		bind(n.Key)
	}
	if n.Value != nil {
		bind(n.Value)
	}
}

// taintOf returns the seed call a value expression may alias, or nil.
func (a *taint) taintOf(e ast.Expr, fact taintFact) *ast.CallExpr {
	if e == nil || !a.tracks(e) {
		return nil
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := identObject(a.cfg.Info, e); obj != nil {
			return fact[obj]
		}
	case *ast.ParenExpr:
		return a.taintOf(e.X, fact)
	case *ast.SelectorExpr:
		// A field of a tainted struct (b.Rows) shares its backing store.
		return a.taintOf(e.X, fact)
	case *ast.SliceExpr:
		return a.taintOf(e.X, fact)
	case *ast.IndexExpr:
		return a.taintOf(e.X, fact)
	case *ast.StarExpr:
		return a.taintOf(e.X, fact)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return a.taintOf(e.X, fact)
		}
	case *ast.TypeAssertExpr:
		return a.taintOf(e.X, fact)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if seed := a.taintOf(el, fact); seed != nil {
				return seed
			}
		}
	case *ast.CallExpr:
		return a.callTaint(e, fact)
	}
	return nil
}

func (a *taint) callTaint(call *ast.CallExpr, fact taintFact) *ast.CallExpr {
	if a.cfg.Seed(call) {
		return call
	}
	info := a.cfg.Info
	// Conversions pass their operand through unchanged.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return a.taintOf(call.Args[0], fact)
	}
	// append: the result shares the destination's backing array, and —
	// only when the element type itself can carry the tracked value —
	// aliases the appended elements too. Appending basic elements
	// (append([]int(nil), b.Rows...)) copies them: that is the
	// sanctioned "explicit copy" idiom and stays clean.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if seed := a.taintOf(call.Args[0], fact); seed != nil {
				return seed
			}
			for _, arg := range call.Args[1:] {
				seed := a.taintOf(arg, fact)
				if seed == nil {
					continue
				}
				if call.Ellipsis.IsValid() {
					// append(dst, src...): element values are copied;
					// they alias only if the element type is trackable.
					if sl, ok := info.TypeOf(arg).Underlying().(*types.Slice); ok && a.cfg.Tracks(sl.Elem()) {
						return seed
					}
					continue
				}
				return seed
			}
		}
	}
	// All other calls return fresh values; their arguments are borrows.
	return nil
}

// tracks reports whether the expression's static type can carry a
// tracked value.
func (a *taint) tracks(e ast.Expr) bool {
	t := a.cfg.Info.TypeOf(e)
	return t != nil && a.cfg.Tracks(t)
}

func isPkgLevel(obj types.Object) bool {
	scope := obj.Parent()
	return scope != nil && scope.Parent() == types.Universe
}
