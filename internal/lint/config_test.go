package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestDefaultTargetsObsCarveOut pins the observability determinism
// contract at the config level: detrand covers every result-producing
// package but NOT repro/internal/obs, the single sanctioned wall-clock
// site. Combined with the rules-level detrand test (time.Now is always
// flagged where the analyzer runs), this proves a time.Now() outside
// internal/obs fails the suite without any //predlint:allow escape hatch.
func TestDefaultTargetsObsCarveOut(t *testing.T) {
	targets := lint.DefaultTargets()
	detrand := targets["detrand"]
	if detrand == nil {
		t.Fatal("no detrand target")
	}
	for _, pkg := range []string{
		"repro", "repro/internal/core", "repro/internal/engine",
		"repro/internal/plan", "repro/internal/exec", "repro/internal/resilience",
	} {
		if !detrand.Match(pkg) {
			t.Errorf("detrand must cover %s", pkg)
		}
	}
	if detrand.Match("repro/internal/obs") {
		t.Error("detrand covers repro/internal/obs: the sanctioned clock package must be carved out here, not via //predlint:allow")
	}

	maporder := targets["maporder"]
	if maporder == nil {
		t.Fatal("no maporder target")
	}
	if !maporder.Match("repro/internal/obs") {
		t.Error("maporder must cover repro/internal/obs: exposition output is built from maps")
	}
}
