package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestDefaultTargetsObsCarveOut pins the observability determinism
// contract at the config level: detrand covers every result-producing
// package but NOT repro/internal/obs, the single sanctioned wall-clock
// site. Combined with the rules-level detrand test (time.Now is always
// flagged where the analyzer runs), this proves a time.Now() outside
// internal/obs fails the suite without any //predlint:allow escape hatch.
func TestDefaultTargetsObsCarveOut(t *testing.T) {
	targets := lint.DefaultTargets()
	detrand := targets["detrand"]
	if detrand == nil {
		t.Fatal("no detrand target")
	}
	for _, pkg := range []string{
		"repro", "repro/internal/core", "repro/internal/engine",
		"repro/internal/plan", "repro/internal/exec", "repro/internal/resilience",
	} {
		if !detrand.Match(pkg) {
			t.Errorf("detrand must cover %s", pkg)
		}
	}
	if detrand.Match("repro/internal/obs") {
		t.Error("detrand covers repro/internal/obs: the sanctioned clock package must be carved out here, not via //predlint:allow")
	}

	maporder := targets["maporder"]
	if maporder == nil {
		t.Fatal("no maporder target")
	}
	if !maporder.Match("repro/internal/obs") {
		t.Error("maporder must cover repro/internal/obs: exposition output is built from maps")
	}
}

// TestDefaultTargetsCoverBatchPipeline pins that the batch iterator code
// paths introduced with the Volcano executor stay under the determinism
// and context-flow analyzers: the batch operators (internal/engine), the
// wave runner (internal/core), the plan shapes they compile from
// (internal/plan), the pool they fan out through (internal/exec) and the
// public streaming API (the module root, "") are all detrand, maporder
// AND ctxflow targets. A batch operator that grabbed wall-clock time,
// ranged a map into an emitted batch, or dropped the context on its
// Open/Next path must fail the suite.
func TestDefaultTargetsCoverBatchPipeline(t *testing.T) {
	targets := lint.DefaultTargets()
	batchPath := []string{
		"repro", "repro/internal/core", "repro/internal/engine",
		"repro/internal/plan", "repro/internal/exec",
	}
	for _, analyzer := range []string{"detrand", "maporder", "ctxflow"} {
		target := targets[analyzer]
		if target == nil {
			t.Fatalf("no %s target", analyzer)
		}
		for _, pkg := range batchPath {
			if !target.Match(pkg) {
				t.Errorf("%s must cover %s: the batch pipeline lives there", analyzer, pkg)
			}
		}
	}
}
