package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Result is one predlint run over a set of packages.
type Result struct {
	// Findings are the surviving (unsuppressed) violations plus any
	// malformed directives, sorted by position. A non-empty slice means the
	// run fails.
	Findings []Finding `json:"findings"`
	// Suppressed counts findings covered by //predlint:allow directives.
	Suppressed int `json:"suppressed"`
	// Directives counts well-formed //predlint:allow directives seen, so
	// suppression creep is visible even when directives are broad.
	Directives int `json:"directives"`
	// Packages counts analyzed packages.
	Packages int `json:"packages"`
	// Analyzers names the suite that ran, in run order.
	Analyzers []string `json:"analyzers"`
	// DirectiveUses itemizes every well-formed directive with its
	// per-run suppression count, so -json consumers can audit exactly
	// which exceptions are load-bearing. Sorted by (file, line).
	DirectiveUses []DirectiveUse `json:"directive_uses"`
}

// DirectiveUse is one well-formed //predlint:allow directive and how
// many findings it suppressed in this run.
type DirectiveUse struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
	Uses      int      `json:"uses"`
}

// Options tunes a Run.
type Options struct {
	// Strict reports never-used //predlint:allow directives as findings
	// under the pseudo-analyzer "predlint" (like malformed directives,
	// they are not themselves suppressible). CI runs strict so stale
	// suppressions rot loudly instead of silently widening the allowed
	// surface. A directive only counts as stale when every analyzer it
	// names actually ran — filtered runs (-only/-skip) cannot produce
	// false staleness.
	Strict bool
	// KnownAnalyzers names the full analyzer universe for directive
	// validation. When the run suite is filtered (-only/-skip), a
	// directive naming a known-but-not-run analyzer must be neither
	// "unknown" nor stale; empty means the run suite is the universe.
	KnownAnalyzers []string
}

// Summary renders the one-line report CI prints win or lose, e.g.
//
//	predlint: 0 findings, 14 suppressed by 12 directives, 6 analyzers over 18 packages
func (r Result) Summary() string {
	return fmt.Sprintf("predlint: %d findings, %d suppressed by %d directives, %d analyzers over %d packages",
		len(r.Findings), r.Suppressed, r.Directives, len(r.Analyzers), r.Packages)
}

// Run applies the suite to pkgs. targets maps analyzer name to the package
// selector deciding where it applies (nil selector = everywhere). baseDir,
// when non-empty, roots finding file paths (module-relative paths keep
// output stable across checkouts).
func Run(pkgs []*Package, suite []*Analyzer, targets map[string]*Target, baseDir string, opts Options) (Result, error) {
	ran := make(map[string]bool, len(suite))
	res := Result{Packages: len(pkgs)}
	for _, a := range suite {
		ran[a.Name] = true
		res.Analyzers = append(res.Analyzers, a.Name)
	}
	known := ran
	if len(opts.KnownAnalyzers) > 0 {
		known = make(map[string]bool, len(opts.KnownAnalyzers))
		for _, n := range opts.KnownAnalyzers {
			known[n] = true
		}
	}

	var raw []Finding
	var rawPos []token.Pos // parallel to raw, for function-scoped suppression
	sup := &suppressor{}
	for _, pkg := range pkgs {
		sup.collectDirectives(pkg.Fset, pkg.Files, known)
		for _, a := range suite {
			if t := targets[a.Name]; t != nil && !t.Match(pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.PkgPath,
			}
			if err := a.Run(pass); err != nil {
				return Result{}, fmt.Errorf("lint: analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range pass.diags {
				p := pkg.Fset.Position(d.Pos)
				raw = append(raw, Finding{
					File:     p.Filename,
					Line:     p.Line,
					Col:      p.Column,
					Analyzer: a.Name,
					Message:  d.Message,
				})
				rawPos = append(rawPos, d.Pos)
			}
		}
	}

	var surviving []Finding
	for i, f := range raw {
		if sup.suppress(f, rawPos[i]) {
			continue
		}
		surviving = append(surviving, f)
	}
	surviving = append(surviving, sup.invalid...)
	if opts.Strict {
		surviving = append(surviving, sup.stale(ran)...)
	}
	res.DirectiveUses = sup.uses()
	if baseDir != "" {
		for i := range surviving {
			if rel, err := filepath.Rel(baseDir, surviving[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				surviving[i].File = rel
			}
		}
		for i := range res.DirectiveUses {
			if rel, err := filepath.Rel(baseDir, res.DirectiveUses[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				res.DirectiveUses[i].File = rel
			}
		}
	}
	sort.Slice(res.DirectiveUses, func(i, j int) bool {
		a, b := res.DirectiveUses[i], res.DirectiveUses[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	if res.DirectiveUses == nil {
		res.DirectiveUses = []DirectiveUse{}
	}
	sortFindings(surviving)
	res.Findings = dedupeFindings(surviving)
	if res.Findings == nil {
		res.Findings = []Finding{} // a clean run marshals as [], not null
	}
	res.Suppressed, res.Directives = sup.counts()
	return res, nil
}

// RunSingle applies one analyzer to one package and returns its raw
// diagnostics, before suppression — the entry point linttest harnesses
// use to assert on exactly what an analyzer reports.
func RunSingle(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		PkgPath:  pkg.PkgPath,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return pass.diags, nil
}

// Target selects the packages an analyzer applies to by module-relative
// import-path prefix. Include "" matches the module root package.
type Target struct {
	// Module is the module path prefix stripped before matching (e.g.
	// "repro"). Packages outside Module never match.
	Module string
	// Include lists path prefixes (after stripping Module) the analyzer
	// covers; empty means every package in Module.
	Include []string
	// Exclude lists path prefixes carved out of Include.
	Exclude []string
}

// Match reports whether the analyzer applies to pkgPath.
func (t *Target) Match(pkgPath string) bool {
	rel, ok := moduleRel(t.Module, pkgPath)
	if !ok {
		return false
	}
	for _, e := range t.Exclude {
		if prefixMatch(e, rel) {
			return false
		}
	}
	if len(t.Include) == 0 {
		return true
	}
	for _, inc := range t.Include {
		if prefixMatch(inc, rel) {
			return true
		}
	}
	return false
}

// moduleRel strips the module prefix: ("repro", "repro/internal/core") →
// ("internal/core", true); the root package maps to "".
func moduleRel(module, pkgPath string) (string, bool) {
	if pkgPath == module {
		return "", true
	}
	if strings.HasPrefix(pkgPath, module+"/") {
		return pkgPath[len(module)+1:], true
	}
	return "", false
}

// prefixMatch reports whether rel equals prefix or sits beneath it.
func prefixMatch(prefix, rel string) bool {
	if prefix == rel {
		return true
	}
	return prefix != "" && strings.HasPrefix(rel, prefix+"/")
}

// sortAnalyzers orders a suite by name (run order is part of output
// determinism only through finding sort, but a stable -list matters too).
func sortAnalyzers(suite []*Analyzer) {
	sort.Slice(suite, func(i, j int) bool { return suite[i].Name < suite[j].Name })
}
