// Package lint is the engine-specific static-analysis substrate behind
// cmd/predlint. It mechanically enforces the correctness invariants earlier
// PRs established by hand — seeded determinism, context plumbing, pooled
// concurrency, ordered map iteration on evidence paths, the typed
// resilience error taxonomy, and atomic catalog writes — so a future change
// that silently violates one becomes un-mergeable instead of un-noticed.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic) so analyzers read like standard
// go/analysis checkers, but it is built entirely on the standard library:
// the toolchain this repository builds under has no module cache, so the
// loader (load.go) type-checks the full dependency closure from source via
// `go list -deps -json` instead of depending on x/tools/go/packages.
//
// Violations that are deliberate protocol exceptions are suppressed in
// place with a reasoned directive:
//
//	//predlint:allow <analyzer>[,<analyzer>...] — <reason>
//
// The reason is mandatory; a bare allow is itself a finding. See
// directive.go for attachment semantics and run.go for how suppressions
// are counted and reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. The Run function inspects a single
// package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in findings, directives and -list output.
	// It must be a lowercase single word.
	Name string
	// Doc is a one-paragraph description: the invariant enforced and the PR
	// that established it.
	Doc string
	// Run inspects pass.Files and calls pass.Report for each violation.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files, in load order.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checking facts for Files.
	Info *types.Info
	// PkgPath is the package's import path with any test-variant suffix
	// stripped (i.e. the path analyzers and targeting rules reason about).
	PkgPath string

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one raw finding, before suppression.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is one reported violation, positioned and attributed.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the conventional file:line:col: [analyzer] message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// dedupeFindings drops exact duplicates (the same file can be analyzed
// twice when test variants of a package are loaded alongside it). Input
// must be sorted.
func dedupeFindings(fs []Finding) []Finding {
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && f == fs[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// PkgNamePath resolves an identifier that syntactically looks like a
// package qualifier to the imported package path, or "" when id does not
// denote an imported package. Analyzers use this instead of matching the
// identifier text so import aliasing cannot dodge a check.
func PkgNamePath(info *types.Info, id *ast.Ident) string {
	if id == nil {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// QualifiedCallee returns (package path, function name) when call invokes a
// package-level function through a qualified identifier (pkg.Fn form), and
// ("", "") otherwise.
func QualifiedCallee(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	path := PkgNamePath(info, id)
	if path == "" {
		return "", ""
	}
	return path, sel.Sel.Name
}
