// Package gospawn exercises the gospawn analyzer: every go statement is
// flagged (pool-owning packages are carved out by the driver's target
// config, not the analyzer).
package gospawn

import "sync"

func flagged(ch chan int) {
	go produce(ch) // want "goroutine outside the exec pool"
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "goroutine outside the exec pool"
		defer wg.Done()
	}()
	wg.Wait()
}

func produce(ch chan int) { ch <- 1 }

func clean(ch chan int) {
	produce(ch) // plain calls and method values are fine
	f := produce
	f(ch)
}
