// Package errtaxonomy exercises the errtaxonomy analyzer: verdict-shaped
// functions (returning both bool and error — the UDF invocation shape) may
// not return untyped errors; %w-wrapped causes and non-verdict functions
// are clean.
package errtaxonomy

import (
	"errors"
	"fmt"
)

func flaggedNew(v int) (bool, error) {
	if v < 0 {
		return false, errors.New("negative") // want "errors.New crosses the retry/breaker boundary untyped"
	}
	return true, nil
}

func flaggedErrorf(v int) (ok bool, err error) {
	if v < 0 {
		return false, fmt.Errorf("bad value %d", v) // want "fmt.Errorf without %w crosses the retry/breaker boundary untyped"
	}
	return true, nil
}

var errBase = errors.New("base") // not verdict-shaped: sentinel definitions are fine

func cleanWrapped(v int) (bool, error) {
	if v < 0 {
		return false, fmt.Errorf("checking %d: %w", v, errBase) // %w preserves the typed cause
	}
	return true, nil
}

func cleanNonVerdict(v int) error {
	if v < 0 {
		return errors.New("negative") // not verdict-shaped: plain error returns are out of scope
	}
	return nil
}
