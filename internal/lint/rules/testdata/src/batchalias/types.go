// Helper file for the batchalias fixture (the package spans two files
// to exercise linttest's multi-file loading): the Batch shape and a
// child operator mirroring internal/engine's Volcano contract.
package batchalias

import "context"

// Batch mirrors the engine's reused row container: Rows is the
// selection vector, owned by the producer.
type Batch struct {
	Rows []int
	Sel  []int
}

type childOp struct {
	batch Batch
}

// Next hands out the operator's reused batch, valid only until the next
// Next call.
func (c *childOp) Next(ctx context.Context) (*Batch, error) {
	return &c.batch, nil
}

func consume(rows []int) int { return len(rows) }
