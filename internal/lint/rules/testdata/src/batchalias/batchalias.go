// Package batchalias exercises the batchalias analyzer: a *Batch (or
// its row slices) obtained from a child's Next must not outlive the
// call — field/global stores, channel sends, retained appends, returns
// and goroutine hand-offs are flagged; borrowing and explicit copies
// are clean.
package batchalias

import "context"

var lastRows []int

type op struct {
	child *childOp
	held  *Batch
	rows  []int
	hist  [][]int
	buf   []int
	batch Batch
	total int
	ch    chan []int
}

func (o *op) flaggedStores(ctx context.Context) error {
	b, err := o.child.Next(ctx)
	if err != nil {
		return err
	}
	o.held = b         // want "stored in a longer-lived location"
	o.rows = b.Rows    // want "stored in a longer-lived location"
	o.rows = b.Sel[1:] // want "stored in a longer-lived location"
	lastRows = b.Rows  // want "stored in a package-level variable"
	o.ch <- b.Rows     // want "sent on a channel"
	return nil
}

func (o *op) flaggedRetainAppend(ctx context.Context) {
	b, _ := o.child.Next(ctx)
	o.hist = append(o.hist, b.Rows) // want "stored in a longer-lived location"
}

func (o *op) flaggedReturn(ctx context.Context) []int {
	b, _ := o.child.Next(ctx)
	return b.Rows // want "returned to the caller"
}

func (o *op) flaggedAlias(ctx context.Context) {
	b, _ := o.child.Next(ctx)
	rows := b.Rows
	o.rows = rows // want "stored in a longer-lived location"
}

func (o *op) flaggedCapture(ctx context.Context) func() int {
	b, _ := o.child.Next(ctx)
	// The closure itself is not a batch carrier, so the return is clean;
	// the reference inside it is the escape.
	return func() int {
		return consume(b.Rows) // want "captured by a function literal"
	}
}

func (o *op) flaggedSpawn(ctx context.Context) {
	b, _ := o.child.Next(ctx)
	go relay(o.ch, b.Rows) // want "passed to a spawned goroutine"
}

func relay(ch chan []int, rows []int) { ch <- rows }

// cleanBorrowAndCopy is the sanctioned shape: iterate the borrowed
// batch, copy what must be retained, hand out only owned storage.
func (o *op) cleanBorrowAndCopy(ctx context.Context) (*Batch, error) {
	for {
		b, err := o.child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		for _, r := range b.Rows {
			o.total += r
		}
		_ = consume(b.Rows)
		o.buf = append(o.buf, b.Rows...)
		o.rows = append([]int(nil), b.Rows...)
		if o.total > 100 {
			o.batch.Rows = o.buf
			return &o.batch, nil
		}
	}
}

// cleanKill: once the variable is rebound to owned storage, stores are
// fine.
func (o *op) cleanKill(ctx context.Context) {
	b, _ := o.child.Next(ctx)
	_ = consume(b.Rows)
	rows := []int{1, 2, 3}
	o.rows = rows
}
