// Package detrand exercises the detrand analyzer: global math/rand and
// wall-clock reads are flagged; seeded constructors and clock-free time
// arithmetic are clean.
package detrand

import (
	"math/rand"
	mrand "math/rand"
	"time"
)

func flagged(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want "global math/rand stream"
	x := rand.Intn(n)                  // want "global math/rand stream"
	_ = mrand.Float64()                // want "global math/rand stream"
	start := time.Now()                // want "wall-clock read"
	_ = time.Since(start)              // want "wall-clock read"
	return x
}

func clean(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // constructors are fine: the stream is seeded
	src := rand.NewSource(seed)
	_ = src
	d := 3 * time.Second // time arithmetic without a clock read is fine
	_ = d
	return r.Float64()
}
