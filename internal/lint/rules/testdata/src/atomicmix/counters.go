// Helper file for the atomicmix fixture (multi-file package): the
// atomic updates live here, the mixed plain accesses in atomicmix.go —
// the analyzer must correlate them across files.
package atomicmix

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	plain  int64
	typed  atomic.Int64
}

var generation uint64

func (c *counters) bumpHits() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) loadMisses() int64 {
	return atomic.LoadInt64(&c.misses)
}

func nextGeneration() uint64 {
	return atomic.AddUint64(&generation, 1)
}
