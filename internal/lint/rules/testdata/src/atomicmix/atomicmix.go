// Package atomicmix exercises the atomicmix analyzer: fields and
// variables touched through sync/atomic anywhere in the package must be
// atomic everywhere — plain reads/writes elsewhere are data races.
package atomicmix

import "sync/atomic"

func (c *counters) flaggedPlainRead() int64 {
	return c.hits // want "mixed atomic/plain access"
}

func (c *counters) flaggedPlainWrite() {
	c.hits = 0 // want "mixed atomic/plain access"
}

func (c *counters) flaggedPlainIncrement() {
	c.misses++ // want "mixed atomic/plain access"
}

func flaggedGlobalRead() uint64 {
	return generation // want "mixed atomic/plain access"
}

func (c *counters) cleanAtomicEverywhere() int64 {
	atomic.StoreInt64(&c.hits, 0)
	return atomic.LoadInt64(&c.misses)
}

// cleanPlainOnly: plain is never touched atomically, so plain access is
// fine.
func (c *counters) cleanPlainOnly() int64 {
	c.plain++
	return c.plain
}

// cleanTyped: typed atomics make the mix impossible by construction.
func (c *counters) cleanTyped() int64 {
	c.typed.Add(1)
	return c.typed.Load()
}
