// Package ctxflow exercises the ctxflow analyzer: context.Background/TODO
// calls and out-of-position context parameters are flagged; threading the
// caller's ctx first is clean.
package ctxflow

import "context"

func flaggedBackground() error {
	ctx := context.Background() // want "severs the cancellation chain"
	return work(ctx, 1)
}

func flaggedTODO() error {
	return work(context.TODO(), 1) // want "severs the cancellation chain"
}

func flaggedPosition(n int, ctx context.Context) error { // want "must be the first parameter"
	return work(ctx, n)
}

func flaggedLiteral() func() error {
	return func() error {
		return work(context.Background(), 2) // want "severs the cancellation chain"
	}
}

func work(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

func clean(ctx context.Context, n int) error {
	child, cancel := context.WithCancel(ctx) // deriving from the caller's ctx is fine
	defer cancel()
	return work(child, n)
}
