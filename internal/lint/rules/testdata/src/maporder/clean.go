// Second file of the maporder fixture: the clean idioms, plus one flagged
// case so the harness proves it reports per file, not just per package.
package maporder

import "sort"

func flaggedFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation into \"sum\""
	}
	return sum
}

func cleanCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sorted below: the collect-then-sort idiom
	}
	sort.Strings(keys)
	return keys
}

func cleanOrderIndependent(m map[string]int, dst map[string]int) int {
	total := 0
	for k, v := range m {
		total += v // integer addition commutes exactly
		dst[k] = v // map writes are order-independent
		delete(m, k)
	}
	return total
}
