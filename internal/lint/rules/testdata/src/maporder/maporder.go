// Package maporder exercises the maporder analyzer: map-range loops that
// feed order-sensitive sinks (appends without a later sort, channel sends,
// side-effecting calls, float accumulation) are flagged; the
// collect-then-sort idiom and order-independent writes are clean.
package maporder

import (
	"fmt"
	"sort"
)

func flaggedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to \"out\" inside a map-range loop without a later sort"
	}
	return out
}

func flaggedSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside a map-range loop"
	}
}

func flaggedCall(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "side-effecting call inside a map-range loop"
	}
}

func flaggedFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation into \"sum\""
	}
	return sum
}

func cleanCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sorted below: the collect-then-sort idiom
	}
	sort.Strings(keys)
	return keys
}

func cleanOrderIndependent(m map[string]int, dst map[string]int) int {
	total := 0
	for k, v := range m {
		total += v // integer addition commutes exactly
		dst[k] = v // map writes are order-independent
		delete(m, k)
	}
	return total
}
