// Package maporder exercises the maporder analyzer: map-range loops that
// feed order-sensitive sinks (appends without a later sort, channel sends,
// side-effecting calls, float accumulation) are flagged; the
// collect-then-sort idiom and order-independent writes are clean.
//
// The package is deliberately split across two files (the clean idioms and
// one flagged case live in clean.go) to pin the harness's multi-file
// loading: diagnostics and // want expectations must line up per file.
package maporder

import "fmt"

func flaggedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to \"out\" inside a map-range loop without a later sort"
	}
	return out
}

func flaggedSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside a map-range loop"
	}
}

func flaggedCall(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "side-effecting call inside a map-range loop"
	}
}
