// Helper file for the foldpoint fixture (multi-file package): the pool,
// gate and stats shapes mirroring internal/exec and internal/stats.
package foldpoint

type Pool struct{}

// ForEachCtx runs fn(i) for each i on pool goroutines.
func (p *Pool) ForEachCtx(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Gate mirrors exec.Gate: Plan before a wave, Record after it, both on
// the calling goroutine.
type Gate interface {
	Segment() int
	Plan(n int) []bool
	Record(failed bool)
}

// Breaker is a concrete gate.
type Breaker struct {
	failures int
}

func (b *Breaker) Segment() int      { return 1 }
func (b *Breaker) Plan(n int) []bool { return make([]bool, n) }
func (b *Breaker) Record(failed bool) {
	if failed {
		b.failures++
	}
}

// Stats mirrors the evidence counters folded after each wave.
type Stats struct {
	Evaluations int
	Failures    int
}
