// Package foldpoint exercises the foldpoint analyzer: gate/breaker
// Plan/Record calls and Stats writes inside pool worker closures or
// spawned goroutines are flagged; the sequential fold shape — Plan
// before the wave, Record and Stats merges after it — is clean.
package foldpoint

func flaggedGateInWorker(p *Pool, g Gate, rows []int) {
	verdicts := make([]bool, len(rows))
	p.ForEachCtx(len(rows), func(i int) {
		allowed := g.Plan(1) // want "Plan call inside a pool worker closure"
		verdicts[i] = allowed[0]
		g.Record(!allowed[0]) // want "Record call inside a pool worker closure"
	})
}

func flaggedBreakerInWorker(p *Pool, b *Breaker, rows []int) {
	p.ForEachCtx(len(rows), func(i int) {
		b.Record(false) // want "Record call inside a pool worker closure"
	})
}

func flaggedStatsInWorker(p *Pool, st *Stats, rows []int) {
	p.ForEachCtx(len(rows), func(i int) {
		st.Evaluations++ // want "write to Stats field Evaluations inside a pool worker closure"
	})
}

func flaggedStatsAssignInWorker(p *Pool, st *Stats, rows []int) {
	p.ForEachCtx(len(rows), func(i int) {
		st.Failures = st.Failures + 1 // want "write to Stats field Failures inside a pool worker closure"
	})
}

func flaggedNestedClosure(p *Pool, g Gate, rows []int) {
	p.ForEachCtx(len(rows), func(i int) {
		retry := func() {
			g.Record(true) // want "Record call inside a pool worker closure"
		}
		retry()
	})
}

func flaggedGoroutine(g Gate, done chan struct{}) {
	go func() {
		g.Record(false) // want "Record call inside a spawned goroutine"
		close(done)
	}()
}

// cleanFoldSite is the sanctioned shape: Plan before the wave, workers
// only fill their own slots, Record and Stats merges after the wave on
// the calling goroutine.
func cleanFoldSite(p *Pool, g Gate, st *Stats, rows []int) {
	allowed := g.Plan(len(rows))
	verdicts := make([]bool, len(rows))
	p.ForEachCtx(len(rows), func(i int) {
		if allowed[i] {
			verdicts[i] = rows[i] > 0
		}
	})
	failed := 0
	for _, v := range verdicts {
		if !v {
			failed++
		}
	}
	g.Record(failed > 0)
	st.Evaluations += len(rows)
	st.Failures += failed
}

// cleanLocalAccumulator: workers may write non-Stats locals they own.
func cleanLocalAccumulator(p *Pool, rows []int) []int {
	out := make([]int, len(rows))
	p.ForEachCtx(len(rows), func(i int) {
		out[i] = rows[i] * 2
	})
	return out
}
