// Package atomicwrite exercises the atomicwrite analyzer: in-place
// truncating writes are flagged; the tmp+fsync+rename shape and
// append-only opens are clean.
package atomicwrite

import "os"

func flaggedWriteFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want "os.WriteFile truncates in place"
}

func flaggedCreate(path string) error {
	f, err := os.Create(path) // want "os.Create truncates in place"
	if err != nil {
		return err
	}
	return f.Close()
}

func flaggedOpenTrunc(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644) // want "os.OpenFile with O_TRUNC outside the tmp+fsync+rename shape"
	if err != nil {
		return err
	}
	return f.Close()
}

func flaggedTruncate(path string, f *os.File) error {
	if err := os.Truncate(path, 0); err != nil { // want "os.Truncate mutates committed bytes in place"
		return err
	}
	return f.Truncate(0) // want "Truncate mutates committed bytes in place"
}

func cleanTmpRename(path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644) // tmp+fsync+rename shape: clean
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func cleanAppend(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644) // append-only never tears committed bytes
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
