// Helper file for the spanbalance fixture (multi-file package): a
// Trace/Span pair mirroring internal/obs's shape — Start returns *Span,
// End closes it, SetAttr annotates.
package spanbalance

type Trace struct {
	spans []*Span
}

type Span struct {
	name  string
	attrs map[string]string
	done  bool
}

func (t *Trace) Start(name string) *Span {
	sp := &Span{name: name}
	if t != nil {
		t.spans = append(t.spans, sp)
	}
	return sp
}

func (s *Span) End() {
	if s != nil {
		s.done = true
	}
}

func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[k] = v
}

func register(sp *Span) {}

var errBoom = &opError{}

type opError struct{}

func (*opError) Error() string { return "boom" }
