// Package spanbalance exercises the spanbalance analyzer: spans started
// but not ended on every path, overwritten while open, or discarded are
// flagged; defer-End, per-return End, chained End, aliasing and
// hand-offs are clean.
package spanbalance

func leakNoEnd(t *Trace) {
	sp := t.Start("never-ended") // want "not ended on every path"
	_ = sp
}

func leakOnErrPath(t *Trace, fail bool) error {
	sp := t.Start("parse") // want "not ended on every path"
	if fail {
		return errBoom
	}
	sp.End()
	return nil
}

func leakSwitchArm(t *Trace, mode int) {
	sp := t.Start("mode") // want "not ended on every path"
	switch mode {
	case 1:
		sp.End()
	case 2:
	}
}

func leakOverwrite(t *Trace) {
	sp := t.Start("first") // want "overwritten before being ended"
	sp = t.Start("second")
	sp.End()
}

func leakLoopOverwrite(t *Trace, n int) {
	var sp *Span
	for i := 0; i < n; i++ {
		sp = t.Start("iter") // want "overwritten before being ended"
	}
	_ = sp
}

func discardExpr(t *Trace) {
	t.Start("dropped") // want "started and immediately discarded"
}

func discardChained(t *Trace) {
	t.Start("annotated").SetAttr("k", "v") // want "handle discarded"
}

func discardBlank(t *Trace) {
	_ = t.Start("blank") // want "assigned to _"
}

func cleanDefer(t *Trace, fail bool) error {
	sp := t.Start("outer")
	defer sp.End()
	if fail {
		return errBoom
	}
	return nil
}

func cleanDeferClosure(t *Trace) {
	sp := t.Start("closure")
	defer func() { sp.End() }()
}

func cleanPerReturn(t *Trace, fail bool) error {
	sp := t.Start("per-return")
	if fail {
		sp.End()
		return errBoom
	}
	sp.SetAttr("ok", "true")
	sp.End()
	return nil
}

func cleanChain(t *Trace) {
	t.Start("chained").End()
}

func cleanLoop(t *Trace, n int) {
	for i := 0; i < n; i++ {
		sp := t.Start("iter")
		sp.End()
	}
}

func cleanReuseAfterEnd(t *Trace) {
	sp := t.Start("bind")
	sp.End()
	sp = t.Start("plan")
	sp.End()
}

func cleanAlias(t *Trace) {
	sp := t.Start("aliased")
	sp2 := sp
	sp2.End()
}

func cleanHandoffReturn(t *Trace) *Span {
	return t.Start("caller-owned")
}

func cleanHandoffArg(t *Trace) {
	register(t.Start("registered"))
	sp := t.Start("registered-late")
	register(sp)
}

func cleanSwitch(t *Trace, mode int) {
	sp := t.Start("mode")
	switch mode {
	case 1:
		sp.End()
	default:
		sp.End()
	}
}
