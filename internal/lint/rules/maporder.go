package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Maporder enforces the ordered-evidence invariant PRs 1–4 fixed by hand
// in several places: Go map iteration order is deliberately randomized, so
// a map-range loop may not feed order-sensitive sinks — output rows,
// Stats, sampler or catalog evidence, WAL records — without an intervening
// deterministic sort. The analyzer flags a range over a map value whose
// body
//
//   - appends to a slice declared outside the loop,
//   - sends on a channel, or
//   - calls a function/method mentioning the loop variables for its side
//     effect (an expression-statement call), or
//   - accumulates into an outer floating-point variable (+= order changes
//     rounding),
//
// unless the enclosing function later calls into sort/slices — the
// collect-then-sort idiom (`for k := range m { keys = append(keys, k) };
// sort.…`) is exactly the fix, so it passes clean. Writes into maps and
// indexed slots, delete(), and integer/boolean accumulation are
// order-independent and never flagged.
var Maporder = &lint.Analyzer{
	Name: "maporder",
	Doc: "forbid map-range loops feeding order-sensitive sinks without a deterministic sort " +
		"(PRs 1–4: rows, Stats, evidence and WAL records are bit-for-bit reproducible)",
	Run: runMaporder,
}

// sortCalls is the escape-hatch set: a later call to any of these in the
// same function marks the collect-then-sort idiom.
var sortCalls = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func runMaporder(pass *lint.Pass) error {
	for _, f := range pass.Files {
		eachFunc(f, func(fn ast.Node, body *ast.BlockStmt) {
			inspectOwn(body, func(n ast.Node) {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return
				}
				checkMapRange(pass, body, rng)
			})
		})
	}
	return nil
}

// inspectOwn walks stmts of one function body without descending into
// nested function literals (those are visited as their own functions).
func inspectOwn(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

func checkMapRange(pass *lint.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	loopVars := rangeVarObjects(pass, rng)
	if len(loopVars) == 0 {
		// Without loop variables the body cannot depend on which entry an
		// iteration sees, so order cannot leak.
		return
	}
	sorted := callsAnyAfter(pass, funcBody, rng.Pos(), sortCalls, nil)

	inspectOwn(rng.Body, func(n ast.Node) {
		switch node := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(node.Pos(),
				"channel send inside a map-range loop: receive order follows randomized map iteration; iterate a sorted key slice instead")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, node, rng, loopVars, sorted)
		case *ast.ExprStmt:
			call, ok := node.X.(*ast.CallExpr)
			if !ok || sorted {
				return
			}
			if isOrderInsensitiveCall(pass, call) {
				return
			}
			if mentionsAny(pass, call, loopVars) {
				pass.Reportf(call.Pos(),
					"side-effecting call inside a map-range loop feeds its sink in randomized order: collect into a slice, sort, then call")
			}
		}
	})
}

// checkMapRangeAssign flags order-sensitive assignments in a map-range
// body: appends to outer slices (unless the function later sorts) and
// floating-point accumulation into outer variables.
func checkMapRangeAssign(pass *lint.Pass, as *ast.AssignStmt, rng *ast.RangeStmt, loopVars map[types.Object]bool, sorted bool) {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue // indexed writes (m[k] = v) are order-independent
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		if obj == nil || within(obj.Pos(), rng) {
			continue // loop-local state resets every iteration
		}
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			if i < len(as.Rhs) {
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isBuiltin(pass, call, "append") && !sorted {
					pass.Reportf(as.Pos(),
						"append to %q inside a map-range loop without a later sort: slice order follows randomized map iteration", id.Name)
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if isFloat(obj.Type()) && mentionsAny(pass, as.Rhs[0], loopVars) {
				pass.Reportf(as.Pos(),
					"floating-point accumulation into %q inside a map-range loop: summation order changes rounding; accumulate over sorted keys", id.Name)
			}
		}
	}
}

// rangeVarObjects resolves the loop's key/value variables to their objects
// (skipping blanks).
func rangeVarObjects(pass *lint.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := pass.Info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	return out
}

// mentionsAny reports whether expr references one of the given objects.
func mentionsAny(pass *lint.Pass, expr ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isOrderInsensitiveCall recognizes calls whose effect cannot depend on
// iteration order: the delete/append/copy/len/cap builtins and panic.
func isOrderInsensitiveCall(pass *lint.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
		switch b.Name() {
		case "delete", "append", "copy", "len", "cap", "panic", "min", "max", "clear":
			return true
		}
	}
	return false
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pass *lint.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// within reports whether pos falls inside the range statement.
func within(pos token.Pos, rng *ast.RangeStmt) bool {
	return pos >= rng.Pos() && pos < rng.End()
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
