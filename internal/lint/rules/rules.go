// Package rules holds the predlint analyzer suite: ten project-specific
// checks, each mechanically enforcing an invariant one of the earlier PRs
// established by hand. Every analyzer flags ALL occurrences of its pattern
// in whatever package it is handed; deciding which packages an analyzer
// covers is the driver's job (internal/lint/config.go), so the testdata
// suites exercise analyzers directly without faking package paths.
//
// Six of the checks are single-statement AST matchers; the flow-sensitive
// ones (batchalias, spanbalance) run on the CFG/dataflow substrate in
// internal/lint/cfg.
package rules

import (
	"go/ast"
	"go/token"

	"repro/internal/lint"
)

// Suite returns the full analyzer suite in stable (alphabetical) order.
func Suite() []*lint.Analyzer {
	return []*lint.Analyzer{
		Atomicmix,
		Atomicwrite,
		Batchalias,
		Ctxflow,
		Detrand,
		Errtaxonomy,
		Foldpoint,
		Gospawn,
		Maporder,
		Spanbalance,
	}
}

// eachFunc invokes fn for every function (declaration or literal) with a
// body in the file.
func eachFunc(f *ast.File, fn func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body)
			}
		case *ast.FuncLit:
			if d.Body != nil {
				fn(d, d.Body)
			}
		}
		return true
	})
}

// callsAnyAfter reports whether the block contains, at or after pos, a call
// to one of the named qualified functions (package path → names) or to a
// method with one of the given method names. It is the "the function sorts
// what it accumulated" escape hatch used by maporder.
func callsAnyAfter(pass *lint.Pass, body *ast.BlockStmt, pos token.Pos, qualified map[string]map[string]bool, methods map[string]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if path, name := lint.QualifiedCallee(pass.Info, call); path != "" {
			if names, ok := qualified[path]; ok && names[name] {
				found = true
				return false
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && methods[sel.Sel.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}
