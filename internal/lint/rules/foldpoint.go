package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Foldpoint enforces the sequential-fold contract around the pooled
// executor: evidence/Stats merges and breaker Plan/Record calls belong
// at fold sites — the sequential code before a wave is dispatched and
// after it is collected — never inside worker closures. Workers run
// concurrently on pool goroutines; a gate consulted or a Stats struct
// mutated from inside one races the fold and un-deterministically
// reorders evidence, which gospawn (no ad-hoc goroutines) and maporder
// (ordered evidence iteration) only partially fence. This generalizes
// the rule exec.EvalRowsGatedCtx follows: Plan before the wave, Record
// after it, workers only fill their own slots.
var Foldpoint = &lint.Analyzer{
	Name: "foldpoint",
	Doc: "breaker/gate Plan and Record calls and Stats merges may only happen at sequential fold " +
		"sites, never inside pool worker closures or spawned goroutines (PR 5/9 fold contract)",
	Run: runFoldpoint,
}

// poolMethods are the executor entry points whose function-literal
// arguments run on pool goroutines.
var poolMethods = map[string]bool{
	"ForEach":          true,
	"ForEachCtx":       true,
	"EvalRows":         true,
	"EvalRowsCtx":      true,
	"EvalRowsGated":    true,
	"EvalRowsGatedCtx": true,
}

func runFoldpoint(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isPoolDispatch(pass.Info, n) {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkWorker(pass, lit, "pool worker closure")
					}
				}
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkWorker(pass, lit, "spawned goroutine")
				}
			}
			return true
		})
	}
	return nil
}

// isPoolDispatch matches a call to one of the executor entry points on
// a value whose named type is Pool (matching by shape keeps the
// analyzer exercisable from testdata, like batchalias/spanbalance).
func isPoolDispatch(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !poolMethods[sel.Sel.Name] {
		return false
	}
	return namedTypeIs(info.TypeOf(sel.X), "Pool")
}

// checkWorker flags fold operations inside a worker function literal,
// including literals nested within it.
func checkWorker(pass *lint.Pass, lit *ast.FuncLit, where string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := isGateCall(pass.Info, n); ok {
				pass.Reportf(n.Pos(),
					"%s call inside a %s: gate/breaker interaction must happen at the sequential "+
						"fold site (Plan before the wave, Record after it), not on pool goroutines",
					name, where)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportStatsWrite(pass, lhs, where)
			}
		case *ast.IncDecStmt:
			reportStatsWrite(pass, n.X, where)
		}
		return true
	})
}

// isGateCall matches method calls named Plan or Record on a value whose
// type is (or implements) the gate shape: a named type called Gate or
// Breaker, or an interface declaring both Plan and Record.
func isGateCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Plan" && name != "Record" {
		return "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if namedTypeIs(t, "Gate") || namedTypeIs(t, "Breaker") {
		return name, true
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		hasPlan, hasRecord := false, false
		for i := 0; i < iface.NumMethods(); i++ {
			switch iface.Method(i).Name() {
			case "Plan":
				hasPlan = true
			case "Record":
				hasRecord = true
			}
		}
		if hasPlan && hasRecord {
			return name, true
		}
	}
	return "", false
}

// reportStatsWrite flags a write to a field of a Stats-named struct.
func reportStatsWrite(pass *lint.Pass, lhs ast.Expr, where string) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if !namedTypeIs(pass.Info.TypeOf(sel.X), "Stats") {
		return
	}
	pass.Reportf(lhs.Pos(),
		"write to Stats field %s inside a %s: evidence/statistics merges must happen at the "+
			"sequential fold site after the wave completes, not on pool goroutines",
		sel.Sel.Name, where)
}

// namedTypeIs reports whether t (through pointers) is a named type with
// the given name.
func namedTypeIs(t types.Type, name string) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj().Name() == name
		default:
			return false
		}
	}
}
