package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Detrand enforces the determinism invariant PR 1 established: the
// engine's answers are a pure function of (data, query, seed), so
// result-producing packages must not consult ambient nondeterminism.
// Randomness flows through the seeded internal/stats RNG streams —
// constructing an explicitly seeded generator (rand.New, rand.NewPCG, …)
// is allowed; the shared global stream (rand.IntN, rand.Shuffle, …) is
// not. Wall-clock reads (time.Now, time.Since, time.Until) are flagged for
// the same reason: a timestamp that reaches a result, a sampler decision
// or a persisted record breaks bit-for-bit reproducibility.
var Detrand = &lint.Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand streams and wall-clock reads in result-producing packages " +
		"(PR 1: answers are a pure function of data, query and seed)",
	Run: runDetrand,
}

// randConstructors are the explicitly seeded entry points of math/rand and
// math/rand/v2; every other package-level function draws from or mutates
// the shared global stream.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func runDetrand(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch lint.PkgNamePath(pass.Info, id) {
			case "math/rand", "math/rand/v2":
				// Type references (rand.Rand, rand.Source) are fine; only
				// package-level functions outside the constructor set touch
				// the global stream. Mentioning such a function without
				// calling it (passing rand.IntN as a callback) is just as
				// nondeterministic, so any function use is flagged.
				if isFuncUse(pass, sel.Sel) && !randConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"global math/rand stream (%s.%s) in a result-producing package: draw from a seeded internal/stats RNG instead",
						id.Name, sel.Sel.Name)
				}
			case "time":
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" || sel.Sel.Name == "Until" {
					pass.Reportf(sel.Pos(),
						"wall-clock read (time.%s) in a result-producing package: timestamps must not influence results; measure outside the engine or thread a clock in",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

// isFuncUse reports whether id resolves to a function object (as opposed
// to a type, const or var exported by the package).
func isFuncUse(pass *lint.Pass, id *ast.Ident) bool {
	_, ok := pass.Info.Uses[id].(*types.Func)
	return ok
}
