package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
	"repro/internal/lint/cfg"
)

// Batchalias enforces the PR 9 batch reuse contract
// (internal/engine/batch.go): a *Batch handed out by an operator's Next
// — and therefore its Rows/Sel selection vectors — is owned by the
// producer and valid only until the producer's next Next call. A
// consumer may borrow it for the duration of the call (iterate, pass
// down, evaluate) but may not retain it: no field or global stores, no
// channel sends, no appends of the slice value into longer-lived
// slices, no returns, no closure captures, no goroutine hand-offs.
// Retention must copy the rows first (append([]int(nil), b.Rows...)),
// which the escape lattice recognizes as laundering.
var Batchalias = &lint.Analyzer{
	Name: "batchalias",
	Doc: "a *Batch (or its row slices) obtained from a child operator's Next must not escape the call — " +
		"the producer reuses the backing arrays, so retained references go stale (PR 9 reuse contract)",
	Run: runBatchalias,
}

func runBatchalias(pass *lint.Pass) error {
	for _, f := range pass.Files {
		eachFunc(f, func(_ ast.Node, body *ast.BlockStmt) {
			if !mentionsNextCall(body) {
				return
			}
			g := cfg.New(body)
			escs := cfg.Escapes(g, cfg.TaintConfig{
				Info:   pass.Info,
				Seed:   func(call *ast.CallExpr) bool { return isBatchNextCall(pass.Info, call) },
				Tracks: isBatchCarrier,
			})
			for _, e := range escs {
				pass.Reportf(e.Pos,
					"batch obtained from a Next call escapes (%s): the producing operator reuses its "+
						"selection vector across Next calls, so the reference goes stale — copy the rows "+
						"first (append([]int(nil), b.Rows...)); see the reuse contract in internal/engine/batch.go",
					e.Kind)
			}
		})
	}
	return nil
}

// mentionsNextCall is a cheap pre-filter: only functions that call a
// .Next method can seed the analysis.
func mentionsNextCall(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Next" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isBatchNextCall matches a call to a method named Next whose first
// result is a pointer to a Batch-shaped struct (named Batch, with a
// Rows or Sel slice field). Matching on shape instead of the concrete
// engine type keeps the analyzer exercisable from testdata and immune
// to interface indirection (BatchOperator vs concrete op).
func isBatchNextCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Next" {
		return false
	}
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(0).Type()
	}
	return isBatchPtr(t)
}

func isBatchPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isBatchStruct(ptr.Elem())
}

func isBatchStruct(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Batch" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "Rows" && f.Name() != "Sel" {
			continue
		}
		if _, ok := f.Type().Underlying().(*types.Slice); ok {
			return true
		}
	}
	return false
}

// isBatchCarrier reports whether a type can hold (directly or
// transitively) a batch or one of its row slices: *Batch, Batch,
// integer slices (the selection vectors) and slices/pointers nesting
// them. Everything else — error results, scalars, strings — cannot
// carry taint, which keeps tuple assignments like `b, err := Next()`
// from poisoning err.
func isBatchCarrier(t types.Type) bool {
	switch u := t.(type) {
	case *types.Pointer:
		return isBatchCarrier(u.Elem())
	case *types.Named:
		if isBatchStruct(u) {
			return true
		}
		return isBatchCarrier(u.Underlying())
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok {
			return b.Info()&types.IsInteger != 0
		}
		return isBatchCarrier(u.Elem())
	case *types.Array:
		return isBatchCarrier(u.Elem())
	}
	return false
}
