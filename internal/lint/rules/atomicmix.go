package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Atomicmix enforces a whole-package memory-model invariant: a variable
// (struct field or package-level var) whose address is ever passed to a
// sync/atomic function may only be accessed through sync/atomic. A
// plain load racing an atomic store is undefined under the Go memory
// model and is exactly the PR 8 drive-by bug class — the /metrics
// collectors scrape the same counters the engine mutates, so one
// forgotten atomic.Load turns the exposition into a data race. Typed
// atomics (atomic.Int64 and friends) make the mix impossible by
// construction and are the preferred fix.
var Atomicmix = &lint.Analyzer{
	Name: "atomicmix",
	Doc: "a field or variable accessed through sync/atomic anywhere in the package must never be " +
		"read or written with plain loads/stores elsewhere — mixed access is a data race (PR 8 bug class); " +
		"prefer typed atomics (atomic.Int64)",
	Run: runAtomicmix,
}

func runAtomicmix(pass *lint.Pass) error {
	// Pass 1: collect every variable whose address flows into a
	// sync/atomic call, and the &x argument nodes themselves (uses
	// inside those arguments are the sanctioned access path).
	atomicVars := map[types.Object]bool{}
	sanctioned := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, _ := lint.QualifiedCallee(pass.Info, call); path != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := addressedVar(pass.Info, un.X); obj != nil {
					atomicVars[obj] = true
					sanctioned[arg] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}
	// Pass 2: any other reference to those variables is a plain access.
	for _, f := range pass.Files {
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			if sanctioned[n] {
				return false
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.Info.Selections[n]; ok && atomicVars[sel.Obj()] {
					pass.Reportf(n.Pos(),
						"field %s is updated through sync/atomic elsewhere in this package but accessed "+
							"plainly here — mixed atomic/plain access is a data race; use sync/atomic for "+
							"every access (or migrate the field to a typed atomic)",
						n.Sel.Name)
					return false
				}
			case *ast.Ident:
				if obj := pass.Info.Uses[n]; obj != nil && atomicVars[obj] {
					pass.Reportf(n.Pos(),
						"variable %s is updated through sync/atomic elsewhere in this package but accessed "+
							"plainly here — mixed atomic/plain access is a data race; use sync/atomic for "+
							"every access (or migrate to a typed atomic)",
						n.Name)
				}
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	return nil
}

// addressedVar resolves &x to the variable being addressed: a field
// selection (s.counter) or a plain variable. Index expressions
// (&arr[i]) are out of scope — per-element atomics don't occur here.
func addressedVar(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			if _, ok := obj.(*types.Var); ok {
				return obj
			}
		}
	}
	return nil
}
