package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Errtaxonomy enforces the failure-classification invariant PR 5
// established: every error that crosses the retry/breaker boundary carries
// the typed internal/resilience taxonomy, because resilience.Classify maps
// anything untyped to Transient — a naked errors.New or fmt.Errorf at the
// invocation boundary silently buys itself retries (and breaker evidence)
// it may not deserve.
//
// The boundary is identified by shape: a function whose results include
// both a verdict (bool) and an error is a UDF-invocation path (EvalErr,
// resilience.Do bodies, rowInvoker and friends). Inside such functions,
// returning a freshly built untyped error — errors.New(…), or fmt.Errorf
// without a %w verb — is flagged; wrap a typed cause (%w), build a
// classified error (resilience.New, resilience.NewPanicError, &Error{…}),
// or return a sentinel instead. Plain validation helpers returning only an
// error are out of scope.
var Errtaxonomy = &lint.Analyzer{
	Name: "errtaxonomy",
	Doc: "errors returned from verdict-producing functions must carry the typed resilience taxonomy " +
		"(PR 5: Classify treats untyped errors as Transient, so naked errors buy unintended retries)",
	Run: runErrtaxonomy,
}

func runErrtaxonomy(pass *lint.Pass) error {
	for _, f := range pass.Files {
		eachFunc(f, func(fn ast.Node, body *ast.BlockStmt) {
			var ft *ast.FuncType
			switch d := fn.(type) {
			case *ast.FuncDecl:
				ft = d.Type
			case *ast.FuncLit:
				ft = d.Type
			}
			if !verdictShaped(pass, ft) {
				return
			}
			inspectOwn(body, func(n ast.Node) {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return
				}
				for _, res := range ret.Results {
					checkReturnedError(pass, res)
				}
			})
		})
	}
	return nil
}

// verdictShaped reports whether the signature returns both a bool verdict
// and an error — the shape of the UDF invocation boundary.
func verdictShaped(pass *lint.Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Results == nil {
		return false
	}
	var hasBool, hasErr bool
	for _, field := range ft.Results.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
			hasBool = true
		}
		if isErrorType(tv.Type) {
			hasErr = true
		}
	}
	return hasBool && hasErr
}

// checkReturnedError flags a return operand that freshly builds an untyped
// error.
func checkReturnedError(pass *lint.Pass, res ast.Expr) {
	call, ok := res.(*ast.CallExpr)
	if !ok {
		return
	}
	path, name := lint.QualifiedCallee(pass.Info, call)
	switch {
	case path == "errors" && name == "New":
		pass.Reportf(call.Pos(),
			"errors.New crosses the retry/breaker boundary untyped (Classify defaults it to Transient): build a resilience.New/&resilience.Error{…} with an explicit Kind")
	case path == "fmt" && name == "Errorf":
		if len(call.Args) == 0 {
			return
		}
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && !strings.Contains(lit.Value, "%w") {
			pass.Reportf(call.Pos(),
				"fmt.Errorf without %%w crosses the retry/breaker boundary untyped: wrap a classified cause with %%w or build a resilience error with an explicit Kind")
		}
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}
