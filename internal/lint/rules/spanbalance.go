package rules

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/lint"
	"repro/internal/lint/cfg"
)

// Spanbalance enforces the PR 8 tracing invariant: every span opened
// with Trace.Start must be ended on every path out of the function —
// either a defer sp.End() right after Start, or an explicit End before
// each return. An unbalanced span silently truncates EXPLAIN ANALYZE
// and per-query trace output, which is exactly the "observability lies
// under error paths" bug class the invariant exists to kill.
//
// The analysis is a forward may-analysis over the function's CFG: each
// Start call assigned to a local is a site; the fact tracks which sites
// may still be open and which locals may hold them. End (direct or
// deferred) closes; handing the span anywhere else — a call argument, a
// field, a return value — transfers the balancing obligation and stops
// tracking. Spans started and discarded, overwritten while open, or
// open on some path into the function exit are reported.
var Spanbalance = &lint.Analyzer{
	Name: "spanbalance",
	Doc: "every Trace.Start span must be matched by End on all paths out of the function " +
		"(defer or per-return) — unbalanced spans corrupt EXPLAIN ANALYZE output (PR 8 invariant)",
	Run: runSpanbalance,
}

func runSpanbalance(pass *lint.Pass) error {
	for _, f := range pass.Files {
		eachFunc(f, func(_ ast.Node, body *ast.BlockStmt) {
			checkSpans(pass, body)
		})
	}
	return nil
}

// spanSite is one tracked Start call: one bound to a local variable
// whose End obligation this function owns.
type spanSite struct {
	call *ast.CallExpr
	// bind is the statement that binds the result (*ast.AssignStmt or
	// *ast.ValueSpec); obj is the variable bound.
	bind ast.Node
	obj  types.Object
}

type spanFact struct {
	// open[i]: site i may still be open.
	open []bool
	// hold: local variable → sites it may currently hold.
	hold map[types.Object]map[int]bool
}

func newSpanFact(n int) *spanFact {
	return &spanFact{open: make([]bool, n), hold: map[types.Object]map[int]bool{}}
}

func (f *spanFact) clone() *spanFact {
	out := newSpanFact(len(f.open))
	copy(out.open, f.open)
	for obj, sites := range f.hold {
		m := make(map[int]bool, len(sites))
		for s := range sites {
			m[s] = true
		}
		out.hold[obj] = m
	}
	return out
}

func checkSpans(pass *lint.Pass, body *ast.BlockStmt) {
	parents := parentMap(body)
	var sites []spanSite
	siteOf := map[ast.Node][]int{} // bind stmt → site indexes

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Literals are their own functions; eachFunc visits them.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSpanStart(pass.Info, call) {
			return true
		}
		switch p := skipParens(parents, call).(type) {
		case *ast.SelectorExpr:
			// Chained method on the fresh span: t.Start("x").End() is
			// balanced; anything else (SetAttr returns nothing)
			// discards the span.
			if p.Sel.Name != "End" {
				pass.Reportf(call.Pos(), "span %sstarted and its handle discarded: nothing can End it — bind it or chain .End()", spanName(call))
			}
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "span %sstarted and immediately discarded: nothing can End it — bind the result and End it on every path", spanName(call))
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if ast.Unparen(rhs) != ast.Expr(call) || i >= len(p.Lhs) {
					continue
				}
				id, ok := ast.Unparen(p.Lhs[i]).(*ast.Ident)
				if !ok {
					// Stored straight into a field/index: the owner of
					// that location carries the End obligation.
					continue
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "span %sstarted and assigned to _: nothing can End it", spanName(call))
					continue
				}
				if obj := spanIdentObject(pass.Info, id); obj != nil {
					siteOf[p] = append(siteOf[p], len(sites))
					sites = append(sites, spanSite{call: call, bind: p, obj: obj})
				}
			}
		case *ast.ValueSpec:
			for i, val := range p.Values {
				if ast.Unparen(val) != ast.Expr(call) || i >= len(p.Names) {
					continue
				}
				id := p.Names[i]
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "span %sstarted and assigned to _: nothing can End it", spanName(call))
					continue
				}
				if obj := spanIdentObject(pass.Info, id); obj != nil {
					siteOf[p] = append(siteOf[p], len(sites))
					sites = append(sites, spanSite{call: call, bind: p, obj: obj})
				}
			}
		default:
			// Call argument, return value, composite literal, defer:
			// the span is handed off at birth; the receiver owns it.
		}
		return true
	})

	if len(sites) == 0 {
		return
	}

	g := cfg.New(body)
	sb := &spanBalance{info: pass.Info, sites: sites, siteOf: siteOf}
	bottom := func() *spanFact { return newSpanFact(len(sites)) }
	join := func(dst, src *spanFact) bool {
		changed := false
		for i, o := range src.open {
			if o && !dst.open[i] {
				dst.open[i] = true
				changed = true
			}
		}
		for obj, ss := range src.hold {
			d := dst.hold[obj]
			if d == nil {
				d = map[int]bool{}
				dst.hold[obj] = d
			}
			for s := range ss {
				if !d[s] {
					d[s] = true
					changed = true
				}
			}
		}
		return changed
	}
	transfer := func(b *cfg.Block, in *spanFact) *spanFact {
		out := in.clone()
		for _, n := range b.Nodes {
			sb.apply(n, out, nil)
		}
		return out
	}
	ins := cfg.Forward(g, newSpanFact(len(sites)), bottom, join, transfer)

	// Reporting walk with the fixpoint facts; one report per site.
	reported := make([]bool, len(sites))
	report := func(site int, format string) {
		if reported[site] {
			return
		}
		reported[site] = true
		s := sites[site]
		pass.Reportf(s.call.Pos(), format, spanName(s.call), s.obj.Name())
	}
	for _, blk := range g.Blocks {
		fact := ins[blk].clone()
		for _, n := range blk.Nodes {
			sb.apply(n, fact, report)
		}
	}
	exit := ins[g.Exit]
	for i := range sites {
		if exit.open[i] {
			report(i, "span %sis not ended on every path out of the function: add `defer %s.End()` after Start, or End it before each return")
		}
	}
}

type spanBalance struct {
	info   *types.Info
	sites  []spanSite
	siteOf map[ast.Node][]int
}

type spanReport func(site int, format string)

// apply folds one statement-level node into the fact.
func (sb *spanBalance) apply(n ast.Node, st *spanFact, report spanReport) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		sb.applyUses(n, st, report, assignSkips(sb.info, n, st))
		sb.applyAssign(n, st, report)
	case *ast.RangeStmt:
		// Loop header only — the body's statements live in their own
		// blocks (cfg package contract). Rebinding the key/value over a
		// span-typed range is not a pattern worth modeling; just fold
		// the range operand's uses.
		sb.applyUses(n.X, st, report, nil)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					sb.applyUses(vs, st, report, nil)
					sb.applyBindings(vs, vsTargets(sb.info, vs), st, report)
				}
			}
		}
	default:
		sb.applyUses(n, st, report, nil)
	}
}

// applyAssign handles the structural effects of an assignment after its
// expression uses have been folded: seeding new sites, alias copies and
// kills of overwritten variables.
func (sb *spanBalance) applyAssign(n *ast.AssignStmt, st *spanFact, report spanReport) {
	// Pure alias: sp2 := sp — the new variable may hold the same sites.
	if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
		if rid, ok := ast.Unparen(n.Rhs[0]).(*ast.Ident); ok {
			if robj := identObj(sb.info, rid); robj != nil && len(st.hold[robj]) > 0 {
				if lid, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok && lid.Name != "_" {
					if lobj := identObj(sb.info, lid); lobj != nil {
						sb.kill(lobj, st, report)
						m := map[int]bool{}
						for s := range st.hold[robj] {
							m[s] = true
						}
						st.hold[lobj] = m
						return
					}
				}
			}
		}
	}
	sb.applyBindings(n, assignTargets(sb.info, n), st, report)
}

// applyBindings kills every overwritten variable, then opens the sites
// this statement seeds.
func (sb *spanBalance) applyBindings(bind ast.Node, targets []types.Object, st *spanFact, report spanReport) {
	seeded := map[types.Object]int{}
	for _, site := range sb.siteOf[bind] {
		seeded[sb.sites[site].obj] = site
	}
	for _, obj := range targets {
		sb.kill(obj, st, report)
	}
	for _, site := range sb.siteOf[bind] {
		s := sb.sites[site]
		st.hold[s.obj] = map[int]bool{site: true}
		st.open[site] = true
	}
}

// kill drops obj's holdings; a site left open with no remaining holder
// can never be ended — report it as overwritten.
func (sb *spanBalance) kill(obj types.Object, st *spanFact, report spanReport) {
	ss := st.hold[obj]
	delete(st.hold, obj)
	var orphaned []int
	for s := range ss {
		if st.open[s] && !heldAnywhere(st, s) {
			orphaned = append(orphaned, s)
		}
	}
	sort.Ints(orphaned)
	for _, s := range orphaned {
		st.open[s] = false
		if report != nil {
			report(s, "span %sis overwritten before being ended — End %s before rebinding it")
		}
	}
}

func heldAnywhere(st *spanFact, site int) bool {
	for _, ss := range st.hold {
		if ss[site] {
			return true
		}
	}
	return false
}

// applyUses folds expression-level span uses within n: End (direct,
// chained or deferred) closes the held sites; any other appearance of a
// held variable — call argument, return value, field store, channel
// send — hands the obligation off and stops tracking. skip lists
// identifiers handled structurally by the caller (assignment targets).
func (sb *spanBalance) applyUses(n ast.Node, st *spanFact, report spanReport, skip map[*ast.Ident]bool) map[*ast.Ident]bool {
	if skip == nil {
		skip = map[*ast.Ident]bool{}
	}
	// Pass 1: method calls on held variables. End closes; other span
	// methods (SetAttr) are neutral. Receivers are excluded from the
	// hand-off scan below.
	ast.Inspect(n, func(child ast.Node) bool {
		if _, ok := child.(*ast.FuncLit); ok {
			return false
		}
		call, ok := child.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := identObj(sb.info, id)
		if obj == nil || len(st.hold[obj]) == 0 {
			return true
		}
		skip[id] = true
		if sel.Sel.Name == "End" {
			for s := range st.hold[obj] {
				st.open[s] = false
			}
		}
		return true
	})
	// Pass 2: any remaining use of a held variable hands its sites off.
	ast.Inspect(n, func(child ast.Node) bool {
		if lit, ok := child.(*ast.FuncLit); ok {
			// A closure capturing the span may End it later (e.g. a
			// registered cleanup): treat capture as a hand-off.
			sb.handoffCaptures(lit, st)
			return false
		}
		id, ok := child.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		obj := identObj(sb.info, id)
		if obj == nil {
			return true
		}
		if ss := st.hold[obj]; len(ss) > 0 {
			for s := range ss {
				st.open[s] = false
			}
			delete(st.hold, obj)
		}
		return true
	})
	return skip
}

func (sb *spanBalance) handoffCaptures(lit *ast.FuncLit, st *spanFact) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := sb.info.Uses[id]; obj != nil {
			if ss := st.hold[obj]; len(ss) > 0 {
				for s := range ss {
					st.open[s] = false
				}
				delete(st.hold, obj)
			}
		}
		return true
	})
}

// assignSkips pre-marks an assignment's LHS identifiers so the hand-off
// scan does not mistake the rebinding for a use; applyAssign handles
// them structurally.
func assignSkips(info *types.Info, n *ast.AssignStmt, st *spanFact) map[*ast.Ident]bool {
	skip := map[*ast.Ident]bool{}
	for _, lhs := range n.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			skip[id] = true
		}
	}
	// A pure alias RHS is handled structurally too.
	if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
		if rid, ok := ast.Unparen(n.Rhs[0]).(*ast.Ident); ok {
			if robj := identObj(info, rid); robj != nil && len(st.hold[robj]) > 0 {
				skip[rid] = true
			}
		}
	}
	return skip
}

func assignTargets(info *types.Info, n *ast.AssignStmt) []types.Object {
	var out []types.Object
	for _, lhs := range n.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if obj := identObj(info, id); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

func vsTargets(info *types.Info, vs *ast.ValueSpec) []types.Object {
	var out []types.Object
	for _, id := range vs.Names {
		if id.Name == "_" {
			continue
		}
		if obj := identObj(info, id); obj != nil {
			out = append(out, obj)
		}
	}
	return out
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// spanIdentObject resolves the bound identifier, requiring span type so
// `n, err := x.Start(...)` misuse elsewhere cannot seed nonsense.
func spanIdentObject(info *types.Info, id *ast.Ident) types.Object {
	obj := identObj(info, id)
	if obj == nil || !isSpanPtr(obj.Type()) {
		return nil
	}
	return obj
}

// isSpanStart matches a call to a method named Start returning *Span.
// Shape matching (not the concrete obs type) keeps the analyzer
// exercisable from testdata fixtures.
func isSpanStart(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Start" {
		return false
	}
	// Method call, not package-qualified function.
	if lint.PkgNamePath(info, identOrNil(sel.X)) != "" {
		return false
	}
	return isSpanPtr(info.TypeOf(call))
}

func identOrNil(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

func isSpanPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// spanName renders the span's literal name for messages ("op:scan" →
// `"op:scan" `), or "" when the first argument is not a string literal.
func spanName(call *ast.CallExpr) string {
	if len(call.Args) > 0 {
		if lit, ok := call.Args[0].(*ast.BasicLit); ok {
			return fmt.Sprintf("%s ", lit.Value)
		}
	}
	return ""
}

// parentMap records each node's parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// skipParens walks up through parenthesis nodes to the semantic parent.
func skipParens(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		if pe, ok := p.(*ast.ParenExpr); ok {
			p = parents[pe]
			continue
		}
		return p
	}
}
