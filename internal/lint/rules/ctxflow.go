package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Ctxflow enforces the cancellation contract PR 2 established: every
// function on a UDF-invoking path takes a context.Context as its first
// parameter and threads it downward, so a hung or expensive UDF is
// cancellable from the server edge. Two patterns are flagged:
//
//   - context.Background() / context.TODO() calls. Minting a fresh root
//     context severs the cancellation chain; it is legal only in the
//     directive-marked legacy wrappers kept for the pre-context API
//     (//predlint:allow ctxflow — … on the wrapper).
//   - a context.Context parameter that is not the first parameter. The
//     convention is load-bearing: call sites and wrappers assume position 0.
var Ctxflow = &lint.Analyzer{
	Name: "ctxflow",
	Doc: "forbid fresh root contexts outside directive-marked legacy wrappers and enforce ctx-first " +
		"signatures (PR 2: every UDF-invoking path is cancellable end to end)",
	Run: runCtxflow,
}

func runCtxflow(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if path, name := lint.QualifiedCallee(pass.Info, node); path == "context" && (name == "Background" || name == "TODO") {
					pass.Reportf(node.Pos(),
						"context.%s() severs the cancellation chain: thread the caller's ctx through, or mark a legacy wrapper with //predlint:allow ctxflow — <reason>",
						name)
				}
			case *ast.FuncDecl:
				checkCtxFirst(pass, node.Type)
			case *ast.FuncLit:
				checkCtxFirst(pass, node.Type)
			}
			return true
		})
	}
	return nil
}

// checkCtxFirst flags context.Context parameters declared after position 0.
func checkCtxFirst(pass *lint.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		if isContextType(pass, field.Type) && pos > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter (the engine's wrappers and call sites assume position 0)")
		}
		pos += n
	}
}

// isContextType reports whether expr denotes context.Context.
func isContextType(pass *lint.Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
