package rules_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
	"repro/internal/lint/rules"
)

// Each analyzer runs over its GOPATH-shaped testdata package; the package
// mixes flagged cases (pinned by // want comments) with clean idioms that
// must stay silent.

func TestDetrand(t *testing.T)     { linttest.Run(t, "testdata", "detrand", rules.Detrand) }
func TestCtxflow(t *testing.T)     { linttest.Run(t, "testdata", "ctxflow", rules.Ctxflow) }
func TestGospawn(t *testing.T)     { linttest.Run(t, "testdata", "gospawn", rules.Gospawn) }
func TestMaporder(t *testing.T)    { linttest.Run(t, "testdata", "maporder", rules.Maporder) }
func TestErrtaxonomy(t *testing.T) { linttest.Run(t, "testdata", "errtaxonomy", rules.Errtaxonomy) }
func TestAtomicwrite(t *testing.T) { linttest.Run(t, "testdata", "atomicwrite", rules.Atomicwrite) }
func TestAtomicmix(t *testing.T)   { linttest.Run(t, "testdata", "atomicmix", rules.Atomicmix) }
func TestBatchalias(t *testing.T)  { linttest.Run(t, "testdata", "batchalias", rules.Batchalias) }
func TestFoldpoint(t *testing.T)   { linttest.Run(t, "testdata", "foldpoint", rules.Foldpoint) }
func TestSpanbalance(t *testing.T) { linttest.Run(t, "testdata", "spanbalance", rules.Spanbalance) }

// TestSuiteShape pins the suite: ten analyzers, sorted, documented.
func TestSuiteShape(t *testing.T) {
	suite := rules.Suite()
	want := []string{
		"atomicmix", "atomicwrite", "batchalias", "ctxflow", "detrand",
		"errtaxonomy", "foldpoint", "gospawn", "maporder", "spanbalance",
	}
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}

// TestAnalyzersFlagEverywhere documents the analyzer/driver split: the
// analyzers themselves know nothing about package paths — scoping (e.g.
// gospawn's carve-out for internal/exec) lives in lint.DefaultTargets.
func TestAnalyzersFlagEverywhere(t *testing.T) {
	targets := lint.DefaultTargets()
	for _, a := range rules.Suite() {
		if targets[a.Name] == nil {
			t.Errorf("analyzer %s has no target config: it would silently run nowhere or everywhere", a.Name)
		}
	}
	if tg := targets["gospawn"]; tg != nil {
		if tg.Match("repro/internal/exec") {
			t.Error("gospawn must not target internal/exec (the pool implementation spawns goroutines by design)")
		}
		if !tg.Match("repro/internal/core") {
			t.Error("gospawn must target internal/core")
		}
	}
	if tg := targets["atomicwrite"]; tg != nil && !tg.Match("repro/internal/catalog") {
		t.Error("atomicwrite must target internal/catalog")
	}
	if tg := targets["batchalias"]; tg != nil {
		if !tg.Match("repro/internal/engine") {
			t.Error("batchalias must target internal/engine (the batch executor)")
		}
		if tg.Match("repro/internal/core") {
			t.Error("batchalias must not target internal/core (no batches there)")
		}
	}
	if tg := targets["atomicmix"]; tg != nil && !tg.Match("repro/internal/obs") {
		t.Error("atomicmix must target the whole module including internal/obs")
	}
	if tg := targets["foldpoint"]; tg != nil && !tg.Match("repro/internal/exec") {
		t.Error("foldpoint must target internal/exec (the fold sites live there)")
	}
}

// TestSpanbalanceObsCarveOut pins the spanbalance scoping decision: the
// obs package owns the span lifecycle (its tests construct half-open
// spans on purpose), so it is excluded by the target table rather than
// by scattered directives — the same shape as detrand's obs carve-out.
func TestSpanbalanceObsCarveOut(t *testing.T) {
	tg := lint.DefaultTargets()["spanbalance"]
	if tg == nil {
		t.Fatal("spanbalance has no target config")
	}
	if tg.Match("repro/internal/obs") {
		t.Error("spanbalance must not target internal/obs (the span lifecycle owner)")
	}
	for _, p := range []string{"repro", "repro/internal/engine", "repro/internal/core"} {
		if !tg.Match(p) {
			t.Errorf("spanbalance must target %s", p)
		}
	}
}
