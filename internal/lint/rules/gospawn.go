package rules

import (
	"go/ast"

	"repro/internal/lint"
)

// Gospawn enforces the concurrency invariant PRs 1 and 5 established: all
// data-path parallelism goes through the exec.Pool's plan/evaluate/ordered-
// merge shape (and its gated, breaker-aware variant), which is what makes
// results bit-for-bit identical at any parallelism level. A stray `go`
// statement anywhere else introduces scheduling nondeterminism the fold
// cannot repair. The driver exempts internal/exec, internal/resilience and
// the cmd entry points (server lifecycle goroutines); everywhere else a
// goroutine needs an explicit, reasoned directive.
var Gospawn = &lint.Analyzer{
	Name: "gospawn",
	Doc: "forbid go statements outside the exec pool, resilience timeouts and cmd entry points " +
		"(PRs 1 & 5: all data-path concurrency flows through the deterministic pool fold)",
	Run: runGospawn,
}

func runGospawn(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"goroutine outside the exec pool: route data-path concurrency through exec.Pool so the deterministic plan/evaluate/merge fold holds")
			}
			return true
		})
	}
	return nil
}
