package rules

import (
	"go/ast"

	"repro/internal/lint"
)

// Atomicwrite enforces the durability invariant PR 3 established for the
// catalog: on-disk state advances only through crash-safe moves — appends
// to the fsynced log, or whole-file replacement via the tmp + fsync +
// rename snapshot pattern. In-place destructive writes are flagged:
//
//   - os.WriteFile and os.Create truncate the target in place; a crash
//     mid-write leaves a torn file with no good copy to fall back to.
//   - os.OpenFile with os.O_TRUNC is the same tear, unless the enclosing
//     function also renames a temp file into place and fsyncs (the
//     snapshot-writer shape), which passes clean.
//   - os.Truncate and File.Truncate mutate committed bytes; the catalog's
//     recovery and compaction protocols use them deliberately and carry
//     //predlint:allow annotations explaining why each site is safe.
//
// Opening with os.O_APPEND (and no O_TRUNC) is the log protocol and always
// clean — torn tails are checksummed away on replay.
var Atomicwrite = &lint.Analyzer{
	Name: "atomicwrite",
	Doc: "catalog files change only by fsynced append or tmp+fsync+rename replacement " +
		"(PR 3: a crash may lose recent facts but can never tear committed state)",
	Run: runAtomicwrite,
}

func runAtomicwrite(pass *lint.Pass) error {
	for _, f := range pass.Files {
		eachFunc(f, func(fn ast.Node, body *ast.BlockStmt) {
			// The tmp+fsync+rename escape: a function that renames AND syncs
			// may open with O_TRUNC (it is writing the temp side).
			renames := containsCall(pass, body, "os", "Rename")
			syncs := containsMethodCall(body, "Sync")
			inspectOwn(body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				if path, name := lint.QualifiedCallee(pass.Info, call); path == "os" {
					switch name {
					case "WriteFile":
						pass.Reportf(call.Pos(),
							"os.WriteFile truncates in place (a crash mid-write tears the file): write a tmp file, fsync, then os.Rename into place")
					case "Create":
						pass.Reportf(call.Pos(),
							"os.Create truncates in place: open a tmp file and rename after fsync, or append with os.O_APPEND")
					case "Truncate":
						pass.Reportf(call.Pos(),
							"os.Truncate mutates committed bytes in place: recovery/compaction protocol sites need a //predlint:allow atomicwrite — <reason>")
					case "OpenFile":
						if mentionsOSFlag(pass, call, "O_TRUNC") && !(renames && syncs) {
							pass.Reportf(call.Pos(),
								"os.OpenFile with O_TRUNC outside the tmp+fsync+rename shape tears the file on crash: write a tmp file and rename, or annotate the protocol exception")
						}
					}
					return
				}
				// File.Truncate — in-place mutation of an open handle.
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Truncate" && len(call.Args) == 1 {
					if lint.PkgNamePath(pass.Info, selRootIdent(sel)) == "" { // a method, not a package func
						pass.Reportf(call.Pos(),
							"Truncate mutates committed bytes in place: protocol sites (log reset after snapshot rename) need a //predlint:allow atomicwrite — <reason>")
					}
				}
			})
		})
	}
	return nil
}

// mentionsOSFlag reports whether the call's arguments mention os.<flag>
// (e.g. os.O_TRUNC) anywhere — flags are always spelled with the os
// constants in this codebase.
func mentionsOSFlag(pass *lint.Pass, call *ast.CallExpr, flag string) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok &&
				lint.PkgNamePath(pass.Info, id) == "os" && sel.Sel.Name == flag {
				found = true
				return false
			}
			return true
		})
	}
	return found
}

// containsCall reports whether body calls pkgPath.name anywhere.
func containsCall(pass *lint.Pass, body *ast.BlockStmt, pkgPath, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if p, f := lint.QualifiedCallee(pass.Info, call); p == pkgPath && f == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// containsMethodCall reports whether body calls any method with the given
// name (receiver type deliberately unchecked: the fsync in the snapshot
// shape may sit behind a helper or an interface).
func containsMethodCall(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// selRootIdent returns the leftmost identifier of a selector chain (the
// candidate package qualifier), or nil.
func selRootIdent(sel *ast.SelectorExpr) *ast.Ident {
	switch x := sel.X.(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return selRootIdent(x)
	}
	return nil
}
