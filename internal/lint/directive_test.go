package lint

import (
	"strings"
	"testing"
)

var knownTest = map[string]bool{"detrand": true, "gospawn": true, "maporder": true}

func TestParseDirectiveValid(t *testing.T) {
	cases := []struct {
		text      string
		analyzers []string
		reason    string
	}{
		{"//predlint:allow detrand — seeded elsewhere", []string{"detrand"}, "seeded elsewhere"},
		{"//predlint:allow detrand -- ascii separator works", []string{"detrand"}, "ascii separator works"},
		{"//predlint:allow detrand,gospawn — two analyzers, one exception", []string{"detrand", "gospawn"}, "two analyzers, one exception"},
		{"//predlint:allow detrand, gospawn — space after comma", []string{"detrand", "gospawn"}, "space after comma"},
	}
	for _, c := range cases {
		d, problem := parseDirective(c.text, knownTest)
		if problem != "" {
			t.Errorf("parseDirective(%q): unexpected problem %q", c.text, problem)
			continue
		}
		if len(d.analyzers) != len(c.analyzers) {
			t.Errorf("parseDirective(%q): analyzers %v, want %v", c.text, d.analyzers, c.analyzers)
			continue
		}
		for i := range c.analyzers {
			if d.analyzers[i] != c.analyzers[i] {
				t.Errorf("parseDirective(%q): analyzers %v, want %v", c.text, d.analyzers, c.analyzers)
			}
		}
		if d.reason != c.reason {
			t.Errorf("parseDirective(%q): reason %q, want %q", c.text, d.reason, c.reason)
		}
	}
}

func TestParseDirectiveRejected(t *testing.T) {
	cases := []struct {
		text    string
		problem string // substring of the expected problem
	}{
		{"//predlint:allow detrand", "without a reason"},
		{"//predlint:allow detrand —", "without a reason"},
		{"//predlint:allow detrand —   ", "without a reason"},
		{"//predlint:allow — reason but no analyzer", "without an analyzer name"},
		{"//predlint:allow nosuchcheck — bogus name", `unknown analyzer "nosuchcheck"`},
		{"//predlint:allowx detrand — mangled prefix", "malformed predlint directive"},
	}
	for _, c := range cases {
		d, problem := parseDirective(c.text, knownTest)
		if problem == "" {
			t.Errorf("parseDirective(%q): accepted (%+v), want rejection containing %q", c.text, d, c.problem)
			continue
		}
		if !strings.Contains(problem, c.problem) {
			t.Errorf("parseDirective(%q): problem %q does not contain %q", c.text, problem, c.problem)
		}
	}
}
