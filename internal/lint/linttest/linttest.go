// Package linttest is the analysistest-style harness for the predlint
// suite: it loads a GOPATH-shaped testdata package (testdata/src/<path>),
// type-checks it (standard-library imports are resolved from source, other
// testdata packages recursively), runs one analyzer, and diffs the
// diagnostics against `// want "substring"` comments in the sources.
//
// Grammar: a flagged line carries a trailing comment of one or more quoted
// substrings, each of which must appear in the message of a diagnostic
// reported on that line:
//
//	rand.Shuffle(n, swap) // want "global math/rand stream"
//
// Every diagnostic must be covered by a want on its line, and every want
// must be matched — extra and missing findings both fail the test.
//
// A fixture package may span multiple files: every .go file under
// testdata/src/<path> is parsed and type-checked together (in directory
// order), and wants are matched per (file, line), so cross-file analyses —
// an atomic update in one file, the plain read it clashes with in
// another — are exercisable. The maporder and flow-sensitive fixtures
// (batchalias, spanbalance, atomicmix, foldpoint) all use this shape.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Load type-checks testdata/src/<pkgPath> beneath root and returns it as a
// lint.Package ready to analyze. Fatal on any parse or type error.
func Load(t *testing.T, root, pkgPath string) *lint.Package {
	t.Helper()
	h := &harness{
		fset: token.NewFileSet(),
		root: root,
		pkgs: make(map[string]*types.Package),
	}
	h.std = importer.ForCompiler(h.fset, "source", nil)
	pkg, files, info, err := h.load(pkgPath)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	return &lint.Package{
		PkgPath: pkgPath,
		Dir:     filepath.Join(root, "src", pkgPath),
		Fset:    h.fset,
		Files:   files,
		Types:   pkg,
		Info:    info,
	}
}

// Run analyzes testdata/src/<pkgPath> with a and matches diagnostics
// against the package's want comments.
func Run(t *testing.T, root, pkgPath string, a *lint.Analyzer) {
	t.Helper()
	pkg := Load(t, root, pkgPath)
	diags, err := lint.RunSingle(pkg, a)
	if err != nil {
		t.Fatalf("linttest: analyzer %s: %v", a.Name, err)
	}
	wants := collectWants(t, pkg)
	matchDiags(t, pkg.Fset, a.Name, diags, wants)
}

// want is one expectation: a substring that must appear in a diagnostic
// message on a specific line.
type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

// collectWants parses `// want "…"` trailing comments.
func collectWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, "want ")
				n := 0
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					if rest[0] != '"' {
						t.Fatalf("%s:%d: malformed want comment (expected quoted substrings): %s", pos.Filename, pos.Line, c.Text)
					}
					s, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
					}
					unq, _ := strconv.Unquote(s)
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, substr: unq})
					rest = rest[len(s):]
					n++
				}
				if n == 0 {
					t.Fatalf("%s:%d: want comment without expectations", pos.Filename, pos.Line)
				}
			}
		}
	}
	return wants
}

// matchDiags pairs diagnostics with wants one-to-one by (file, line,
// substring containment).
func matchDiags(t *testing.T, fset *token.FileSet, analyzer string, diags []lint.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		covered := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if strings.Contains(d.Message, w.substr) {
				w.matched = true
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("%s:%d: unexpected %s finding: %s", pos.Filename, pos.Line, analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected %s finding containing %q, got none", w.file, w.line, analyzer, w.substr)
		}
	}
}

// harness resolves imports for testdata packages: sibling testdata
// packages first, the standard library (from source) otherwise.
type harness struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*types.Package
}

func (h *harness) Import(path string) (*types.Package, error) {
	if pkg, ok := h.pkgs[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(h.root, "src", path); dirExists(dir) {
		pkg, _, _, err := h.load(path)
		return pkg, err
	}
	return h.std.Import(path)
}

func (h *harness) load(pkgPath string) (*types.Package, []*ast.File, *types.Info, error) {
	dir := filepath.Join(h.root, "src", pkgPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("reading testdata package %s: %v", pkgPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(h.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("testdata package %s has no Go files", pkgPath)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: h}
	pkg, err := conf.Check(pkgPath, h.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking testdata package %s: %v", pkgPath, err)
	}
	h.pkgs[pkgPath] = pkg
	return pkg, files, info, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}
