package lint

// Default targeting for this repository. Analyzers flag every occurrence
// of their pattern in the packages they are handed; this table decides
// which packages that is. The rationale per analyzer:
//
//	detrand      result-producing packages: everything on the path from a
//	             parsed query to rows/Stats/persisted evidence. Excluded:
//	             internal/experiments and internal/dataset (offline
//	             harnesses that legitimately measure wall-clock time and
//	             generate data), internal/ml (offline training), cmd/*
//	             (entry points report real timestamps in /stats), and
//	             internal/obs — the ONE sanctioned wall-clock package:
//	             every timer, span and histogram observation routes
//	             through obs.Now/obs.Since, so a time.Now() appearing in
//	             any data-path package is a determinism bug, not a
//	             measurement (no blanket //predlint:allow — the carve-out
//	             is this table, pinned by TestDefaultTargetsObsCarveOut).
//	ctxflow      the UDF-invoking call chain PR 2 made cancellable.
//	             Excluded: cmd/* (servers mint their own root contexts).
//	gospawn      everywhere except the two packages whose whole point is
//	             owning goroutines (internal/exec pool, internal/resilience
//	             call-timeout watchdog) and cmd entry points (server
//	             lifecycle).
//	maporder     packages producing rows, Stats, evidence or durable
//	             records. Excluded: cmd/* (human-facing printouts are
//	             sorted where it matters and irrelevant where not),
//	             offline harnesses.
//	errtaxonomy  the invocation boundary: resilience itself, the pool, the
//	             engine and core (where verdict-shaped functions live).
//	atomicwrite  internal/catalog, the only package that owns durable
//	             files.
//	batchalias   internal/engine, the only package that produces or
//	             consumes Volcano batches (the reuse contract in
//	             internal/engine/batch.go).
//	spanbalance  every package that opens obs spans on the query path.
//	             Excluded: internal/obs itself — the package that OWNS
//	             the span lifecycle legitimately constructs half-open
//	             spans in its own tests (same carve-out shape as
//	             detrand, pinned by TestDefaultTargetsObsCarveOut).
//	atomicmix    the whole module: a mixed atomic/plain access is a data
//	             race wherever it appears.
//	foldpoint    the packages that dispatch pooled waves or own
//	             fold-site state (core, engine, exec, the API root).
//
// The module root package ("") is predeval, the public API — it is on
// every data path, so it is included everywhere.

// ModulePath is the import path of the module predlint targets.
const ModulePath = "repro"

// DefaultTargets maps each analyzer to its package selector.
func DefaultTargets() map[string]*Target {
	dataPath := []string{
		"", "internal/core", "internal/engine", "internal/plan", "internal/solver",
		"internal/stats", "internal/catalog", "internal/exec", "internal/labels",
		"internal/table", "internal/sqlparse", "internal/resilience",
	}
	// internal/obs produces deterministic output from map-shaped state
	// (metric families, label sets), so ordered emission applies to it —
	// but it is deliberately NOT a detrand target (see the package doc).
	mapOrdered := append(append([]string{}, dataPath...), "internal/obs")
	return map[string]*Target{
		"detrand": {Module: ModulePath, Include: dataPath},
		"ctxflow": {Module: ModulePath, Include: []string{
			"", "internal/core", "internal/engine", "internal/exec",
			"internal/plan", "internal/resilience",
		}},
		"gospawn": {Module: ModulePath, Exclude: []string{
			"internal/exec", "internal/resilience", "cmd",
		}},
		"maporder": {Module: ModulePath, Include: mapOrdered},
		"errtaxonomy": {Module: ModulePath, Include: []string{
			"", "internal/core", "internal/engine", "internal/exec", "internal/resilience",
		}},
		"atomicwrite": {Module: ModulePath, Include: []string{"internal/catalog"}},
		"batchalias":  {Module: ModulePath, Include: []string{"internal/engine"}},
		"spanbalance": {Module: ModulePath, Include: []string{
			"", "internal/core", "internal/engine", "internal/exec", "internal/plan",
		}},
		"atomicmix": {Module: ModulePath},
		"foldpoint": {Module: ModulePath, Include: []string{
			"", "internal/core", "internal/engine", "internal/exec",
		}},
	}
}
