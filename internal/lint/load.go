package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// The loader type-checks the analysis targets and their full dependency
// closure from source. It shells out to `go list -deps -json` (the one
// toolchain facility guaranteed to exist wherever the repository builds)
// and replays the closure bottom-up through go/types, so it needs neither
// a populated module cache nor compiled export data. Standard-library
// dependencies are checked with IgnoreFuncBodies — only their exported
// shape matters — which keeps a whole-tree predlint run in seconds.

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the canonical import path: for a test variant
	// ("pkg [pkg.test]") it is the path under test, so targeting rules and
	// directives treat test variants like the package they exercise.
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	ForTest    string
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct {
		Path      string
		Main      bool
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Loader loads packages beneath one module root.
type Loader struct {
	// Dir is any directory inside the target module.
	Dir string
	// Tests also loads and analyzes test variants of the matched packages
	// (in-package _test.go files and external _test packages).
	Tests bool
}

// Load resolves patterns (e.g. "./...") to packages, type-checks them and
// their dependency closure, and returns the matched packages in `go list`
// order. Returned packages carry full types.Info; dependency-only packages
// are checked but not returned.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	matched, err := l.goList(false, patterns)
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool, len(matched))
	for _, p := range matched {
		if skipListed(p) {
			continue
		}
		want[p.ImportPath] = true
	}
	closure, err := l.goList(true, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	checked := make(map[string]*types.Package, len(closure))
	checked["unsafe"] = types.Unsafe
	var out []*Package
	for _, p := range closure {
		if p.ImportPath == "unsafe" || skipListed(p) {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		target := want[p.ImportPath]
		pkg, err := checkOne(fset, p, checked, target)
		if err != nil {
			return nil, err
		}
		checked[p.ImportPath] = pkg.Types
		if target {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// skipListed reports whether a listed package carries no checkable source:
// synthesized test binaries ("pkg.test") have only a generated main that
// never exists on disk.
func skipListed(p *listPkg) bool {
	return strings.HasSuffix(p.ImportPath, ".test") && p.ForTest == ""
}

// goList runs the go tool and decodes its JSON package stream. CGO is
// pinned off so the file lists are pure Go and identical across hosts.
func (l *Loader) goList(deps bool, patterns []string) ([]*listPkg, error) {
	args := []string{"list", "-json"}
	if deps {
		args = append(args, "-deps")
	}
	if l.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(cmd.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkOne parses and type-checks a single package against the
// already-checked portion of the closure. full selects whether function
// bodies are checked and types.Info collected (needed only for analysis
// targets).
func checkOne(fset *token.FileSet, p *listPkg, checked map[string]*types.Package, full bool) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	var info *types.Info
	if full {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
	}
	var firstErr error
	conf := types.Config{
		Importer:         &mapImporter{checked: checked, importMap: p.ImportMap},
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		IgnoreFuncBodies: !full,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	if p.Module != nil && p.Module.GoVersion != "" {
		conf.GoVersion = "go" + p.Module.GoVersion
	}
	tpkg, _ := conf.Check(p.ImportPath, fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", p.ImportPath, firstErr)
	}
	canonical := p.ImportPath
	if p.ForTest != "" {
		canonical = p.ForTest
	} else if i := strings.IndexByte(canonical, ' '); i >= 0 {
		canonical = canonical[:i]
	}
	return &Package{
		PkgPath: canonical,
		Dir:     p.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// mapImporter resolves imports against the already-checked closure,
// honoring the package's ImportMap (which redirects std-vendored paths and
// test-variant imports). The fallback source importer is never expected to
// fire — `go list -deps` lists every dependency first — but keeps a clear
// error if an ordering assumption ever breaks.
type mapImporter struct {
	checked   map[string]*types.Package
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("lint: import %q not in dependency closure (go list ordering violated?)", path)
}
