package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives. A deliberate exception to an invariant is
// annotated in place:
//
//	//predlint:allow <analyzer>[,<analyzer>...] — <reason>
//
// The separator may be an em dash or "--"; the reason is mandatory and
// should say why the exception is safe, not what the code does. A
// directive suppresses findings of the named analyzers
//
//   - on its own line (trailing comment),
//   - on the line immediately below (standalone comment above a statement),
//   - in the whole function, when it appears in a func declaration's doc
//     comment (the shape used by directive-marked legacy wrappers).
//
// A malformed directive — no analyzer names, an unknown analyzer name, or
// a missing reason — is itself a finding, attributed to the pseudo-analyzer
// "predlint", and is never suppressible: the directive grammar is how
// suppression creep stays auditable, so it is enforced unconditionally.

const directivePrefix = "//predlint:allow"

// InvalidDirectiveAnalyzer attributes malformed-directive findings.
const InvalidDirectiveAnalyzer = "predlint"

// directive is one parsed //predlint:allow comment.
type directive struct {
	pos       token.Pos
	line      int
	col       int
	file      string
	analyzers []string
	reason    string
	// funcStart/funcEnd bound the enclosing function when the directive
	// rides a func declaration's doc comment; both are token.NoPos for
	// line-scoped directives.
	funcStart, funcEnd token.Pos
}

func (d *directive) allows(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// suppressor holds every well-formed directive of the analyzed packages
// plus findings for the malformed ones.
type suppressor struct {
	directives []*directive
	invalid    []Finding
	// used counts findings suppressed per directive (parallel to
	// directives), so totals and unused directives are reportable.
	used []int
	// seen dedupes files shared between a package and its test variant.
	seen map[string]bool
}

// collectDirectives scans a package's files, skipping files already
// collected (a package and its test variant share the non-test files).
// known names the valid analyzer set for unknown-name validation.
func (s *suppressor) collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) {
	if s.seen == nil {
		s.seen = make(map[string]bool)
	}
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		if s.seen[name] {
			continue
		}
		s.seen[name] = true
		// Map comments that serve as function documentation to their
		// function's extent.
		funcDoc := make(map[*ast.CommentGroup]*ast.FuncDecl)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDoc[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				d, problem := parseDirective(c.Text, known)
				if problem != "" {
					s.invalid = append(s.invalid, Finding{
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: InvalidDirectiveAnalyzer,
						Message:  problem,
					})
					continue
				}
				d.pos = c.Pos()
				d.line = pos.Line
				d.col = pos.Column
				d.file = pos.Filename
				if fd, ok := funcDoc[cg]; ok {
					d.funcStart, d.funcEnd = fd.Pos(), fd.End()
				}
				s.directives = append(s.directives, d)
				s.used = append(s.used, 0)
			}
		}
	}
}

// parseDirective validates one comment's text. It returns the parsed
// directive, or a non-empty problem string describing the violation of the
// directive grammar.
func parseDirective(text string, known map[string]bool) (*directive, string) {
	rest := strings.TrimPrefix(text, directivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //predlint:allowx — not a directive at all; but the prefix
		// matched, so the author meant one. Flag rather than silently ignore.
		return nil, "malformed predlint directive: expected //predlint:allow <analyzer> — <reason>"
	}
	var namesPart, reason string
	for _, sep := range []string{"—", "--"} {
		if i := strings.Index(rest, sep); i >= 0 {
			namesPart, reason = rest[:i], rest[i+len(sep):]
			break
		}
	}
	if namesPart == "" && reason == "" {
		return nil, "predlint directive without a reason: write //predlint:allow <analyzer> — <reason>"
	}
	reason = strings.TrimSpace(reason)
	if reason == "" {
		return nil, "predlint directive without a reason: the reason after the dash is mandatory"
	}
	var names []string
	for _, field := range strings.FieldsFunc(namesPart, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		names = append(names, field)
	}
	if len(names) == 0 {
		return nil, "predlint directive without an analyzer name: write //predlint:allow <analyzer> — <reason>"
	}
	for _, n := range names {
		if !known[n] {
			return nil, fmt.Sprintf("predlint directive names unknown analyzer %q", n)
		}
	}
	return &directive{analyzers: names, reason: reason}, ""
}

// suppress reports whether finding f (already positioned) is covered by a
// directive, and records the use.
func (s *suppressor) suppress(f Finding, pos token.Pos) bool {
	for i, d := range s.directives {
		if d.file != f.File || !d.allows(f.Analyzer) {
			continue
		}
		lineScoped := f.Line == d.line || f.Line == d.line+1
		funcScoped := d.funcStart.IsValid() && pos >= d.funcStart && pos < d.funcEnd
		if lineScoped || funcScoped {
			s.used[i]++
			return true
		}
	}
	return false
}

// counts reports (total suppressed findings, directives present).
func (s *suppressor) counts() (suppressed, directives int) {
	for _, n := range s.used {
		suppressed += n
	}
	return suppressed, len(s.directives)
}

// stale returns one finding per directive that suppressed nothing this
// run, attributed to the pseudo-analyzer "predlint". A directive is only
// stale when every analyzer it names is in ran: under a filtered suite
// (-only/-skip) an unexercised directive proves nothing.
func (s *suppressor) stale(ran map[string]bool) []Finding {
	var out []Finding
	for i, d := range s.directives {
		if s.used[i] > 0 {
			continue
		}
		exercised := true
		for _, a := range d.analyzers {
			if !ran[a] {
				exercised = false
				break
			}
		}
		if !exercised {
			continue
		}
		out = append(out, Finding{
			File:     d.file,
			Line:     d.line,
			Col:      d.col,
			Analyzer: InvalidDirectiveAnalyzer,
			Message: fmt.Sprintf("stale //predlint:allow %s directive: it suppressed nothing in this run — remove it, or fix the code it excused",
				strings.Join(d.analyzers, ",")),
		})
	}
	return out
}

// uses itemizes every well-formed directive with its suppression count,
// in collection order (callers sort after path relativization).
func (s *suppressor) uses() []DirectiveUse {
	out := make([]DirectiveUse, 0, len(s.directives))
	for i, d := range s.directives {
		out = append(out, DirectiveUse{
			File:      d.file,
			Line:      d.line,
			Analyzers: append([]string(nil), d.analyzers...),
			Reason:    d.reason,
			Uses:      s.used[i],
		})
	}
	return out
}
