// Package stale exercises -strict stale-directive detection: one
// directive earns its keep, one suppresses nothing.
package stale

import "math/rand"

func draw() int {
	//predlint:allow detrand — seeded demo stream, determinism preserved
	return rand.Int()
}

//predlint:allow maporder — historical exception, nothing left to excuse
func nothing() map[string]int {
	return map[string]int{"a": 1}
}
