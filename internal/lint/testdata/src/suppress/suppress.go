// Package suppress exercises the //predlint:allow grammar end to end:
// same-line, line-above and function-doc scopes suppress; directives
// without a reason or naming an unknown analyzer are findings themselves;
// an uncovered violation survives.
package suppress

import (
	"math/rand"
	"time"
)

func sameLine() int {
	return rand.Int() //predlint:allow detrand — same-line scope under test
}

func lineAbove() time.Time {
	//predlint:allow detrand — line-above scope under test
	return time.Now()
}

// funcScoped draws twice; one doc-comment directive covers both.
//
//predlint:allow detrand — function scope under test
func funcScoped() int {
	a := rand.Intn(10)
	b := rand.Intn(20)
	return a + b
}

func unsuppressed() int {
	return rand.Int()
}

func noReason() {
	//predlint:allow gospawn
	go func() {}()
}

//predlint:allow nosuchcheck — the analyzer name is validated too
func unknownAnalyzer() int {
	return 0
}
