package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
	"repro/internal/lint/rules"
)

// TestSuppressionEndToEnd runs the full suite over testdata/src/suppress
// and checks the whole suppression pipeline: every directive scope
// (same-line, line-above, function-doc) suppresses its finding; malformed
// directives (no reason, unknown analyzer) surface as unsuppressible
// "predlint" findings; the uncovered violation survives; and the counters
// the CI summary prints are exact.
func TestSuppressionEndToEnd(t *testing.T) {
	pkg := linttest.Load(t, "testdata", "suppress")
	res, err := lint.Run([]*lint.Package{pkg}, rules.Suite(), nil, "", lint.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// 4 detrand findings suppressed by 3 well-formed directives (same-line,
	// line-above, and a function-doc directive covering two draws).
	if res.Suppressed != 4 {
		t.Errorf("Suppressed = %d, want 4", res.Suppressed)
	}
	if res.Directives != 3 {
		t.Errorf("Directives = %d, want 3 (malformed directives must not count)", res.Directives)
	}

	// Survivors: the uncovered rand.Int, the go statement whose directive
	// was malformed, and the two malformed directives themselves.
	byAnalyzer := make(map[string][]string)
	for _, f := range res.Findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], f.Message)
	}
	if n := len(byAnalyzer["detrand"]); n != 1 {
		t.Errorf("surviving detrand findings = %d, want 1 (only the uncovered draw): %v", n, byAnalyzer["detrand"])
	}
	if n := len(byAnalyzer["gospawn"]); n != 1 {
		t.Errorf("surviving gospawn findings = %d, want 1 (its directive has no reason): %v", n, byAnalyzer["gospawn"])
	}
	invalid := byAnalyzer[lint.InvalidDirectiveAnalyzer]
	if len(invalid) != 2 {
		t.Fatalf("predlint (malformed-directive) findings = %d, want 2: %v", len(invalid), invalid)
	}
	wantReason, wantUnknown := false, false
	for _, msg := range invalid {
		if strings.Contains(msg, "without a reason") {
			wantReason = true
		}
		if strings.Contains(msg, `unknown analyzer "nosuchcheck"`) {
			wantUnknown = true
		}
	}
	if !wantReason {
		t.Errorf("no malformed-directive finding for the reasonless directive: %v", invalid)
	}
	if !wantUnknown {
		t.Errorf("no malformed-directive finding for the unknown analyzer: %v", invalid)
	}

	// The summary line is what CI prints; pin its counters.
	sum := res.Summary()
	if !strings.Contains(sum, "4 suppressed by 3 directives") {
		t.Errorf("Summary() = %q, want it to report 4 suppressed by 3 directives", sum)
	}
}

// TestStrictStaleDirectives pins -strict semantics over testdata/src/stale:
// a never-used directive is a "predlint" finding only under Strict, a used
// directive never is, DirectiveUses itemizes both, and a filtered suite
// (-only) cannot declare a directive stale when the analyzer it names did
// not run.
func TestStrictStaleDirectives(t *testing.T) {
	pkg := linttest.Load(t, "testdata", "stale")
	suite := rules.Suite()

	// Default mode: the unused maporder directive is tolerated.
	res, err := lint.Run([]*lint.Package{pkg}, suite, nil, "", lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Errorf("non-strict run has %d findings, want 0: %v", len(res.Findings), res.Findings)
	}
	if len(res.DirectiveUses) != 2 {
		t.Fatalf("DirectiveUses = %d entries, want 2: %v", len(res.DirectiveUses), res.DirectiveUses)
	}
	if u := res.DirectiveUses[0]; u.Uses != 1 || u.Analyzers[0] != "detrand" {
		t.Errorf("first directive use = %+v, want detrand with 1 use", u)
	}
	if u := res.DirectiveUses[1]; u.Uses != 0 || u.Analyzers[0] != "maporder" {
		t.Errorf("second directive use = %+v, want maporder with 0 uses", u)
	}

	// Strict mode: the unused directive fails the run.
	res, err = lint.Run([]*lint.Package{pkg}, suite, nil, "", lint.Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("strict run has %d findings, want 1: %v", len(res.Findings), res.Findings)
	}
	f := res.Findings[0]
	if f.Analyzer != lint.InvalidDirectiveAnalyzer {
		t.Errorf("stale finding attributed to %q, want %q", f.Analyzer, lint.InvalidDirectiveAnalyzer)
	}
	if !strings.Contains(f.Message, "stale") || !strings.Contains(f.Message, "maporder") {
		t.Errorf("stale finding message = %q, want it to name the stale maporder directive", f.Message)
	}

	// Filtered suite: with only detrand running, the maporder directive is
	// neither an unknown name (KnownAnalyzers covers it) nor stale.
	var detrandOnly []*lint.Analyzer
	var allNames []string
	for _, a := range suite {
		allNames = append(allNames, a.Name)
		if a.Name == "detrand" {
			detrandOnly = append(detrandOnly, a)
		}
	}
	res, err = lint.Run([]*lint.Package{pkg}, detrandOnly, nil, "",
		lint.Options{Strict: true, KnownAnalyzers: allNames})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Errorf("filtered strict run has %d findings, want 0 (maporder did not run): %v", len(res.Findings), res.Findings)
	}
}

// TestTargetMatch pins the package-selector semantics the driver config
// relies on.
func TestTargetMatch(t *testing.T) {
	tg := &lint.Target{Module: "repro", Include: []string{"", "internal/core"}, Exclude: []string{"internal/core/testutil"}}
	cases := []struct {
		pkg  string
		want bool
	}{
		{"repro", true},                         // "" includes the module root
		{"repro/internal/core", true},           // prefix include
		{"repro/internal/core/sub", true},       // nested beneath an include
		{"repro/internal/corelib", false},       // not a path-segment match
		{"repro/internal/core/testutil", false}, // exclude wins
		{"otae/internal/core", false},           // other module never matches
		{"repro/internal/engine", false},        // not included
	}
	for _, c := range cases {
		if got := tg.Match(c.pkg); got != c.want {
			t.Errorf("Match(%q) = %t, want %t", c.pkg, got, c.want)
		}
	}
}
