package lint

import "testing"

// FuzzParseDirective hammers the directive grammar — the one parser in
// the linter that reads arbitrary programmer-written text. The properties
// under test: no panic, exactly one of (directive, problem) is set, and a
// parsed directive always carries at least one known analyzer name and a
// non-empty reason (the auditability contract suppression rests on).
func FuzzParseDirective(f *testing.F) {
	seeds := []string{
		"//predlint:allow detrand — seeded demo stream, determinism preserved",
		"//predlint:allow detrand -- double-dash separator works too",
		"//predlint:allow detrand,maporder — multiple analyzers, one reason",
		"//predlint:allow detrand, maporder\t,\tgospawn — messy separators",
		"//predlint:allow gospawn",
		"//predlint:allow — no analyzer name",
		"//predlint:allow nosuchcheck — unknown analyzer",
		"//predlint:allow detrand —",
		"//predlint:allow detrand —   \t ",
		"//predlint:allowx — prefix ran into the name",
		"//predlint:allow",
		"//predlint:allow detrand — reason — with a second dash",
		"//predlint:allow detrand -- reason — mixed separators",
		"// predlint:allow detrand — leading space breaks the prefix",
		"//predlint:allow — detrand",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	known := map[string]bool{"detrand": true, "gospawn": true, "maporder": true}
	f.Fuzz(func(t *testing.T, text string) {
		d, problem := parseDirective(text, known)
		if (d == nil) == (problem == "") {
			t.Fatalf("parseDirective(%q) = (%v, %q): want exactly one of directive and problem", text, d, problem)
		}
		if d != nil {
			if len(d.analyzers) == 0 {
				t.Fatalf("parseDirective(%q) accepted a directive with no analyzers", text)
			}
			for _, a := range d.analyzers {
				if !known[a] {
					t.Fatalf("parseDirective(%q) accepted unknown analyzer %q", text, a)
				}
			}
			if d.reason == "" {
				t.Fatalf("parseDirective(%q) accepted an empty reason", text)
			}
		}
		// The parser must be a pure function of its input.
		d2, problem2 := parseDirective(text, known)
		if problem != problem2 || (d == nil) != (d2 == nil) {
			t.Fatalf("parseDirective(%q) is not deterministic", text)
		}
	})
}
