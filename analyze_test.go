// Acceptance tests for EXPLAIN ANALYZE through the public facade: the
// annotated plan's count fields are bit-identical at any parallelism on
// the seeded chaos workload (timings stripped — they are display-only),
// QueryOptions.Analyze attaches the plan without changing the result set,
// and plain EXPLAIN still plans without executing.
package predeval_test

import (
	"context"
	"reflect"
	"regexp"
	"strings"
	"testing"

	predeval "repro"
)

// timeRE strips the display-only wall-time annotation so the remaining
// text is the deterministic count contract.
var timeRE = regexp.MustCompile(`\s*time=[0-9.]+ms`)

func stripTimes(plan []string) []string {
	out := make([]string, len(plan))
	for i, line := range plan {
		out[i] = timeRE.ReplaceAllString(line, "")
	}
	return out
}

func TestExplainAnalyzeChaosDeterministicAcrossParallelism(t *testing.T) {
	const n = 600
	run := func(parallelism int) ([]string, snapshot) {
		db := chaosDB(t, n, parallelism, acceptanceChaos, "degrade")
		rows, err := db.QueryContext(context.Background(),
			"EXPLAIN ANALYZE SELECT id FROM loans WHERE good_credit(id) = 1")
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		if len(rows.Plan()) == 0 {
			t.Fatalf("parallelism %d: EXPLAIN ANALYZE returned no plan", parallelism)
		}
		return stripTimes(rows.Plan()), snap(rows)
	}
	plan1, _ := run(1)
	plan8, _ := run(8)
	if !reflect.DeepEqual(plan1, plan8) {
		t.Fatalf("EXPLAIN ANALYZE counts differ across parallelism:\n--- p=1 ---\n%s\n--- p=8 ---\n%s",
			strings.Join(plan1, "\n"), strings.Join(plan8, "\n"))
	}
	text := strings.Join(plan1, "\n")
	for _, want := range []string{"(actual ", "rows=", "calls=", "retries=", "failed="} {
		if !strings.Contains(text, want) {
			t.Errorf("annotated plan missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "time=") {
		t.Error("stripTimes left a wall-time annotation behind")
	}
}

func TestExplainAnalyzeStatementReturnsPlanAsRows(t *testing.T) {
	db := chaosDB(t, 200, 4, acceptanceChaos, "degrade")
	rows, err := db.QueryContext(context.Background(),
		"EXPLAIN ANALYZE SELECT id FROM loans WHERE good_credit(id) = 1")
	if err != nil {
		t.Fatal(err)
	}
	// Like Postgres, the EXPLAIN ANALYZE statement's result set IS the
	// annotated plan.
	if rows.Len() == 0 || rows.Len() != len(rows.Plan()) {
		t.Fatalf("result set (%d rows) should mirror the plan (%d lines)", rows.Len(), len(rows.Plan()))
	}
	if rows.Stats().Evaluations == 0 {
		t.Error("EXPLAIN ANALYZE must execute the query: Evaluations = 0")
	}
}

func TestQueryOptionsAnalyzeKeepsResultSet(t *testing.T) {
	const n = 300
	plain := chaosDB(t, n, 4, acceptanceChaos, "degrade")
	analyzed := chaosDB(t, n, 4, acceptanceChaos, "degrade")
	sql := "SELECT id FROM loans WHERE good_credit(id) = 1"
	want, err := plain.QueryContext(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := analyzed.QueryContextOptions(context.Background(), sql, predeval.QueryOptions{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if want.Plan() != nil {
		t.Error("plain query unexpectedly carries a plan")
	}
	if len(got.Plan()) == 0 {
		t.Fatal("QueryOptions.Analyze did not attach a plan")
	}
	if !reflect.DeepEqual(snap(want), snap(got)) {
		t.Errorf("Analyze changed the result set:\nplain %+v\nanalyzed %+v", snap(want), snap(got))
	}
	if !strings.Contains(strings.Join(got.Plan(), "\n"), "(actual ") {
		t.Errorf("attached plan not annotated:\n%s", strings.Join(got.Plan(), "\n"))
	}
}

func TestPlainExplainStillPlansOnly(t *testing.T) {
	db := chaosDB(t, 200, 4, acceptanceChaos, "degrade")
	rows, err := db.QueryContext(context.Background(),
		"EXPLAIN SELECT id FROM loans WHERE good_credit(id) = 1")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Stats().Evaluations != 0 {
		t.Errorf("plain EXPLAIN executed the query: %d evaluations", rows.Stats().Evaluations)
	}
	if strings.Contains(strings.Join(rows.Plan(), "\n"), "(actual ") {
		t.Error("plain EXPLAIN carries actuals")
	}
}
