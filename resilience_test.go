// Acceptance tests for resilient UDF invocation as seen through the public
// facade: a seeded chaos workload (transient errors, latency spikes, a
// panicking UDF) completes under the degrade policy with correct surviving
// rows and bit-identical output at any parallelism; the same workload under
// the fail policy surfaces a typed error; cancellation during a retry
// backoff aborts promptly without poisoning state; and a crash-torn catalog
// tail after a retry-heavy workload recovers with zero synthetic verdicts.
package predeval_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	predeval "repro"
	"repro/internal/resilience"
)

// chaosDB builds a fresh DB over the loans fixture whose good_credit UDF
// runs behind the given seeded chaos schedule. Identical inputs build
// byte-identical worlds, so two DBs at different parallelism levels are
// comparable bit for bit.
func chaosDB(t testing.TB, n int, parallelism int, cfg resilience.ChaosConfig, policy string) *predeval.DB {
	t.Helper()
	csv, truth := loansCSV(n, 1)
	db := predeval.Open(7)
	db.SetParallelism(parallelism)
	if err := db.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	if err := db.SetFailurePolicy(policy); err != nil {
		t.Fatal(err)
	}
	db.SetRetryPolicy(resilience.Policy{
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	})
	chaos := resilience.NewChaos(cfg)
	err := db.RegisterUDFErr("good_credit", chaos.Wrap(func(_ context.Context, v any) (bool, error) {
		return truth[v.(int64)], nil
	}), 3)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// acceptanceChaos is the issue's acceptance schedule: ~10% transient
// errors per attempt, occasional latency spikes, and a persistently
// panicking UDF body on a few values (the id column is distinct per row,
// as the chaos determinism contract requires).
var acceptanceChaos = resilience.ChaosConfig{
	Seed:        1234,
	ErrorRate:   0.10,
	PanicRate:   0.01,
	Latency:     200 * time.Microsecond,
	LatencyRate: 0.05,
}

func TestChaosAcceptanceDegrade(t *testing.T) {
	const n = 600
	_, truth := loansCSV(n, 1)
	run := func(parallelism int) snapshot {
		db := chaosDB(t, n, parallelism, acceptanceChaos, "degrade")
		rows, err := db.QueryContext(context.Background(),
			"SELECT id FROM loans WHERE good_credit(id) = 1")
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return snap(rows)
	}

	s1 := run(1)
	s8 := run(8)
	if !reflect.DeepEqual(s1, s8) {
		t.Fatalf("chaos run not bit-identical across parallelism:\n p=1: ids=%d stats=%+v\n p=8: ids=%d stats=%+v",
			len(s1.IDs), s1.Stats, len(s8.IDs), s8.Stats)
	}

	st := s1.Stats
	if !st.Degraded {
		t.Error("result not marked degraded despite injected failures")
	}
	if st.FailedRows == 0 {
		t.Error("FailedRows = 0: the panicking values should have failed")
	}
	if st.Retries == 0 {
		t.Error("Retries = 0: 10% transient errors should have triggered retries")
	}

	// Surviving rows are correct: no false positives, and the only
	// truth-true rows missing are the failed ones.
	want := 0
	for _, v := range truth {
		if v {
			want++
		}
	}
	for _, id := range s1.IDs {
		if !truth[int64(id)] {
			t.Fatalf("row %d in the output but truth says false", id)
		}
	}
	if len(s1.IDs) < want-st.FailedRows || len(s1.IDs) > want {
		t.Errorf("got %d rows; want within [%d, %d] (%d truth-true, %d failed)",
			len(s1.IDs), want-st.FailedRows, want, want, st.FailedRows)
	}
}

func TestChaosAcceptanceFailPolicy(t *testing.T) {
	db := chaosDB(t, 600, 8, acceptanceChaos, "fail")
	_, err := db.QueryContext(context.Background(),
		"SELECT id FROM loans WHERE good_credit(id) = 1")
	if err == nil {
		t.Fatal("want the chaos workload to fail the query under the fail policy")
	}
	var re *resilience.Error
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want a typed resilience error", err)
	}
	if !strings.Contains(err.Error(), "good_credit") {
		t.Errorf("error does not name the UDF: %v", err)
	}
	// The DB survives: the same statement under degrade still answers.
	rows, err := db.QueryContextOptions(context.Background(),
		"SELECT id FROM loans WHERE good_credit(id) = 1",
		predeval.QueryOptions{OnFailure: "degrade"})
	if err != nil {
		t.Fatalf("post-failure degrade query: %v", err)
	}
	if rows.Len() == 0 {
		t.Error("post-failure degrade query returned nothing")
	}
}

// TestCancellationDuringRetry (satellite): a context cancelled while a row
// sits in its retry backoff must abort the query promptly with ctx.Err() —
// not a row failure — and leave no partial state behind: the identical
// follow-up query on the now-healthy UDF answers exactly.
func TestCancellationDuringRetry(t *testing.T) {
	const n = 200
	csv, truth := loansCSV(n, 1)
	db := predeval.Open(7)
	if err := db.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	db.SetRetryPolicy(resilience.Policy{
		MaxAttempts: 5,
		Sleep: func(ctx context.Context, _ time.Duration) error {
			cancel() // the client gives up mid-backoff
			return ctx.Err()
		},
	})
	flaky := true
	if err := db.RegisterUDFErr("good_credit", func(_ context.Context, v any) (bool, error) {
		if flaky && v.(int64) == 42 {
			return false, errors.New("transient blip")
		}
		return truth[v.(int64)], nil
	}, 3); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err := db.QueryContext(ctx, "SELECT id FROM loans WHERE good_credit(id) = 1")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (a batch abort, not a row failure)", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — the backoff was slept out", elapsed)
	}

	// No partial sampler/cache state: the healthy re-run is exact and
	// complete, including row 42.
	flaky = false
	rows, err := db.QueryContext(context.Background(),
		"SELECT id FROM loans WHERE good_credit(id) = 1")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range truth {
		if v {
			want++
		}
	}
	if rows.Len() != want {
		t.Fatalf("re-run returned %d rows, want %d", rows.Len(), want)
	}
	if st := rows.Stats(); st.FailedRows != 0 || st.Degraded {
		t.Fatalf("re-run stats carry stale failures: %+v", st)
	}
}

// TestCatalogTornTailAfterRetryHeavyWorkload (satellite): run a workload
// where every row retries once and some rows fail permanently (skip
// policy), flush it, then tear the final WAL record as a crash would. The
// reopened catalog must report the recovery, and no synthetic verdict —
// neither from the torn record nor from the failed rows — may survive: the
// healthy re-run answers ground truth exactly.
func TestCatalogTornTailAfterRetryHeavyWorkload(t *testing.T) {
	dir := t.TempDir()
	const n = 200
	csv, truth := loansCSV(n, 1)
	sql := "SELECT id FROM loans WHERE good_credit(id) = 1"

	db1 := predeval.Open(7)
	if err := db1.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	if err := db1.SetFailurePolicy("skip"); err != nil {
		t.Fatal(err)
	}
	db1.SetRetryPolicy(resilience.Policy{
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	})
	attempts := make(map[int64]int) // parallelism 1 by default… but be safe
	db1.SetParallelism(1)
	if err := db1.RegisterUDFErr("good_credit", func(_ context.Context, v any) (bool, error) {
		id := v.(int64)
		if id%7 == 0 {
			return false, resilience.New(resilience.Permanent, "udf", errors.New("cursed"))
		}
		attempts[id]++
		if attempts[id] == 1 {
			return false, errors.New("first attempt always blips") // retry-heavy
		}
		return truth[id], nil
	}, 3); err != nil {
		t.Fatal(err)
	}
	if err := db1.OpenCatalog(dir); err != nil {
		t.Fatal(err)
	}
	rows1, err := db1.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	st1 := rows1.Stats()
	if st1.FailedRows == 0 || st1.Retries == 0 {
		t.Fatalf("workload not retry-heavy: %+v", st1)
	}
	if err := db1.FlushCatalog(); err != nil {
		t.Fatal(err)
	}
	if err := db1.CloseCatalog(); err != nil {
		t.Fatal(err)
	}

	// Tear the final WAL record mid-write, as a crash during append would.
	logPath := filepath.Join(dir, "catalog.log")
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Reopen with a healthy UDF. The recovery must be reported, and the
	// exact answer must match ground truth: any synthetic verdict persisted
	// for a failed row would silently exclude it here.
	db2 := predeval.Open(7)
	if err := db2.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	if err := db2.RegisterUDFErr("good_credit", func(_ context.Context, v any) (bool, error) {
		return truth[v.(int64)], nil
	}, 3); err != nil {
		t.Fatal(err)
	}
	if err := db2.OpenCatalog(dir); err != nil {
		t.Fatal(err)
	}
	defer db2.CloseCatalog()
	if rec := db2.Catalog().Recovery(); !rec.Truncated || rec.Note == "" {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
	rows2, err := db2.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]bool)
	for id, v := range truth {
		if v {
			want[int(id)] = true
		}
	}
	if rows2.Len() != len(want) {
		t.Fatalf("recovered answer has %d rows, want %d — a synthetic verdict survived", rows2.Len(), len(want))
	}
	for _, id := range rows2.RowIDs() {
		if !want[id] {
			t.Fatalf("row %d in the recovered answer but truth says false", id)
		}
	}
	if st2 := rows2.Stats(); st2.FailedRows != 0 {
		t.Fatalf("healthy re-run reports %d failed rows", st2.FailedRows)
	}
}
